package nektar

// One testing.B benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls
// out. The Figure 1-6 benches measure this repository's pure-Go BLAS
// natively — the host plays the paper's "PC" role — while the
// communication and application benches drive the simulated cluster.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math"
	"testing"

	"nektar/internal/blas"
	"nektar/internal/core"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/netpipe"
	"nektar/internal/partition"
	"nektar/internal/simnet"
	"nektar/internal/solver"
)

// ---- Figures 1-3: Level 1 BLAS on the host, per working-set size.

func levelSizes() []int { return []int{1 << 10, 16 << 10, 256 << 10, 4 << 20} }

// BenchmarkFig1Dcopy measures dcopy MB/s (Figure 1's native role).
func BenchmarkFig1Dcopy(b *testing.B) {
	for _, bytes := range levelSizes() {
		n := bytes / 8
		x := make([]float64, n)
		y := make([]float64, n)
		b.Run(fmt.Sprintf("bytes=%d", bytes), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				blas.Dcopy(n, x, 1, y, 1)
			}
		})
	}
}

// BenchmarkFig2Daxpy measures daxpy (Figure 2).
func BenchmarkFig2Daxpy(b *testing.B) {
	for _, bytes := range levelSizes() {
		n := bytes / 8
		x := make([]float64, n)
		y := make([]float64, n)
		b.Run(fmt.Sprintf("bytes=%d", bytes), func(b *testing.B) {
			b.SetBytes(int64(24 * n))
			for i := 0; i < b.N; i++ {
				blas.Daxpy(n, 1.0000001, x, 1, y, 1)
			}
		})
	}
}

// BenchmarkFig3Ddot measures ddot (Figure 3).
func BenchmarkFig3Ddot(b *testing.B) {
	for _, bytes := range levelSizes() {
		n := bytes / 8
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = 1, 2
		}
		var sink float64
		b.Run(fmt.Sprintf("bytes=%d", bytes), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				sink += blas.Ddot(n, x, 1, y, 1)
			}
		})
		_ = sink
	}
}

// BenchmarkFig4Dgemv measures dgemv (Figure 4).
func BenchmarkFig4Dgemv(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		a := make([]float64, n*n)
		x := make([]float64, n)
		y := make([]float64, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blas.Dgemv(blas.NoTrans, n, n, 1, a, n, x, 1, 0, y, 1)
			}
		})
	}
}

// BenchmarkFig5Dgemm measures large dgemm (Figure 5);
// BenchmarkFig6DgemmSmall the elemental sizes (Figure 6).
func BenchmarkFig5Dgemm(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		a := make([]float64, n*n)
		c := make([]float64, n*n)
		bb := make([]float64, n*n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bb, n, 0, c, n)
			}
		})
	}
}

// BenchmarkFig6DgemmSmall measures small-n dgemm (Figure 6).
func BenchmarkFig6DgemmSmall(b *testing.B) {
	for _, n := range []int{4, 8, 12, 20} {
		a := make([]float64, n*n)
		c := make([]float64, n*n)
		bb := make([]float64, n*n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bb, n, 0, c, n)
			}
		})
	}
}

// ---- Figure 7: ping-pong on the simulated networks.

func BenchmarkFig7PingPong(b *testing.B) {
	for _, name := range []string{"Muses", "RoadRunner-myr", "T3E"} {
		m, err := machine.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := netpipe.Run(m.Net, []int{8, 64 << 10, 4 << 20}, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 8: MPI_Alltoall on the simulated networks.

func BenchmarkFig8Alltoall(b *testing.B) {
	for _, p := range []int{4, 8} {
		m, err := machine.ByName("RoadRunner-myr")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := netpipe.RunAlltoall(m.Net, p, []int{64 << 10}, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Table 1 / Figure 12: one serial DNS step (validation scale).

func BenchmarkTable1SerialStep(b *testing.B) {
	m, err := mesh.BluffBody(6, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	ns, err := core.NewNS2D(m, core.NS2DConfig{
		Nu: 0.01, Dt: 2e-3, Order: 2,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": core.ConstantVel(1, 0),
		},
		PresDirichlet: map[string]bool{"outflow": true},
	})
	if err != nil {
		b.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)
	ns.Step()
	ns.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns.Step()
	}
}

// ---- Table 2 / Figures 13-14: Nektar-F steps on the simulated cluster.

func BenchmarkTable2NektarFStep(b *testing.B) {
	for _, name := range []string{"RoadRunner-myr", "RoadRunner-eth"} {
		mach, err := machine.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := simnet.Run(4, mach.Net, func(n *simnet.Node) {
					comm := mpi.World(n)
					m, err := mesh.BluffBody(4, 8, 2)
					if err != nil {
						panic(err)
					}
					ns, err := core.NewNSF(m, core.NSFConfig{
						Nu: 0.01, Dt: 2e-3, Order: 2, Lz: 2 * math.Pi,
						VelDirichlet: map[string]core.VelBC{
							"wall":   core.ConstantVel(0, 0),
							"inflow": core.ConstantVel(1, 0),
						},
						PresDirichlet: map[string]bool{"outflow": true},
					}, comm, &mach.CPU)
					if err != nil {
						panic(err)
					}
					ns.SetUniformInitial(1, 0)
					ns.Step()
					ns.Step()
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Table 3 / Figures 15-16: Nektar-ALE steps on the simulated
// cluster.

func BenchmarkTable3NektarALEStep(b *testing.B) {
	mach, err := machine.ByName("RoadRunner-myr")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_, _, err := simnet.Run(4, mach.Net, func(n *simnet.Node) {
			comm := mpi.World(n)
			m2, err := mesh.WingSection(2, 12, 2)
			if err != nil {
				panic(err)
			}
			m3, err := mesh.ExtrudeQuads(m2, 2, 2, 0, 1)
			if err != nil {
				panic(err)
			}
			ns, err := core.NewNSALE(m3, core.ALEConfig{
				Nu: 0.02, Dt: 5e-3, Order: 2,
				FarfieldVel: [3]float64{1, 0, 0},
				WallVelocity: func(t float64) [3]float64 {
					return [3]float64{0, 0.2 * math.Cos(2*math.Pi*t), 0}
				},
				MoveMesh: true,
			}, comm, &mach.CPU)
			if err != nil {
				panic(err)
			}
			ns.SetUniformInitial(1, 0, 0)
			ns.Step()
			ns.Step()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations.

// BenchmarkAblationCondensedVsBanded compares the statically condensed
// solver against the full banded direct solver on the same system — the
// design choice that makes the paper-scale serial run fit in memory.
func BenchmarkAblationCondensedVsBanded(b *testing.B) {
	m, err := mesh.BluffBody(6, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	a := mesh.NewAssembly(m, func(tag string) bool { return tag != "outflow" })
	rhs := solver.WeakRHSFunc(a, func(x, y, z float64) float64 { return 1 })
	cond, err := solver.NewCondensed(a, 1)
	if err != nil {
		b.Fatal(err)
	}
	dir, err := solver.NewDirect(a, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("condensed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cond.Solve(rhs, nil)
		}
	})
	b.Run("banded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dir.Solve(rhs, nil)
		}
	})
}

// BenchmarkAblationTensorVsMatrix compares the sum-factorized backward
// transform against the tabulated-matrix path — the optimization that
// reproduces the paper's Figure 12 stage balance.
func BenchmarkAblationTensorVsMatrix(b *testing.B) {
	m, err := mesh.RectQuad(8, 2, 2, 0, 1, 0, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	el := m.Elems[0]
	coef := make([]float64, el.Ref.NModes)
	phys := make([]float64, el.Ref.NQuad)
	for i := range coef {
		coef[i] = float64(i % 3)
	}
	b.Run("tensor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			el.Ref.BackwardTransform(coef, phys)
		}
	})
	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blas.Dgemv(blas.Trans, el.Ref.NModes, el.Ref.NQuad, 1, el.Ref.B, el.Ref.NQuad, coef, 1, 0, phys, 1)
		}
	})
	// Triangular collapsed-basis factorization (Karniadakis & Sherwin).
	mt, err := mesh.RectTri(8, 2, 2, 0, 1, 0, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	elt := mt.Elems[0]
	coefT := make([]float64, elt.Ref.NModes)
	for i := range coefT {
		coefT[i] = float64(i%4) + 0.5
	}
	physT := make([]float64, elt.Ref.NQuad)
	b.Run("tri-tensor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			elt.Ref.BackwardTransform(coefT, physT)
		}
	})
	b.Run("tri-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blas.Dgemv(blas.Trans, elt.Ref.NModes, elt.Ref.NQuad, 1, elt.Ref.B, elt.Ref.NQuad, coefT, 1, 0, physT, 1)
		}
	})
}

// BenchmarkAblationAlltoallAlgorithms compares the pairwise and basic
// Alltoall algorithms on the Ethernet model, the contrast behind the
// paper's MPI_Alltoall bottleneck analysis.
func BenchmarkAblationAlltoallAlgorithms(b *testing.B) {
	mach, err := machine.ByName("Muses")
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []struct {
		name string
		a    mpi.AlltoallAlg
	}{{"pairwise", mpi.AlgPairwise}, {"basic", mpi.AlgBasic}} {
		b.Run(alg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := simnet.Run(4, mach.Net, func(n *simnet.Node) {
					comm := mpi.World(n)
					send := make([][]float64, 4)
					for j := range send {
						send[j] = make([]float64, 4096)
					}
					comm.Alltoall(send, alg.a)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartitionQuality measures the multilevel
// partitioner's runtime and reports the edge-cut improvement over
// naive striping (edge cut drives the Nektar-ALE communication
// volume).
func BenchmarkAblationPartitionQuality(b *testing.B) {
	m2, err := mesh.WingSection(2, 24, 4)
	if err != nil {
		b.Fatal(err)
	}
	m3, err := mesh.ExtrudeQuads(m2, 2, 3, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := partition.FromMesh(m3)
	var cut int
	for i := 0; i < b.N; i++ {
		part, err := partition.Partition(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		cut = g.EdgeCut(part)
	}
	striped := make([]int, g.N())
	for v := range striped {
		striped[v] = v * 8 / g.N()
	}
	b.ReportMetric(float64(cut), "edgecut")
	b.ReportMetric(float64(g.EdgeCut(striped)), "stripedcut")
}
