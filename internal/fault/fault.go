// Package fault builds deterministic fault-injection plans for the
// simulated cluster. A Plan is a reproducible schedule of message
// drops, link degradation windows, transient NIC stalls, and
// whole-node crashes, derived from a seed plus explicit events. It
// implements simnet.Injector structurally (this package does not
// import simnet, so the simulator carries no dependency on it).
//
// Determinism guarantee: every decision a Plan makes is a pure
// function of (seed, event arguments). In particular, the drop
// decision for the n-th message on a directed rank pair hashes
// (seed, src, dst, n) — not any global message counter — so it is
// independent of how concurrent ranks interleave. Two runs of the
// same program under the same Plan produce identical virtual-time
// traces and identical drop/retransmission counts.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Plan is a reproducible fault schedule. The zero value injects
// nothing; use NewPlan and the With*/event methods to populate it.
// Plans must be fully built before the run starts — the injector
// methods are read-only during simulation.
type Plan struct {
	seed     int64
	dropProb float64

	crashes    map[int]float64 // rank -> virtual crash time
	degrades   []degradeWindow
	stalls     []stallWindow
	rankStalls []rankStall
	corrupts   []recordCorrupt

	rng *rand.Rand // for sampled (MTBF-style) events at build time

	drops int // messages dropped so far (diagnostics)

	// err records the first invalid builder call so the chaining API
	// stays ergonomic; Err surfaces it and simnet's install-time
	// ValidatePlan check rejects the run.
	err error
}

type degradeWindow struct {
	src, dst      int // -1 = any rank
	from, to      float64
	latMul, bwDiv float64
}

type stallWindow struct {
	node     int
	from, to float64
}

type rankStall struct {
	rank    int
	at, dur float64
}

// recordCorrupt damages the checkpoint record a rank writes at a step.
type corruptMode int

const (
	corruptTorn corruptMode = iota // truncate to keepFrac of the frame
	corruptBit                     // flip one bit
)

type recordCorrupt struct {
	step, rank int
	mode       corruptMode
	keepFrac   float64 // torn writes
	bit        int     // bit flips
}

// NewPlan returns an empty plan whose sampled events (CrashRandom) and
// drop decisions derive from seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:    seed,
		crashes: map[int]float64{},
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// setErr records the first invalid builder call.
func (p *Plan) setErr(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first invalid builder call recorded on this plan, or
// nil for a well-formed plan. simnet checks it (via ValidatePlan) when
// the plan is installed, so a bad plan fails the run up front instead
// of silently injecting nothing.
func (p *Plan) Err() error { return p.err }

// WithDrops sets the independent per-message drop probability for
// inter-node eager messages. Returns the plan for chaining.
func (p *Plan) WithDrops(prob float64) *Plan {
	if prob < 0 || prob > 1 || math.IsNaN(prob) {
		p.setErr("fault: drop probability %g outside [0, 1]", prob)
		return p
	}
	p.dropProb = prob
	return p
}

// Crash schedules rank to die at virtual time t (seconds). A second
// call for the same rank keeps the earlier time.
func (p *Plan) Crash(rank int, t float64) *Plan {
	if rank < 0 {
		p.setErr("fault: crash of negative rank %d", rank)
		return p
	}
	if t < 0 || math.IsNaN(t) {
		p.setErr("fault: crash of rank %d at invalid time %g", rank, t)
		return p
	}
	if old, ok := p.crashes[rank]; !ok || t < old {
		p.crashes[rank] = t
	}
	return p
}

// CrashRandom schedules rank to die at an exponentially distributed
// time with the given mean (the node's MTBF, seconds), sampled from
// the plan's seeded generator. The sampled time is fixed at call time,
// so the plan stays reproducible. Returns the sampled crash time.
func (p *Plan) CrashRandom(rank int, mtbf float64) float64 {
	if mtbf <= 0 || math.IsNaN(mtbf) {
		p.setErr("fault: non-positive MTBF %g for rank %d", mtbf, rank)
		return math.Inf(1)
	}
	t := p.rng.ExpFloat64() * mtbf
	p.Crash(rank, t)
	return t
}

// DegradeLink multiplies the latency by latMul and divides the
// bandwidth by bwDiv on the directed link src->dst during [from, to).
// Either endpoint may be -1 to match any rank. Overlapping windows
// compound multiplicatively.
func (p *Plan) DegradeLink(src, dst int, from, to, latMul, bwDiv float64) *Plan {
	if src < -1 || dst < -1 {
		p.setErr("fault: degrade window on invalid link %d->%d", src, dst)
		return p
	}
	if !(from >= 0) || !(to > from) {
		p.setErr("fault: degrade window [%g, %g) is not a forward time interval", from, to)
		return p
	}
	if latMul < 1 || bwDiv < 1 || math.IsNaN(latMul) || math.IsNaN(bwDiv) {
		p.setErr("fault: degrade factors lat×%g bw÷%g must be >= 1", latMul, bwDiv)
		return p
	}
	p.degrades = append(p.degrades, degradeWindow{src, dst, from, to, latMul, bwDiv})
	return p
}

// StallNIC freezes the NIC of the given SMP node during [from, to):
// no transfer may begin on it before to.
func (p *Plan) StallNIC(node int, from, to float64) *Plan {
	if node < 0 {
		p.setErr("fault: NIC stall on negative node %d", node)
		return p
	}
	if !(from >= 0) || !(to > from) {
		p.setErr("fault: NIC stall window [%g, %g) is not a forward time interval", from, to)
		return p
	}
	p.stalls = append(p.stalls, stallWindow{node, from, to})
	return p
}

// StallRank freezes the whole process of a rank at virtual time at for
// dur seconds (see simnet.RankStaller): the rank goes silent but does
// not die, the failure mode a heartbeat detector must distinguish from
// a crash. A second call for the same rank keeps the earlier freeze.
func (p *Plan) StallRank(rank int, at, dur float64) *Plan {
	if rank < 0 {
		p.setErr("fault: rank stall on negative rank %d", rank)
		return p
	}
	if at < 0 || math.IsNaN(at) {
		p.setErr("fault: rank %d stall at invalid time %g", rank, at)
		return p
	}
	if dur <= 0 || math.IsNaN(dur) {
		p.setErr("fault: rank %d stall with non-positive duration %g", rank, dur)
		return p
	}
	p.rankStalls = append(p.rankStalls, rankStall{rank, at, dur})
	return p
}

// TornWrite truncates the checkpoint record rank writes at step to
// keepFrac of its framed bytes — the partial write a crash leaves
// behind on real hardware (the DirStore's rename makes this impossible
// for a clean process exit; the injector models power loss and buggy
// firmware). The store's CRC trailer must catch it on read.
func (p *Plan) TornWrite(step, rank int, keepFrac float64) *Plan {
	if rank < 0 || step < 0 {
		p.setErr("fault: torn write at negative step %d or rank %d", step, rank)
		return p
	}
	if keepFrac < 0 || keepFrac >= 1 || math.IsNaN(keepFrac) {
		p.setErr("fault: torn write keeping %g of the record is outside [0, 1)", keepFrac)
		return p
	}
	p.corrupts = append(p.corrupts, recordCorrupt{step: step, rank: rank, mode: corruptTorn, keepFrac: keepFrac})
	return p
}

// FlipBit flips one bit of the checkpoint record rank writes at step —
// silent media corruption. The bit index counts from the start of the
// frame and wraps modulo the frame length, so any non-negative index
// is deterministic regardless of record size.
func (p *Plan) FlipBit(step, rank, bit int) *Plan {
	if rank < 0 || step < 0 {
		p.setErr("fault: bit flip at negative step %d or rank %d", step, rank)
		return p
	}
	if bit < 0 {
		p.setErr("fault: bit flip at negative bit index %d", bit)
		return p
	}
	p.corrupts = append(p.corrupts, recordCorrupt{step: step, rank: rank, mode: corruptBit, bit: bit})
	return p
}

// CorruptRecord implements the checkpoint store's write-path injector
// (see ckpt.Corrupter; structural, like the simnet.Injector methods):
// it applies every scheduled corruption matching (step, rank) to the
// framed record and passes everything else through untouched.
func (p *Plan) CorruptRecord(step, rank int, frame []byte) []byte {
	for _, c := range p.corrupts {
		if c.step != step || c.rank != rank {
			continue
		}
		switch c.mode {
		case corruptTorn:
			frame = frame[:int(float64(len(frame))*c.keepFrac)]
		case corruptBit:
			if len(frame) > 0 {
				out := append([]byte(nil), frame...)
				bit := c.bit % (8 * len(out))
				out[bit/8] ^= 1 << (bit % 8)
				frame = out
			}
		}
	}
	return frame
}

// Validate checks the fully-built plan against a run shape: ranks is
// the number of ranks (or physical nodes when the plan is node-keyed),
// horizon the expected virtual duration in seconds (0 = unknown, skips
// the beyond-horizon check). It returns the first problem found,
// starting with any invalid builder call.
func (p *Plan) Validate(ranks int, horizon float64) error {
	if p.err != nil {
		return p.err
	}
	check := func(kind string, rank int, t float64) error {
		if rank >= ranks {
			return fmt.Errorf("fault: %s of rank %d out of range for a %d-rank run", kind, rank, ranks)
		}
		if horizon > 0 && t >= horizon && !math.IsInf(t, 1) {
			return fmt.Errorf("fault: %s of rank %d at t=%.4gs is beyond the %.4gs horizon and can never fire", kind, rank, t, horizon)
		}
		return nil
	}
	crashRanks := make([]int, 0, len(p.crashes))
	for rank := range p.crashes {
		crashRanks = append(crashRanks, rank)
	}
	sort.Ints(crashRanks)
	for _, rank := range crashRanks {
		if err := check("crash", rank, p.crashes[rank]); err != nil {
			return err
		}
	}
	for _, s := range p.rankStalls {
		if err := check("stall", s.rank, s.at); err != nil {
			return err
		}
	}
	for _, s := range p.stalls {
		if s.node >= ranks {
			return fmt.Errorf("fault: NIC stall on node %d out of range for a %d-node run", s.node, ranks)
		}
	}
	for _, d := range p.degrades {
		if d.src >= ranks || d.dst >= ranks {
			return fmt.Errorf("fault: degrade window on link %d->%d out of range for a %d-rank run", d.src, d.dst, ranks)
		}
	}
	for _, c := range p.corrupts {
		if c.rank >= ranks {
			return fmt.Errorf("fault: record corruption on rank %d out of range for a %d-rank run", c.rank, ranks)
		}
	}
	return nil
}

// ValidatePlan implements simnet's install-time check (see
// simnet.PlanValidator); RunWithFaults calls it with the run's rank
// count before the first event fires.
func (p *Plan) ValidatePlan(ranks int) error { return p.Validate(ranks, 0) }

// Drops returns the number of messages dropped so far.
func (p *Plan) Drops() int { return p.drops }

// Reset clears the run-time drop counter so the same plan can be
// reused for a repeat run (e.g. a determinism check). The schedule
// itself is immutable.
func (p *Plan) Reset() { p.drops = 0 }

// String summarizes the schedule for logs and reports.
func (p *Plan) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.seed))
	if p.dropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.3g", p.dropProb))
	}
	if len(p.crashes) > 0 {
		ranks := make([]int, 0, len(p.crashes))
		for r := range p.crashes {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			parts = append(parts, fmt.Sprintf("crash(rank=%d,t=%.4gs)", r, p.crashes[r]))
		}
	}
	for _, d := range p.degrades {
		parts = append(parts, fmt.Sprintf("degrade(%d->%d,[%.4g,%.4g)s,lat×%.3g,bw÷%.3g)",
			d.src, d.dst, d.from, d.to, d.latMul, d.bwDiv))
	}
	for _, s := range p.stalls {
		parts = append(parts, fmt.Sprintf("stall(node=%d,[%.4g,%.4g)s)", s.node, s.from, s.to))
	}
	for _, s := range p.rankStalls {
		parts = append(parts, fmt.Sprintf("freeze(rank=%d,t=%.4gs,dur=%.4gs)", s.rank, s.at, s.dur))
	}
	for _, c := range p.corrupts {
		switch c.mode {
		case corruptTorn:
			parts = append(parts, fmt.Sprintf("torn(step=%d,rank=%d,keep=%.3g)", c.step, c.rank, c.keepFrac))
		case corruptBit:
			parts = append(parts, fmt.Sprintf("bitflip(step=%d,rank=%d,bit=%d)", c.step, c.rank, c.bit))
		}
	}
	if p.err != nil {
		parts = append(parts, fmt.Sprintf("INVALID: %v", p.err))
	}
	return "fault.Plan{" + strings.Join(parts, ", ") + "}"
}

// DropMessage implements the simnet.Injector drop decision: the n-th
// inter-node eager message on the directed pair src->dst at virtual
// time t is lost with probability dropProb, decided by hashing
// (seed, src, dst, n).
func (p *Plan) DropMessage(src, dst, n int, t float64) bool {
	if p.dropProb <= 0 {
		return false
	}
	if hash01(p.seed, src, dst, n) < p.dropProb {
		p.drops++
		return true
	}
	return false
}

// LinkFactors implements simnet.Injector: the product of all
// degradation windows covering (src, dst, t).
func (p *Plan) LinkFactors(src, dst int, t float64) (latMul, bwDiv float64) {
	latMul, bwDiv = 1, 1
	for _, d := range p.degrades {
		if t < d.from || t >= d.to {
			continue
		}
		if d.src != -1 && d.src != src {
			continue
		}
		if d.dst != -1 && d.dst != dst {
			continue
		}
		latMul *= d.latMul
		bwDiv *= d.bwDiv
	}
	return latMul, bwDiv
}

// StallUntil implements simnet.Injector: the latest stall-window end
// covering (node, t), or 0 when none does.
func (p *Plan) StallUntil(node int, t float64) float64 {
	var until float64
	for _, s := range p.stalls {
		if s.node == node && t >= s.from && t < s.to && s.to > until {
			until = s.to
		}
	}
	return until
}

// CrashTime implements simnet.Injector: the scheduled crash time for
// rank, or +Inf when it never dies.
func (p *Plan) CrashTime(rank int) float64 {
	if t, ok := p.crashes[rank]; ok {
		return t
	}
	return math.Inf(1)
}

// RankStall implements simnet.RankStaller: the earliest scheduled
// process freeze for rank, or (+Inf, 0) when it never freezes.
func (p *Plan) RankStall(rank int) (start, dur float64) {
	start = math.Inf(1)
	for _, s := range p.rankStalls {
		if s.rank == rank && s.at < start {
			start, dur = s.at, s.dur
		}
	}
	return start, dur
}

// hash01 maps (seed, src, dst, n) to a uniform float64 in [0, 1) with
// a splitmix64-style finalizer. Pure and order-independent by
// construction.
func hash01(seed int64, src, dst, n int) float64 {
	x := uint64(seed)
	x ^= uint64(src)*0x9e3779b97f4a7c15 + uint64(dst)*0xbf58476d1ce4e5b9 + uint64(n)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
