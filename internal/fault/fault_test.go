package fault

import (
	"math"
	"strings"
	"testing"

	"nektar/internal/simnet"
)

// The plan must satisfy the simulator's injector contract.
var _ simnet.Injector = (*Plan)(nil)
var _ simnet.RankStaller = (*Plan)(nil)
var _ simnet.PlanValidator = (*Plan)(nil)

func TestDropDecisionDeterministic(t *testing.T) {
	a := NewPlan(42).WithDrops(0.3)
	b := NewPlan(42).WithDrops(0.3)
	for n := 0; n < 1000; n++ {
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if a.DropMessage(src, dst, n, 0) != b.DropMessage(src, dst, n, 0) {
					t.Fatalf("same-seed plans disagree at (src=%d, dst=%d, n=%d)", src, dst, n)
				}
			}
		}
	}
	if a.Drops() != b.Drops() {
		t.Fatalf("drop counts differ: %d vs %d", a.Drops(), b.Drops())
	}
	if a.Drops() == 0 {
		t.Fatal("expected some drops at p=0.3 over 16000 trials")
	}
}

func TestDropDecisionOrderIndependent(t *testing.T) {
	p := NewPlan(7).WithDrops(0.5)
	forward := make([]bool, 100)
	for n := 0; n < 100; n++ {
		forward[n] = p.DropMessage(0, 1, n, 0)
	}
	q := NewPlan(7).WithDrops(0.5)
	for n := 99; n >= 0; n-- {
		if q.DropMessage(0, 1, n, 0) != forward[n] {
			t.Fatalf("drop decision for n=%d depends on query order", n)
		}
	}
}

func TestDropRateApproximatesProbability(t *testing.T) {
	p := NewPlan(1).WithDrops(0.1)
	const trials = 20000
	for n := 0; n < trials; n++ {
		p.DropMessage(0, 1, n, 0)
	}
	rate := float64(p.Drops()) / trials
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("observed drop rate %.4f far from requested 0.1", rate)
	}
}

func TestCrashSchedule(t *testing.T) {
	p := NewPlan(0).Crash(2, 1.5).Crash(2, 3.0) // second call keeps earlier time
	if got := p.CrashTime(2); got != 1.5 {
		t.Fatalf("CrashTime(2) = %v, want 1.5", got)
	}
	if got := p.CrashTime(0); !math.IsInf(got, 1) {
		t.Fatalf("CrashTime(0) = %v, want +Inf", got)
	}
}

func TestCrashRandomReproducible(t *testing.T) {
	t1 := NewPlan(99).CrashRandom(0, 3600)
	t2 := NewPlan(99).CrashRandom(0, 3600)
	if t1 != t2 {
		t.Fatalf("same-seed sampled crash times differ: %v vs %v", t1, t2)
	}
	if t1 <= 0 {
		t.Fatalf("sampled crash time %v not positive", t1)
	}
}

func TestLinkFactorsWindows(t *testing.T) {
	p := NewPlan(0).
		DegradeLink(0, 1, 1.0, 2.0, 4, 8).
		DegradeLink(-1, -1, 1.5, 2.5, 2, 2)
	lat, bw := p.LinkFactors(0, 1, 0.5)
	if lat != 1 || bw != 1 {
		t.Fatalf("outside window: (%v,%v), want (1,1)", lat, bw)
	}
	lat, bw = p.LinkFactors(0, 1, 1.2)
	if lat != 4 || bw != 8 {
		t.Fatalf("single window: (%v,%v), want (4,8)", lat, bw)
	}
	lat, bw = p.LinkFactors(0, 1, 1.7) // both windows: compound
	if lat != 8 || bw != 16 {
		t.Fatalf("overlapping windows: (%v,%v), want (8,16)", lat, bw)
	}
	lat, bw = p.LinkFactors(3, 2, 1.7) // only the wildcard window
	if lat != 2 || bw != 2 {
		t.Fatalf("wildcard window: (%v,%v), want (2,2)", lat, bw)
	}
}

func TestStallUntil(t *testing.T) {
	p := NewPlan(0).StallNIC(1, 0.5, 0.8)
	if got := p.StallUntil(1, 0.6); got != 0.8 {
		t.Fatalf("inside window: %v, want 0.8", got)
	}
	if got := p.StallUntil(1, 0.9); got != 0 {
		t.Fatalf("after window: %v, want 0", got)
	}
	if got := p.StallUntil(0, 0.6); got != 0 {
		t.Fatalf("other node: %v, want 0", got)
	}
}

// TestPlanDeterministicSimulation is the tentpole acceptance check at
// the simnet level: the same seeded plan drives two simulations to
// identical virtual-time traces.
func TestPlanDeterministicSimulation(t *testing.T) {
	model := &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 50, BandwidthMBs: 10, OverheadUS: 5},
	}
	body := func(n *simnet.Node) {
		for i := 0; i < 20; i++ {
			n.Compute(1e-4)
			dst := (n.Rank + 1) % n.P
			src := (n.Rank + n.P - 1) % n.P
			n.SendLossy(dst, i, []float64{float64(i)})
			// Collect whatever arrived; lossy sends may vanish, so use
			// a deadline rather than a blocking receive.
			n.RecvDeadline(src, i, n.Clock()+5e-4)
		}
	}
	run := func() ([]float64, int) {
		p := NewPlan(1234).WithDrops(0.2).
			DegradeLink(-1, -1, 0.001, 0.002, 3, 3).
			StallNIC(0, 0.0005, 0.0015)
		wall, _, err := simnet.RunWithFaults(4, model, p, body)
		if err != nil {
			t.Fatalf("RunWithFaults: %v", err)
		}
		return wall, p.Drops()
	}
	w1, d1 := run()
	w2, d2 := run()
	if d1 != d2 {
		t.Fatalf("drop counts differ across same-seed runs: %d vs %d", d1, d2)
	}
	if d1 == 0 {
		t.Fatal("expected drops at p=0.2")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("rank %d wall differs across same-seed runs: %v vs %v", i, w1[i], w2[i])
		}
	}
}

func TestPlanBuilderRejectsInvalidEvents(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"negative drop prob", NewPlan(1).WithDrops(-0.1), "outside [0, 1]"},
		{"drop prob above one", NewPlan(1).WithDrops(1.5), "outside [0, 1]"},
		{"NaN drop prob", NewPlan(1).WithDrops(math.NaN()), "outside [0, 1]"},
		{"negative crash rank", NewPlan(1).Crash(-1, 5), "negative rank"},
		{"negative crash time", NewPlan(1).Crash(0, -5), "invalid time"},
		{"NaN crash time", NewPlan(1).Crash(0, math.NaN()), "invalid time"},
		{"degrade bad link", NewPlan(1).DegradeLink(-2, 0, 0, 1, 2, 2), "invalid link"},
		{"degrade backward window", NewPlan(1).DegradeLink(0, 1, 5, 5, 2, 2), "not a forward time interval"},
		{"degrade factors below one", NewPlan(1).DegradeLink(0, 1, 0, 1, 0.5, 2), "must be >= 1"},
		{"NIC stall negative node", NewPlan(1).StallNIC(-1, 0, 1), "negative node"},
		{"NIC stall backward window", NewPlan(1).StallNIC(0, 3, 2), "not a forward time interval"},
		{"rank stall negative rank", NewPlan(1).StallRank(-1, 0, 1), "negative rank"},
		{"rank stall negative time", NewPlan(1).StallRank(0, -1, 1), "invalid time"},
		{"rank stall zero duration", NewPlan(1).StallRank(0, 1, 0), "non-positive duration"},
	}
	for _, tc := range cases {
		err := tc.plan.Err()
		if err == nil {
			t.Errorf("%s: no error recorded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if verr := tc.plan.ValidatePlan(64); verr == nil {
			t.Errorf("%s: ValidatePlan accepted an invalid plan", tc.name)
		}
		if !strings.Contains(tc.plan.String(), "INVALID") {
			t.Errorf("%s: String() hides the invalid state: %s", tc.name, tc.plan)
		}
	}
}

func TestCrashRandomRejectsNonPositiveMTBF(t *testing.T) {
	p := NewPlan(7)
	if got := p.CrashRandom(0, 0); !math.IsInf(got, 1) {
		t.Errorf("CrashRandom with zero MTBF returned %v, want +Inf", got)
	}
	if err := p.Err(); err == nil || !strings.Contains(err.Error(), "non-positive MTBF") {
		t.Errorf("Err() = %v, want non-positive MTBF complaint", err)
	}
	if got := NewPlan(7).CrashRandom(0, -100); !math.IsInf(got, 1) {
		t.Errorf("CrashRandom with negative MTBF returned %v, want +Inf", got)
	}
}

func TestPlanErrKeepsFirstError(t *testing.T) {
	p := NewPlan(1).Crash(-1, 5).WithDrops(2)
	if err := p.Err(); err == nil || !strings.Contains(err.Error(), "negative rank") {
		t.Errorf("Err() = %v, want the first (crash) error preserved", err)
	}
}

func TestValidateRejectsOutOfRangeEvents(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"crash rank beyond run", NewPlan(1).Crash(4, 1), "crash of rank 4 out of range"},
		{"stall rank beyond run", NewPlan(1).StallRank(7, 1, 2), "stall of rank 7 out of range"},
		{"NIC stall node beyond run", NewPlan(1).StallNIC(9, 0, 1), "node 9 out of range"},
		{"degrade link beyond run", NewPlan(1).DegradeLink(0, 5, 0, 1, 2, 2), "link 0->5 out of range"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(4, 0)
		if err == nil {
			t.Errorf("%s: Validate(4, 0) accepted the plan", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Wildcard degrade endpoints (-1) stay valid at any rank count.
	if err := NewPlan(1).DegradeLink(-1, -1, 0, 1, 2, 2).Validate(2, 0); err != nil {
		t.Errorf("wildcard degrade rejected: %v", err)
	}
}

func TestValidateRejectsBeyondHorizonEvents(t *testing.T) {
	if err := NewPlan(1).Crash(0, 100).Validate(2, 10); err == nil {
		t.Error("crash beyond the horizon accepted")
	} else if !strings.Contains(err.Error(), "can never fire") {
		t.Errorf("unexpected horizon error: %v", err)
	}
	if err := NewPlan(1).StallRank(1, 50, 5).Validate(2, 10); err == nil {
		t.Error("stall beyond the horizon accepted")
	}
	// horizon = 0 disables the check; in-horizon events always pass.
	if err := NewPlan(1).Crash(0, 100).Validate(2, 0); err != nil {
		t.Errorf("horizonless validation rejected an in-range crash: %v", err)
	}
	if err := NewPlan(1).Crash(0, 5).StallRank(1, 3, 2).Validate(2, 10); err != nil {
		t.Errorf("in-horizon plan rejected: %v", err)
	}
}

func TestRankStallEarliestWins(t *testing.T) {
	p := NewPlan(1).StallRank(2, 9, 1).StallRank(2, 4, 3)
	start, dur := p.RankStall(2)
	if start != 4 || dur != 3 {
		t.Errorf("RankStall(2) = (%v, %v), want the earliest freeze (4, 3)", start, dur)
	}
	if start, _ := p.RankStall(0); !math.IsInf(start, 1) {
		t.Errorf("RankStall(0) = %v, want +Inf for an unscheduled rank", start)
	}
	if !strings.Contains(p.String(), "freeze(rank=2") {
		t.Errorf("String() omits the freeze schedule: %s", p)
	}
}

func TestCorruptRecordTornAndBitFlip(t *testing.T) {
	frame := make([]byte, 1000)
	for i := range frame {
		frame[i] = byte(i)
	}
	p := NewPlan(1).TornWrite(6, 1, 0.5).FlipBit(9, 0, 12345)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	// Non-matching (step, rank) pass through untouched, same backing
	// array (no copy on the hot path).
	if got := p.CorruptRecord(6, 0, frame); len(got) != len(frame) || &got[0] != &frame[0] {
		t.Fatal("non-matching record was not passed through")
	}
	torn := p.CorruptRecord(6, 1, frame)
	if len(torn) != 500 {
		t.Fatalf("torn write kept %d of %d bytes, want 500", len(torn), len(frame))
	}
	flipped := p.CorruptRecord(9, 0, frame)
	if len(flipped) != len(frame) {
		t.Fatalf("bit flip changed the length to %d", len(flipped))
	}
	diff := 0
	for i := range frame {
		if frame[i] != flipped[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes, want exactly 1", diff)
	}
	// The flip must not mutate the caller's frame in place.
	if frame[(12345%(8*1000))/8] != byte((12345%(8*1000))/8%256) {
		t.Fatal("bit flip mutated the original frame")
	}
	// Deterministic: same plan, same damage.
	again := p.CorruptRecord(9, 0, frame)
	if string(again) != string(flipped) {
		t.Fatal("bit flip not deterministic")
	}
}

func TestCorruptionBuilderValidation(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"torn negative rank", NewPlan(1).TornWrite(3, -1, 0.5), "negative step"},
		{"torn keepFrac one", NewPlan(1).TornWrite(3, 0, 1.0), "outside [0, 1)"},
		{"torn keepFrac NaN", NewPlan(1).TornWrite(3, 0, math.NaN()), "outside [0, 1)"},
		{"flip negative bit", NewPlan(1).FlipBit(3, 0, -1), "negative bit index"},
	}
	for _, tc := range cases {
		if err := tc.plan.Err(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Err() = %v, want %q", tc.name, tc.plan.Err(), tc.want)
		}
	}
	// Out-of-range corruption ranks are caught at install time.
	p := NewPlan(1).TornWrite(3, 8, 0.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if err := p.ValidatePlan(4); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("ValidatePlan = %v, want out-of-range complaint", err)
	}
	// String mentions the schedule.
	s := NewPlan(1).TornWrite(6, 1, 0.5).FlipBit(9, 0, 3).String()
	if !strings.Contains(s, "torn(step=6,rank=1") || !strings.Contains(s, "bitflip(step=9,rank=0,bit=3)") {
		t.Errorf("String() = %s", s)
	}
}
