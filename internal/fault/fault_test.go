package fault

import (
	"math"
	"testing"

	"nektar/internal/simnet"
)

// The plan must satisfy the simulator's injector contract.
var _ simnet.Injector = (*Plan)(nil)

func TestDropDecisionDeterministic(t *testing.T) {
	a := NewPlan(42).WithDrops(0.3)
	b := NewPlan(42).WithDrops(0.3)
	for n := 0; n < 1000; n++ {
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if a.DropMessage(src, dst, n, 0) != b.DropMessage(src, dst, n, 0) {
					t.Fatalf("same-seed plans disagree at (src=%d, dst=%d, n=%d)", src, dst, n)
				}
			}
		}
	}
	if a.Drops() != b.Drops() {
		t.Fatalf("drop counts differ: %d vs %d", a.Drops(), b.Drops())
	}
	if a.Drops() == 0 {
		t.Fatal("expected some drops at p=0.3 over 16000 trials")
	}
}

func TestDropDecisionOrderIndependent(t *testing.T) {
	p := NewPlan(7).WithDrops(0.5)
	forward := make([]bool, 100)
	for n := 0; n < 100; n++ {
		forward[n] = p.DropMessage(0, 1, n, 0)
	}
	q := NewPlan(7).WithDrops(0.5)
	for n := 99; n >= 0; n-- {
		if q.DropMessage(0, 1, n, 0) != forward[n] {
			t.Fatalf("drop decision for n=%d depends on query order", n)
		}
	}
}

func TestDropRateApproximatesProbability(t *testing.T) {
	p := NewPlan(1).WithDrops(0.1)
	const trials = 20000
	for n := 0; n < trials; n++ {
		p.DropMessage(0, 1, n, 0)
	}
	rate := float64(p.Drops()) / trials
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("observed drop rate %.4f far from requested 0.1", rate)
	}
}

func TestCrashSchedule(t *testing.T) {
	p := NewPlan(0).Crash(2, 1.5).Crash(2, 3.0) // second call keeps earlier time
	if got := p.CrashTime(2); got != 1.5 {
		t.Fatalf("CrashTime(2) = %v, want 1.5", got)
	}
	if got := p.CrashTime(0); !math.IsInf(got, 1) {
		t.Fatalf("CrashTime(0) = %v, want +Inf", got)
	}
}

func TestCrashRandomReproducible(t *testing.T) {
	t1 := NewPlan(99).CrashRandom(0, 3600)
	t2 := NewPlan(99).CrashRandom(0, 3600)
	if t1 != t2 {
		t.Fatalf("same-seed sampled crash times differ: %v vs %v", t1, t2)
	}
	if t1 <= 0 {
		t.Fatalf("sampled crash time %v not positive", t1)
	}
}

func TestLinkFactorsWindows(t *testing.T) {
	p := NewPlan(0).
		DegradeLink(0, 1, 1.0, 2.0, 4, 8).
		DegradeLink(-1, -1, 1.5, 2.5, 2, 2)
	lat, bw := p.LinkFactors(0, 1, 0.5)
	if lat != 1 || bw != 1 {
		t.Fatalf("outside window: (%v,%v), want (1,1)", lat, bw)
	}
	lat, bw = p.LinkFactors(0, 1, 1.2)
	if lat != 4 || bw != 8 {
		t.Fatalf("single window: (%v,%v), want (4,8)", lat, bw)
	}
	lat, bw = p.LinkFactors(0, 1, 1.7) // both windows: compound
	if lat != 8 || bw != 16 {
		t.Fatalf("overlapping windows: (%v,%v), want (8,16)", lat, bw)
	}
	lat, bw = p.LinkFactors(3, 2, 1.7) // only the wildcard window
	if lat != 2 || bw != 2 {
		t.Fatalf("wildcard window: (%v,%v), want (2,2)", lat, bw)
	}
}

func TestStallUntil(t *testing.T) {
	p := NewPlan(0).StallNIC(1, 0.5, 0.8)
	if got := p.StallUntil(1, 0.6); got != 0.8 {
		t.Fatalf("inside window: %v, want 0.8", got)
	}
	if got := p.StallUntil(1, 0.9); got != 0 {
		t.Fatalf("after window: %v, want 0", got)
	}
	if got := p.StallUntil(0, 0.6); got != 0 {
		t.Fatalf("other node: %v, want 0", got)
	}
}

// TestPlanDeterministicSimulation is the tentpole acceptance check at
// the simnet level: the same seeded plan drives two simulations to
// identical virtual-time traces.
func TestPlanDeterministicSimulation(t *testing.T) {
	model := &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 50, BandwidthMBs: 10, OverheadUS: 5},
	}
	body := func(n *simnet.Node) {
		for i := 0; i < 20; i++ {
			n.Compute(1e-4)
			dst := (n.Rank + 1) % n.P
			src := (n.Rank + n.P - 1) % n.P
			n.SendLossy(dst, i, []float64{float64(i)})
			// Collect whatever arrived; lossy sends may vanish, so use
			// a deadline rather than a blocking receive.
			n.RecvDeadline(src, i, n.Clock()+5e-4)
		}
	}
	run := func() ([]float64, int) {
		p := NewPlan(1234).WithDrops(0.2).
			DegradeLink(-1, -1, 0.001, 0.002, 3, 3).
			StallNIC(0, 0.0005, 0.0015)
		wall, _, err := simnet.RunWithFaults(4, model, p, body)
		if err != nil {
			t.Fatalf("RunWithFaults: %v", err)
		}
		return wall, p.Drops()
	}
	w1, d1 := run()
	w2, d2 := run()
	if d1 != d2 {
		t.Fatalf("drop counts differ across same-seed runs: %d vs %d", d1, d2)
	}
	if d1 == 0 {
		t.Fatal("expected drops at p=0.2")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("rank %d wall differs across same-seed runs: %v vs %v", i, w1[i], w2[i])
		}
	}
}
