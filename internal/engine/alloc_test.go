package engine

import (
	"io"
	"testing"

	"nektar/internal/timing"
)

// nullSolver isolates the driver's own per-step overhead: Step does no
// numeric work but charges fake host time so the trace path emits both
// a stage and a step event every step.
type nullSolver struct {
	steps int
	st    *timing.Stages
}

func (s *nullSolver) Step() {
	s.st.Seconds[s.steps%len(s.st.Seconds)] += 1e-6
	s.steps++
}
func (s *nullSolver) StepCount() int                { return s.steps }
func (s *nullSolver) Stages() *timing.Stages        { return s.st }
func (s *nullSolver) Checkpoint(w io.Writer) error  { return nil }
func (s *nullSolver) Restore(r io.Reader) error     { return nil }
func (s *nullSolver) HealthSample() (float64, bool) { return 1, true }

// runAllocs returns the average allocations of one traced Loop.Run over
// the given step count (setup and the final snapshot included).
func runAllocs(t *testing.T, steps int) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		l := &Loop{
			Solver: &nullSolver{st: timing.NewStages("a", "b", "c")},
			Steps:  steps,
			Trace:  NewTracer(io.Discard),
		}
		if _, err := l.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStepLoopAllocs guards the allocation diet: the driver's traced
// per-step path — snapshot refresh, stage/step event emission — must
// stay allocation-free (the reused snapshot pair and the tracer's
// scratch event replaced three slice copies and one escaping Event per
// emission each step). The bound of 1 alloc/step absorbs rare
// encoder-internal growth without letting a per-event regression (>= 2
// allocs/step) back in.
func TestStepLoopAllocs(t *testing.T) {
	const span = 200
	base := runAllocs(t, 1)
	long := runAllocs(t, 1+span)
	perStep := (long - base) / span
	if perStep > 1 {
		t.Fatalf("traced step loop allocates %.2f allocs/step (loop of %d steps: %.0f, of 1 step: %.0f); want <= 1",
			perStep, 1+span, long, base)
	}
}
