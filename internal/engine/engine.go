// Package engine is the one time-stepping driver shared by every
// Nektar solver configuration. The paper evaluates a single
// spectral/hp Navier-Stokes code in three configurations — serial 2D
// (Table 1), Fourier-parallel 3D (Table 2), and ALE moving-mesh
// (Table 3) — and this package holds the loop they all run under:
// stepping, per-stage accounting, checkpoint cadence, the
// numerical-health watchdog, and the supervision/recovery hooks.
// A solver plugs in by implementing Solver; everything above it
// (internal/supervisor, internal/bench, the commands) drives the
// interface and never switches on the concrete solver type, so adding
// a fourth workload is a one-file job.
//
// The driver can also emit a structured per-step trace (trace.go): one
// JSONL event per step, per stage-with-work, per checkpoint, and per
// watchdog trip or halt, which internal/report consumes to rebuild the
// paper's per-stage breakdowns from a recorded run.
package engine

import (
	"fmt"
	"io"

	"nektar/internal/timing"
)

// Solver is one rank of a time-stepping solver. NS2D, NSF, and NSALE
// (internal/core) implement it.
type Solver interface {
	// Step advances the solution by one time step.
	Step()
	// StepCount reports the number of steps taken since construction
	// or the last Restore.
	StepCount() int
	// Stages exposes the per-stage instrumentation the step loop
	// charges work to.
	Stages() *timing.Stages
	// Checkpoint serializes the complete time-stepping state; Restore
	// loads it into a solver built with the same configuration, after
	// which stepping resumes bit-identically.
	Checkpoint(w io.Writer) error
	Restore(r io.Reader) error
	// HealthSample reports rank-local numerical health: the largest
	// field magnitude and whether every sampled value is finite.
	HealthSample() (maxAbs float64, finite bool)
}

// Trip records a watchdog trip: the driving rank's fields failed the
// health check at a step.
type Trip struct {
	Rank   int
	Step   int
	MaxAbs float64
	Finite bool
}

// Watchdog configures the loop's numerical-health check, sampled at
// step boundaries before any state is checkpointed.
type Watchdog struct {
	// Disabled turns the watchdog off entirely.
	Disabled bool
	// Every is the sampling period in steps (values < 1 mean 1).
	Every int
	// MaxAbs trips when any field magnitude exceeds it (0 = no limit;
	// NaN/Inf always trip).
	MaxAbs float64
	// MaxGrowth trips when the magnitude exceeds MaxGrowth times the
	// loop's first sample (0 = no growth limit). The baseline is taken
	// after the first sample's own verdict, so the first sample can
	// never trip on growth.
	MaxGrowth float64
	// Agree turns the local verdict into a collective one (typically an
	// Allreduce Max over ranks): every rank must leave the loop at the
	// same step boundary, or survivors block in the next collective.
	// Nil means the local verdict stands. Agree is called at every
	// sampled boundary regardless of the local verdict, because a
	// collective must be entered by all ranks.
	Agree func(bad bool) bool
	// OnTrip fires on the rank whose own sample was bad, before the
	// loop returns — the hook where the supervisor records the trip and
	// notifies its monitor.
	OnTrip func(Trip)
}

// Outcome classifies how a Loop run ended.
type Outcome int

const (
	// Completed: the solver reached the target step count.
	Completed Outcome = iota
	// Halted: Poll ordered the loop to stop at a step boundary.
	Halted
	// Tripped: the watchdog verdict ended the run before the corrupt
	// state could reach a checkpoint.
	Tripped
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Halted:
		return "halted"
	case Tripped:
		return "tripped"
	}
	return "unknown"
}

// Result reports a finished Loop run.
type Result struct {
	Outcome Outcome
	// StepsRun counts the steps this run executed (excluding any steps
	// already on the solver's counter from a restored checkpoint).
	StepsRun int
	// Final is the solver's serialized end state (Completed runs only).
	Final []byte
	// Trip is set when this rank's own sample tripped the watchdog.
	Trip *Trip
}

// Loop is the driver: one configured step loop over a Solver. The
// zero value of every optional field means "feature off", so a bare
// Loop{Solver: s, Steps: n} is a plain step loop.
//
// Per-step order, which fault-tolerance correctness depends on:
// Poll (collective halt check) -> Step -> OnStep -> watchdog sample
// and collective verdict -> PostStep -> checkpoint. A watchdog trip
// exits before the checkpoint stage, so corrupt state is never staged;
// OnStep runs immediately after Step so per-step accounting survives a
// mid-loop crash unwinding the rank's goroutine.
type Loop struct {
	Solver Solver
	// Steps is the absolute target: the loop runs until
	// Solver.StepCount() reaches it.
	Steps int
	// Rank labels trace events and trips (0 for serial runs).
	Rank int

	// CheckpointEvery stages a checkpoint every so many steps (0
	// disables; the final state is not handed to OnCheckpoint).
	// OnCheckpoint receives the serialized state and owns staging it
	// and charging any I/O cost.
	CheckpointEvery int
	OnCheckpoint    func(step int, state []byte)
	// Cadence, when set, replaces the static CheckpointEvery rule with
	// a live policy (see internal/policy's Young's-formula controller):
	// it is consulted once per completed step, in step order, and its
	// verdict decides whether that step stages a checkpoint. Setting
	// both Cadence and CheckpointEvery is a configuration error — the
	// two rules would be ambiguous.
	Cadence CadencePolicy
	// Sink, when set, receives every marshalled snapshot — the mid-run
	// checkpoints and the final state — for durable storage (see
	// internal/ckpt). The loop drains it on every exit path, so a
	// returned Run means every submitted snapshot is on the medium.
	Sink CheckpointSink

	// Poll is the pre-step halt check (collective for parallel runs);
	// returning true ends the loop with Outcome Halted.
	Poll func() bool
	// FinalOnHalt makes a Poll-ordered halt take the same snapshot path
	// as completion: the state at the halted step boundary is marshalled
	// into Result.Final and submitted to the Sink (marked final), so a
	// drained run can be parked durably and resumed later. Off by
	// default — a plain halt leaves only the cadence checkpoints. A
	// watchdog trip never snapshots regardless: corrupt state must not
	// reach the store.
	FinalOnHalt bool
	// OnStep fires immediately after each Step, before the watchdog.
	OnStep func(step int)
	// PostStep fires after the watchdog verdict clears, before the
	// checkpoint stage — the supervisor's heartbeat slot.
	PostStep func(step int)

	Watchdog Watchdog

	// Trace, when set, receives the structured per-step event stream.
	Trace *Tracer
}

// CadencePolicy decides the live checkpoint cadence. ShouldCheckpoint
// is consulted exactly once per completed step (ascending step order,
// never for the final step, whose snapshot is unconditional), so an
// implementation may advance internal state in the call. In a parallel
// run every rank must reach the same verdict at the same step —
// checkpoint staging is collective — so implementations must be
// deterministic functions of rank-identical inputs.
type CadencePolicy interface {
	ShouldCheckpoint(step int) bool
}

// CheckpointSink receives marshalled snapshots for durable storage off
// the step loop's critical path. Submit may buffer (an asynchronous
// writer) or persist inline charging its cost (a simulated-disk
// writer); final marks the run's end-state snapshot. Drain blocks
// until everything submitted is durable and returns the first write
// error. internal/ckpt provides the implementations.
type CheckpointSink interface {
	Submit(step int, state []byte, final bool) error
	Drain() error
}

// Validate checks the loop configuration and returns a descriptive
// error for each way a run cannot work: a nil Solver, a negative
// checkpoint interval (a negative modulus would checkpoint on
// arbitrary steps instead of never), a negative watchdog period
// (silently clamping it would sample every step, the opposite of what
// a negative value suggests the caller wanted), or an ambiguous
// cadence (both the static interval and a live policy set).
func (l *Loop) Validate() error {
	if l.Solver == nil {
		return fmt.Errorf("engine: Loop.Solver is nil — the loop has nothing to step")
	}
	if l.CheckpointEvery < 0 {
		return fmt.Errorf("engine: negative CheckpointEvery %d — use 0 to disable checkpointing", l.CheckpointEvery)
	}
	if l.Watchdog.Every < 0 {
		return fmt.Errorf("engine: negative Watchdog.Every %d — use 0 for the every-step default or Disabled to turn the watchdog off", l.Watchdog.Every)
	}
	if l.Cadence != nil && l.CheckpointEvery > 0 {
		return fmt.Errorf("engine: both CheckpointEvery (%d) and a live Cadence policy are set — pick one checkpoint rule", l.CheckpointEvery)
	}
	return nil
}

// Run executes the loop to its outcome. Errors are configuration,
// serialization, or checkpoint-sink failures only; solver and
// communication failures panic, matching the simulated cluster's
// crash-unwinding model. When a Sink is configured it is drained on
// every exit path, so a returned Run means every submitted snapshot is
// durable.
func (l *Loop) Run() (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	res, err := l.run()
	if l.Sink != nil {
		if derr := l.Sink.Drain(); derr != nil && err == nil {
			err = derr
		}
	}
	return res, err
}

func (l *Loop) run() (Result, error) {
	s := l.Solver
	wdEvery := l.Watchdog.Every
	if wdEvery < 1 {
		wdEvery = 1
	}
	res := Result{}
	baseline := -1.0
	// snap/cur are a reused snapshot pair: traceStep refills cur and the
	// swap makes it the next step's baseline, so tracing allocates
	// nothing per step.
	var snap, cur timing.Snapshot
	if l.Trace != nil {
		s.Stages().SnapshotInto(&snap)
	}
	for s.StepCount() < l.Steps {
		if l.Poll != nil && l.Poll() {
			res.Outcome = Halted
			if l.FinalOnHalt {
				final, err := l.snapshot(s.StepCount(), true)
				if err != nil {
					return res, err
				}
				res.Final = final
			}
			l.trace(Event{Ev: EvHalt, Rank: l.Rank, Step: s.StepCount()})
			return res, nil
		}
		s.Step()
		step := s.StepCount()
		res.StepsRun++
		if l.OnStep != nil {
			l.OnStep(step)
		}
		if l.Trace != nil {
			l.traceStep(step, &snap, &cur)
			snap, cur = cur, snap
		}

		if !l.Watchdog.Disabled && step%wdEvery == 0 {
			maxAbs, finite := s.HealthSample()
			bad := !finite ||
				(l.Watchdog.MaxAbs > 0 && maxAbs > l.Watchdog.MaxAbs) ||
				(l.Watchdog.MaxGrowth > 0 && baseline > 0 && maxAbs > l.Watchdog.MaxGrowth*baseline)
			if baseline < 0 {
				baseline = maxAbs
			}
			verdict := bad
			if l.Watchdog.Agree != nil {
				verdict = l.Watchdog.Agree(bad)
			}
			if verdict {
				res.Outcome = Tripped
				if bad {
					trip := Trip{Rank: l.Rank, Step: step, MaxAbs: maxAbs, Finite: finite}
					res.Trip = &trip
					l.trace(Event{Ev: EvTrip, Rank: l.Rank, Step: step, MaxAbs: maxAbs, Finite: &finite})
					if l.Watchdog.OnTrip != nil {
						l.Watchdog.OnTrip(trip)
					}
				}
				return res, nil
			}
		}
		if l.PostStep != nil {
			l.PostStep(step)
		}
		if step < l.Steps && l.stageAt(step) {
			if _, err := l.snapshot(step, false); err != nil {
				return res, err
			}
		}
	}
	// The final state takes the same marshal/trace/sink path as a
	// mid-run checkpoint (marked final) — it is not an untraced special
	// case — but is returned in the Result rather than handed to
	// OnCheckpoint, whose contract is mid-run staging only.
	final, err := l.snapshot(s.StepCount(), true)
	if err != nil {
		return res, err
	}
	res.Final = final
	res.Outcome = Completed
	l.trace(Event{Ev: EvDone, Rank: l.Rank, Step: s.StepCount()})
	return res, nil
}

// stageAt is the checkpoint-cadence rule for one completed mid-run
// step: the live policy when one is wired, the static interval
// otherwise.
func (l *Loop) stageAt(step int) bool {
	if l.Cadence != nil {
		return l.Cadence.ShouldCheckpoint(step)
	}
	return l.CheckpointEvery > 0 && step%l.CheckpointEvery == 0
}

// snapshot is the one marshal path: it serializes the solver, emits
// the checkpoint trace event, and feeds the sink (ckpt_begin marks the
// hand-off; the sink emits ckpt_done when the record is durable).
func (l *Loop) snapshot(step int, final bool) ([]byte, error) {
	state, err := Marshal(l.Solver)
	if err != nil {
		return nil, err
	}
	l.trace(Event{Ev: EvCheckpoint, Rank: l.Rank, Step: step, Bytes: len(state), Final: final})
	if l.Sink != nil {
		l.trace(Event{Ev: EvCkptBegin, Rank: l.Rank, Step: step, Bytes: len(state), Final: final})
		if err := l.Sink.Submit(step, state, final); err != nil {
			return nil, err
		}
	}
	if !final && l.OnCheckpoint != nil {
		l.OnCheckpoint(step, state)
	}
	return state, nil
}

// trace emits e when tracing is on.
func (l *Loop) trace(e Event) {
	if l.Trace != nil {
		l.Trace.Emit(e)
	}
}

// traceStep emits the step event plus one stage event per stage that
// did work this step. prev holds the accumulators at the previous step
// boundary; cur is a scratch snapshot refilled here (the caller swaps
// the pair afterwards).
func (l *Loop) traceStep(step int, prev, cur *timing.Snapshot) {
	st := l.Solver.Stages()
	st.SnapshotInto(cur)
	var hostS, pricedS, wallS float64
	for i, name := range st.Names {
		dh := cur.Seconds[i] - prev.Seconds[i]
		dp := cur.Priced[i] - prev.Priced[i]
		dw := 0.0
		if i < len(cur.Wall) && i < len(prev.Wall) {
			dw = cur.Wall[i] - prev.Wall[i]
		}
		hostS += dh
		pricedS += dp
		wallS += dw
		if dh == 0 && dp == 0 && dw == 0 {
			continue
		}
		l.Trace.Emit(Event{
			Ev: EvStage, Rank: l.Rank, Step: step, Stage: name,
			HostS: dh, PricedS: dp, WallS: dw,
		})
	}
	l.Trace.Emit(Event{
		Ev: EvStep, Rank: l.Rank, Step: step,
		HostS: hostS, PricedS: pricedS, WallS: wallS,
	})
}
