package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// The one checkpoint codec. Every solver serializes its state struct
// through these helpers, so the wire format (deterministic gob: equal
// trajectories give byte-identical checkpoints within one process) is
// decided in exactly one place. Across processes the raw bytes are
// NOT stable — gob assigns wire type IDs from a process-global
// counter in first-encounter order — so cross-process identity checks
// must compare canonical content (see farm.HashState), not streams.

// EncodeState writes st as a gob stream.
func EncodeState(w io.Writer, st any) error {
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("engine: encoding checkpoint: %w", err)
	}
	return nil
}

// DecodeState reads a gob stream produced by EncodeState into st.
func DecodeState(r io.Reader, st any) error {
	if err := gob.NewDecoder(r).Decode(st); err != nil {
		return fmt.Errorf("engine: decoding checkpoint: %w", err)
	}
	return nil
}

// Marshal captures a solver's checkpoint as one byte slice.
func Marshal(s Solver) ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore loads a Marshal-ed checkpoint into s.
func Restore(s Solver, state []byte) error {
	return s.Restore(bytes.NewReader(state))
}
