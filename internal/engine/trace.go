package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Trace-event schema. One JSON object per line (JSONL); every event
// carries ev, rank, and step. Seconds fields are deltas for the event's
// step, not accumulators:
//
//	step        one solver step finished; host_s/priced_s/wall_s are
//	            the step's totals across all stages
//	stage       per-stage share of one step (only stages that did work)
//	checkpoint  a checkpoint of bytes size was staged at step (final
//	            marks the run's end-state snapshot)
//	ckpt_begin  the marshalled state was handed to the checkpoint sink
//	            (exposed durable-write lifecycle starts)
//	ckpt_done   the sink made the record durable: stored/ratio are the
//	            framed size and compression ratio, hidden_s the write
//	            time overlapped with stepping, exposed_s the time the
//	            step loop actually blocked (backpressure)
//	rollback    a run resumed from the checkpoint at step (attempt is
//	            the relaunch index)
//	trip        the watchdog ended the run: max_abs/finite explain why
//	halt        a supervisor halt order ended the run at step
//	done        the run reached its target step count
//
// The adaptive-resilience layer (internal/policy) adds two events:
//
//	policy_switch  a live policy changed its decision: policy names the
//	               controller ("cadence" or "writer"), from/to the old
//	               and new settings, and the evidence rides along
//	               (mtbf_s/delta_s/interval for cadence, exposed or
//	               cost ratios for writer selection)
//	escalate       the adaptive watchdog ladder took its next recovery
//	               rung: to is the action ("retry-dt", "rollback",
//	               "convict"), dt_scale the time-step reduction in
//	               force after the decision
//
// The spectral solvers (internal/spectral) add two online-diagnostic
// events, emitted by rank 0 at the solver's DiagEvery cadence:
//
//	spectrum     the shell-summed energy spectrum at step: bins[i] is
//	             the kinetic energy in integer shell round(|k|) = i,
//	             energy the total over all modes
//	dissipation  the scalar budget at step: energy, enstrophy, and the
//	             dissipation rate 2*nu*enstrophy
const (
	EvStep         = "step"
	EvStage        = "stage"
	EvCheckpoint   = "checkpoint"
	EvCkptBegin    = "ckpt_begin"
	EvCkptDone     = "ckpt_done"
	EvRollback     = "rollback"
	EvTrip         = "trip"
	EvHalt         = "halt"
	EvDone         = "done"
	EvPolicySwitch = "policy_switch"
	EvEscalate     = "escalate"
	EvSpectrum     = "spectrum"
	EvDissipation  = "dissipation"
)

// Event is one trace record.
type Event struct {
	Ev   string `json:"ev"`
	Rank int    `json:"rank"`
	Step int    `json:"step"`

	Stage   string  `json:"stage,omitempty"`
	HostS   float64 `json:"host_s,omitempty"`
	PricedS float64 `json:"priced_s,omitempty"`
	WallS   float64 `json:"wall_s,omitempty"`

	Bytes   int     `json:"bytes,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	MaxAbs  float64 `json:"max_abs,omitempty"`
	Finite  *bool   `json:"finite,omitempty"`

	// Durable-write fields (ckpt_begin/ckpt_done, see internal/ckpt).
	Stored   int     `json:"stored,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
	HiddenS  float64 `json:"hidden_s,omitempty"`
	ExposedS float64 `json:"exposed_s,omitempty"`
	// Final marks the run's end-state snapshot (checkpoint events).
	Final bool `json:"final,omitempty"`

	// Adaptive-policy fields (policy_switch/escalate, internal/policy).
	Policy   string  `json:"policy,omitempty"`
	From     string  `json:"from,omitempty"`
	To       string  `json:"to,omitempty"`
	MTBFS    float64 `json:"mtbf_s,omitempty"`
	DeltaS   float64 `json:"delta_s,omitempty"`
	Interval int     `json:"interval,omitempty"`
	DtScale  float64 `json:"dt_scale,omitempty"`

	// Spectral-diagnostic fields (spectrum/dissipation,
	// internal/spectral). Bins is the shell-summed energy spectrum.
	Bins        []float64 `json:"bins,omitempty"`
	Energy      float64   `json:"energy,omitempty"`
	Enstrophy   float64   `json:"enstrophy,omitempty"`
	Dissipation float64   `json:"dissipation,omitempty"`
}

// Tracer serializes events from concurrently stepping ranks onto one
// JSONL stream. The simulated cluster runs ranks as goroutines, so the
// writer is mutex-guarded.
type Tracer struct {
	mu      sync.Mutex
	enc     *json.Encoder
	scratch Event // reused encode target, guarded by mu
}

// NewTracer wraps w in a tracer. The caller owns closing w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w)}
}

// Emit writes one event as a JSON line.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Copying into the tracer-owned scratch keeps the argument from
	// escaping; the step loop emits several events per step.
	t.scratch = e
	// Encoding can only fail on the writer; a trace is advisory
	// instrumentation, so a broken sink must not kill the run.
	_ = t.enc.Encode(&t.scratch)
}

// ReadEvents parses a JSONL trace stream back into events, for report
// generation over a recorded run.
func ReadEvents(r io.Reader) ([]Event, error) {
	var evs []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("engine: trace line %d: %w", line, err)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("engine: reading trace: %w", err)
	}
	return evs, nil
}
