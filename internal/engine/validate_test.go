package engine

import (
	"strings"
	"testing"
)

func TestValidateRejectsNilSolver(t *testing.T) {
	loop := Loop{Steps: 4}
	if _, err := loop.Run(); err == nil || !strings.Contains(err.Error(), "Solver is nil") {
		t.Fatalf("nil-solver Run err = %v", err)
	}
}

func TestValidateRejectsNegativeCheckpointEvery(t *testing.T) {
	// Go's % keeps the dividend's sign, so a negative cadence would
	// silently fire on arbitrary steps instead of erroring.
	s := newFakeSolver(func(step int) float64 { return 1 })
	loop := Loop{Solver: s, Steps: 4, CheckpointEvery: -2}
	if _, err := loop.Run(); err == nil || !strings.Contains(err.Error(), "CheckpointEvery") {
		t.Fatalf("negative-cadence Run err = %v", err)
	}
}

func TestValidateRejectsNegativeWatchdogEvery(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return 1 })
	loop := Loop{Solver: s, Steps: 4, Watchdog: Watchdog{Every: -1}}
	if _, err := loop.Run(); err == nil || !strings.Contains(err.Error(), "Watchdog.Every") {
		t.Fatalf("negative-watchdog Run err = %v", err)
	}
}

func TestValidateRejectsAmbiguousCheckpointRules(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return 1 })
	loop := Loop{Solver: s, Steps: 4, CheckpointEvery: 2,
		Cadence: fixedCadence{3}, Watchdog: Watchdog{Disabled: true}}
	if _, err := loop.Run(); err == nil || !strings.Contains(err.Error(), "pick one checkpoint rule") {
		t.Fatalf("ambiguous-rules Run err = %v", err)
	}
}

// fixedCadence checkpoints every n steps via the policy hook — the
// live-policy analogue of CheckpointEvery, for hook plumbing tests.
type fixedCadence struct{ n int }

func (c fixedCadence) ShouldCheckpoint(step int) bool {
	return c.n > 0 && step%c.n == 0
}

// recordingCadence logs every consultation so tests can assert the
// hook contract: once per completed step, ascending, never the final
// step.
type recordingCadence struct {
	asked []int
	fire  func(step int) bool
}

func (c *recordingCadence) ShouldCheckpoint(step int) bool {
	c.asked = append(c.asked, step)
	return c.fire(step)
}

func TestCadencePolicyDrivesCheckpoints(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return float64(step) })
	pol := &recordingCadence{fire: func(step int) bool { return step%3 == 0 }}
	var ckSteps []int
	loop := Loop{
		Solver: s, Steps: 10, Cadence: pol,
		OnCheckpoint: func(step int, state []byte) { ckSteps = append(ckSteps, step) },
		Watchdog:     Watchdog{Disabled: true},
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	// The policy was consulted once per completed step except the final
	// one (whose snapshot is the end state, not a checkpoint).
	if len(pol.asked) != 9 {
		t.Fatalf("policy consulted at %v, want steps 1..9", pol.asked)
	}
	for i, step := range pol.asked {
		if step != i+1 {
			t.Fatalf("policy consulted at %v, want ascending 1..9", pol.asked)
		}
	}
	if len(ckSteps) != 3 || ckSteps[0] != 3 || ckSteps[1] != 6 || ckSteps[2] != 9 {
		t.Fatalf("checkpoint steps %v, want [3 6 9]", ckSteps)
	}
}

func TestCadencePolicyMatchesStaticTrajectory(t *testing.T) {
	// A policy that mimics CheckpointEvery must reproduce the static
	// run bit for bit — the equivalence the adaptive layer's pinned
	// mode relies on.
	run := func(use Loop) []byte {
		res, err := use.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	sA := newFakeSolver(func(step int) float64 { return 1.0 / float64(step) })
	sB := newFakeSolver(func(step int) float64 { return 1.0 / float64(step) })
	staticFinal := run(Loop{Solver: sA, Steps: 12, CheckpointEvery: 4, Watchdog: Watchdog{Disabled: true}})
	policyFinal := run(Loop{Solver: sB, Steps: 12, Cadence: fixedCadence{4}, Watchdog: Watchdog{Disabled: true}})
	if string(staticFinal) != string(policyFinal) {
		t.Fatal("cadence-policy trajectory diverged from static run")
	}
}
