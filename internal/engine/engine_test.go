package engine

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"nektar/internal/timing"
)

// fakeSolver is a minimal Solver: its state is one float advanced by a
// caller-controlled rule, its checkpoint the gob of (step, value).
type fakeSolver struct {
	step    int
	value   float64
	advance func(step int) float64 // value after step (1-based)
	stages  *timing.Stages
}

type fakeState struct {
	Step  int
	Value float64
}

func newFakeSolver(advance func(step int) float64) *fakeSolver {
	return &fakeSolver{advance: advance, stages: timing.NewStages("work")}
}

func (f *fakeSolver) Step() {
	f.step++
	f.value = f.advance(f.step)
	f.stages.AddWall(0, 1)
}
func (f *fakeSolver) StepCount() int         { return f.step }
func (f *fakeSolver) Stages() *timing.Stages { return f.stages }

func (f *fakeSolver) Checkpoint(w io.Writer) error {
	return EncodeState(w, &fakeState{Step: f.step, Value: f.value})
}

func (f *fakeSolver) Restore(r io.Reader) error {
	var st fakeState
	if err := DecodeState(r, &st); err != nil {
		return err
	}
	f.step, f.value = st.Step, st.Value
	return nil
}

func (f *fakeSolver) HealthSample() (float64, bool) {
	return math.Abs(f.value), !math.IsNaN(f.value) && !math.IsInf(f.value, 0)
}

func TestLoopCompletesAndCheckpoints(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return float64(step) })
	var ckSteps []int
	loop := Loop{
		Solver: s, Steps: 10,
		CheckpointEvery: 3,
		OnCheckpoint: func(step int, state []byte) {
			ckSteps = append(ckSteps, step)
			if len(state) == 0 {
				t.Fatal("empty checkpoint")
			}
		},
		Watchdog: Watchdog{Disabled: true},
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed || res.StepsRun != 10 {
		t.Fatalf("outcome %v stepsRun %d", res.Outcome, res.StepsRun)
	}
	// Step 9 checkpoints; step 10 is the target and must not (the final
	// state is not a checkpoint).
	if len(ckSteps) != 3 || ckSteps[0] != 3 || ckSteps[2] != 9 {
		t.Fatalf("checkpoint steps %v", ckSteps)
	}
	if len(res.Final) == 0 {
		t.Fatal("no final state")
	}

	// Restore the step-6 checkpoint into a fresh solver and finish: the
	// final state must be byte-identical (determinism contract).
	s2 := newFakeSolver(func(step int) float64 { return float64(step) })
	var ck6 []byte
	loop2 := Loop{Solver: s2, Steps: 10, CheckpointEvery: 6, Watchdog: Watchdog{Disabled: true},
		OnCheckpoint: func(step int, state []byte) { ck6 = state }}
	if _, err := loop2.Run(); err != nil {
		t.Fatal(err)
	}
	s3 := newFakeSolver(func(step int) float64 { return float64(step) })
	if err := Restore(s3, ck6); err != nil {
		t.Fatal(err)
	}
	if s3.StepCount() != 6 {
		t.Fatalf("restored step %d", s3.StepCount())
	}
	loop3 := Loop{Solver: s3, Steps: 10, Watchdog: Watchdog{Disabled: true}}
	res3, err := loop3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res3.StepsRun != 4 {
		t.Fatalf("resumed run took %d steps", res3.StepsRun)
	}
	if !bytes.Equal(res.Final, res3.Final) {
		t.Fatal("resumed final state differs from straight run")
	}
}

func TestLoopHaltPoll(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return 0 })
	polls := 0
	loop := Loop{
		Solver: s, Steps: 100,
		Poll:     func() bool { polls++; return polls > 4 },
		Watchdog: Watchdog{Disabled: true},
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Halted || res.StepsRun != 4 {
		t.Fatalf("outcome %v stepsRun %d", res.Outcome, res.StepsRun)
	}
	if res.Final != nil {
		t.Fatal("halted run must not produce a final state")
	}
}

func TestLoopFinalOnHaltParksState(t *testing.T) {
	// With FinalOnHalt a drain-style halt snapshots the halted state: it
	// reaches both Result.Final and the sink (marked final), and a fresh
	// solver restored from it finishes bit-identically to an
	// uninterrupted run.
	s := newFakeSolver(func(step int) float64 { return float64(step * step) })
	sink := &recordingSink{}
	polls := 0
	loop := Loop{
		Solver: s, Steps: 10, FinalOnHalt: true, Sink: sink,
		Poll:     func() bool { polls++; return polls > 4 },
		Watchdog: Watchdog{Disabled: true},
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Halted || res.StepsRun != 4 {
		t.Fatalf("outcome %v stepsRun %d", res.Outcome, res.StepsRun)
	}
	if len(res.Final) == 0 {
		t.Fatal("FinalOnHalt halt returned no state")
	}
	if len(sink.steps) != 1 || sink.steps[0] != 4 || !sink.finals[0] {
		t.Fatalf("sink got steps %v finals %v, want one final submit at step 4", sink.steps, sink.finals)
	}

	resumed := newFakeSolver(func(step int) float64 { return float64(step * step) })
	if err := Restore(resumed, res.Final); err != nil {
		t.Fatal(err)
	}
	r2, err := (&Loop{Solver: resumed, Steps: 10, Watchdog: Watchdog{Disabled: true}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	straight := newFakeSolver(func(step int) float64 { return float64(step * step) })
	r3, err := (&Loop{Solver: straight, Steps: 10, Watchdog: Watchdog{Disabled: true}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r2.Final, r3.Final) {
		t.Fatal("run resumed from a parked halt differs from the uninterrupted run")
	}

	// A watchdog trip must never snapshot, FinalOnHalt or not.
	bad := newFakeSolver(func(step int) float64 { return math.NaN() })
	badSink := &recordingSink{}
	resT, err := (&Loop{Solver: bad, Steps: 10, FinalOnHalt: true, Sink: badSink}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if resT.Outcome != Tripped || len(badSink.steps) != 0 || resT.Final != nil {
		t.Fatalf("tripped run staged state: outcome %v, sink %v", resT.Outcome, badSink.steps)
	}
}

func TestLoopWatchdogNaNTrips(t *testing.T) {
	s := newFakeSolver(func(step int) float64 {
		if step == 3 {
			return math.NaN()
		}
		return 1
	})
	var got *Trip
	loop := Loop{
		Solver: s, Steps: 10, Rank: 7,
		Watchdog: Watchdog{OnTrip: func(tr Trip) { got = &tr }},
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Tripped || res.StepsRun != 3 {
		t.Fatalf("outcome %v stepsRun %d", res.Outcome, res.StepsRun)
	}
	if got == nil || got.Step != 3 || got.Rank != 7 || got.Finite {
		t.Fatalf("trip %+v", got)
	}
	if res.Trip == nil || res.Trip.Step != got.Step || res.Trip.Rank != got.Rank {
		t.Fatalf("result trip %+v", res.Trip)
	}
}

func TestLoopWatchdogGrowthBaseline(t *testing.T) {
	// The baseline is the first sample; growth is judged against it
	// from the second sample on — a large but steady field never trips.
	s := newFakeSolver(func(step int) float64 { return 1000 })
	loop := Loop{Solver: s, Steps: 5, Watchdog: Watchdog{MaxGrowth: 10}}
	if res, err := loop.Run(); err != nil || res.Outcome != Completed {
		t.Fatalf("steady field tripped: %v %v", res.Outcome, err)
	}
	// A 20x jump after the baseline sample must trip.
	s2 := newFakeSolver(func(step int) float64 {
		if step >= 4 {
			return 20
		}
		return 1
	})
	loop2 := Loop{Solver: s2, Steps: 10, Watchdog: Watchdog{MaxGrowth: 10}}
	res, err := loop2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Tripped || res.Trip == nil || res.Trip.Step != 4 {
		t.Fatalf("outcome %v trip %+v", res.Outcome, res.Trip)
	}
}

func TestLoopWatchdogAgreeIsCollective(t *testing.T) {
	// Agree must be consulted at every sampled boundary (it hides a
	// collective), and a true verdict ends the run even when the local
	// sample was healthy — with no Trip recorded for this rank.
	s := newFakeSolver(func(step int) float64 { return 1 })
	calls := 0
	loop := Loop{
		Solver: s, Steps: 10,
		Watchdog: Watchdog{Agree: func(bad bool) bool {
			if bad {
				t.Fatal("local sample should be healthy")
			}
			calls++
			return calls == 5
		}},
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Tripped || res.StepsRun != 5 {
		t.Fatalf("outcome %v stepsRun %d", res.Outcome, res.StepsRun)
	}
	if res.Trip != nil {
		t.Fatal("a peer's trip must not be recorded as ours")
	}
}

func TestLoopHookOrder(t *testing.T) {
	var order []string
	s := newFakeSolver(func(step int) float64 { return 1 })
	loop := Loop{
		Solver: s, Steps: 2, CheckpointEvery: 1,
		Poll:         func() bool { order = append(order, "poll"); return false },
		OnStep:       func(step int) { order = append(order, "onstep") },
		PostStep:     func(step int) { order = append(order, "poststep") },
		OnCheckpoint: func(step int, state []byte) { order = append(order, "checkpoint") },
		Watchdog: Watchdog{Agree: func(bad bool) bool {
			order = append(order, "watchdog")
			return false
		}},
	}
	if _, err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	want := "poll onstep watchdog poststep checkpoint poll onstep watchdog poststep"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("hook order\n got %s\nwant %s", got, want)
	}
}

func TestLoopTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	s := newFakeSolver(func(step int) float64 { return 1 })
	loop := Loop{
		Solver: s, Steps: 3, CheckpointEvery: 2,
		Watchdog: Watchdog{Disabled: true},
		Trace:    NewTracer(&buf),
	}
	if _, err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	finals := 0
	for _, e := range evs {
		count[e.Ev]++
		if e.Ev == EvCheckpoint && e.Final {
			finals++
			if e.Step != 3 {
				t.Fatalf("final snapshot traced at step %d", e.Step)
			}
		}
	}
	// Two checkpoint events: the step-2 mid-run checkpoint and the
	// final-state snapshot, which takes the same traced path.
	if count[EvStep] != 3 || count[EvStage] != 3 || count[EvCheckpoint] != 2 || count[EvDone] != 1 {
		t.Fatalf("event counts %v", count)
	}
	if finals != 1 {
		t.Fatalf("%d final-flagged checkpoint events", finals)
	}
	for _, e := range evs {
		if e.Ev == EvStage && (e.Stage != "work" || e.WallS != 1) {
			t.Fatalf("stage event %+v", e)
		}
		if e.Ev == EvStep && e.WallS != 1 {
			t.Fatalf("step event %+v", e)
		}
	}
}

// recordingSink captures Submit/Drain calls for loop-contract tests.
type recordingSink struct {
	steps   []int
	finals  []bool
	drained int
	subErr  error
	drnErr  error
}

func (r *recordingSink) Submit(step int, state []byte, final bool) error {
	r.steps = append(r.steps, step)
	r.finals = append(r.finals, final)
	return r.subErr
}

func (r *recordingSink) Drain() error {
	r.drained++
	return r.drnErr
}

func TestLoopSinkReceivesCheckpointsAndFinal(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return 1 })
	sink := &recordingSink{}
	loop := Loop{Solver: s, Steps: 5, CheckpointEvery: 2, Sink: sink,
		Watchdog: Watchdog{Disabled: true}}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	// Mid-run checkpoints at 2 and 4, then the final snapshot at 5.
	if len(sink.steps) != 3 || sink.steps[0] != 2 || sink.steps[1] != 4 || sink.steps[2] != 5 {
		t.Fatalf("sink steps %v", sink.steps)
	}
	if sink.finals[0] || sink.finals[1] || !sink.finals[2] {
		t.Fatalf("sink finals %v", sink.finals)
	}
	if sink.drained != 1 {
		t.Fatalf("drained %d times", sink.drained)
	}
}

func TestLoopSinkDrainedOnHalt(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return 1 })
	sink := &recordingSink{}
	polls := 0
	loop := Loop{Solver: s, Steps: 100, CheckpointEvery: 1, Sink: sink,
		Poll:     func() bool { polls++; return polls > 3 },
		Watchdog: Watchdog{Disabled: true}}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Halted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if sink.drained != 1 {
		t.Fatalf("halted run drained %d times", sink.drained)
	}
	for _, f := range sink.finals {
		if f {
			t.Fatal("halted run must not submit a final snapshot")
		}
	}
}

func TestLoopSinkErrorsSurface(t *testing.T) {
	s := newFakeSolver(func(step int) float64 { return 1 })
	sink := &recordingSink{subErr: io.ErrClosedPipe}
	loop := Loop{Solver: s, Steps: 4, CheckpointEvery: 2, Sink: sink,
		Watchdog: Watchdog{Disabled: true}}
	if _, err := loop.Run(); err == nil {
		t.Fatal("submit error did not surface")
	}
	if sink.drained != 1 {
		t.Fatal("failed run must still drain the sink")
	}

	s2 := newFakeSolver(func(step int) float64 { return 1 })
	sink2 := &recordingSink{drnErr: io.ErrShortWrite}
	loop2 := Loop{Solver: s2, Steps: 4, Sink: sink2,
		Watchdog: Watchdog{Disabled: true}}
	if _, err := loop2.Run(); err != io.ErrShortWrite {
		t.Fatalf("drain error did not surface: %v", err)
	}
}
