package solver

import (
	"math"
	"testing"

	"nektar/internal/mesh"
)

func dirAll(tag string) bool { return true }

// solvePoisson2D solves -Lap(u) + lambda*u = f on a mesh with exact
// solution uex and returns the L2 error.
func solveHelmholtz2D(t *testing.T, m *mesh.Mesh, lambda float64,
	uex func(x, y float64) float64, f func(x, y float64) float64) float64 {
	t.Helper()
	a := mesh.NewAssembly(m, dirAll)
	d, err := NewDirect(a, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return f(x, y) })
	dir := DirichletFromFunc(a, dirAll, uex)
	u := d.Solve(rhs, dir)
	return L2Error(a, u, func(x, y, z float64) float64 { return uex(x, y) })
}

func TestPoissonQuadManufactured(t *testing.T) {
	uex := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }
	f := func(x, y float64) float64 { return 2 * math.Pi * math.Pi * uex(x, y) }
	m, err := mesh.RectQuad(7, 3, 3, 0, 1, 0, 1, func(x, y, z float64) string { return "wall" })
	if err != nil {
		t.Fatal(err)
	}
	if e := solveHelmholtz2D(t, m, 0, uex, f); e > 1e-6 {
		t.Fatalf("L2 error = %g", e)
	}
}

func TestPoissonPConvergence(t *testing.T) {
	uex := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }
	f := func(x, y float64) float64 { return 2 * math.Pi * math.Pi * uex(x, y) }
	var prev float64
	for i, p := range []int{2, 4, 6, 8} {
		m, err := mesh.RectQuad(p, 2, 2, 0, 1, 0, 1, func(x, y, z float64) string { return "wall" })
		if err != nil {
			t.Fatal(err)
		}
		e := solveHelmholtz2D(t, m, 0, uex, f)
		if i > 0 && e > prev/5 {
			t.Fatalf("p=%d: error %g did not drop spectrally from %g", p, e, prev)
		}
		prev = e
	}
	if prev > 1e-7 {
		t.Fatalf("p=8 error %g too large", prev)
	}
}

func TestHelmholtzQuadNonzeroLambda(t *testing.T) {
	// u = cos(x)cosh(y): -Lap u = 0, so -Lap u + u = u means f = u.
	uex := func(x, y float64) float64 { return math.Cos(x) * math.Cosh(y) }
	f := uex // lambda = 1
	m, err := mesh.RectQuad(8, 2, 2, -1, 1, -1, 1, func(x, y, z float64) string { return "d" })
	if err != nil {
		t.Fatal(err)
	}
	if e := solveHelmholtz2D(t, m, 1, uex, f); e > 1e-7 {
		t.Fatalf("L2 error = %g", e)
	}
}

func TestPoissonTriangles(t *testing.T) {
	uex := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }
	f := func(x, y float64) float64 { return 2 * math.Pi * math.Pi * uex(x, y) }
	m, err := mesh.RectTri(7, 3, 3, 0, 1, 0, 1, func(x, y, z float64) string { return "wall" })
	if err != nil {
		t.Fatal(err)
	}
	if e := solveHelmholtz2D(t, m, 0, uex, f); e > 1e-5 {
		t.Fatalf("L2 error = %g", e)
	}
}

func TestPoissonNonhomogeneousDirichlet(t *testing.T) {
	// u = x^2 + y^2 exactly representable at p >= 2; f = -Lap u = -4.
	uex := func(x, y float64) float64 { return x*x + y*y }
	f := func(x, y float64) float64 { return -4 }
	for _, gen := range []func() (*mesh.Mesh, error){
		func() (*mesh.Mesh, error) {
			return mesh.RectQuad(3, 2, 3, 0, 2, 0, 1, func(x, y, z float64) string { return "d" })
		},
		func() (*mesh.Mesh, error) {
			return mesh.RectTri(3, 2, 3, 0, 2, 0, 1, func(x, y, z float64) string { return "d" })
		},
	} {
		m, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		if e := solveHelmholtz2D(t, m, 0, uex, f); e > 1e-9 {
			t.Fatalf("L2 error = %g (u in space: must be exact)", e)
		}
	}
}

func TestPoissonMixedNeumann(t *testing.T) {
	// Right boundary (x=1) natural with du/dn = 0 for
	// u = cos(pi x) sin(pi y)? du/dx at x=1 is pi*sin(pi)*... = 0. So
	// tag x=1 as "neumann" and keep the rest Dirichlet.
	uex := func(x, y float64) float64 { return math.Cos(math.Pi*x) * math.Sin(math.Pi*y) }
	f := func(x, y float64) float64 { return 2 * math.Pi * math.Pi * uex(x, y) }
	m, err := mesh.RectQuad(8, 2, 2, 0, 1, 0, 1, func(x, y, z float64) string {
		if x > 0.999 {
			return "neumann"
		}
		return "d"
	})
	if err != nil {
		t.Fatal(err)
	}
	isD := func(tag string) bool { return tag == "d" }
	a := mesh.NewAssembly(m, isD)
	d, err := NewDirect(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return f(x, y) })
	dir := DirichletFromFunc(a, isD, uex)
	u := d.Solve(rhs, dir)
	if e := L2Error(a, u, func(x, y, z float64) float64 { return uex(x, y) }); e > 1e-7 {
		t.Fatalf("L2 error = %g", e)
	}
}

func TestPoissonHex3D(t *testing.T) {
	uex := func(x, y, z float64) float64 {
		return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
	}
	f := func(x, y, z float64) float64 { return 3 * math.Pi * math.Pi * uex(x, y, z) }
	m, err := mesh.BoxHex(5, 2, 2, 2, 0, 1, 0, 1, 0, 1, func(x, y, z float64) string { return "wall" })
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, dirAll)
	d, err := NewDirect(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rhs := WeakRHSFunc(a, f)
	u := d.Solve(rhs, nil) // homogeneous Dirichlet
	if e := L2Error(a, u, uex); e > 2e-3 {
		t.Fatalf("L2 error = %g", e)
	}
}

func TestPCGMatchesDirect(t *testing.T) {
	uex := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }
	f := func(x, y float64) float64 { return 2 * math.Pi * math.Pi * uex(x, y) }
	m, err := mesh.RectQuad(5, 3, 2, 0, 1, 0, 1, func(x, y, z float64) string { return "d" })
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, dirAll)
	d, err := NewDirect(a, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return f(x, y) })
	dir := DirichletFromFunc(a, dirAll, uex)
	uDirect := d.Solve(rhs, dir)

	pcg := NewPCG(a, 0.7)
	uPCG, err := pcg.Solve(rhs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if pcg.Iters == 0 {
		t.Fatal("PCG did no iterations")
	}
	for i := range uDirect {
		if math.Abs(uDirect[i]-uPCG[i]) > 1e-8 {
			t.Fatalf("solution mismatch at dof %d: %v vs %v", i, uDirect[i], uPCG[i])
		}
	}
}

func TestPCG3DFlappingWingOperator(t *testing.T) {
	// PCG on a 3D extruded wing-section mesh — the Nektar-ALE solver
	// configuration.
	m2, err := mesh.WingSection(2, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := mesh.ExtrudeQuads(m2, 2, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m3, func(tag string) bool { return tag == "wall" || tag == "farfield" })
	pcg := NewPCG(a, 1.0)
	rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return 1 })
	u, err := pcg.Solve(rhs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Residual check through the direct solver's operator application.
	var norm float64
	for _, v := range u[:a.NSolve] {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("PCG returned the zero solution for nonzero forcing")
	}
}

func TestWeakRHSLinearity(t *testing.T) {
	m, err := mesh.RectQuad(3, 2, 2, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, nil)
	r1 := WeakRHSFunc(a, func(x, y, z float64) float64 { return x })
	r2 := WeakRHSFunc(a, func(x, y, z float64) float64 { return y })
	r12 := WeakRHSFunc(a, func(x, y, z float64) float64 { return x + y })
	for i := range r12 {
		if math.Abs(r12[i]-r1[i]-r2[i]) > 1e-12 {
			t.Fatalf("RHS not linear at dof %d", i)
		}
	}
}

func TestDirectSolverBandwidthExposed(t *testing.T) {
	m, err := mesh.RectQuad(3, 4, 2, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, nil)
	d, err := NewDirect(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bandwidth() <= 0 || d.Bandwidth() != a.Bandwidth() {
		t.Fatalf("Bandwidth() = %d, assembly says %d", d.Bandwidth(), a.Bandwidth())
	}
}
