package solver

import (
	"math"
	"testing"

	"nektar/internal/blas"
	"nektar/internal/mesh"
)

func TestCondensedMatchesDirect(t *testing.T) {
	for _, gen := range []func() (*mesh.Mesh, error){
		func() (*mesh.Mesh, error) {
			return mesh.RectQuad(5, 3, 2, 0, 1, 0, 1, func(x, y, z float64) string { return "d" })
		},
		func() (*mesh.Mesh, error) {
			return mesh.RectTri(4, 3, 3, 0, 1, 0, 1, func(x, y, z float64) string { return "d" })
		},
	} {
		m, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		a := mesh.NewAssembly(m, dirAll)
		dir, err := NewDirect(a, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		cond, err := NewCondensed(a, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		uex := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Cos(y) }
		rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return x*y + 1 })
		dirv := DirichletFromFunc(a, dirAll, uex)
		u1 := dir.Solve(rhs, dirv)
		u2 := cond.Solve(rhs, dirv)
		for i := range u1 {
			if math.Abs(u1[i]-u2[i]) > 1e-8*(1+math.Abs(u1[i])) {
				t.Fatalf("dof %d: direct %v vs condensed %v", i, u1[i], u2[i])
			}
		}
	}
}

func TestCondensedPoissonSpectralAccuracy(t *testing.T) {
	uex := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }
	f := func(x, y float64) float64 { return 2 * math.Pi * math.Pi * uex(x, y) }
	m, err := mesh.RectQuad(8, 2, 2, 0, 1, 0, 1, func(x, y, z float64) string { return "d" })
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, dirAll)
	c, err := NewCondensed(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return f(x, y) })
	dirv := DirichletFromFunc(a, dirAll, uex)
	u := c.Solve(rhs, dirv)
	if e := L2Error(a, u, func(x, y, z float64) float64 { return uex(x, y) }); e > 1e-7 {
		t.Fatalf("L2 error %g", e)
	}
}

func TestCondensedBandwidthMuchSmallerThanFull(t *testing.T) {
	// The Schur system couples only boundary modes; on a high-order
	// mesh its bandwidth is far below the full assembled system's.
	m, err := mesh.RectQuad(8, 6, 3, 0, 6, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, nil)
	c, err := NewCondensed(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bandwidth() >= a.Bandwidth() {
		t.Fatalf("Schur bandwidth %d not below full %d", c.Bandwidth(), a.Bandwidth())
	}
	// Boundary unknowns a small fraction of the total at order 8.
	if c.NumBoundary() >= a.NSolve/2 {
		t.Fatalf("boundary unknowns %d of %d — condensation ineffective", c.NumBoundary(), a.NSolve)
	}
}

func TestCondensedSolveCounts(t *testing.T) {
	counts := CondensedSolveCounts(1000, 50, 100, 49, 32)
	if counts.TotalFlops() == 0 || counts.TotalBytes() == 0 {
		t.Fatal("empty counts")
	}
	// The band term alone is 4*n*(kd+1).
	if counts.TotalFlops() < 4*1000*51 {
		t.Fatalf("flops %d below band-solve minimum", counts.TotalFlops())
	}
}

func TestCondensedPureNeumannWithMass(t *testing.T) {
	// With lambda > 0 the condensed operator is SPD even with no
	// Dirichlet boundary at all.
	m, err := mesh.RectQuad(4, 3, 3, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, nil)
	c, err := NewCondensed(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// -Lap u + 2u = 2 with natural BCs has the exact solution u = 1.
	rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return 2 })
	u := c.Solve(rhs, nil)
	if e := L2Error(a, u, func(x, y, z float64) float64 { return 1 }); e > 1e-10 {
		t.Fatalf("L2 error %g", e)
	}
}

func TestCondensedSolveCountsMatchRecorded(t *testing.T) {
	// The analytic per-solve cost formula (used by the paper-scale
	// extrapolation) must track the actually recorded work of a
	// condensed Solve within a modest factor.
	m, err := mesh.BluffBody(6, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.NewAssembly(m, func(tag string) bool { return tag != "outflow" })
	c, err := NewCondensed(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := WeakRHSFunc(a, func(x, y, z float64) float64 { return 1 })

	var rec blas.Counts
	blas.StartRecording(&rec)
	c.Solve(rhs, nil)
	blas.StopRecording()

	ref := m.Elems[0].Ref
	nb, kd := SchurStats(a)
	want := CondensedSolveCounts(nb, kd, len(m.Elems), ref.NModes-ref.NBnd, ref.NBnd)
	gotFlops := rec.Ops[blas.KernelDgemv].Flops
	wantFlops := want.Ops[blas.KernelDgemv].Flops
	ratio := float64(gotFlops) / float64(wantFlops)
	if ratio < 0.7 || ratio > 1.6 {
		t.Fatalf("recorded gemv flops %d vs formula %d (ratio %.2f)", gotFlops, wantFlops, ratio)
	}
}
