package solver

import (
	"fmt"
	"sort"

	"nektar/internal/blas"
	"nektar/internal/lapack"
	"nektar/internal/mesh"
)

// Condensed is a statically condensed global Helmholtz solver: the
// interior ("bubble") modes of every element are eliminated with dense
// per-element factorizations, and only the boundary-mode Schur
// complement is assembled into a banded global system. This is the
// spectral/hp production strategy — the boundary/interior block
// structure of the paper's Figure 10 — and what keeps the paper's
// 230,000-dof serial benchmark inside a Pentium's memory.
type Condensed struct {
	A      *mesh.Assembly
	Lambda float64

	nb    int   // number of boundary unknowns
	bidx  []int // assembly dof -> condensed index (-1 when not a boundary unknown)
	bdofs []int // condensed index -> assembly dof

	band *lapack.BandStorage // factored Schur complement
	coup []mesh.DirCoupling  // Schur couplings to Dirichlet dofs

	elems []condElem
}

type condElem struct {
	nb, ni int
	iiChol []float64 // NInt x NInt dense Cholesky factor of Hii
	hib    []float64 // NInt x NBnd block (rows interior, cols boundary)
	g      []float64 // NInt x NBnd, Hii^{-1} Hib
}

// NewCondensed builds and factors the condensed Helmholtz operator
// L + lambda*M.
func NewCondensed(a *mesh.Assembly, lambda float64) (*Condensed, error) {
	c := &Condensed{A: a, Lambda: lambda}

	// Identify boundary unknowns: assembly dofs reached by local
	// boundary modes, below the Dirichlet threshold.
	c.bidx = make([]int, a.NGlobal)
	for i := range c.bidx {
		c.bidx[i] = -1
	}
	isBnd := make([]bool, a.NGlobal)
	for ei, el := range a.Mesh.Elems {
		for mi := 0; mi < el.Ref.NBnd; mi++ {
			isBnd[a.L2G[ei][mi]] = true
		}
	}
	var bdofs []int
	for g := 0; g < a.NSolve; g++ {
		if isBnd[g] {
			bdofs = append(bdofs, g)
		}
	}
	// Reverse Cuthill-McKee over the boundary-unknown graph for a
	// small Schur bandwidth.
	bdofs = c.rcmBoundary(bdofs, isBnd)
	c.bdofs = bdofs
	c.nb = len(bdofs)
	for i, g := range bdofs {
		c.bidx[g] = i
	}

	// Per-element condensation and Schur assembly.
	kd := c.schurBandwidth()
	band := lapack.NewBandStorage(c.nb, kd)
	c.elems = make([]condElem, len(a.Mesh.Elems))
	for ei, el := range a.Mesh.Elems {
		h := el.Helmholtz(lambda)
		n := el.Ref.NModes
		nbm := el.Ref.NBnd
		nim := n - nbm
		ce := condElem{nb: nbm, ni: nim}
		// Extract blocks (boundary-first local ordering).
		hbb := make([]float64, nbm*nbm)
		for i := 0; i < nbm; i++ {
			copy(hbb[i*nbm:(i+1)*nbm], h[i*n:i*n+nbm])
		}
		if nim > 0 {
			hii := make([]float64, nim*nim)
			hib := make([]float64, nim*nbm)
			for i := 0; i < nim; i++ {
				copy(hii[i*nim:(i+1)*nim], h[(nbm+i)*n+nbm:(nbm+i)*n+n])
				copy(hib[i*nbm:(i+1)*nbm], h[(nbm+i)*n:(nbm+i)*n+nbm])
			}
			if err := lapack.Dpotrf(nim, hii, nim); err != nil {
				return nil, fmt.Errorf("solver: element %d interior block: %w", ei, err)
			}
			g := append([]float64(nil), hib...)
			lapack.Dpotrs(nim, nbm, hii, nim, g, nbm)
			// Schur: hbb -= hib^T g.
			blas.Dgemm(blas.Trans, blas.NoTrans, nbm, nbm, nim, -1, hib, nbm, g, nbm, 1, hbb, nbm)
			ce.iiChol = hii
			ce.hib = hib
			ce.g = g
		}
		c.elems[ei] = ce

		// Assemble the elemental Schur block.
		l2g, sign := a.L2G[ei], a.Sign[ei]
		for mi := 0; mi < nbm; mi++ {
			gi := l2g[mi]
			bi := c.bidx[gi]
			for mj := 0; mj < nbm; mj++ {
				gj := l2g[mj]
				v := sign[mi] * sign[mj] * hbb[mi*nbm+mj]
				if v == 0 {
					continue
				}
				switch {
				case bi >= 0 && c.bidx[gj] >= 0:
					if bj := c.bidx[gj]; bj <= bi {
						band.Add(bi, bj, v)
					}
				case bi >= 0 && gj >= a.NSolve:
					c.coup = append(c.coup, mesh.DirCoupling{Row: bi, Dir: gj, Val: v})
				}
			}
		}
	}
	if err := lapack.Dpbtrf(band); err != nil {
		return nil, fmt.Errorf("solver: Schur factorization: %w", err)
	}
	c.band = band
	return c, nil
}

// rcmBoundary orders the boundary unknowns by reverse Cuthill-McKee
// over the element-induced adjacency restricted to them.
func (c *Condensed) rcmBoundary(bdofs []int, isBnd []bool) []int {
	a := c.A
	pos := map[int]int{}
	for i, g := range bdofs {
		pos[g] = i
	}
	n := len(bdofs)
	adj := make([][]int, n)
	for ei, el := range a.Mesh.Elems {
		nbm := el.Ref.NBnd
		l2g := a.L2G[ei]
		for mi := 0; mi < nbm; mi++ {
			i, ok := pos[l2g[mi]]
			if !ok {
				continue
			}
			for mj := 0; mj < nbm; mj++ {
				if j, ok := pos[l2g[mj]]; ok && j != i {
					adj[i] = append(adj[i], j)
				}
			}
		}
	}
	deg := make([]int, n)
	for i := range adj {
		sort.Ints(adj[i])
		out := adj[i][:0]
		prev := -1
		for _, v := range adj[i] {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[i] = out
		deg[i] = len(out)
	}
	visited := make([]bool, n)
	var order []int
	for {
		root, best := -1, 1<<62
		for i := 0; i < n; i++ {
			if !visited[i] && deg[i] < best {
				root, best = i, deg[i]
			}
		}
		if root < 0 {
			break
		}
		queue := []int{root}
		visited[root] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := append([]int(nil), adj[v]...)
			sort.Slice(nbrs, func(x, y int) bool { return deg[nbrs[x]] < deg[nbrs[y]] })
			for _, w := range nbrs {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	out := make([]int, n)
	for i, v := range order {
		out[n-1-i] = bdofs[v] // reverse
	}
	return out
}

// schurBandwidth computes the half-bandwidth of the assembled Schur
// system under the condensed ordering.
func (c *Condensed) schurBandwidth() int {
	var kd int
	for ei, el := range c.A.Mesh.Elems {
		nbm := el.Ref.NBnd
		l2g := c.A.L2G[ei]
		for mi := 0; mi < nbm; mi++ {
			bi := c.bidx[l2g[mi]]
			if bi < 0 {
				continue
			}
			for mj := 0; mj < nbm; mj++ {
				if bj := c.bidx[l2g[mj]]; bj >= 0 {
					if d := bi - bj; d > kd {
						kd = d
					}
				}
			}
		}
	}
	return kd
}

// Bandwidth returns the Schur half-bandwidth.
func (c *Condensed) Bandwidth() int { return c.band.Kd }

// NumBoundary returns the number of boundary unknowns in the Schur
// system.
func (c *Condensed) NumBoundary() int { return c.nb }

// Solve computes the global solution for a weak right-hand side rhs
// and Dirichlet values dir, exactly like Direct.Solve but through the
// condensed system.
func (c *Condensed) Solve(rhs, dir []float64) []float64 {
	a := c.A
	rb := make([]float64, c.nb)
	for i, g := range c.bdofs {
		rb[i] = rhs[g]
	}
	// Condense the interior RHS: rb -= Hbi Hii^{-1} fi.
	yis := make([][]float64, len(c.elems))
	for ei, el := range a.Mesh.Elems {
		ce := &c.elems[ei]
		if ce.ni == 0 {
			continue
		}
		l2g, sign := a.L2G[ei], a.Sign[ei]
		fi := make([]float64, ce.ni)
		for k := 0; k < ce.ni; k++ {
			mi := ce.nb + k
			fi[k] = sign[mi] * rhs[l2g[mi]]
		}
		yi := append([]float64(nil), fi...)
		lapack.Dpotrs(ce.ni, 1, ce.iiChol, ce.ni, yi, 1)
		yis[ei] = yi
		// rb[b] -= sign_b * (Hib^T yi)[b]
		tmp := make([]float64, ce.nb)
		blas.Dgemv(blas.Trans, ce.ni, ce.nb, 1, ce.hib, ce.nb, yi, 1, 0, tmp, 1)
		for mb := 0; mb < ce.nb; mb++ {
			if bi := c.bidx[l2g[mb]]; bi >= 0 {
				rb[bi] -= sign[mb] * tmp[mb]
			}
		}
		_ = el
	}
	// Dirichlet lift on the Schur system.
	if dir != nil {
		for _, cp := range c.coup {
			rb[cp.Row] -= cp.Val * dir[cp.Dir]
		}
	}
	lapack.Dpbtrs(c.band, rb)

	out := make([]float64, a.NGlobal)
	for i, g := range c.bdofs {
		out[g] = rb[i]
	}
	if dir != nil {
		copy(out[a.NSolve:], dir[a.NSolve:])
	}
	// Interior back-substitution: ui = Hii^{-1} fi - G ub.
	for ei := range a.Mesh.Elems {
		ce := &c.elems[ei]
		if ce.ni == 0 {
			continue
		}
		l2g, sign := a.L2G[ei], a.Sign[ei]
		ub := make([]float64, ce.nb)
		for mb := 0; mb < ce.nb; mb++ {
			ub[mb] = sign[mb] * out[l2g[mb]]
		}
		ui := append([]float64(nil), yis[ei]...)
		blas.Dgemv(blas.NoTrans, ce.ni, ce.nb, -1, ce.g, ce.nb, ub, 1, 1, ui, 1)
		for k := 0; k < ce.ni; k++ {
			mi := ce.nb + k
			out[l2g[mi]] = sign[mi] * ui[k]
		}
	}
	return out
}

// SchurStats computes the boundary-unknown count and Schur
// half-bandwidth of the condensed system for an assembly, without
// building or factoring the operator — cheap enough to interrogate
// paper-scale meshes.
func SchurStats(a *mesh.Assembly) (nb, kd int) {
	c := &Condensed{A: a}
	c.bidx = make([]int, a.NGlobal)
	for i := range c.bidx {
		c.bidx[i] = -1
	}
	isBnd := make([]bool, a.NGlobal)
	for ei, el := range a.Mesh.Elems {
		for mi := 0; mi < el.Ref.NBnd; mi++ {
			isBnd[a.L2G[ei][mi]] = true
		}
	}
	var bdofs []int
	for g := 0; g < a.NSolve; g++ {
		if isBnd[g] {
			bdofs = append(bdofs, g)
		}
	}
	bdofs = c.rcmBoundary(bdofs, isBnd)
	c.bdofs = bdofs
	c.nb = len(bdofs)
	for i, g := range bdofs {
		c.bidx[g] = i
	}
	return c.nb, c.schurBandwidth()
}

// CondensedSolveCounts returns the per-solve operation counts of the
// condensed strategy for a system with nb boundary unknowns of Schur
// half-bandwidth kd and nElems elements of ni interior and nbm
// boundary modes each — used to price paper-scale solves analytically.
func CondensedSolveCounts(nb, kd, nElems, ni, nbm int) blas.Counts {
	c := lapack.SolveCounts(nb, kd)
	// Per element: one dense triangular solve pair (ni^2 madds twice)
	// and two ni x nbm gemv applications.
	per := int64(nElems)
	op := &c.Ops[blas.KernelDgemv]
	op.Calls += 3 * per
	op.Flops += per * int64(2*ni*ni+4*ni*nbm)
	op.Bytes += per * 8 * int64(ni*ni+2*ni*nbm)
	return c
}
