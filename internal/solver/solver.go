// Package solver provides the global Helmholtz/Poisson solvers of the
// spectral/hp element method: a direct solver that assembles the C0
// global matrix in symmetric banded form and factors it with the
// banded Cholesky (the paper's serial and Nektar-F solver strategy,
// "direct solvers utilising the symmetric and banded nature of the
// matrix"), and a diagonally preconditioned conjugate gradient
// iterative solver (the Nektar-ALE strategy).
//
// Both solve the weak Helmholtz problem: find u with u = g on the
// Dirichlet boundary and
//
//	integral grad(u).grad(v) + lambda*u*v = integral f*v
//
// for all test functions v vanishing on the Dirichlet boundary, i.e.
// the strong equation -Laplace(u) + lambda*u = f.
package solver

import (
	"errors"
	"fmt"
	"math"

	"nektar/internal/blas"
	"nektar/internal/lapack"
	"nektar/internal/mesh"
)

// Direct is a factored global banded Helmholtz operator.
type Direct struct {
	A      *mesh.Assembly
	Lambda float64

	band *lapack.BandStorage
	coup []mesh.DirCoupling
}

// NewDirect assembles and factors the global Helmholtz matrix
// L + lambda*M over the unknown degrees of freedom.
func NewDirect(a *mesh.Assembly, lambda float64) (*Direct, error) {
	d := &Direct{A: a, Lambda: lambda}
	band, coup := a.AssembleBanded(func(e int) []float64 {
		return a.Mesh.Elems[e].Helmholtz(lambda)
	})
	if err := lapack.Dpbtrf(band); err != nil {
		return nil, fmt.Errorf("solver: global Helmholtz factorization: %w", err)
	}
	d.band = band
	d.coup = coup
	return d, nil
}

// Bandwidth returns the half-bandwidth of the assembled system.
func (d *Direct) Bandwidth() int { return d.band.Kd }

// Solve computes the global solution for a weak right-hand side rhs
// (length NGlobal, the gathered inner products integral f*phi) and
// Dirichlet values dir (length NGlobal; only entries >= NSolve are
// read; nil means homogeneous). The returned vector has length NGlobal
// with Dirichlet entries filled in.
func (d *Direct) Solve(rhs, dir []float64) []float64 {
	a := d.A
	b := make([]float64, a.NSolve)
	copy(b, rhs[:a.NSolve])
	if dir != nil {
		for _, c := range d.coup {
			b[c.Row] -= c.Val * dir[c.Dir]
		}
	}
	lapack.Dpbtrs(d.band, b)
	out := make([]float64, a.NGlobal)
	copy(out, b)
	if dir != nil {
		copy(out[a.NSolve:], dir[a.NSolve:])
	}
	return out
}

// PCG is the matrix-free diagonally preconditioned conjugate gradient
// solver over the assembled global operator.
type PCG struct {
	A      *mesh.Assembly
	Lambda float64

	MaxIter int
	Tol     float64

	elemMats [][]float64
	diag     []float64 // inverse diagonal over unknowns

	// Iters reports the iteration count of the last Solve.
	Iters int
}

// NewPCG precomputes the elemental Helmholtz matrices and the global
// diagonal preconditioner.
func NewPCG(a *mesh.Assembly, lambda float64) *PCG {
	p := &PCG{A: a, Lambda: lambda, MaxIter: 10 * a.NSolve, Tol: 1e-12}
	p.elemMats = make([][]float64, len(a.Mesh.Elems))
	diag := make([]float64, a.NGlobal)
	for ei, el := range a.Mesh.Elems {
		h := el.Helmholtz(lambda)
		p.elemMats[ei] = h
		n := el.Ref.NModes
		l2g := a.L2G[ei]
		for m := 0; m < n; m++ {
			diag[l2g[m]] += h[m*n+m] // signs square to +1 on the diagonal
		}
	}
	p.diag = make([]float64, a.NSolve)
	for i := range p.diag {
		p.diag[i] = 1 / diag[i]
	}
	return p
}

// Apply computes y = H x where x and y are global vectors (length
// NGlobal); Dirichlet entries of x participate (used to form RHS
// corrections) and Dirichlet entries of y receive gathered values too.
func (p *PCG) Apply(x, y []float64) {
	a := p.A
	blas.Dfill(len(y), 0, y, 1)
	for ei, el := range a.Mesh.Elems {
		n := el.Ref.NModes
		xl := make([]float64, n)
		yl := make([]float64, n)
		a.Scatter(ei, x, xl)
		blas.Dgemv(blas.NoTrans, n, n, 1, p.elemMats[ei], n, xl, 1, 0, yl, 1)
		a.Gather(ei, yl, y)
	}
}

// ErrNoConvergence is returned when PCG fails to reach the tolerance
// within MaxIter iterations.
var ErrNoConvergence = errors.New("solver: PCG did not converge")

// Solve computes the global solution like Direct.Solve but
// iteratively. The residual tolerance is relative to the initial
// residual norm.
func (p *PCG) Solve(rhs, dir []float64) ([]float64, error) {
	a := p.A
	n := a.NSolve
	b := make([]float64, n)
	copy(b, rhs[:n])
	// Dirichlet lift: b -= H * (0...0, dir).
	if dir != nil {
		xd := make([]float64, a.NGlobal)
		copy(xd[n:], dir[n:])
		hd := make([]float64, a.NGlobal)
		p.Apply(xd, hd)
		blas.Daxpy(n, -1, hd, 1, b, 1)
	}

	x := make([]float64, a.NGlobal) // unknown part iterated in place
	r := make([]float64, n)
	copy(r, b)
	z := make([]float64, n)
	blas.Dvmul(n, r, 1, p.diag, 1, z, 1)
	pdir := make([]float64, a.NGlobal) // search direction (global for Apply)
	copy(pdir, z)
	hp := make([]float64, a.NGlobal)

	rz := blas.Ddot(n, r, 1, z, 1)
	r0 := blas.Dnrm2(n, r, 1)
	if r0 == 0 {
		r0 = 1
	}
	p.Iters = 0
	for it := 0; it < p.MaxIter; it++ {
		if blas.Dnrm2(n, r, 1) <= p.Tol*r0 {
			break
		}
		p.Apply(pdir, hp)
		php := blas.Ddot(n, pdir, 1, hp, 1)
		if php <= 0 {
			return nil, fmt.Errorf("solver: PCG operator not positive definite (p.Hp = %g)", php)
		}
		alpha := rz / php
		blas.Daxpy(n, alpha, pdir, 1, x, 1)
		blas.Daxpy(n, -alpha, hp, 1, r, 1)
		blas.Dvmul(n, r, 1, p.diag, 1, z, 1)
		rzNew := blas.Ddot(n, r, 1, z, 1)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			pdir[i] = z[i] + beta*pdir[i]
		}
		p.Iters = it + 1
	}
	if blas.Dnrm2(n, r, 1) > p.Tol*r0*10 {
		return nil, fmt.Errorf("%w after %d iterations (residual %g)", ErrNoConvergence, p.Iters, blas.Dnrm2(n, r, 1)/r0)
	}
	if dir != nil {
		copy(x[n:], dir[n:])
	}
	return x, nil
}

// WeakRHS assembles the global weak right-hand side integral f*phi_m
// for a forcing function given at quadrature points per element.
func WeakRHS(a *mesh.Assembly, f func(elem int) []float64) []float64 {
	rhs := make([]float64, a.NGlobal)
	for ei, el := range a.Mesh.Elems {
		out := make([]float64, el.Ref.NModes)
		el.IProduct(f(ei), out)
		a.Gather(ei, out, rhs)
	}
	return rhs
}

// WeakRHSFunc assembles the weak right-hand side for a pointwise
// forcing f(x, y, z).
func WeakRHSFunc(a *mesh.Assembly, f func(x, y, z float64) float64) []float64 {
	return WeakRHS(a, func(ei int) []float64 {
		el := a.Mesh.Elems[ei]
		nq := el.Ref.NQuad
		vals := make([]float64, nq)
		var z []float64
		if el.Ref.Shape.Dim() == 3 {
			z = el.X[2]
		}
		for q := 0; q < nq; q++ {
			zz := 0.0
			if z != nil {
				zz = z[q]
			}
			vals[q] = f(el.X[0][q], el.X[1][q], zz)
		}
		return vals
	})
}

// DirichletFromFunc builds the global Dirichlet value vector for a 2D
// mesh by projecting g onto every Dirichlet-tagged boundary edge.
func DirichletFromFunc(a *mesh.Assembly, isDirichlet func(tag string) bool, g func(x, y float64) float64) []float64 {
	dir := make([]float64, a.NGlobal)
	for _, be := range a.Mesh.BndEdges {
		if isDirichlet(be.Tag) {
			a.ProjectEdgeTrace(be, g, dir)
		}
	}
	return dir
}

// L2Error computes the global L2 norm of (u - exact) given the global
// modal solution.
func L2Error(a *mesh.Assembly, u []float64, exact func(x, y, z float64) float64) float64 {
	var sum float64
	for ei, el := range a.Mesh.Elems {
		n := el.Ref.NModes
		nq := el.Ref.NQuad
		coef := make([]float64, n)
		a.Scatter(ei, u, coef)
		phys := make([]float64, nq)
		el.BwdTrans(coef, phys)
		for q := 0; q < nq; q++ {
			zz := 0.0
			if el.Ref.Shape.Dim() == 3 {
				zz = el.X[2][q]
			}
			d := phys[q] - exact(el.X[0][q], el.X[1][q], zz)
			sum += d * d * el.WJ[q]
		}
	}
	return math.Sqrt(sum)
}
