package simnet

import "fmt"

// SparePool tracks the assignment of logical ranks to physical nodes
// when a cluster keeps hot spares: ranks [0, Ranks) start on nodes
// [0, Ranks) and nodes [Ranks, Ranks+spares) idle until a failure.
// Replace retires a rank's current node and moves the rank onto the
// next spare — the paper's operators swapped a failed PC out of the
// Beowulf rack and restarted from restart files; the pool is the
// bookkeeping half of doing that automatically.
//
// The pool itself is plain state shared across restart attempts; the
// per-attempt placement is exported through NodeMap for Model.NodeMap.
type SparePool struct {
	assigned []int // rank -> physical node
	spares   []int // physical nodes still available, FIFO
	log      []Replacement
}

// Replacement records one rank move.
type Replacement struct {
	Rank    int
	OldNode int
	NewNode int
}

// NewSparePool lays out ranks ranks on their own nodes with spares
// hot-spare nodes behind them.
func NewSparePool(ranks, spares int) (*SparePool, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("simnet: spare pool needs at least one rank, got %d", ranks)
	}
	if spares < 0 {
		return nil, fmt.Errorf("simnet: negative spare count %d", spares)
	}
	p := &SparePool{assigned: make([]int, ranks)}
	for r := range p.assigned {
		p.assigned[r] = r
	}
	for s := 0; s < spares; s++ {
		p.spares = append(p.spares, ranks+s)
	}
	return p, nil
}

// Ranks returns the number of logical ranks.
func (p *SparePool) Ranks() int { return len(p.assigned) }

// NodeOf returns the physical node currently hosting a rank.
func (p *SparePool) NodeOf(rank int) int { return p.assigned[rank] }

// Available returns how many spare nodes remain.
func (p *SparePool) Available() int { return len(p.spares) }

// NodeMap returns a fresh rank -> node slice for Model.NodeMap,
// reflecting the current assignment.
func (p *SparePool) NodeMap() []int {
	return append([]int(nil), p.assigned...)
}

// Replace moves a rank onto the next spare node and retires its old
// node permanently. It fails when the pool is exhausted.
func (p *SparePool) Replace(rank int) (newNode int, err error) {
	if rank < 0 || rank >= len(p.assigned) {
		return 0, fmt.Errorf("simnet: replace of unknown rank %d (pool has %d ranks)", rank, len(p.assigned))
	}
	if len(p.spares) == 0 {
		return 0, fmt.Errorf("simnet: spare pool exhausted replacing rank %d (node %d failed)", rank, p.assigned[rank])
	}
	newNode = p.spares[0]
	p.spares = p.spares[1:]
	p.log = append(p.log, Replacement{Rank: rank, OldNode: p.assigned[rank], NewNode: newNode})
	p.assigned[rank] = newNode
	return newNode, nil
}

// Replacements returns the full replacement history.
func (p *SparePool) Replacements() []Replacement {
	return append([]Replacement(nil), p.log...)
}
