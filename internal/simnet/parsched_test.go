package simnet

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"nektar/internal/blas"
)

// Differential tests: the parallel conservative scheduler must produce
// bit-identical virtual clocks and identical errors to the serial
// scheduler for any program, network model, and fault plan. The bodies
// below deliberately hit every primitive — eager and rendezvous sends,
// nonblocking Wait, self-sends, wildcard and deadline receives,
// Compute/Sleep — and the fault plans cover drops, link degradation,
// NIC stalls, rank stalls, and crashes (including the induced
// survivor deadlock).

// runBoth runs the same body under both schedulers and asserts exactly
// equal per-rank wall/cpu clocks and identical error text.
func runBoth(t *testing.T, label string, p int, model Model, inj Injector, body func(*Node)) {
	t.Helper()
	serial := model
	serial.Scheduler = SchedSerial
	par := model
	par.Scheduler = SchedParallel
	wallS, cpuS, errS := RunWithFaults(p, &serial, inj, body)
	wallP, cpuP, errP := RunWithFaults(p, &par, inj, body)
	es, ep := fmt.Sprint(errS), fmt.Sprint(errP)
	if es != ep {
		t.Fatalf("%s: error diverged:\nserial:   %s\nparallel: %s", label, es, ep)
	}
	for r := 0; r < p; r++ {
		if math.Float64bits(wallS[r]) != math.Float64bits(wallP[r]) {
			t.Errorf("%s: rank %d wall clock diverged: serial %v parallel %v", label, r, wallS[r], wallP[r])
		}
		if math.Float64bits(cpuS[r]) != math.Float64bits(cpuP[r]) {
			t.Errorf("%s: rank %d cpu clock diverged: serial %v parallel %v", label, r, cpuS[r], cpuP[r])
		}
	}
}

// diffModels returns network models spanning the simulator's feature
// space: pure eager, rendezvous, SMP nodes with a shared backplane,
// and a half-duplex shared wire.
func diffModels() map[string]Model {
	return map[string]Model{
		"eager": {
			Name:  "diff-eager",
			Inter: LinkModel{LatencyUS: 100, BandwidthMBs: 12, OverheadUS: 30, CPUCopyMBs: 50},
		},
		"rendezvous": {
			Name:  "diff-rendezvous",
			Inter: LinkModel{LatencyUS: 20, BandwidthMBs: 100, OverheadUS: 5, CPUCopyMBs: 0, EagerLimit: 4096},
		},
		"smp-backplane": {
			Name:         "diff-smp",
			Inter:        LinkModel{LatencyUS: 80, BandwidthMBs: 10, OverheadUS: 25, CPUCopyMBs: 40, EagerLimit: 8192},
			Intra:        LinkModel{LatencyUS: 2, BandwidthMBs: 300, OverheadUS: 1},
			RanksPerNode: 2,
			BackplaneMBs: 15,
		},
		"half-duplex": {
			Name:  "diff-half",
			Inter: LinkModel{LatencyUS: 120, BandwidthMBs: 10, OverheadUS: 35, CPUCopyMBs: 45, HalfDuplex: true},
		},
	}
}

// diffBody is the primitive-coverage program: every rank computes,
// exchanges eager and rendezvous rings, self-sends, probes a deadline
// that times out, sleeps, and finishes with a lossy send acknowledged
// under a deadline (the reliability-layer shape).
func diffBody(n *Node) {
	p := n.P
	next := (n.Rank + 1) % p
	prev := (n.Rank + p - 1) % p

	n.Compute(1e-4 * float64(n.Rank+1))

	// Eager ring.
	n.Send(next, 1, []float64{float64(n.Rank)})
	n.Recv(prev, 1)

	// Rendezvous-sized ring with an overlapped Wait.
	big := make([]float64, 1500)
	for i := range big {
		big[i] = float64(n.Rank*3 + i)
	}
	r := n.Isend(next, 2, big)
	n.Compute(5e-5)
	n.Recv(prev, 2)
	n.Wait(r)

	// Self-send and a wildcard receive.
	n.Send(n.Rank, 3, []float64{42})
	n.Recv(AnySource, 3)

	// A deadline that always expires (nobody sends tag 9).
	if _, ok := n.RecvDeadline(prev, 9, n.Clock()+2e-4); ok {
		panic("unexpected message on tag 9")
	}
	n.Compute(1e-5)
	n.Sleep(3e-5)

	// Lossy payload with a deadline-based ack, retried once: the shape
	// the mpi reliability layer drives, including the drop path when a
	// plan is installed.
	for attempt := 0; attempt < 2; attempt++ {
		n.SendLossy(next, 4, []float64{float64(attempt)})
		if _, ok := n.RecvDeadline(next, 5, n.Clock()+8e-4); ok {
			break
		}
	}
	for {
		m, ok := n.RecvDeadline(prev, 4, n.Clock()+8e-4)
		if !ok {
			break
		}
		n.SendControl(prev, 5, m)
	}

	// Final eager ring so post-fault clocks keep interacting.
	n.Send(next, 6, []float64{n.Clock()})
	n.Recv(prev, 6)
}

func TestSchedulerDifferentialFaultFree(t *testing.T) {
	for name, model := range diffModels() {
		for _, p := range []int{2, 3, 5} {
			runBoth(t, fmt.Sprintf("%s/p=%d", name, p), p, model, nil, diffBody)
		}
	}
}

func TestSchedulerDifferentialWithFaults(t *testing.T) {
	mkInj := func(p int) Injector {
		return &testStaller{
			testInjector: testInjector{
				drop: func(src, dst, n int, t float64) bool {
					// Lose the first lossy payload on one ring edge.
					return src == 0 && dst == 1%p && n == 2
				},
				factors: func(src, dst int, t float64) (float64, float64) {
					if src == 0 && t > 1e-4 {
						return 2.5, 3
					}
					return 1, 1
				},
				stall: func(node int, t float64) float64 {
					if node == 0 && t < 3e-4 {
						return 3e-4
					}
					return 0
				},
			},
			rank:  p - 1,
			start: 2e-4,
			dur:   4e-4,
		}
	}
	for name, model := range diffModels() {
		for _, p := range []int{2, 3, 5} {
			runBoth(t, fmt.Sprintf("%s/p=%d", name, p), p, model, mkInj(p), diffBody)
		}
	}
}

func TestSchedulerDifferentialWithCrash(t *testing.T) {
	// Rank 1 dies mid-run; depending on the model the survivors either
	// ride their deadline receives to completion or deadlock on the
	// plain receives. Both outcomes — clocks, crash report, deadlock
	// diagnosis — must be identical across schedulers.
	mkInj := func() Injector {
		return &testInjector{crash: func(rank int) float64 {
			if rank == 1 {
				return 6e-4
			}
			return math.Inf(1)
		}}
	}
	for name, model := range diffModels() {
		for _, p := range []int{2, 3} {
			runBoth(t, fmt.Sprintf("%s/p=%d", name, p), p, model, mkInj(), diffBody)
		}
	}
}

func TestResolveScheduler(t *testing.T) {
	if !blas.ThreadRecordingSupported() {
		t.Skip("platform cannot key BLAS recording by thread")
	}
	// SchedAuto only goes parallel with real cores to overlap on;
	// forced parallel ignores the core count.
	autoKind := kindSerial
	if runtime.GOMAXPROCS(0) > 1 {
		autoKind = kindParallel
	}
	cases := []struct {
		env  string
		mode Scheduler
		p    int
		want schedKind
	}{
		{"", SchedAuto, 8, autoKind},
		{"", SchedAuto, 1, kindSerial},
		{"", SchedSerial, 8, kindSerial},
		{"", SchedParallel, 8, kindParallel},
		{"", SchedRelaxed, 8, kindRelaxed},
		{"", SchedRelaxed, 1, kindSerial},
		{"serial", SchedParallel, 8, kindSerial},
		{"serial", SchedAuto, 8, kindSerial},
		{"parallel", SchedSerial, 8, kindParallel},
		{"relaxed", SchedSerial, 8, kindRelaxed},
		{"auto", SchedSerial, 8, autoKind},
	}
	for _, c := range cases {
		t.Setenv(SchedulerEnv, c.env)
		m := &Model{Scheduler: c.mode}
		got, err := resolveScheduler(m, c.p)
		if err != nil {
			t.Errorf("resolveScheduler(env=%q, mode=%v, p=%d) unexpected error: %v",
				c.env, c.mode, c.p, err)
			continue
		}
		if got != c.want {
			t.Errorf("resolveScheduler(env=%q, mode=%v, p=%d) = %v, want %v",
				c.env, c.mode, c.p, got, c.want)
		}
	}
}

func TestResolveSchedulerErrors(t *testing.T) {
	cases := []struct {
		name string
		env  string
		m    Model
	}{
		{"bogus-env", "concurrent", Model{}},
		{"bogus-env-spaces", " parallel", Model{}},
		{"bogus-mode", "", Model{Scheduler: Scheduler(99)}},
		{"negative-window", "", Model{Scheduler: SchedRelaxed, RelaxWindowUS: -1}},
		{"nan-window", "", Model{Scheduler: SchedRelaxed, RelaxWindowUS: math.NaN()}},
		{"inf-window", "", Model{Scheduler: SchedRelaxed, RelaxWindowUS: math.Inf(1)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			t.Setenv(SchedulerEnv, c.env)
			m := c.m
			if _, err := resolveScheduler(&m, 8); err == nil {
				t.Errorf("resolveScheduler(env=%q, mode=%v) = nil error, want error",
					c.env, m.Scheduler)
			}
			// The validation error must also surface from the public
			// entry point, before any goroutine is launched.
			if _, _, err := RunWithFaults(2, &m, nil, func(n *Node) {}); err == nil {
				t.Errorf("RunWithFaults(env=%q, mode=%v) = nil error, want error",
					c.env, m.Scheduler)
			}
		})
	}
}

// TestSchedulerDifferentialBatchBurst drives the batched-admission fast
// path hard: rank clumps issue long runs of consecutive shared-state
// events at nearly identical virtual times, so the same rank is
// repeatedly the global minimum and must re-admit itself without a
// scheduler round trip — while still interleaving bit-identically with
// the other ranks' eager traffic.
func TestSchedulerDifferentialBatchBurst(t *testing.T) {
	body := func(n *Node) {
		next := (n.Rank + 1) % n.P
		prev := (n.Rank + n.P - 1) % n.P
		for round := 0; round < 4; round++ {
			// A burst of cheap sends: consecutive events from one rank
			// with tiny clock increments (the batch fast path).
			for i := 0; i < 12; i++ {
				n.Send(next, 10+i, []float64{float64(i)})
			}
			for i := 0; i < 12; i++ {
				n.Recv(prev, 10+i)
			}
			// Skew the clocks so a different rank owns the next burst.
			n.Compute(1e-5 * float64((n.Rank+round)%n.P+1))
		}
	}
	for name, model := range diffModels() {
		for _, p := range []int{2, 4, 7} {
			runBoth(t, fmt.Sprintf("%s/p=%d", name, p), p, model, nil, body)
		}
	}
}
