package simnet

import (
	"math"
	"testing"
)

// fastModel is a simple full-crossbar network: 10 us latency, 100 MB/s.
func fastModel() *Model {
	return &Model{
		Name:  "test",
		Inter: LinkModel{LatencyUS: 10, BandwidthMBs: 100, OverheadUS: 1},
	}
}

func TestSingleRankCompute(t *testing.T) {
	wall, cpu, err := Run(1, fastModel(), func(n *Node) {
		n.Compute(0.5)
		n.Compute(0.25)
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wall[0]-0.75) > 1e-12 || math.Abs(cpu[0]-0.75) > 1e-12 {
		t.Fatalf("wall=%v cpu=%v, want 0.75", wall[0], cpu[0])
	}
}

func TestPingPongTiming(t *testing.T) {
	// One eager message of 8000 bytes: sender overhead 1 us, wire
	// 8000/100e6 = 80 us, latency 10 us => arrival at 91 us.
	model := fastModel()
	var recvClock float64
	wall, _, err := Run(2, model, func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 7, make([]float64, 1000))
		} else {
			n.Recv(0, 7)
			recvClock = n.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + 80 + 10) * 1e-6
	if math.Abs(recvClock-want) > 1e-9 {
		t.Fatalf("receive clock = %v, want %v", recvClock, want)
	}
	// Sender finished after its overhead only (eager).
	if math.Abs(wall[0]-1e-6) > 1e-9 {
		t.Fatalf("sender wall = %v, want 1e-6", wall[0])
	}
}

func TestMessageDataIntegrity(t *testing.T) {
	data := []float64{3.14, 2.71, 1.41}
	var got []float64
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 0, data)
		} else {
			got = n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("payload corrupted: %v", got)
		}
	}
}

func TestMessagesDoNotOvertake(t *testing.T) {
	// Two same-key messages must be received in send order.
	var first, second float64
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 5, []float64{1})
			n.Send(1, 5, []float64{2})
		} else {
			first = n.Recv(0, 5)[0]
			second = n.Recv(0, 5)[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || second != 2 {
		t.Fatalf("order violated: %v, %v", first, second)
	}
}

func TestTagSelectivity(t *testing.T) {
	// Receiving tag 2 before tag 1 must still deliver the right
	// payloads.
	var a, b float64
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 1, []float64{10})
			n.Send(1, 2, []float64{20})
		} else {
			b = n.Recv(0, 2)[0]
			a = n.Recv(0, 1)[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != 10 || b != 20 {
		t.Fatalf("tag routing broken: a=%v b=%v", a, b)
	}
}

func TestAnySourceWildcard(t *testing.T) {
	sum := 0.0
	_, _, err := Run(3, fastModel(), func(n *Node) {
		if n.Rank > 0 {
			n.Send(0, 0, []float64{float64(n.Rank)})
		} else {
			for i := 0; i < 2; i++ {
				sum += n.Recv(AnySource, 0)[0]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Fatalf("sum = %v, want 3", sum)
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	model := fastModel()
	model.Inter.EagerLimit = 100 // bytes
	var senderDone float64
	_, _, err := Run(2, model, func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 0, make([]float64, 10000)) // 80 KB: rendezvous
			senderDone = n.Clock()
		} else {
			n.Compute(0.01) // receiver is late
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sender cannot complete before the receiver posted at 0.01 s.
	if senderDone < 0.01 {
		t.Fatalf("rendezvous sender finished at %v, before receiver posted", senderDone)
	}
}

func TestEagerDoesNotBlockSender(t *testing.T) {
	model := fastModel()
	model.Inter.EagerLimit = 1 << 20
	var senderDone float64
	_, _, err := Run(2, model, func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 0, make([]float64, 1000))
			senderDone = n.Clock()
		} else {
			n.Compute(0.05)
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone > 0.001 {
		t.Fatalf("eager sender blocked until %v", senderDone)
	}
}

func TestCPUvsWallClock(t *testing.T) {
	// The receiver idles waiting for a late message: wall > cpu, the
	// paper's clock() vs MPI_Wtime() distinction.
	var wallR, cpuR float64
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			n.Compute(0.1)
			n.Send(1, 0, []float64{1})
		} else {
			n.Recv(0, 0)
			wallR, cpuR = n.Clock(), n.CPUTime()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if wallR < 0.1 {
		t.Fatalf("receiver wall = %v, want >= 0.1", wallR)
	}
	if cpuR != 0 {
		t.Fatalf("receiver cpu = %v, want 0 (pure idle)", cpuR)
	}
}

func TestEgressSerialization(t *testing.T) {
	// One sender, two messages to different receivers: the second
	// transfer must wait for the first to leave the NIC.
	model := fastModel()
	var t1, t2 float64
	_, _, err := Run(3, model, func(n *Node) {
		switch n.Rank {
		case 0:
			n.Send(1, 0, make([]float64, 12500)) // 100 KB = 1 ms wire
			n.Send(2, 0, make([]float64, 12500))
		case 1:
			n.Recv(0, 0)
			t1 = n.Clock()
		case 2:
			n.Recv(0, 0)
			t2 = n.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Second arrival at least one wire time after the first.
	if t2-t1 < 0.9e-3 {
		t.Fatalf("egress not serialized: t1=%v t2=%v", t1, t2)
	}
}

func TestBackplaneContention(t *testing.T) {
	// Two disjoint pairs exchange simultaneously; with a backplane of
	// one link's bandwidth the second transfer must queue.
	mk := func(backplane float64) float64 {
		model := fastModel()
		model.BackplaneMBs = backplane
		wall, _, err := Run(4, model, func(n *Node) {
			size := 12500 // 100 KB
			switch n.Rank {
			case 0:
				n.Send(2, 0, make([]float64, size))
			case 1:
				n.Send(3, 0, make([]float64, size))
			case 2, 3:
				n.Recv(n.Rank-2, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// The receivers end right after their Recv, so their final wall
		// clocks are the arrival times.
		return max(wall[2], wall[3])
	}
	free := mk(0)     // full crossbar
	capped := mk(100) // backplane = one link
	if capped < 1.8*free {
		t.Fatalf("backplane contention missing: free=%v capped=%v", free, capped)
	}
}

func TestIntranodeFasterThanInternode(t *testing.T) {
	model := &Model{
		Name:         "smp",
		Inter:        LinkModel{LatencyUS: 100, BandwidthMBs: 10, OverheadUS: 5},
		Intra:        LinkModel{LatencyUS: 5, BandwidthMBs: 200, OverheadUS: 1},
		RanksPerNode: 2,
	}
	run := func(dst int) float64 {
		var arr float64
		_, _, err := Run(4, model, func(n *Node) {
			if n.Rank == 0 {
				n.Send(dst, 0, make([]float64, 1000))
			} else if n.Rank == dst {
				n.Recv(0, 0)
				arr = n.Clock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	intra := run(1) // same node (ranks 0,1 on node 0)
	inter := run(2) // different node
	if intra >= inter {
		t.Fatalf("intra=%v not faster than inter=%v", intra, inter)
	}
}

func TestHalfDuplexSharesWire(t *testing.T) {
	mk := func(half bool) float64 {
		model := fastModel()
		model.Inter.HalfDuplex = half
		wall, _, err := Run(2, model, func(n *Node) {
			// Simultaneous bidirectional exchange.
			other := 1 - n.Rank
			n.Send(other, 0, make([]float64, 12500))
			n.Recv(other, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return max(wall[0], wall[1])
	}
	full := mk(false)
	half := mk(true)
	if half < 1.5*full {
		t.Fatalf("half duplex not slower: full=%v half=%v", full, half)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, _, err := Run(2, fastModel(), func(n *Node) {
		// Both ranks receive first: classic deadlock.
		n.Recv(1-n.Rank, 0)
		n.Send(1-n.Rank, 0, []float64{1})
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		wall, _, err := Run(4, fastModel(), func(n *Node) {
			// All-to-all-ish exchange with computation.
			n.Compute(float64(n.Rank) * 1e-4)
			for i := 0; i < n.P; i++ {
				if i == n.Rank {
					continue
				}
				n.Send(i, n.Rank, make([]float64, 100*(n.Rank+1)))
			}
			for i := 0; i < n.P; i++ {
				if i == n.Rank {
					continue
				}
				n.Recv(i, i)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return wall
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1=%v run2=%v", a, b)
		}
	}
}

func TestSelfSend(t *testing.T) {
	var got float64
	_, _, err := Run(1, fastModel(), func(n *Node) {
		n.Send(0, 3, []float64{42})
		got = n.Recv(0, 3)[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("self-send payload = %v", got)
	}
}

func TestClocksMonotonic(t *testing.T) {
	_, _, err := Run(3, fastModel(), func(n *Node) {
		prev := n.Clock()
		for i := 0; i < 5; i++ {
			n.Compute(1e-5)
			if n.Clock() < prev {
				t.Errorf("clock went backwards")
			}
			prev = n.Clock()
			dst := (n.Rank + 1) % n.P
			src := (n.Rank + n.P - 1) % n.P
			n.Send(dst, i, []float64{1})
			n.Recv(src, i)
			if n.Clock() < prev {
				t.Errorf("clock went backwards after recv")
			}
			prev = n.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhantomFactorScalesTiming(t *testing.T) {
	// The same payload must take ~10x longer to transfer with a
	// phantom factor of 10, without growing the data.
	run := func(phantom float64) (arrive float64, payload int) {
		model := fastModel()
		_, _, err := Run(2, model, func(n *Node) {
			if n.Rank == 0 {
				n.SetPhantomFactor(phantom)
				n.Send(1, 0, make([]float64, 12500)) // 100 KB real
			} else {
				got := n.Recv(0, 0)
				arrive = n.Clock()
				payload = len(got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return arrive, payload
	}
	t1, p1 := run(1)
	t10, p10 := run(10)
	if p1 != 12500 || p10 != 12500 {
		t.Fatalf("payload changed: %d vs %d", p1, p10)
	}
	// Wire time 1 ms at factor 1, 10 ms at factor 10 (latency 10 us).
	if t10 < 8*t1 {
		t.Fatalf("phantom factor not applied: %v vs %v", t1, t10)
	}
}

func TestCPUCopyCostChargesBothSides(t *testing.T) {
	model := fastModel()
	model.Inter.CPUCopyMBs = 10 // 100 KB costs 10 ms of CPU each side
	wall, cpu, err := Run(2, model, func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 0, make([]float64, 12500))
		} else {
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if cpu[r] < 9e-3 {
			t.Fatalf("rank %d cpu %v, want >= ~10ms of stack copies", r, cpu[r])
		}
	}
	_ = wall
}
