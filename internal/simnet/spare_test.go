package simnet

import (
	"math"
	"strings"
	"testing"
)

func TestSparePoolReplaceFlow(t *testing.T) {
	p, err := NewSparePool(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ranks() != 3 || p.Available() != 2 {
		t.Fatalf("pool = %d ranks, %d spares", p.Ranks(), p.Available())
	}
	if got := p.NodeMap(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("initial NodeMap = %v, want identity", got)
	}

	nn, err := p.Replace(1)
	if err != nil || nn != 3 {
		t.Fatalf("Replace(1) = (%d, %v), want first spare (3)", nn, err)
	}
	if p.NodeOf(1) != 3 || p.Available() != 1 {
		t.Fatalf("after replace: NodeOf(1)=%d, Available=%d", p.NodeOf(1), p.Available())
	}
	// The retired node never comes back; a second failure of the same
	// rank consumes the next spare.
	nn, err = p.Replace(1)
	if err != nil || nn != 4 {
		t.Fatalf("second Replace(1) = (%d, %v), want spare 4", nn, err)
	}
	if _, err := p.Replace(0); err == nil {
		t.Fatal("Replace with an empty pool succeeded")
	} else if !strings.Contains(err.Error(), "spare pool exhausted") {
		t.Fatalf("exhaustion error = %v", err)
	}

	log := p.Replacements()
	want := []Replacement{{Rank: 1, OldNode: 1, NewNode: 3}, {Rank: 1, OldNode: 3, NewNode: 4}}
	if len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("replacement log = %v, want %v", log, want)
	}
}

func TestSparePoolValidation(t *testing.T) {
	if _, err := NewSparePool(0, 1); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewSparePool(2, -1); err == nil {
		t.Error("negative spares accepted")
	}
	p, err := NewSparePool(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := p.Replace(5); rerr == nil || !strings.Contains(rerr.Error(), "unknown rank") {
		t.Errorf("Replace of unknown rank: %v", rerr)
	}
}

func TestSparePoolNodeMapIsACopy(t *testing.T) {
	p, err := NewSparePool(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NodeMap()
	m[0] = 99
	if p.NodeOf(0) != 0 {
		t.Fatal("mutating the returned NodeMap changed the pool")
	}
}

func TestNodeMapOverridesPlacement(t *testing.T) {
	// The same two ranks exchange the same message; only NodeMap
	// changes whether they share a node (fast Intra path) or sit on
	// separate nodes (slow Inter path).
	model := &Model{
		Name:  "smp",
		Inter: LinkModel{LatencyUS: 100, BandwidthMBs: 10, OverheadUS: 5},
		Intra: LinkModel{LatencyUS: 5, BandwidthMBs: 200, OverheadUS: 1},
	}
	run := func(nodeMap []int) float64 {
		m := *model
		m.NodeMap = nodeMap
		var arr float64
		_, _, err := Run(2, &m, func(n *Node) {
			if n.Rank == 0 {
				n.Send(1, 0, make([]float64, 1000))
			} else {
				n.Recv(0, 0)
				arr = n.Clock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	shared := run([]int{0, 0})
	split := run([]int{0, 1})
	if shared >= split {
		t.Fatalf("shared-node delivery %v not faster than split %v", shared, split)
	}
	// Sparse node ids are fine: only equality matters for routing.
	sparse := run([]int{3, 7})
	if sparse != split {
		t.Fatalf("sparse split placement %v, want %v (same Inter path)", sparse, split)
	}
}

func TestNodeMapValidation(t *testing.T) {
	model := fastModel()
	body := func(n *Node) { n.Compute(1e-6) }

	m := *model
	m.NodeMap = []int{0} // wrong length for 2 ranks
	if _, _, err := Run(2, &m, body); err == nil || !strings.Contains(err.Error(), "NodeMap") {
		t.Errorf("short NodeMap: err = %v", err)
	}
	m2 := *model
	m2.NodeMap = []int{0, -1}
	if _, _, err := Run(2, &m2, body); err == nil || !strings.Contains(err.Error(), "NodeMap") {
		t.Errorf("negative node id: err = %v", err)
	}
}

// testStaller adds the RankStaller hook to the basic test injector.
type testStaller struct {
	testInjector
	start, dur float64
	rank       int
}

func (ts *testStaller) RankStall(rank int) (float64, float64) {
	if rank == ts.rank {
		return ts.start, ts.dur
	}
	return math.Inf(1), 0
}

func TestRankStallFreezesProcessOnce(t *testing.T) {
	// Rank 1 freezes for 10 virtual seconds at t=0.05: its clock jumps
	// past the stall exactly once, and it stays alive (no CrashError).
	inj := &testStaller{rank: 1, start: 0.05, dur: 10}
	wall, _, err := RunWithFaults(2, fastModel(), inj, func(n *Node) {
		for i := 0; i < 10; i++ {
			n.Compute(0.01)
		}
	})
	if err != nil {
		t.Fatalf("RunWithFaults: %v", err)
	}
	if math.Abs(wall[0]-0.1) > 1e-12 {
		t.Errorf("unstalled rank wall = %v, want 0.1", wall[0])
	}
	// 0.1s of compute plus one 10s freeze — not two.
	if wall[1] < 10.1 || wall[1] >= 20 {
		t.Errorf("stalled rank wall = %v, want exactly one 10s freeze on top of 0.1s compute", wall[1])
	}
}

func TestRankStallDelaysDelivery(t *testing.T) {
	// A frozen sender goes silent: the receiver's deadline poll sees
	// nothing until the stall ends.
	inj := &testStaller{rank: 0, start: 1e-4, dur: 5}
	var got bool
	var lateData bool
	_, _, err := RunWithFaults(2, fastModel(), inj, func(n *Node) {
		if n.Rank == 0 {
			n.Compute(1e-3) // freezes at the first yield past 1e-4
			n.Send(1, 1, []float64{42})
			return
		}
		_, got = n.RecvDeadline(0, 1, 1.0) // expires during the freeze
		data, ok := n.RecvDeadline(0, 1, 10.0)
		lateData = ok && len(data) == 1 && data[0] == 42
	})
	if err != nil {
		t.Fatalf("RunWithFaults: %v", err)
	}
	if got {
		t.Error("message arrived while the sender was frozen")
	}
	if !lateData {
		t.Error("message never arrived after the freeze ended")
	}
}

// rejectingPlan implements PlanValidator and always refuses.
type rejectingPlan struct {
	testInjector
}

func (rp *rejectingPlan) ValidatePlan(ranks int) error {
	return errUnvalidatable(ranks)
}

type errUnvalidatable int

func (e errUnvalidatable) Error() string { return "plan invalid for this run shape" }

func TestInstallTimePlanRejection(t *testing.T) {
	// A plan that fails validation must reject the run before any rank
	// executes — the body must never start.
	ran := false
	_, _, err := RunWithFaults(2, fastModel(), &rejectingPlan{}, func(n *Node) {
		ran = true
	})
	if err == nil || !strings.Contains(err.Error(), "rejecting fault plan") {
		t.Fatalf("err = %v, want install-time rejection", err)
	}
	if !strings.Contains(err.Error(), "plan invalid for this run shape") {
		t.Fatalf("err = %v, want the validator's reason included", err)
	}
	if ran {
		t.Fatal("body ran despite a rejected plan")
	}
}
