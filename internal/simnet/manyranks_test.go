package simnet

import (
	"math"
	"runtime"
	"testing"
	"time"

	"nektar/internal/blas"
)

// TestSimnetManyRanks is the capacity smoke test behind the scheduler
// rework: P=2048 ranks running a trivial ring workload must complete
// under every scheduler in seconds, not minutes, and without the O(P²)
// memory churn the linear election scan and per-event map rebuilds used
// to cause. The serial and conservative-parallel runs must also stay
// bit-identical at this scale.
func TestSimnetManyRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: P=2048 capacity test skipped")
	}
	const p = 2048
	model := Model{
		Name:  "manyranks",
		Inter: LinkModel{LatencyUS: 20, BandwidthMBs: 110, OverheadUS: 2, EagerLimit: 8192},
	}
	body := func(n *Node) {
		next := (n.Rank + 1) % n.P
		prev := (n.Rank + n.P - 1) % n.P
		for s := 0; s < 3; s++ {
			n.Compute(1e-6)
			n.Send(next, s, []float64{float64(n.Rank)})
			n.Recv(prev, s)
		}
	}

	run := func(sched Scheduler) ([]float64, time.Duration) {
		t.Helper()
		t.Setenv(SchedulerEnv, "")
		m := model
		m.Scheduler = sched
		start := time.Now()
		wall, _, err := RunWithFaults(p, &m, nil, body)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%v run failed: %v", sched, err)
		}
		return wall, elapsed
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	wallSerial, dSerial := run(SchedSerial)
	runtime.ReadMemStats(&after)
	allocSerial := after.TotalAlloc - before.TotalAlloc

	// Latency smoke: a trivial 3-step ring at P=2048 has ~18k events;
	// anything beyond a minute means a superlinear scan came back.
	const latencyBudget = time.Minute
	if dSerial > latencyBudget {
		t.Errorf("serial P=%d run took %v, budget %v", p, dSerial, latencyBudget)
	}
	// Memory smoke: pooled messages and head-index inboxes keep the
	// per-event footprint bounded; ~1 GB total allocation for ~18k tiny
	// events would mean per-rank structures are being rebuilt per event.
	const allocBudget = 1 << 30
	if allocSerial > allocBudget {
		t.Errorf("serial P=%d run allocated %d bytes, budget %d", p, allocSerial, allocBudget)
	}

	schedulers := []Scheduler{SchedRelaxed}
	if blas.ThreadRecordingSupported() {
		schedulers = append(schedulers, SchedParallel)
	}
	for _, sched := range schedulers {
		wall, d := run(sched)
		if d > latencyBudget {
			t.Errorf("%v P=%d run took %v, budget %v", sched, p, d, latencyBudget)
		}
		for r := 0; r < p; r++ {
			if sched == SchedParallel {
				// Conservative: bit-identical to serial, even at P=2048.
				if math.Float64bits(wall[r]) != math.Float64bits(wallSerial[r]) {
					t.Fatalf("parallel rank %d wall %v != serial %v", r, wall[r], wallSerial[r])
				}
			} else if !(wall[r] > 0) || math.IsNaN(wall[r]) || math.IsInf(wall[r], 0) {
				t.Fatalf("%v rank %d wall clock not finite-positive: %v", sched, r, wall[r])
			}
		}
	}
}
