package simnet

// Host-parallel conservative scheduler.
//
// The serial scheduler (simnet.go) runs one rank goroutine at a time:
// it elects the runnable rank with the smallest (virtual clock, rank)
// pair, lets it run one slice — host work followed by one Node call's
// shared-state mutations — and repeats. That makes every run
// deterministic but leaves all host cores except one idle while the
// ranks' real numeric work (the BLAS flops that drive the calibrated
// virtual time) executes.
//
// The parallel scheduler exploits one structural invariant: a rank's
// virtual clock only changes inside Node calls. Between a release (the
// end of one Node call's mutations) and the rank's next Node call, its
// election key is frozen — so the scheduler always knows every rank's
// next event time even while the rank is off running host code on
// another core. It can therefore run the serial election unchanged:
// elect the minimum (key, rank); if that rank is still "in flight"
// (running host code), wait for it to arrive at its next Node call;
// admit it; run the call's shared-state mutations alone; repeat. Host
// work overlaps freely across cores; shared-state events are admitted
// in exactly the serial order, so message matching, resource booking,
// fault firing and the virtual clocks are bit-identical to the serial
// scheduler. DESIGN.md §10 gives the full argument; §13 covers the
// indexed election and admission batching below.
//
// Three refinements keep the common path fast and the fault semantics
// exact:
//
//   - Compute/Sleep touch only the rank's own clock, invisible to every
//     other rank, so they skip admission entirely: the rank bumps its
//     clock and releases (updating its frozen key) without parking.
//     A long compute phase never serializes against the event loop.
//
//   - A rank whose release-time clock has passed its injected crash
//     (or stall-adjusted crash) time must not run further host code:
//     the serial scheduler would kill it at its next resume, before any
//     of that code. It parks as "doomed", stays electable at its key,
//     and the crash fires at its admission — same global order, no
//     speculative side effects.
//
//   - Batched admission: a rank releasing an event whose next key still
//     precedes every other electable candidate would win the very next
//     election, so it keeps its admission and runs the next event
//     without a park/elect/resume round trip. Election keys never
//     decrease and every wake performed so far was done by this rank's
//     own completed mutations, so no competing candidate can appear
//     with a smaller key in between — the skipped election is a
//     foregone conclusion and the admission order is unchanged.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"nektar/internal/blas"
)

// SchedulerEnv is the environment variable that overrides
// Model.Scheduler for a whole process: "auto", "serial", "parallel" or
// "relaxed". The Makefile's race-simnet target and the differential
// tests use it. Any other non-empty value rejects the run.
const SchedulerEnv = "NEKTAR_SIMNET_SCHED"

// defaultRelaxWindowUS is the relaxed admission window used when
// Model.RelaxWindowUS is 0: wide enough to cover a typical
// Ethernet-era latency (tens to ~200us) so neighbor exchanges overlap,
// narrow enough that the virtual-time divergence stays small against
// millisecond-scale compute steps.
const defaultRelaxWindowUS = 250.0

// schedKind is the resolved execution strategy for one run.
type schedKind int

const (
	kindSerial schedKind = iota
	kindParallel
	kindRelaxed
)

// resolveScheduler validates the scheduler selection and decides which
// execution strategy a run uses. Selection errors (an unknown
// Model.Scheduler value, a bogus NEKTAR_SIMNET_SCHED override, an
// invalid relaxed window) are reported up front with the valid menu.
// Single-rank runs and platforms without thread-keyed BLAS recording
// (which per-rank operation counting needs once ranks overlap) fall
// back to serial. SchedAuto additionally requires more than one host
// core: with GOMAXPROCS=1 no host work can overlap and the admission
// protocol is pure overhead. Forcing SchedParallel or SchedRelaxed
// still works on one core — the differential and race suites depend on
// that.
func resolveScheduler(m *Model, p int) (schedKind, error) {
	mode := m.Scheduler
	switch mode {
	case SchedAuto, SchedSerial, SchedParallel, SchedRelaxed:
	default:
		return kindSerial, fmt.Errorf(
			"simnet: unknown Model.Scheduler %d (valid: SchedAuto, SchedSerial, SchedParallel, SchedRelaxed)", int(mode))
	}
	if env := os.Getenv(SchedulerEnv); env != "" {
		switch env {
		case "auto":
			mode = SchedAuto
		case "serial":
			mode = SchedSerial
		case "parallel":
			mode = SchedParallel
		case "relaxed":
			mode = SchedRelaxed
		default:
			return kindSerial, fmt.Errorf(
				"simnet: %s=%q is not a scheduler mode (valid: auto, serial, parallel, relaxed)", SchedulerEnv, env)
		}
	}
	if mode == SchedRelaxed {
		if w := m.RelaxWindowUS; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return kindSerial, fmt.Errorf(
				"simnet: Model.RelaxWindowUS = %g: the relaxed admission window must be a finite number of microseconds >= 0 (0 selects the default %gus)",
				w, defaultRelaxWindowUS)
		}
	}
	if p < 2 || !blas.ThreadRecordingSupported() {
		return kindSerial, nil
	}
	switch mode {
	case SchedSerial:
		return kindSerial, nil
	case SchedParallel:
		return kindParallel, nil
	case SchedRelaxed:
		return kindRelaxed, nil
	}
	if runtime.GOMAXPROCS(0) > 1 {
		return kindParallel, nil
	}
	return kindSerial, nil
}

// rankState tracks where a rank goroutine is in the parallel
// scheduler's protocol. Transitions by the rank itself happen under
// par.mu; the scheduler moves a rank to stAdmitted under par.mu before
// resuming it, so a rank always reads its own status race-free.
type rankState int

const (
	// stInFlight: running host code (or about to); its key is frozen.
	stInFlight rankState = iota
	// stArrived: parked at the top of a Node call, awaiting admission
	// (conservative), or parked at the window gate (relaxed).
	stArrived
	// stAdmitted: executing a Node call's shared-state mutations; the
	// scheduler waits for its release. Conservative only.
	stAdmitted
	// stParked: parked at a blocked yield. blockKind distinguishes a
	// true block (not electable, except RecvDeadline at its deadline)
	// from a woken rank awaiting re-election (blockKind == blockNone).
	stParked
	// stDoomed: parked at release because the rank's clock passed its
	// injected crash time; electable at its key, dies on admission.
	// Conservative only — the relaxed scheduler fires crashes at the
	// release itself.
	stDoomed
	// stDone: goroutine finished (completed, crashed, or poisoned).
	stDone
)

// parSched is the shared state of the host-parallel schedulers
// (conservative and relaxed).
type parSched struct {
	mu   sync.Mutex
	cond *sync.Cond
	live int // ranks not yet stDone

	// pq is the lazy election heap (elect.go); guarded by mu.
	pq electPQ

	// Relaxed mode (relaxed.go). window is the admission window in
	// seconds; winEnd the current admission horizon (ratcheted floor +
	// window), guarded by mu. big serializes relaxed shared-state
	// slices; lock order is always big before mu.
	relaxed bool
	window  float64
	winEnd  float64
	big     sync.Mutex
}

// lockPar/unlockPar guard state that an admitted rank shares with
// concurrently running rank goroutines (a sender entering Wait is the
// only Node-side writer that can run outside admission). They are
// no-ops under the serial scheduler, whose one-at-a-time execution
// needs no lock.
func (c *cluster) lockPar() {
	if c.par != nil {
		c.par.mu.Lock()
	}
}

func (c *cluster) unlockPar() {
	if c.par != nil {
		c.par.mu.Unlock()
	}
}

// applyStallLocked fires a due rank-stall fault. The serial scheduler
// applies stalls in its election scan, which a parked runnable rank
// passes through before it can be elected again; the parallel
// equivalents of that instant are a rank's transition back to in-flight
// or doomed (release), its wake from a blocked park, and launch.
// Callers push a fresh election entry after the bump. Caller holds
// par.mu (and, in relaxed mode, par.big — the bump writes the clock).
func (c *cluster) applyStallLocked(n *Node) {
	if c.stallAt == nil || c.stallFired[n.Rank] || n.clock < c.stallAt[n.Rank] {
		return
	}
	c.stallFired[n.Rank] = true
	if d := c.stallDur[n.Rank]; d > 0 {
		n.clock += d
		n.key += d
	}
}

// begin is the admission gate at the top of every Node call that
// touches shared simulator state. The rank arrives with its election
// key frozen at its last release and parks until the scheduler admits
// it in global (key, rank) order. Re-entrant: a rank already admitted
// (woken inside a receive or wait loop, or holding a batched
// admission) passes straight through.
func (n *Node) begin() {
	c := n.net
	if c.par == nil {
		return
	}
	if c.par.relaxed {
		c.relaxedBegin(n)
		return
	}
	if n.status == stAdmitted {
		return
	}
	ps := c.par
	ps.mu.Lock()
	n.status = stArrived
	ps.cond.Broadcast()
	ps.mu.Unlock()
	<-n.resume
	if n.poison {
		panic(poisonSignal{})
	}
	// No crash check here: the serial scheduler fires a crash at the
	// start of a slice, which corresponds to parYield's release (below),
	// not to arrival — the mutations this admission is about to run are
	// still part of the rank's current slice.
}

// parYield ends a Node call under the parallel scheduler: the event's
// mutations are complete, so publish the rank's next election key and
// either return to in-flight host execution or park (blocked, or doomed
// by a pending crash). Mirrors the serial yield()'s park/resume
// contract: a parked rank returns from parYield admitted (woken) — or
// panics if poisoned or crashed.
func (c *cluster) parYield(n *Node) {
	ps := c.par
	ps.mu.Lock()
	n.key = n.clock
	if n.blockKind == blockNone {
		c.applyStallLocked(n)
		if c.crashAt == nil || c.crashed[n.Rank] || n.clock < c.crashAt[n.Rank] {
			if n.status == stAdmitted && c.stillFirstLocked(n) {
				// Batched admission: the next election would re-elect
				// this rank, so keep the admission and skip the
				// park/elect/resume handshake. The scheduler stays
				// parked in its stAdmitted wait; no broadcast needed.
				ps.mu.Unlock()
				return
			}
			n.status = stInFlight
			c.pushElect(n)
			ps.cond.Broadcast()
			ps.mu.Unlock()
			return
		}
		n.status = stDoomed
	} else {
		n.status = stParked
	}
	c.pushElect(n)
	ps.cond.Broadcast()
	ps.mu.Unlock()
	<-n.resume
	if n.poison {
		panic(poisonSignal{})
	}
	n.maybeCrash()
}

// stillFirstLocked reports whether rank n's next event precedes every
// other electable candidate, making the next election a foregone
// conclusion. Sound because keys never decrease: a candidate that
// would beat (n.key, n.Rank) would have to already exist, and every
// wake since n's admission was performed by n's own completed
// mutations, which pushed the corresponding entries before this check.
// Caller holds par.mu.
func (c *cluster) stillFirstLocked(n *Node) bool {
	e, ok := c.minElect()
	if !ok {
		// No other candidate at all (entries for n itself are stale
		// while it is admitted): every other rank is blocked, so n is
		// trivially next.
		return true
	}
	return n.key < e.key || (n.key == e.key && int32(n.Rank) < e.rank)
}

// parReleaseEarly releases admission without ending the rank's current
// slice: RecvDeadline's timeout branch returns to the body mid-slice,
// so stall and crash checks wait for the slice's real end (the next
// yield), matching the serial scheduler.
func (c *cluster) parReleaseEarly(n *Node) {
	if c.par.relaxed {
		c.relaxedReleaseEarly(n)
		return
	}
	ps := c.par
	ps.mu.Lock()
	n.key = n.clock
	n.status = stInFlight
	c.pushElect(n)
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// parWait is Wait under the parallel scheduler. The transfer-complete
// flag is written by the receiver's consume under par.mu, and a sender
// can reach Wait while the receiver is mid-admission, so the check and
// the decision to park must be one atomic step — otherwise the wake
// could slip between them. Both racy orderings converge on the serial
// outcome: a sender that parks just before the receiver completes the
// rendezvous is woken and re-elected at the same key the serial
// scheduler would have used, and a sender that observes the completed
// transfer proceeds exactly as the serial slice would.
func (n *Node) parWait(r *Request) {
	c := n.net
	ps := c.par
	ps.mu.Lock()
	for !r.m.xferDone {
		n.blockKind = blockSendRendezvous
		n.waitSend = r.m
		n.key = n.clock
		n.status = stParked
		ps.cond.Broadcast()
		ps.mu.Unlock()
		<-n.resume
		if n.poison {
			panic(poisonSignal{})
		}
		n.maybeCrash()
		ps.mu.Lock()
		n.waitSend = nil
	}
	ps.mu.Unlock()
	n.clock = max(n.clock, r.m.ready)
	m := r.m
	r.m = nil
	m.release()
}

// parRank is the goroutine wrapper for one rank under the parallel
// schedulers. The goroutine is locked to its OS thread so package blas
// can key the rank's operation-count recording by thread id — the
// process-global recorder cannot span ranks once they run concurrently.
func (c *cluster) parRank(n *Node, body func(*Node), wg *sync.WaitGroup) {
	defer wg.Done()
	runtime.LockOSThread()
	bound := blas.BindThreadRecorder()
	defer func() {
		if bound {
			blas.UnbindThreadRecorder()
		}
		runtime.UnlockOSThread()
	}()
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case crashSignal, poisonSignal:
				// Expected unwinding; the cause is recorded elsewhere.
			default:
				c.failOnce(fmt.Errorf("simnet: rank %d panicked: %v", n.Rank, r))
			}
		}
		ps := c.par
		ps.mu.Lock()
		n.done = true
		n.status = stDone
		ps.live--
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}()
	// The serial scheduler applies a stall due at t=0 before the rank's
	// first election; the parallel rank starts in flight, so apply it
	// before any body code can observe the clock. In relaxed mode the
	// clock write needs the slice lock (other ranks read clocks under
	// it).
	ps := c.par
	if ps.relaxed {
		ps.big.Lock()
	}
	ps.mu.Lock()
	c.applyStallLocked(n)
	c.pushElect(n)
	ps.cond.Broadcast()
	ps.mu.Unlock()
	if ps.relaxed {
		ps.big.Unlock()
	}
	body(n)
}

// parRun is the conservative scheduler loop: the serial election over
// (key, rank) — served by the lazy heap instead of a linear scan —
// with two extra states: waiting for an elected in-flight rank to
// arrive at its next event, and waiting for an admitted rank to
// release.
func (c *cluster) parRun() {
	ps := c.par
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for ps.live > 0 {
		e, ok := c.minElect()
		if !ok {
			// An empty heap normally means deadlock; rebuild from a
			// full scan first so a missed push can never be
			// misdiagnosed as one.
			if c.rebuildElect() {
				continue
			}
			// Deadlock: every live rank is parked blocked with no
			// wake-up time. Diagnose, then poison them (same as
			// serial).
			c.failOnce(c.deadlockError(ps.live))
			for _, n := range c.nodes {
				if n.status == stParked {
					n.poison = true
					ps.mu.Unlock()
					n.resume <- struct{}{}
					ps.mu.Lock()
					for n.status != stDone {
						ps.cond.Wait()
					}
				}
			}
			continue
		}
		pick := c.nodes[e.rank]
		if pick.status == stInFlight {
			// The elected rank is still running host code. Nothing else
			// may be admitted before it, so wait for it to transition:
			// arrive at a Node call, park in Wait, finish — or move its
			// own key with an admission-free Compute/Sleep release, which
			// may change the election. Other ranks' host work continues
			// on the remaining cores meanwhile. Its heap entry stays;
			// a key move makes it stale and the next minElect drops it.
			k := pick.key
			for pick.status == stInFlight && pick.key == k {
				ps.cond.Wait()
			}
			continue // re-elect
		}
		if e.timeout {
			// A RecvDeadline wait expired: wake the rank with its timeout
			// flag set; it advances its own clock (serial semantics).
			pick.blockKind = blockNone
			pick.timedOut = true
		}
		pick.status = stAdmitted // invalidates the rank's heap entries
		ps.mu.Unlock()
		pick.resume <- struct{}{}
		ps.mu.Lock()
		for pick.status == stAdmitted {
			ps.cond.Wait()
		}
	}
}
