// Package simnet is a deterministic discrete-event simulator of a
// message-passing cluster. Each rank runs as a goroutine with a
// virtual clock; a cooperative scheduler always resumes the runnable
// rank with the smallest clock, so resource reservations (NIC egress,
// NIC ingress, switch backplane) happen in global time order and every
// run is reproducible.
//
// The paper's communication hardware — Fast Ethernet with MPICH/LAM,
// Myrinet with MPICH-GM, the IBM SP switch, Fujitsu AP-Net, the Cray
// T3E torus and the Hitachi SR8000 crossbar — is represented by
// calibrated LogGP-style models (latency, per-link bandwidth, sender
// overhead, optional shared backplane and half-duplex links). The
// models are calibrated in package machine from the paper's Figure 7.
package simnet

import "fmt"

// LinkModel is a LogGP-style point-to-point channel model.
type LinkModel struct {
	// LatencyUS is the one-way zero-byte latency in microseconds
	// (wire + protocol stack).
	LatencyUS float64
	// BandwidthMBs is the sustainable one-way per-link bandwidth in
	// MB/s (1 MB = 1e6 bytes, as in the paper's figures).
	BandwidthMBs float64
	// OverheadUS is the sender CPU time consumed per message
	// (protocol work); the paper's Ethernet TCP stacks have large
	// overheads, Myrinet GM and the T3E tiny ones.
	OverheadUS float64
	// CPUCopyMBs is the per-byte CPU cost of moving a message through
	// the protocol stack, expressed as an effective copy bandwidth in
	// MB/s (0 = free, e.g. DMA-driven Myrinet GM). TCP charges both
	// sender and receiver; this is why the paper's Ethernet runs show
	// CPU time growing with processor count.
	CPUCopyMBs float64
	// EagerLimit is the message size in bytes above which the
	// transfer uses a rendezvous handshake costing one extra one-way
	// latency. Zero means everything is eager.
	EagerLimit int
	// HalfDuplex makes a node's send and receive share the same wire
	// (early shared-media Ethernet).
	HalfDuplex bool
	// ZeroCopy marks a kernel-bypass transport whose rendezvous
	// transfers move the payload by DMA directly between user buffers
	// (RDMA-style), so neither side pays the CPUCopyMBs charge on
	// rendezvous messages. Eager messages still pay it: they land in a
	// preposted bounce buffer that must be copied out. Tanaka's
	// kernel-bypass GbE driver (physics/0407152) is the calibrated
	// example.
	ZeroCopy bool
}

// Model describes a whole cluster network.
type Model struct {
	Name string
	// Inter is the link model between SMP nodes; Intra the model
	// inside a node (shared memory). If RanksPerNode <= 1 every pair
	// uses Inter.
	Inter LinkModel
	Intra LinkModel
	// RanksPerNode maps MPI ranks onto SMP nodes round-robin blocks:
	// node = rank / RanksPerNode.
	RanksPerNode int
	// NodeMap, when non-nil, overrides RanksPerNode with an explicit
	// rank -> physical-node placement (len(NodeMap) must equal the run's
	// rank count; node ids must be >= 0 but need not be dense). The
	// supervisor uses it to keep hot-spare nodes addressable and to move
	// a rank onto a replacement node between restart attempts, while the
	// fault plan stays keyed by physical node.
	NodeMap []int
	// BackplaneMBs caps the aggregate inter-node traffic (an
	// oversubscribed Ethernet switch); 0 = full crossbar.
	BackplaneMBs float64
	// Scheduler selects the simulator's execution strategy. Serial and
	// the host-parallel conservative scheduler produce bit-identical
	// virtual-time results; SchedRelaxed trades bit-identity for
	// concurrency (see RelaxWindowUS). The NEKTAR_SIMNET_SCHED
	// environment variable overrides it.
	Scheduler Scheduler
	// RelaxWindowUS is the relaxed scheduler's admission window in
	// virtual microseconds: ranks whose next event lies within this
	// window of the globally earliest pending event run their
	// shared-state slices concurrently, in whatever order the host
	// provides. 0 selects the default window; the value is ignored
	// unless the relaxed scheduler is selected. Must be finite and
	// >= 0.
	RelaxWindowUS float64
}

// Scheduler selects how simnet executes the rank goroutines.
type Scheduler int

const (
	// SchedAuto (the default) uses the parallel scheduler whenever the
	// platform supports it, the run has at least two ranks, and more
	// than one host core is available (GOMAXPROCS > 1).
	SchedAuto Scheduler = iota
	// SchedSerial forces the original one-rank-at-a-time scheduler.
	SchedSerial
	// SchedParallel forces the host-parallel conservative scheduler.
	SchedParallel
	// SchedRelaxed selects the windowed relaxed scheduler: shared-state
	// events within RelaxWindowUS of the global virtual-time floor are
	// admitted concurrently. Runs are NOT bit-identical to serial (the
	// event interleaving inside a window is host-dependent); use it for
	// capacity sweeps where statistical equivalence suffices.
	SchedRelaxed
)

// String names the scheduler mode for error messages and reports.
func (s Scheduler) String() string {
	switch s {
	case SchedAuto:
		return "auto"
	case SchedSerial:
		return "serial"
	case SchedParallel:
		return "parallel"
	case SchedRelaxed:
		return "relaxed"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// nodeOf returns the SMP node that hosts a rank.
func (m *Model) nodeOf(rank int) int {
	if m.NodeMap != nil {
		return m.NodeMap[rank]
	}
	if m.RanksPerNode <= 1 {
		return rank
	}
	return rank / m.RanksPerNode
}

// sharedNode reports whether two ranks live on the same SMP node under
// a placement that can co-locate ranks at all.
func (m *Model) sharedNode(from, to int) bool {
	if m.RanksPerNode <= 1 && m.NodeMap == nil {
		return false
	}
	return m.nodeOf(from) == m.nodeOf(to)
}

// link returns the channel model governing communication between two
// ranks.
func (m *Model) link(from, to int) *LinkModel {
	if m.sharedNode(from, to) {
		return &m.Intra
	}
	return &m.Inter
}

const (
	us = 1e-6 // seconds per microsecond
	mb = 1e6  // bytes per MB
)

// sendTime returns the wire time of a message of size bytes.
func (l *LinkModel) xfer(bytes int) float64 {
	if l.BandwidthMBs <= 0 {
		return 0
	}
	return float64(bytes) / (l.BandwidthMBs * mb)
}
