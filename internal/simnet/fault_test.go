package simnet

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// testInjector is a minimal Injector for exercising the hooks directly
// (package fault provides the real implementation).
type testInjector struct {
	drop    func(src, dst, n int, t float64) bool
	factors func(src, dst int, t float64) (float64, float64)
	stall   func(node int, t float64) float64
	crash   func(rank int) float64
}

func (ti *testInjector) DropMessage(src, dst, n int, t float64) bool {
	if ti.drop == nil {
		return false
	}
	return ti.drop(src, dst, n, t)
}

func (ti *testInjector) LinkFactors(src, dst int, t float64) (float64, float64) {
	if ti.factors == nil {
		return 1, 1
	}
	return ti.factors(src, dst, t)
}

func (ti *testInjector) StallUntil(node int, t float64) float64 {
	if ti.stall == nil {
		return 0
	}
	return ti.stall(node, t)
}

func (ti *testInjector) CrashTime(rank int) float64 {
	if ti.crash == nil {
		return math.Inf(1)
	}
	return ti.crash(rank)
}

func TestCrashReturnsCrashError(t *testing.T) {
	inj := &testInjector{crash: func(rank int) float64 {
		if rank == 1 {
			return 0.5
		}
		return math.Inf(1)
	}}
	_, _, err := RunWithFaults(2, fastModel(), inj, func(n *Node) {
		for i := 0; i < 100; i++ {
			n.Compute(0.01)
		}
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	if len(ce.Ranks) != 1 || ce.Ranks[0] != 1 {
		t.Fatalf("crashed ranks = %v, want [1]", ce.Ranks)
	}
	if ce.Times[0] != 0.5 {
		t.Fatalf("crash time = %v, want 0.5", ce.Times[0])
	}
}

func TestRecvErrSurfacesCrashedPeer(t *testing.T) {
	inj := &testInjector{crash: func(rank int) float64 {
		if rank == 1 {
			return 1e-4
		}
		return math.Inf(1)
	}}
	var recvErr error
	_, _, err := RunWithFaults(2, fastModel(), inj, func(n *Node) {
		if n.Rank == 1 {
			n.Compute(1) // dies at the first yield past 1e-4s
			return
		}
		_, recvErr = n.RecvErr(1, 7)
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	if recvErr == nil || !strings.Contains(recvErr.Error(), "peer rank 1 crashed") {
		t.Fatalf("RecvErr = %v, want crashed-peer error", recvErr)
	}
}

func TestRecvDeadlineTimesOut(t *testing.T) {
	wall, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			data, ok := n.RecvDeadline(1, 3, 0.25)
			if ok || data != nil {
				panic("expected timeout")
			}
			if n.Clock() < 0.25 {
				panic("clock not advanced to deadline")
			}
		} else {
			n.Compute(1) // never sends
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wall[0] != 0.25 {
		t.Fatalf("rank 0 wall = %v, want 0.25", wall[0])
	}
}

func TestRecvDeadlineDeliveredBeforeExpiry(t *testing.T) {
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			data, ok := n.RecvDeadline(1, 3, 10)
			if !ok || len(data) != 1 || data[0] != 42 {
				panic("expected delivery before deadline")
			}
		} else {
			n.Compute(0.1)
			n.Send(0, 3, []float64{42})
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSendLossyDrop(t *testing.T) {
	inj := &testInjector{drop: func(src, dst, n int, t float64) bool {
		return n == 0 // lose the first message on every pair
	}}
	var first, second bool
	var got []float64
	_, _, err := RunWithFaults(2, fastModel(), inj, func(n *Node) {
		if n.Rank == 0 {
			first = n.SendLossy(1, 5, []float64{1})
			second = n.SendLossy(1, 5, []float64{2})
		} else {
			got = n.Recv(0, 5)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first || !second {
		t.Fatalf("delivered = (%v, %v), want (false, true)", first, second)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("receiver got %v, want the second payload [2]", got)
	}
}

func TestLinkDegradationSlowsTransfer(t *testing.T) {
	run := func(inj Injector) float64 {
		wall, _, err := RunWithFaults(2, fastModel(), inj, func(n *Node) {
			if n.Rank == 0 {
				n.Send(1, 1, make([]float64, 1024))
			} else {
				n.Recv(0, 1)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return wall[1]
	}
	base := run(nil)
	degraded := run(&testInjector{factors: func(src, dst int, t float64) (float64, float64) {
		return 10, 10
	}})
	if degraded <= base {
		t.Fatalf("degraded receive time %v not slower than baseline %v", degraded, base)
	}
}

func TestNICStallDelaysTransfer(t *testing.T) {
	run := func(inj Injector) float64 {
		wall, _, err := RunWithFaults(2, fastModel(), inj, func(n *Node) {
			if n.Rank == 0 {
				n.Send(1, 1, []float64{1})
			} else {
				n.Recv(0, 1)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return wall[1]
	}
	base := run(nil)
	stalled := run(&testInjector{stall: func(node int, t float64) float64 {
		if node == 0 {
			return 0.5 // source NIC frozen until t=0.5s
		}
		return 0
	}})
	if stalled < 0.5 || stalled <= base {
		t.Fatalf("stalled receive time %v, want >= 0.5 (baseline %v)", stalled, base)
	}
}

func TestDeadlockErrorNamesBlockedRanks(t *testing.T) {
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			n.Recv(1, 9)
		} else {
			n.Recv(0, 4)
		}
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
	msg := err.Error()
	for _, want := range []string{
		"rank 0 in Recv(src=1, tag=9)",
		"rank 1 in Recv(src=0, tag=4)",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error %q missing %q", msg, want)
		}
	}
}

func TestDeadlockErrorNamesRendezvousPartner(t *testing.T) {
	model := fastModel()
	model.Inter.EagerLimit = 64 // force rendezvous for >8 doubles
	_, _, err := Run(2, model, func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 2, make([]float64, 100)) // no matching receive
		} else {
			n.Compute(1e-3)
		}
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
	if !strings.Contains(err.Error(), "rank 0 in Wait for rendezvous send (dst=1, tag=2, 800 bytes)") {
		t.Errorf("deadlock error %q missing rendezvous diagnosis", err.Error())
	}
}

func TestNegativeComputeIsErrorNotPanic(t *testing.T) {
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			n.Compute(-1)
		} else {
			n.Compute(1e-3)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "negative compute time") {
		t.Fatalf("err = %v, want negative-compute error", err)
	}
}

func TestTimedSizeOverflowClamped(t *testing.T) {
	_, _, err := Run(2, fastModel(), func(n *Node) {
		if n.Rank == 0 {
			n.SetPhantomFactor(1e300)
			n.Send(1, 1, []float64{1})
		} else {
			n.Recv(0, 1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "overflows the timed size") {
		t.Fatalf("err = %v, want timed-size overflow error", err)
	}
}

func TestSleepAdvancesWallNotCPU(t *testing.T) {
	wall, cpu, err := Run(1, fastModel(), func(n *Node) {
		n.Compute(0.1)
		n.Sleep(0.4)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wall[0] != 0.5 {
		t.Fatalf("wall = %v, want 0.5", wall[0])
	}
	if cpu[0] != 0.1 {
		t.Fatalf("cpu = %v, want 0.1", cpu[0])
	}
}

func TestFaultFreeInjectorMatchesRun(t *testing.T) {
	body := func(n *Node) {
		for i := 0; i < 5; i++ {
			n.Compute(1e-4)
			dst := (n.Rank + 1) % n.P
			src := (n.Rank + n.P - 1) % n.P
			r := n.Isend(dst, i, []float64{float64(i)})
			n.Recv(src, i)
			n.Wait(r)
		}
	}
	w1, c1, err1 := Run(4, fastModel(), body)
	inj := &testInjector{}
	w2, c2, err2 := RunWithFaults(4, fastModel(), inj, body)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	for i := range w1 {
		if w1[i] != w2[i] || c1[i] != c2[i] {
			t.Fatalf("rank %d: perfect run (%v,%v) != no-op injector run (%v,%v)",
				i, w1[i], c1[i], w2[i], c2[i])
		}
	}
}

func TestDeadlockErrorSendSendCycle(t *testing.T) {
	// Two ranks in unmatched rendezvous sends to each other: both must
	// be named with their destination and tag.
	model := fastModel()
	model.Inter.EagerLimit = 64
	_, _, err := Run(2, model, func(n *Node) {
		n.Send(1-n.Rank, 5+n.Rank, make([]float64, 100))
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
	msg := err.Error()
	for _, want := range []string{
		"rank 0 in Wait for rendezvous send (dst=1, tag=5, 800 bytes)",
		"rank 1 in Wait for rendezvous send (dst=0, tag=6, 800 bytes)",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error %q missing %q", msg, want)
		}
	}
}

func TestDeadlockAfterCrashNamesDeadRanks(t *testing.T) {
	// Rank 1 dies; ranks 0 and 2 wait on each other (neither on the
	// dead rank, so neither is woken by the crash). The CrashError must
	// carry the survivors' deadlock diagnosis, including which rank had
	// crashed — the first thing an operator needs to see.
	inj := &testInjector{crash: func(rank int) float64 {
		if rank == 1 {
			return 1e-4
		}
		return math.Inf(1)
	}}
	_, _, err := RunWithFaults(3, fastModel(), inj, func(n *Node) {
		switch n.Rank {
		case 0:
			n.Recv(2, 8)
		case 1:
			n.Compute(1) // dies at the first yield past 1e-4
		case 2:
			n.Recv(0, 3)
		}
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	if len(ce.Ranks) != 1 || ce.Ranks[0] != 1 {
		t.Fatalf("crashed ranks = %v, want [1]", ce.Ranks)
	}
	for _, want := range []string{
		"after rank(s) [1] crashed",
		"rank 0 in Recv(src=2, tag=8)",
		"rank 2 in Recv(src=0, tag=3)",
	} {
		if !strings.Contains(ce.Detail, want) {
			t.Errorf("CrashError detail %q missing %q", ce.Detail, want)
		}
	}
	if !strings.Contains(ce.Error(), "after rank(s) [1] crashed") {
		t.Errorf("Error() %q hides the crash note", ce.Error())
	}
}
