package simnet

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"nektar/internal/blas"
)

// Relaxed-scheduler suite. The relaxed scheduler is NOT bit-identical
// to serial, so these tests validate statistical equivalence instead:
// every rank completes the same program (same step counts, same
// messages matched), per-rank virtual wall clocks agree with the
// serial reference within a tolerance set by the admission window, and
// fault handling (crashes, deadlock diagnosis, deadline expiry)
// reaches the same qualitative outcome.

// runRelaxed runs body under the relaxed scheduler with the env
// override neutralized (CI exports NEKTAR_SIMNET_SCHED for the
// conservative differential suites; it must not redirect these runs).
func runRelaxed(t *testing.T, p int, model Model, inj Injector, body func(*Node)) ([]float64, []float64, error) {
	t.Helper()
	t.Setenv(SchedulerEnv, "")
	m := model
	m.Scheduler = SchedRelaxed
	return RunWithFaults(p, &m, inj, body)
}

// runSerialRef runs the bit-exact serial reference.
func runSerialRef(t *testing.T, p int, model Model, inj Injector, body func(*Node)) ([]float64, []float64, error) {
	t.Helper()
	t.Setenv(SchedulerEnv, "")
	m := model
	m.Scheduler = SchedSerial
	return RunWithFaults(p, &m, inj, body)
}

// relaxTolerance bounds how far a relaxed run's per-rank wall clock may
// drift from serial: reordering inside the admission window perturbs
// resource-booking order, and each of the workload's O(steps) events
// can land up to ~window away from its serial slot. A generous linear
// bound — the suites assert equivalence, not tightness.
func relaxTolerance(windowUS float64, steps int) float64 {
	return windowUS * us * float64(steps+4)
}

// haloWorkload is workload A: a nearest-neighbour halo exchange with
// per-rank compute imbalance, the dominant communication pattern of
// the paper's spectral-element solver.
func haloWorkload(steps int) func(*Node) {
	return func(n *Node) {
		next := (n.Rank + 1) % n.P
		prev := (n.Rank + n.P - 1) % n.P
		buf := make([]float64, 256)
		for s := 0; s < steps; s++ {
			n.Compute(2e-5 * float64(n.Rank%3+1))
			r := n.Isend(next, s, buf)
			n.Recv(prev, s)
			n.Wait(r)
		}
	}
}

// treeWorkload is workload B: repeated binomial-tree reductions to rank
// 0 followed by a broadcast — the allreduce shape, with deadline
// receives so crashed-peer plans terminate.
func treeWorkload(steps int) func(*Node) {
	return func(n *Node) {
		for s := 0; s < steps; s++ {
			n.Compute(1e-5)
			// Reduce to rank 0 over a binomial tree.
			for bit := 1; bit < n.P; bit <<= 1 {
				if n.Rank&(bit-1) != 0 {
					continue
				}
				peer := n.Rank | bit
				if n.Rank&bit != 0 || peer >= n.P {
					if n.Rank&bit != 0 {
						n.Send(n.Rank&^bit, 100+s, []float64{float64(n.Rank)})
						break
					}
					continue
				}
				if _, ok := n.RecvDeadline(peer, 100+s, n.Clock()+5e-3); !ok {
					return // peer died; bail out like the mpi layer would
				}
			}
			// Broadcast back down.
			for bit := 1; bit < n.P; bit <<= 1 {
				if n.Rank&(bit-1) != 0 {
					continue
				}
				if n.Rank&bit != 0 {
					if _, ok := n.RecvDeadline(n.Rank&^bit, 200+s, n.Clock()+5e-3); !ok {
						return
					}
					continue
				}
				if peer := n.Rank | bit; peer < n.P && peer != n.Rank {
					n.SendControl(peer, 200+s, []float64{1})
				}
			}
		}
	}
}

// TestRelaxedStatisticalEquivalence is the seeded equivalence suite:
// two workloads crossed with two fault plans (plus fault-free), run
// under serial and relaxed, asserting completion, identical error
// class, and per-rank wall clocks within the window-derived tolerance.
func TestRelaxedStatisticalEquivalence(t *testing.T) {
	if !blas.ThreadRecordingSupported() {
		t.Skip("platform cannot key BLAS recording by thread")
	}
	const steps = 6
	model := Model{
		Name:          "relax-eq",
		Inter:         LinkModel{LatencyUS: 50, BandwidthMBs: 50, OverheadUS: 10, CPUCopyMBs: 80, EagerLimit: 1024},
		RelaxWindowUS: 100,
	}
	workloads := map[string]func(*Node){
		"halo": haloWorkload(steps),
		"tree": treeWorkload(steps),
	}
	// Fault plans are deterministic functions of (src,dst,seq,t): the
	// same drops and degradations apply to both schedulers.
	plans := map[string]func() Injector{
		"fault-free": func() Injector { return nil },
		"lossy-degraded": func() Injector {
			return &testInjector{
				drop: func(src, dst, seq int, _ float64) bool {
					return src == 1 && seq == 1
				},
				factors: func(src, dst int, tm float64) (float64, float64) {
					if src == 0 && tm > 1e-4 {
						return 1.5, 2
					}
					return 1, 1
				},
			}
		},
		"stall": func() Injector {
			return &testInjector{stall: func(node int, tm float64) float64 {
				if node == 2 && tm < 2e-4 {
					return 2e-4
				}
				return 0
			}}
		},
	}
	// steps*~3 events per step bounds the reordering drift.
	tol := relaxTolerance(model.RelaxWindowUS, steps*4)
	for wname, body := range workloads {
		for pname, mk := range plans {
			for _, p := range []int{4, 8} {
				label := fmt.Sprintf("%s/%s/p=%d", wname, pname, p)
				wallS, _, errS := runSerialRef(t, p, model, mk(), body)
				wallR, _, errR := runRelaxed(t, p, model, mk(), body)
				if (errS == nil) != (errR == nil) {
					t.Errorf("%s: error class diverged: serial %v, relaxed %v", label, errS, errR)
					continue
				}
				for r := 0; r < p; r++ {
					if d := math.Abs(wallS[r] - wallR[r]); d > tol {
						t.Errorf("%s: rank %d wall drift %.3g s exceeds tolerance %.3g s (serial %v relaxed %v)",
							label, r, d, tol, wallS[r], wallR[r])
					}
				}
			}
		}
	}
}

// TestRelaxedCompletesLargeP checks the relaxed scheduler drives a
// non-trivial rank count to completion with every clock finite and
// positive.
func TestRelaxedCompletesLargeP(t *testing.T) {
	if !blas.ThreadRecordingSupported() {
		t.Skip("platform cannot key BLAS recording by thread")
	}
	model := Model{
		Name:  "relax-large",
		Inter: LinkModel{LatencyUS: 20, BandwidthMBs: 110, OverheadUS: 2, EagerLimit: 8192, ZeroCopy: true},
	}
	const p = 64
	wall, cpu, err := runRelaxed(t, p, model, nil, haloWorkload(4))
	if err != nil {
		t.Fatalf("relaxed run failed: %v", err)
	}
	for r := 0; r < p; r++ {
		if !(wall[r] > 0) || math.IsInf(wall[r], 0) || math.IsNaN(wall[r]) {
			t.Errorf("rank %d wall clock not finite-positive: %v", r, wall[r])
		}
		if cpu[r] < 0 || cpu[r] > wall[r]+1e-12 {
			t.Errorf("rank %d cpu %v outside [0, wall=%v]", r, cpu[r], wall[r])
		}
	}
}

// TestRelaxedCrash injects a mid-run crash: survivors using deadline
// receives must finish, the error must name the crashed rank, and the
// crashed rank's clock must freeze at the crash instant — same
// qualitative outcome as serial.
func TestRelaxedCrash(t *testing.T) {
	if !blas.ThreadRecordingSupported() {
		t.Skip("platform cannot key BLAS recording by thread")
	}
	const crashT = 3e-4
	inj := func() Injector {
		return &testInjector{crash: func(rank int) float64 {
			if rank == 1 {
				return crashT
			}
			return math.Inf(1)
		}}
	}
	model := Model{
		Name:  "relax-crash",
		Inter: LinkModel{LatencyUS: 50, BandwidthMBs: 50, OverheadUS: 10, CPUCopyMBs: 80},
	}
	_, _, errS := runSerialRef(t, 4, model, inj(), treeWorkload(8))
	wall, _, errR := runRelaxed(t, 4, model, inj(), treeWorkload(8))
	if errR == nil {
		t.Fatal("relaxed run with crash returned nil error")
	}
	if !strings.Contains(fmt.Sprint(errR), "rank 1") {
		t.Errorf("relaxed crash error does not name rank 1: %v", errR)
	}
	if (errS == nil) != (errR == nil) {
		t.Errorf("error class diverged: serial %v relaxed %v", errS, errR)
	}
	if math.Float64bits(wall[1]) != math.Float64bits(crashT) {
		t.Errorf("crashed rank clock = %v, want frozen at %v", wall[1], crashT)
	}
}

// TestRelaxedDeadlock: a receive nobody serves must produce the
// deadlock diagnosis, not a hang.
func TestRelaxedDeadlock(t *testing.T) {
	if !blas.ThreadRecordingSupported() {
		t.Skip("platform cannot key BLAS recording by thread")
	}
	model := Model{
		Name:  "relax-deadlock",
		Inter: LinkModel{LatencyUS: 50, BandwidthMBs: 50},
	}
	_, _, err := runRelaxed(t, 3, model, nil, func(n *Node) {
		n.Compute(1e-5 * float64(n.Rank+1))
		n.Recv(n.Rank, 77) // no self-send posted: guaranteed deadlock
	})
	if err == nil {
		t.Fatal("relaxed deadlocked run returned nil error")
	}
	if !strings.Contains(fmt.Sprint(err), "deadlock") {
		t.Errorf("error does not diagnose deadlock: %v", err)
	}
}

// TestRelaxedWindowDefault: RelaxWindowUS=0 selects the default window
// and still completes.
func TestRelaxedWindowDefault(t *testing.T) {
	if !blas.ThreadRecordingSupported() {
		t.Skip("platform cannot key BLAS recording by thread")
	}
	model := Model{
		Name:  "relax-default-window",
		Inter: LinkModel{LatencyUS: 20, BandwidthMBs: 100, OverheadUS: 5},
	}
	if _, _, err := runRelaxed(t, 4, model, nil, haloWorkload(3)); err != nil {
		t.Fatalf("relaxed run with default window failed: %v", err)
	}
}
