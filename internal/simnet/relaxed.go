package simnet

// Relaxed windowed scheduler.
//
// The conservative scheduler (parsched.go) admits shared-state events
// strictly in (virtual time, rank) order, which makes runs
// bit-identical to serial but serializes every event through one
// admission token. The relaxed scheduler trades that determinism for
// concurrency: it maintains an admission horizon
//
//	winEnd = floor + window
//
// where floor is the smallest electable key (the same candidate set as
// the conservative election, served by the same lazy heap), and lets
// EVERY rank whose next event lies at or below the horizon run its
// shared-state slice concurrently. Slices are serialized by one
// mutation lock (par.big) so the simulator state stays consistent, but
// the order in which ranks inside the window acquire it is whatever
// the host OS provides — two events less than `window` apart in
// virtual time may book NIC/backplane resources in either order, so
// clocks, and with wildcard receives even trajectories, are NOT
// bit-identical to serial. What is preserved: every rank still
// executes its program order, messages still match per (source, tag)
// FIFO, resource accounting is still exact for the order that
// happened, and no event can run more than ~window ahead of the
// currently earliest pending event (the horizon only ratchets forward;
// a rank woken at an old key can briefly widen the true spread). Runs
// under this mode are validated statistically — step counts, solver
// invariants, virtual-time totals within tolerance — not by trajectory
// hash. DESIGN.md §13 gives the full argument and the non-goals.
//
// Lock order: par.big (slice mutations, virtual clocks) before par.mu
// (protocol state, election heap). parWait-style waiters take par.mu
// only; clock writes always hold par.big.

// relaxedBegin gates a Node call in relaxed mode: the rank parks until
// its virtual time is inside the admission horizon, then enters the
// slice by taking the mutation lock. Every Node call that reaches a
// yield()/parReleaseEarly releases it.
func (c *cluster) relaxedBegin(n *Node) {
	c.relaxedGate(n)
	c.par.big.Lock()
}

// relaxedGate parks the rank while its next-event key is beyond the
// admission horizon. The scheduler moves the rank back to stInFlight
// before resuming it, and the horizon only ratchets forward, so one
// wake always suffices; the loop is defensive.
func (c *cluster) relaxedGate(n *Node) {
	ps := c.par
	ps.mu.Lock()
	n.key = n.clock
	for n.key > ps.winEnd {
		n.status = stArrived
		// The rank's standing heap entry (pushed at its last release)
		// already covers this candidacy, but the floor may now be this
		// rank: wake the scheduler to recompute the horizon.
		ps.cond.Broadcast()
		ps.mu.Unlock()
		<-n.resume
		if n.poison {
			panic(poisonSignal{})
		}
		ps.mu.Lock()
	}
	ps.mu.Unlock()
}

// relaxedYield ends a Node call in relaxed mode. Entered with par.big
// held (taken by relaxedBegin or Compute/Sleep's sliceLock). For an
// unblocked release it publishes the new key, fires due stalls and
// crashes, releases the slice lock and paces against the horizon; for
// a blocked yield it parks and re-enters the slice when woken.
func (c *cluster) relaxedYield(n *Node) {
	ps := c.par
	if n.blockKind == blockNone {
		ps.mu.Lock()
		n.key = n.clock
		c.applyStallLocked(n) // big held: the clock write is safe
		crash := c.crashAt != nil && !c.crashed[n.Rank] && n.clock >= c.crashAt[n.Rank]
		if !crash {
			c.pushElect(n) // floor bookkeeping + scheduler wake
			ps.mu.Unlock()
			ps.big.Unlock()
			c.relaxedGate(n)
			return
		}
		ps.mu.Unlock()
		ps.big.Unlock()
		c.relaxedCrash(n) // panics crashSignal
		return
	}
	// Blocked mid-call: park, hand the slice lock back, continue the
	// slice when woken (by a delivery, a rendezvous completion, an
	// expired deadline, or a peer's crash).
	ps.mu.Lock()
	n.key = n.clock
	n.status = stParked
	c.pushElect(n) // no-op unless blockRecvDeadline
	ps.cond.Broadcast()
	ps.mu.Unlock()
	ps.big.Unlock()
	<-n.resume
	if n.poison {
		panic(poisonSignal{})
	}
	c.relaxedMaybeCrash(n)
	ps.big.Lock()
}

// relaxedReleaseEarly releases the slice lock on a mid-slice return
// (RecvDeadline expiry, RecvErr's crashed-peer error) and publishes
// the rank's advanced key for floor bookkeeping. The slice continues
// in body code; stall/crash checks wait for its real end, like the
// conservative parReleaseEarly.
func (c *cluster) relaxedReleaseEarly(n *Node) {
	ps := c.par
	ps.mu.Lock()
	n.key = n.clock
	c.pushElect(n)
	ps.mu.Unlock()
	ps.big.Unlock()
}

// relaxedWait is Wait in relaxed mode: park until the rendezvous
// transfer is booked. Identical in structure to parWait, except the
// final send-completion clock advance needs the slice lock (other
// ranks read clocks under it).
func (n *Node) relaxedWait(r *Request) {
	c := n.net
	ps := c.par
	ps.mu.Lock()
	for !r.m.xferDone {
		n.blockKind = blockSendRendezvous
		n.waitSend = r.m
		n.key = n.clock
		n.status = stParked
		ps.cond.Broadcast()
		ps.mu.Unlock()
		<-n.resume
		if n.poison {
			panic(poisonSignal{})
		}
		c.relaxedMaybeCrash(n)
		ps.mu.Lock()
		n.waitSend = nil
	}
	ps.mu.Unlock()
	ps.big.Lock()
	n.clock = max(n.clock, r.m.ready)
	ps.big.Unlock()
	m := r.m
	r.m = nil
	m.release()
}

// relaxedMaybeCrash fires the rank's injected crash if its clock has
// passed the crash time. Called at wakes and releases — the relaxed
// equivalents of the serial scheduler's resume instant.
func (c *cluster) relaxedMaybeCrash(n *Node) {
	if c.crashAt == nil || c.crashed[n.Rank] || n.clock < c.crashAt[n.Rank] {
		return
	}
	c.relaxedCrash(n)
}

// relaxedCrash kills the rank: freeze its clock at the crash instant,
// mark it dead, wake any rank blocked receiving from it (so
// error-returning receives can diagnose the death), and unwind. Takes
// big then mu — the relaxed lock order — and holds neither across the
// panic.
func (c *cluster) relaxedCrash(n *Node) {
	ps := c.par
	ps.big.Lock()
	t := c.crashAt[n.Rank]
	n.clock = t
	if n.cpu > t {
		n.cpu = t
	}
	ps.mu.Lock()
	c.crashed[n.Rank] = true
	for _, peer := range c.nodes {
		if peer == n || peer.done {
			continue
		}
		if (peer.blockKind == blockRecv || peer.blockKind == blockRecvDeadline) &&
			peer.waitKey != nil && peer.waitKey.src == n.Rank {
			peer.blockKind = blockNone
			c.applyStallLocked(peer)
			c.pushElect(peer)
		}
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
	ps.big.Unlock()
	panic(crashSignal{})
}

// relaxedRun is the relaxed scheduler loop: recompute the admission
// horizon from the election floor and resume every parked candidate
// inside it. Ranks already in flight inside the horizon need nothing
// from the scheduler — their heap entries are kept only as floor
// bookkeeping.
func (c *cluster) relaxedRun() {
	ps := c.par
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var keep []electEntry
	for ps.live > 0 {
		e, ok := c.minElect()
		if !ok {
			if c.rebuildElect() {
				continue
			}
			// Deadlock: every live rank is parked blocked with no
			// wake-up time (window-gated and deadline-parked ranks are
			// always electable, so they cannot be the cause).
			c.failOnce(c.deadlockError(ps.live))
			for _, n := range c.nodes {
				if n.status == stParked || n.status == stArrived {
					n.poison = true
					ps.mu.Unlock()
					n.resume <- struct{}{}
					ps.mu.Lock()
					for n.status != stDone {
						ps.cond.Wait()
					}
				}
			}
			continue
		}
		if end := e.key + ps.window; end > ps.winEnd {
			ps.winEnd = end
		}
		granted := 0
		keep = keep[:0]
		for {
			e, ok := c.minElect()
			if !ok || e.key > ps.winEnd {
				break
			}
			ps.pq.pop()
			pick := c.nodes[e.rank]
			switch pick.status {
			case stArrived, stParked:
				if e.timeout {
					pick.blockKind = blockNone
					pick.timedOut = true
				}
				pick.status = stInFlight
				// Leave an in-flight floor marker: until the rank ends its
				// slice and publishes a new key, it is logically running at
				// pick.key and must pin the horizon — otherwise the floor
				// could ratchet off a far-future deadline and fire timeouts
				// for messages the granted ranks are about to send.
				keep = append(keep, electEntry{key: pick.key, rank: e.rank})
				ps.mu.Unlock()
				pick.resume <- struct{}{}
				ps.mu.Lock()
				granted++
			case stInFlight:
				// Already running inside the horizon; its entry is the
				// floor bookkeeping — put it back after the sweep.
				keep = append(keep, e)
			}
		}
		for _, e := range keep {
			ps.pq.push(e)
		}
		if granted == 0 {
			// Nothing grantable until a rank parks, publishes a new
			// key, or finishes; all three broadcast.
			ps.cond.Wait()
		}
	}
}
