package simnet

// Indexed election for the host-parallel schedulers.
//
// The conservative scheduler admits shared-state events in global
// (virtual time, rank) order; the relaxed scheduler needs the global
// virtual-time floor to place its admission window. Both used to find
// the minimum with a linear scan over every rank per election — O(P)
// per event, which dominates once P reaches the hundreds. The scan is
// replaced by a lazy min-heap of election entries:
//
//   - Every transition that makes a rank electable (or moves its key
//     while electable) pushes a fresh entry. Old entries are not
//     removed in place.
//   - The heap top is validated against the rank's *current* state
//     before use; a stale entry (the rank moved on, was admitted, or
//     blocked) is popped and discarded.
//
// Laziness is sound because election keys never decrease: a rank's key
// is its virtual clock (or an absolute receive deadline), and virtual
// clocks are monotone. A stale entry therefore always sorts at or
// before the rank's live entry, so discarding stale tops can never
// skip past a smaller live candidate. Each event pushes O(1) entries
// and each election pops the entries it invalidated, so the heap stays
// O(live candidates) and admission costs O(log P).

type electEntry struct {
	key     float64
	rank    int32
	timeout bool // entry is a RecvDeadline expiry, not a runnable key
}

// electPQ is a hand-rolled binary min-heap over (key, rank).
// container/heap is avoided: its interface indirection allocates and
// the push/pop pair sits on the admission fast path.
type electPQ []electEntry

func electLess(a, b electEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.rank < b.rank
}

func (pq *electPQ) push(e electEntry) {
	h := append(*pq, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !electLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*pq = h
}

func (pq *electPQ) pop() electEntry {
	h := *pq
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && electLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && electLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	*pq = h
	return top
}

// electKeyOf returns rank n's current election candidacy: its frozen
// key for in-flight/arrived/woken/doomed ranks, its deadline for a
// rank blocked in RecvDeadline, or ok=false when the rank is not
// electable at all. This is exactly the serial scheduler's candidate
// set. Caller holds par.mu.
func electKeyOf(n *Node) (electEntry, bool) {
	switch n.status {
	case stInFlight, stArrived, stDoomed:
		return electEntry{key: n.key, rank: int32(n.Rank)}, true
	case stParked:
		switch n.blockKind {
		case blockNone:
			return electEntry{key: n.key, rank: int32(n.Rank)}, true
		case blockRecvDeadline:
			return electEntry{key: n.deadline, rank: int32(n.Rank), timeout: true}, true
		}
	}
	return electEntry{}, false
}

// pushElect publishes rank n's current candidacy to the election heap;
// a no-op when the rank is not electable. Call after any transition
// that creates or re-keys a candidacy (release, wake, stall bump,
// doom, deadline park, launch). Caller holds par.mu.
func (c *cluster) pushElect(n *Node) {
	e, ok := electKeyOf(n)
	if !ok {
		return
	}
	c.par.pq.push(e)
	if c.par.relaxed {
		// The relaxed scheduler recomputes its window on any new
		// candidate; the conservative scheduler has its own targeted
		// broadcasts.
		c.par.cond.Broadcast()
	}
}

// minElect returns the smallest live election entry without removing
// it, popping and discarding stale tops along the way; ok=false means
// no rank is electable. Caller holds par.mu.
func (c *cluster) minElect() (electEntry, bool) {
	pq := &c.par.pq
	for len(*pq) > 0 {
		e := (*pq)[0]
		cur, ok := electKeyOf(c.nodes[e.rank])
		if ok && cur == e {
			return e, true
		}
		pq.pop()
	}
	return electEntry{}, false
}

// rebuildElect repopulates the heap from a full state scan and reports
// whether any candidate exists. It is the O(P) safety net behind the
// lazy heap: an empty heap normally means deadlock, and rebuilding
// first guarantees a missed push can degrade only performance, never
// correctness. Caller holds par.mu.
func (c *cluster) rebuildElect() bool {
	any := false
	for _, n := range c.nodes {
		if e, ok := electKeyOf(n); ok {
			c.par.pq.push(e)
			any = true
		}
	}
	return any
}
