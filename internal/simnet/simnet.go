package simnet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Injector is the fault-injection hook set consulted by the simulator.
// Package fault provides the standard deterministic implementation; the
// interface lives here so simnet carries no dependency on it. All
// methods must be pure functions of their arguments (plus the
// injector's own seed/state) so that a run is reproducible.
type Injector interface {
	// DropMessage reports whether the n-th eager message on the
	// directed link src -> dst (counted per ordered rank pair) is lost
	// in the network at virtual time t. The sender still pays its
	// overhead and wire time — the bytes left the NIC — but the payload
	// is never delivered. Rendezvous transfers are not dropped: their
	// handshake stands in for the reliability a real implementation
	// layers under large transfers.
	DropMessage(src, dst, n int, t float64) bool
	// LinkFactors returns multiplicative degradation factors for a
	// transfer from rank src to rank dst starting at virtual time t:
	// the link latency is multiplied by latMul and the transfer time by
	// bwDiv (bandwidth divided by bwDiv). Values <= 1 mean no
	// degradation.
	LinkFactors(src, dst int, t float64) (latMul, bwDiv float64)
	// StallUntil returns a virtual time before which the SMP node's NIC
	// cannot begin a new transfer (a transient NIC stall); values <= t
	// mean no stall.
	StallUntil(node int, t float64) float64
	// CrashTime returns the virtual time at which the rank dies, or
	// +Inf for a rank that never crashes.
	CrashTime(rank int) float64
}

// RankStaller is an optional Injector extension: a rank-stall fault
// models a process freeze (OS thrashing, ECC scrub storm, a wedged
// daemon) rather than a death. RankStall returns the virtual time at
// which the rank freezes and the freeze duration in seconds; start =
// +Inf (or dur <= 0) means the rank never stalls. The frozen rank's
// wall clock jumps forward by dur at its first yield past start — it
// consumes no CPU and sends nothing while frozen, then resumes exactly
// where it was. Unlike a crash the rank eventually completes, so a
// failure detector (not the simulator) must decide it is gone.
type RankStaller interface {
	RankStall(rank int) (start, dur float64)
}

// PlanValidator is an optional Injector extension consulted once when
// the plan is installed: RunWithFaults rejects the run up front if the
// plan references ranks outside [0, ranks) or carries other impossible
// entries, instead of silently ignoring them mid-run. fault.Plan
// implements it.
type PlanValidator interface {
	ValidatePlan(ranks int) error
}

// CrashError reports that one or more ranks crashed during a run (an
// injected whole-node failure). Detail carries the blocked-rank
// diagnosis when surviving ranks were left waiting on the dead ones.
type CrashError struct {
	Ranks  []int     // crashed ranks, ascending
	Times  []float64 // crash times, aligned with Ranks
	Detail string    // non-empty when survivors deadlocked
}

func (e *CrashError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simnet: %d rank(s) crashed:", len(e.Ranks))
	for i, r := range e.Ranks {
		fmt.Fprintf(&b, " rank %d at t=%.6gs", r, e.Times[i])
		if i < len(e.Ranks)-1 {
			b.WriteString(",")
		}
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// crashSignal unwinds a crashed rank's goroutine; poisonSignal unwinds
// a rank poisoned by the scheduler's deadlock resolution. Both are
// recognized by the recover handler and kept out of c.fail.
type crashSignal struct{}
type poisonSignal struct{}

// Node is one simulated rank. All methods must be called from the
// rank's own goroutine (the body function passed to Run).
type Node struct {
	Rank int
	P    int

	net *cluster

	clock float64 // virtual wall-clock, seconds
	cpu   float64 // virtual CPU time, seconds

	resume chan struct{}
	done   bool
	poison bool // set by the scheduler on deadlock; yield panics

	// Pending received messages keyed by (source, tag); each entry is
	// FIFO per key, matching MPI's non-overtaking guarantee.
	inbox map[msgKey]*msgQueue
	// If blocked in Recv, the key being waited for.
	waitKey *msgKey
	// If blocked in Wait for a rendezvous send, the message involved.
	waitSend  *message
	blockKind blockKind
	// Absolute wake-up time when blocked in RecvDeadline.
	deadline float64
	// Set by the scheduler when a RecvDeadline wait expired.
	timedOut bool

	// phantom multiplies the *timed* size of every outgoing message
	// without inflating the payload. The paper-scale extrapolation
	// harness uses it to charge full-size transfer times while moving
	// validation-scale data.
	phantom float64

	// Parallel-scheduler state (parsched.go; unused when net.par is
	// nil): the protocol state and the rank's frozen election key — the
	// virtual time of its next shared-state event, published at each
	// release. Guarded by net.par.mu.
	status rankState
	key    float64
}

// SetPhantomFactor sets the message-size multiplier used for timing
// (values < 1 are treated as 1).
func (n *Node) SetPhantomFactor(f float64) { n.phantom = f }

// maxTimedSize caps the phantom-scaled timed size of a message: 2^52
// bytes is exactly representable in float64 and far below int overflow
// on 64-bit targets, so arithmetic on timed sizes stays well-defined.
const maxTimedSize = 1 << 52

// timedSize returns the size in bytes used for transfer timing. Very
// large phantom factors are clamped to maxTimedSize (and the run is
// marked failed) instead of silently overflowing to a negative int.
func (n *Node) timedSize(elems int) int {
	s := 8 * elems
	if n.phantom > 1 {
		f := float64(s) * n.phantom
		if math.IsNaN(f) || f < 0 || f > maxTimedSize {
			n.net.failOnce(fmt.Errorf(
				"simnet: rank %d: phantom factor %g overflows the timed size of a %d-byte message (clamped to 2^52)",
				n.Rank, n.phantom, s))
			return maxTimedSize
		}
		s = int(f)
	}
	return s
}

type blockKind int

const (
	blockNone blockKind = iota
	blockRecv
	blockRecvDeadline
	blockSendRendezvous
)

type msgKey struct {
	src, tag int
}

type message struct {
	key      msgKey
	dst      int // destination rank (for diagnostics)
	data     []float64
	arrive   float64 // virtual time at which the payload is available
	rendezv  bool    // requires the receiver before transfer starts
	xferDone bool    // transfer booked (always true for eager)
	ready    float64 // time the sender's buffer is free (send completion)
	sender   *Node   // for rendezvous completion
	size     int
	posted   float64 // sender clock when the send was issued

	// Pool bookkeeping: the struct (with its embedded Request) is
	// recycled through msgPool once both owners — the sender-side
	// Request and the receiver-side delivery — have released it. The
	// payload slice is NOT pooled: Recv hands it to the application.
	refs int32
	req  Request
}

// Request is the handle of a nonblocking send.
type Request struct {
	m *message
}

// msgPool recycles message structs. At P=4096 every simulated step
// issues thousands of sends; without the pool each one allocates a
// message plus a Request and leaves them for the GC.
var msgPool = sync.Pool{New: func() any { return new(message) }}

// getMsg returns a reset message with refs owners and its embedded
// Request wired up. Callers fill the remaining fields.
func getMsg(refs int32) *message {
	m := msgPool.Get().(*message)
	*m = message{refs: refs}
	m.req.m = m
	return m
}

// release drops one ownership share; the last release recycles the
// struct. The data slice is detached first — it may have escaped to
// the application through Recv.
func (m *message) release() {
	if atomic.AddInt32(&m.refs, -1) == 0 {
		m.data = nil
		m.sender = nil
		m.req.m = nil
		msgPool.Put(m)
	}
}

// releaseSender drops the sender-side share of a request whose handle
// is being discarded without a Wait (SendLossy/SendControl).
func (r *Request) releaseSender() {
	if r.m != nil {
		m := r.m
		r.m = nil
		m.release()
	}
}

// msgQueue is one inbox FIFO. A head index instead of re-slicing keeps
// the backing array alive across push/pop cycles, so a steady-state
// exchange pattern reaches zero allocations per message.
type msgQueue struct {
	buf  []*message
	head int
}

func (q *msgQueue) empty() bool     { return q.head == len(q.buf) }
func (q *msgQueue) peek() *message  { return q.buf[q.head] }
func (q *msgQueue) push(m *message) { q.buf = append(q.buf, m) }

func (q *msgQueue) pop() *message {
	m := q.buf[q.head]
	q.buf[q.head] = nil // drop the reference; the pool may reuse m
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}

// cluster is the shared simulator state. Node methods synchronize
// through the scheduler: under the serial scheduler only one rank
// goroutine runs at a time; under the parallel scheduler (parsched.go)
// rank host code runs concurrently but shared-state mutations are
// admitted one at a time in the same (virtual time, rank) order.
type cluster struct {
	model *Model
	nodes []*Node

	mu       sync.Mutex
	schedCh  chan int // rank yields by sending its id
	finished int

	// Shared resources: per-SMP-node NIC free times and the switch
	// backplane free time.
	egressFree  []float64
	ingressFree []float64
	bpFree      float64

	// par is the parallel scheduler's state; nil under the serial
	// scheduler, which also turns every lockPar/unlockPar into a no-op.
	par *parSched

	// Fault injection (nil when the cluster is perfect).
	inj     Injector
	crashAt []float64 // per-rank crash time (+Inf = never)
	crashed []bool
	// Rank-stall faults (nil when the injector is not a RankStaller).
	stallAt    []float64 // per-rank freeze time (+Inf = never)
	stallDur   []float64
	stallFired []bool
	// msgSeq counts eager messages per directed rank pair for the
	// injector's drop decision.
	msgSeq map[[2]int]int

	fail error
}

// failOnce records the first failure; later ones are dropped so the
// root cause survives the unwinding that follows.
func (c *cluster) failOnce(err error) {
	c.mu.Lock()
	if c.fail == nil {
		c.fail = err
	}
	c.mu.Unlock()
}

// isCrashed reports whether a rank has died (called from the single
// running rank goroutine, so no lock is needed beyond the scheduler's
// serialization).
func (c *cluster) isCrashed(rank int) bool {
	return c.crashed != nil && c.crashed[rank]
}

// Run simulates P ranks executing body concurrently under the given
// network model on a perfect (fault-free) cluster. It returns the
// per-rank virtual wall-clock and CPU times at exit, and an error if
// the program deadlocked or a rank panicked.
func Run(p int, model *Model, body func(n *Node)) (wall, cpu []float64, err error) {
	return RunWithFaults(p, model, nil, body)
}

// RunWithFaults is Run with a fault-injection plan installed: inj is
// consulted for message drops, link degradation, NIC stalls and node
// crashes. A nil injector reproduces Run exactly. If any rank crashes
// the returned error is a *CrashError (surviving ranks may still run
// to completion; their clocks are reported as usual).
func RunWithFaults(p int, model *Model, inj Injector, body func(n *Node)) (wall, cpu []float64, err error) {
	if p < 1 {
		return nil, nil, fmt.Errorf("simnet: need at least one rank")
	}
	nNodes := p
	if model.RanksPerNode > 1 {
		nNodes = (p + model.RanksPerNode - 1) / model.RanksPerNode
	}
	if model.NodeMap != nil {
		if len(model.NodeMap) != p {
			return nil, nil, fmt.Errorf("simnet: NodeMap covers %d ranks, run has %d", len(model.NodeMap), p)
		}
		maxID := 0
		for r, id := range model.NodeMap {
			if id < 0 {
				return nil, nil, fmt.Errorf("simnet: NodeMap[%d] = %d, node ids must be >= 0", r, id)
			}
			if id > maxID {
				maxID = id
			}
		}
		nNodes = maxID + 1
	}
	if inj != nil {
		if v, ok := inj.(PlanValidator); ok {
			if err := v.ValidatePlan(p); err != nil {
				return nil, nil, fmt.Errorf("simnet: rejecting fault plan: %w", err)
			}
		}
	}
	c := &cluster{
		model:       model,
		schedCh:     make(chan int),
		egressFree:  make([]float64, nNodes),
		ingressFree: make([]float64, nNodes),
	}
	if inj != nil {
		c.inj = inj
		c.msgSeq = map[[2]int]int{}
		c.crashAt = make([]float64, p)
		c.crashed = make([]bool, p)
		for i := 0; i < p; i++ {
			c.crashAt[i] = inj.CrashTime(i)
		}
		if rs, ok := inj.(RankStaller); ok {
			c.stallAt = make([]float64, p)
			c.stallDur = make([]float64, p)
			c.stallFired = make([]bool, p)
			for i := 0; i < p; i++ {
				c.stallAt[i], c.stallDur[i] = rs.RankStall(i)
			}
		}
	}
	c.nodes = make([]*Node, p)
	for i := 0; i < p; i++ {
		c.nodes[i] = &Node{
			Rank:   i,
			P:      p,
			net:    c,
			resume: make(chan struct{}),
			inbox:  map[msgKey]*msgQueue{},
		}
	}
	kind, err := resolveScheduler(model, p)
	if err != nil {
		return nil, nil, err
	}
	var wg sync.WaitGroup
	if kind != kindSerial {
		// Host-parallel schedulers: rank host code overlaps on real
		// cores. The conservative scheduler admits shared-state events
		// in serial order (bit-identical); the relaxed one admits
		// within a bounded virtual-time window (relaxed.go).
		c.par = &parSched{live: p}
		c.par.cond = sync.NewCond(&c.par.mu)
		if kind == kindRelaxed {
			c.par.relaxed = true
			w := model.RelaxWindowUS
			if w == 0 {
				w = defaultRelaxWindowUS
			}
			c.par.window = w * us
			c.par.winEnd = c.par.window
		}
		// Seed the election heap before any rank can run: the first
		// election must see every rank at key 0.
		for i := 0; i < p; i++ {
			c.pushElect(c.nodes[i])
		}
		for i := 0; i < p; i++ {
			wg.Add(1)
			go c.parRank(c.nodes[i], body, &wg)
		}
		if kind == kindRelaxed {
			c.relaxedRun()
		} else {
			c.parRun()
		}
		wg.Wait()
		return c.collect(p)
	}
	for i := 0; i < p; i++ {
		wg.Add(1)
		n := c.nodes[i]
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case crashSignal, poisonSignal:
						// Expected unwinding; the cause is recorded
						// elsewhere (crashed[], or the deadlock error).
					default:
						c.failOnce(fmt.Errorf("simnet: rank %d panicked: %v", n.Rank, r))
					}
				}
				c.mu.Lock()
				n.done = true
				c.finished++
				c.mu.Unlock()
				c.schedCh <- -1
			}()
			// Wait for the scheduler to start us.
			<-n.resume
			body(n)
		}()
	}

	// Scheduler loop. One pass per election over the rank states
	// directly: a rank is a candidate when it is runnable (blockKind ==
	// blockNone — parked at <-resume, woken, or freshly launched) at
	// its clock, or blocked in RecvDeadline at its deadline. Scanning
	// states in place replaces the old runnable-map bookkeeping (and
	// its per-event map churn) with the identical candidate set: the
	// elected minimum does not depend on visit order, and maybeStall
	// only ever moves the visited rank's own clock. The serial
	// scheduler stays O(P) per event by design — it is the bit-exact
	// reference the parallel schedulers are differentially tested
	// against; the O(log P) election lives in parsched.go.
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		running := p // rank goroutines not yet done
		for running > 0 {
			pick := -1
			pickTimeout := false
			var pickClock float64
			for _, n := range c.nodes {
				if n.done {
					continue
				}
				switch n.blockKind {
				case blockNone:
					// Apply a pending rank-stall fault before electing a
					// candidate: the freeze must reorder this rank against
					// other ranks' deadlines, not fire after the rank has
					// already been resumed at its pre-stall clock.
					n.maybeStall()
					if pick < 0 || n.clock < pickClock || (n.clock == pickClock && n.Rank < pick) {
						pick, pickClock, pickTimeout = n.Rank, n.clock, false
					}
				case blockRecvDeadline:
					if pick < 0 || n.deadline < pickClock || (n.deadline == pickClock && n.Rank < pick) {
						pick, pickClock, pickTimeout = n.Rank, n.deadline, true
					}
				}
			}
			if pick < 0 {
				// Deadlock: every live rank is blocked with no wake-up
				// time. Diagnose, then poison them so their goroutines
				// unwind through the recover handler.
				c.failOnce(c.deadlockError(running))
				for _, n := range c.nodes {
					if !n.done {
						n.poison = true
						n.resume <- struct{}{}
						<-c.schedCh // the -1 from its recover path
						running--
					}
				}
				continue
			}
			if pickTimeout {
				// A RecvDeadline wait expired: wake the rank with its
				// timeout flag set; it advances its own clock.
				n := c.nodes[pick]
				n.blockKind = blockNone
				n.timedOut = true
			}
			c.nodes[pick].resume <- struct{}{}
			// Wait for that rank to yield back (or finish).
			if id := <-c.schedCh; id == -1 {
				running--
			}
		}
	}()

	wg.Wait()
	<-schedDone
	return c.collect(p)
}

// collect gathers the per-rank virtual clocks and the run's error after
// every rank goroutine has exited.
func (c *cluster) collect(p int) (wall, cpu []float64, err error) {
	wall = make([]float64, p)
	cpu = make([]float64, p)
	for i, n := range c.nodes {
		wall[i] = n.clock
		cpu[i] = n.cpu
	}
	if c.crashed != nil {
		var ce CrashError
		for i, dead := range c.crashed {
			if dead {
				ce.Ranks = append(ce.Ranks, i)
				ce.Times = append(ce.Times, c.nodes[i].clock)
			}
		}
		if len(ce.Ranks) > 0 {
			if c.fail != nil {
				ce.Detail = c.fail.Error()
			}
			return wall, cpu, &ce
		}
	}
	return wall, cpu, c.fail
}

// deadlockError names each blocked rank and what it is waiting on: the
// (source, tag) of a pending receive, or the rendezvous partner of an
// unmatched send.
func (c *cluster) deadlockError(running int) error {
	name := func(v int) string {
		if v == -1 {
			return "any"
		}
		return fmt.Sprintf("%d", v)
	}
	var parts []string
	for _, n := range c.nodes {
		if n.done {
			continue
		}
		switch n.blockKind {
		case blockRecv, blockRecvDeadline:
			parts = append(parts, fmt.Sprintf(
				"rank %d in Recv(src=%s, tag=%s) since t=%.6gs",
				n.Rank, name(n.waitKey.src), name(n.waitKey.tag), n.clock))
		case blockSendRendezvous:
			m := n.waitSend
			parts = append(parts, fmt.Sprintf(
				"rank %d in Wait for rendezvous send (dst=%d, tag=%d, %d bytes) posted at t=%.6gs",
				n.Rank, m.dst, m.key.tag, m.size, m.posted))
		default:
			parts = append(parts, fmt.Sprintf("rank %d blocked in an unknown state", n.Rank))
		}
	}
	var crashNote string
	if c.crashed != nil {
		var dead []int
		for i, d := range c.crashed {
			if d {
				dead = append(dead, i)
			}
		}
		if len(dead) > 0 {
			crashNote = fmt.Sprintf(" after rank(s) %v crashed", dead)
		}
	}
	return fmt.Errorf("simnet: deadlock — all %d remaining rank(s) blocked%s: %s",
		running, crashNote, strings.Join(parts, "; "))
}

// yield hands control back to the scheduler and waits to be resumed.
func (n *Node) yield() {
	if par := n.net.par; par != nil {
		if par.relaxed {
			n.net.relaxedYield(n)
		} else {
			n.net.parYield(n)
		}
		return
	}
	n.net.schedCh <- n.Rank
	<-n.resume
	if n.poison {
		panic(poisonSignal{})
	}
	n.maybeCrash()
}

// sliceLock/sliceUnlock bracket a relaxed-mode shared-state slice that
// does not start with begin() — Compute and Sleep mutate the rank's
// clock, which other ranks read under the slice lock. No-ops under the
// serial and conservative schedulers (exclusive admission covers
// them). sliceLock's lock is consumed by the yield() ending the slice.
func (c *cluster) sliceLock() {
	if c.par != nil && c.par.relaxed {
		c.par.big.Lock()
	}
}

// maybeStall applies a pending rank-stall fault: the first time the
// rank's clock passes the scheduled freeze instant, its wall clock
// jumps forward by the freeze duration (no CPU is consumed, nothing is
// sent) and the rank carries on. The scheduler calls this while the
// rank is parked, before electing the next candidate, so the freeze
// correctly reorders the rank against other ranks' receive deadlines.
// A stall scheduled before a crash on the same rank can push the clock
// past the crash time, in which case the crash wins — checked by
// maybeCrash at the rank's next resume. Serial scheduler only; the
// parallel scheduler uses applyStallLocked at the equivalent instants.
func (n *Node) maybeStall() {
	c := n.net
	if c.stallAt == nil || c.stallFired[n.Rank] {
		return
	}
	if n.clock < c.stallAt[n.Rank] {
		return
	}
	c.stallFired[n.Rank] = true
	if d := c.stallDur[n.Rank]; d > 0 {
		n.clock += d
	}
}

// maybeCrash kills the rank if its injected crash time has passed: the
// clock is frozen at the crash instant, ranks blocked receiving from it
// are woken (so error-returning receives can diagnose the death), and
// the goroutine unwinds.
func (n *Node) maybeCrash() {
	c := n.net
	if c.crashAt == nil {
		return
	}
	t := c.crashAt[n.Rank]
	if n.clock < t {
		return
	}
	n.clock = t
	if n.cpu > t {
		n.cpu = t
	}
	c.lockPar()
	c.crashed[n.Rank] = true
	for _, peer := range c.nodes {
		if peer == n || peer.done {
			continue
		}
		if (peer.blockKind == blockRecv || peer.blockKind == blockRecvDeadline) &&
			peer.waitKey != nil && peer.waitKey.src == n.Rank {
			peer.blockKind = blockNone
			if c.par != nil {
				c.applyStallLocked(peer)
				c.pushElect(peer)
			}
			// Serial: the election scan sees the cleared blockKind
			// directly; nothing else to record.
		}
	}
	c.unlockPar()
	panic(crashSignal{})
}

// Clock returns the rank's virtual wall-clock time in seconds
// (the simulated MPI_Wtime).
func (n *Node) Clock() float64 { return n.clock }

// CPUTime returns the rank's accumulated virtual CPU time in seconds
// (the simulated clock(); it excludes blocking in communication).
func (n *Node) CPUTime() float64 { return n.cpu }

// Compute advances the rank's clock and CPU time by dt seconds of
// computation. A negative or NaN dt fails the run (through the same
// error path as a deadlock) and unwinds the rank.
func (n *Node) Compute(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		n.net.failOnce(fmt.Errorf("simnet: rank %d: negative compute time %g", n.Rank, dt))
		panic(poisonSignal{})
	}
	n.net.sliceLock()
	n.clock += dt
	n.cpu += dt
	n.yield()
}

// Sleep advances the rank's wall clock by dt seconds without consuming
// CPU — blocking I/O such as a checkpoint write. A negative or NaN dt
// fails the run like Compute.
func (n *Node) Sleep(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		n.net.failOnce(fmt.Errorf("simnet: rank %d: negative sleep time %g", n.Rank, dt))
		panic(poisonSignal{})
	}
	n.net.sliceLock()
	n.clock += dt
	n.yield()
}

// Send transmits data to rank dst with a tag. Standard-mode semantics:
// eager messages buffer and return after the sender overhead;
// rendezvous messages (size above the link's EagerLimit) block until
// the receiver posts the matching receive.
func (n *Node) Send(dst, tag int, data []float64) {
	n.Wait(n.Isend(dst, tag, data))
}

// Isend starts a nonblocking standard-mode send and returns a request
// to pass to Wait. The sender consumes its per-message CPU overhead
// immediately; rendezvous transfers are booked when the receiver posts
// the matching receive. Under fault injection, eager messages may be
// silently dropped (the sender cannot tell).
func (n *Node) Isend(dst, tag int, data []float64) *Request {
	r, _ := n.isend(dst, tag, data, false, true)
	return r
}

// SendLossy performs an eager-mode send regardless of the message size
// (like a buffered MPI_Bsend) and reports whether the payload was
// delivered — false only when the fault injector dropped it. The
// reliability layer in package mpi builds its acknowledged-delivery
// protocol on top of this; the return value exists for tests and must
// not be consulted by protocol code (a real sender cannot observe a
// drop).
func (n *Node) SendLossy(dst, tag int, data []float64) bool {
	r, delivered := n.isend(dst, tag, data, true, true)
	r.releaseSender() // handle discarded without a Wait
	return delivered
}

// SendControl performs an eager-mode send that is exempt from the
// injector's drop decision (it still pays overhead and wire time, and
// still sees link degradation and NIC stalls). It models the tiny
// acknowledgment/control packets of a reliability protocol, which we
// treat as riding a lossless control channel: in a blocking rank
// model there is no persistent per-connection handler to re-serve a
// lost final ack (the two-generals tail), so the loss model applies
// to payload messages only.
func (n *Node) SendControl(dst, tag int, data []float64) {
	r, _ := n.isend(dst, tag, data, true, false)
	r.releaseSender() // handle discarded without a Wait
}

func (n *Node) isend(dst, tag int, data []float64, forceEager, droppable bool) (*Request, bool) {
	n.begin()
	if dst == n.Rank {
		// Self-send: buffer locally with no network cost.
		cp := append([]float64(nil), data...)
		key := msgKey{n.Rank, tag}
		m := getMsg(2) // sender Request + receiver delivery
		m.key = key
		m.dst = dst
		m.data = cp
		m.arrive = n.clock
		m.ready = n.clock
		m.xferDone = true
		m.size = 8 * len(data)
		m.posted = n.clock
		n.queueFor(key).push(m)
		n.yield()
		return &m.req, true
	}
	c := n.net
	link := c.model.link(n.Rank, dst)
	size := n.timedSize(len(data))
	cp := append([]float64(nil), data...)
	rendezv := !forceEager && link.EagerLimit > 0 && size > link.EagerLimit

	// Sender CPU overhead: fixed protocol cost plus per-byte stack
	// copies (TCP); DMA-driven networks set CPUCopyMBs to 0, and a
	// kernel-bypass rendezvous (ZeroCopy) DMAs straight from the user
	// buffer — only its eager messages pay the bounce-buffer copy.
	o := link.OverheadUS * us
	if link.CPUCopyMBs > 0 && !(rendezv && link.ZeroCopy) {
		o += float64(size) / (link.CPUCopyMBs * mb)
	}
	n.clock += o
	n.cpu += o

	m := getMsg(2) // sender Request + receiver delivery (adjusted on drop)
	m.key = msgKey{n.Rank, tag}
	m.dst = dst
	m.data = cp
	m.rendezv = rendezv
	m.sender = n
	m.size = size
	m.posted = n.clock
	dstNode := c.nodes[dst]
	if !rendezv {
		// Eager transfers cross the wire immediately; the injector may
		// lose them in the network (inter-node links only — a
		// shared-memory copy inside an SMP node cannot be dropped).
		dropped := false
		if droppable && c.inj != nil && c.model.nodeOf(n.Rank) != c.model.nodeOf(dst) {
			pair := [2]int{n.Rank, dst}
			seq := c.msgSeq[pair]
			c.msgSeq[pair] = seq + 1
			dropped = c.inj.DropMessage(n.Rank, dst, seq, n.clock)
		}
		m.arrive = n.reserveTransfer(dst, size, n.clock, link)
		m.ready = n.clock // eager: buffered, sender is free immediately
		m.xferDone = true
		if !dropped {
			n.deliver(dstNode, m)
		} else {
			m.release() // the receiver share: nothing was delivered
		}
		n.yield()
		return &m.req, !dropped
	}
	// Rendezvous: if the receiver is already waiting, transfer now;
	// otherwise park until it posts the matching receive. The receiver's
	// block state is read under the parallel scheduler's lock: a
	// non-admitted peer can be writing its own block state concurrently
	// only inside Wait, which takes the same lock.
	c.lockPar()
	if (dstNode.blockKind == blockRecv || dstNode.blockKind == blockRecvDeadline) &&
		dstNode.waitKey != nil && matches(*dstNode.waitKey, m.key) {
		start := max(n.clock, dstNode.clock) + n.linkLatency(link, dst, max(n.clock, dstNode.clock)) // handshake
		m.arrive = n.reserveTransfer(dst, size, start, link)
		m.ready = m.arrive - link.LatencyUS*us // payload has left the NIC
		m.xferDone = true
		n.deliverLocked(dstNode, m)
		c.unlockPar()
		n.yield()
		return &m.req, true
	}
	m.arrive = -1
	n.deliverLocked(dstNode, m)
	c.unlockPar()
	n.yield()
	return &m.req, true
}

// linkLatency returns the (possibly degraded) one-way latency of the
// link to dst at virtual time t.
func (n *Node) linkLatency(link *LinkModel, dst int, t float64) float64 {
	lat := link.LatencyUS * us
	if n.net.inj != nil {
		latMul, _ := n.net.inj.LinkFactors(n.Rank, dst, t)
		if latMul > 1 {
			lat *= latMul
		}
	}
	return lat
}

// Wait blocks until the send completes (for rendezvous, until the
// receiver has posted and the payload has left the sender's NIC).
// Waiting releases the request: a Request must not be waited on twice.
func (n *Node) Wait(r *Request) {
	if r.m == nil {
		return
	}
	if par := n.net.par; par != nil {
		if par.relaxed {
			n.relaxedWait(r)
		} else {
			n.parWait(r)
		}
		return
	}
	for !r.m.xferDone {
		n.blockKind = blockSendRendezvous
		n.waitSend = r.m
		n.yield()
		n.waitSend = nil
	}
	n.clock = max(n.clock, r.m.ready)
	m := r.m
	r.m = nil
	m.release()
}

// matches reports whether a posted receive key (which may use
// wildcards via -1) matches a message key.
func matches(want, have msgKey) bool {
	if want.src != -1 && want.src != have.src {
		return false
	}
	if want.tag != -1 && want.tag != have.tag {
		return false
	}
	return true
}

// reserveTransfer books the NIC and backplane resources for a transfer
// starting no earlier than start, returning the arrival time at the
// destination. Fault injection can degrade the link (latency and
// bandwidth multipliers) and stall either NIC.
func (n *Node) reserveTransfer(dst, size int, start float64, link *LinkModel) float64 {
	c := n.net
	srcNode := c.model.nodeOf(n.Rank)
	dstNode := c.model.nodeOf(dst)
	xfer := link.xfer(size)
	lat := link.LatencyUS * us
	if c.inj != nil {
		latMul, bwDiv := c.inj.LinkFactors(n.Rank, dst, start)
		if latMul > 1 {
			lat *= latMul
		}
		if bwDiv > 1 {
			xfer *= bwDiv
		}
	}

	intra := c.model.sharedNode(n.Rank, dst)
	if intra {
		// Shared-memory copy: no NIC or backplane involvement (and no
		// fault exposure beyond whole-node crashes).
		return start + lat + xfer
	}
	egBegin := max(start, c.egressFree[srcNode])
	if c.inj != nil {
		egBegin = max(egBegin, c.inj.StallUntil(srcNode, egBegin))
	}
	if link.HalfDuplex {
		egBegin = max(egBegin, c.ingressFree[srcNode])
	}
	egEnd := egBegin + xfer
	c.egressFree[srcNode] = egEnd
	if link.HalfDuplex {
		c.ingressFree[srcNode] = egEnd
	}
	pathEnd := egEnd
	if c.model.BackplaneMBs > 0 {
		bpBegin := max(egBegin, c.bpFree)
		bpEnd := bpBegin + float64(size)/(c.model.BackplaneMBs*mb)
		c.bpFree = bpEnd
		pathEnd = max(pathEnd, bpEnd)
	}
	arrive := pathEnd + lat
	// Cut-through ingress serialization: the receive wire is busy for
	// the transfer duration ending at arrival.
	inBegin := max(arrive-xfer, c.ingressFree[dstNode])
	if c.inj != nil {
		inBegin = max(inBegin, c.inj.StallUntil(dstNode, inBegin))
	}
	arrive = inBegin + xfer
	c.ingressFree[dstNode] = arrive
	if link.HalfDuplex {
		c.egressFree[dstNode] = max(c.egressFree[dstNode], arrive)
	}
	return arrive
}

// deliver places a message in the destination inbox and unblocks the
// destination if it is waiting for it.
func (n *Node) deliver(dst *Node, m *message) {
	n.net.lockPar()
	n.deliverLocked(dst, m)
	n.net.unlockPar()
}

// queueFor returns (creating if needed) the inbox FIFO for a key.
func (n *Node) queueFor(k msgKey) *msgQueue {
	q := n.inbox[k]
	if q == nil {
		q = &msgQueue{}
		n.inbox[k] = q
	}
	return q
}

// deliverLocked is deliver with the parallel scheduler's lock already
// held (no-op lock under the serial scheduler).
func (n *Node) deliverLocked(dst *Node, m *message) {
	c := n.net
	dst.queueFor(m.key).push(m)
	if (dst.blockKind == blockRecv || dst.blockKind == blockRecvDeadline) &&
		dst.waitKey != nil && matches(*dst.waitKey, m.key) {
		dst.blockKind = blockNone
		dst.waitKey = nil
		if c.par != nil {
			// Woken: electable again at its parked key. The serial
			// scheduler's election scan would apply a due stall before
			// the rank could be picked; do it at the wake instant.
			c.applyStallLocked(dst)
			c.pushElect(dst)
		}
		// Serial: the election scan sees the cleared blockKind directly.
	}
}

// AnySource and AnyTag are wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. The rank's clock advances to the later of its
// own time and the message's arrival time.
func (n *Node) Recv(src, tag int) []float64 {
	n.begin()
	key := msgKey{src, tag}
	for {
		if m := n.takeMatch(key); m != nil {
			return n.consume(m)
		}
		n.blockKind = blockRecv
		n.waitKey = &key
		n.yield()
		n.waitKey = nil
	}
}

// RecvErr is Recv returning an error instead of waiting forever when
// the awaited peer has crashed with no matching message buffered. With
// src == AnySource the crash check is skipped (any live rank could
// still satisfy the receive) and the call behaves like Recv.
func (n *Node) RecvErr(src, tag int) ([]float64, error) {
	n.begin()
	key := msgKey{src, tag}
	for {
		if m := n.takeMatch(key); m != nil {
			return n.consume(m), nil
		}
		if src != AnySource && n.net.isCrashed(src) {
			if n.net.par != nil {
				// Returning mid-slice: release admission like the
				// serial scheduler's yield-free error return.
				n.net.parReleaseEarly(n)
			}
			return nil, fmt.Errorf("simnet: rank %d: peer rank %d crashed at t=%.6gs with no message for tag %d pending",
				n.Rank, src, n.net.crashAt[src], tag)
		}
		n.blockKind = blockRecv
		n.waitKey = &key
		n.yield()
		n.waitKey = nil
	}
}

// RecvDeadline blocks like Recv but gives up at the given absolute
// virtual time, returning (nil, false) on expiry. The rank's clock
// advances to the deadline on a timeout. The reliability layer's ack
// timers are built on this.
func (n *Node) RecvDeadline(src, tag int, deadline float64) ([]float64, bool) {
	n.begin()
	key := msgKey{src, tag}
	for {
		if m := n.takeMatch(key); m != nil {
			return n.consume(m), true
		}
		if n.clock >= deadline {
			if n.net.par != nil {
				n.net.parReleaseEarly(n)
			}
			return nil, false
		}
		n.blockKind = blockRecvDeadline
		n.waitKey = &key
		n.deadline = deadline
		n.yield()
		n.waitKey = nil
		if n.timedOut {
			n.timedOut = false
			if n.clock < deadline {
				n.clock = deadline
			}
			if n.net.par != nil {
				n.net.parReleaseEarly(n)
			}
			return nil, false
		}
	}
}

// consume finishes the receipt of a matched message: runs a pending
// rendezvous, advances the clock to the arrival time and charges the
// receive-side protocol copies.
func (n *Node) consume(m *message) []float64 {
	if m.rendezv && !m.xferDone {
		// Transfer has not started: run the rendezvous now. Under the
		// parallel scheduler the sender may be concurrently entering
		// Wait, so the completion flag and the sender's block state are
		// accessed under the scheduler lock (Wait takes the same lock).
		c := n.net
		link := c.model.link(m.sender.Rank, n.Rank)
		start := max(m.posted, n.clock) + m.sender.linkLatency(link, n.Rank, max(m.posted, n.clock))
		c.lockPar()
		m.arrive = m.sender.reserveTransfer(n.Rank, m.size, start, link)
		m.ready = m.arrive - link.LatencyUS*us
		m.xferDone = true
		// Unblock the sender if it is parked in Wait on this message.
		if m.sender.blockKind == blockSendRendezvous && m.sender.waitSend == m {
			m.sender.blockKind = blockNone
			if c.par != nil {
				c.applyStallLocked(m.sender)
				c.pushElect(m.sender)
			}
			// Serial: the election scan sees the cleared blockKind.
		}
		c.unlockPar()
	}
	n.clock = max(n.clock, m.arrive)
	if m.sender != nil {
		link := n.net.model.link(m.sender.Rank, n.Rank)
		// A kernel-bypass rendezvous (ZeroCopy) lands by DMA in the
		// receive buffer; only eager/bounce-buffered messages pay the
		// protocol copy.
		if link.CPUCopyMBs > 0 && !(m.rendezv && link.ZeroCopy) {
			o := float64(m.size) / (link.CPUCopyMBs * mb)
			n.clock += o
			n.cpu += o
		}
	}
	n.yield()
	data := m.data
	m.release() // receiver share: the payload has been handed over
	return data
}

// takeMatch removes and returns the earliest matching message, or nil.
func (n *Node) takeMatch(want msgKey) *message {
	if want.src != AnySource && want.tag != AnyTag {
		q := n.inbox[want]
		if q == nil || q.empty() {
			return nil
		}
		return q.pop()
	}
	// Wildcard: scan all queues, earliest posted first for fairness.
	var best *msgQueue
	var bestKey msgKey
	for k, q := range n.inbox {
		if q.empty() || !matches(want, k) {
			continue
		}
		if best == nil || q.peek().posted < best.peek().posted ||
			(q.peek().posted == best.peek().posted && lessKey(k, bestKey)) {
			best = q
			bestKey = k
		}
	}
	if best == nil {
		return nil
	}
	return best.pop()
}

// lessKey orders message keys deterministically (tie-break for
// wildcard receives on equal post times, independent of map order).
func lessKey(a, b msgKey) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	return a.tag < b.tag
}

// BlockedReport returns a human-readable list of currently blocked
// ranks (for tests and debugging tools); empty when nothing is blocked.
func (c *cluster) blockedRanks() []int {
	var out []int
	for _, n := range c.nodes {
		if !n.done && n.blockKind != blockNone {
			out = append(out, n.Rank)
		}
	}
	sort.Ints(out)
	return out
}
