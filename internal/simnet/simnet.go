package simnet

import (
	"fmt"
	"sync"
)

// Node is one simulated rank. All methods must be called from the
// rank's own goroutine (the body function passed to Run).
type Node struct {
	Rank int
	P    int

	net *cluster

	clock float64 // virtual wall-clock, seconds
	cpu   float64 // virtual CPU time, seconds

	resume chan struct{}
	done   bool
	poison bool // set by the scheduler on deadlock; yield panics

	// Pending received messages keyed by (source, tag); each entry is
	// FIFO per key, matching MPI's non-overtaking guarantee.
	inbox map[msgKey][]*message
	// If blocked in Recv, the key being waited for.
	waitKey *msgKey
	// If blocked in Wait for a rendezvous send, the message involved.
	waitSend  *message
	blockKind blockKind

	// phantom multiplies the *timed* size of every outgoing message
	// without inflating the payload. The paper-scale extrapolation
	// harness uses it to charge full-size transfer times while moving
	// validation-scale data.
	phantom float64
}

// SetPhantomFactor sets the message-size multiplier used for timing
// (values < 1 are treated as 1).
func (n *Node) SetPhantomFactor(f float64) { n.phantom = f }

// timedSize returns the size in bytes used for transfer timing.
func (n *Node) timedSize(elems int) int {
	s := 8 * elems
	if n.phantom > 1 {
		s = int(float64(s) * n.phantom)
	}
	return s
}

type blockKind int

const (
	blockNone blockKind = iota
	blockRecv
	blockSendRendezvous
)

type msgKey struct {
	src, tag int
}

type message struct {
	key      msgKey
	data     []float64
	arrive   float64 // virtual time at which the payload is available
	rendezv  bool    // requires the receiver before transfer starts
	xferDone bool    // transfer booked (always true for eager)
	ready    float64 // time the sender's buffer is free (send completion)
	sender   *Node   // for rendezvous completion
	size     int
	posted   float64 // sender clock when the send was issued
}

// Request is the handle of a nonblocking send.
type Request struct {
	m *message
}

// cluster is the shared simulator state; Node methods synchronize
// through the scheduler so only one rank goroutine runs at a time.
type cluster struct {
	model *Model
	nodes []*Node

	mu       sync.Mutex
	schedCh  chan int // rank yields by sending its id
	finished int

	// Shared resources: per-SMP-node NIC free times and the switch
	// backplane free time.
	egressFree  []float64
	ingressFree []float64
	bpFree      float64

	// woken collects ranks unblocked since the last scheduler merge;
	// appended only by the single running rank, drained only by the
	// scheduler between handoffs.
	woken []int

	fail error
}

// Run simulates P ranks executing body concurrently under the given
// network model. It returns the per-rank virtual wall-clock and CPU
// times at exit. Run panics if the program deadlocks (every rank
// blocked).
func Run(p int, model *Model, body func(n *Node)) (wall, cpu []float64, err error) {
	if p < 1 {
		return nil, nil, fmt.Errorf("simnet: need at least one rank")
	}
	nNodes := p
	if model.RanksPerNode > 1 {
		nNodes = (p + model.RanksPerNode - 1) / model.RanksPerNode
	}
	c := &cluster{
		model:       model,
		schedCh:     make(chan int),
		egressFree:  make([]float64, nNodes),
		ingressFree: make([]float64, nNodes),
	}
	c.nodes = make([]*Node, p)
	for i := 0; i < p; i++ {
		c.nodes[i] = &Node{
			Rank:   i,
			P:      p,
			net:    c,
			resume: make(chan struct{}),
			inbox:  map[msgKey][]*message{},
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		n := c.nodes[i]
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					c.mu.Lock()
					if c.fail == nil {
						c.fail = fmt.Errorf("simnet: rank %d panicked: %v", n.Rank, r)
					}
					c.mu.Unlock()
				}
				c.mu.Lock()
				n.done = true
				c.finished++
				c.mu.Unlock()
				c.schedCh <- -1
			}()
			// Wait for the scheduler to start us.
			<-n.resume
			body(n)
		}()
	}

	// Scheduler loop.
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		running := 0 // how many rank goroutines exist and are not done
		c.mu.Lock()
		running = p
		c.mu.Unlock()
		// Initially all ranks are runnable and paused at <-resume.
		runnable := map[int]bool{}
		for i := 0; i < p; i++ {
			runnable[i] = true
		}
		for running > 0 {
			// Pick the runnable rank with the smallest clock (ties:
			// lowest rank id, for determinism regardless of map order).
			pick := -1
			var pickClock float64
			for id := range runnable {
				n := c.nodes[id]
				if pick < 0 || n.clock < pickClock || (n.clock == pickClock && id < pick) {
					pick, pickClock = id, n.clock
				}
			}
			if pick < 0 {
				// Deadlock: every live rank is blocked. Poison them so
				// their goroutines unwind through the recover handler.
				c.mu.Lock()
				if c.fail == nil {
					c.fail = fmt.Errorf("simnet: deadlock — all %d remaining ranks blocked", running)
				}
				c.mu.Unlock()
				for _, n := range c.nodes {
					if !n.done {
						n.poison = true
						n.resume <- struct{}{}
						<-c.schedCh // the -1 from its recover path
						running--
					}
				}
				continue
			}
			delete(runnable, pick)
			c.nodes[pick].resume <- struct{}{}
			// Wait for that rank to yield back (or finish).
			id := <-c.schedCh
			if id == -1 {
				running--
			}
			// Merge the ranks this handoff unblocked, plus the yielder
			// itself if it is still runnable.
			for _, rid := range c.woken {
				n := c.nodes[rid]
				if !n.done && n.blockKind == blockNone {
					runnable[rid] = true
				}
			}
			c.woken = c.woken[:0]
			if id >= 0 {
				n := c.nodes[id]
				if !n.done && n.blockKind == blockNone {
					runnable[id] = true
				}
			}
		}
	}()

	wg.Wait()
	<-schedDone

	wall = make([]float64, p)
	cpu = make([]float64, p)
	for i, n := range c.nodes {
		wall[i] = n.clock
		cpu[i] = n.cpu
	}
	return wall, cpu, c.fail
}

// yield hands control back to the scheduler and waits to be resumed.
func (n *Node) yield() {
	n.net.schedCh <- n.Rank
	<-n.resume
	if n.poison {
		panic("deadlocked (poisoned by scheduler)")
	}
}

// Clock returns the rank's virtual wall-clock time in seconds
// (the simulated MPI_Wtime).
func (n *Node) Clock() float64 { return n.clock }

// CPUTime returns the rank's accumulated virtual CPU time in seconds
// (the simulated clock(); it excludes blocking in communication).
func (n *Node) CPUTime() float64 { return n.cpu }

// Compute advances the rank's clock and CPU time by dt seconds of
// computation.
func (n *Node) Compute(dt float64) {
	if dt < 0 {
		panic("simnet: negative compute time")
	}
	n.clock += dt
	n.cpu += dt
	n.yield()
}

// Send transmits data to rank dst with a tag. Standard-mode semantics:
// eager messages buffer and return after the sender overhead;
// rendezvous messages (size above the link's EagerLimit) block until
// the receiver posts the matching receive.
func (n *Node) Send(dst, tag int, data []float64) {
	n.Wait(n.Isend(dst, tag, data))
}

// Isend starts a nonblocking standard-mode send and returns a request
// to pass to Wait. The sender consumes its per-message CPU overhead
// immediately; rendezvous transfers are booked when the receiver posts
// the matching receive.
func (n *Node) Isend(dst, tag int, data []float64) *Request {
	if dst == n.Rank {
		// Self-send: buffer locally with no network cost.
		cp := append([]float64(nil), data...)
		key := msgKey{n.Rank, tag}
		m := &message{key: key, data: cp, arrive: n.clock, ready: n.clock, xferDone: true, size: 8 * len(data)}
		n.inbox[key] = append(n.inbox[key], m)
		n.yield()
		return &Request{m: m}
	}
	link := n.net.model.link(n.Rank, dst)
	size := n.timedSize(len(data))
	cp := append([]float64(nil), data...)

	// Sender CPU overhead: fixed protocol cost plus per-byte stack
	// copies (TCP); DMA-driven networks set CPUCopyMBs to 0.
	o := link.OverheadUS * us
	if link.CPUCopyMBs > 0 {
		o += float64(size) / (link.CPUCopyMBs * mb)
	}
	n.clock += o
	n.cpu += o

	rendezv := link.EagerLimit > 0 && size > link.EagerLimit
	m := &message{
		key:     msgKey{n.Rank, tag},
		data:    cp,
		rendezv: rendezv,
		sender:  n,
		size:    size,
		posted:  n.clock,
	}
	dstNode := n.net.nodes[dst]
	if !rendezv {
		m.arrive = n.reserveTransfer(dst, size, n.clock, link)
		m.ready = n.clock // eager: buffered, sender is free immediately
		m.xferDone = true
		n.deliver(dstNode, m)
		n.yield()
		return &Request{m: m}
	}
	// Rendezvous: if the receiver is already waiting, transfer now;
	// otherwise park until it posts the matching receive.
	if dstNode.blockKind == blockRecv && dstNode.waitKey != nil &&
		matches(*dstNode.waitKey, m.key) {
		start := maxf(n.clock, dstNode.clock) + link.LatencyUS*us // handshake
		m.arrive = n.reserveTransfer(dst, size, start, link)
		m.ready = m.arrive - link.LatencyUS*us // payload has left the NIC
		m.xferDone = true
		n.deliver(dstNode, m)
		n.yield()
		return &Request{m: m}
	}
	m.arrive = -1
	n.deliver(dstNode, m)
	n.yield()
	return &Request{m: m}
}

// Wait blocks until the send completes (for rendezvous, until the
// receiver has posted and the payload has left the sender's NIC).
func (n *Node) Wait(r *Request) {
	if r.m == nil {
		return
	}
	for !r.m.xferDone {
		n.blockKind = blockSendRendezvous
		n.waitSend = r.m
		n.yield()
		n.waitSend = nil
	}
	n.clock = maxf(n.clock, r.m.ready)
	r.m = nil
}

// matches reports whether a posted receive key (which may use
// wildcards via -1) matches a message key.
func matches(want, have msgKey) bool {
	if want.src != -1 && want.src != have.src {
		return false
	}
	if want.tag != -1 && want.tag != have.tag {
		return false
	}
	return true
}

// reserveTransfer books the NIC and backplane resources for a transfer
// starting no earlier than start, returning the arrival time at the
// destination.
func (n *Node) reserveTransfer(dst, size int, start float64, link *LinkModel) float64 {
	c := n.net
	srcNode := c.model.nodeOf(n.Rank)
	dstNode := c.model.nodeOf(dst)
	xfer := link.xfer(size)
	lat := link.LatencyUS * us

	intra := c.model.RanksPerNode > 1 && srcNode == dstNode
	if intra {
		// Shared-memory copy: no NIC or backplane involvement.
		return start + lat + xfer
	}
	egBegin := maxf(start, c.egressFree[srcNode])
	if link.HalfDuplex {
		egBegin = maxf(egBegin, c.ingressFree[srcNode])
	}
	egEnd := egBegin + xfer
	c.egressFree[srcNode] = egEnd
	if link.HalfDuplex {
		c.ingressFree[srcNode] = egEnd
	}
	pathEnd := egEnd
	if c.model.BackplaneMBs > 0 {
		bpBegin := maxf(egBegin, c.bpFree)
		bpEnd := bpBegin + float64(size)/(c.model.BackplaneMBs*mb)
		c.bpFree = bpEnd
		pathEnd = maxf(pathEnd, bpEnd)
	}
	arrive := pathEnd + lat
	// Cut-through ingress serialization: the receive wire is busy for
	// the transfer duration ending at arrival.
	inBegin := maxf(arrive-xfer, c.ingressFree[dstNode])
	arrive = inBegin + xfer
	c.ingressFree[dstNode] = arrive
	if link.HalfDuplex {
		c.egressFree[dstNode] = maxf(c.egressFree[dstNode], arrive)
	}
	return arrive
}

// deliver places a message in the destination inbox and unblocks the
// destination if it is waiting for it.
func (n *Node) deliver(dst *Node, m *message) {
	dst.inbox[m.key] = append(dst.inbox[m.key], m)
	if dst.blockKind == blockRecv && dst.waitKey != nil && matches(*dst.waitKey, m.key) {
		dst.blockKind = blockNone
		dst.waitKey = nil
		n.net.woken = append(n.net.woken, dst.Rank)
	}
}

// AnySource and AnyTag are wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. The rank's clock advances to the later of its
// own time and the message's arrival time.
func (n *Node) Recv(src, tag int) []float64 {
	key := msgKey{src, tag}
	for {
		if m := n.takeMatch(key); m != nil {
			if m.rendezv && !m.xferDone {
				// Transfer has not started: run the rendezvous now.
				link := n.net.model.link(m.sender.Rank, n.Rank)
				start := maxf(m.posted, n.clock) + link.LatencyUS*us
				m.arrive = m.sender.reserveTransfer(n.Rank, m.size, start, link)
				m.ready = m.arrive - link.LatencyUS*us
				m.xferDone = true
				// Unblock the sender if it is parked in Wait on this
				// message.
				if m.sender.blockKind == blockSendRendezvous && m.sender.waitSend == m {
					m.sender.blockKind = blockNone
					n.net.woken = append(n.net.woken, m.sender.Rank)
				}
			}
			n.clock = maxf(n.clock, m.arrive)
			if m.sender != nil {
				link := n.net.model.link(m.sender.Rank, n.Rank)
				if link.CPUCopyMBs > 0 {
					o := float64(m.size) / (link.CPUCopyMBs * mb)
					n.clock += o
					n.cpu += o
				}
			}
			n.yield()
			return m.data
		}
		n.blockKind = blockRecv
		n.waitKey = &key
		n.yield()
		n.waitKey = nil
	}
}

// takeMatch removes and returns the earliest matching message, or nil.
func (n *Node) takeMatch(want msgKey) *message {
	if want.src != AnySource && want.tag != AnyTag {
		q := n.inbox[want]
		if len(q) == 0 {
			return nil
		}
		m := q[0]
		n.inbox[want] = q[1:]
		return m
	}
	// Wildcard: scan all queues, earliest posted first for fairness.
	var best *message
	var bestKey msgKey
	for k, q := range n.inbox {
		if len(q) == 0 || !matches(want, k) {
			continue
		}
		if best == nil || q[0].posted < best.posted {
			best = q[0]
			bestKey = k
		}
	}
	if best == nil {
		return nil
	}
	n.inbox[bestKey] = n.inbox[bestKey][1:]
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
