package jacobi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPLowOrders(t *testing.T) {
	// Legendre (alpha = beta = 0): P0 = 1, P1 = x, P2 = (3x^2-1)/2.
	xs := []float64{-1, -0.3, 0, 0.7, 1}
	for _, x := range xs {
		if got := P(0, 0, 0, x); got != 1 {
			t.Fatalf("P0(%v) = %v", x, got)
		}
		if got := P(1, 0, 0, x); math.Abs(got-x) > 1e-15 {
			t.Fatalf("P1(%v) = %v", x, got)
		}
		want := 0.5 * (3*x*x - 1)
		if got := P(2, 0, 0, x); math.Abs(got-want) > 1e-14 {
			t.Fatalf("P2(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPNormalizationAtOne(t *testing.T) {
	// P_n^{a,b}(1) = binom(n+a, n).
	for n := 0; n <= 8; n++ {
		for _, ab := range [][2]float64{{0, 0}, {1, 1}, {2, 0}, {1.5, 0.5}} {
			a, b := ab[0], ab[1]
			want := math.Exp(lgamma(float64(n)+a+1) - lgamma(float64(n)+1) - lgamma(a+1))
			got := P(n, a, b, 1)
			if math.Abs(got-want) > 1e-12*math.Abs(want) {
				t.Fatalf("P_%d^{%v,%v}(1) = %v, want %v", n, a, b, got, want)
			}
		}
	}
}

func TestDerivMatchesFiniteDifference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		a := rng.Float64() * 2
		b := rng.Float64() * 2
		x := rng.Float64()*1.6 - 0.8
		h := 1e-6
		fd := (P(n, a, b, x+h) - P(n, a, b, x-h)) / (2 * h)
		return math.Abs(Deriv(n, a, b, x)-fd) < 1e-5*(1+math.Abs(fd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZerosAreRootsAndSorted(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 20} {
		for _, ab := range [][2]float64{{0, 0}, {1, 1}, {2, 1}} {
			z := Zeros(n, ab[0], ab[1])
			for i, r := range z {
				if v := P(n, ab[0], ab[1], r); math.Abs(v) > 1e-10 {
					t.Fatalf("n=%d ab=%v: P(z[%d]=%v) = %v", n, ab, i, r, v)
				}
				if r <= -1 || r >= 1 {
					t.Fatalf("root outside (-1,1): %v", r)
				}
				if i > 0 && z[i] <= z[i-1] {
					t.Fatalf("roots not ascending: %v", z)
				}
			}
		}
	}
}

func TestGaussLegendreAgainstKnownValues(t *testing.T) {
	// 2-point Gauss-Legendre: x = ±1/sqrt(3), w = 1.
	r := NewRule(Gauss, 2, 0, 0)
	if math.Abs(r.Points[0]+1/math.Sqrt(3)) > 1e-14 || math.Abs(r.Points[1]-1/math.Sqrt(3)) > 1e-14 {
		t.Fatalf("points = %v", r.Points)
	}
	if math.Abs(r.Weight[0]-1) > 1e-14 || math.Abs(r.Weight[1]-1) > 1e-14 {
		t.Fatalf("weights = %v", r.Weight)
	}
}

func TestLobattoAgainstKnownValues(t *testing.T) {
	// 4-point Gauss-Lobatto-Legendre: x = ±1, ±1/sqrt(5); w = 1/6, 5/6.
	r := NewRule(Lobatto, 4, 0, 0)
	wantPts := []float64{-1, -1 / math.Sqrt(5), 1 / math.Sqrt(5), 1}
	wantW := []float64{1.0 / 6, 5.0 / 6, 5.0 / 6, 1.0 / 6}
	for i := range wantPts {
		if math.Abs(r.Points[i]-wantPts[i]) > 1e-13 {
			t.Fatalf("points = %v", r.Points)
		}
		if math.Abs(r.Weight[i]-wantW[i]) > 1e-13 {
			t.Fatalf("weights = %v", r.Weight)
		}
	}
}

// polyIntegral computes the exact integral of x^k (1-x)^a (1+x)^b on
// [-1,1] by high-order reference Gauss quadrature.
func polyIntegral(k int, a, b float64) float64 {
	ref := NewRule(Gauss, 64, a, b)
	var s float64
	for i, x := range ref.Points {
		s += ref.Weight[i] * math.Pow(x, float64(k))
	}
	return s
}

func TestExactnessDegrees(t *testing.T) {
	cases := []struct {
		kind  RuleKind
		q     int
		exact int // highest exactly integrated degree
	}{
		{Gauss, 4, 7}, {Gauss, 7, 13},
		{RadauM, 4, 6}, {RadauM, 6, 10},
		{Lobatto, 4, 5}, {Lobatto, 8, 13},
	}
	for _, ab := range [][2]float64{{0, 0}, {1, 0}, {1, 1}} {
		a, b := ab[0], ab[1]
		for _, tc := range cases {
			r := NewRule(tc.kind, tc.q, a, b)
			for k := 0; k <= tc.exact; k++ {
				want := polyIntegral(k, a, b)
				f := make([]float64, tc.q)
				for i, x := range r.Points {
					f[i] = math.Pow(x, float64(k))
				}
				got := r.Integrate(f)
				if math.Abs(got-want) > 1e-11*(1+math.Abs(want)) {
					t.Fatalf("%v q=%d ab=(%v,%v): degree %d integral = %v, want %v",
						tc.kind, tc.q, a, b, k, got, want)
				}
			}
		}
	}
}

func TestRadauIncludesMinusOne(t *testing.T) {
	r := NewRule(RadauM, 5, 0, 1)
	if r.Points[0] != -1 {
		t.Fatalf("Radau rule must include -1, got %v", r.Points)
	}
}

func TestLobattoIncludesEndpoints(t *testing.T) {
	r := NewRule(Lobatto, 6, 0, 0)
	if r.Points[0] != -1 || r.Points[5] != 1 {
		t.Fatalf("Lobatto rule must include ±1, got %v", r.Points)
	}
}

func TestWeightsPositive(t *testing.T) {
	for _, kind := range []RuleKind{Gauss, RadauM, Lobatto} {
		q := 8
		r := NewRule(kind, q, 0, 0)
		for i, w := range r.Weight {
			if w <= 0 {
				t.Fatalf("%v: weight %d = %v <= 0", kind, i, w)
			}
		}
	}
}

func TestNewRulePanicsOnTinyQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lobatto with q=1 should panic")
		}
	}()
	NewRule(Lobatto, 1, 0, 0)
}

func TestDerivMatrixDifferentiatesPolynomials(t *testing.T) {
	r := NewRule(Lobatto, 9, 0, 0)
	d := r.DerivMatrix()
	q := len(r.Points)
	// u = x^5, u' = 5x^4 is in the interpolation space.
	u := make([]float64, q)
	for i, x := range r.Points {
		u[i] = math.Pow(x, 5)
	}
	for i := 0; i < q; i++ {
		var du float64
		for j := 0; j < q; j++ {
			du += d[i*q+j] * u[j]
		}
		want := 5 * math.Pow(r.Points[i], 4)
		if math.Abs(du-want) > 1e-10 {
			t.Fatalf("D u at %v = %v, want %v", r.Points[i], du, want)
		}
	}
}

func TestDerivMatrixRowSumZero(t *testing.T) {
	// Differentiating a constant gives zero: row sums vanish.
	d := DerivMatrix([]float64{-1, -0.2, 0.5, 1})
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += d[i*4+j]
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d sum = %v", i, s)
		}
	}
}

func TestInterpMatrixReproducesPolynomials(t *testing.T) {
	from := NewRule(Lobatto, 7, 0, 0).Points
	to := NewRule(Gauss, 11, 0, 0).Points
	m := InterpMatrix(from, to)
	u := make([]float64, len(from))
	for i, x := range from {
		u[i] = 3*x*x*x - x + 0.5
	}
	for i, x := range to {
		var v float64
		for j := range from {
			v += m[i*len(from)+j] * u[j]
		}
		want := 3*x*x*x - x + 0.5
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("interp at %v = %v, want %v", x, v, want)
		}
	}
}

func TestInterpMatrixExactHit(t *testing.T) {
	from := []float64{-1, 0, 1}
	m := InterpMatrix(from, []float64{0})
	if m[0] != 0 || m[1] != 1 || m[2] != 0 {
		t.Fatalf("cardinal property violated: %v", m)
	}
}

func TestRuleKindString(t *testing.T) {
	if Gauss.String() != "gauss" || RadauM.String() != "gauss-radau" || Lobatto.String() != "gauss-lobatto" {
		t.Fatal("RuleKind strings wrong")
	}
	if RuleKind(9).String() != "unknown" {
		t.Fatal("unknown kind should stringify as unknown")
	}
}
