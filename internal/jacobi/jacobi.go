// Package jacobi provides Jacobi polynomials, Gauss-type quadrature
// rules and collocation differentiation matrices — the polynomial
// machinery underneath the spectral/hp element method of Karniadakis &
// Sherwin (1999) used by the paper's Nektar solvers.
//
// All polynomials follow the standard normalization of Abramowitz &
// Stegun: P_n^{alpha,beta}(1) = binom(n+alpha, n).
package jacobi

import (
	"fmt"
	"math"
)

// P evaluates the Jacobi polynomial P_n^{alpha,beta}(x) by the
// three-term recurrence.
func P(n int, alpha, beta, x float64) float64 {
	if n == 0 {
		return 1
	}
	p0 := 1.0
	p1 := 0.5 * (alpha - beta + (alpha+beta+2)*x)
	if n == 1 {
		return p1
	}
	for k := 1; k < n; k++ {
		fk := float64(k)
		a1 := 2 * (fk + 1) * (fk + alpha + beta + 1) * (2*fk + alpha + beta)
		a2 := (2*fk + alpha + beta + 1) * (alpha*alpha - beta*beta)
		a3 := (2*fk + alpha + beta) * (2*fk + alpha + beta + 1) * (2*fk + alpha + beta + 2)
		a4 := 2 * (fk + alpha) * (fk + beta) * (2*fk + alpha + beta + 2)
		p0, p1 = p1, ((a2+a3*x)*p1-a4*p0)/a1
	}
	return p1
}

// Deriv evaluates d/dx P_n^{alpha,beta}(x) using the identity
// d/dx P_n^{a,b} = (n+a+b+1)/2 * P_{n-1}^{a+1,b+1}.
func Deriv(n int, alpha, beta, x float64) float64 {
	if n == 0 {
		return 0
	}
	return 0.5 * (float64(n) + alpha + beta + 1) * P(n-1, alpha+1, beta+1, x)
}

// Zeros returns the n roots of P_n^{alpha,beta}, in ascending order,
// computed by Newton iteration with polynomial deflation.
func Zeros(n int, alpha, beta float64) []float64 {
	z := make([]float64, n)
	for k := 0; k < n; k++ {
		// Chebyshev-like initial guess, then average with the previous
		// root for stability (Karniadakis & Sherwin, Appendix B).
		r := -math.Cos((2*float64(k) + 1) / (2 * float64(n)) * math.Pi)
		if k > 0 {
			r = 0.5 * (r + z[k-1])
		}
		for iter := 0; iter < 100; iter++ {
			// Deflate previously found roots.
			var s float64
			for j := 0; j < k; j++ {
				s += 1 / (r - z[j])
			}
			p := P(n, alpha, beta, r)
			dp := Deriv(n, alpha, beta, r)
			delta := -p / (dp - p*s)
			r += delta
			if math.Abs(delta) < 1e-15 {
				break
			}
		}
		z[k] = r
	}
	return z
}

// RuleKind selects the family of a Gauss-type quadrature rule.
type RuleKind int

const (
	// Gauss uses interior points only (zeros of P_Q^{a,b}); exact for
	// degree 2Q-1.
	Gauss RuleKind = iota
	// RadauM includes the endpoint -1 (Gauss-Radau-Jacobi); exact for
	// degree 2Q-2. Used in the collapsed direction of triangles.
	RadauM
	// Lobatto includes both endpoints (Gauss-Lobatto-Jacobi); exact
	// for degree 2Q-3. The workhorse rule of the spectral/hp basis.
	Lobatto
)

func (k RuleKind) String() string {
	switch k {
	case Gauss:
		return "gauss"
	case RadauM:
		return "gauss-radau"
	case Lobatto:
		return "gauss-lobatto"
	}
	return "unknown"
}

// Rule holds the points and weights of a Gauss-type quadrature rule
// for the weight function (1-x)^alpha (1+x)^beta on [-1, 1].
type Rule struct {
	Kind           RuleKind
	Alpha, Beta    float64
	Points, Weight []float64
}

// NewRule constructs a Q-point quadrature rule of the given kind. It
// panics if q is too small for the kind (q >= 1 for Gauss and Radau,
// q >= 2 for Lobatto), since rule sizes are static program constants
// in the solvers.
func NewRule(kind RuleKind, q int, alpha, beta float64) *Rule {
	var pts []float64
	switch kind {
	case Gauss:
		if q < 1 {
			panic(fmt.Sprintf("jacobi: Gauss rule needs q >= 1, got %d", q))
		}
		pts = Zeros(q, alpha, beta)
	case RadauM:
		if q < 1 {
			panic(fmt.Sprintf("jacobi: Radau rule needs q >= 1, got %d", q))
		}
		pts = make([]float64, q)
		pts[0] = -1
		copy(pts[1:], Zeros(q-1, alpha, beta+1))
	case Lobatto:
		if q < 2 {
			panic(fmt.Sprintf("jacobi: Lobatto rule needs q >= 2, got %d", q))
		}
		pts = make([]float64, q)
		pts[0] = -1
		pts[q-1] = 1
		copy(pts[1:q-1], Zeros(q-2, alpha+1, beta+1))
	default:
		panic("jacobi: unknown rule kind")
	}
	w := weightsFromMoments(pts, alpha, beta)
	return &Rule{Kind: kind, Alpha: alpha, Beta: beta, Points: pts, Weight: w}
}

// weightsFromMoments computes quadrature weights for arbitrary
// distinct points so that polynomials up to degree len(pts)-1 are
// integrated exactly against (1-x)^a (1+x)^b. The linear system is
// expressed in the Jacobi orthogonal basis so it stays well
// conditioned:
//
//	sum_i w_i P_j^{a,b}(x_i) = m0 * delta_{j0},  j = 0..Q-1
//
// with m0 = 2^{a+b+1} * B(a+1, b+1). For Gauss/Radau/Lobatto point
// sets this yields the classical rules with their full exactness.
func weightsFromMoments(pts []float64, alpha, beta float64) []float64 {
	q := len(pts)
	m0 := math.Exp((alpha+beta+1)*math.Ln2 + lgamma(alpha+1) + lgamma(beta+1) - lgamma(alpha+beta+2))
	a := make([]float64, q*q)
	for j := 0; j < q; j++ {
		for i := 0; i < q; i++ {
			a[j*q+i] = P(j, alpha, beta, pts[i])
		}
	}
	b := make([]float64, q)
	b[0] = m0
	if err := solveDense(q, a, b); err != nil {
		panic(fmt.Sprintf("jacobi: weight system singular: %v", err))
	}
	return b
}

// lgamma returns log Gamma(x) for x > 0.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// solveDense is a tiny local Gaussian elimination with partial
// pivoting; jacobi sits below lapack in the dependency order so it
// carries its own Q-by-Q solver (Q <= ~50 in practice).
func solveDense(n int, a, b []float64) error {
	for k := 0; k < n; k++ {
		p, pmax := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 {
			return fmt.Errorf("singular at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] / a[k*n+k]
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
			b[i] -= f * b[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * b[j]
		}
		b[i] = s / a[i*n+i]
	}
	return nil
}

// Integrate applies the rule to samples f(x_i) given at the rule's
// points.
func (r *Rule) Integrate(f []float64) float64 {
	var s float64
	for i, w := range r.Weight {
		s += w * f[i]
	}
	return s
}

// DerivMatrix returns the collocation differentiation matrix D for
// Lagrange interpolation through the rule's points: (D u)_i ~ u'(x_i).
// Row-major q-by-q.
func (r *Rule) DerivMatrix() []float64 {
	return DerivMatrix(r.Points)
}

// DerivMatrix builds the differentiation matrix for arbitrary distinct
// points using barycentric weights.
func DerivMatrix(pts []float64) []float64 {
	q := len(pts)
	w := baryWeights(pts)
	d := make([]float64, q*q)
	for i := 0; i < q; i++ {
		var rowSum float64
		for j := 0; j < q; j++ {
			if i == j {
				continue
			}
			v := (w[j] / w[i]) / (pts[i] - pts[j])
			d[i*q+j] = v
			rowSum += v
		}
		d[i*q+i] = -rowSum
	}
	return d
}

// InterpMatrix returns the matrix mapping values at points `from` to
// interpolated values at points `to` (row-major len(to)-by-len(from)),
// via the barycentric Lagrange formula.
func InterpMatrix(from, to []float64) []float64 {
	nf, nt := len(from), len(to)
	w := baryWeights(from)
	m := make([]float64, nt*nf)
	for i := 0; i < nt; i++ {
		x := to[i]
		// Exact hit: Lagrange cardinal property.
		exact := -1
		for j, xf := range from {
			if x == xf {
				exact = j
				break
			}
		}
		if exact >= 0 {
			m[i*nf+exact] = 1
			continue
		}
		var denom float64
		for j := 0; j < nf; j++ {
			denom += w[j] / (x - from[j])
		}
		for j := 0; j < nf; j++ {
			m[i*nf+j] = (w[j] / (x - from[j])) / denom
		}
	}
	return m
}

func baryWeights(pts []float64) []float64 {
	q := len(pts)
	w := make([]float64, q)
	for j := 0; j < q; j++ {
		p := 1.0
		for k := 0; k < q; k++ {
			if k != j {
				p *= pts[j] - pts[k]
			}
		}
		w[j] = 1 / p
	}
	return w
}
