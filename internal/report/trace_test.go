package report

import (
	"bytes"
	"strings"
	"testing"

	"nektar/internal/engine"
)

func TestTraceBreakdown(t *testing.T) {
	evs := []engine.Event{
		{Ev: engine.EvStage, Rank: 0, Step: 1, Stage: "solve", PricedS: 1, WallS: 2},
		{Ev: engine.EvStage, Rank: 0, Step: 2, Stage: "solve", PricedS: 1, WallS: 2},
		{Ev: engine.EvStage, Rank: 0, Step: 2, Stage: "rhs", PricedS: 0.5, WallS: 0.5},
		{Ev: engine.EvStep, Rank: 0, Step: 1, PricedS: 1, WallS: 2},
		{Ev: engine.EvStep, Rank: 0, Step: 2, PricedS: 1.5, WallS: 2.5},
		{Ev: engine.EvCheckpoint, Rank: 0, Step: 2, Bytes: 100},
		{Ev: engine.EvCkptDone, Rank: 0, Step: 2, Stored: 80, HiddenS: 0.25, ExposedS: 0.125},
		{Ev: engine.EvCkptDone, Rank: 0, Step: 4, Stored: 80, HiddenS: 0.25, Final: true},
		{Ev: engine.EvRollback, Rank: 0, Step: 2},
		{Ev: engine.EvDone, Rank: 0, Step: 4},
	}
	var buf bytes.Buffer
	TraceBreakdown(evs, "trace test").Write(&buf)
	out := buf.String()
	for _, want := range []string{
		"solve", "rhs", "[steps]", "100 bytes", "[rollbacks]", "[completed ranks]",
		"[durable writes]", "160 bytes stored", "0.125 exposed + 0.5 hidden",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
	// Stage rows aggregate across steps: solve saw 2 events, 2 priced
	// seconds, 4 wall seconds.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "solve") {
			for _, cell := range []string{"2 ", "4"} {
				if !strings.Contains(line, cell) {
					t.Fatalf("solve row missing %q: %s", cell, line)
				}
			}
		}
	}
	// Trips and halts are omitted when the run saw none.
	if strings.Contains(out, "[watchdog trips]") || strings.Contains(out, "[halts]") {
		t.Fatalf("unexpected trip/halt rows in a clean trace:\n%s", out)
	}
}
