// Package report formats the reproduction's tables and figure series
// the way the paper presents them: fixed-width ASCII tables for the
// CPU/wall-clock tables and (size, value) series for the figures,
// suitable for piping into a plotting tool.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width table with row labels.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers
// (the first column is the row label).
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of cells (must match the column count).
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row with a label and formatted float values;
// negative values print as "n/a" (the paper's marker for runs that
// were not feasible).
func (t *Table) AddRowf(label string, format string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		if v < 0 {
			row = append(row, "n/a")
		} else {
			row = append(row, fmt.Sprintf(format, v))
		}
	}
	t.AddRow(row...)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series and returns it for population.
func (f *Figure) Add(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// Point appends one point to a series.
func (s *Series) Point(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Write renders the figure as aligned columns: one block per series.
func (f *Figure) Write(w io.Writer) {
	fmt.Fprintf(w, "%s\n# x: %s, y: %s\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "## %s\n", s.Label)
		for i := range s.X {
			fmt.Fprintf(w, "%14.6g %14.6g\n", s.X[i], s.Y[i])
		}
	}
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Write(&b)
	return b.String()
}

// PieBreakdown renders a stage-percentage breakdown (the paper's
// Figures 12-16 pie charts) as a labeled list.
func PieBreakdown(title string, names []string, percents []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, n := range names {
		fmt.Fprintf(&b, "  %-34s %5.1f%%\n", n, percents[i])
	}
	return b.String()
}
