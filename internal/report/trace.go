package report

import (
	"fmt"

	"nektar/internal/engine"
)

// TraceBreakdown aggregates a recorded engine event stream into a
// per-stage table: events, priced seconds, and virtual-wall seconds
// per stage (first-seen order), followed by marker rows summarizing
// the steps, checkpoints, durable writes, rollbacks, trips, and halts
// the run saw.
// This rebuilds the paper's per-stage breakdowns offline from a trace
// instead of from live instrumentation.
func TraceBreakdown(evs []engine.Event, title string) *Table {
	type agg struct {
		n            int
		priced, wall float64
	}
	var order []string
	stages := map[string]*agg{}
	var steps, ckpts, ckptBytes, rollbacks, trips, halts, dones int
	var stepPriced, stepWall float64
	var writes, storedBytes int
	var writeHidden, writeExposed float64
	var spectra int
	var lastEnergy, lastDissipation float64
	var haveDiss bool
	for _, e := range evs {
		switch e.Ev {
		case engine.EvStage:
			a := stages[e.Stage]
			if a == nil {
				a = &agg{}
				stages[e.Stage] = a
				order = append(order, e.Stage)
			}
			a.n++
			a.priced += e.PricedS
			a.wall += e.WallS
		case engine.EvStep:
			steps++
			stepPriced += e.PricedS
			stepWall += e.WallS
		case engine.EvCheckpoint:
			ckpts++
			ckptBytes += e.Bytes
		case engine.EvCkptDone:
			writes++
			storedBytes += e.Stored
			writeHidden += e.HiddenS
			writeExposed += e.ExposedS
		case engine.EvRollback:
			rollbacks++
		case engine.EvTrip:
			trips++
		case engine.EvHalt:
			halts++
		case engine.EvDone:
			dones++
		case engine.EvSpectrum:
			spectra++
			lastEnergy = e.Energy
		case engine.EvDissipation:
			haveDiss = true
			lastEnergy = e.Energy
			lastDissipation = e.Dissipation
		}
	}
	t := NewTable(title, "stage", "events", "priced (s)", "wall (s)")
	for _, name := range order {
		a := stages[name]
		t.AddRow(name, fmt.Sprintf("%d", a.n),
			fmt.Sprintf("%.4g", a.priced), fmt.Sprintf("%.4g", a.wall))
	}
	t.AddRow("[steps]", fmt.Sprintf("%d", steps),
		fmt.Sprintf("%.4g", stepPriced), fmt.Sprintf("%.4g", stepWall))
	t.AddRow("[checkpoints]", fmt.Sprintf("%d", ckpts),
		fmt.Sprintf("%d bytes", ckptBytes), "")
	if writes > 0 {
		t.AddRow("[durable writes]", fmt.Sprintf("%d", writes),
			fmt.Sprintf("%d bytes stored", storedBytes),
			fmt.Sprintf("%.4g exposed + %.4g hidden", writeExposed, writeHidden))
	}
	if spectra > 0 || haveDiss {
		t.AddRow("[spectra]", fmt.Sprintf("%d", spectra),
			fmt.Sprintf("E=%.4g", lastEnergy),
			fmt.Sprintf("eps=%.4g", lastDissipation))
	}
	t.AddRow("[rollbacks]", fmt.Sprintf("%d", rollbacks), "", "")
	if trips > 0 {
		t.AddRow("[watchdog trips]", fmt.Sprintf("%d", trips), "", "")
	}
	if halts > 0 {
		t.AddRow("[halts]", fmt.Sprintf("%d", halts), "", "")
	}
	t.AddRow("[completed ranks]", fmt.Sprintf("%d", dones), "", "")
	return t
}
