package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table 1", "Machine", "CPU s/step")
	tab.AddRowf("T3E", "%.2f", 0.82)
	tab.AddRowf("Unavailable", "%.2f", -1)
	out := tab.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "0.82") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Fatalf("negative value should render as n/a:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRow("longlabel", "1")
	tab.AddRow("x", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All rows must have equal rendered width.
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > w+2 {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Figure 1: dcopy", "bytes", "MB/s")
	s := f.Add("Muses")
	s.Point(100, 250)
	s.Point(1000, 900)
	out := f.String()
	for _, want := range []string{"Figure 1", "## Muses", "250", "bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPieBreakdown(t *testing.T) {
	out := PieBreakdown("Stages", []string{"solve", "rhs"}, []float64{60, 40})
	if !strings.Contains(out, "60.0%") || !strings.Contains(out, "rhs") {
		t.Fatalf("bad breakdown:\n%s", out)
	}
}
