// Package machine holds analytic performance models of the ten
// machines the paper compares, calibrated to the shapes of its
// Figures 1-8 and Tables 1-3:
//
//	Muses / RoadRunner PC nodes (Pentium II 450 MHz), IBM SP2 Thin2
//	(Power2 66 MHz), IBM SP2 Silver (PowerPC 604e 332 MHz), IBM P2SC
//	(160 MHz), SGI Onyx2 (R10000 195 MHz), SGI Origin 2000 at NCSA
//	(R10000 250 MHz), Fujitsu AP3000 (UltraSPARC 300 MHz), Cray
//	T3E-900 (Alpha 21164 450 MHz) and the Hitachi SR8000.
//
// Each model has a CPU side (peak MFlop/s, a cache hierarchy with
// per-level streaming bandwidths, per-kernel in-cache efficiencies and
// a per-call overhead) and a network side (a simnet.Model with LogGP
// parameters). The CPU model prices recorded BLAS operation counts
// (package blas) in seconds, which is how the benchmark harness
// regenerates the paper's per-machine application timings; the network
// model drives the simulated cluster of package simnet.
//
// Absolute numbers are approximations reconstructed from the paper's
// plots and period hardware documentation; the reproduction targets
// the paper's qualitative conclusions (who wins, where the cache
// cliffs fall, where Ethernet saturates), not digit-exact values.
package machine

import (
	"fmt"
	"math"

	"nektar/internal/blas"
	"nektar/internal/simnet"
)

// CacheLevel is one level of the memory hierarchy.
type CacheLevel struct {
	Name string
	// Size in bytes; 0 marks main memory (unbounded).
	Size int64
	// BandwidthMBs is the sustainable streaming bandwidth when the
	// working set resides in this level.
	BandwidthMBs float64
}

// CPU is the single-node performance model.
type CPU struct {
	Name       string
	ClockMHz   float64
	PeakMFlops float64
	Levels     []CacheLevel // L1, [L2], memory (Size 0 last)

	// Eff is the in-cache fraction of peak each kernel class reaches
	// when bandwidth does not bind (indexed by blas.Kernel).
	Eff [5]float64

	// GemmHalfN is the matrix dimension at which dgemm reaches half
	// its asymptotic efficiency (the small-matrix ramp of Figure 6).
	GemmHalfN float64

	// CallOverheadUS is the fixed per-BLAS-call cost (routine
	// initialization; the paper deliberately includes it).
	CallOverheadUS float64

	// AppFactor scales application-level (whole solver) predictions to
	// account for the non-BLAS scalar code each compiler/CPU pair
	// produces; calibrated against Table 1. Kernel-level predictions
	// do not use it.
	AppFactor float64

	// TriSolveBW is the fraction of streaming bandwidth the machine
	// sustains in the dependent recurrences of triangular banded
	// solves (the dominant kernel of the application-level solves).
	// Stream-prefetch machines (T3E STREAMS, Power2's quad-word bus)
	// lose most of their streaming advantage there, which is how the
	// paper's Table 1 ranking coexists with its Figure 1 bandwidth
	// curves. Zero means 1 (no loss).
	TriSolveBW float64
}

// triSolveBW returns the effective solver-bandwidth fraction.
func (c *CPU) triSolveBW() float64 {
	if c.TriSolveBW <= 0 || c.TriSolveBW > 1 {
		return 1
	}
	return c.TriSolveBW
}

// bandwidthFor returns the streaming bandwidth for a working set of s
// bytes.
func (c *CPU) bandwidthFor(s int64) float64 {
	for _, lv := range c.Levels {
		if lv.Size == 0 || s <= lv.Size {
			return lv.BandwidthMBs
		}
	}
	return c.Levels[len(c.Levels)-1].BandwidthMBs
}

// bytesPerFlop is the ideal memory traffic per floating point
// operation of each kernel class (streaming vectors; matrices held at
// their resident level).
func bytesPerFlop(k blas.Kernel) float64 {
	switch k {
	case blas.KernelDaxpy:
		return 12 // 24 bytes moved per 2 flops
	case blas.KernelDdot:
		return 8 // 16 bytes per 2 flops
	case blas.KernelDgemv:
		return 4 // 8 bytes of matrix per 2 flops
	case blas.KernelDgemm:
		return 0.5 // cache blocking amortizes traffic
	}
	return math.Inf(1) // dcopy: pure traffic, no flops
}

// DcopyMBs predicts the dcopy speed in MB/s for an array of s bytes —
// the paper's Figure 1. The per-call overhead produces the rising
// left edge of the measured curves.
func (c *CPU) DcopyMBs(s int64) float64 {
	bw := c.bandwidthFor(2 * s) // source + destination resident
	t := c.CallOverheadUS*1e-6 + float64(s)/(bw*1e6)
	return float64(s) / t / 1e6
}

// Level1MFlops predicts daxpy/ddot performance in MFlop/s for vectors
// of s bytes each — Figures 2 and 3.
func (c *CPU) Level1MFlops(k blas.Kernel, s int64) float64 {
	nElems := float64(s) / 8
	flops := 2 * nElems
	ws := 2 * s // two operand vectors
	peak := c.Eff[k] * c.PeakMFlops
	memRate := c.bandwidthFor(ws) / bytesPerFlop(k)
	rate := math.Min(peak, memRate)
	t := c.CallOverheadUS*1e-6 + flops/(rate*1e6)
	return flops / t / 1e6
}

// DgemvMFlops predicts matrix-vector performance for an n-by-n matrix
// — Figure 4.
func (c *CPU) DgemvMFlops(n int) float64 {
	flops := 2 * float64(n) * float64(n)
	ws := int64(8 * n * n)
	peak := c.Eff[blas.KernelDgemv] * c.PeakMFlops
	memRate := c.bandwidthFor(ws) / bytesPerFlop(blas.KernelDgemv)
	rate := math.Min(peak, memRate)
	t := c.CallOverheadUS*1e-6 + flops/(rate*1e6)
	return flops / t / 1e6
}

// DgemmMFlops predicts matrix-matrix performance for n-by-n matrices —
// Figures 5 and 6. The ramp n/(n + GemmHalfN) models the small-matrix
// regime that dominates the spectral/hp elemental operations.
func (c *CPU) DgemmMFlops(n int) float64 {
	flops := 2 * float64(n) * float64(n) * float64(n)
	eff := c.Eff[blas.KernelDgemm] * float64(n) / (float64(n) + c.GemmHalfN)
	rate := eff * c.PeakMFlops
	t := c.CallOverheadUS*1e-6 + flops/(rate*1e6)
	return flops / t / 1e6
}

// Seconds prices a recorded operation-count bundle on this CPU:
// per-call overheads plus compute/bandwidth-bound kernel times.
func (c *CPU) Seconds(counts *blas.Counts) float64 {
	var total float64
	for _, k := range blas.Kernels() {
		op := counts.Ops[k]
		if op.Calls == 0 {
			continue
		}
		total += float64(op.Calls) * c.CallOverheadUS * 1e-6
		if op.Flops == 0 {
			// Pure data movement.
			meanWS := op.Bytes / op.Calls
			total += float64(op.Bytes) / (c.bandwidthFor(meanWS) * 1e6)
			continue
		}
		var rate float64
		if k == blas.KernelDgemm {
			// Mean dimension from the recorded size metric (m*n*k).
			meanN := math.Cbrt(float64(op.N) / float64(op.Calls))
			eff := c.Eff[k] * meanN / (meanN + c.GemmHalfN)
			rate = eff * c.PeakMFlops
		} else {
			meanWS := op.Bytes / op.Calls
			peak := c.Eff[k] * c.PeakMFlops
			bw := c.bandwidthFor(meanWS)
			if k == blas.KernelDgemv {
				// Application gemv-class work is dominated by the
				// triangular solve recurrences.
				bw *= c.triSolveBW()
			}
			memRate := bw / bytesPerFlop(k)
			rate = math.Min(peak, memRate)
		}
		total += float64(op.Flops) / (rate * 1e6)
	}
	return total
}

// ApplicationSeconds prices a whole-solver trace, including the
// non-BLAS scalar-code factor calibrated from the paper's Table 1.
func (c *CPU) ApplicationSeconds(counts *blas.Counts) float64 {
	return c.AppFactor * c.Seconds(counts)
}

// Machine bundles a CPU model with a cluster network model.
type Machine struct {
	Name string
	CPU  CPU
	Net  *simnet.Model
	// MaxProcs is the largest processor count the paper ran on this
	// system (0 = single node only).
	MaxProcs int
}

// kernel efficiency order: dcopy, daxpy, ddot, dgemv, dgemm.

// All returns the full fleet of modeled machines in the paper's order,
// plus the M-VIA projection the paper anticipates and the two
// contemporaneous PC-cluster interconnects (PMS, Tanaka) used for the
// large-P capacity sweeps.
func All() []*Machine {
	return []*Machine{
		Muses(), MusesLAM(), MusesMVIA(), RoadRunnerEth(), RoadRunnerMyr(),
		SP2Silver(), SP2Thin2(), P2SC(), Onyx2(), NCSA(), AP3000(),
		T3E(), Hitachi(), PMS(), Tanaka(),
	}
}

// ByName finds a machine model.
func ByName(name string) (*Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown machine %q", name)
}

// pcCPU is the Pentium II 450 MHz node shared by Muses and RoadRunner.
func pcCPU() CPU {
	return CPU{
		Name:       "PentiumII-450",
		ClockMHz:   450,
		PeakMFlops: 450,
		Levels: []CacheLevel{
			{Name: "L1", Size: 16 << 10, BandwidthMBs: 3600},
			{Name: "L2", Size: 512 << 10, BandwidthMBs: 1800},
			{Name: "mem", Size: 0, BandwidthMBs: 350},
		},
		Eff:            [5]float64{1, 0.48, 0.85, 0.62, 0.76},
		GemmHalfN:      12,
		CallOverheadUS: 0.35,
		AppFactor:      1.00,
	}
}

// Muses is the paper's $10k 4-PC cluster running MPICH over
// point-to-point Fast Ethernet (quad cards, no switch).
func Muses() *Machine {
	return &Machine{
		Name: "Muses",
		CPU:  pcCPU(),
		Net: &simnet.Model{
			Name:  "fast-ethernet/MPICH",
			Inter: simnet.LinkModel{LatencyUS: 120, BandwidthMBs: 10.8, OverheadUS: 35, CPUCopyMBs: 45, EagerLimit: 16 << 10},
		},
		MaxProcs: 4,
	}
}

// MusesLAM is the same cluster under LAM 6.1 with the tuned TCP layer.
func MusesLAM() *Machine {
	return &Machine{
		Name: "Muses-LAM",
		CPU:  pcCPU(),
		Net: &simnet.Model{
			Name:  "fast-ethernet/LAM",
			Inter: simnet.LinkModel{LatencyUS: 95, BandwidthMBs: 11.2, OverheadUS: 28, CPUCopyMBs: 50, EagerLimit: 16 << 10},
		},
		MaxProcs: 4,
	}
}

// MusesMVIA is the paper's stated projection: "With the use of the
// emerging M-VIA based MPI implementations latency is expected to go
// to the sub-50 microsecond range (reported values for the underlying
// M-VIA (1999) implementation are 23 microseconds)". Same PC nodes and
// Fast Ethernet wire, OS-bypass protocol stack.
func MusesMVIA() *Machine {
	return &Machine{
		Name: "Muses-MVIA",
		CPU:  pcCPU(),
		Net: &simnet.Model{
			Name:  "fast-ethernet/M-VIA",
			Inter: simnet.LinkModel{LatencyUS: 30, BandwidthMBs: 11.8, OverheadUS: 7, CPUCopyMBs: 120, EagerLimit: 16 << 10},
		},
		MaxProcs: 4,
	}
}

// RoadRunnerEth is the AltaCluster's Fast Ethernet control network: a
// switched, oversubscribed fabric never meant for data traffic.
func RoadRunnerEth() *Machine {
	return &Machine{
		Name: "RoadRunner-eth",
		CPU:  pcCPU(),
		Net: &simnet.Model{
			Name:         "roadrunner-ethernet",
			Inter:        simnet.LinkModel{LatencyUS: 185, BandwidthMBs: 8.6, OverheadUS: 45, CPUCopyMBs: 40, EagerLimit: 16 << 10},
			Intra:        simnet.LinkModel{LatencyUS: 70, BandwidthMBs: 40, OverheadUS: 20, CPUCopyMBs: 80, EagerLimit: 16 << 10},
			RanksPerNode: 2,
			BackplaneMBs: 42,
		},
		MaxProcs: 128,
	}
}

// RoadRunnerMyr is the AltaCluster's Myrinet data network under
// MPICH-GM (32-bit PCI limits the large-message bandwidth).
func RoadRunnerMyr() *Machine {
	return &Machine{
		Name: "RoadRunner-myr",
		CPU:  pcCPU(),
		Net: &simnet.Model{
			Name:         "roadrunner-myrinet",
			Inter:        simnet.LinkModel{LatencyUS: 26, BandwidthMBs: 38, OverheadUS: 3, EagerLimit: 16 << 10},
			Intra:        simnet.LinkModel{LatencyUS: 22, BandwidthMBs: 44, OverheadUS: 3, EagerLimit: 16 << 10},
			RanksPerNode: 2,
			// The 32-bit Myrinet fabric sustains far more than the
			// Ethernet switch but still saturates at high processor
			// counts (paper: "the myrinet network saturates above 64
			// processors").
			BackplaneMBs: 600,
		},
		MaxProcs: 128,
	}
}

// SP2Silver is the IBM RS/6000 SP with 4-way PowerPC 604e nodes and an
// SP switch with MX adapters.
func SP2Silver() *Machine {
	return &Machine{
		Name: "SP2-Silver",
		CPU: CPU{
			Name:       "PowerPC604e-332",
			ClockMHz:   332,
			PeakMFlops: 664,
			Levels: []CacheLevel{
				{Name: "L1", Size: 32 << 10, BandwidthMBs: 2700},
				{Name: "L2", Size: 256 << 10, BandwidthMBs: 900},
				{Name: "mem", Size: 0, BandwidthMBs: 280},
			},
			Eff:            [5]float64{1, 0.30, 0.30, 0.42, 0.68},
			GemmHalfN:      14,
			CallOverheadUS: 0.5,
			AppFactor:      1.45,
		},
		Net: &simnet.Model{
			Name:         "sp-switch-mx",
			Inter:        simnet.LinkModel{LatencyUS: 29, BandwidthMBs: 86, OverheadUS: 4, CPUCopyMBs: 300, EagerLimit: 32 << 10},
			Intra:        simnet.LinkModel{LatencyUS: 24, BandwidthMBs: 64, OverheadUS: 4, CPUCopyMBs: 250, EagerLimit: 32 << 10},
			RanksPerNode: 4,
		},
		MaxProcs: 96,
	}
}

// SP2Thin2 is the older SP with single Power2 66 MHz nodes and the TB2
// adapter (40 MB/s peak).
func SP2Thin2() *Machine {
	return &Machine{
		Name: "SP2-Thin2",
		CPU: CPU{
			Name:       "Power2-66",
			ClockMHz:   66,
			PeakMFlops: 266,
			Levels: []CacheLevel{
				{Name: "L1", Size: 128 << 10, BandwidthMBs: 2100},
				{Name: "mem", Size: 0, BandwidthMBs: 1050},
			},
			Eff:            [5]float64{1, 0.72, 0.78, 0.80, 0.85},
			GemmHalfN:      9,
			CallOverheadUS: 1.4,
			AppFactor:      1.25,
		},
		Net: &simnet.Model{
			Name:  "sp-switch-tb2",
			Inter: simnet.LinkModel{LatencyUS: 52, BandwidthMBs: 31, OverheadUS: 6, CPUCopyMBs: 200, EagerLimit: 32 << 10},
		},
		MaxProcs: 24,
	}
}

// P2SC is the MHPCC SP with Power2 Super Chip 160 MHz nodes: the
// fastest serial machine in the paper.
func P2SC() *Machine {
	return &Machine{
		Name: "P2SC",
		CPU: CPU{
			Name:       "P2SC-160",
			ClockMHz:   160,
			PeakMFlops: 640,
			Levels: []CacheLevel{
				{Name: "L1", Size: 128 << 10, BandwidthMBs: 5100},
				{Name: "mem", Size: 0, BandwidthMBs: 2100},
			},
			Eff:            [5]float64{1, 0.78, 0.90, 0.82, 0.85},
			GemmHalfN:      9,
			CallOverheadUS: 0.7,
			AppFactor:      1.05,
			TriSolveBW:     0.20,
		},
		Net: &simnet.Model{
			Name:  "sp-switch",
			Inter: simnet.LinkModel{LatencyUS: 29, BandwidthMBs: 95, OverheadUS: 4, EagerLimit: 32 << 10},
		},
		MaxProcs: 211,
	}
}

// Onyx2 is the 8-processor R10000/195 shared-memory machine at Brown.
func Onyx2() *Machine {
	intra := simnet.LinkModel{LatencyUS: 13, BandwidthMBs: 140, OverheadUS: 2, EagerLimit: 64 << 10}
	return &Machine{
		Name: "Onyx2",
		CPU: CPU{
			Name:       "R10000-195",
			ClockMHz:   195,
			PeakMFlops: 390,
			Levels: []CacheLevel{
				{Name: "L1", Size: 32 << 10, BandwidthMBs: 1560},
				{Name: "L2", Size: 4 << 20, BandwidthMBs: 780},
				{Name: "mem", Size: 0, BandwidthMBs: 300},
			},
			Eff:            [5]float64{1, 0.42, 0.60, 0.55, 0.80},
			GemmHalfN:      12,
			CallOverheadUS: 0.6,
			AppFactor:      1.00,
		},
		Net:      &simnet.Model{Name: "onyx2-shm", Inter: intra, Intra: intra},
		MaxProcs: 8,
	}
}

// NCSA is the Origin 2000 (R10000 at 250 MHz for the large runs).
func NCSA() *Machine {
	link := simnet.LinkModel{LatencyUS: 12, BandwidthMBs: 150, OverheadUS: 2, EagerLimit: 64 << 10}
	return &Machine{
		Name: "NCSA",
		CPU: CPU{
			Name:       "R10000-250",
			ClockMHz:   250,
			PeakMFlops: 500,
			Levels: []CacheLevel{
				{Name: "L1", Size: 32 << 10, BandwidthMBs: 2000},
				{Name: "L2", Size: 4 << 20, BandwidthMBs: 1000},
				{Name: "mem", Size: 0, BandwidthMBs: 340},
			},
			Eff:            [5]float64{1, 0.42, 0.60, 0.55, 0.80},
			GemmHalfN:      12,
			CallOverheadUS: 0.5,
			AppFactor:      1.02,
		},
		Net:      &simnet.Model{Name: "origin2000", Inter: link, Intra: link},
		MaxProcs: 128,
	}
}

// AP3000 is the Fujitsu cluster of UltraSPARC 300 MHz nodes on AP-Net.
func AP3000() *Machine {
	return &Machine{
		Name: "AP3000",
		CPU: CPU{
			Name:       "UltraSPARC-300",
			ClockMHz:   300,
			PeakMFlops: 600,
			Levels: []CacheLevel{
				{Name: "L1", Size: 16 << 10, BandwidthMBs: 2400},
				{Name: "L2", Size: 1 << 20, BandwidthMBs: 900},
				{Name: "mem", Size: 0, BandwidthMBs: 290},
			},
			Eff:            [5]float64{1, 0.35, 0.50, 0.48, 0.70},
			GemmHalfN:      12,
			CallOverheadUS: 0.6,
			AppFactor:      1.30,
		},
		Net: &simnet.Model{
			Name:  "ap-net",
			Inter: simnet.LinkModel{LatencyUS: 75, BandwidthMBs: 64, OverheadUS: 8, CPUCopyMBs: 250, EagerLimit: 32 << 10},
		},
		MaxProcs: 28,
	}
}

// T3E is the Cray T3E-900 (Alpha 21164A 450 MHz, STREAMS prefetch on).
func T3E() *Machine {
	return &Machine{
		Name: "T3E",
		CPU: CPU{
			Name:       "Alpha21164-450",
			ClockMHz:   450,
			PeakMFlops: 900,
			Levels: []CacheLevel{
				{Name: "L1", Size: 8 << 10, BandwidthMBs: 3600},
				{Name: "L2", Size: 96 << 10, BandwidthMBs: 2700},
				{Name: "mem", Size: 0, BandwidthMBs: 960}, // hardware prefetch (STREAMS)
			},
			Eff:            [5]float64{1, 0.48, 0.65, 0.60, 0.75},
			GemmHalfN:      12,
			CallOverheadUS: 0.4,
			AppFactor:      1.06,
			TriSolveBW:     0.30,
		},
		Net: &simnet.Model{
			Name:  "t3e-torus",
			Inter: simnet.LinkModel{LatencyUS: 14, BandwidthMBs: 310, OverheadUS: 1, EagerLimit: 4 << 10},
		},
		MaxProcs: 816,
	}
}

// PMS is the Poor Man's Supercomputer (Csikor et al.,
// hep-lat/9912059): the Eötvös University lattice-QCD cluster of
// commodity PC nodes on switched 100 Mbit Ethernet over TCP. The link
// is the era's textbook kernel-TCP stack — wire-limited ~11.5 MB/s,
// tens-of-microseconds latency, and a heavy per-byte protocol copy on
// both sides — which is exactly the regime where the source paper's
// Ethernet runs stop scaling. MaxProcs is set far above the physical
// 32-node machine so the capacity sweeps can project the fabric to
// P=1024.
func PMS() *Machine {
	return &Machine{
		Name: "PMS",
		CPU: CPU{
			Name:       "K6-2-450",
			ClockMHz:   450,
			PeakMFlops: 450,
			Levels: []CacheLevel{
				{Name: "L1", Size: 32 << 10, BandwidthMBs: 2900},
				{Name: "mem", Size: 0, BandwidthMBs: 320},
			},
			// The K6-2's weak x87 pipeline keeps BLAS efficiency well
			// below the Pentium II's at the same nominal clock.
			Eff:            [5]float64{1, 0.35, 0.55, 0.45, 0.55},
			GemmHalfN:      14,
			CallOverheadUS: 0.45,
			AppFactor:      1.10,
		},
		Net: &simnet.Model{
			Name:  "pms-ethernet",
			Inter: simnet.LinkModel{LatencyUS: 70, BandwidthMBs: 11.5, OverheadUS: 25, CPUCopyMBs: 60, EagerLimit: 16 << 10},
		},
		MaxProcs: 1024,
	}
}

// Tanaka is the Institute for Fusion Science cluster (Tanaka,
// physics/0407152): PC nodes on Gigabit Ethernet with a low-latency
// kernel-bypass communication layer. The driver maps the NIC into user
// space, so rendezvous transfers DMA directly between user buffers
// (ZeroCopy — neither side pays a protocol copy) while small eager
// packets still land in a preposted bounce buffer. Latency and
// bandwidth follow the paper's reported ~20 us / wire-limited GbE
// figures. MaxProcs again admits the projected P=1024 sweeps.
func Tanaka() *Machine {
	return &Machine{
		Name: "Tanaka",
		CPU: CPU{
			Name:       "PentiumIII-800",
			ClockMHz:   800,
			PeakMFlops: 800,
			Levels: []CacheLevel{
				{Name: "L1", Size: 16 << 10, BandwidthMBs: 6400},
				{Name: "L2", Size: 256 << 10, BandwidthMBs: 3200},
				{Name: "mem", Size: 0, BandwidthMBs: 420},
			},
			Eff:            [5]float64{1, 0.48, 0.85, 0.62, 0.76},
			GemmHalfN:      12,
			CallOverheadUS: 0.30,
			AppFactor:      1.02,
		},
		Net: &simnet.Model{
			Name: "tanaka-gbe-bypass",
			Inter: simnet.LinkModel{
				LatencyUS: 20, BandwidthMBs: 110, OverheadUS: 2,
				// Eager packets are copied out of the preposted bounce
				// buffer at memcpy speed; ZeroCopy exempts rendezvous.
				CPUCopyMBs: 350,
				EagerLimit: 8 << 10, ZeroCopy: true,
			},
		},
		MaxProcs: 1024,
	}
}

// Hitachi is the SR8000 at the University of Tokyo (pseudo-vector
// CPUs, 1 GB/s crossbar); the paper reports only its Alltoall floor of
// 450 MB/s.
func Hitachi() *Machine {
	return &Machine{
		Name: "HITACHI",
		CPU: CPU{
			Name:       "SR8000-PVP",
			ClockMHz:   250,
			PeakMFlops: 1000,
			Levels: []CacheLevel{
				{Name: "L1", Size: 128 << 10, BandwidthMBs: 8000},
				{Name: "mem", Size: 0, BandwidthMBs: 4000},
			},
			Eff:            [5]float64{1, 0.80, 0.85, 0.80, 0.85},
			GemmHalfN:      14,
			CallOverheadUS: 0.5,
			AppFactor:      1.0,
			TriSolveBW:     0.50,
		},
		Net: &simnet.Model{
			Name:  "sr8000-crossbar",
			Inter: simnet.LinkModel{LatencyUS: 8, BandwidthMBs: 800, OverheadUS: 1, EagerLimit: 64 << 10},
			// Eight pseudo-vector CPUs share one node's memory system,
			// so intra-node MPI copies see far less than the crossbar
			// peak; calibrated to the paper's reported 450 MB/s
			// Alltoall floor at 6.4 MB messages.
			Intra:        simnet.LinkModel{LatencyUS: 4, BandwidthMBs: 550, OverheadUS: 1, EagerLimit: 64 << 10},
			RanksPerNode: 8,
		},
		MaxProcs: 1024,
	}
}
