package machine

import (
	"testing"

	"nektar/internal/blas"
)

func TestAllMachinesWellFormed(t *testing.T) {
	ms := All()
	if len(ms) != 15 {
		t.Fatalf("machine count = %d", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			t.Fatalf("duplicate machine %q", m.Name)
		}
		seen[m.Name] = true
		if m.CPU.PeakMFlops <= 0 || m.CPU.AppFactor < 1 {
			t.Fatalf("%s: bad CPU parameters", m.Name)
		}
		last := m.CPU.Levels[len(m.CPU.Levels)-1]
		if last.Size != 0 {
			t.Fatalf("%s: last cache level must be memory (Size 0)", m.Name)
		}
		for i := 1; i < len(m.CPU.Levels); i++ {
			if m.CPU.Levels[i].BandwidthMBs > m.CPU.Levels[i-1].BandwidthMBs {
				t.Fatalf("%s: bandwidth must not increase down the hierarchy", m.Name)
			}
		}
		if m.Net == nil || m.Net.Inter.BandwidthMBs <= 0 {
			t.Fatalf("%s: missing network model", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("T3E"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("ENIAC"); err == nil {
		t.Fatal("expected error for unknown machine")
	}
}

func TestDcopyCurveShape(t *testing.T) {
	// dcopy speed must rise with size (overhead amortization), then
	// fall when the working set spills each cache level.
	pc := Muses().CPU
	small := pc.DcopyMBs(200)
	l1 := pc.DcopyMBs(6 << 10)   // resident in L1 (2*6KB < 16KB)
	l2 := pc.DcopyMBs(128 << 10) // resident in L2
	mem := pc.DcopyMBs(4 << 20)  // main memory
	if !(small < l1) {
		t.Fatalf("overhead regime not visible: %v vs %v", small, l1)
	}
	if !(l1 > l2 && l2 > mem) {
		t.Fatalf("cache cliffs missing: L1=%v L2=%v mem=%v", l1, l2, mem)
	}
}

func TestPCDdotUnmatchedInCache(t *testing.T) {
	// Paper, section 3.1: for in-cache dgemv-figure group the PC's
	// ddot performance is "actually unmatched" among the left-plot
	// machines (Thin2, Silver, AP3000, Onyx2).
	pc := Muses().CPU
	s := int64(6 << 10)
	pcRate := pc.Level1MFlops(blas.KernelDdot, s)
	for _, name := range []string{"SP2-Silver", "AP3000", "Onyx2"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if r := m.CPU.Level1MFlops(blas.KernelDdot, s); r >= pcRate {
			t.Fatalf("%s ddot %v >= PC %v in cache", name, r, pcRate)
		}
	}
}

func TestT3EAndP2SCSuperior(t *testing.T) {
	// Paper conclusion on Figures 1-6: "the T3E and the SP2-P2SC nodes
	// being superior to all the other architectures tested" — check
	// for large dgemm, the asymptotic-compute figure.
	t3e, _ := ByName("T3E")
	p2sc, _ := ByName("P2SC")
	for _, name := range []string{"Muses", "SP2-Silver", "SP2-Thin2", "Onyx2", "AP3000"} {
		m, _ := ByName(name)
		r := m.CPU.DgemmMFlops(500)
		if r >= t3e.CPU.DgemmMFlops(500) && r >= p2sc.CPU.DgemmMFlops(500) {
			t.Fatalf("%s dgemm %v not below both T3E and P2SC", name, r)
		}
	}
}

func TestPCDgemmBoundedByPeak(t *testing.T) {
	pc := Muses().CPU
	for _, n := range []int{5, 20, 100, 600} {
		if r := pc.DgemmMFlops(n); r >= 450 {
			t.Fatalf("PC dgemm at n=%d is %v >= hardware peak", n, r)
		}
	}
}

func TestDgemmSmallMatrixRamp(t *testing.T) {
	// Figure 6: performance climbs steeply over n = 2..20.
	pc := Muses().CPU
	r2 := pc.DgemmMFlops(2)
	r10 := pc.DgemmMFlops(10)
	r20 := pc.DgemmMFlops(20)
	if !(r2 < r10 && r10 < r20) {
		t.Fatalf("no small-n ramp: %v %v %v", r2, r10, r20)
	}
	if r20 > 0.8*pc.DgemmMFlops(600) {
		t.Fatalf("n=20 should still be far from asymptotic: %v vs %v", r20, pc.DgemmMFlops(600))
	}
}

func TestPCMemoryBandwidthCompetitive(t *testing.T) {
	// "For data fetched from main memory ... the PC platform performs
	// well due to its fast 100MHz SDRAM" — PC out-of-cache daxpy beats
	// Silver's and AP3000's.
	pc := Muses().CPU
	s := int64(4 << 20)
	pcRate := pc.Level1MFlops(blas.KernelDaxpy, s)
	for _, name := range []string{"SP2-Silver", "AP3000", "Onyx2"} {
		m, _ := ByName(name)
		if r := m.CPU.Level1MFlops(blas.KernelDaxpy, s); r > pcRate {
			t.Fatalf("%s out-of-cache daxpy %v > PC %v", name, r, pcRate)
		}
	}
}

func TestSecondsScalesWithWork(t *testing.T) {
	var small, big blas.Counts
	small.Ops[blas.KernelDgemm] = blas.Op{Calls: 10, N: 10 * 8 * 8 * 8, Flops: 10 * 2 * 512, Bytes: 10 * 8 * 3 * 64}
	big = small
	big.Ops[blas.KernelDgemm].Flops *= 100
	big.Ops[blas.KernelDgemm].N *= 100
	pc := Muses().CPU
	ts, tb := pc.Seconds(&small), pc.Seconds(&big)
	if !(tb > 10*ts) {
		t.Fatalf("Seconds not scaling: %v vs %v", ts, tb)
	}
	if pc.ApplicationSeconds(&small) < ts {
		t.Fatal("AppFactor must not shrink time")
	}
}

func TestSecondsEmptyCountsIsZero(t *testing.T) {
	var c blas.Counts
	if s := Muses().CPU.Seconds(&c); s != 0 {
		t.Fatalf("empty counts priced at %v", s)
	}
}

func TestNetworkLatencyOrdering(t *testing.T) {
	// Figure 7 left: Ethernet latencies are an order of magnitude
	// above the supercomputer interconnects; Myrinet sits between.
	lat := func(name string) float64 {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.Inter.LatencyUS
	}
	if !(lat("T3E") < lat("RoadRunner-myr") && lat("RoadRunner-myr") < lat("Muses")) {
		t.Fatal("latency ordering violated")
	}
	if !(lat("Muses") < lat("RoadRunner-eth")) {
		t.Fatal("RoadRunner control Ethernet should be worst")
	}
}

func TestNetworkBandwidthOrdering(t *testing.T) {
	// Figure 7 right: T3E highest; Fast Ethernet capped near 11-12
	// MB/s; Myrinet above Thin2 but below the SP-Silver switch.
	bw := func(name string) float64 {
		m, _ := ByName(name)
		return m.Net.Inter.BandwidthMBs
	}
	if bw("Muses") > 12.5 {
		t.Fatal("Fast Ethernet exceeds wire speed")
	}
	if !(bw("T3E") > bw("SP2-Silver") && bw("SP2-Silver") > bw("RoadRunner-myr")) {
		t.Fatal("bandwidth ordering violated")
	}
	if !(bw("RoadRunner-myr") > bw("Muses")) {
		t.Fatal("Myrinet must beat Fast Ethernet")
	}
}

func TestEveryMachineKernelPredictorsSane(t *testing.T) {
	// Every machine's figure predictors must produce positive, finite,
	// peak-bounded values over the full sweep (covers the constructors
	// the shape tests do not reach individually).
	for _, m := range All() {
		cpu := m.CPU
		for _, s := range []int64{256, 4 << 10, 64 << 10, 2 << 20} {
			if v := cpu.DcopyMBs(s); v <= 0 {
				t.Fatalf("%s dcopy(%d) = %v", m.Name, s, v)
			}
			for _, k := range []blas.Kernel{blas.KernelDaxpy, blas.KernelDdot} {
				v := cpu.Level1MFlops(k, s)
				if v <= 0 || v >= cpu.PeakMFlops {
					t.Fatalf("%s %v(%d) = %v (peak %v)", m.Name, k, s, v, cpu.PeakMFlops)
				}
			}
		}
		for _, n := range []int{4, 32, 256, 1024} {
			if v := cpu.DgemvMFlops(n); v <= 0 || v >= cpu.PeakMFlops {
				t.Fatalf("%s dgemv(%d) = %v", m.Name, n, v)
			}
			if v := cpu.DgemmMFlops(n); v <= 0 || v >= cpu.PeakMFlops {
				t.Fatalf("%s dgemm(%d) = %v", m.Name, n, v)
			}
		}
	}
}

func TestPCClusterVariantsShareCPU(t *testing.T) {
	// Muses, Muses-LAM, Muses-MVIA and both RoadRunner networks all
	// run the same Pentium II nodes; only the networks differ.
	base := Muses().CPU
	for _, name := range []string{"Muses-LAM", "Muses-MVIA", "RoadRunner-eth", "RoadRunner-myr"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.CPU.PeakMFlops != base.PeakMFlops || m.CPU.ClockMHz != base.ClockMHz {
			t.Fatalf("%s CPU differs from the shared PC node", name)
		}
	}
}

func TestPMSAndTanakaCalibration(t *testing.T) {
	pms, err := ByName("PMS")
	if err != nil {
		t.Fatal(err)
	}
	tan, err := ByName("Tanaka")
	if err != nil {
		t.Fatal(err)
	}
	// PMS is a TCP-era Fast Ethernet: wire-capped bandwidth, a per-byte
	// protocol copy, no kernel bypass.
	if pms.Net.Inter.BandwidthMBs > 12.5 {
		t.Fatal("PMS Fast Ethernet exceeds wire speed")
	}
	if pms.Net.Inter.CPUCopyMBs <= 0 || pms.Net.Inter.ZeroCopy {
		t.Fatal("PMS must model a copying kernel-TCP stack")
	}
	// Tanaka's bypass driver: an order of magnitude less latency and
	// overhead than PMS, GbE wire bandwidth, zero-copy rendezvous but a
	// real bounce-buffer copy on eager packets.
	if !(tan.Net.Inter.LatencyUS < pms.Net.Inter.LatencyUS/2) {
		t.Fatal("Tanaka bypass latency should be far below PMS TCP")
	}
	if !(tan.Net.Inter.BandwidthMBs > 8*pms.Net.Inter.BandwidthMBs) {
		t.Fatal("Tanaka GbE should carry ~10x the PMS wire bandwidth")
	}
	if !tan.Net.Inter.ZeroCopy || tan.Net.Inter.CPUCopyMBs <= 0 {
		t.Fatal("Tanaka must pair ZeroCopy rendezvous with a bounce-buffer eager copy")
	}
	// Both are projection targets for the P=1024 capacity sweeps.
	for _, m := range []*Machine{pms, tan} {
		if m.MaxProcs < 1024 {
			t.Fatalf("%s MaxProcs = %d, want >= 1024", m.Name, m.MaxProcs)
		}
	}
}

func TestMVIALatencyBelowTCPVariants(t *testing.T) {
	mv, _ := ByName("Muses-MVIA")
	mp, _ := ByName("Muses")
	lam, _ := ByName("Muses-LAM")
	if mv.Net.Inter.LatencyUS >= lam.Net.Inter.LatencyUS ||
		lam.Net.Inter.LatencyUS >= mp.Net.Inter.LatencyUS {
		t.Fatal("expected MVIA < LAM < MPICH latency ordering")
	}
}

func TestApplicationSecondsUsesTriSolveBW(t *testing.T) {
	// A gemv-heavy (triangular-solve-like) workload must be priced
	// slower on a machine whose TriSolveBW is below 1 than the same
	// workload priced through the raw streaming bandwidth.
	var c blas.Counts
	c.Ops[blas.KernelDgemv] = blas.Op{Calls: 1, N: 1 << 20, Flops: 1 << 26, Bytes: 1 << 28}
	t3e := T3E().CPU
	with := t3e.Seconds(&c)
	t3e.TriSolveBW = 0
	without := t3e.Seconds(&c)
	if with <= without {
		t.Fatalf("TriSolveBW not applied: %v vs %v", with, without)
	}
}
