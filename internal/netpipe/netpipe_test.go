package netpipe

import (
	"math"
	"testing"

	"nektar/internal/machine"
	"nektar/internal/simnet"
)

func TestSizesMonotone(t *testing.T) {
	s := Sizes(1 << 20)
	if len(s) < 10 {
		t.Fatalf("too few sizes: %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("sizes not increasing at %d: %v", i, s[i-1:i+1])
		}
	}
}

func TestPingPongRecoversModelParameters(t *testing.T) {
	// On a clean LogGP model the measured small-message latency must
	// approach overhead+latency, and the large-message bandwidth the
	// link bandwidth.
	model := &simnet.Model{
		Name:  "clean",
		Inter: simnet.LinkModel{LatencyUS: 50, BandwidthMBs: 100, OverheadUS: 10},
	}
	pts, err := Run(model, Sizes(8<<20), 3)
	if err != nil {
		t.Fatal(err)
	}
	small := pts[0]
	if small.LatencyUS < 55 || small.LatencyUS > 75 {
		t.Fatalf("small-message latency %v, want ~60 (o + L)", small.LatencyUS)
	}
	big := pts[len(pts)-1]
	if big.MBs < 85 || big.MBs > 101 {
		t.Fatalf("asymptotic bandwidth %v, want ~100", big.MBs)
	}
	// Bandwidth must be monotone-ish: tiny messages far below peak.
	if pts[0].MBs > big.MBs/10 {
		t.Fatalf("latency-bound regime missing: %v vs %v", pts[0].MBs, big.MBs)
	}
}

func TestPingPongMachineOrdering(t *testing.T) {
	// Figure 7's headline: T3E fastest, Myrinet in between, Fast
	// Ethernet slowest in bandwidth and latency.
	measure := func(name string) (lat, bw float64) {
		m, err := machine.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := Run(m.Net, []int{8, 4 << 20}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].LatencyUS, pts[1].MBs
	}
	latT3E, bwT3E := measure("T3E")
	latMyr, bwMyr := measure("RoadRunner-myr")
	latEth, bwEth := measure("Muses")
	if !(latT3E < latMyr && latMyr < latEth) {
		t.Fatalf("latency ordering: T3E %v, myr %v, eth %v", latT3E, latMyr, latEth)
	}
	if !(bwT3E > bwMyr && bwMyr > bwEth) {
		t.Fatalf("bandwidth ordering: T3E %v, myr %v, eth %v", bwT3E, bwMyr, bwEth)
	}
	if bwEth > 12.5 {
		t.Fatalf("Fast Ethernet measured above wire speed: %v", bwEth)
	}
}

func TestAlltoallBandwidth(t *testing.T) {
	model := &simnet.Model{
		Name:  "clean",
		Inter: simnet.LinkModel{LatencyUS: 20, BandwidthMBs: 100, OverheadUS: 2},
	}
	pts, err := RunAlltoall(model, 4, []int{64, 64 << 10, 1 << 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.MBs <= 0 || math.IsNaN(p.MBs) {
			t.Fatalf("bad bandwidth %v", p.MBs)
		}
	}
	// Large messages approach but do not exceed the per-link limit.
	big := pts[len(pts)-1]
	if big.MBs > 100 {
		t.Fatalf("alltoall bandwidth %v exceeds link bandwidth", big.MBs)
	}
	if big.MBs < pts[0].MBs {
		t.Fatalf("large-message alltoall slower than tiny: %v < %v", big.MBs, pts[0].MBs)
	}
}

func TestAlltoallEthernetSaturatesWithP(t *testing.T) {
	// The RoadRunner Ethernet backplane must make the per-process
	// alltoall bandwidth drop sharply from P=4 to P=8 (paper: the
	// ethernet network "seems to saturate above 8 processors").
	m, err := machine.ByName("RoadRunner-eth")
	if err != nil {
		t.Fatal(err)
	}
	at := func(p int) float64 {
		pts, err := RunAlltoall(m.Net, p, []int{256 << 10}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].MBs
	}
	bw4, bw16 := at(4), at(16)
	if bw16 > 0.8*bw4 {
		t.Fatalf("no saturation: P=4 %v vs P=16 %v", bw4, bw16)
	}
	// Myrinet keeps scaling much better.
	myr, err := machine.ByName("RoadRunner-myr")
	if err != nil {
		t.Fatal(err)
	}
	mp4, err := RunAlltoall(myr.Net, 4, []int{256 << 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mp16, err := RunAlltoall(myr.Net, 16, []int{256 << 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mp16[0].MBs < 0.5*mp4[0].MBs {
		t.Fatalf("myrinet saturating too early: %v -> %v", mp4[0].MBs, mp16[0].MBs)
	}
}

func TestT3EAlltoallDominates(t *testing.T) {
	// Paper: "Apart from the T3E, which is 3 times higher than the
	// rest..." — check T3E against SP2-Silver and Myrinet at P=8.
	bw := func(name string) float64 {
		m, err := machine.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := RunAlltoall(m.Net, 8, []int{1 << 20}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].MBs
	}
	t3e := bw("T3E")
	if t3e < 2*bw("SP2-Silver") || t3e < 2*bw("RoadRunner-myr") {
		t.Fatalf("T3E alltoall %v not dominant (silver %v, myr %v)",
			t3e, bw("SP2-Silver"), bw("RoadRunner-myr"))
	}
}

func TestMVIAProjectionSubFifty(t *testing.T) {
	// The paper projects sub-50 us latency for M-VIA on the same
	// cluster; the model must deliver it while staying on Fast
	// Ethernet bandwidth.
	m, err := machine.ByName("Muses-MVIA")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Run(m.Net, []int{8, 4 << 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].LatencyUS >= 50 {
		t.Fatalf("M-VIA latency %v, want < 50 us", pts[0].LatencyUS)
	}
	if pts[1].MBs > 12.5 {
		t.Fatalf("M-VIA bandwidth %v exceeds Fast Ethernet wire speed", pts[1].MBs)
	}
	// And it must beat plain MPICH on latency.
	mp, err := machine.ByName("Muses")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(mp.Net, []int{8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].LatencyUS >= base[0].LatencyUS {
		t.Fatalf("M-VIA %v not below MPICH %v", pts[0].LatencyUS, base[0].LatencyUS)
	}
}

func TestHitachiAlltoallFloor(t *testing.T) {
	// Paper section 3.2: the SR8000 "had a minimum recorded bandwidth
	// of 450 Mbytes/sec for a message size of 6,400,000 bytes".
	m, err := machine.ByName("HITACHI")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunAlltoall(m.Net, 8, []int{6400000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MBs < 300 || pts[0].MBs > 900 {
		t.Fatalf("SR8000 alltoall at 6.4 MB = %v MB/s, want the ~450 MB/s class", pts[0].MBs)
	}
}

func TestInterVsIntranodeSeries(t *testing.T) {
	// The paper's Figure 7 separates RoadRunner's internode and
	// intranode Ethernet: intranode (loopback) must show lower latency
	// and higher bandwidth.
	m, err := machine.ByName("RoadRunner-eth")
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Run(m.Net, []int{8, 1 << 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	intra, err := RunIntranode(m.Net, []int{8, 1 << 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if intra[0].LatencyUS >= inter[0].LatencyUS {
		t.Fatalf("intranode latency %v not below internode %v", intra[0].LatencyUS, inter[0].LatencyUS)
	}
	if intra[1].MBs <= inter[1].MBs {
		t.Fatalf("intranode bandwidth %v not above internode %v", intra[1].MBs, inter[1].MBs)
	}
	// And internode Ethernet is now the worst-latency series, as the
	// paper observes.
	mu, err := machine.ByName("Muses")
	if err != nil {
		t.Fatal(err)
	}
	muses, err := Run(mu.Net, []int{8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if inter[0].LatencyUS <= muses[0].LatencyUS {
		t.Fatalf("RoadRunner internode eth %v should exceed Muses %v", inter[0].LatencyUS, muses[0].LatencyUS)
	}
}
