// Package netpipe reimplements the NetPIPE 2.3 measurement protocol
// the paper uses for its communication kernel tests (Figure 7):
// repeated ping-pong exchanges over a sweep of message sizes, yielding
// one-way latency (small messages) and bandwidth (large messages)
// series for a network model.
package netpipe

import (
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Point is one measurement of the sweep.
type Point struct {
	Bytes     int
	LatencyUS float64 // one-way time in microseconds
	MBs       float64 // bandwidth in MB/s (1e6 bytes per second)
}

// Sizes returns the default NetPIPE-style size sweep: exponentially
// spaced from 1 byte-ish (one float64) to maxBytes.
func Sizes(maxBytes int) []int {
	var out []int
	for s := 8; s <= maxBytes; s *= 2 {
		out = append(out, s)
		if s3 := s + s/2; s3 < maxBytes {
			out = append(out, s3)
		}
	}
	return out
}

// Run performs the ping-pong sweep between two ranks on different SMP
// nodes of the model (the internode path, NetPIPE's usual setup) and
// returns the measured points. reps ping-pongs are timed per size
// (NetPIPE adapts the repetition count; a fixed count is sufficient
// against a deterministic simulator).
func Run(model *simnet.Model, sizes []int, reps int) ([]Point, error) {
	partner := 1
	ranks := 2
	if model.RanksPerNode > 1 {
		partner = model.RanksPerNode // first rank of the second node
		ranks = model.RanksPerNode + 1
	}
	return RunBetween(model, ranks, partner, sizes, reps)
}

// RunIntranode measures the ping-pong between two ranks of the same
// SMP node (the paper's "intranode" series for RoadRunner and the
// SP2-Silver).
func RunIntranode(model *simnet.Model, sizes []int, reps int) ([]Point, error) {
	return RunBetween(model, 2, 1, sizes, reps)
}

// RunBetween runs the sweep between rank 0 and the given partner on a
// cluster of `ranks` ranks (the others idle).
func RunBetween(model *simnet.Model, ranks, partner int, sizes []int, reps int) ([]Point, error) {
	if reps < 1 {
		reps = 3
	}
	results := make([]Point, len(sizes))
	_, _, err := simnet.Run(ranks, model, func(n *simnet.Node) {
		c := mpi.World(n)
		if c.Rank() != 0 && c.Rank() != partner {
			return
		}
		for si, size := range sizes {
			elems := size / 8
			if elems < 1 {
				elems = 1
			}
			buf := make([]float64, elems)
			t0 := c.Wtime()
			for r := 0; r < reps; r++ {
				if c.Rank() == 0 {
					c.Send(partner, si, buf)
					c.Recv(partner, si)
				} else {
					c.Recv(0, si)
					c.Send(0, si, buf)
				}
			}
			t1 := c.Wtime()
			if c.Rank() == 0 {
				oneWay := (t1 - t0) / float64(2*reps)
				results[si] = Point{
					Bytes:     8 * elems,
					LatencyUS: oneWay * 1e6,
					MBs:       float64(8*elems) / oneWay / 1e6,
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// AlltoallPoint is one MPI_Alltoall measurement (Figure 8): the
// average per-process bandwidth for a given total message size.
type AlltoallPoint struct {
	Bytes int // message size per destination, in bytes
	MBs   float64
}

// RunAlltoall measures MPI_Alltoall average bandwidth on P ranks of
// the model for each per-pair message size, following the paper's
// method: global synchronisation, then a timed loop of reps calls with
// statistics over all processors.
func RunAlltoall(model *simnet.Model, p int, sizes []int, reps int) ([]AlltoallPoint, error) {
	if reps < 1 {
		reps = 3
	}
	results := make([]AlltoallPoint, len(sizes))
	_, _, err := simnet.Run(p, model, func(n *simnet.Node) {
		c := mpi.World(n)
		for si, size := range sizes {
			elems := size / 8
			if elems < 1 {
				elems = 1
			}
			send := make([][]float64, p)
			for i := range send {
				send[i] = make([]float64, elems)
			}
			c.Barrier()
			t0 := c.Wtime()
			for r := 0; r < reps; r++ {
				c.Alltoall(send, mpi.AlgAuto)
			}
			t1 := c.Wtime()
			// Average over processors (max time governs, as all ranks
			// synchronize; use the allreduced mean like the paper's
			// "statistics calculated on the sample").
			dt := (t1 - t0) / float64(reps)
			mean := c.Allreduce([]float64{dt}, mpi.Sum)[0] / float64(p)
			if c.Rank() == 0 {
				// Bytes sent per process per call: (P-1) messages of
				// `size` bytes.
				bytes := float64((p - 1) * 8 * elems)
				results[si] = AlltoallPoint{Bytes: 8 * elems, MBs: bytes / mean / 1e6}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
