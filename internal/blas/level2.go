package blas

// Dgemv computes y = alpha*op(A)*x + beta*y where A is an m-by-n
// row-major matrix with leading dimension lda and op is selected by t.
// For t == NoTrans, x has length n and y length m; for t == Trans the
// roles are swapped.
func Dgemv(t Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	if m <= 0 || n <= 0 {
		return
	}
	record(KernelDgemv, m*n, 2*m*n, 8*(m*n+m+n))
	lenY := m
	if t == Trans {
		lenY = n
	}
	if beta != 1 {
		if beta == 0 {
			Dfill(lenY, 0, y, incY)
		} else {
			Dscal(lenY, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	switch t {
	case NoTrans:
		if incX == 1 && incY == 1 {
			for i := 0; i < m; i++ {
				row := a[i*lda : i*lda+n]
				var sum float64
				for j, v := range row {
					sum += v * x[j]
				}
				y[i] += alpha * sum
			}
			return
		}
		for i := 0; i < m; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += a[i*lda+j] * x[index(j, n, incX)]
			}
			y[index(i, m, incY)] += alpha * sum
		}
	case Trans:
		// y_j += alpha * sum_i A_ij x_i; traverse A row-wise for
		// cache-friendly access.
		if incX == 1 && incY == 1 {
			for i := 0; i < m; i++ {
				row := a[i*lda : i*lda+n]
				ax := alpha * x[i]
				if ax == 0 {
					continue
				}
				for j, v := range row {
					y[j] += ax * v
				}
			}
			return
		}
		for i := 0; i < m; i++ {
			ax := alpha * x[index(i, m, incX)]
			for j := 0; j < n; j++ {
				y[index(j, n, incY)] += ax * a[i*lda+j]
			}
		}
	}
}

// Dger performs the rank-one update A += alpha * x * y^T, where A is
// m-by-n row-major with leading dimension lda.
func Dger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	if m <= 0 || n <= 0 || alpha == 0 {
		return
	}
	record(KernelDgemv, m*n, 2*m*n, 8*(2*m*n+m+n))
	for i := 0; i < m; i++ {
		ax := alpha * x[index(i, m, incX)]
		if ax == 0 {
			continue
		}
		row := a[i*lda : i*lda+n]
		if incY == 1 {
			for j, yv := range y[:n] {
				row[j] += ax * yv
			}
			continue
		}
		for j := 0; j < n; j++ {
			row[j] += ax * y[index(j, n, incY)]
		}
	}
}

// Uplo selects the triangle of a symmetric or triangular matrix.
type Uplo int

const (
	// Upper references the upper triangle.
	Upper Uplo = iota
	// Lower references the lower triangle.
	Lower
)

// Diag indicates whether a triangular matrix has a unit diagonal.
type Diag int

const (
	// NonUnit means the diagonal is stored explicitly.
	NonUnit Diag = iota
	// Unit means the diagonal is implicitly one.
	Unit
)

// Dtrsv solves op(A) * x = b in place (x overwrites b) for a
// triangular n-by-n row-major matrix A.
func Dtrsv(ul Uplo, t Transpose, d Diag, n int, a []float64, lda int, x []float64, incX int) {
	if n <= 0 {
		return
	}
	record(KernelDgemv, n*n/2, n*n, 8*(n*n/2+2*n))
	// Only the combinations used by the factorization code paths are
	// implemented with fast loops; all four orderings are supported.
	switch {
	case ul == Lower && t == NoTrans:
		for i := 0; i < n; i++ {
			sum := x[index(i, n, incX)]
			for j := 0; j < i; j++ {
				sum -= a[i*lda+j] * x[index(j, n, incX)]
			}
			if d == NonUnit {
				sum /= a[i*lda+i]
			}
			x[index(i, n, incX)] = sum
		}
	case ul == Upper && t == NoTrans:
		for i := n - 1; i >= 0; i-- {
			sum := x[index(i, n, incX)]
			for j := i + 1; j < n; j++ {
				sum -= a[i*lda+j] * x[index(j, n, incX)]
			}
			if d == NonUnit {
				sum /= a[i*lda+i]
			}
			x[index(i, n, incX)] = sum
		}
	case ul == Lower && t == Trans:
		// Solve A^T x = b with A lower triangular (A^T is upper).
		for i := n - 1; i >= 0; i-- {
			sum := x[index(i, n, incX)]
			for j := i + 1; j < n; j++ {
				sum -= a[j*lda+i] * x[index(j, n, incX)]
			}
			if d == NonUnit {
				sum /= a[i*lda+i]
			}
			x[index(i, n, incX)] = sum
		}
	case ul == Upper && t == Trans:
		for i := 0; i < n; i++ {
			sum := x[index(i, n, incX)]
			for j := 0; j < i; j++ {
				sum -= a[j*lda+i] * x[index(j, n, incX)]
			}
			if d == NonUnit {
				sum /= a[i*lda+i]
			}
			x[index(i, n, incX)] = sum
		}
	}
}

// Dsymv computes y = alpha*A*x + beta*y for a symmetric n-by-n matrix
// of which only the triangle selected by ul is referenced.
func Dsymv(ul Uplo, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	if n <= 0 {
		return
	}
	record(KernelDgemv, n*n, 2*n*n, 8*(n*n/2+2*n))
	if beta != 1 {
		if beta == 0 {
			Dfill(n, 0, y, incY)
		} else {
			Dscal(n, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < n; i++ {
		xi := x[index(i, n, incX)]
		var sum float64
		if ul == Upper {
			// Row i of the upper triangle holds A[i][i..n).
			sum = a[i*lda+i] * xi
			for j := i + 1; j < n; j++ {
				v := a[i*lda+j]
				sum += v * x[index(j, n, incX)]
				y[index(j, n, incY)] += alpha * v * xi
			}
		} else {
			sum = a[i*lda+i] * xi
			for j := 0; j < i; j++ {
				v := a[i*lda+j]
				sum += v * x[index(j, n, incX)]
				y[index(j, n, incY)] += alpha * v * xi
			}
		}
		y[index(i, n, incY)] += alpha * sum
	}
}
