package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almostEqual(a, b, eps float64) bool {
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDcopyContiguous(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	Dcopy(5, x, 1, y, 1)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], x[i])
		}
	}
}

func TestDcopyStrided(t *testing.T) {
	x := []float64{1, 0, 2, 0, 3}
	y := make([]float64, 3)
	Dcopy(3, x, 2, y, 1)
	want := []float64{1, 2, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDcopyNegativeIncrement(t *testing.T) {
	// Reference BLAS semantics: a negative increment traverses the
	// vector from its far end, so pairing incX=1 with incY=-1 reverses.
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	Dcopy(4, x, 1, y, -1)
	want := []float64{4, 3, 2, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDcopyZeroLength(t *testing.T) {
	Dcopy(0, nil, 1, nil, 1) // must not panic
	Dcopy(-3, nil, 1, nil, 1)
}

func TestDswap(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Dswap(3, x, 1, y, 1)
	if x[0] != 4 || x[2] != 6 || y[0] != 1 || y[2] != 3 {
		t.Fatalf("swap failed: x=%v y=%v", x, y)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, -2, 3}
	Dscal(3, 2.5, x, 1)
	want := []float64{2.5, -5, 7.5}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(3, 2, x, 1, y, 1)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDaxpyAlphaZeroIsNoop(t *testing.T) {
	y := []float64{1, 2, 3}
	Daxpy(3, 0, []float64{9, 9, 9}, 1, y, 1)
	if y[0] != 1 || y[1] != 2 || y[2] != 3 {
		t.Fatalf("y = %v, want unchanged", y)
	}
}

func TestDdot(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7}
	y := []float64{1, 1, 1, 1, 1, 1, 1}
	if got := Ddot(7, x, 1, y, 1); got != 28 {
		t.Fatalf("Ddot = %v, want 28", got)
	}
}

func TestDdotStrided(t *testing.T) {
	x := []float64{1, 9, 2, 9, 3}
	y := []float64{1, 1, 1}
	if got := Ddot(3, x, 2, y, 1); got != 6 {
		t.Fatalf("Ddot = %v, want 6", got)
	}
}

func TestDdotMatchesNaive(t *testing.T) {
	// Property: the unrolled dot product agrees with naive summation.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%97 + 1
		x, y := randVec(rng, n), randVec(rng, n)
		var want float64
		for i := 0; i < n; i++ {
			want += x[i] * y[i]
		}
		return almostEqual(Ddot(n, x, 1, y, 1), want, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDnrm2(t *testing.T) {
	x := []float64{3, 4}
	if got := Dnrm2(2, x, 1); !almostEqual(got, 5, tol) {
		t.Fatalf("Dnrm2 = %v, want 5", got)
	}
}

func TestDnrm2OverflowSafe(t *testing.T) {
	x := []float64{1e200, 1e200}
	got := Dnrm2(2, x, 1)
	want := 1e200 * math.Sqrt2
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Dnrm2 = %v, want %v", got, want)
	}
}

func TestDasum(t *testing.T) {
	if got := Dasum(3, []float64{-1, 2, -3}, 1); got != 6 {
		t.Fatalf("Dasum = %v, want 6", got)
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax(4, []float64{1, -7, 3, 5}, 1); got != 1 {
		t.Fatalf("Idamax = %v, want 1", got)
	}
	if got := Idamax(0, nil, 1); got != -1 {
		t.Fatalf("Idamax(0) = %v, want -1", got)
	}
}

func TestDvmulDvadd(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	z := make([]float64, 3)
	Dvmul(3, x, 1, y, 1, z, 1)
	if z[0] != 4 || z[1] != 10 || z[2] != 18 {
		t.Fatalf("Dvmul = %v", z)
	}
	Dvadd(3, x, 1, y, 1, z, 1)
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("Dvadd = %v", z)
	}
}

func TestDfill(t *testing.T) {
	x := make([]float64, 4)
	Dfill(4, 3.5, x, 1)
	for _, v := range x {
		if v != 3.5 {
			t.Fatalf("x = %v", x)
		}
	}
}

// naiveGemv is the reference three-loop implementation.
func naiveGemv(t Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) []float64 {
	var out []float64
	if t == NoTrans {
		out = make([]float64, m)
		for i := 0; i < m; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += a[i*lda+j] * x[j]
			}
			out[i] = alpha*sum + beta*y[i]
		}
	} else {
		out = make([]float64, n)
		for j := 0; j < n; j++ {
			var sum float64
			for i := 0; i < m; i++ {
				sum += a[i*lda+j] * x[i]
			}
			out[j] = alpha*sum + beta*y[j]
		}
	}
	return out
}

func TestDgemvAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, trans := range []Transpose{NoTrans, Trans} {
		for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {17, 4}, {2, 31}} {
			m, n := dims[0], dims[1]
			a := randVec(rng, m*n)
			xLen, yLen := n, m
			if trans == Trans {
				xLen, yLen = m, n
			}
			x := randVec(rng, xLen)
			y := randVec(rng, yLen)
			want := naiveGemv(trans, m, n, 1.3, a, n, x, 0.7, y)
			Dgemv(trans, m, n, 1.3, a, n, x, 1, 0.7, y, 1)
			for i := range want {
				if !almostEqual(y[i], want[i], 1e-10) {
					t.Fatalf("trans=%v m=%d n=%d: y[%d]=%v want %v", trans, m, n, i, y[i], want[i])
				}
			}
		}
	}
}

func TestDgemvBetaZeroIgnoresNaNs(t *testing.T) {
	// beta == 0 must overwrite y even if it held NaN, as in reference
	// BLAS.
	a := []float64{1, 2, 3, 4}
	x := []float64{1, 1}
	y := []float64{math.NaN(), math.NaN()}
	Dgemv(NoTrans, 2, 2, 1, a, 2, x, 1, 0, y, 1)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("y = %v, want [3 7]", y)
	}
}

func TestDger(t *testing.T) {
	a := make([]float64, 6)
	Dger(2, 3, 2, []float64{1, 2}, 1, []float64{3, 4, 5}, 1, a, 3)
	want := []float64{6, 8, 10, 12, 16, 20}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a = %v, want %v", a, want)
		}
	}
}

func TestDtrsvAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 7
	// Build a well-conditioned triangular matrix.
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = rng.Float64() - 0.5
		}
		a[i*n+i] = 4 + rng.Float64()
	}
	for _, ul := range []Uplo{Upper, Lower} {
		for _, tr := range []Transpose{NoTrans, Trans} {
			xWant := randVec(rng, n)
			// b = op(T) * xWant where T is the selected triangle.
			b := make([]float64, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					inTri := (ul == Upper && j >= i) || (ul == Lower && j <= i)
					if !inTri {
						continue
					}
					if tr == NoTrans {
						b[i] += a[i*n+j] * xWant[j]
					} else {
						b[j] += a[i*n+j] * xWant[i]
					}
				}
			}
			Dtrsv(ul, tr, NonUnit, n, a, n, b, 1)
			for i := range xWant {
				if !almostEqual(b[i], xWant[i], 1e-9) {
					t.Fatalf("ul=%v tr=%v: x[%d]=%v want %v", ul, tr, i, b[i], xWant[i])
				}
			}
		}
	}
}

func TestDsymv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 9
	full := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			full[i*n+j] = v
			full[j*n+i] = v
		}
	}
	x := randVec(rng, n)
	for _, ul := range []Uplo{Upper, Lower} {
		y := make([]float64, n)
		want := naiveGemv(NoTrans, n, n, 2.0, full, n, x, 0, y)
		got := make([]float64, n)
		Dsymv(ul, n, 2.0, full, n, x, 1, 0, got, 1)
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-10) {
				t.Fatalf("ul=%v: y[%d]=%v want %v", ul, i, got[i], want[i])
			}
		}
	}
}

func naiveGemm(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) []float64 {
	out := make([]float64, m*ldc)
	copy(out, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for l := 0; l < k; l++ {
				var av, bv float64
				if tA == NoTrans {
					av = a[i*lda+l]
				} else {
					av = a[l*lda+i]
				}
				if tB == NoTrans {
					bv = b[l*ldb+j]
				} else {
					bv = b[j*ldb+l]
				}
				sum += av * bv
			}
			out[i*ldc+j] = alpha*sum + beta*c[i*ldc+j]
		}
	}
	return out
}

func TestDgemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {8, 13, 7}, {16, 16, 16}, {65, 70, 66}, {130, 5, 128}}
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, tB := range []Transpose{NoTrans, Trans} {
			for _, d := range dims {
				m, n, k := d[0], d[1], d[2]
				lda, ldb := k, n
				if tA == Trans {
					lda = m
				}
				if tB == Trans {
					ldb = k
				}
				var aLen, bLen int
				if tA == NoTrans {
					aLen = m * lda
				} else {
					aLen = k * lda
				}
				if tB == NoTrans {
					bLen = k * ldb
				} else {
					bLen = n * ldb
				}
				a := randVec(rng, aLen)
				b := randVec(rng, bLen)
				c := randVec(rng, m*n)
				want := naiveGemm(tA, tB, m, n, k, 1.1, a, lda, b, ldb, 0.9, c, n)
				Dgemm(tA, tB, m, n, k, 1.1, a, lda, b, ldb, 0.9, c, n)
				for i := range want {
					if !almostEqual(c[i], want[i], 1e-9) {
						t.Fatalf("tA=%v tB=%v dims=%v: c[%d]=%v want %v", tA, tB, d, i, c[i], want[i])
					}
				}
			}
		}
	}
}

func TestDgemmBetaZeroOverwrites(t *testing.T) {
	a := []float64{1, 0, 0, 1}
	b := []float64{5, 6, 7, 8}
	c := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	Dgemm(NoTrans, NoTrans, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2)
	for i, want := range b {
		if c[i] != want {
			t.Fatalf("c = %v, want %v", c, b)
		}
	}
}

func TestDgemmDegenerateK(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	Dgemm(NoTrans, NoTrans, 2, 2, 0, 1, nil, 1, nil, 1, 2, c, 2)
	want := []float64{2, 4, 6, 8}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestDtrsmLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 6, 4
	a := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			a[i*m+j] = rng.NormFloat64()
		}
		a[i*m+i] = 3 + rng.Float64()
	}
	xWant := randVec(rng, m*n)
	// B = A * X with A lower triangular.
	b := naiveGemm(NoTrans, NoTrans, m, n, m, 1, a, m, xWant, n, 0, make([]float64, m*n), n)
	Dtrsm(Left, Lower, NoTrans, NonUnit, m, n, 1, a, m, b, n)
	for i := range xWant {
		if !almostEqual(b[i], xWant[i], 1e-9) {
			t.Fatalf("X[%d] = %v, want %v", i, b[i], xWant[i])
		}
	}
}

func TestDtrsmLeftTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n := 5, 3
	a := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			a[i*m+j] = rng.NormFloat64()
		}
		a[i*m+i] = 3 + rng.Float64()
	}
	xWant := randVec(rng, m*n)
	b := naiveGemm(Trans, NoTrans, m, n, m, 1, a, m, xWant, n, 0, make([]float64, m*n), n)
	Dtrsm(Left, Lower, Trans, NonUnit, m, n, 1, a, m, b, n)
	for i := range xWant {
		if !almostEqual(b[i], xWant[i], 1e-9) {
			t.Fatalf("X[%d] = %v, want %v", i, b[i], xWant[i])
		}
	}
}

func TestDtrsmRight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 4, 6
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			a[i*n+j] = rng.NormFloat64()
		}
		a[i*n+i] = 3 + rng.Float64()
	}
	xWant := randVec(rng, m*n)
	// B = X * A with A upper triangular.
	b := naiveGemm(NoTrans, NoTrans, m, n, n, 1, xWant, n, a, n, 0, make([]float64, m*n), n)
	Dtrsm(Right, Upper, NoTrans, NonUnit, m, n, 1, a, n, b, n)
	for i := range xWant {
		if !almostEqual(b[i], xWant[i], 1e-9) {
			t.Fatalf("X[%d] = %v, want %v", i, b[i], xWant[i])
		}
	}
}

func TestDgemmAssociativityProperty(t *testing.T) {
	// Property: (A*B)*x == A*(B*x) for random small matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		a := randVec(rng, n*n)
		b := randVec(rng, n*n)
		x := randVec(rng, n)
		ab := make([]float64, n*n)
		Dgemm(NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 0, ab, n)
		lhs := make([]float64, n)
		Dgemv(NoTrans, n, n, 1, ab, n, x, 1, 0, lhs, 1)
		bx := make([]float64, n)
		Dgemv(NoTrans, n, n, 1, b, n, x, 1, 0, bx, 1)
		rhs := make([]float64, n)
		Dgemv(NoTrans, n, n, 1, a, n, bx, 1, 0, rhs, 1)
		for i := range lhs {
			if !almostEqual(lhs[i], rhs[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecording(t *testing.T) {
	var c Counts
	StartRecording(&c)
	x := make([]float64, 100)
	y := make([]float64, 100)
	Dcopy(100, x, 1, y, 1)
	Daxpy(100, 2, x, 1, y, 1)
	Ddot(100, x, 1, y, 1)
	StopRecording()
	if c.Ops[KernelDcopy].Calls != 1 || c.Ops[KernelDcopy].N != 100 {
		t.Fatalf("dcopy count = %+v", c.Ops[KernelDcopy])
	}
	if c.Ops[KernelDaxpy].Flops != 200 {
		t.Fatalf("daxpy flops = %d, want 200", c.Ops[KernelDaxpy].Flops)
	}
	if c.Ops[KernelDdot].Flops != 200 {
		t.Fatalf("ddot flops = %d, want 200", c.Ops[KernelDdot].Flops)
	}
	// After StopRecording, calls must not accumulate.
	Dcopy(100, x, 1, y, 1)
	if c.Ops[KernelDcopy].Calls != 1 {
		t.Fatal("recording continued after StopRecording")
	}
}

func TestCountsAddSub(t *testing.T) {
	var a, b Counts
	a.Ops[KernelDgemm] = Op{Calls: 2, N: 10, Flops: 100, Bytes: 800}
	b.Ops[KernelDgemm] = Op{Calls: 1, N: 4, Flops: 40, Bytes: 320}
	a.Add(&b)
	if a.Ops[KernelDgemm].Flops != 140 {
		t.Fatalf("Add: %+v", a.Ops[KernelDgemm])
	}
	a.Sub(&b)
	if a.Ops[KernelDgemm].Flops != 100 || a.Ops[KernelDgemm].Calls != 2 {
		t.Fatalf("Sub: %+v", a.Ops[KernelDgemm])
	}
	if a.TotalFlops() != 100 || a.TotalBytes() != 800 {
		t.Fatalf("totals: %d %d", a.TotalFlops(), a.TotalBytes())
	}
}

func TestKernelString(t *testing.T) {
	names := map[Kernel]string{
		KernelDcopy: "dcopy", KernelDaxpy: "daxpy", KernelDdot: "ddot",
		KernelDgemv: "dgemv", KernelDgemm: "dgemm",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kernel(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kernel(99).String() != "unknown" {
		t.Fatal("out-of-range kernel should stringify as unknown")
	}
	if len(Kernels()) != int(numKernels) {
		t.Fatal("Kernels() incomplete")
	}
}

func TestDsyrkMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tr := range []Transpose{NoTrans, Trans} {
		for _, ul := range []Uplo{Lower, Upper} {
			n, k := 7, 11
			var a []float64
			var lda int
			if tr == NoTrans {
				a = randVec(rng, n*k)
				lda = k
			} else {
				a = randVec(rng, k*n)
				lda = n
			}
			c := randVec(rng, n*n)
			want := make([]float64, n*n)
			copy(want, c)
			// Reference via Dgemm on the full matrix.
			if tr == NoTrans {
				Dgemm(NoTrans, Trans, n, n, k, 0.7, a, lda, a, lda, 0.3, want, n)
			} else {
				Dgemm(Trans, NoTrans, n, n, k, 0.7, a, lda, a, lda, 0.3, want, n)
			}
			got := make([]float64, n*n)
			copy(got, c)
			Dsyrk(ul, tr, n, k, 0.7, a, lda, 0.3, got, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					inTri := (ul == Lower && j <= i) || (ul == Upper && j >= i)
					if inTri {
						if !almostEqual(got[i*n+j], want[i*n+j], 1e-10) {
							t.Fatalf("tr=%v ul=%v (%d,%d): %v vs %v", tr, ul, i, j, got[i*n+j], want[i*n+j])
						}
					} else if got[i*n+j] != c[i*n+j] {
						t.Fatalf("tr=%v ul=%v: opposite triangle modified at (%d,%d)", tr, ul, i, j)
					}
				}
			}
		}
	}
}

func TestSymmetrizeLower(t *testing.T) {
	c := []float64{1, 0, 0, 3, 2, 0, 5, 6, 7} // lower triangle set
	SymmetrizeLower(3, c, 3)
	want := []float64{1, 3, 5, 3, 2, 6, 5, 6, 7}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("symmetrize failed: %v, want %v", c, want)
		}
	}
}

func TestDtrsmLeftUpperNoTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n := 5, 4
	a := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			a[i*m+j] = rng.NormFloat64()
		}
		a[i*m+i] = 3 + rng.Float64()
	}
	xWant := randVec(rng, m*n)
	b := naiveGemm(NoTrans, NoTrans, m, n, m, 1, a, m, xWant, n, 0, make([]float64, m*n), n)
	Dtrsm(Left, Upper, NoTrans, NonUnit, m, n, 1, a, m, b, n)
	for i := range xWant {
		if !almostEqual(b[i], xWant[i], 1e-9) {
			t.Fatalf("X[%d] = %v, want %v", i, b[i], xWant[i])
		}
	}
}

func TestDtrsmRightTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m, n := 3, 5
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			a[i*n+j] = rng.NormFloat64()
		}
		a[i*n+i] = 3 + rng.Float64()
	}
	xWant := randVec(rng, m*n)
	// B = X * A^T with A lower triangular.
	b := naiveGemm(NoTrans, Trans, m, n, n, 1, xWant, n, a, n, 0, make([]float64, m*n), n)
	Dtrsm(Right, Lower, Trans, NonUnit, m, n, 1, a, n, b, n)
	for i := range xWant {
		if !almostEqual(b[i], xWant[i], 1e-9) {
			t.Fatalf("X[%d] = %v, want %v", i, b[i], xWant[i])
		}
	}
}

func TestDtrsmUnitDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m, n := 4, 3
	a := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			a[i*m+j] = rng.NormFloat64() * 0.2
		}
		a[i*m+i] = 99 // must be ignored with Unit diag
	}
	unit := make([]float64, m*m)
	copy(unit, a)
	for i := 0; i < m; i++ {
		unit[i*m+i] = 1
	}
	xWant := randVec(rng, m*n)
	b := naiveGemm(NoTrans, NoTrans, m, n, m, 1, unit, m, xWant, n, 0, make([]float64, m*n), n)
	Dtrsm(Left, Lower, NoTrans, Unit, m, n, 1, a, m, b, n)
	for i := range xWant {
		if !almostEqual(b[i], xWant[i], 1e-9) {
			t.Fatalf("X[%d] = %v, want %v", i, b[i], xWant[i])
		}
	}
}

func TestStridedVariantsAgree(t *testing.T) {
	// Strided calls must agree with contiguous ones on the packed
	// data (daxpy, dscal, dvmul with incs != 1).
	rng := rand.New(rand.NewSource(16))
	n := 9
	xs := randVec(rng, 2*n) // stride-2 view
	ys := randVec(rng, 3*n) // stride-3 view
	xc := make([]float64, n)
	yc := make([]float64, n)
	for i := 0; i < n; i++ {
		xc[i] = xs[2*i]
		yc[i] = ys[3*i]
	}
	Daxpy(n, 1.7, xs, 2, ys, 3)
	Daxpy(n, 1.7, xc, 1, yc, 1)
	for i := 0; i < n; i++ {
		if !almostEqual(ys[3*i], yc[i], 1e-12) {
			t.Fatalf("strided daxpy mismatch at %d", i)
		}
	}
	Dscal(n, 0.4, ys, 3)
	Dscal(n, 0.4, yc, 1)
	for i := 0; i < n; i++ {
		if !almostEqual(ys[3*i], yc[i], 1e-12) {
			t.Fatalf("strided dscal mismatch at %d", i)
		}
	}
	z := make([]float64, 2*n)
	zc := make([]float64, n)
	Dvmul(n, xs, 2, ys, 3, z, 2)
	Dvmul(n, xc, 1, yc, 1, zc, 1)
	for i := 0; i < n; i++ {
		if !almostEqual(z[2*i], zc[i], 1e-12) {
			t.Fatalf("strided dvmul mismatch at %d", i)
		}
	}
}
