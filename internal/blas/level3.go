package blas

// Block sizes for the tiled Dgemm. The micro tile is sized so that one
// tile of A, one of B and one of C stay resident in L1 on commodity
// hardware, mirroring the cache-blocking done by the vendor BLAS the
// paper measured.
const (
	gemmBlockM = 64
	gemmBlockN = 64
	gemmBlockK = 64
)

// Dgemm computes C = alpha*op(A)*op(B) + beta*C.
//
// All matrices are row-major: op(A) is m-by-k, op(B) is k-by-n and C is
// m-by-n, with leading dimensions lda, ldb and ldc referring to the
// stored (untransposed) operands.
func Dgemm(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m <= 0 || n <= 0 {
		return
	}
	record(KernelDgemm, m*n*k, 2*m*n*k, 8*(m*k+k*n+2*m*n))
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || k <= 0 {
		return
	}
	// Small problems (the dominant case in the spectral/hp elemental
	// transforms, cf. Figure 6 of the paper) skip the blocking logic.
	if m <= gemmBlockM && n <= gemmBlockN && k <= gemmBlockK {
		gemmKernel(tA, tB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	for i0 := 0; i0 < m; i0 += gemmBlockM {
		mi := min(gemmBlockM, m-i0)
		for k0 := 0; k0 < k; k0 += gemmBlockK {
			ki := min(gemmBlockK, k-k0)
			for j0 := 0; j0 < n; j0 += gemmBlockN {
				ni := min(gemmBlockN, n-j0)
				aOff, bOff := blockOffset(tA, i0, k0, lda), blockOffset(tB, k0, j0, ldb)
				gemmKernel(tA, tB, mi, ni, ki, alpha, a[aOff:], lda, b[bOff:], ldb, c[i0*ldc+j0:], ldc)
			}
		}
	}
}

// blockOffset returns the flat offset of logical element (i, j) of
// op(X) within the stored matrix X.
func blockOffset(t Transpose, i, j, ld int) int {
	if t == NoTrans {
		return i*ld + j
	}
	return j*ld + i
}

// gemmKernel computes C += alpha*op(A)*op(B) for a single tile, with C
// already scaled by beta.
func gemmKernel(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	switch {
	case tA == NoTrans && tB == NoTrans:
		// C[i][:] += alpha*A[i][l] * B[l][:] — the axpy formulation keeps
		// the inner loop streaming over rows of B and C.
		for i := 0; i < m; i++ {
			crow := c[i*ldc : i*ldc+n]
			for l := 0; l < k; l++ {
				av := alpha * a[i*lda+l]
				if av == 0 {
					continue
				}
				brow := b[l*ldb : l*ldb+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	case tA == Trans && tB == NoTrans:
		for i := 0; i < m; i++ {
			crow := c[i*ldc : i*ldc+n]
			for l := 0; l < k; l++ {
				av := alpha * a[l*lda+i]
				if av == 0 {
					continue
				}
				brow := b[l*ldb : l*ldb+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	case tA == NoTrans && tB == Trans:
		for i := 0; i < m; i++ {
			arow := a[i*lda : i*lda+k]
			crow := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				brow := b[j*ldb : j*ldb+k]
				var sum float64
				for l, av := range arow {
					sum += av * brow[l]
				}
				crow[j] += alpha * sum
			}
		}
	default: // Trans, Trans
		for i := 0; i < m; i++ {
			crow := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				var sum float64
				for l := 0; l < k; l++ {
					sum += a[l*lda+i] * b[j*ldb+l]
				}
				crow[j] += alpha * sum
			}
		}
	}
}

// Side selects whether the triangular operand multiplies from the left
// or the right.
type Side int

const (
	// Left solves op(A) * X = alpha * B.
	Left Side = iota
	// Right solves X * op(A) = alpha * B.
	Right
)

// Dtrsm solves a triangular system with multiple right-hand sides in
// place: B is overwritten with the solution X of
// op(A)*X = alpha*B (side Left) or X*op(A) = alpha*B (side Right),
// where A is triangular and B is m-by-n row-major.
func Dtrsm(s Side, ul Uplo, t Transpose, d Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	if m <= 0 || n <= 0 {
		return
	}
	var na int
	if s == Left {
		na = m
	} else {
		na = n
	}
	record(KernelDgemm, m*n*na/2, m*n*na, 8*(na*na/2+2*m*n))
	if alpha != 1 {
		for i := 0; i < m; i++ {
			row := b[i*ldb : i*ldb+n]
			for j := range row {
				row[j] *= alpha
			}
		}
	}
	if s == Left {
		// Column-by-column triangular solve; rows of B stream together.
		lower := ul == Lower
		if t == Trans {
			lower = !lower
		}
		get := func(i, j int) float64 {
			if t == NoTrans {
				return a[i*lda+j]
			}
			return a[j*lda+i]
		}
		if lower {
			for i := 0; i < m; i++ {
				bi := b[i*ldb : i*ldb+n]
				for l := 0; l < i; l++ {
					v := get(i, l)
					if v == 0 {
						continue
					}
					bl := b[l*ldb : l*ldb+n]
					for j := range bi {
						bi[j] -= v * bl[j]
					}
				}
				if d == NonUnit {
					inv := 1 / get(i, i)
					for j := range bi {
						bi[j] *= inv
					}
				}
			}
		} else {
			for i := m - 1; i >= 0; i-- {
				bi := b[i*ldb : i*ldb+n]
				for l := i + 1; l < m; l++ {
					v := get(i, l)
					if v == 0 {
						continue
					}
					bl := b[l*ldb : l*ldb+n]
					for j := range bi {
						bi[j] -= v * bl[j]
					}
				}
				if d == NonUnit {
					inv := 1 / get(i, i)
					for j := range bi {
						bi[j] *= inv
					}
				}
			}
		}
		return
	}
	// Side == Right: each row of B is an independent triangular solve
	// x * op(A) = b. Substituting along the row keeps both the B row and
	// the accessed row of A stride-1: NoTrans spreads each solved x_l
	// through row l of A (axpy form), Trans gathers x_j as a dot with
	// row j of A. (The old per-row Dtrsv fallback walked A down a column
	// with stride lda on every step.)
	for i := 0; i < m; i++ {
		bi := b[i*ldb : i*ldb+n]
		switch {
		case ul == Upper && t == NoTrans:
			// b_j = sum_{l<=j} x_l A[l][j]: forward sweep, spread x_l
			// into b[l+1:] along row l of A.
			for l := 0; l < n; l++ {
				if d == NonUnit {
					bi[l] /= a[l*lda+l]
				}
				v := bi[l]
				if v == 0 {
					continue
				}
				tail := bi[l+1:]
				arow := a[l*lda+l+1 : l*lda+n]
				for j, av := range arow {
					tail[j] -= v * av
				}
			}
		case ul == Lower && t == NoTrans:
			// b_j = sum_{l>=j} x_l A[l][j]: backward sweep.
			for l := n - 1; l >= 0; l-- {
				if d == NonUnit {
					bi[l] /= a[l*lda+l]
				}
				v := bi[l]
				if v == 0 {
					continue
				}
				arow := a[l*lda : l*lda+l]
				for j, av := range arow {
					bi[j] -= v * av
				}
			}
		case ul == Lower && t == Trans:
			// b_j = sum_{l<=j} x_l A[j][l]: forward sweep, gather x_j as
			// a dot of the solved prefix with row j of A.
			for j := 0; j < n; j++ {
				var sum float64
				arow := a[j*lda : j*lda+j]
				for l, av := range arow {
					sum += bi[l] * av
				}
				bi[j] -= sum
				if d == NonUnit {
					bi[j] /= a[j*lda+j]
				}
			}
		default: // Upper, Trans
			// b_j = sum_{l>=j} x_l A[j][l]: backward sweep, dot with the
			// solved suffix.
			for j := n - 1; j >= 0; j-- {
				var sum float64
				arow := a[j*lda+j+1 : j*lda+n]
				tail := bi[j+1:]
				for l, av := range arow {
					sum += tail[l] * av
				}
				bi[j] -= sum
				if d == NonUnit {
					bi[j] /= a[j*lda+j]
				}
			}
		}
	}
}

// Dsyrk performs the symmetric rank-k update C = alpha*A*A^T + beta*C
// (t == NoTrans, A is n-by-k) or C = alpha*A^T*A + beta*C (t == Trans,
// A is k-by-n), updating only the triangle of C selected by ul. C is
// n-by-n row-major.
func Dsyrk(ul Uplo, t Transpose, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	if n <= 0 {
		return
	}
	record(KernelDgemm, n*n*k/2, n*n*k, 8*(n*k+n*n))
	if t == NoTrans {
		// Rows of A are the vectors: stride-1 dot products.
		for i := 0; i < n; i++ {
			var j0, j1 int
			if ul == Lower {
				j0, j1 = 0, i+1
			} else {
				j0, j1 = i, n
			}
			for j := j0; j < j1; j++ {
				sum := Ddot(k, a[i*lda:], 1, a[j*lda:], 1)
				c[i*ldc+j] = alpha*sum + beta*c[i*ldc+j]
			}
		}
		return
	}
	// Trans: C = alpha*A^T*A + beta*C with A k-by-n. The columns of A
	// are the vectors, so the per-element Ddot walked A with stride lda
	// twice per entry. Instead scale the triangle once and accumulate
	// rank-1 updates row by row: each row of A streams stride-1 through
	// the triangle, the same axpy formulation as gemmKernel.
	for i := 0; i < n; i++ {
		var j0, j1 int
		if ul == Lower {
			j0, j1 = 0, i+1
		} else {
			j0, j1 = i, n
		}
		row := c[i*ldc+j0 : i*ldc+j1]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else if beta != 1 {
			for j := range row {
				row[j] *= beta
			}
		}
	}
	for l := 0; l < k; l++ {
		arow := a[l*lda : l*lda+n]
		for i := 0; i < n; i++ {
			av := alpha * arow[i]
			if av == 0 {
				continue
			}
			if ul == Lower {
				crow := c[i*ldc : i*ldc+i+1]
				for j, v := range arow[:i+1] {
					crow[j] += av * v
				}
			} else {
				crow := c[i*ldc+i : i*ldc+n]
				for j, v := range arow[i:n] {
					crow[j] += av * v
				}
			}
		}
	}
}

// SymmetrizeLower copies the lower triangle of the row-major n-by-n
// matrix c into its upper triangle.
func SymmetrizeLower(n int, c []float64, ldc int) {
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			c[j*ldc+i] = c[i*ldc+j]
		}
	}
}
