//go:build linux

package blas

import "syscall"

// threadID returns a stable identifier for the calling OS thread. The
// caller must be locked to its thread (runtime.LockOSThread) for the
// id to stay meaningful across calls.
func threadID() (int, bool) { return syscall.Gettid(), true }
