// Package blas implements the Basic Linear Algebra Subprograms used by
// the spectral/hp element solvers, from scratch in pure Go.
//
// The paper ("DNS of Turbulence with a PC/Linux Cluster: Fact or
// Fiction?", SC '99) evaluates single-node performance through the
// vendor BLAS libraries (ESSL, SCILIB, SCSL, LIBPERF, and Intel's ASCI
// Red BLAS). This package plays that role: the Level 1 routines
// (dcopy, daxpy, ddot, ...) dominate the right-hand-side setup stages
// of the Navier-Stokes splitting scheme, the Level 2 routine dgemv and
// the Level 3 routine dgemm dominate the elemental transforms, and the
// banded solvers built on top (package lapack) dominate the pressure
// and viscous solves.
//
// Conventions: matrices are dense row-major with an explicit leading
// dimension (stride between rows). Vector routines accept strides
// (increments) like the reference BLAS; negative increments follow the
// reference semantics (the vector is traversed backwards).
//
// Every routine optionally records its operation count through the
// Counters mechanism (see counts.go); the benchmark harness replays
// those counts through the calibrated machine models of package
// machine to regenerate the paper's per-machine timings.
package blas

import "math"

// Transpose selects the operation applied to a matrix operand.
type Transpose int

const (
	// NoTrans uses the matrix as stored.
	NoTrans Transpose = iota
	// Trans uses the transpose of the stored matrix.
	Trans
)

// index returns the element index for a vector of length n with
// increment inc, following reference-BLAS semantics: for negative
// increments the traversal starts from the far end.
func index(i, n, inc int) int {
	if inc >= 0 {
		return i * inc
	}
	return (i - n + 1) * inc
}

// Dcopy copies x into y: y[i] = x[i] for i < n.
func Dcopy(n int, x []float64, incX int, y []float64, incY int) {
	if n <= 0 {
		return
	}
	record(KernelDcopy, n, 0, 16*n)
	if incX == 1 && incY == 1 {
		copy(y[:n], x[:n])
		return
	}
	for i := 0; i < n; i++ {
		y[index(i, n, incY)] = x[index(i, n, incX)]
	}
}

// Dswap exchanges the elements of x and y.
func Dswap(n int, x []float64, incX int, y []float64, incY int) {
	if n <= 0 {
		return
	}
	record(KernelDcopy, n, 0, 32*n)
	for i := 0; i < n; i++ {
		ix, iy := index(i, n, incX), index(i, n, incY)
		x[ix], y[iy] = y[iy], x[ix]
	}
}

// Dscal scales x in place: x[i] *= alpha.
func Dscal(n int, alpha float64, x []float64, incX int) {
	if n <= 0 {
		return
	}
	record(KernelDaxpy, n, n, 16*n)
	if incX == 1 {
		x = x[:n]
		for i := range x {
			x[i] *= alpha
		}
		return
	}
	for i := 0; i < n; i++ {
		x[index(i, n, incX)] *= alpha
	}
}

// Daxpy computes y = alpha*x + y.
func Daxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	if n <= 0 || alpha == 0 {
		return
	}
	record(KernelDaxpy, n, 2*n, 24*n)
	if incX == 1 && incY == 1 {
		x = x[:n]
		y = y[:n]
		for i, xv := range x {
			y[i] += alpha * xv
		}
		return
	}
	for i := 0; i < n; i++ {
		y[index(i, n, incY)] += alpha * x[index(i, n, incX)]
	}
}

// Ddot returns the inner product x . y.
func Ddot(n int, x []float64, incX int, y []float64, incY int) float64 {
	if n <= 0 {
		return 0
	}
	record(KernelDdot, n, 2*n, 16*n)
	var sum float64
	if incX == 1 && incY == 1 {
		x = x[:n]
		y = y[:n]
		// Four-way unrolled accumulation: the partial sums keep the
		// floating-point dependency chain short, which matters for the
		// host-native Figure 3 benchmark.
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= n; i += 4 {
			s0 += x[i] * y[i]
			s1 += x[i+1] * y[i+1]
			s2 += x[i+2] * y[i+2]
			s3 += x[i+3] * y[i+3]
		}
		for ; i < n; i++ {
			s0 += x[i] * y[i]
		}
		return s0 + s1 + s2 + s3
	}
	for i := 0; i < n; i++ {
		sum += x[index(i, n, incX)] * y[index(i, n, incY)]
	}
	return sum
}

// Dnrm2 returns the Euclidean norm of x, guarding against overflow the
// way the reference implementation does (scaled sum of squares).
func Dnrm2(n int, x []float64, incX int) float64 {
	if n <= 0 {
		return 0
	}
	record(KernelDdot, n, 2*n, 8*n)
	scale, ssq := 0.0, 1.0
	for i := 0; i < n; i++ {
		v := x[index(i, n, incX)]
		if v == 0 {
			continue
		}
		if v < 0 {
			v = -v
		}
		if scale < v {
			r := scale / v
			ssq = 1 + ssq*r*r
			scale = v
		} else {
			r := v / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dasum returns the sum of absolute values of x.
func Dasum(n int, x []float64, incX int) float64 {
	if n <= 0 {
		return 0
	}
	record(KernelDdot, n, n, 8*n)
	var sum float64
	for i := 0; i < n; i++ {
		v := x[index(i, n, incX)]
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return sum
}

// Idamax returns the index of the element of x with the largest
// absolute value, or -1 if n <= 0.
func Idamax(n int, x []float64, incX int) int {
	if n <= 0 {
		return -1
	}
	record(KernelDdot, n, 0, 8*n)
	best, bestIdx := -1.0, -1
	for i := 0; i < n; i++ {
		v := x[index(i, n, incX)]
		if v < 0 {
			v = -v
		}
		if v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// Dvmul computes the element-wise (Hadamard) product z = x .* y.
// It is not part of reference BLAS but is the workhorse of the
// quadrature-space nonlinear terms (paper stage 2), so it is counted
// like a Level 1 kernel.
func Dvmul(n int, x []float64, incX int, y []float64, incY int, z []float64, incZ int) {
	if n <= 0 {
		return
	}
	record(KernelDaxpy, n, n, 24*n)
	if incX == 1 && incY == 1 && incZ == 1 {
		x = x[:n]
		y = y[:n]
		z = z[:n]
		for i := range z {
			z[i] = x[i] * y[i]
		}
		return
	}
	for i := 0; i < n; i++ {
		z[index(i, n, incZ)] = x[index(i, n, incX)] * y[index(i, n, incY)]
	}
}

// Dvadd computes z = x + y element-wise.
func Dvadd(n int, x []float64, incX int, y []float64, incY int, z []float64, incZ int) {
	if n <= 0 {
		return
	}
	record(KernelDaxpy, n, n, 24*n)
	if incX == 1 && incY == 1 && incZ == 1 {
		x = x[:n]
		y = y[:n]
		z = z[:n]
		for i := range z {
			z[i] = x[i] + y[i]
		}
		return
	}
	for i := 0; i < n; i++ {
		z[index(i, n, incZ)] = x[index(i, n, incX)] + y[index(i, n, incY)]
	}
}

// Dfill sets every element of x to alpha.
func Dfill(n int, alpha float64, x []float64, incX int) {
	if n <= 0 {
		return
	}
	record(KernelDcopy, n, 0, 8*n)
	if incX == 1 {
		x = x[:n]
		for i := range x {
			x[i] = alpha
		}
		return
	}
	for i := 0; i < n; i++ {
		x[index(i, n, incX)] = alpha
	}
}
