//go:build !linux

package blas

// threadID is unavailable on this platform: per-thread recording is
// disabled and simnet falls back to its serial scheduler.
func threadID() (int, bool) { return 0, false }
