package blas

import (
	"fmt"
	"testing"
)

// Benchmarks for the level-3 routines the paper's condensed solvers
// lean on. Dsyrk(Trans) and Dtrsm(Right) are the two kernels that used
// to walk matrices with stride-lda inner loops; these benchmarks pin
// their throughput so regressions show up in `go test -bench`.

func benchMatrix(n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = 1 + float64(i%7)*0.25
	}
	// Strong diagonal so triangular solves stay well-conditioned.
	for i := 0; i < n; i++ {
		m[i*n+i] = float64(n)
	}
	return m
}

func BenchmarkDsyrkTrans(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := benchMatrix(n)
			c := make([]float64, n*n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Dsyrk(Lower, Trans, n, n, 1.0, a, n, 0.0, c, n)
			}
		})
	}
}

func BenchmarkDsyrkNoTrans(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := benchMatrix(n)
			c := make([]float64, n*n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Dsyrk(Lower, NoTrans, n, n, 1.0, a, n, 0.0, c, n)
			}
		})
	}
}

func BenchmarkDtrsmRight(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		for _, ul := range []Uplo{Lower, Upper} {
			for _, t := range []Transpose{NoTrans, Trans} {
				name := fmt.Sprintf("n=%d/ul=%v/t=%v", n, ul, t)
				b.Run(name, func(b *testing.B) {
					a := benchMatrix(n)
					x := make([]float64, n*n)
					for i := range x {
						x[i] = float64(i%5) * 0.5
					}
					b.SetBytes(int64(8 * n * n))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						Dtrsm(Right, ul, t, NonUnit, n, n, 1.0, a, n, x, n)
					}
				})
			}
		}
	}
}
