package blas

import "sync"

// Kernel identifies a class of BLAS operation for accounting purposes.
// The classes mirror the kernels the paper benchmarks in Figures 1-6;
// routines not benchmarked individually are folded into the class with
// the same arithmetic-intensity profile.
type Kernel int

const (
	// KernelDcopy covers pure data movement (dcopy, dswap, fill).
	KernelDcopy Kernel = iota
	// KernelDaxpy covers streaming multiply-add kernels
	// (daxpy, dscal, element-wise multiply/add).
	KernelDaxpy
	// KernelDdot covers reduction kernels (ddot, dnrm2, dasum, idamax).
	KernelDdot
	// KernelDgemv covers matrix-vector kernels (dgemv, dger, dtrsv,
	// banded solves).
	KernelDgemv
	// KernelDgemm covers matrix-matrix kernels (dgemm, dtrsm, banded
	// factorizations).
	KernelDgemm
	numKernels
)

// String returns the reference-BLAS name of the kernel class.
func (k Kernel) String() string {
	switch k {
	case KernelDcopy:
		return "dcopy"
	case KernelDaxpy:
		return "daxpy"
	case KernelDdot:
		return "ddot"
	case KernelDgemv:
		return "dgemv"
	case KernelDgemm:
		return "dgemm"
	}
	return "unknown"
}

// Kernels lists all kernel classes in a stable order.
func Kernels() []Kernel {
	return []Kernel{KernelDcopy, KernelDaxpy, KernelDdot, KernelDgemv, KernelDgemm}
}

// Op is one recorded operation-count bucket.
type Op struct {
	Calls int64 // number of BLAS calls
	N     int64 // total problem size (sum over calls of the size metric)
	Flops int64 // total floating-point operations
	Bytes int64 // total bytes moved (load + store, ideal traffic)
}

// Counts accumulates operation counts per kernel class. The zero value
// is ready to use.
type Counts struct {
	Ops [numKernels]Op
}

// Add merges other into c.
func (c *Counts) Add(other *Counts) {
	for i := range c.Ops {
		c.Ops[i].Calls += other.Ops[i].Calls
		c.Ops[i].N += other.Ops[i].N
		c.Ops[i].Flops += other.Ops[i].Flops
		c.Ops[i].Bytes += other.Ops[i].Bytes
	}
}

// Sub subtracts other from c (used to compute per-stage deltas).
func (c *Counts) Sub(other *Counts) {
	for i := range c.Ops {
		c.Ops[i].Calls -= other.Ops[i].Calls
		c.Ops[i].N -= other.Ops[i].N
		c.Ops[i].Flops -= other.Ops[i].Flops
		c.Ops[i].Bytes -= other.Ops[i].Bytes
	}
}

// Scale multiplies every accumulated quantity by f (used to
// extrapolate measured per-element counts to larger meshes).
func (c *Counts) Scale(f float64) {
	for i := range c.Ops {
		c.Ops[i].Calls = int64(float64(c.Ops[i].Calls) * f)
		c.Ops[i].N = int64(float64(c.Ops[i].N) * f)
		c.Ops[i].Flops = int64(float64(c.Ops[i].Flops) * f)
		c.Ops[i].Bytes = int64(float64(c.Ops[i].Bytes) * f)
	}
}

// TotalFlops returns the total floating point operations across all
// kernel classes.
func (c *Counts) TotalFlops() int64 {
	var t int64
	for i := range c.Ops {
		t += c.Ops[i].Flops
	}
	return t
}

// TotalBytes returns the total ideal memory traffic across all kernel
// classes.
func (c *Counts) TotalBytes() int64 {
	var t int64
	for i := range c.Ops {
		t += c.Ops[i].Bytes
	}
	return t
}

// recording state. A single global recorder keeps the hot path to one
// predictable branch when disabled; the solvers that need per-goroutine
// accounting (the simulated MPI ranks) each run with their own Counts
// snapshot window, serialized by the simulator.
var (
	recMu      sync.Mutex
	recCounts  *Counts
	recEnabled bool
)

// StartRecording directs all subsequent BLAS calls to accumulate into
// c until StopRecording is called. Recording is process-global and
// must not be enabled concurrently from multiple goroutines.
func StartRecording(c *Counts) {
	recMu.Lock()
	recCounts = c
	recEnabled = true
	recMu.Unlock()
}

// StopRecording stops accumulation.
func StopRecording() {
	recMu.Lock()
	recEnabled = false
	recCounts = nil
	recMu.Unlock()
}

// Snapshot returns a copy of the currently accumulating counts, or a
// zero Counts if recording is disabled.
func Snapshot() Counts {
	recMu.Lock()
	defer recMu.Unlock()
	if recCounts == nil {
		return Counts{}
	}
	return *recCounts
}

// RecordExternal merges externally computed counts (e.g. from the
// banded LAPACK routines, whose inner loops do not call back into
// BLAS) into the active recording session, if any.
func RecordExternal(c *Counts) {
	if !recEnabled {
		return
	}
	recMu.Lock()
	if recCounts != nil {
		recCounts.Add(c)
	}
	recMu.Unlock()
}

func record(k Kernel, n, flops, bytes int) {
	if !recEnabled {
		return
	}
	recMu.Lock()
	if recCounts != nil {
		op := &recCounts.Ops[k]
		op.Calls++
		op.N += int64(n)
		op.Flops += int64(flops)
		op.Bytes += int64(bytes)
	}
	recMu.Unlock()
}
