package blas

import (
	"sync"
	"sync/atomic"
)

// Kernel identifies a class of BLAS operation for accounting purposes.
// The classes mirror the kernels the paper benchmarks in Figures 1-6;
// routines not benchmarked individually are folded into the class with
// the same arithmetic-intensity profile.
type Kernel int

const (
	// KernelDcopy covers pure data movement (dcopy, dswap, fill).
	KernelDcopy Kernel = iota
	// KernelDaxpy covers streaming multiply-add kernels
	// (daxpy, dscal, element-wise multiply/add).
	KernelDaxpy
	// KernelDdot covers reduction kernels (ddot, dnrm2, dasum, idamax).
	KernelDdot
	// KernelDgemv covers matrix-vector kernels (dgemv, dger, dtrsv,
	// banded solves).
	KernelDgemv
	// KernelDgemm covers matrix-matrix kernels (dgemm, dtrsm, banded
	// factorizations).
	KernelDgemm
	numKernels
)

// String returns the reference-BLAS name of the kernel class.
func (k Kernel) String() string {
	switch k {
	case KernelDcopy:
		return "dcopy"
	case KernelDaxpy:
		return "daxpy"
	case KernelDdot:
		return "ddot"
	case KernelDgemv:
		return "dgemv"
	case KernelDgemm:
		return "dgemm"
	}
	return "unknown"
}

// Kernels lists all kernel classes in a stable order.
func Kernels() []Kernel {
	return []Kernel{KernelDcopy, KernelDaxpy, KernelDdot, KernelDgemv, KernelDgemm}
}

// Op is one recorded operation-count bucket.
type Op struct {
	Calls int64 // number of BLAS calls
	N     int64 // total problem size (sum over calls of the size metric)
	Flops int64 // total floating-point operations
	Bytes int64 // total bytes moved (load + store, ideal traffic)
}

// Counts accumulates operation counts per kernel class. The zero value
// is ready to use.
type Counts struct {
	Ops [numKernels]Op
}

// Add merges other into c.
func (c *Counts) Add(other *Counts) {
	for i := range c.Ops {
		c.Ops[i].Calls += other.Ops[i].Calls
		c.Ops[i].N += other.Ops[i].N
		c.Ops[i].Flops += other.Ops[i].Flops
		c.Ops[i].Bytes += other.Ops[i].Bytes
	}
}

// Sub subtracts other from c (used to compute per-stage deltas).
func (c *Counts) Sub(other *Counts) {
	for i := range c.Ops {
		c.Ops[i].Calls -= other.Ops[i].Calls
		c.Ops[i].N -= other.Ops[i].N
		c.Ops[i].Flops -= other.Ops[i].Flops
		c.Ops[i].Bytes -= other.Ops[i].Bytes
	}
}

// Scale multiplies every accumulated quantity by f (used to
// extrapolate measured per-element counts to larger meshes).
func (c *Counts) Scale(f float64) {
	for i := range c.Ops {
		c.Ops[i].Calls = int64(float64(c.Ops[i].Calls) * f)
		c.Ops[i].N = int64(float64(c.Ops[i].N) * f)
		c.Ops[i].Flops = int64(float64(c.Ops[i].Flops) * f)
		c.Ops[i].Bytes = int64(float64(c.Ops[i].Bytes) * f)
	}
}

// TotalFlops returns the total floating point operations across all
// kernel classes.
func (c *Counts) TotalFlops() int64 {
	var t int64
	for i := range c.Ops {
		t += c.Ops[i].Flops
	}
	return t
}

// TotalBytes returns the total ideal memory traffic across all kernel
// classes.
func (c *Counts) TotalBytes() int64 {
	var t int64
	for i := range c.Ops {
		t += c.Ops[i].Bytes
	}
	return t
}

// recording state. The default is a single global recorder: one atomic
// load on the hot path when nothing records. Goroutines that need an
// independent recording session while others run BLAS concurrently
// (the simulated MPI ranks under simnet's parallel scheduler) bind a
// per-thread recorder instead: BindThreadRecorder registers a slot
// keyed by the OS thread id, and Start/Stop/Snapshot/record transparently
// dispatch to the calling thread's slot when one exists. A bound
// goroutine must be locked to its OS thread (runtime.LockOSThread) for
// the lifetime of the binding, which also guarantees no other goroutine
// ever runs on — or records against — that thread.
var (
	recMu     sync.Mutex
	recCounts *Counts // global session, guarded by recMu

	// recActive counts active sessions, global plus per-thread, so the
	// disabled-path check stays one atomic load.
	recActive atomic.Int32
	// threadSlots maps OS thread id -> *threadRec; threadBound counts
	// entries so unbound processes skip the thread-id syscall entirely.
	threadSlots sync.Map
	threadBound atomic.Int32
)

// threadRec is one bound thread's recording slot. Only the owning
// (thread-locked) goroutine touches cur, so no lock is needed.
type threadRec struct {
	cur *Counts // nil between Start/Stop
}

// currentSlot returns the calling thread's recording slot, or nil.
func currentSlot() *threadRec {
	tid, ok := threadID()
	if !ok {
		return nil
	}
	v, ok := threadSlots.Load(tid)
	if !ok {
		return nil
	}
	return v.(*threadRec)
}

// ThreadRecordingSupported reports whether this platform can key
// recording sessions by OS thread (simnet's parallel scheduler requires
// it; without it ranks would corrupt each other's operation counts).
func ThreadRecordingSupported() bool {
	_, ok := threadID()
	return ok
}

// BindThreadRecorder gives the calling goroutine — which must already
// be locked to its OS thread — a private recording slot. Subsequent
// StartRecording/StopRecording/Snapshot calls from this goroutine
// operate on the slot and never touch the process-global session.
// Returns false (and binds nothing) when the platform cannot identify
// OS threads.
func BindThreadRecorder() bool {
	tid, ok := threadID()
	if !ok {
		return false
	}
	threadSlots.Store(tid, &threadRec{})
	threadBound.Add(1)
	return true
}

// UnbindThreadRecorder releases the calling thread's recording slot
// (ending any session still open on it).
func UnbindThreadRecorder() {
	tid, ok := threadID()
	if !ok {
		return
	}
	if v, loaded := threadSlots.LoadAndDelete(tid); loaded {
		if v.(*threadRec).cur != nil {
			recActive.Add(-1)
		}
		threadBound.Add(-1)
	}
}

// StartRecording directs all subsequent BLAS calls to accumulate into
// c until StopRecording is called. On a thread bound via
// BindThreadRecorder the session is thread-local; otherwise it is
// process-global and must not be enabled concurrently from multiple
// goroutines.
func StartRecording(c *Counts) {
	if threadBound.Load() > 0 {
		if s := currentSlot(); s != nil {
			if s.cur == nil {
				recActive.Add(1)
			}
			s.cur = c
			return
		}
	}
	recMu.Lock()
	if recCounts == nil {
		recActive.Add(1)
	}
	recCounts = c
	recMu.Unlock()
}

// StopRecording stops accumulation for the calling thread's session
// (thread-local if bound, global otherwise).
func StopRecording() {
	if threadBound.Load() > 0 {
		if s := currentSlot(); s != nil {
			if s.cur != nil {
				recActive.Add(-1)
			}
			s.cur = nil
			return
		}
	}
	recMu.Lock()
	if recCounts != nil {
		recActive.Add(-1)
	}
	recCounts = nil
	recMu.Unlock()
}

// Snapshot returns a copy of the currently accumulating counts, or a
// zero Counts if recording is disabled.
func Snapshot() Counts {
	if threadBound.Load() > 0 {
		if s := currentSlot(); s != nil {
			if s.cur == nil {
				return Counts{}
			}
			return *s.cur
		}
	}
	recMu.Lock()
	defer recMu.Unlock()
	if recCounts == nil {
		return Counts{}
	}
	return *recCounts
}

// RecordExternal merges externally computed counts (e.g. from the
// banded LAPACK routines, whose inner loops do not call back into
// BLAS) into the active recording session, if any.
func RecordExternal(c *Counts) {
	if recActive.Load() == 0 {
		return
	}
	if threadBound.Load() > 0 {
		if s := currentSlot(); s != nil {
			if s.cur != nil {
				s.cur.Add(c)
			}
			return
		}
	}
	recMu.Lock()
	if recCounts != nil {
		recCounts.Add(c)
	}
	recMu.Unlock()
}

func record(k Kernel, n, flops, bytes int) {
	if recActive.Load() == 0 {
		return
	}
	if threadBound.Load() > 0 {
		if s := currentSlot(); s != nil {
			// A bound thread outside a session records nowhere: the
			// global session (if any) belongs to other goroutines.
			if c := s.cur; c != nil {
				op := &c.Ops[k]
				op.Calls++
				op.N += int64(n)
				op.Flops += int64(flops)
				op.Bytes += int64(bytes)
			}
			return
		}
	}
	recMu.Lock()
	if recCounts != nil {
		op := &recCounts.Ops[k]
		op.Calls++
		op.N += int64(n)
		op.Flops += int64(flops)
		op.Bytes += int64(bytes)
	}
	recMu.Unlock()
}
