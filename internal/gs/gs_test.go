package gs

import (
	"math"
	"testing"

	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

func runWorld(t *testing.T, p int, body func(c *mpi.Comm)) {
	t.Helper()
	model := &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 10, BandwidthMBs: 100, OverheadUS: 1, EagerLimit: 32 << 10},
	}
	_, _, err := simnet.Run(p, model, func(n *simnet.Node) { body(mpi.World(n)) })
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankIsIdentity(t *testing.T) {
	runWorld(t, 1, func(c *mpi.Comm) {
		g := New(c, []int{5, 7, 9}, 2)
		vals := []float64{1, 2, 3}
		g.Combine(vals, Sum)
		if vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
			t.Errorf("vals changed: %v", vals)
		}
		if d := g.Dot(vals, vals); d != 14 {
			t.Errorf("Dot = %v, want 14", d)
		}
	})
}

func TestPairwiseSumTwoRanks(t *testing.T) {
	// Ranks share global id 100; each contributes its rank+1.
	results := make([][]float64, 2)
	runWorld(t, 2, func(c *mpi.Comm) {
		ids := []int{c.Rank() * 10, 100} // one private, one shared
		g := New(c, ids, 2)
		vals := []float64{float64(c.Rank() + 5), float64(c.Rank() + 1)}
		g.Combine(vals, Sum)
		results[c.Rank()] = vals
	})
	for r := 0; r < 2; r++ {
		if results[r][0] != float64(r+5) {
			t.Fatalf("rank %d private value changed: %v", r, results[r])
		}
		if results[r][1] != 3 { // 1 + 2
			t.Fatalf("rank %d shared sum = %v, want 3", r, results[r][1])
		}
	}
}

func TestManySharersGoThroughTree(t *testing.T) {
	// Global id 7 is shared by all 5 ranks (> PairwiseLimit 2): the
	// tree stage must sum all contributions.
	p := 5
	results := make([]float64, p)
	runWorld(t, p, func(c *mpi.Comm) {
		g := New(c, []int{7}, 2)
		if len(g.treeIdx) != 1 {
			t.Errorf("rank %d: id not routed to tree", c.Rank())
		}
		vals := []float64{float64(c.Rank() + 1)}
		g.Combine(vals, Sum)
		results[c.Rank()] = vals[0]
	})
	for r := 0; r < p; r++ {
		if results[r] != 15 {
			t.Fatalf("rank %d: sum = %v, want 15", r, results[r])
		}
	}
}

func TestThreeSharersPairwise(t *testing.T) {
	// With PairwiseLimit 3 an id shared by 3 ranks uses pairwise
	// exchanges of *original* contributions — no double counting.
	p := 4
	results := make([]float64, p)
	runWorld(t, p, func(c *mpi.Comm) {
		var ids []int
		if c.Rank() < 3 {
			ids = []int{42}
		} else {
			ids = []int{99}
		}
		g := New(c, ids, 3)
		vals := []float64{float64(c.Rank() + 1)}
		g.Combine(vals, Sum)
		results[c.Rank()] = vals[0]
	})
	for r := 0; r < 3; r++ {
		if results[r] != 6 { // 1+2+3
			t.Fatalf("rank %d: %v, want 6", r, results[r])
		}
	}
	if results[3] != 4 {
		t.Fatalf("rank 3 private value %v", results[3])
	}
}

func TestMinMax(t *testing.T) {
	p := 4
	mins := make([]float64, p)
	maxs := make([]float64, p)
	runWorld(t, p, func(c *mpi.Comm) {
		g := New(c, []int{1}, 2)
		v := []float64{float64(c.Rank()*c.Rank()) - 3}
		g.Combine(v, Min)
		mins[c.Rank()] = v[0]
		v[0] = float64(c.Rank()*c.Rank()) - 3
		g.Combine(v, Max)
		maxs[c.Rank()] = v[0]
	})
	for r := 0; r < p; r++ {
		if mins[r] != -3 || maxs[r] != 6 {
			t.Fatalf("rank %d: min %v max %v", r, mins[r], maxs[r])
		}
	}
}

func TestMultiplicity(t *testing.T) {
	runWorld(t, 3, func(c *mpi.Comm) {
		// id 1 on all 3, id 2 on ranks 0-1, id 3*rank private.
		ids := []int{1, 30 + c.Rank()}
		if c.Rank() < 2 {
			ids = append(ids, 2)
		}
		g := New(c, ids, 2)
		if g.Mult[0] != 3 {
			t.Errorf("rank %d: mult of id 1 = %v", c.Rank(), g.Mult[0])
		}
		if g.Mult[1] != 1 {
			t.Errorf("rank %d: mult of private id = %v", c.Rank(), g.Mult[1])
		}
		if c.Rank() < 2 && g.Mult[2] != 2 {
			t.Errorf("rank %d: mult of id 2 = %v", c.Rank(), g.Mult[2])
		}
	})
}

func TestDotCountsSharedOnce(t *testing.T) {
	// Two ranks share id 5 with consistent value 2 (after Combine);
	// each also has a private dof of value 1. Global dot(x, x) must be
	// 2*1 + 2*2 = 6, not 1+4+1+4.
	var dot float64
	runWorld(t, 2, func(c *mpi.Comm) {
		g := New(c, []int{c.Rank(), 5}, 2)
		x := []float64{1, 2}
		d := g.Dot(x, x)
		if c.Rank() == 0 {
			dot = d
		}
	})
	if math.Abs(dot-6) > 1e-12 {
		t.Fatalf("Dot = %v, want 6", dot)
	}
}

func TestCombineMixedPlan(t *testing.T) {
	// A realistic mix: a corner id shared by all, edges shared by 2,
	// private interiors — both stages in one Combine call.
	p := 4
	sums := make(map[int][]float64)
	results := make([][]float64, p)
	runWorld(t, p, func(c *mpi.Comm) {
		r := c.Rank()
		prev := (r + p - 1) % p
		// Ring of "edges": edge e_r connects ranks r and r+1. ids:
		// corner 1000 (all ranks), edge with next (e_r), edge with
		// prev (e_prev), private.
		ids := []int{1000, 2000 + r, 2000 + prev, 3000 + r}
		g := New(c, ids, 2)
		vals := []float64{1, float64(r), float64(r), 10}
		g.Combine(vals, Sum)
		results[r] = vals
	})
	_ = sums
	for r := 0; r < p; r++ {
		if results[r][0] != float64(p) {
			t.Fatalf("rank %d corner = %v, want %v", r, results[r][0], p)
		}
		next := (r + 1) % p
		if results[r][1] != float64(r+next) {
			t.Fatalf("rank %d edge(next) = %v, want %v", r, results[r][1], r+next)
		}
		if results[r][3] != 10 {
			t.Fatalf("rank %d private = %v", r, results[r][3])
		}
	}
}

func TestPadFactorKeepsValuesCorrect(t *testing.T) {
	// Message padding inflates wire traffic but must not change the
	// combined values.
	results := make([]float64, 2)
	runWorld(t, 2, func(c *mpi.Comm) {
		g := New(c, []int{5}, 2)
		g.PadFactor = 8
		vals := []float64{float64(c.Rank() + 1)}
		g.Combine(vals, Sum)
		results[c.Rank()] = vals[0]
	})
	for r, v := range results {
		if v != 3 {
			t.Fatalf("rank %d: %v, want 3", r, v)
		}
	}
}
