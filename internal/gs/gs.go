// Package gs implements the Tufo-Fischer gather-scatter communication
// interface (Tufo 1998) the paper's Nektar-ALE code uses for all its
// inter-processor communication: values attached to globally shared
// degrees of freedom are combined (summed, min'd or max'd) across the
// processors that share them, using
//
//   - pairwise exchanges for values shared by only a few processors
//     (partition-interface dofs typically touch 2), and
//   - a tree-based reduction (a packed Allreduce) for values shared by
//     many processors (corner dofs at partition cross points).
//
// As the paper notes, MPI_Alltoall is never used in this approach.
package gs

import (
	"sort"

	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Op mirrors the mpi reduction operators.
type Op = mpi.Op

// Re-exported reduction operators.
const (
	Sum = mpi.Sum
	Min = mpi.Min
	Max = mpi.Max
)

// GS is a gather-scatter handle bound to one rank's list of global
// dof ids.
type GS struct {
	comm *mpi.Comm

	// pairwise plan: per neighbor rank, the local indices (sorted by
	// global id) of dofs shared with that neighbor.
	nbr     []int   // neighbor ranks, ascending
	nbrIdx  [][]int // local indices shared with each neighbor
	treeIdx []int   // local indices handled by the tree stage
	treePos []int   // position of each tree dof in the packed tree vector
	treeLen int

	// Mult[i] is the number of ranks sharing local dof i (including
	// this one) — used for globally consistent inner products.
	Mult []float64

	// PairwiseLimit is the maximum sharer count routed through the
	// pairwise strategy (the rest go to the tree). The paper's GS
	// library uses "pairwise exchange ... for values shared by only a
	// few processors".
	PairwiseLimit int

	// PadFactor inflates the exchanged message sizes (payload padded
	// with zeros, ignored by the receiver). The benchmark harness uses
	// it to emulate paper-scale interface sizes from validation-scale
	// runs; 0 or 1 means no padding.
	PadFactor float64
}

// pad extends buf to PadFactor times its length with zeros.
func (g *GS) pad(buf []float64) []float64 {
	if g.PadFactor <= 1 {
		return buf
	}
	out := make([]float64, int(float64(len(buf))*g.PadFactor))
	copy(out, buf)
	return out
}

// New builds a gather-scatter plan for the given global ids (one per
// local dof; ids may repeat across ranks but not within a rank). All
// ranks must call New collectively.
func New(comm *mpi.Comm, ids []int, pairwiseLimit int) *GS {
	if pairwiseLimit < 2 {
		pairwiseLimit = 2
	}
	g := &GS{comm: comm, PairwiseLimit: pairwiseLimit}
	p := comm.Size()
	g.Mult = make([]float64, len(ids))
	for i := range g.Mult {
		g.Mult[i] = 1
	}
	if p == 1 {
		return g
	}

	// Exchange id lists: gather to 0, broadcast the concatenation.
	// (Setup cost, not benchmarked.)
	enc := make([]float64, len(ids))
	for i, id := range ids {
		enc[i] = float64(id)
	}
	all := comm.Gather(0, enc)
	var flatLens []float64
	var flat []float64
	if comm.Rank() == 0 {
		for _, l := range all {
			flatLens = append(flatLens, float64(len(l)))
			flat = append(flat, l...)
		}
	}
	flatLens = comm.Bcast(0, flatLens)
	flat = comm.Bcast(0, flat)

	// sharers[id] = sorted ranks holding id.
	sharers := map[int][]int{}
	off := 0
	for r := 0; r < p; r++ {
		l := int(flatLens[r])
		for _, v := range flat[off : off+l] {
			id := int(v)
			sharers[id] = append(sharers[id], r)
		}
		off += l
	}

	me := comm.Rank()
	local := map[int]int{} // global id -> local index
	for i, id := range ids {
		local[id] = i
	}

	// Build the pairwise and tree plans.
	nbrSet := map[int][]int{} // neighbor rank -> local indices
	var treeIDs []int
	for i, id := range ids {
		sh := sharers[id]
		g.Mult[i] = float64(len(sh))
		if len(sh) <= 1 {
			continue
		}
		if len(sh) <= g.PairwiseLimit {
			for _, r := range sh {
				if r != me {
					nbrSet[r] = append(nbrSet[r], i)
				}
			}
		} else {
			treeIDs = append(treeIDs, id)
		}
	}
	for r := range nbrSet {
		g.nbr = append(g.nbr, r)
	}
	sort.Ints(g.nbr)
	g.nbrIdx = make([][]int, len(g.nbr))
	for ni, r := range g.nbr {
		idx := nbrSet[r]
		// Sort by global id so both sides pack identically.
		sort.Slice(idx, func(a, b int) bool { return ids[idx[a]] < ids[idx[b]] })
		g.nbrIdx[ni] = idx
	}

	// Tree stage: a globally agreed ordering of all many-shared ids.
	treeAll := map[int]bool{}
	for id, sh := range sharers {
		if len(sh) > g.PairwiseLimit {
			treeAll[id] = true
		}
	}
	var treeOrder []int
	for id := range treeAll {
		treeOrder = append(treeOrder, id)
	}
	sort.Ints(treeOrder)
	g.treeLen = len(treeOrder)
	pos := map[int]int{}
	for i, id := range treeOrder {
		pos[id] = i
	}
	for _, id := range treeIDs {
		g.treeIdx = append(g.treeIdx, local[id])
		g.treePos = append(g.treePos, pos[id])
	}
	return g
}

// Combine performs the gather-scatter: after the call, vals[i] holds
// op over all ranks' values at the same global id.
func (g *GS) Combine(vals []float64, op Op) {
	if g.comm.Size() == 1 {
		return
	}
	// Pairwise stage: send this rank's *original* contribution to each
	// sharer (nonblocking, so multi-neighbor cycles cannot deadlock),
	// then fold in each neighbor's original contribution.
	const tag = 1 << 22
	var reqs []*simnet.Request
	for ni, r := range g.nbr {
		idx := g.nbrIdx[ni]
		buf := make([]float64, len(idx))
		for j, li := range idx {
			buf[j] = vals[li]
		}
		reqs = append(reqs, g.comm.Isend(r, tag, g.pad(buf)))
	}
	for ni, r := range g.nbr {
		idx := g.nbrIdx[ni]
		got := g.comm.Recv(r, tag)
		switch op {
		case Sum:
			for j, li := range idx {
				vals[li] += got[j]
			}
		case Min:
			for j, li := range idx {
				if got[j] < vals[li] {
					vals[li] = got[j]
				}
			}
		case Max:
			for j, li := range idx {
				if got[j] > vals[li] {
					vals[li] = got[j]
				}
			}
		}
	}
	for _, rq := range reqs {
		g.comm.Wait(rq)
	}
	// Tree stage: packed reduction over the many-shared ids.
	if g.treeLen > 0 {
		packed := make([]float64, g.treeLen)
		if op == Min || op == Max {
			inf := 1e308
			if op == Max {
				inf = -1e308
			}
			for i := range packed {
				packed[i] = inf
			}
		}
		for j, li := range g.treeIdx {
			packed[g.treePos[j]] = vals[li]
		}
		packed = g.comm.Allreduce(g.pad(packed), op)
		for j, li := range g.treeIdx {
			vals[li] = packed[g.treePos[j]]
		}
	}
}

// MeanPairwiseLen returns the mean number of dofs exchanged with each
// pairwise neighbor (0 when there are none) — the per-neighbor
// interface size, used by the paper-scale extrapolation to size its
// phantom messages.
func (g *GS) MeanPairwiseLen() float64 {
	if len(g.nbrIdx) == 0 {
		return 0
	}
	total := 0
	for _, idx := range g.nbrIdx {
		total += len(idx)
	}
	return float64(total) / float64(len(g.nbrIdx))
}

// Dot computes the globally consistent inner product of two local
// vectors whose entries live on shared dofs: each global dof is
// counted exactly once via the multiplicity weights.
func (g *GS) Dot(a, b []float64) float64 {
	var local float64
	for i := range a {
		local += a[i] * b[i] / g.Mult[i]
	}
	if g.comm.Size() == 1 {
		return local
	}
	return g.comm.Allreduce([]float64{local}, Sum)[0]
}
