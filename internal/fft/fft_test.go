package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func TestPlanRejectsNonPositiveLengths(t *testing.T) {
	for _, n := range []int{0, -1, -4} {
		if _, err := NewPlan(n); err == nil {
			t.Fatalf("NewPlan(%d) should fail", n)
		}
	}
	// The mixed-radix planner accepts every positive length, including
	// the ones the radix-2-only planner used to reject.
	for _, n := range []int{3, 6, 12, 15, 24, 360} {
		if _, err := NewPlan(n); err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
	}
}

func TestTransformMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32, 128, 3, 5, 6, 12, 24, 45, 90, 7, 14, 49, 77} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		p.Transform(got, false)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: X[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (rng.Intn(8) + 1)
		p, _ := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		p.Transform(y, false)
		p.Transform(y, true)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformDelta(t *testing.T) {
	// DFT of a delta is all-ones.
	p, _ := NewPlan(8)
	x := make([]complex128, 8)
	x[0] = 1
	p.Transform(x, false)
	for i := range x {
		if cmplx.Abs(x[i]-1) > 1e-12 {
			t.Fatalf("X[%d] = %v, want 1", i, x[i])
		}
	}
}

func TestTransformParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	p, _ := NewPlan(n)
	x := make([]complex128, n)
	var tim float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		tim += real(x[i]) * real(x[i])
	}
	p.Transform(x, false)
	var freq float64
	for _, v := range x {
		freq += real(v)*real(v) + imag(v)*imag(v)
	}
	freq /= float64(n)
	if math.Abs(tim-freq) > 1e-9 {
		t.Fatalf("Parseval: time %v vs freq %v", tim, freq)
	}
}

func TestRealForwardMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 8, 64, 6, 12, 24, 48, 90} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		cx := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			cx[i] = complex(x[i], 0)
		}
		want := naiveDFT(cx, false)
		out := make([]complex128, n/2+1)
		rp.Forward(x, out)
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(out[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: X[%d] = %v, want %v", n, k, out[k], want[k])
			}
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (rng.Intn(7) + 1)
		rp, _ := NewRealPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := make([]complex128, n/2+1)
		rp.Forward(x, spec)
		back := make([]float64, n)
		rp.Inverse(spec, back)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRealCosineMode(t *testing.T) {
	// x_j = cos(2 pi m j / n) has spectrum n/2 at bin m only.
	n, m := 32, 5
	rp, _ := NewRealPlan(n)
	x := make([]float64, n)
	for j := range x {
		x[j] = math.Cos(2 * math.Pi * float64(m) * float64(j) / float64(n))
	}
	spec := make([]complex128, n/2+1)
	rp.Forward(x, spec)
	for k := range spec {
		want := 0.0
		if k == m {
			want = float64(n) / 2
		}
		if cmplx.Abs(spec[k]-complex(want, 0)) > 1e-9 {
			t.Fatalf("spec[%d] = %v, want %v", k, spec[k], want)
		}
	}
}

func TestSpectralDerivative(t *testing.T) {
	// d/dz of sin(2z) over [0, 2pi) via ik multiplication.
	n := 64
	rp, _ := NewRealPlan(n)
	x := make([]float64, n)
	for j := range x {
		z := 2 * math.Pi * float64(j) / float64(n)
		x[j] = math.Sin(2 * z)
	}
	spec := make([]complex128, n/2+1)
	rp.Forward(x, spec)
	for k := range spec {
		spec[k] *= complex(0, float64(k))
	}
	// Nyquist mode of a derivative must be zeroed for a real result.
	spec[n/2] = 0
	dx := make([]float64, n)
	rp.Inverse(spec, dx)
	for j := range dx {
		z := 2 * math.Pi * float64(j) / float64(n)
		want := 2 * math.Cos(2*z)
		if math.Abs(dx[j]-want) > 1e-9 {
			t.Fatalf("derivative at j=%d: %v, want %v", j, dx[j], want)
		}
	}
}

func TestRealPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 1, 3, 15, -6} {
		if _, err := NewRealPlan(n); err == nil {
			t.Fatalf("NewRealPlan(%d) should fail", n)
		}
	}
	for _, n := range []int{2, 6, 12, 24, 30, 48} {
		if _, err := NewRealPlan(n); err != nil {
			t.Fatalf("NewRealPlan(%d): %v", n, err)
		}
	}
}
