package fft

import (
	"math"
	"testing"
)

// TestRealRoundTripEverySize pins the Forward/Inverse identity on every
// supported size from the n=2 degenerate plan (whose half-plan is a
// single point) up through 256 — deterministically, so the edge sizes
// are covered on every run rather than when the property sampler
// happens to draw them.
func TestRealRoundTripEverySize(t *testing.T) {
	for n := 2; n <= 256; n *= 2 {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(0.7*float64(i+1)) + 0.3*math.Cos(1.9*float64(i*i+1))
		}
		spec := make([]complex128, n/2+1)
		back := make([]float64, n)
		rp.Forward(x, spec)
		rp.Inverse(spec, back)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("n=%d: Inverse(Forward(x))[%d] = %g, want %g", n, i, back[i], x[i])
			}
		}
		// The other direction: a valid half-complex spectrum (real DC
		// and Nyquist bins) survives Forward(Inverse(s)) too.
		for k := range spec {
			spec[k] = complex(float64(k+1), 0.5*float64(k))
		}
		spec[0] = complex(real(spec[0]), 0)
		spec[n/2] = complex(real(spec[n/2]), 0)
		rp.Inverse(spec, x)
		spec2 := make([]complex128, n/2+1)
		rp.Forward(x, spec2)
		for k := range spec {
			if d := spec2[k] - spec[k]; math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
				t.Fatalf("n=%d: Forward(Inverse(s))[%d] = %v, want %v", n, k, spec2[k], spec[k])
			}
		}
	}
}

// TestPlansAreAllocationFree proves plan reuse allocates nothing: all
// scratch lives in the plan, so the per-step transform storm in the
// spectral solvers puts no pressure on the garbage collector.
func TestPlansAreAllocationFree(t *testing.T) {
	const n = 64
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i), float64(n-i))
	}
	if avg := testing.AllocsPerRun(100, func() {
		p.Transform(x, false)
		p.Transform(x, true)
	}); avg != 0 {
		t.Errorf("Plan.Transform allocates %.1f objects per round trip, want 0", avg)
	}

	rp, err := NewRealPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	xr := make([]float64, n)
	for i := range xr {
		xr[i] = float64(i % 7)
	}
	spec := make([]complex128, n/2+1)
	if avg := testing.AllocsPerRun(100, func() {
		rp.Forward(xr, spec)
		rp.Inverse(spec, xr)
	}); avg != 0 {
		t.Errorf("RealPlan Forward+Inverse allocates %.1f objects per round trip, want 0", avg)
	}
}

// TestBatchedTransformsAreAllocationFree: the Many/ManyReal slab walks
// reuse the single plan workspace — zero allocations per batch after
// plan construction, at a mixed-radix (non-power-of-two) length so the
// radix-3/5 and radix-4 passes are all on the hook.
func TestBatchedTransformsAreAllocationFree(t *testing.T) {
	const n, rows = 48, 6 // 48 = 2^4 * 3: radix 4,4,3 passes
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, rows*n)
	for i := range x {
		x[i] = complex(float64(i%11), float64(i%7))
	}
	if avg := testing.AllocsPerRun(100, func() {
		p.Many(x, rows, false)
		p.Many(x, rows, true)
	}); avg != 0 {
		t.Errorf("Plan.Many allocates %.1f objects per batched round trip, want 0", avg)
	}

	rp, err := NewRealPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	xr := make([]float64, rows*n)
	for i := range xr {
		xr[i] = float64(i % 13)
	}
	spec := make([]complex128, rows*(n/2+1))
	if avg := testing.AllocsPerRun(100, func() {
		rp.ManyReal(xr, spec, rows, false)
		rp.ManyReal(xr, spec, rows, true)
	}); avg != 0 {
		t.Errorf("RealPlan.ManyReal allocates %.1f objects per batched round trip, want 0", avg)
	}
}
