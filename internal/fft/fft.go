// Package fft implements the fast Fourier transforms used by the
// Fourier-spectral/hp solver Nektar-F and the pseudospectral
// turbulence solvers: a mixed-radix complex transform and a
// real-to-half-complex wrapper.
//
// The planner factors the length into radix-4 and radix-2 passes
// (powers of two split as 4·4·…·(2) — fewer, wider passes than an
// all-radix-2 ladder), dedicated radix-3 and radix-5 butterflies with
// precomputed twiddles, and a generic direct-DFT butterfly for any
// other prime factor. NewPlan therefore accepts every length n >= 1;
// lengths of the form 2^a·3^b·5^c run entirely in the dedicated
// butterflies and are the fast set the spectral pipelines use (the
// exact-3/2-rule padded grid M = 3N/2 is 2^(a-1)·3^(b+1)·5^c for a
// power-of-two N), while a stray larger prime p costs an O(p²) pass —
// correct, but not a size a hot path should pick.
//
// The transform engine is a Stockham autosort: each pass reads one
// buffer and scatters to the other, so there is no bit-reversal
// permutation and every pass walks both buffers sequentially. All
// scratch lives in the plan; steady-state transforms allocate nothing,
// and the batched entry points (Plan.Many, RealPlan.ManyReal) walk all
// rows of a slab in one call against one shared workspace.
package fft

import (
	"fmt"
	"math"

	"nektar/internal/blas"
)

// stage is one Stockham pass: the sub-length l of the recursion level,
// its radix r, and m = l/r butterflies per batch. tw holds the stage
// twiddles w_l^{p·j} for p in 0..m-1, j in 1..r-1, flattened row-major
// by p; root holds the r-th roots of unity w_r^k for the generic
// butterfly (nil for the dedicated radices 2..5).
type stage struct {
	r, m int
	tw   []complex128
	root []complex128
}

// Plan holds the factorization, per-stage twiddle tables, and the
// ping-pong scratch buffer for transforms of a fixed length.
type Plan struct {
	N int

	stages  []stage
	scratch []complex128 // Stockham partner buffer, length N
	gather  []complex128 // generic-butterfly input staging, length max radix
	flops   int64        // modeled flop count per transform (5 N log2 N)
}

// factorize splits n into the stage radices, greedily taking 4s from
// the power-of-two part (radix2Only suppresses that, keeping the
// legacy all-radix-2 ladder for A/B benchmarks), then 3s, 5s, and
// finally any remaining primes by trial division.
func factorize(n int, radix2Only bool) []int {
	var fs []int
	if radix2Only {
		for n%2 == 0 {
			fs = append(fs, 2)
			n /= 2
		}
	} else {
		for n%4 == 0 {
			fs = append(fs, 4)
			n /= 4
		}
		if n%2 == 0 {
			fs = append(fs, 2)
			n /= 2
		}
	}
	for _, r := range []int{3, 5} {
		for n%r == 0 {
			fs = append(fs, r)
			n /= r
		}
	}
	for d := 7; d*d <= n; d += 2 {
		for n%d == 0 {
			fs = append(fs, d)
			n /= d
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// Smooth5 reports whether every prime factor of n is 2, 3, or 5 — the
// lengths the planner handles entirely with dedicated butterflies.
// The spectral front ends validate grid sizes against this set so the
// de-aliased hot path never falls back to the generic-prime pass.
func Smooth5(n int) bool {
	if n < 1 {
		return false
	}
	for _, r := range []int{2, 3, 5} {
		for n%r == 0 {
			n /= r
		}
	}
	return n == 1
}

// NewPlan creates a plan for any length n >= 1. All lengths are
// accepted; see the package comment for which ones are fast.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: length %d must be >= 1 (fast lengths are 2^a*3^b*5^c)", n)
	}
	return newPlan(n, false), nil
}

// NewRadix2Plan creates a plan restricted to the all-radix-2 ladder
// the package shipped before the mixed-radix planner. It exists so
// `fftbench` can A/B the radix-4/2 split against the legacy ladder at
// matched power-of-two sizes; everything else should use NewPlan.
func NewRadix2Plan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: radix-2 plan length %d is not a power of two", n)
	}
	return newPlan(n, true), nil
}

func newPlan(n int, radix2Only bool) *Plan {
	p := &Plan{N: n}
	maxR := 1
	l := n
	for _, r := range factorize(n, radix2Only) {
		m := l / r
		st := stage{r: r, m: m}
		// Stage twiddles w_l^{p*j} = exp(-2*pi*i*p*j/l), j = 1..r-1.
		st.tw = make([]complex128, m*(r-1))
		for pp := 0; pp < m; pp++ {
			for j := 1; j < r; j++ {
				ang := -2 * math.Pi * float64(pp*j%l) / float64(l)
				st.tw[pp*(r-1)+j-1] = complex(math.Cos(ang), math.Sin(ang))
			}
		}
		if r > 5 {
			st.root = make([]complex128, r)
			for k := 0; k < r; k++ {
				ang := -2 * math.Pi * float64(k) / float64(r)
				st.root[k] = complex(math.Cos(ang), math.Sin(ang))
			}
			if r > maxR {
				maxR = r
			}
		}
		p.stages = append(p.stages, st)
		l = m
	}
	p.scratch = make([]complex128, n)
	if maxR > 1 {
		p.gather = make([]complex128, maxR)
	}
	if n > 1 {
		p.flops = int64(5 * float64(n) * math.Log2(float64(n)))
	}
	return p
}

// conjIf conjugates w for the inverse transform.
func conjIf(w complex128, inverse bool) complex128 {
	if inverse {
		return complex(real(w), -imag(w))
	}
	return w
}

// pass runs one Stockham stage from src to dst: src holds the data
// with batch stride s, and the radix-r small DFT of the m-strided
// gather lands contiguously (times the stage twiddle) in dst.
func (p *Plan) pass(st *stage, src, dst []complex128, s int, inverse bool) {
	r, m := st.r, st.m
	switch r {
	case 2:
		for pp := 0; pp < m; pp++ {
			w := conjIf(st.tw[pp], inverse)
			i0, o0 := s*pp, s*2*pp
			for q := 0; q < s; q++ {
				a := src[q+i0]
				b := src[q+i0+s*m]
				dst[q+o0] = a + b
				dst[q+o0+s] = (a - b) * w
			}
		}
	case 4:
		// sigma is the -i of the forward radix-4 butterfly; +i inverse.
		sigma := -1.0
		if inverse {
			sigma = 1.0
		}
		for pp := 0; pp < m; pp++ {
			w1 := conjIf(st.tw[3*pp], inverse)
			w2 := conjIf(st.tw[3*pp+1], inverse)
			w3 := conjIf(st.tw[3*pp+2], inverse)
			i0, o0 := s*pp, s*4*pp
			for q := 0; q < s; q++ {
				a0 := src[q+i0]
				a1 := src[q+i0+s*m]
				a2 := src[q+i0+2*s*m]
				a3 := src[q+i0+3*s*m]
				t0, t1 := a0+a2, a0-a2
				t2, t3 := a1+a3, a1-a3
				jt3 := complex(-sigma*imag(t3), sigma*real(t3)) // sigma*i*t3
				dst[q+o0] = t0 + t2
				dst[q+o0+s] = (t1 + jt3) * w1
				dst[q+o0+2*s] = (t0 - t2) * w2
				dst[q+o0+3*s] = (t1 - jt3) * w3
			}
		}
	case 3:
		// w3 = exp(-2*pi*i/3) = -1/2 - i*sqrt(3)/2 (conjugated inverse).
		v := -math.Sqrt(3) / 2
		if inverse {
			v = -v
		}
		for pp := 0; pp < m; pp++ {
			w1 := conjIf(st.tw[2*pp], inverse)
			w2 := conjIf(st.tw[2*pp+1], inverse)
			i0, o0 := s*pp, s*3*pp
			for q := 0; q < s; q++ {
				a0 := src[q+i0]
				a1 := src[q+i0+s*m]
				a2 := src[q+i0+2*s*m]
				sum := a1 + a2
				d := a1 - a2
				mid := a0 - 0.5*sum
				jvd := complex(-v*imag(d), v*real(d)) // i*v*d
				dst[q+o0] = a0 + sum
				dst[q+o0+s] = (mid + jvd) * w1
				dst[q+o0+2*s] = (mid - jvd) * w2
			}
		}
	case 5:
		// cos/sin of 2*pi/5 and 4*pi/5; the sine terms flip for inverse.
		const (
			c1 = 0.30901699437494742 // cos(2*pi/5)
			c2 = -0.8090169943749475 // cos(4*pi/5)
			s1 = 0.9510565162951535  // sin(2*pi/5)
			s2 = 0.5877852522924731  // sin(4*pi/5)
		)
		sg := 1.0
		if inverse {
			sg = -1.0
		}
		for pp := 0; pp < m; pp++ {
			w1 := conjIf(st.tw[4*pp], inverse)
			w2 := conjIf(st.tw[4*pp+1], inverse)
			w3 := conjIf(st.tw[4*pp+2], inverse)
			w4 := conjIf(st.tw[4*pp+3], inverse)
			i0, o0 := s*pp, s*5*pp
			for q := 0; q < s; q++ {
				a0 := src[q+i0]
				a1 := src[q+i0+s*m]
				a2 := src[q+i0+2*s*m]
				a3 := src[q+i0+3*s*m]
				a4 := src[q+i0+4*s*m]
				p1, d1 := a1+a4, a1-a4
				p2, d2 := a2+a3, a2-a3
				e1 := a0 + c1*p1 + c2*p2
				e2 := a0 + c2*p1 + c1*p2
				o1 := s1*d1 + s2*d2
				o2 := s2*d1 - s1*d2
				// h = -sigma*i*o with sigma=+1 forward: X1 = e1 - i*o1.
				h1 := complex(sg*imag(o1), -sg*real(o1))
				h2 := complex(sg*imag(o2), -sg*real(o2))
				dst[q+o0] = a0 + p1 + p2
				dst[q+o0+s] = (e1 + h1) * w1
				dst[q+o0+2*s] = (e2 + h2) * w2
				dst[q+o0+3*s] = (e2 - h2) * w3
				dst[q+o0+4*s] = (e1 - h1) * w4
			}
		}
	default:
		// Generic prime butterfly: a direct O(r^2) DFT against the
		// precomputed r-th roots. Only stray non-{2,3,5} factors land
		// here; the spectral grids never do.
		for pp := 0; pp < m; pp++ {
			i0, o0 := s*pp, s*r*pp
			for q := 0; q < s; q++ {
				g := p.gather[:r]
				for i := 0; i < r; i++ {
					g[i] = src[q+i0+i*s*m]
				}
				dst[q+o0] = 0
				for i := 0; i < r; i++ {
					dst[q+o0] += g[i]
				}
				for j := 1; j < r; j++ {
					acc := g[0]
					for i := 1; i < r; i++ {
						acc += g[i] * conjIf(st.root[i*j%r], inverse)
					}
					dst[q+o0+j*s] = acc * conjIf(st.tw[pp*(r-1)+j-1], inverse)
				}
			}
		}
	}
}

// transform is the unrecorded Stockham driver: ping-pong between x and
// the plan scratch, copying back when the stage count is odd.
func (p *Plan) transform(x []complex128, inverse bool) {
	src, dst := x, p.scratch
	s := 1
	for i := range p.stages {
		st := &p.stages[i]
		p.pass(st, src, dst, s, inverse)
		s *= st.r
		src, dst = dst, src
	}
	if &src[0] != &x[0] {
		copy(x, src)
	}
	if inverse {
		inv := 1 / float64(p.N)
		for i := range x {
			x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
		}
	}
}

// Transform computes the in-place complex DFT of x (length N).
// inverse selects the inverse transform, which includes the 1/N
// normalization so that Transform(Transform(x), true) == x.
func (p *Plan) Transform(x []complex128, inverse bool) {
	if len(x) != p.N {
		panic(fmt.Sprintf("fft: length %d, plan is for %d", len(x), p.N))
	}
	recordFFT(p.N, 1, p.flops)
	p.transform(x, inverse)
}

// Many transforms rows consecutive length-N rows of x in place — the
// batched entry point the slab pipelines walk a whole spectral slab
// with. One workspace and one cost-model record cover the entire
// batch, and steady-state calls allocate nothing.
func (p *Plan) Many(x []complex128, rows int, inverse bool) {
	if len(x) != rows*p.N {
		panic(fmt.Sprintf("fft: Many got %d values, plan wants %d rows x %d", len(x), rows, p.N))
	}
	recordFFT(p.N, rows, p.flops)
	for i := 0; i < rows; i++ {
		p.transform(x[i*p.N:(i+1)*p.N], inverse)
	}
}

// recordFFT accounts FFT work with the blas counters so the machine
// models can price it: rows transforms of length n at ~5 n log2(n)
// flops each, streamed as daxpy-class work.
func recordFFT(n, rows int, flopsPer int64) {
	var c blas.Counts
	passes := int64(math.Log2(float64(n))) + 1
	c.Ops[blas.KernelDaxpy] = blas.Op{
		Calls: int64(rows),
		N:     int64(n * rows),
		Flops: flopsPer * int64(rows),
		Bytes: int64(16*n*rows) * passes,
	}
	blas.RecordExternal(&c)
}

// RealPlan transforms real sequences of even length n to half-complex
// spectra of n/2+1 coefficients, via a half-length complex plan.
type RealPlan struct {
	N    int
	half *Plan
	z    []complex128 // packed even/odd staging, length N/2
}

// NewRealPlan creates a real-transform plan for even n >= 2 (the
// even/odd packing needs n/2 integral; every even 2^a*3^b*5^c length
// is fast, like the complex planner).
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("fft: real length %d must be even and >= 2 (fast lengths are even 2^a*3^b*5^c)", n)
	}
	hp, err := NewPlan(n / 2)
	if err != nil {
		return nil, err
	}
	return &RealPlan{N: n, half: hp, z: make([]complex128, n/2)}, nil
}

// Forward computes the spectrum of the real sequence x (length N)
// into out (length N/2+1): out[k] = sum_j x[j] exp(-2*pi*i*j*k/N).
// out[0] and out[N/2] have zero imaginary parts.
func (rp *RealPlan) Forward(x []float64, out []complex128) {
	n, h := rp.N, rp.N/2
	if len(x) != n || len(out) != h+1 {
		panic("fft: RealPlan.Forward length mismatch")
	}
	z := rp.z
	for i := 0; i < h; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	rp.half.Transform(z, false)
	// Untangle even/odd spectra.
	for k := 0; k <= h; k++ {
		var zk, zNk complex128
		if k == h {
			zk = z[0]
			zNk = z[0]
		} else {
			zk = z[k]
			if k == 0 {
				zNk = z[0]
			} else {
				zNk = z[h-k]
			}
		}
		even := complex(0.5*(real(zk)+real(zNk)), 0.5*(imag(zk)-imag(zNk)))
		odd := complex(0.5*(imag(zk)+imag(zNk)), 0.5*(real(zNk)-real(zk)))
		ang := -2 * math.Pi * float64(k) / float64(n)
		w := complex(math.Cos(ang), math.Sin(ang))
		out[k] = even + w*odd
	}
	out[0] = complex(real(out[0]), 0)
	out[h] = complex(real(out[h]), 0)
}

// Inverse reconstructs the real sequence from a half-complex spectrum,
// including the 1/N normalization (Inverse(Forward(x)) == x).
func (rp *RealPlan) Inverse(spec []complex128, x []float64) {
	n, h := rp.N, rp.N/2
	if len(spec) != h+1 || len(x) != n {
		panic("fft: RealPlan.Inverse length mismatch")
	}
	z := rp.z
	// Repack the half-complex spectrum into the length-h complex
	// spectrum of the interleaved sequence.
	// With X the full spectrum, E_k = (X_k + X_{k+h})/2 and
	// O_k = w^{-k}(X_k - X_{k+h})/2 recover the even/odd sample
	// spectra; X_{k+h} = conj(X_{h-k}) by real-input symmetry.
	for k := 0; k < h; k++ {
		sk := spec[k]
		var xkh complex128 // X_{k + N/2}
		if k == 0 {
			xkh = spec[h]
		} else {
			xkh = complex(real(spec[h-k]), -imag(spec[h-k]))
		}
		even := (sk + xkh) * 0.5
		ang := 2 * math.Pi * float64(k) / float64(n)
		w := complex(math.Cos(ang), math.Sin(ang))
		odd := w * (sk - xkh) * 0.5
		z[k] = complex(real(even)-imag(odd), imag(even)+real(odd))
	}
	rp.half.Transform(z, true)
	for i := 0; i < h; i++ {
		x[2*i] = real(z[i])
		x[2*i+1] = imag(z[i])
	}
}

// ManyReal batch-transforms rows rows in one call with zero
// steady-state allocations: forward takes rows*N reals in x to
// rows*(N/2+1) half-complex rows in spec; inverse goes the other way.
func (rp *RealPlan) ManyReal(x []float64, spec []complex128, rows int, inverse bool) {
	n, h := rp.N, rp.N/2
	if len(x) != rows*n || len(spec) != rows*(h+1) {
		panic(fmt.Sprintf("fft: ManyReal got %d reals / %d coeffs, plan wants %d rows of %d / %d",
			len(x), len(spec), rows, n, h+1))
	}
	for i := 0; i < rows; i++ {
		xr := x[i*n : (i+1)*n]
		sr := spec[i*(h+1) : (i+1)*(h+1)]
		if inverse {
			rp.Inverse(sr, xr)
		} else {
			rp.Forward(xr, sr)
		}
	}
}
