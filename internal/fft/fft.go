// Package fft implements the fast Fourier transforms used by the
// Fourier-spectral/hp solver Nektar-F for its homogeneous (spanwise)
// direction: an iterative radix-2 complex transform and a
// real-to-half-complex wrapper. Lengths must be powers of two, the
// configuration used in all the paper's Nektar-F runs (the number of
// Fourier planes per processor is 2, and plane counts are 4, 8, 16...).
package fft

import (
	"fmt"
	"math"
	"math/bits"

	"nektar/internal/blas"
)

// Plan holds precomputed twiddle factors and the bit-reversal
// permutation for transforms of a fixed power-of-two length.
type Plan struct {
	N       int
	rev     []int
	wRe     []float64 // forward twiddles, packed per stage
	wIm     []float64
	stageW  []int // offset of each stage's twiddles
	scratch []complex128
}

// NewPlan creates a plan for length n (a power of two >= 1).
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	p := &Plan{N: n}
	logN := bits.TrailingZeros(uint(n))
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
	}
	// Twiddles for each stage: stage s has half := 2^s butterflies
	// per group with w = exp(-2*pi*i*k/2^(s+1)).
	total := 0
	for s := 0; s < logN; s++ {
		total += 1 << s
	}
	p.wRe = make([]float64, total)
	p.wIm = make([]float64, total)
	p.stageW = make([]int, logN)
	off := 0
	for s := 0; s < logN; s++ {
		p.stageW[s] = off
		half := 1 << s
		for k := 0; k < half; k++ {
			ang := -math.Pi * float64(k) / float64(half)
			p.wRe[off+k] = math.Cos(ang)
			p.wIm[off+k] = math.Sin(ang)
		}
		off += half
	}
	p.scratch = make([]complex128, n)
	return p, nil
}

// Transform computes the in-place complex DFT of x (length N).
// inverse selects the inverse transform, which includes the 1/N
// normalization so that Transform(Transform(x), true) == x.
func (p *Plan) Transform(x []complex128, inverse bool) {
	n := p.N
	if len(x) != n {
		panic(fmt.Sprintf("fft: length %d, plan is for %d", len(x), n))
	}
	// Account the 5*N*log2(N) flops of an FFT as daxpy-class
	// streaming work for the machine cost models.
	logN := bits.TrailingZeros(uint(n))
	recordFFT(n, logN)

	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for s := 0; s < logN; s++ {
		half := 1 << s
		step := half << 1
		off := p.stageW[s]
		for base := 0; base < n; base += step {
			for k := 0; k < half; k++ {
				wre, wim := p.wRe[off+k], p.wIm[off+k]
				if inverse {
					wim = -wim
				}
				a := x[base+k]
				b := x[base+k+half]
				tr := wre*real(b) - wim*imag(b)
				ti := wre*imag(b) + wim*real(b)
				x[base+k] = complex(real(a)+tr, imag(a)+ti)
				x[base+k+half] = complex(real(a)-tr, imag(a)-ti)
			}
		}
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range x {
			x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
		}
	}
}

// recordFFT accounts FFT work with the blas counters so the machine
// models can price it.
func recordFFT(n, logN int) {
	var c blas.Counts
	fl := int64(5 * n * logN)
	c.Ops[blas.KernelDaxpy] = blas.Op{Calls: 1, N: int64(n), Flops: fl, Bytes: int64(16 * n * (logN + 1))}
	blas.RecordExternal(&c)
}

// RealPlan transforms real sequences of even power-of-two length n to
// half-complex spectra of n/2+1 coefficients.
type RealPlan struct {
	N    int
	half *Plan
}

// NewRealPlan creates a real-transform plan for even power-of-two n
// (n >= 2).
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: real length %d is not an even power of two", n)
	}
	hp, err := NewPlan(n / 2)
	if err != nil {
		return nil, err
	}
	return &RealPlan{N: n, half: hp}, nil
}

// Forward computes the spectrum of the real sequence x (length N)
// into out (length N/2+1): out[k] = sum_j x[j] exp(-2*pi*i*j*k/N).
// out[0] and out[N/2] have zero imaginary parts.
func (rp *RealPlan) Forward(x []float64, out []complex128) {
	n, h := rp.N, rp.N/2
	if len(x) != n || len(out) != h+1 {
		panic("fft: RealPlan.Forward length mismatch")
	}
	z := rp.half.scratch
	for i := 0; i < h; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	rp.half.Transform(z, false)
	// Untangle even/odd spectra.
	for k := 0; k <= h; k++ {
		var zk, zNk complex128
		if k == h {
			zk = z[0]
			zNk = z[0]
		} else {
			zk = z[k]
			if k == 0 {
				zNk = z[0]
			} else {
				zNk = z[h-k]
			}
		}
		even := complex(0.5*(real(zk)+real(zNk)), 0.5*(imag(zk)-imag(zNk)))
		odd := complex(0.5*(imag(zk)+imag(zNk)), 0.5*(real(zNk)-real(zk)))
		ang := -2 * math.Pi * float64(k) / float64(n)
		w := complex(math.Cos(ang), math.Sin(ang))
		out[k] = even + w*odd
	}
	out[0] = complex(real(out[0]), 0)
	out[h] = complex(real(out[h]), 0)
}

// Inverse reconstructs the real sequence from a half-complex spectrum,
// including the 1/N normalization (Inverse(Forward(x)) == x).
func (rp *RealPlan) Inverse(spec []complex128, x []float64) {
	n, h := rp.N, rp.N/2
	if len(spec) != h+1 || len(x) != n {
		panic("fft: RealPlan.Inverse length mismatch")
	}
	z := rp.half.scratch
	// Repack the half-complex spectrum into the length-h complex
	// spectrum of the interleaved sequence.
	// With X the full spectrum, E_k = (X_k + X_{k+h})/2 and
	// O_k = w^{-k}(X_k - X_{k+h})/2 recover the even/odd sample
	// spectra; X_{k+h} = conj(X_{h-k}) by real-input symmetry.
	for k := 0; k < h; k++ {
		sk := spec[k]
		var xkh complex128 // X_{k + N/2}
		if k == 0 {
			xkh = spec[h]
		} else {
			xkh = complex(real(spec[h-k]), -imag(spec[h-k]))
		}
		even := (sk + xkh) * 0.5
		ang := 2 * math.Pi * float64(k) / float64(n)
		w := complex(math.Cos(ang), math.Sin(ang))
		odd := w * (sk - xkh) * 0.5
		z[k] = complex(real(even)-imag(odd), imag(even)+real(odd))
	}
	rp.half.Transform(z, true)
	for i := 0; i < h; i++ {
		x[2*i] = real(z[i])
		x[2*i+1] = imag(z[i])
	}
}
