package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// smooth5Sizes enumerates every n = 2^a * 3^b * 5^c <= limit, sorted.
func smooth5Sizes(limit int) []int {
	var out []int
	for n := 1; n <= limit; n++ {
		if Smooth5(n) {
			out = append(out, n)
		}
	}
	return out
}

func TestSmooth5(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want bool
	}{{1, true}, {2, true}, {6, true}, {30, true}, {360, true}, {384, true},
		{7, false}, {14, false}, {0, false}, {-8, false}, {22, false}} {
		if got := Smooth5(tc.n); got != tc.want {
			t.Errorf("Smooth5(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

// TestMixedRadixExhaustive pins the mixed-radix kernel against the
// O(N^2) reference DFT for EVERY supported fast length up to 360 —
// each radix mix 2^a*3^b*5^c in that range, both directions, plus a
// 1e-12 forward/inverse round-trip bound. This is the blanket
// correctness test the exact-3/2 padded pipeline stands on (its grids
// M = 3N/2 are exactly these mixed sizes).
func TestMixedRadixExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range smooth5Sizes(360) {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		p.Transform(got, false)
		tol := 1e-11 * float64(n)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > tol {
				t.Fatalf("n=%d: X[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		p.Transform(got, true)
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-12 {
				t.Fatalf("n=%d: round trip error %g at %d", n, cmplx.Abs(got[i]-x[i]), i)
			}
		}
	}
}

// TestGenericPrimeFallback covers lengths with prime factors beyond
// {2,3,5}, which run through the direct-DFT butterfly.
func TestGenericPrimeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{7, 11, 13, 14, 21, 22, 26, 33, 35, 49, 66, 91, 121} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		p.Transform(got, false)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: X[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		p.Transform(got, true)
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-12 {
				t.Fatalf("n=%d: round trip error at %d", n, i)
			}
		}
	}
}

// TestRadix2PlanMatchesMixed: the legacy all-radix-2 ladder kept for
// the fftbench A/B must agree with the radix-4/2 split bit-for-bit in
// spirit (to roundoff) at matched power-of-two sizes.
func TestRadix2PlanMatchesMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{2, 8, 64, 256} {
		r2, err := NewRadix2Plan(n)
		if err != nil {
			t.Fatal(err)
		}
		mx, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		a := append([]complex128(nil), x...)
		b := append([]complex128(nil), x...)
		r2.Transform(a, false)
		mx.Transform(b, false)
		for i := range a {
			if cmplx.Abs(a[i]-b[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: radix-2 %v vs mixed %v at %d", n, a[i], b[i], i)
			}
		}
	}
	if _, err := NewRadix2Plan(24); err == nil {
		t.Fatal("NewRadix2Plan(24) should reject non-power-of-two lengths")
	}
}

// TestManyMatchesPerRow: the batched entry points are the same
// transforms as the per-row calls, just with one workspace and one
// cost-model record per slab.
func TestManyMatchesPerRow(t *testing.T) {
	const n, rows = 24, 5
	rng := rand.New(rand.NewSource(53))
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]complex128, rows*n)
	for i := range batch {
		batch[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	single := append([]complex128(nil), batch...)
	p.Many(batch, rows, false)
	for r := 0; r < rows; r++ {
		p.Transform(single[r*n:(r+1)*n], false)
	}
	for i := range batch {
		if batch[i] != single[i] {
			t.Fatalf("Many diverged from per-row Transform at %d", i)
		}
	}
	p.Many(batch, rows, true)
	for r := 0; r < rows; r++ {
		p.Transform(single[r*n:(r+1)*n], true)
	}
	for i := range batch {
		if batch[i] != single[i] {
			t.Fatalf("inverse Many diverged from per-row Transform at %d", i)
		}
	}
}

// TestManyRealMatchesPerRow pins RealPlan.ManyReal to the scalar
// Forward/Inverse pair, both directions.
func TestManyRealMatchesPerRow(t *testing.T) {
	const n, rows = 48, 4
	h := n / 2
	rng := rand.New(rand.NewSource(59))
	rp, err := NewRealPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, rows*n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := make([]complex128, rows*(h+1))
	rp.ManyReal(x, spec, rows, false)
	for r := 0; r < rows; r++ {
		want := make([]complex128, h+1)
		rp.Forward(x[r*n:(r+1)*n], want)
		for k := range want {
			if spec[r*(h+1)+k] != want[k] {
				t.Fatalf("row %d: ManyReal forward diverged at %d", r, k)
			}
		}
	}
	back := make([]float64, rows*n)
	rp.ManyReal(back, spec, rows, true)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-12 {
			t.Fatalf("ManyReal round trip error %g at %d", back[i]-x[i], i)
		}
	}
}
