package bench

import (
	"strings"
	"testing"
)

func TestKernelFigures(t *testing.T) {
	for _, fig := range []interface{ String() string }{
		Fig1Dcopy(), Fig2Daxpy(), Fig3Ddot(), Fig4Dgemv(), Fig5Dgemm(), Fig6DgemmSmall(),
	} {
		out := fig.String()
		if len(out) < 200 || !strings.Contains(out, "Muses") {
			t.Fatalf("figure looks empty:\n%.200s", out)
		}
	}
}

func TestFig1PCCompetitiveInL1(t *testing.T) {
	// The PC's L1-resident Level-1 performance is "among the best of
	// the architectures examined" (left-plot set).
	fig := Fig3Ddot()
	best := map[string]float64{}
	for _, s := range fig.Series {
		for i, x := range s.X {
			if x <= 8192 { // fits both operands in PC L1
				if s.Y[i] > best[s.Label] {
					best[s.Label] = s.Y[i]
				}
			}
		}
	}
	for _, m := range []string{"SP2-Silver", "AP3000", "Onyx2"} {
		if best[m] >= best["Muses"] {
			t.Fatalf("in-cache ddot: %s (%v) beats Muses (%v)", m, best[m], best["Muses"])
		}
	}
}

func TestSerialSmallScale(t *testing.T) {
	res, st, err := RunSerial(SerialConfig{Nt: 12, Nr: 3, Order: 6, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Table1Machines) {
		t.Fatalf("results: %d", len(res))
	}
	total := st.Total()
	if total.TotalFlops() == 0 {
		t.Fatal("no work recorded")
	}
	byName := map[string]SerialResult{}
	for _, r := range res {
		if r.CPU <= 0 {
			t.Fatalf("%s: nonpositive CPU %v", r.Machine, r.CPU)
		}
		byName[r.Machine] = r
	}
	// Solve stages (5 and 7 -> indices 4, 6) carry a substantial share
	// even at this validation scale; at paper scale they reach the
	// ~60% of Figure 12 (asserted by the cmd/serialdns run recorded in
	// EXPERIMENTS.md — the share grows with the Schur system size).
	pc := byName["Muses"]
	solvePct := pc.StagePct[4] + pc.StagePct[6]
	if solvePct < 15 || solvePct > 95 {
		t.Fatalf("solve share %v%% implausible (stages %v)", solvePct, pc.StagePct)
	}
	// Table rendering.
	tab := Table1(res)
	if !strings.Contains(tab.String(), "Pentium II") {
		t.Fatalf("table missing PII row:\n%s", tab.String())
	}
	fig, err := Fig12(res, "Onyx2", "Muses")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig, "Poisson") {
		t.Fatalf("Fig12 missing stage names:\n%s", fig)
	}
}

func TestFourierSmallScale(t *testing.T) {
	cfg := FourierConfig{
		ProbeNt: 8, ProbeNr: 2,
		PaperNt: 12, PaperNr: 3, // small "paper" target keeps the test quick
		Order: 5, Steps: 1,
		Machines: []string{"RoadRunner-myr", "RoadRunner-eth"},
		Procs:    []int{2, 4},
	}
	res, err := RunFourier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results: %d", len(res))
	}
	for _, r := range res {
		if r.CPU <= 0 || r.Wall < r.CPU {
			t.Fatalf("%s P=%d: cpu=%v wall=%v", r.Machine, r.P, r.CPU, r.Wall)
		}
	}
	// Ethernet wall-clock penalty must exceed Myrinet's at the same P.
	var ethGap, myrGap float64
	for _, r := range res {
		if r.P != 4 {
			continue
		}
		gap := (r.Wall - r.CPU) / r.CPU
		if r.Machine == "RoadRunner-eth" {
			ethGap = gap
		} else {
			myrGap = gap
		}
	}
	if ethGap <= myrGap {
		t.Fatalf("ethernet comm gap %v not above myrinet %v", ethGap, myrGap)
	}
	tab := Table2(res, cfg.Procs, cfg.Machines)
	if !strings.Contains(tab.String(), "/") {
		t.Fatalf("table malformed:\n%s", tab.String())
	}
	if _, err := Fig1314(res, "RoadRunner-eth", 4); err != nil {
		t.Fatal(err)
	}
}

func TestALESmallScale(t *testing.T) {
	cfg := ALEConfig{
		ProbeNt: 12, ProbeNr: 2, ProbeNz: 2, ProbeOrder: 2,
		PaperElems: 200, PaperOrder: 3,
		PressureIters: 30, HelmIters: 12,
		Steps:    1,
		Machines: []string{"RoadRunner-myr"},
		Procs:    []int{2, 4},
	}
	res, err := RunALE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.CPU <= 0 || r.Wall < r.CPU {
			t.Fatalf("%s P=%d: cpu=%v wall=%v", r.Machine, r.P, r.CPU, r.Wall)
		}
		// Regions b+c dominate (Figures 15-16: solves are ~90%).
		total := r.RegionCPU[0] + r.RegionCPU[1] + r.RegionCPU[2]
		if (r.RegionCPU[1]+r.RegionCPU[2])/total < 0.5 {
			t.Fatalf("solves only %v of CPU", (r.RegionCPU[1]+r.RegionCPU[2])/total)
		}
	}
	// Strong scaling: P=4 must be faster than P=2.
	if res[1].Wall >= res[0].Wall {
		t.Fatalf("no strong scaling: P=2 %v, P=4 %v", res[0].Wall, res[1].Wall)
	}
	tab := Table3(res, cfg.Procs, cfg.Machines)
	if !strings.Contains(tab.String(), "RoadRunner-myr") {
		t.Fatalf("table malformed:\n%s", tab.String())
	}
	if _, err := Fig1516(res, "RoadRunner-myr", 4); err != nil {
		t.Fatal(err)
	}
}

func TestFig8SmallP(t *testing.T) {
	fig, err := Fig8Alltoall(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.String(), "T3E") {
		t.Fatal("Fig 8 missing T3E series")
	}
}
