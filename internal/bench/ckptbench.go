package bench

import (
	"fmt"
	"os"
	"time"

	"nektar/internal/ckpt"
	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
)

// Ckptbench: what does durable checkpointing cost? Two measurements.
//
// Host side: the same small NS2D run is driven three times at an equal
// checkpoint cadence — no durability, a synchronous writer (the step
// loop pays marshal + compress + CRC + disk write inline), and the
// async double-buffered writer (the loop pays only the marshal; the
// background goroutine hides the rest) — tabulating exposed vs hidden
// write seconds from the writers' own counters.
//
// Virtual side: a Nektar-F state is written through the simulated
// cluster's cost model (ckpt.SimWriter) as node-local restart files vs
// striped 1/P-th shards, pricing the striping penalty per machine —
// the quantified version of the paper's choice of local restart files
// over a parallel file system on commodity Ethernet.

// CkptbenchConfig parametrizes both tables.
type CkptbenchConfig struct {
	// NS2D probe mesh for the host-side table.
	Nt, Nr, Order int
	// Steps are measured steps (after the 2-step order ramp); Every is
	// the checkpoint cadence shared by the sync and async variants.
	Steps, Every int

	// Dir roots the host-side stores; empty uses a temp dir.
	Dir string

	// Virtual-side sweep: one probe Nektar-F record per rank written by
	// Procs ranks on each machine, local vs striped, against DiskMBs
	// node-local disks.
	Machines []string
	Procs    int
	DiskMBs  float64
}

// PaperCkptbench is the default: a small serial DNS for the host
// table, and the paper's two RoadRunner interconnects for the striping
// penalty.
var PaperCkptbench = CkptbenchConfig{
	Nt: 24, Nr: 6, Order: 6,
	Steps: 12, Every: 2,
	Machines: []string{"RoadRunner-eth", "RoadRunner-myr"},
	Procs:    4,
	DiskMBs:  20,
}

// StripedCost is one machine's virtual-side row.
type StripedCost struct {
	Machine          string
	Procs            int
	StateMB          float64 // raw per-rank state
	LocalS, StripedS float64 // max-over-ranks virtual write cost
}

// CkptbenchResult carries both measurements; it is the schema of
// BENCH_ckpt.json.
type CkptbenchResult struct {
	Nt, Nr, Order, Steps, Every int

	// Host-side, per full run at the shared cadence.
	Snapshots              int
	RawMB, StoredMB, Ratio float64
	NoneLoopS              float64 // step-loop host wall, no durability
	SyncLoopS, AsyncLoopS  float64
	SyncExposedS           float64 // write time the step loop waited on
	AsyncExposedS          float64
	AsyncHiddenS           float64 // write time overlapped with stepping

	Striped []StripedCost
}

// ValidateCkptbench checks a configuration and returns an actionable
// error for each way the experiment cannot run.
func ValidateCkptbench(cfg CkptbenchConfig) error {
	if cfg.Steps < 1 || cfg.Every < 1 {
		return fmt.Errorf("bench: ckptbench needs positive steps and cadence, got %d/%d", cfg.Steps, cfg.Every)
	}
	if cfg.Procs < 1 || cfg.Procs&(cfg.Procs-1) != 0 {
		return fmt.Errorf("bench: the Nektar-F probe needs a power-of-two rank count, got %d", cfg.Procs)
	}
	for _, name := range cfg.Machines {
		mach, err := machine.ByName(name)
		if err != nil {
			return fmt.Errorf("%w (see internal/machine for the catalogue)", err)
		}
		if cfg.Procs > mach.MaxProcs {
			return fmt.Errorf("bench: %s has at most %d procs, got %d", name, mach.MaxProcs, cfg.Procs)
		}
	}
	if cfg.DiskMBs <= 0 {
		return fmt.Errorf("bench: disk bandwidth %g MB/s must be positive", cfg.DiskMBs)
	}
	return nil
}

// ckptProbeNS2D builds a fresh, ramped serial solver for one host-side
// variant (each variant must step an identical trajectory).
func ckptProbeNS2D(cfg CkptbenchConfig) (*core.NS2D, error) {
	m, err := mesh.BluffBody(cfg.Order, cfg.Nt, cfg.Nr)
	if err != nil {
		return nil, err
	}
	ns, err := core.NewNS2D(m, core.NS2DConfig{
		Nu: 1.0 / 500, Dt: 2e-3, Order: 2,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": core.ConstantVel(1, 0),
		},
		PresDirichlet: map[string]bool{"outflow": true},
	})
	if err != nil {
		return nil, err
	}
	ns.SetUniformInitial(1, 0)
	ns.Step() // multistep order ramp
	ns.Step()
	return ns, nil
}

// runCkptVariant drives one host-side run and reports the step-loop
// host wall plus the writer's counters (zero for a nil sink).
func runCkptVariant(cfg CkptbenchConfig, sink engine.CheckpointSink, stats func() ckpt.WriterStats) (float64, ckpt.WriterStats, error) {
	ns, err := ckptProbeNS2D(cfg)
	if err != nil {
		return 0, ckpt.WriterStats{}, err
	}
	loop := engine.Loop{Solver: ns, Steps: ns.StepCount() + cfg.Steps,
		Watchdog: engine.Watchdog{Disabled: true}}
	if sink != nil {
		loop.Sink = sink
		loop.CheckpointEvery = cfg.Every
	}
	t0 := time.Now()
	if _, err := loop.Run(); err != nil {
		return 0, ckpt.WriterStats{}, err
	}
	wall := time.Since(t0).Seconds()
	if stats == nil {
		return wall, ckpt.WriterStats{}, nil
	}
	return wall, stats(), nil
}

// stripedCostCell measures one machine's local vs striped virtual
// write cost for a real marshalled Nektar-F state (the faultbench
// probe mesh).
func stripedCostCell(name string, procs int, diskMBs float64, order int) (StripedCost, error) {
	mach, err := machine.ByName(name)
	if err != nil {
		return StripedCost{}, err
	}
	sc := StripedCost{Machine: name, Procs: procs}
	_, _, err = simnet.Run(procs, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		m, merr := mesh.BluffBody(order, 8, 2)
		if merr != nil {
			panic(merr)
		}
		ns, nerr := core.NewNSF(m, fourierBCs(), comm, &mach.CPU)
		if nerr != nil {
			panic(nerr)
		}
		ns.SetUniformInitial(1, 0)
		ns.Step()
		state, serr := engine.Marshal(ns)
		if serr != nil {
			panic(serr)
		}
		local := &ckpt.SimWriter{Kind: "nsf", Comm: comm, DiskMBs: diskMBs, Mode: ckpt.WriteLocal}
		if werr := local.Submit(ns.StepCount(), state, false); werr != nil {
			panic(werr)
		}
		striped := &ckpt.SimWriter{Kind: "nsf", Comm: comm, DiskMBs: diskMBs, Mode: ckpt.WriteStriped}
		if werr := striped.Submit(ns.StepCount(), state, false); werr != nil {
			panic(werr)
		}
		mx := comm.Allreduce([]float64{local.LastCostS(), striped.LastCostS(), float64(len(state))}, mpi.Max)
		if comm.Rank() == 0 {
			sc.LocalS, sc.StripedS, sc.StateMB = mx[0], mx[1], mx[2]/1e6
		}
	})
	return sc, err
}

// RunCkptbench executes both measurements and renders the two tables.
func RunCkptbench(cfg CkptbenchConfig) (*CkptbenchResult, []*report.Table, error) {
	if err := ValidateCkptbench(cfg); err != nil {
		return nil, nil, err
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ckptbench")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	res := &CkptbenchResult{Nt: cfg.Nt, Nr: cfg.Nr, Order: cfg.Order,
		Steps: cfg.Steps, Every: cfg.Every}

	// Host side: none, then sync, then async — fresh solver and fresh
	// store each, so the three runs do identical solver work.
	var err error
	if res.NoneLoopS, _, err = runCkptVariant(cfg, nil, nil); err != nil {
		return nil, nil, err
	}
	syncStore, err := ckpt.NewDirStore(dir + "/sync")
	if err != nil {
		return nil, nil, err
	}
	sw := ckpt.NewSyncWriter(syncStore, ckpt.WriterConfig{Kind: "ns2d"})
	var syncStats ckpt.WriterStats
	if res.SyncLoopS, syncStats, err = runCkptVariant(cfg, sw, sw.Stats); err != nil {
		return nil, nil, err
	}
	asyncStore, err := ckpt.NewDirStore(dir + "/async")
	if err != nil {
		return nil, nil, err
	}
	aw := ckpt.NewAsyncWriter(asyncStore, ckpt.WriterConfig{Kind: "ns2d"})
	var asyncStats ckpt.WriterStats
	res.AsyncLoopS, asyncStats, err = runCkptVariant(cfg, aw, aw.Stats)
	if cerr := aw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}

	res.Snapshots = int(syncStats.Snapshots)
	res.RawMB = float64(syncStats.RawBytes) / 1e6
	res.StoredMB = float64(syncStats.StoredBytes) / 1e6
	res.Ratio = syncStats.Ratio()
	res.SyncExposedS = syncStats.ExposedS
	res.AsyncExposedS = asyncStats.ExposedS
	res.AsyncHiddenS = asyncStats.HiddenS

	hostTbl := report.NewTable(
		fmt.Sprintf("Ckptbench: host async vs sync snapshotting — NS2D %dx%d order %d, %d steps, ckpt every %d (%d snapshots, %.2f MB raw -> %.2f MB stored, %.2fx)",
			cfg.Nt, cfg.Nr, cfg.Order, cfg.Steps, cfg.Every,
			res.Snapshots, res.RawMB, res.StoredMB, res.Ratio),
		"writer", "step-loop wall (s)", "exposed write (s)", "hidden write (s)")
	hostTbl.AddRow("none", fmt.Sprintf("%.4f", res.NoneLoopS), "—", "—")
	hostTbl.AddRow("sync", fmt.Sprintf("%.4f", res.SyncLoopS),
		fmt.Sprintf("%.4f", res.SyncExposedS), "0")
	hostTbl.AddRow("async", fmt.Sprintf("%.4f", res.AsyncLoopS),
		fmt.Sprintf("%.4f", res.AsyncExposedS), fmt.Sprintf("%.4f", res.AsyncHiddenS))

	// Virtual side: the striping penalty per machine.
	stripeTbl := report.NewTable(
		fmt.Sprintf("Ckptbench: simulated parallel-write cost, P=%d, %g MB/s node-local disks — restart files vs striped shards",
			cfg.Procs, cfg.DiskMBs),
		"machine", "state (MB/rank)", "local (s)", "striped (s)", "striping penalty")
	for _, name := range cfg.Machines {
		sc, err := stripedCostCell(name, cfg.Procs, cfg.DiskMBs, cfg.Order)
		if err != nil {
			return nil, nil, err
		}
		res.Striped = append(res.Striped, sc)
		stripeTbl.AddRow(sc.Machine, fmt.Sprintf("%.3f", sc.StateMB),
			fmt.Sprintf("%.4g", sc.LocalS), fmt.Sprintf("%.4g", sc.StripedS),
			fmt.Sprintf("%+.1f%%", 100*(sc.StripedS/sc.LocalS-1)))
	}
	return res, []*report.Table{hostTbl, stripeTbl}, nil
}
