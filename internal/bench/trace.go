package bench

import (
	"fmt"
	"io"

	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/fault"
	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Trace: a demonstration-scale engine run with the structured per-step
// event stream switched on. The engine emits one JSONL event per step
// and per active stage (priced and virtual-wall seconds), plus
// checkpoint, rollback, trip, halt and done markers; this experiment
// writes the stream to w and returns the run result. With CrashNode
// set, a seeded node crash forces a rollback so the stream shows the
// recovery round trip — the same events the supervisor sees, now
// inspectable offline.

// TraceConfig parametrizes a traced run.
type TraceConfig struct {
	Machine  string
	Workload string // registry name, see WorkloadNames
	Procs    int

	Steps           int
	CheckpointEvery int

	// CrashNode >= 0 injects a node crash at CrashFrac of the
	// reference virtual wall, so the trace includes the crash attempt
	// and the rollback. Negative disables.
	CrashNode int
	CrashFrac float64
	Seed      int64
}

// PaperTrace is the default traced run: the Ethernet Beowulf at four
// ranks with a mid-run node crash.
var PaperTrace = TraceConfig{
	Machine:  "RoadRunner-eth",
	Workload: "nsf",
	Procs:    4,
	Steps:    8, CheckpointEvery: 2,
	CrashNode: 2, CrashFrac: 0.6,
	Seed: 1,
}

// ValidateTrace checks a trace configuration.
func ValidateTrace(cfg TraceConfig) error {
	mach, err := machine.ByName(cfg.Machine)
	if err != nil {
		return fmt.Errorf("%w (see internal/machine for the catalogue)", err)
	}
	wl, err := WorkloadByName(cfg.Workload)
	if err != nil {
		return err
	}
	if err := ValidateWorkloadRanks(wl, cfg.Procs); err != nil {
		return err
	}
	if cfg.Procs > mach.MaxProcs {
		return fmt.Errorf("bench: %s has at most %d procs, got %d", cfg.Machine, mach.MaxProcs, cfg.Procs)
	}
	if cfg.Steps < 1 {
		return fmt.Errorf("bench: need at least one step, got %d", cfg.Steps)
	}
	if cfg.CrashNode >= cfg.Procs {
		return fmt.Errorf("bench: crash node %d is not one of the %d ranks", cfg.CrashNode, cfg.Procs)
	}
	if cfg.CrashNode >= 0 && (cfg.CrashFrac <= 0 || cfg.CrashFrac >= 1) {
		return fmt.Errorf("bench: crash fraction %g must lie in (0, 1) — it places the crash inside the reference run", cfg.CrashFrac)
	}
	return nil
}

// RunTrace executes the configured run with tracing enabled, writing
// one JSON event per line to w.
func RunTrace(cfg TraceConfig, w io.Writer) (*core.RecoveryResult, error) {
	if err := ValidateTrace(cfg); err != nil {
		return nil, err
	}
	mach, err := machine.ByName(cfg.Machine)
	if err != nil {
		return nil, err
	}
	wl, err := WorkloadByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	rc := core.Recovery{
		Procs: cfg.Procs,
		Model: mach.Net,
		NewSolver: func(rank int, comm *mpi.Comm) (engine.Solver, error) {
			return wl.New(comm, &mach.CPU)
		},
		Steps:           cfg.Steps,
		CheckpointEvery: cfg.CheckpointEvery,
	}
	if cfg.CrashNode >= 0 {
		// The crash time is a fraction of the fault-free wall, so run an
		// untraced reference first to measure it.
		ref, rerr := core.RunRecovery(rc)
		if rerr != nil {
			return nil, fmt.Errorf("bench: trace reference run: %w", rerr)
		}
		rc.Plans = []simnet.Injector{
			fault.NewPlan(cfg.Seed).Crash(cfg.CrashNode, cfg.CrashFrac*ref.VirtualWall),
		}
	}
	rc.Trace = engine.NewTracer(w)
	res, err := core.RunRecovery(rc)
	if err != nil {
		return nil, fmt.Errorf("bench: traced run: %w", err)
	}
	return res, nil
}
