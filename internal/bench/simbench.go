package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
)

// Simbench: what does the host-parallel simnet scheduler buy? Each
// cell runs one registered workload at one rank count twice — once
// under the serial one-rank-at-a-time scheduler, once under the
// conservative parallel scheduler — and records real host wall-clock
// for both. The two runs must agree bit-for-bit on every rank's
// virtual wall and cpu clock (the parallel scheduler's contract); a
// divergence fails the bench rather than producing a number for a
// broken scheduler.
//
// The speedup is bounded by the host's core count: rank host work
// (mesh build, operator factorization, the solver flops that drive
// calibrated virtual time) overlaps, while shared-state events still
// admit one at a time. BENCH_simnet.json records GOMAXPROCS and the
// host CPU count next to the numbers so a 1-core CI box's ~1x is not
// mistaken for a regression of the >=4x an 8-core host reaches.

// SimbenchCell names one workload x rank-count measurement.
type SimbenchCell struct {
	Workload string
	Procs    int
}

// SimbenchConfig parametrizes the sweep.
type SimbenchConfig struct {
	Cells []SimbenchCell
	// Steps per run (after construction; kept small — the scheduler
	// comparison needs overlap, not convergence).
	Steps int
}

// PaperSimbench covers the tentpole's target cells: Nektar-F at the
// paper's small/mid/large processor counts and Nektar-ALE at two.
var PaperSimbench = SimbenchConfig{
	Cells: []SimbenchCell{
		{"nsf", 8}, {"nsf", 32}, {"nsf", 128},
		{"nsale", 16}, {"nsale", 64},
	},
	Steps: 2,
}

// QuickSimbench is the budget-limited registry variant.
var QuickSimbench = SimbenchConfig{
	Cells: []SimbenchCell{{"nsf", 8}, {"nsale", 16}},
	Steps: 2,
}

// SimbenchCellResult is one measured cell.
type SimbenchCellResult struct {
	Workload string
	Procs    int

	SerialHostS   float64 // real host seconds, serial scheduler
	ParallelHostS float64 // real host seconds, parallel scheduler
	Speedup       float64 // SerialHostS / ParallelHostS

	// VirtualWallS is the max per-rank virtual wall clock — identical
	// between the two runs by construction (verified).
	VirtualWallS float64
}

// SimbenchResult is the schema of BENCH_simnet.json.
type SimbenchResult struct {
	// GoMaxProcs and NumCPU qualify every speedup below: the parallel
	// scheduler cannot beat the core budget it ran with.
	GoMaxProcs int
	NumCPU     int
	Steps      int
	Cells      []SimbenchCellResult

	// Scale, when present, is the relaxed-scheduler capacity sweep
	// (PMS/Tanaka interconnect models at P=64..1024) recorded alongside
	// the scheduler-speedup cells.
	Scale *ScalebenchResult `json:",omitempty"`
}

// runSimbenchOnce runs one workload x procs cell under one scheduler
// and returns the per-rank virtual clocks plus the real host seconds.
func runSimbenchOnce(wl Workload, p, steps int, sched simnet.Scheduler) (wall, cpu []float64, hostS float64, err error) {
	mach := machine.Muses()
	model := *mach.Net
	model.Scheduler = sched
	t0 := time.Now()
	wall, cpu, err = simnet.Run(p, &model, func(n *simnet.Node) {
		comm := mpi.World(n)
		s, err := wl.New(comm, &mach.CPU)
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			s.Step()
		}
	})
	return wall, cpu, time.Since(t0).Seconds(), err
}

// RunSimbench executes the sweep and renders the comparison table.
func RunSimbench(cfg SimbenchConfig) (*SimbenchResult, *report.Table, error) {
	res := &SimbenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Steps:      cfg.Steps,
	}
	for _, cell := range cfg.Cells {
		wl, err := WorkloadByName(cell.Workload)
		if err != nil {
			return nil, nil, err
		}
		if err := ValidateWorkloadRanks(wl, cell.Procs); err != nil {
			return nil, nil, err
		}
		wallS, cpuS, serialS, err := runSimbenchOnce(wl, cell.Procs, cfg.Steps, simnet.SchedSerial)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: simbench %s P=%d serial: %w", cell.Workload, cell.Procs, err)
		}
		wallP, cpuP, parS, err := runSimbenchOnce(wl, cell.Procs, cfg.Steps, simnet.SchedParallel)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: simbench %s P=%d parallel: %w", cell.Workload, cell.Procs, err)
		}
		// The contract the speedup is worthless without.
		var maxWall float64
		for r := 0; r < cell.Procs; r++ {
			if math.Float64bits(wallS[r]) != math.Float64bits(wallP[r]) ||
				math.Float64bits(cpuS[r]) != math.Float64bits(cpuP[r]) {
				return nil, nil, fmt.Errorf(
					"bench: simbench %s P=%d: virtual clocks diverged between schedulers at rank %d (wall %v vs %v, cpu %v vs %v)",
					cell.Workload, cell.Procs, r, wallS[r], wallP[r], cpuS[r], cpuP[r])
			}
			maxWall = max(maxWall, wallS[r])
		}
		res.Cells = append(res.Cells, SimbenchCellResult{
			Workload:      cell.Workload,
			Procs:         cell.Procs,
			SerialHostS:   serialS,
			ParallelHostS: parS,
			Speedup:       serialS / parS,
			VirtualWallS:  maxWall,
		})
	}

	tbl := report.NewTable(
		fmt.Sprintf("Simbench: host wall-clock, serial vs parallel simnet scheduler (GOMAXPROCS=%d, host cores=%d, %d steps)",
			res.GoMaxProcs, res.NumCPU, res.Steps),
		"workload", "P", "serial host s", "parallel host s", "speedup", "virtual wall s")
	for _, c := range res.Cells {
		tbl.AddRow(c.Workload, fmt.Sprintf("%d", c.Procs),
			fmt.Sprintf("%.3f", c.SerialHostS), fmt.Sprintf("%.3f", c.ParallelHostS),
			fmt.Sprintf("%.2fx", c.Speedup), fmt.Sprintf("%.4f", c.VirtualWallS))
	}
	return res, tbl, nil
}
