package bench

import (
	"fmt"
	"sort"
	"strings"

	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/spectral"
)

// Workload is a named, demonstration-scale solver setup the engine can
// drive without knowing which solver it is. The supervise and trace
// experiments pick one by name; everything downstream — the driver
// loop, checkpointing, recovery, the supervisor — goes through
// engine.Solver, so adding a workload here is the only step needed to
// put a new solver under the self-healing runtime.
type Workload struct {
	Name        string
	Description string

	// PowerOfTwoRanks marks workloads whose parallel decomposition
	// (Fourier transpose) needs 2^k ranks.
	PowerOfTwoRanks bool

	// New builds one rank's solver at demonstration scale. cpu may be
	// nil (unpriced compute).
	New func(comm *mpi.Comm, cpu *machine.CPU) (engine.Solver, error)
}

// workloads is the registry. Keyed by the names the CLI flags accept.
var workloads = map[string]Workload{
	"nsf": {
		Name:            "nsf",
		Description:     "Nektar-F bluff body (Fourier-parallel, 2D x Fourier)",
		PowerOfTwoRanks: true,
		New: func(comm *mpi.Comm, cpu *machine.CPU) (engine.Solver, error) {
			m, err := mesh.BluffBody(4, 6, 2)
			if err != nil {
				return nil, err
			}
			ns, err := core.NewNSF(m, fourierBCs(), comm, cpu)
			if err != nil {
				return nil, err
			}
			ns.SetUniformInitial(1, 0)
			return ns, nil
		},
	},
	"nsale": {
		Name:        "nsale",
		Description: "Nektar-ALE wing section (3D moving mesh, domain-decomposed)",
		New: func(comm *mpi.Comm, cpu *machine.CPU) (engine.Solver, error) {
			m2, err := mesh.WingSection(2, 12, 2)
			if err != nil {
				return nil, err
			}
			// Three extruded layers give 72 elements, enough for the
			// demonstration sweeps to decompose across 64 ranks.
			m, err := mesh.ExtrudeQuads(m2, 2, 3, 0, 1)
			if err != nil {
				return nil, err
			}
			ns, err := core.NewNSALE(m, aleBCs(), comm, cpu)
			if err != nil {
				return nil, err
			}
			ns.SetUniformInitial(1, 0, 0)
			return ns, nil
		},
	},
	"turb2d": {
		Name:            "turb2d",
		Description:     "decaying 2D pseudospectral turbulence (slab-parallel, de-aliased)",
		PowerOfTwoRanks: true,
		New: func(comm *mpi.Comm, cpu *machine.CPU) (engine.Solver, error) {
			return spectral.NewTurb2D(spectral.Config{
				N: 16, Re: 500, Dt: 2e-3, Seed: 20,
			}, comm, cpu)
		},
	},
	"turbforce": {
		Name:            "turbforce",
		Description:     "forced 2D pseudospectral turbulence (Basdevant form, banded white noise)",
		PowerOfTwoRanks: true,
		New: func(comm *mpi.Comm, cpu *machine.CPU) (engine.Solver, error) {
			return spectral.NewForced(spectral.Config{
				N: 16, Re: 500, Dt: 2e-3, Seed: 21,
			}, comm, cpu)
		},
	},
}

// WorkloadNames lists the registered workloads, sorted.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WorkloadByName resolves a workload; the error for an unknown name
// lists what is registered.
func WorkloadByName(name string) (Workload, error) {
	wl, ok := workloads[name]
	if !ok {
		return Workload{}, fmt.Errorf("bench: unknown workload %q: registered workloads are %s",
			name, strings.Join(WorkloadNames(), ", "))
	}
	return wl, nil
}

// ValidateWorkloadRanks checks a rank count against a workload's
// decomposition constraints.
func ValidateWorkloadRanks(wl Workload, procs int) error {
	if procs < 1 {
		return fmt.Errorf("bench: need at least one rank, got %d", procs)
	}
	if wl.PowerOfTwoRanks && procs&(procs-1) != 0 {
		return fmt.Errorf("bench: workload %s needs a power-of-two rank count, got %d", wl.Name, procs)
	}
	return nil
}
