package bench

import (
	"fmt"
	"path/filepath"

	"nektar/internal/blas"
	"nektar/internal/ckpt"
	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
	"nektar/internal/solver"
	"nektar/internal/timing"
)

// FourierConfig parametrizes the Table 2 / Figures 13-14 experiment:
// weak-scaling Nektar-F runs (two Fourier planes per processor) of the
// bluff-body DNS on the simulated clusters.
//
// The solver runs for real at probe scale on every simulated rank; the
// compute pricing and message sizes are extrapolated to the paper
// scale through core.ScaleConfig (element-count ratios for the
// element-proportional stages, condensed-solve cost formulas for the
// solve stages).
type FourierConfig struct {
	ProbeNt, ProbeNr int
	PaperNt, PaperNr int
	Order            int
	Steps            int // measured steps (after 1 warmup)
	Machines         []string
	Procs            []int

	// Trace, when set, receives the engine's per-step event stream for
	// every measured cell (all ranks interleaved).
	Trace *engine.Tracer

	// CkptDir, when set, gives every measured cell its own durable
	// checkpoint store under it (<machine>-p<P>/), written every
	// CkptEvery steps through the simulated cost model: each rank's
	// record is priced as a node-local restart-file write at
	// CkptDiskMBs, and that time lands in the cell's wall clock.
	CkptDir     string
	CkptEvery   int
	CkptDiskMBs float64
}

// PaperFourier is the paper's Table 2 setup.
var PaperFourier = FourierConfig{
	ProbeNt: 8, ProbeNr: 2,
	PaperNt: 82, PaperNr: 11,
	Order: 8,
	Steps: 2,
	Machines: []string{
		"AP3000", "NCSA", "SP2-Silver", "SP2-Thin2",
		"RoadRunner-eth", "RoadRunner-myr", "Muses",
	},
	Procs:       []int{2, 4, 8, 16, 32, 64, 128},
	CkptDiskMBs: 20,
}

// FourierResult is one (machine, P) cell of Table 2.
type FourierResult struct {
	Machine   string
	P         int
	CPU, Wall float64 // max over ranks, per step
	StageCPU  [7]float64
	StageWall [7]float64
}

// fourierBCs are the bluff-body boundary conditions shared by probe
// and paper scales.
func fourierBCs() core.NSFConfig {
	return core.NSFConfig{
		Nu: 1.0 / 500, Dt: 2e-3, Order: 2, Lz: 2 * 3.141592653589793,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": core.ConstantVel(1, 0),
		},
		PresDirichlet: map[string]bool{"outflow": true},
	}
}

// solveStats captures the condensed-solver cost parameters of a mesh.
type solveStats struct {
	elems       int
	nbV, kdV    int // velocity Schur
	nbP, kdP    int // pressure Schur
	niMode, nbm int // per-element interior/boundary mode counts
	velCounts   blas.Counts
	presCounts  blas.Counts
	nElemsF     float64
}

func gatherSolveStats(nt, nr, order int) (*solveStats, error) {
	m, err := mesh.BluffBody(order, nt, nr)
	if err != nil {
		return nil, err
	}
	cfg := fourierBCs()
	isVelD := func(tag string) bool { _, ok := cfg.VelDirichlet[tag]; return ok }
	isPresD := func(tag string) bool { return cfg.PresDirichlet[tag] }
	av := mesh.NewAssembly(m, isVelD)
	ap := mesh.NewAssembly(m, isPresD)
	st := &solveStats{elems: len(m.Elems), nElemsF: float64(len(m.Elems))}
	st.nbV, st.kdV = solver.SchurStats(av)
	st.nbP, st.kdP = solver.SchurStats(ap)
	ref := m.Elems[0].Ref
	st.nbm = ref.NBnd
	st.niMode = ref.NModes - ref.NBnd
	st.velCounts = solver.CondensedSolveCounts(st.nbV, st.kdV, st.elems, st.niMode, st.nbm)
	st.presCounts = solver.CondensedSolveCounts(st.nbP, st.kdP, st.elems, st.niMode, st.nbm)
	return st, nil
}

// fourierScale derives the per-stage extrapolation multipliers for a
// machine.
func fourierScale(cpu *machine.CPU, probe, paper *solveStats) *core.ScaleConfig {
	elemRatio := paper.nElemsF / probe.nElemsF
	sc := &core.ScaleConfig{Comm: elemRatio}
	for i := range sc.Stage {
		sc.Stage[i] = elemRatio
	}
	// Solve stages: price the condensed solve formulas at both scales.
	presRatio := cpu.ApplicationSeconds(&paper.presCounts) / cpu.ApplicationSeconds(&probe.presCounts)
	velRatio := cpu.ApplicationSeconds(&paper.velCounts) / cpu.ApplicationSeconds(&probe.velCounts)
	sc.Stage[4] = presRatio
	sc.Stage[6] = velRatio
	return sc
}

// RunFourier executes the Table 2 sweep. Cells beyond a machine's
// MaxProcs (or beyond Muses' 4 nodes) are reported with negative
// times, rendering as "n/a" like the paper.
func RunFourier(cfg FourierConfig) ([]FourierResult, error) {
	probe, err := gatherSolveStats(cfg.ProbeNt, cfg.ProbeNr, cfg.Order)
	if err != nil {
		return nil, err
	}
	paper, err := gatherSolveStats(cfg.PaperNt, cfg.PaperNr, cfg.Order)
	if err != nil {
		return nil, err
	}
	var out []FourierResult
	for _, name := range cfg.Machines {
		mach, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.Procs {
			if p > mach.MaxProcs {
				out = append(out, FourierResult{Machine: name, P: p, CPU: -1, Wall: -1})
				continue
			}
			r, err := runFourierCell(mach, p, cfg, probe, paper)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", name, p, err)
			}
			out = append(out, *r)
		}
	}
	return out, nil
}

func runFourierCell(mach *machine.Machine, p int, cfg FourierConfig, probe, paper *solveStats) (*FourierResult, error) {
	res := &FourierResult{Machine: mach.Name, P: p}
	sc := fourierScale(&mach.CPU, probe, paper)
	var store *ckpt.DirStore
	if cfg.CkptDir != "" {
		var serr error
		store, serr = ckpt.NewDirStore(filepath.Join(cfg.CkptDir, fmt.Sprintf("%s-p%d", mach.Name, p)))
		if serr != nil {
			return nil, serr
		}
	}
	_, _, err := simnet.Run(p, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		m, err := mesh.BluffBody(cfg.Order, cfg.ProbeNt, cfg.ProbeNr)
		if err != nil {
			panic(err)
		}
		ns, err := core.NewNSF(m, fourierBCs(), comm, &mach.CPU)
		if err != nil {
			panic(err)
		}
		ns.SetScale(sc)
		ns.SetUniformInitial(1, 0)
		ns.Step() // warmup (order ramp + eager caches)
		comm.Barrier()
		cpu0, wall0 := comm.CPUTime(), comm.Wtime()
		st := ns.Stages()
		st.Reset()
		loop := engine.Loop{Solver: ns, Steps: ns.StepCount() + cfg.Steps,
			Rank: comm.Rank(), Watchdog: engine.Watchdog{Disabled: true},
			Trace: cfg.Trace}
		if store != nil {
			loop.Sink = &ckpt.SimWriter{Kind: "nsf", Store: store, Comm: comm,
				DiskMBs: cfg.CkptDiskMBs, Trace: cfg.Trace}
			loop.CheckpointEvery = cfg.CkptEvery
		}
		if _, lerr := loop.Run(); lerr != nil {
			panic(lerr)
		}
		comm.Barrier()
		cpu1, wall1 := comm.CPUTime(), comm.Wtime()
		perStep := 1 / float64(cfg.Steps)
		mx := comm.Allreduce([]float64{
			(cpu1 - cpu0) * perStep,
			(wall1 - wall0) * perStep,
		}, mpi.Max)
		if comm.Rank() == 0 {
			res.CPU, res.Wall = mx[0], mx[1]
			for si := range res.StageCPU {
				res.StageCPU[si] = st.Priced[si] * perStep
				res.StageWall[si] = st.Wall[si] * perStep
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table2 renders the Table 2 report: CPU/wall-clock per step for each
// machine and processor count.
func Table2(res []FourierResult, procs []int, machines []string) *report.Table {
	cols := []string{"P"}
	cols = append(cols, machines...)
	t := report.NewTable("Table 2: Nektar-F CPU/Wall clock time per step (s), bluff body, 2 Fourier planes per processor", cols...)
	cell := map[string]map[int]FourierResult{}
	for _, r := range res {
		if cell[r.Machine] == nil {
			cell[r.Machine] = map[int]FourierResult{}
		}
		cell[r.Machine][r.P] = r
	}
	for _, p := range procs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, m := range machines {
			r, ok := cell[m][p]
			if !ok || r.CPU < 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmt.Sprintf("%.2f/%.2f", r.CPU, r.Wall))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig1314 renders the Figures 13-14 stage breakdowns (CPU and
// wall-clock percentages) for one result cell.
func Fig1314(res []FourierResult, machineName string, p int) (string, error) {
	for _, r := range res {
		if r.Machine != machineName || r.P != p {
			continue
		}
		cpuPct := timing.Percent(r.StageCPU[:])
		wallPct := timing.Percent(r.StageWall[:])
		out := report.PieBreakdown(
			fmt.Sprintf("Figures 13-14: Nektar-F CPU timing, %s, %d processors", machineName, p),
			core.StageNames, cpuPct)
		out += report.PieBreakdown(
			fmt.Sprintf("Figures 13-14: Nektar-F wall-clock timing, %s, %d processors", machineName, p),
			core.StageNames, wallPct)
		return out, nil
	}
	return "", fmt.Errorf("bench: no result for %s P=%d", machineName, p)
}
