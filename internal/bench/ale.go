package bench

import (
	"fmt"
	"math"
	"path/filepath"

	"nektar/internal/ckpt"
	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
	"nektar/internal/timing"
)

// ALEConfig parametrizes the Table 3 / Figures 15-16 experiment: the
// flapping-wing Nektar-ALE runs. The probe mesh (an extruded NACA 4420
// O-grid) runs for real on every simulated rank; the compute pricing,
// PCG iteration counts and interface message sizes extrapolate to the
// paper's 15,870-element order-4 discretization.
type ALEConfig struct {
	ProbeNt, ProbeNr, ProbeNz int
	ProbeOrder                int

	PaperElems int
	PaperOrder int
	// PressureIters and HelmIters are the representative paper-scale
	// PCG iteration counts of the pressure Poisson solve (poorly
	// conditioned) and the viscous/mesh Helmholtz solves (diagonally
	// dominant, fast). The probe runs exactly these counts, so both
	// the priced compute and the per-iteration communication reflect
	// the paper-scale solves.
	PressureIters int
	HelmIters     int

	// MatrixFreeCalA and MatrixFreeCalBC are small residual corrections
	// between this library's assembled-matrix applies and the
	// production code's matrix-free sum-factorized ones (the dominant
	// difference — elemental matrix builds, which matrix-free codes
	// never perform — is already excluded from the extrapolated
	// pricing). 0 means 1.
	MatrixFreeCalA  float64
	MatrixFreeCalBC float64

	Steps    int
	Machines []string
	Procs    []int

	// Trace, when set, receives the engine's per-step event stream for
	// every measured cell (all ranks interleaved).
	Trace *engine.Tracer

	// CkptDir, when set, gives every measured cell its own durable
	// checkpoint store under it (<machine>-p<P>/), written every
	// CkptEvery steps through the simulated cost model at CkptDiskMBs
	// per node-local disk.
	CkptDir     string
	CkptEvery   int
	CkptDiskMBs float64
}

// PaperALE is the paper's Table 3 setup: 15,870 elements, order 4,
// 4,062,720 degrees of freedom, Re = 1000 flapping NACA 4420 wing.
var PaperALE = ALEConfig{
	ProbeNt: 24, ProbeNr: 3, ProbeNz: 2, ProbeOrder: 3,
	PaperElems: 15870, PaperOrder: 4,
	PressureIters: 90, HelmIters: 26,
	MatrixFreeCalA: 1.0, MatrixFreeCalBC: 0.9,
	Steps:       1,
	Machines:    []string{"AP3000", "NCSA", "SP2-Silver", "SP2-Thin2", "RoadRunner-myr"},
	Procs:       []int{16, 32, 64, 128},
	CkptDiskMBs: 20,
}

// ALEResult is one (machine, P) cell of Table 3.
type ALEResult struct {
	Machine    string
	P          int
	CPU, Wall  float64
	RegionCPU  [3]float64
	RegionWall [3]float64
}

// aleScale derives the extrapolation multipliers from the probe and
// paper discretizations.
func aleScale(cfg ALEConfig, probeElems int) *core.ALEScale {
	nmP := (cfg.PaperOrder + 1) * (cfg.PaperOrder + 1) * (cfg.PaperOrder + 1)
	nqP := (cfg.PaperOrder + 2) * (cfg.PaperOrder + 2) * (cfg.PaperOrder + 2)
	nmPr := (cfg.ProbeOrder + 1) * (cfg.ProbeOrder + 1) * (cfg.ProbeOrder + 1)
	nqPr := (cfg.ProbeOrder + 2) * (cfg.ProbeOrder + 2) * (cfg.ProbeOrder + 2)
	elems := float64(cfg.PaperElems) / float64(probeElems)
	// Region a: transforms and RHS work ~ elems * modes * quad points.
	ratioA := elems * float64(nmP*nqP) / float64(nmPr*nqPr)
	// Regions b/c: PCG applies ~ elems * modes^2 per iteration; the
	// iteration counts themselves are run exactly, so no extra factor.
	ratioApply := elems * float64(nmP*nmP) / float64(nmPr*nmPr)
	calA, calBC := cfg.MatrixFreeCalA, cfg.MatrixFreeCalBC
	if calA == 0 {
		calA = 1
	}
	if calBC == 0 {
		calBC = 1
	}
	return &core.ALEScale{
		Region:        [3]float64{ratioA * calA, ratioApply * calBC, ratioApply * calBC},
		Comm:          1, // set per cell from the measured probe interface
		PressureIters: cfg.PressureIters,
		HelmIters:     cfg.HelmIters,
	}
}

// commFactor sizes the phantom message factor for one (P, probe) cell:
// the ratio of the estimated paper-scale per-neighbor interface (a
// cube-like subdomain of elemsPaper/P elements exposes ~(elems/P)^(2/3)
// faces toward each neighbor, each carrying (order-1)^2 face dofs plus
// edge/vertex dofs) to the probe's measured per-neighbor interface.
func commFactor(cfg ALEConfig, p int, probeDofs float64) float64 {
	if probeDofs <= 0 {
		return 1
	}
	facesPerNbr := math.Pow(float64(cfg.PaperElems)/float64(p), 2.0/3.0)
	dofsPerFace := float64(cfg.PaperOrder*cfg.PaperOrder + 2) // face+edge share
	paperDofs := facesPerNbr * dofsPerFace
	f := paperDofs / probeDofs
	if f < 1 {
		return 1
	}
	return f
}

// aleSolverConfig is the flapping-wing solver configuration shared by
// all cells.
func aleSolverConfig(scale *core.ALEScale) core.ALEConfig {
	return core.ALEConfig{
		Nu: 1.0 / 1000, Dt: 2e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
		WallVelocity: func(t float64) [3]float64 {
			return [3]float64{0, 0.3 * math.Cos(2*math.Pi*t), 0}
		},
		MoveMesh: true,
		Tol:      1e-6,
		Scale:    scale,
	}
}

// RunALE executes the Table 3 sweep.
func RunALE(cfg ALEConfig) ([]ALEResult, error) {
	// Probe mesh element count (built once to size the scale factors).
	m2, err := mesh.WingSection(cfg.ProbeOrder, cfg.ProbeNt, cfg.ProbeNr)
	if err != nil {
		return nil, err
	}
	m3, err := mesh.ExtrudeQuads(m2, cfg.ProbeOrder, cfg.ProbeNz, 0, 1)
	if err != nil {
		return nil, err
	}
	probeElems := len(m3.Elems)
	scale := aleScale(cfg, probeElems)

	var out []ALEResult
	for _, name := range cfg.Machines {
		mach, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.Procs {
			if p > mach.MaxProcs || p > probeElems {
				out = append(out, ALEResult{Machine: name, P: p, CPU: -1, Wall: -1})
				continue
			}
			r, err := runALECell(mach, p, cfg, scale)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", name, p, err)
			}
			out = append(out, *r)
		}
	}
	return out, nil
}

func runALECell(mach *machine.Machine, p int, cfg ALEConfig, scale *core.ALEScale) (*ALEResult, error) {
	res := &ALEResult{Machine: mach.Name, P: p}
	var store *ckpt.DirStore
	if cfg.CkptDir != "" {
		var serr error
		store, serr = ckpt.NewDirStore(filepath.Join(cfg.CkptDir, fmt.Sprintf("%s-p%d", mach.Name, p)))
		if serr != nil {
			return nil, serr
		}
	}
	_, _, err := simnet.Run(p, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		m2, err := mesh.WingSection(cfg.ProbeOrder, cfg.ProbeNt, cfg.ProbeNr)
		if err != nil {
			panic(err)
		}
		m3, err := mesh.ExtrudeQuads(m2, cfg.ProbeOrder, cfg.ProbeNz, 0, 1)
		if err != nil {
			panic(err)
		}
		// Probe pass: measure the per-neighbor interface so the
		// phantom factor reproduces paper-scale message sizes.
		probe, err := core.NewNSALE(m3, aleSolverConfig(nil), comm, nil)
		if err != nil {
			panic(err)
		}
		cellScale := *scale
		ifd := probe.MeanInterfaceDofs()
		all := comm.Allreduce([]float64{ifd, 1}, mpi.Sum)
		cellScale.Comm = commFactor(cfg, p, all[0]/all[1])
		ns, err := core.NewNSALE(m3, aleSolverConfig(&cellScale), comm, &mach.CPU)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0, 0)
		ns.Step() // warmup (order ramp)
		comm.Barrier()
		cpu0, wall0 := comm.CPUTime(), comm.Wtime()
		st := ns.Stages()
		st.Reset()
		loop := engine.Loop{Solver: ns, Steps: ns.StepCount() + cfg.Steps,
			Rank: comm.Rank(), Watchdog: engine.Watchdog{Disabled: true},
			Trace: cfg.Trace}
		if store != nil {
			loop.Sink = &ckpt.SimWriter{Kind: "nsale", Store: store, Comm: comm,
				DiskMBs: cfg.CkptDiskMBs, Trace: cfg.Trace}
			loop.CheckpointEvery = cfg.CkptEvery
		}
		if _, lerr := loop.Run(); lerr != nil {
			panic(lerr)
		}
		comm.Barrier()
		cpu1, wall1 := comm.CPUTime(), comm.Wtime()
		perStep := 1 / float64(cfg.Steps)
		mx := comm.Allreduce([]float64{
			(cpu1 - cpu0) * perStep,
			(wall1 - wall0) * perStep,
		}, mpi.Max)
		if comm.Rank() == 0 {
			res.CPU, res.Wall = mx[0], mx[1]
			for si := range res.RegionCPU {
				res.RegionCPU[si] = st.Priced[si] * perStep
				res.RegionWall[si] = st.Wall[si] * perStep
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table3 renders the Table 3 report.
func Table3(res []ALEResult, procs []int, machines []string) *report.Table {
	cols := []string{"P"}
	cols = append(cols, machines...)
	t := report.NewTable("Table 3: Nektar-ALE 3D CPU/Wall clock time per step (s), flapping wing", cols...)
	cell := map[string]map[int]ALEResult{}
	for _, r := range res {
		if cell[r.Machine] == nil {
			cell[r.Machine] = map[int]ALEResult{}
		}
		cell[r.Machine][r.P] = r
	}
	for _, p := range procs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, m := range machines {
			r, ok := cell[m][p]
			if !ok || r.CPU < 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmt.Sprintf("%.2f/%.2f", r.CPU, r.Wall))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig1516 renders the Figures 15-16 region breakdowns for one cell.
func Fig1516(res []ALEResult, machineName string, p int) (string, error) {
	for _, r := range res {
		if r.Machine != machineName || r.P != p {
			continue
		}
		out := report.PieBreakdown(
			fmt.Sprintf("Figures 15-16: Nektar-ALE CPU timing, %s, %d processors", machineName, p),
			core.ALEStageNames, timing.Percent(r.RegionCPU[:]))
		out += report.PieBreakdown(
			fmt.Sprintf("Figures 15-16: Nektar-ALE wall-clock timing, %s, %d processors", machineName, p),
			core.ALEStageNames, timing.Percent(r.RegionWall[:]))
		return out, nil
	}
	return "", fmt.Errorf("bench: no result for %s P=%d", machineName, p)
}
