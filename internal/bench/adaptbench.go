package bench

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/fault"
	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/policy"
	"nektar/internal/report"
	"nektar/internal/simnet"
	"nektar/internal/supervisor"
)

// Adaptbench: the differential proof of the adaptive-resilience layer.
// Faultbench tabulates Young's model offline — pick an interval from a
// table, given an MTBF you must already know. This experiment closes
// the loop at runtime and asks whether the closed loop is worth it: the
// same supervised Nektar-F campaign runs under seeded crash plans drawn
// from several node-MTBF regimes on several cluster models, once per
// static checkpoint cadence and once under the adaptive policy
// (internal/policy: online MTBF estimation + live Young retuning +
// runtime writer selection). The figure of merit is total virtual
// time-to-solution, crashes, rollbacks, and checkpoint I/O included.
//
// The acceptance bar, recorded in BENCH_adapt.json: the adaptive policy
// must land within a few percent of the best static cadence in every
// (regime x machine) cell — without being told the MTBF the faults were
// drawn from, beyond an order-of-magnitude prior — and must clearly
// beat the worst static cadence somewhere. A static setting can only do
// that if the operator already knows the failure rate; the controller
// has to learn it from the campaign's own failure history.

// AdaptbenchConfig parametrizes the sweep.
type AdaptbenchConfig struct {
	// Machines are the cluster models swept (rows come in machine-major
	// order).
	Machines []string
	Solver   string
	Procs    int
	// Spares must cover Procs: the fault plan plants one crash on each
	// of the first Spares physical nodes (workers first, then spares),
	// so every worker carries a planned crash and in the harshest
	// regime the whole initial placement can burn out.
	Spares int
	Steps  int

	// DiskMBs prices checkpoint writes for both sides of the
	// comparison: the probe measures delta (one checkpoint's virtual
	// write cost) through ckpt.SimWriter at this bandwidth, the static
	// runs charge exactly delta per checkpoint, and the adaptive runs
	// write through the same SimWriter via the runtime selector.
	//
	// The quantity Young's formula actually trades off is the
	// dimensionless ratio delta/stepwall, and a demonstration-scale
	// campaign (tens of steps, kilobyte states) would make it
	// vanishingly small at realistic disk speed — every cadence then
	// ties and the sweep measures nothing. The default deliberately
	// slows the virtual store until delta is one-to-a-few step times,
	// the production regime (a minutes-long restart dump against an
	// O(40s) step, per the paper's 250 CPU-hour runs).
	DiskMBs float64

	// StaticIntervals are the fixed cadences the adaptive policy is
	// judged against. SeedInterval seeds the adaptive controller (and
	// sets the reference run's cadence) — the point of the experiment
	// is that the seed should not matter much.
	StaticIntervals []int
	SeedInterval    int

	// MTBFFracs are the failure regimes: each cell plants one crash per
	// node at a time drawn from Exp(frac x fault-free wall). Fractions
	// at or below ~1 make failures a near-certainty; large fractions
	// make them rare.
	MTBFFracs []float64

	// Seeds is the number of independent fault-plan draws averaged per
	// cell (one realized campaign is noisy; the mean is the estimator).
	Seeds int
	Seed  int64

	MaxRestarts int
}

// PaperAdaptbench is the default sweep: the paper's dual-PII cluster in
// both interconnect builds, three regimes from brutal to merely
// unreliable.
var PaperAdaptbench = AdaptbenchConfig{
	Machines:        []string{"RoadRunner-eth", "RoadRunner-myr"},
	Solver:          "nsf",
	Procs:           4,
	Spares:          8,
	Steps:           36,
	DiskMBs:         1,
	StaticIntervals: []int{1, 5, 12},
	SeedInterval:    5,
	MTBFFracs:       []float64{0.3, 0.6, 1.0},
	Seeds:           12,
	Seed:            7,
	MaxRestarts:     24,
}

// QuickAdaptbench is the budget variant for smoke tests and
// `repro -quick`: one machine, one regime, one fault-plan draw.
var QuickAdaptbench = AdaptbenchConfig{
	Machines:        []string{"RoadRunner-eth"},
	Solver:          "nsf",
	Procs:           2,
	Spares:          2,
	Steps:           8,
	DiskMBs:         20,
	StaticIntervals: []int{1, 4},
	SeedInterval:    2,
	MTBFFracs:       []float64{0.6},
	Seeds:           1,
	Seed:            7,
	MaxRestarts:     10,
}

// AdaptStatic is one static cadence's mean time-to-solution in a cell.
type AdaptStatic struct {
	IntervalSteps int
	MeanWallS     float64
}

// AdaptCell is one (machine x MTBF regime) cell of the sweep.
type AdaptCell struct {
	Machine      string
	MTBFFrac     float64
	NodeMTBFS    float64
	ClusterMTBFS float64

	Statics       []AdaptStatic
	AdaptiveWallS float64
	BestStaticS   float64
	WorstStaticS  float64
	// VsBest and VsWorst are the adaptive mean wall divided by the
	// best/worst static mean wall (<= 1 means adaptive wins outright).
	VsBest  float64
	VsWorst float64

	// Adaptive-layer end state from the cell's last campaign.
	FinalInterval   int
	WriteMode       string
	MTBFEstimateS   float64
	CadenceSwitches int
	Escalations     int
	Failures        int

	// BitIdentical reports that every faulted run in the cell — static
	// and adaptive alike — finished bit-identical to the fault-free
	// reference trajectory.
	BitIdentical bool
}

// AdaptbenchResult carries the probe quantities and the full sweep.
type AdaptbenchResult struct {
	Solver       string
	Procs        int
	Steps        int
	SeedInterval int
	Seeds        int

	// Per-machine probe measurements: bare per-step wall, one
	// checkpoint's write cost, and the fault-free supervised wall that
	// anchors the regimes.
	StepWallS map[string]float64
	DeltaS    map[string]float64
	RefWallS  map[string]float64

	Cells []AdaptCell

	// MaxVsBest is the worst cell's adaptive/best-static ratio (the
	// "never much worse than the oracle" criterion); MaxGainVsWorst the
	// best cell's 1 - adaptive/worst-static (the "clearly better than a
	// bad guess" criterion).
	MaxVsBest      float64
	MaxGainVsWorst float64
}

// ValidateAdaptbench checks a sweep configuration and returns an
// actionable error for each way the experiment cannot run.
func ValidateAdaptbench(cfg AdaptbenchConfig) error {
	if len(cfg.Machines) == 0 {
		return fmt.Errorf("bench: need at least one machine to sweep")
	}
	wl, err := WorkloadByName(cfg.Solver)
	if err != nil {
		return err
	}
	if err := ValidateWorkloadRanks(wl, cfg.Procs); err != nil {
		return err
	}
	for _, name := range cfg.Machines {
		mach, merr := machine.ByName(name)
		if merr != nil {
			return fmt.Errorf("%w (see internal/machine for the catalogue)", merr)
		}
		if cfg.Procs+cfg.Spares > mach.MaxProcs {
			return fmt.Errorf("bench: %d ranks + %d spares exceed the %d nodes of %s",
				cfg.Procs, cfg.Spares, mach.MaxProcs, name)
		}
	}
	if cfg.Spares < cfg.Procs {
		return fmt.Errorf("bench: %d spares cannot cover %d ranks — every worker node carries a planned crash, so the harshest regime can burn the whole placement",
			cfg.Spares, cfg.Procs)
	}
	if cfg.Steps < 2 {
		return fmt.Errorf("bench: need at least two steps, got %d", cfg.Steps)
	}
	if cfg.DiskMBs <= 0 || math.IsNaN(cfg.DiskMBs) {
		return fmt.Errorf("bench: disk bandwidth %g MB/s must be positive — it prices the checkpoint writes", cfg.DiskMBs)
	}
	if len(cfg.StaticIntervals) < 2 {
		return fmt.Errorf("bench: need at least two static cadences to bracket the adaptive policy, got %d", len(cfg.StaticIntervals))
	}
	for _, k := range cfg.StaticIntervals {
		if k < 1 {
			return fmt.Errorf("bench: checkpoint interval %d must be at least one step", k)
		}
	}
	if cfg.SeedInterval < 1 {
		return fmt.Errorf("bench: the adaptive seed interval %d must be at least one step", cfg.SeedInterval)
	}
	if len(cfg.MTBFFracs) == 0 {
		return fmt.Errorf("bench: need at least one MTBF regime")
	}
	for _, f := range cfg.MTBFFracs {
		if f <= 0 || math.IsNaN(f) {
			return fmt.Errorf("bench: MTBF fraction %g must be positive — it scales the fault-free wall", f)
		}
	}
	if cfg.Seeds < 1 {
		return fmt.Errorf("bench: need at least one fault-plan seed per cell, got %d", cfg.Seeds)
	}
	return nil
}

// RunAdaptbench executes the sweep and renders the report.
func RunAdaptbench(cfg AdaptbenchConfig) (*AdaptbenchResult, *report.Table, error) {
	if err := ValidateAdaptbench(cfg); err != nil {
		return nil, nil, err
	}
	wl, err := WorkloadByName(cfg.Solver)
	if err != nil {
		return nil, nil, err
	}
	out := &AdaptbenchResult{
		Solver: cfg.Solver, Procs: cfg.Procs, Steps: cfg.Steps,
		SeedInterval: cfg.SeedInterval, Seeds: cfg.Seeds,
		StepWallS: map[string]float64{},
		DeltaS:    map[string]float64{},
		RefWallS:  map[string]float64{},
	}
	tbl := report.NewTable(
		fmt.Sprintf("Adaptbench: adaptive vs static checkpoint cadence — %s, P=%d (+%d spares), %d steps, %d seed(s)/cell",
			cfg.Solver, cfg.Procs, cfg.Spares, cfg.Steps, cfg.Seeds),
		"machine / node MTBF", "static walls (s)", "adaptive (s)", "vs best", "vs worst",
		"final interval", "write mode", "campaign")

	for mi, name := range cfg.Machines {
		mach, merr := machine.ByName(name)
		if merr != nil {
			return nil, nil, merr
		}

		// Probe: measure the bare per-step wall and one checkpoint's
		// virtual write cost (delta) on this machine, through the same
		// SimWriter pricing the adaptive runs use — so the static runs'
		// flat per-checkpoint charge and the adaptive runs' modeled
		// writes price the same event identically.
		var stepWallS, deltaS float64
		const probeSteps = 3
		_, _, err = simnet.Run(cfg.Procs, mach.Net, func(n *simnet.Node) {
			comm := mpi.World(n)
			s, werr := wl.New(comm, &mach.CPU)
			if werr != nil {
				panic(werr)
			}
			s.Step() // warmup
			comm.Barrier()
			w0 := comm.Wtime()
			loop := engine.Loop{Solver: s, Steps: s.StepCount() + probeSteps,
				Rank: comm.Rank(), Watchdog: engine.Watchdog{Disabled: true}}
			lres, lerr := loop.Run()
			if lerr != nil {
				panic(lerr)
			}
			comm.Barrier()
			perStep := (comm.Wtime() - w0) / probeSteps
			sw := &ckpt.SimWriter{Kind: cfg.Solver, Comm: comm, DiskMBs: cfg.DiskMBs, Mode: ckpt.WriteLocal}
			if werr := sw.Submit(s.StepCount(), lres.Final, true); werr != nil {
				panic(werr)
			}
			mx := comm.Allreduce([]float64{perStep, sw.LastCostS()}, mpi.Max)
			if comm.Rank() == 0 {
				stepWallS, deltaS = mx[0], mx[1]
			}
		})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: probe on %s: %w", name, err)
		}
		out.StepWallS[name] = stepWallS
		out.DeltaS[name] = deltaS

		// The supervised runtime owns rank placement (one rank per
		// physical node plus spares and the monitor's head node).
		model := *mach.Net
		model.RanksPerNode = 0
		factory := func(comm *mpi.Comm) (supervisor.Solver, error) {
			return wl.New(comm, &mach.CPU)
		}
		base := supervisor.Config{
			Procs: cfg.Procs, Spares: cfg.Spares,
			Model: &model, NewSolver: factory,
			Steps:           cfg.Steps,
			CheckpointEvery: cfg.SeedInterval,
			CheckpointCostS: deltaS,
			Kind:            cfg.Solver,
			MaxRestarts:     cfg.MaxRestarts,
		}

		// Fault-free supervised reference: anchors the MTBF regimes and
		// is the bit-identity baseline for every faulted run.
		ref, rerr := supervisor.Run(base)
		if rerr != nil {
			return nil, nil, fmt.Errorf("bench: supervised reference on %s: %w", name, rerr)
		}
		out.RefWallS[name] = ref.VirtualWall
		identicalToRef := func(res *supervisor.Result) bool {
			if len(res.FinalStates) != len(ref.FinalStates) {
				return false
			}
			for r := range ref.FinalStates {
				if !bytes.Equal(res.FinalStates[r], ref.FinalStates[r]) {
					return false
				}
			}
			return true
		}
		// Prime the detector past the checkpoint-inflated step boundary:
		// a sparse cadence makes the first checkpoint's delta-long gap
		// stand out against an otherwise tight heartbeat rhythm, and the
		// monitor must not read honest I/O as a stall. The threshold is
		// tightened below the default so the per-crash detection dead
		// time (which every cadence pays identically) does not swamp the
		// recompute differences the sweep is actually measuring; the
		// checkpoint gap still clears it several-fold.
		base.Heartbeat.InitialInterval = 2 * (ref.VirtualWall/float64(cfg.Steps) + deltaS)
		base.Heartbeat.Threshold = 4

		for fi, frac := range cfg.MTBFFracs {
			nodeMTBFS := frac * ref.VirtualWall
			cell := AdaptCell{
				Machine: name, MTBFFrac: frac,
				NodeMTBFS:    nodeMTBFS,
				ClusterMTBFS: nodeMTBFS / float64(cfg.Procs),
				BitIdentical: true,
			}
			// One planned crash per physical node on the first Spares
			// nodes (the workers plus the early spares), drawn from
			// Exp(nodeMTBF). Crash times are node-keyed and
			// attempt-relative, so a rank re-homed onto a planted spare
			// inherits that spare's hazard: the realized failure process
			// stays close to the constant-hazard renewal process Young's
			// formula models, instead of the declining hazard a
			// procs-only plan would give (each planted crash retires
			// with its node). Stopping at Spares planted nodes bounds
			// total crashes — each crash consumes one spare — so the
			// pool can never be exhausted regardless of cadence. The
			// same seed rebuilds the identical plan for every variant,
			// so all cadences face the same realized failure history.
			planFor := func(seed int64) simnet.Injector {
				p := fault.NewPlan(seed)
				for node := 0; node < cfg.Spares; node++ {
					p.CrashRandom(node, nodeMTBFS)
				}
				return p
			}
			staticSum := make([]float64, len(cfg.StaticIntervals))
			var adaptSum float64
			var lastAdaptive *supervisor.Result
			for si := 0; si < cfg.Seeds; si++ {
				seed := cfg.Seed + int64(100003*mi+1009*fi+si)
				for ki, k := range cfg.StaticIntervals {
					run := base
					run.Faults = planFor(seed)
					run.CheckpointEvery = k
					res, serr := supervisor.Run(run)
					if serr != nil {
						return nil, nil, fmt.Errorf("bench: %s frac %g static %d seed %d: %w", name, frac, k, si, serr)
					}
					staticSum[ki] += res.VirtualWall
					if !identicalToRef(res) {
						cell.BitIdentical = false
					}
				}
				var tbuf bytes.Buffer
				run := base
				run.Faults = planFor(seed)
				run.SimDiskMBs = cfg.DiskMBs
				run.Adapt = &policy.Config{
					Mode: policy.Adaptive,
					// The controller gets only an order-of-magnitude
					// prior (the regime's cluster MTBF); the live
					// estimate comes from the campaign's own failures.
					PriorMTBFS: nodeMTBFS / float64(cfg.Procs),
					// A demonstration campaign sees only a handful of
					// failures, so the estimator needs a fast learning
					// rate to move off the prior within one run; the
					// default suits long production campaigns.
					Alpha: 0.7,
					Trace: engine.NewTracer(&tbuf),
				}
				res, serr := supervisor.Run(run)
				if serr != nil {
					return nil, nil, fmt.Errorf("bench: %s frac %g adaptive seed %d: %w", name, frac, si, serr)
				}
				adaptSum += res.VirtualWall
				if !identicalToRef(res) {
					cell.BitIdentical = false
				}
				cell.Failures += len(res.Failures)
				cell.Escalations += len(res.Escalations)
				evs, everr := engine.ReadEvents(&tbuf)
				if everr != nil {
					return nil, nil, fmt.Errorf("bench: reading adaptive trace: %w", everr)
				}
				for _, e := range evs {
					if e.Ev == engine.EvPolicySwitch && e.Policy == "cadence" {
						cell.CadenceSwitches++
					}
				}
				lastAdaptive = res
			}

			cell.AdaptiveWallS = adaptSum / float64(cfg.Seeds)
			cell.BestStaticS, cell.WorstStaticS = math.Inf(1), 0
			var staticCol []string
			for ki, k := range cfg.StaticIntervals {
				mean := staticSum[ki] / float64(cfg.Seeds)
				cell.Statics = append(cell.Statics, AdaptStatic{IntervalSteps: k, MeanWallS: mean})
				cell.BestStaticS = math.Min(cell.BestStaticS, mean)
				cell.WorstStaticS = math.Max(cell.WorstStaticS, mean)
				staticCol = append(staticCol, fmt.Sprintf("%d:%.4g", k, mean))
			}
			cell.VsBest = cell.AdaptiveWallS / cell.BestStaticS
			cell.VsWorst = cell.AdaptiveWallS / cell.WorstStaticS
			cell.FinalInterval = lastAdaptive.FinalInterval
			cell.WriteMode = lastAdaptive.WriteMode
			cell.MTBFEstimateS = lastAdaptive.MTBFEstimateS
			out.Cells = append(out.Cells, cell)
			out.MaxVsBest = math.Max(out.MaxVsBest, cell.VsBest)
			out.MaxGainVsWorst = math.Max(out.MaxGainVsWorst, 1-cell.VsWorst)

			campaign := fmt.Sprintf("%d failures, %d retunes", cell.Failures, cell.CadenceSwitches)
			if cell.Escalations > 0 {
				campaign += fmt.Sprintf(", %d escalations", cell.Escalations)
			}
			if !cell.BitIdentical {
				campaign += ", NOT bit-identical"
			}
			tbl.AddRow(
				fmt.Sprintf("%s / %.3gs", name, nodeMTBFS),
				strings.Join(staticCol, "  "),
				fmt.Sprintf("%.4g", cell.AdaptiveWallS),
				fmt.Sprintf("%.3f", cell.VsBest),
				fmt.Sprintf("%.3f", cell.VsWorst),
				fmt.Sprintf("%d", cell.FinalInterval),
				cell.WriteMode,
				campaign,
			)
		}
	}
	for _, c := range out.Cells {
		if !c.BitIdentical {
			return out, tbl, fmt.Errorf("bench: a recovered trajectory in cell %s/%g is NOT bit-identical to the reference", c.Machine, c.MTBFFrac)
		}
	}
	return out, tbl, nil
}
