package bench

import (
	"fmt"
	"testing"

	"nektar/internal/simnet"
)

// TestScalebenchQuick runs the test-sized weak/strong sweep on both
// capacity-sweep interconnect models under the relaxed scheduler.
func TestScalebenchQuick(t *testing.T) {
	t.Setenv(simnet.SchedulerEnv, "")
	res, tbl, err := RunScalebench(QuickScalebench)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(QuickScalebench.Machines) * 2 * len(QuickScalebench.Procs)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	for _, c := range res.Cells {
		if c.StepVirtualS <= 0 || c.Efficiency <= 0 {
			t.Errorf("%s %s P=%d: non-positive measurement: %+v", c.Machine, c.Mode, c.Procs, c)
		}
		if c.Procs == QuickScalebench.Procs[0] && c.Efficiency != 1 {
			t.Errorf("%s %s baseline efficiency = %v, want 1", c.Machine, c.Mode, c.Efficiency)
		}
	}
	// The kernel-bypass GbE must beat the TCP Fast Ethernet per step at
	// every rank count — the point of calibrating both.
	perStep := map[string]map[int]float64{}
	for _, c := range res.Cells {
		if c.Mode != "weak" {
			continue
		}
		if perStep[c.Machine] == nil {
			perStep[c.Machine] = map[int]float64{}
		}
		perStep[c.Machine][c.Procs] = c.StepVirtualS
	}
	for _, p := range QuickScalebench.Procs {
		if !(perStep["Tanaka"][p] < perStep["PMS"][p]) {
			t.Errorf("P=%d: Tanaka %.6fs/step not below PMS %.6fs/step",
				p, perStep["Tanaka"][p], perStep["PMS"][p])
		}
	}
}

// TestScalebenchSolverWorkloads: the real solvers run as capacity-sweep
// workloads — weak cells at N = 2P, strong cells at N = 2*maxP — and
// the skeleton keeps its own rank list.
func TestScalebenchSolverWorkloads(t *testing.T) {
	t.Setenv(simnet.SchedulerEnv, "")
	cfg := ScalebenchConfig{
		Machines:    []string{"PMS"},
		Procs:       []int{4, 8},
		Steps:       2,
		HaloElems:   512,
		ComputeS:    1e-4,
		Scheduler:   simnet.SchedRelaxed,
		Workloads:   []string{"skeleton", "turb2d", "turbforce"},
		SolverProcs: []int{4, 8},
	}
	res, tbl, err := RunScalebench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads x 2 modes x 2 rank counts on one machine.
	if len(res.Cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.StepVirtualS <= 0 || c.Efficiency <= 0 {
			t.Errorf("%s %s %s P=%d: non-positive measurement: %+v", c.Machine, c.Workload, c.Mode, c.Procs, c)
		}
		switch {
		case c.Workload == "skeleton":
			if c.GridN != 0 {
				t.Errorf("skeleton cell carries grid N=%d", c.GridN)
			}
		case c.Mode == "weak":
			if c.GridN != 2*c.Procs {
				t.Errorf("%s weak P=%d: grid N=%d, want %d", c.Workload, c.Procs, c.GridN, 2*c.Procs)
			}
		default: // solver strong scaling
			if c.GridN != 16 {
				t.Errorf("%s strong P=%d: grid N=%d, want 16", c.Workload, c.Procs, c.GridN)
			}
		}
	}
	// The solver workloads must cost more virtual time per step than the
	// synthetic skeleton at the same rank count: they move whole N x M
	// matrices through the transposes, not a fixed halo ring.
	byKey := map[string]float64{}
	for _, c := range res.Cells {
		byKey[fmt.Sprintf("%s/%s/%d", c.Workload, c.Mode, c.Procs)] = c.StepVirtualS
	}
	if !(byKey["turb2d/weak/8"] > byKey["skeleton/weak/8"]) {
		t.Errorf("turb2d weak P=8 (%.6fs/step) not above skeleton (%.6fs/step)",
			byKey["turb2d/weak/8"], byKey["skeleton/weak/8"])
	}
	if tbl == nil {
		t.Fatal("missing table")
	}
}

// TestScalebenchSolverNeedsProcs: a solver workload without SolverProcs
// is a config error, not a silent skeleton fallback.
func TestScalebenchSolverNeedsProcs(t *testing.T) {
	cfg := QuickScalebench
	cfg.Workloads = []string{"turb2d"}
	if _, _, err := RunScalebench(cfg); err == nil {
		t.Fatal("expected SolverProcs rejection")
	}
}

// TestScalebenchRejectsOverMaxProcs: projecting a model past its
// MaxProcs must fail loudly, not extrapolate silently.
func TestScalebenchRejectsOverMaxProcs(t *testing.T) {
	cfg := QuickScalebench
	cfg.Machines = []string{"Muses"} // MaxProcs 4
	if _, _, err := RunScalebench(cfg); err == nil {
		t.Fatal("expected MaxProcs rejection for Muses at P=8")
	}
}
