package bench

import (
	"testing"

	"nektar/internal/simnet"
)

// TestScalebenchQuick runs the test-sized weak/strong sweep on both
// capacity-sweep interconnect models under the relaxed scheduler.
func TestScalebenchQuick(t *testing.T) {
	t.Setenv(simnet.SchedulerEnv, "")
	res, tbl, err := RunScalebench(QuickScalebench)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(QuickScalebench.Machines) * 2 * len(QuickScalebench.Procs)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	for _, c := range res.Cells {
		if c.StepVirtualS <= 0 || c.Efficiency <= 0 {
			t.Errorf("%s %s P=%d: non-positive measurement: %+v", c.Machine, c.Mode, c.Procs, c)
		}
		if c.Procs == QuickScalebench.Procs[0] && c.Efficiency != 1 {
			t.Errorf("%s %s baseline efficiency = %v, want 1", c.Machine, c.Mode, c.Efficiency)
		}
	}
	// The kernel-bypass GbE must beat the TCP Fast Ethernet per step at
	// every rank count — the point of calibrating both.
	perStep := map[string]map[int]float64{}
	for _, c := range res.Cells {
		if c.Mode != "weak" {
			continue
		}
		if perStep[c.Machine] == nil {
			perStep[c.Machine] = map[int]float64{}
		}
		perStep[c.Machine][c.Procs] = c.StepVirtualS
	}
	for _, p := range QuickScalebench.Procs {
		if !(perStep["Tanaka"][p] < perStep["PMS"][p]) {
			t.Errorf("P=%d: Tanaka %.6fs/step not below PMS %.6fs/step",
				p, perStep["Tanaka"][p], perStep["PMS"][p])
		}
	}
}

// TestScalebenchRejectsOverMaxProcs: projecting a model past its
// MaxProcs must fail loudly, not extrapolate silently.
func TestScalebenchRejectsOverMaxProcs(t *testing.T) {
	cfg := QuickScalebench
	cfg.Machines = []string{"Muses"} // MaxProcs 4
	if _, _, err := RunScalebench(cfg); err == nil {
		t.Fatal("expected MaxProcs rejection for Muses at P=8")
	}
}
