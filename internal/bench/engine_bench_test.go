package bench

import (
	"encoding/json"
	"io"
	"os"
	"testing"

	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/mesh"
)

// Engine micro-benchmarks: the driver loop's own overhead on top of a
// real (small) NS2D solver — stepping, checkpoint serialization, and
// the per-step trace emission. BENCH_engine.json at the repo root is
// the committed baseline; regenerate it with
//
//	BENCH_BASELINE=1 go test ./internal/bench -run TestWriteEngineBaseline
//
// (or `make bench-baseline`) and commit the diff when the engine's
// cost profile changes on purpose.

func benchNS2D(b *testing.B) *core.NS2D {
	b.Helper()
	m, err := mesh.BluffBody(3, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	ns, err := core.NewNS2D(m, core.NS2DConfig{
		Nu: 1.0 / 500, Dt: 2e-3, Order: 2,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": core.ConstantVel(1, 0),
		},
		PresDirichlet: map[string]bool{"outflow": true},
	})
	if err != nil {
		b.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)
	ns.Step() // multistep order ramp
	ns.Step()
	return ns
}

func BenchmarkEngineStep(b *testing.B) {
	ns := benchNS2D(b)
	b.ReportAllocs()
	b.ResetTimer()
	loop := engine.Loop{Solver: ns, Steps: ns.StepCount() + b.N,
		Watchdog: engine.Watchdog{Disabled: true}}
	if _, err := loop.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineCheckpoint(b *testing.B) {
	ns := benchNS2D(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Marshal(ns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTracedStep(b *testing.B) {
	ns := benchNS2D(b)
	b.ReportAllocs()
	b.ResetTimer()
	loop := engine.Loop{Solver: ns, Steps: ns.StepCount() + b.N,
		Watchdog: engine.Watchdog{Disabled: true},
		Trace:    engine.NewTracer(io.Discard)}
	if _, err := loop.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestWriteEngineBaseline regenerates BENCH_engine.json at the repo
// root. Gated behind BENCH_BASELINE=1 so normal test runs stay fast
// and deterministic.
func TestWriteEngineBaseline(t *testing.T) {
	if os.Getenv("BENCH_BASELINE") == "" {
		t.Skip("set BENCH_BASELINE=1 to regenerate BENCH_engine.json")
	}
	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
	}
	out := map[string]entry{}
	for name, fn := range map[string]func(*testing.B){
		"EngineStep":       BenchmarkEngineStep,
		"EngineCheckpoint": BenchmarkEngineCheckpoint,
		"EngineTracedStep": BenchmarkEngineTracedStep,
	} {
		r := testing.Benchmark(fn)
		out[name] = entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_engine.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_engine.json:\n%s", buf)
}
