package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// WriteSimnetBaseline records res as the committed scheduler baseline
// at path. A single-core host cannot measure what the parallel
// scheduler buys — every speedup it records is bounded by 1x and would
// silently replace a multi-core measurement with noise — so without
// force the write is refused when runtime.NumCPU() == 1. The force
// path still stamps GoMaxProcs/NumCPU into the file, so a deliberately
// recorded 1-core baseline is at least honest about its core budget.
func WriteSimnetBaseline(path string, res *SimbenchResult, force bool) error {
	if runtime.NumCPU() == 1 && !force {
		return fmt.Errorf(
			"bench: refusing to overwrite %s from a 1-core host: the serial-vs-parallel speedups would be core-starved noise, not a baseline; re-run on a multi-core host, or pass -force to record anyway (the file stamps NumCPU=1 so readers can discount it)",
			path)
	}
	return writeBaselineJSON(path, res)
}

// writeBaselineJSON renders a baseline schema to its committed file.
func writeBaselineJSON(path string, res any) error {
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
