package bench

import (
	"encoding/json"
	"os"
	"testing"
)

func quickAdaptbench() AdaptbenchConfig {
	return QuickAdaptbench
}

// The quick sweep exercises the whole differential pipeline: probe,
// reference, static sweep, adaptive campaign, bit-identity audit.
func TestAdaptbenchQuickSweep(t *testing.T) {
	res, tbl, err := RunAdaptbench(quickAdaptbench())
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	if !c.BitIdentical {
		t.Error("faulted campaigns not bit-identical to the reference")
	}
	if c.AdaptiveWallS <= 0 || c.BestStaticS <= 0 || c.WorstStaticS < c.BestStaticS {
		t.Errorf("degenerate cell walls: %+v", c)
	}
	if res.DeltaS["RoadRunner-eth"] <= 0 || res.RefWallS["RoadRunner-eth"] <= 0 {
		t.Errorf("probe quantities missing: delta=%v ref=%v", res.DeltaS, res.RefWallS)
	}
	if c.WriteMode == "" || c.FinalInterval < 1 {
		t.Errorf("adaptive end state not reported: %+v", c)
	}
}

func TestAdaptbenchValidation(t *testing.T) {
	bad := func(mut func(*AdaptbenchConfig)) error {
		cfg := quickAdaptbench()
		mut(&cfg)
		return ValidateAdaptbench(cfg)
	}
	cases := map[string]func(*AdaptbenchConfig){
		"no machines":     func(c *AdaptbenchConfig) { c.Machines = nil },
		"unknown machine": func(c *AdaptbenchConfig) { c.Machines = []string{"Cray-T3E"} },
		"bad workload":    func(c *AdaptbenchConfig) { c.Solver = "nsq" },
		"odd ranks":       func(c *AdaptbenchConfig) { c.Procs = 3; c.Spares = 3 },
		"thin spares":     func(c *AdaptbenchConfig) { c.Spares = 1 },
		"no statics":      func(c *AdaptbenchConfig) { c.StaticIntervals = []int{4} },
		"zero interval":   func(c *AdaptbenchConfig) { c.StaticIntervals = []int{0, 4} },
		"bad seed cad":    func(c *AdaptbenchConfig) { c.SeedInterval = 0 },
		"no regimes":      func(c *AdaptbenchConfig) { c.MTBFFracs = nil },
		"bad regime":      func(c *AdaptbenchConfig) { c.MTBFFracs = []float64{-1} },
		"no disk":         func(c *AdaptbenchConfig) { c.DiskMBs = 0 },
		"no seeds":        func(c *AdaptbenchConfig) { c.Seeds = 0 },
	}
	for name, mut := range cases {
		if err := bad(mut); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if err := ValidateAdaptbench(quickAdaptbench()); err != nil {
		t.Errorf("quick config rejected: %v", err)
	}
}

// TestWriteAdaptBaseline regenerates BENCH_adapt.json (the committed
// adaptbench baseline) when BENCH_ADAPT=1 is set, and enforces the
// acceptance bar of the adaptive layer: within 5% of the best static
// cadence in every cell, and at least 20% better than the worst static
// cadence in at least one. `make bench-adapt` runs it.
func TestWriteAdaptBaseline(t *testing.T) {
	if os.Getenv("BENCH_ADAPT") == "" {
		t.Skip("set BENCH_ADAPT=1 to regenerate BENCH_adapt.json")
	}
	res, tbl, err := RunAdaptbench(PaperAdaptbench)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	if res.MaxVsBest > 1.05 {
		t.Errorf("adaptive is %.1f%% over the best static cadence in its worst cell, want <= 5%%", 100*(res.MaxVsBest-1))
	}
	if res.MaxGainVsWorst < 0.20 {
		t.Errorf("adaptive beats the worst static cadence by only %.1f%% at best, want >= 20%%", 100*res.MaxGainVsWorst)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_adapt.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
