package bench

import (
	"fmt"
	"time"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
	"nektar/internal/spectral"
)

// Scalebench: project the paper's weak/strong scaling tables past the
// machines it could buy. Each cell runs a synthetic spectral-element
// communication skeleton — per-step local compute, a ring halo
// exchange, and one Allreduce (the pressure-solve dot products) — on a
// calibrated interconnect model at processor counts up to 1024. The
// skeleton is pure simnet: no solver state, so the virtual-time tables
// measure the network model, and the host cost stays low enough for
// P=1024 sweeps under the relaxed scheduler.
//
// Weak scaling holds the per-rank work and halo fixed (the paper's
// two-planes-per-processor Nektar-F setup); strong scaling divides a
// fixed total problem across ranks. Both report virtual seconds per
// step and the efficiency against the sweep's smallest rank count.

// ScalebenchConfig parametrizes the sweep.
type ScalebenchConfig struct {
	Machines []string
	Procs    []int // ascending; the first entry is the efficiency baseline
	Steps    int

	// Workloads selects the cell bodies. "skeleton" is the synthetic
	// halo+allreduce shape above; "turb2d" and "turbforce" run the real
	// slab-decomposed pseudospectral solvers under the swept machine's
	// CPU and network models. Empty means skeleton only.
	Workloads []string
	// SolverProcs is the rank-count list for the solver workloads; the
	// skeleton keeps Procs. Solver cells size their grid from the rank
	// count — weak scaling runs N = 2P (the paper's two-planes-per-
	// processor setup: each rank owns two ky rows of a growing grid),
	// strong scaling runs N = 2*max(SolverProcs) divided ever thinner.
	// Every P here must divide both N and the padded grid 3N/2, which
	// P = powers of two >= 4 satisfy for both sizings. Kept separate
	// from Procs because a P=1024 live solver run is a host-memory
	// wall the skeleton does not have.
	SolverProcs []int

	// HaloElems is the per-rank halo payload in float64 elements at the
	// baseline rank count (weak: constant per rank; strong: scaled down
	// with 1/P from the baseline).
	HaloElems int
	// ComputeS is the per-rank compute time per step at the baseline
	// rank count, in virtual seconds (weak: constant; strong: 1/P).
	ComputeS float64

	// Scheduler runs the sweep's simulations; the capacity sweep uses
	// SchedRelaxed (a P=1024 conservative run admits every event through
	// one election and is prohibitively slow on a small host).
	Scheduler simnet.Scheduler
}

// PaperScalebench is the committed capacity sweep: the PMS Fast
// Ethernet and the Tanaka kernel-bypass GbE models from P=64 to
// P=1024, relaxed scheduler.
var PaperScalebench = ScalebenchConfig{
	Machines:  []string{"PMS", "Tanaka"},
	Procs:     []int{64, 256, 1024},
	Steps:     2,
	HaloElems: 4096, // 32 KB: rendezvous on both fabrics
	ComputeS:  2e-4,
	Scheduler: simnet.SchedRelaxed,
	Workloads: []string{"skeleton", "turb2d", "turbforce"},
	// 1024 live solver ranks is a host-memory wall (ROADMAP); the real
	// solvers sweep to 256 and the skeleton carries the 1024 column.
	SolverProcs: []int{64, 256},
}

// QuickScalebench is the test-sized variant.
var QuickScalebench = ScalebenchConfig{
	Machines:  []string{"PMS", "Tanaka"},
	Procs:     []int{8, 16},
	Steps:     2,
	HaloElems: 512,
	ComputeS:  1e-4,
	Scheduler: simnet.SchedRelaxed,
}

// ScaleCellResult is one machine x workload x P x mode measurement.
type ScaleCellResult struct {
	Machine  string
	Workload string // "skeleton" | "turb2d" | "turbforce"
	Procs    int
	Mode     string // "weak" | "strong"
	GridN    int    // solver grid size (0 for the skeleton)

	StepVirtualS float64 // max per-rank virtual wall seconds per step
	HostS        float64 // real host seconds for the whole run
	// Efficiency is T_base/T for weak scaling and T_base*(P_base/P)/T
	// for strong scaling, both against the sweep's smallest P.
	Efficiency float64
}

// ScalebenchResult is the recorded sweep.
type ScalebenchResult struct {
	Steps     int
	Scheduler string
	Cells     []ScaleCellResult
}

// scaleBody returns the communication skeleton for one cell.
func scaleBody(cfg *ScalebenchConfig, p int, weak bool) func(*simnet.Node) {
	compute := cfg.ComputeS
	elems := cfg.HaloElems
	if !weak {
		base := cfg.Procs[0]
		compute = cfg.ComputeS * float64(base) / float64(p)
		elems = cfg.HaloElems * base / p
		if elems < 16 {
			elems = 16
		}
	}
	steps := cfg.Steps
	return func(n *simnet.Node) {
		comm := mpi.World(n)
		halo := make([]float64, elems)
		next := (n.Rank + 1) % p
		prev := (n.Rank + p - 1) % p
		for s := 0; s < steps; s++ {
			comm.Compute(compute)
			comm.Sendrecv(next, 1000+s, halo, prev, 1000+s)
			comm.Allreduce([]float64{float64(n.Rank)}, mpi.Sum)
		}
	}
}

// solverGridN sizes a real-solver cell's grid from the rank count:
// weak scaling keeps two ky rows per rank (N = 2P); strong scaling
// fixes N at two rows per rank of the sweep's largest count.
func solverGridN(solverProcs []int, p int, weak bool) int {
	if weak {
		return 2 * p
	}
	maxP := 0
	for _, q := range solverProcs {
		maxP = max(maxP, q)
	}
	return 2 * maxP
}

// solverBody returns a live pseudospectral solver run for one cell:
// the full slab pipeline — transforms, distributed transposes, priced
// local compute — under the swept machine's CPU model.
func solverBody(variant string, n, steps int, cpu *machine.CPU) func(*simnet.Node) {
	mk := spectral.NewTurb2D
	if variant == "turbforce" {
		mk = spectral.NewForced
	}
	return func(nd *simnet.Node) {
		cfg := spectral.Config{N: n, Re: 500, Dt: 1e-3, Seed: 11}
		if variant == "turbforce" {
			// The smallest weak-scaling grids cannot hold the default
			// [3, 5] forcing band (hi must stay <= N/3), so force the
			// largest band every swept grid admits.
			cfg.ForceLo, cfg.ForceHi = 1, min(5, n/3)
		}
		s, err := mk(cfg, mpi.World(nd), cpu)
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			s.Step()
		}
	}
}

// runScaleCell runs one machine x workload x P x mode cell and returns
// the virtual step time, host seconds, and the solver grid (0 for the
// skeleton).
func runScaleCell(cfg *ScalebenchConfig, mach *machine.Machine, workload string, p int, weak bool) (stepVirtualS, hostS float64, gridN int, err error) {
	if p > mach.MaxProcs {
		return 0, 0, 0, fmt.Errorf("bench: scalebench %s: P=%d exceeds MaxProcs=%d", mach.Name, p, mach.MaxProcs)
	}
	body := scaleBody(cfg, p, weak)
	if workload != "skeleton" {
		gridN = solverGridN(cfg.SolverProcs, p, weak)
		body = solverBody(workload, gridN, cfg.Steps, &mach.CPU)
	}
	model := *mach.Net
	model.Scheduler = cfg.Scheduler
	t0 := time.Now()
	wall, _, err := simnet.Run(p, &model, body)
	if err != nil {
		return 0, 0, 0, err
	}
	var maxWall float64
	for _, w := range wall {
		maxWall = max(maxWall, w)
	}
	return maxWall / float64(cfg.Steps), time.Since(t0).Seconds(), gridN, nil
}

// RunScalebench executes the sweep and renders the weak/strong tables.
func RunScalebench(cfg ScalebenchConfig) (*ScalebenchResult, *report.Table, error) {
	if len(cfg.Procs) == 0 {
		return nil, nil, fmt.Errorf("bench: scalebench: empty processor list")
	}
	workloads := cfg.Workloads
	if len(workloads) == 0 {
		workloads = []string{"skeleton"}
	}
	res := &ScalebenchResult{
		Steps:     cfg.Steps,
		Scheduler: cfg.Scheduler.String(),
	}
	for _, name := range cfg.Machines {
		mach, err := machine.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		for _, workload := range workloads {
			procs := cfg.Procs
			if workload != "skeleton" {
				if procs = cfg.SolverProcs; len(procs) == 0 {
					return nil, nil, fmt.Errorf("bench: scalebench: workload %q needs SolverProcs", workload)
				}
			}
			for _, mode := range []string{"weak", "strong"} {
				weak := mode == "weak"
				var baseStep float64
				for i, p := range procs {
					stepS, hostS, gridN, err := runScaleCell(&cfg, mach, workload, p, weak)
					if err != nil {
						return nil, nil, fmt.Errorf("bench: scalebench %s %s %s P=%d: %w", name, workload, mode, p, err)
					}
					if i == 0 {
						baseStep = stepS
					}
					eff := baseStep / stepS
					if !weak {
						eff *= float64(procs[0]) / float64(p)
					}
					res.Cells = append(res.Cells, ScaleCellResult{
						Machine: name, Workload: workload, Procs: p, Mode: mode,
						GridN: gridN, StepVirtualS: stepS, HostS: hostS, Efficiency: eff,
					})
				}
			}
		}
	}
	tbl := report.NewTable(
		fmt.Sprintf("Scalebench: capacity sweep, virtual s/step (%s scheduler, %d steps)",
			res.Scheduler, res.Steps),
		"machine", "workload", "mode", "P", "grid N", "virtual s/step", "efficiency", "host s")
	for _, c := range res.Cells {
		grid := "-"
		if c.GridN > 0 {
			grid = fmt.Sprintf("%d", c.GridN)
		}
		tbl.AddRow(c.Machine, c.Workload, c.Mode, fmt.Sprintf("%d", c.Procs), grid,
			fmt.Sprintf("%.6f", c.StepVirtualS), fmt.Sprintf("%.2f", c.Efficiency),
			fmt.Sprintf("%.3f", c.HostS))
	}
	return res, tbl, nil
}
