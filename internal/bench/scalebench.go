package bench

import (
	"fmt"
	"time"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
)

// Scalebench: project the paper's weak/strong scaling tables past the
// machines it could buy. Each cell runs a synthetic spectral-element
// communication skeleton — per-step local compute, a ring halo
// exchange, and one Allreduce (the pressure-solve dot products) — on a
// calibrated interconnect model at processor counts up to 1024. The
// skeleton is pure simnet: no solver state, so the virtual-time tables
// measure the network model, and the host cost stays low enough for
// P=1024 sweeps under the relaxed scheduler.
//
// Weak scaling holds the per-rank work and halo fixed (the paper's
// two-planes-per-processor Nektar-F setup); strong scaling divides a
// fixed total problem across ranks. Both report virtual seconds per
// step and the efficiency against the sweep's smallest rank count.

// ScalebenchConfig parametrizes the sweep.
type ScalebenchConfig struct {
	Machines []string
	Procs    []int // ascending; the first entry is the efficiency baseline
	Steps    int

	// HaloElems is the per-rank halo payload in float64 elements at the
	// baseline rank count (weak: constant per rank; strong: scaled down
	// with 1/P from the baseline).
	HaloElems int
	// ComputeS is the per-rank compute time per step at the baseline
	// rank count, in virtual seconds (weak: constant; strong: 1/P).
	ComputeS float64

	// Scheduler runs the sweep's simulations; the capacity sweep uses
	// SchedRelaxed (a P=1024 conservative run admits every event through
	// one election and is prohibitively slow on a small host).
	Scheduler simnet.Scheduler
}

// PaperScalebench is the committed capacity sweep: the PMS Fast
// Ethernet and the Tanaka kernel-bypass GbE models from P=64 to
// P=1024, relaxed scheduler.
var PaperScalebench = ScalebenchConfig{
	Machines:  []string{"PMS", "Tanaka"},
	Procs:     []int{64, 256, 1024},
	Steps:     2,
	HaloElems: 4096, // 32 KB: rendezvous on both fabrics
	ComputeS:  2e-4,
	Scheduler: simnet.SchedRelaxed,
}

// QuickScalebench is the test-sized variant.
var QuickScalebench = ScalebenchConfig{
	Machines:  []string{"PMS", "Tanaka"},
	Procs:     []int{8, 16},
	Steps:     2,
	HaloElems: 512,
	ComputeS:  1e-4,
	Scheduler: simnet.SchedRelaxed,
}

// ScaleCellResult is one machine x P x mode measurement.
type ScaleCellResult struct {
	Machine string
	Procs   int
	Mode    string // "weak" | "strong"

	StepVirtualS float64 // max per-rank virtual wall seconds per step
	HostS        float64 // real host seconds for the whole run
	// Efficiency is T_base/T for weak scaling and T_base*(P_base/P)/T
	// for strong scaling, both against the sweep's smallest P.
	Efficiency float64
}

// ScalebenchResult is the recorded sweep.
type ScalebenchResult struct {
	Steps     int
	Scheduler string
	Cells     []ScaleCellResult
}

// scaleBody returns the communication skeleton for one cell.
func scaleBody(cfg *ScalebenchConfig, p int, weak bool) func(*simnet.Node) {
	compute := cfg.ComputeS
	elems := cfg.HaloElems
	if !weak {
		base := cfg.Procs[0]
		compute = cfg.ComputeS * float64(base) / float64(p)
		elems = cfg.HaloElems * base / p
		if elems < 16 {
			elems = 16
		}
	}
	steps := cfg.Steps
	return func(n *simnet.Node) {
		comm := mpi.World(n)
		halo := make([]float64, elems)
		next := (n.Rank + 1) % p
		prev := (n.Rank + p - 1) % p
		for s := 0; s < steps; s++ {
			comm.Compute(compute)
			comm.Sendrecv(next, 1000+s, halo, prev, 1000+s)
			comm.Allreduce([]float64{float64(n.Rank)}, mpi.Sum)
		}
	}
}

// runScaleCell runs one machine x P x mode cell.
func runScaleCell(cfg *ScalebenchConfig, mach *machine.Machine, p int, weak bool) (stepVirtualS, hostS float64, err error) {
	if p > mach.MaxProcs {
		return 0, 0, fmt.Errorf("bench: scalebench %s: P=%d exceeds MaxProcs=%d", mach.Name, p, mach.MaxProcs)
	}
	model := *mach.Net
	model.Scheduler = cfg.Scheduler
	t0 := time.Now()
	wall, _, err := simnet.Run(p, &model, scaleBody(cfg, p, weak))
	if err != nil {
		return 0, 0, err
	}
	var maxWall float64
	for _, w := range wall {
		maxWall = max(maxWall, w)
	}
	return maxWall / float64(cfg.Steps), time.Since(t0).Seconds(), nil
}

// RunScalebench executes the sweep and renders the weak/strong tables.
func RunScalebench(cfg ScalebenchConfig) (*ScalebenchResult, *report.Table, error) {
	if len(cfg.Procs) == 0 {
		return nil, nil, fmt.Errorf("bench: scalebench: empty processor list")
	}
	res := &ScalebenchResult{
		Steps:     cfg.Steps,
		Scheduler: cfg.Scheduler.String(),
	}
	for _, name := range cfg.Machines {
		mach, err := machine.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		for _, mode := range []string{"weak", "strong"} {
			weak := mode == "weak"
			var baseStep float64
			for i, p := range cfg.Procs {
				stepS, hostS, err := runScaleCell(&cfg, mach, p, weak)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: scalebench %s %s P=%d: %w", name, mode, p, err)
				}
				if i == 0 {
					baseStep = stepS
				}
				eff := baseStep / stepS
				if !weak {
					eff *= float64(cfg.Procs[0]) / float64(p)
				}
				res.Cells = append(res.Cells, ScaleCellResult{
					Machine: name, Procs: p, Mode: mode,
					StepVirtualS: stepS, HostS: hostS, Efficiency: eff,
				})
			}
		}
	}
	tbl := report.NewTable(
		fmt.Sprintf("Scalebench: halo+allreduce skeleton, virtual s/step (%s scheduler, %d steps)",
			res.Scheduler, res.Steps),
		"machine", "mode", "P", "virtual s/step", "efficiency", "host s")
	for _, c := range res.Cells {
		tbl.AddRow(c.Machine, c.Mode, fmt.Sprintf("%d", c.Procs),
			fmt.Sprintf("%.6f", c.StepVirtualS), fmt.Sprintf("%.2f", c.Efficiency),
			fmt.Sprintf("%.3f", c.HostS))
	}
	return res, tbl, nil
}
