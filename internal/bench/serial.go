package bench

import (
	"fmt"

	"nektar/internal/ckpt"
	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/report"
	"nektar/internal/timing"
)

// SerialConfig parametrizes the Table 1 / Figure 12 experiment: the
// serial bluff-body DNS on an O-grid of Nt x Nr spectral elements.
type SerialConfig struct {
	Nt, Nr int
	Order  int
	Steps  int // measured steps (after a 2-step order ramp)

	// Trace, when set, receives the engine's per-step event stream for
	// the measured steps.
	Trace *engine.Tracer

	// CkptDir, when set, streams a durable checkpoint every CkptEvery
	// steps (plus the final state) into an on-disk store there, written
	// by the async background writer so the step loop only pays the
	// marshal.
	CkptDir   string
	CkptEvery int
}

// PaperSerial is the paper's discretization: 902 elements at
// polynomial order 8 (~230,000 total degrees of freedom over the three
// fields).
var PaperSerial = SerialConfig{Nt: 82, Nr: 11, Order: 8, Steps: 1}

// Table1Machines are the rows of the paper's Table 1.
var Table1Machines = []string{
	"AP3000", "Onyx2", "Muses", "SP2-Thin2", "SP2-Silver", "T3E", "P2SC",
}

// table1Label maps machine names onto the paper's row labels.
var table1Label = map[string]string{
	"Muses": "Pentium II, 450Mhz", "SP2-Thin2": "SP2 \"Thin2\" nodes",
	"SP2-Silver": "SP2 \"Silver\" nodes", "AP3000": "Fujitsu AP3000",
	"Onyx2": "Onyx 2",
}

// SerialResult is one machine's Table 1 entry plus its Figure 12 stage
// breakdown.
type SerialResult struct {
	Machine  string
	CPU      float64 // seconds per step
	StageSec [7]float64
	StagePct [7]float64
}

// RunSerial executes the serial DNS for real at the configured scale,
// records the per-stage BLAS operation counts of one step, and prices
// them on every Table 1 machine.
func RunSerial(cfg SerialConfig) ([]SerialResult, *timing.Stages, error) {
	m, err := mesh.BluffBody(cfg.Order, cfg.Nt, cfg.Nr)
	if err != nil {
		return nil, nil, err
	}
	ns, err := core.NewNS2D(m, core.NS2DConfig{
		Nu: 1.0 / 500, Dt: 2e-3, Order: 2,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": core.ConstantVel(1, 0),
		},
		PresDirichlet: map[string]bool{"outflow": true},
	})
	if err != nil {
		return nil, nil, err
	}
	ns.SetUniformInitial(1, 0)
	// Ramp the multistep scheme so the measured steps use the final
	// order-2 path.
	ns.Step()
	ns.Step()
	st := ns.Stages()
	st.Reset()
	st.Attach()
	loop := engine.Loop{Solver: ns, Steps: ns.StepCount() + cfg.Steps,
		Watchdog: engine.Watchdog{Disabled: true}, Trace: cfg.Trace}
	if cfg.CkptDir != "" {
		store, serr := ckpt.NewDirStore(cfg.CkptDir)
		if serr != nil {
			return nil, nil, serr
		}
		w := ckpt.NewAsyncWriter(store, ckpt.WriterConfig{Kind: "ns2d", Trace: cfg.Trace})
		defer w.Close()
		loop.Sink = w
		loop.CheckpointEvery = cfg.CkptEvery
	}
	_, lerr := loop.Run()
	st.Detach()
	if lerr != nil {
		return nil, nil, lerr
	}

	var out []SerialResult
	for _, name := range Table1Machines {
		mach, err := machine.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		r := SerialResult{Machine: name}
		for si := range st.Counts {
			c := st.Counts[si]
			r.StageSec[si] = mach.CPU.ApplicationSeconds(&c) / float64(cfg.Steps)
			r.CPU += r.StageSec[si]
		}
		pct := timing.Percent(r.StageSec[:])
		copy(r.StagePct[:], pct)
		out = append(out, r)
	}
	return out, st, nil
}

// Table1 renders the Table 1 report from serial results.
func Table1(res []SerialResult) *report.Table {
	t := report.NewTable("Table 1: CPU time for serial algorithm bluff body simulation",
		"Machine", "CPU time (s)/step")
	for _, r := range res {
		label := r.Machine
		if l, ok := table1Label[r.Machine]; ok {
			label = l
		}
		t.AddRowf(label, "%.2f", r.CPU)
	}
	return t
}

// Fig12 renders the Figure 12 stage-percentage breakdowns for the
// requested machines (the paper shows Onyx2 and the Pentium II).
func Fig12(res []SerialResult, machines ...string) (string, error) {
	out := ""
	for _, want := range machines {
		found := false
		for _, r := range res {
			if r.Machine != want {
				continue
			}
			out += report.PieBreakdown(
				fmt.Sprintf("Figure 12: serial stage breakdown, %s", want),
				core.StageNames, r.StagePct[:]) + "\n"
			found = true
		}
		if !found {
			return "", fmt.Errorf("bench: machine %q not in results", want)
		}
	}
	return out, nil
}
