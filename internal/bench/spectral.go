package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"time"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
	"nektar/internal/spectral"
)

// Spectral bench: the slab-decomposed pseudospectral solvers against
// their serial selves. Each cell runs one variant three ways — a plain
// one-rank host run (no simnet), the P-rank slab run under the serial
// scheduler, and the same slab run under the host-parallel scheduler —
// and requires the three trajectories to be bit-identical before any
// number is recorded: the serial host run is the physics reference,
// and the two scheduler runs are the clock contract. BENCH_spectral.json
// carries GOMAXPROCS and the host core count next to the speedups for
// the same reason BENCH_simnet.json does: a 1-core box's ~1x is a core
// budget, not a regression.

// SpectralBenchConfig parametrizes the sweep.
type SpectralBenchConfig struct {
	N      int   // grid size (>= 8, divisible by 4, 5-smooth)
	Steps  int   // steps per run
	Procs  []int // slab rank counts (each must divide N and 3N/2)
	ABReps int   // de-aliased evaluations per leg of the pad A/B cell
}

// PaperSpectral is the committed-baseline configuration.
var PaperSpectral = SpectralBenchConfig{N: 32, Steps: 4, Procs: []int{4, 8}, ABReps: 40}

// QuickSpectral is the budget-limited variant.
var QuickSpectral = SpectralBenchConfig{N: 16, Steps: 2, Procs: []int{4}, ABReps: 8}

// SpectralCellResult is one variant x rank-count measurement.
type SpectralCellResult struct {
	Workload string
	Procs    int

	SerialHostS       float64 // one-rank reference run, real host seconds
	SlabSerialHostS   float64 // P-rank slab run, serial scheduler
	SlabParallelHostS float64 // P-rank slab run, parallel scheduler
	Speedup           float64 // SlabSerialHostS / SlabParallelHostS

	// VirtualWallS is the max per-rank virtual wall clock of the slab
	// run — identical between the two schedulers by construction.
	VirtualWallS float64

	// TransformFlopsPerStep is the modeled transform work of one step
	// (5 L log2 L per length-L row FFT, summed over the step's
	// pipeline), and TransposeBytesPerStep the global Alltoall payload
	// the step's distributed transposes move. For turb2d these are the
	// padded-pipeline numbers the 2N -> 3N/2 change shrinks.
	TransformFlopsPerStep int64
	TransposeBytesPerStep int64
}

// SpectralPadAB is the radix-2/2N vs mixed-radix/3N/2 comparison at
// fixed N: the same de-aliased convective evaluation (4 padded inverse
// transforms, the pointwise products, 1 padded forward transform) run
// on the exact-3/2 pipeline and on the legacy power-of-two pipeline.
type SpectralPadAB struct {
	N      int
	MExact int // 3N/2
	MPow2  int // next power of two >= 3N/2 (2N for power-of-two N)
	Reps   int

	ExactHostS float64 // reps de-aliased evaluations, exact-3/2 grid
	Pow2HostS  float64 // same work on the pow2 grid
	// HostReduction is 1 - Exact/Pow2: the fraction of padded-pipeline
	// host time the exact grid saves (the tentpole target is >= 0.25).
	HostReduction float64

	// Per-evaluation transpose payloads and modeled transform flops on
	// each grid; the byte ratio is exactly 3:4.
	ExactBytesPerEval int64
	Pow2BytesPerEval  int64
	ByteReduction     float64
	ExactFlopsPerEval int64
	Pow2FlopsPerEval  int64
}

// SpectralBenchResult is the schema of BENCH_spectral.json.
type SpectralBenchResult struct {
	GoMaxProcs int
	NumCPU     int
	N          int
	// PadM stamps the de-aliasing grid the decaying pipeline ran on, so
	// the 2N -> 3N/2 change is visible in the baseline itself.
	PadM  int
	Steps int
	Cells []SpectralCellResult

	// PadAB is the exact-3/2 vs power-of-two padded-pipeline A/B cell.
	PadAB *SpectralPadAB `json:",omitempty"`
}

// fftModelFlops is the 5 L log2 L transform cost model, matching what
// internal/fft records into the machine pricing.
func fftModelFlops(l int) int64 {
	if l <= 1 {
		return 0
	}
	return int64(5 * float64(l) * math.Log2(float64(l)))
}

// stepCosts returns the modeled transform flops and global transpose
// bytes of one solver step. The decaying variant runs 4 InversePad + 1
// ForwardPad per step, each moving an N x M matrix through Alltoall
// and transforming N rows + M rows of length M; the forced variant
// runs 2 Inverse + 2 Forward on the unpadded N x N pipeline.
func stepCosts(variant string, n int) (flops, bytes int64) {
	if variant == "turb2d" {
		m := 3 * n / 2
		perHalf := int64(n+m) * fftModelFlops(m)
		return 5 * perHalf, 5 * 16 * int64(n) * int64(m)
	}
	perTransform := int64(2*n) * fftModelFlops(n)
	return 4 * perTransform, 4 * 16 * int64(n) * int64(n)
}

// padABSpectrum builds a deterministic band-limited Hermitian spectrum
// on the n-grid by borrowing a solver's PAO initializer.
func padABSpectrum(n int, seed uint64) ([]complex128, error) {
	s, err := spectral.NewTurb2D(spectral.Config{N: n, Re: 500, Dt: 2e-3, Seed: seed}, nil, nil)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, n*n)
	copy(out, s.Field())
	return out, nil
}

// runPadAB times the de-aliased convective evaluation shape — four
// padded inverse transforms, the pointwise products, one padded forward
// transform — on the exact-3/2 grid and on the legacy power-of-two
// grid, reps times each. Same plan code, same spectra; only M differs.
func runPadAB(n, reps int) (*SpectralPadAB, error) {
	specA, err := padABSpectrum(n, 33)
	if err != nil {
		return nil, err
	}
	specB, err := padABSpectrum(n, 77)
	if err != nil {
		return nil, err
	}
	leg := func(mode spectral.PadMode) (float64, *spectral.Plan2D, error) {
		pl, err := spectral.NewPlan2DPad(n, mode, nil)
		if err != nil {
			return 0, nil, err
		}
		rows := pl.PadRows() * pl.M
		pa, pb := make([]float64, rows), make([]float64, rows)
		ua, ub := make([]float64, rows), make([]float64, rows)
		out := make([]complex128, n*n)
		eval := func() {
			pl.InversePad(specA, pa)
			pl.InversePad(specB, pb)
			pl.InversePad(specA, ua)
			pl.InversePad(specB, ub)
			for i := range pa {
				pa[i] = pa[i]*pb[i] + ua[i]*ub[i]
			}
			pl.ForwardPad(pa, out)
		}
		eval() // warm the plan and the page cache before timing
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			eval()
		}
		return time.Since(t0).Seconds(), pl, nil
	}
	exactS, exactPl, err := leg(spectral.PadExact)
	if err != nil {
		return nil, err
	}
	pow2S, pow2Pl, err := leg(spectral.PadPow2)
	if err != nil {
		return nil, err
	}
	evalFlops := func(m int) int64 { return 5 * int64(n+m) * fftModelFlops(m) }
	return &SpectralPadAB{
		N: n, MExact: exactPl.M, MPow2: pow2Pl.M, Reps: reps,
		ExactHostS: exactS, Pow2HostS: pow2S,
		HostReduction:     1 - exactS/pow2S,
		ExactBytesPerEval: 5 * exactPl.PadTransposeBytes(),
		Pow2BytesPerEval:  5 * pow2Pl.PadTransposeBytes(),
		ByteReduction:     1 - float64(exactPl.M)/float64(pow2Pl.M),
		ExactFlopsPerEval: evalFlops(exactPl.M),
		Pow2FlopsPerEval:  evalFlops(pow2Pl.M),
	}, nil
}

// Table renders the A/B cell the way BENCH_spectral.json records it.
func (ab *SpectralPadAB) Table() *report.Table {
	tbl := report.NewTable(
		fmt.Sprintf("Padded-pipeline A/B at N=%d: exact 3/2-rule grid vs legacy power-of-two round-up (%d de-aliased evaluations per leg)",
			ab.N, ab.Reps),
		"pipeline", "M", "host s", "xpose B/eval", "Mflop/eval")
	tbl.AddRow("exact 3N/2", fmt.Sprintf("%d", ab.MExact), fmt.Sprintf("%.4f", ab.ExactHostS),
		fmt.Sprintf("%d", ab.ExactBytesPerEval), fmt.Sprintf("%.3f", float64(ab.ExactFlopsPerEval)/1e6))
	tbl.AddRow("pow2 legacy", fmt.Sprintf("%d", ab.MPow2), fmt.Sprintf("%.4f", ab.Pow2HostS),
		fmt.Sprintf("%d", ab.Pow2BytesPerEval), fmt.Sprintf("%.3f", float64(ab.Pow2FlopsPerEval)/1e6))
	tbl.AddRow("reduction", "", fmt.Sprintf("%.1f%%", 100*ab.HostReduction),
		fmt.Sprintf("%.1f%%", 100*ab.ByteReduction),
		fmt.Sprintf("%.1f%%", 100*(1-float64(ab.ExactFlopsPerEval)/float64(ab.Pow2FlopsPerEval))))
	return tbl
}

// spectralVariants names the two solver builds the bench sweeps.
var spectralVariants = []struct {
	name string
	mk   func(cfg spectral.Config, comm *mpi.Comm, cpu *machine.CPU) (*spectral.Turb2D, error)
}{
	{"turb2d", spectral.NewTurb2D},
	{"turbforce", spectral.NewForced},
}

// hashField canonicalizes a spectral state slab to its float bits.
func hashField(w []complex128) string {
	h := sha256.New()
	var b [16]byte
	for _, v := range w {
		putBits(b[0:8], real(v))
		putBits(b[8:16], imag(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func putBits(dst []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		dst[i] = byte(u >> (8 * i))
	}
}

// runSpectralSlab runs one variant at p ranks under one scheduler and
// returns per-rank slab hashes, the max virtual wall, and host seconds.
func runSpectralSlab(cfg spectral.Config, mk func(spectral.Config, *mpi.Comm, *machine.CPU) (*spectral.Turb2D, error),
	p, steps int, sched simnet.Scheduler) ([]string, float64, float64, error) {
	mach := machine.Muses()
	model := *mach.Net
	model.Scheduler = sched
	hashes := make([]string, p)
	t0 := time.Now()
	wall, _, err := simnet.Run(p, &model, func(n *simnet.Node) {
		s, err := mk(cfg, mpi.World(n), &mach.CPU)
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			s.Step()
		}
		hashes[n.Rank] = hashField(s.Field())
	})
	hostS := time.Since(t0).Seconds()
	if err != nil {
		return nil, 0, 0, err
	}
	var maxWall float64
	for _, w := range wall {
		maxWall = max(maxWall, w)
	}
	return hashes, maxWall, hostS, nil
}

// RunSpectralBench executes the sweep and renders the comparison table.
func RunSpectralBench(cfg SpectralBenchConfig) (*SpectralBenchResult, *report.Table, error) {
	res := &SpectralBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		N:          cfg.N,
		PadM:       3 * cfg.N / 2,
		Steps:      cfg.Steps,
	}
	for _, v := range spectralVariants {
		scfg := spectral.Config{N: cfg.N, Re: 500, Dt: 2e-3, Seed: 33}

		// One-rank physics reference: per-slab hashes of the serial field,
		// so the slab runs compare slab-for-slab.
		ser, err := v.mk(scfg, nil, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: spectral %s: %w", v.name, err)
		}
		t0 := time.Now()
		for i := 0; i < cfg.Steps; i++ {
			ser.Step()
		}
		serialS := time.Since(t0).Seconds()
		field := ser.Field()

		for _, p := range cfg.Procs {
			if p < 1 || cfg.N%p != 0 {
				return nil, nil, fmt.Errorf("bench: spectral: P=%d does not divide N=%d", p, cfg.N)
			}
			nloc := cfg.N / p
			want := make([]string, p)
			for r := 0; r < p; r++ {
				want[r] = hashField(field[r*nloc*cfg.N : (r+1)*nloc*cfg.N])
			}
			hs, wallS, slabSerialS, err := runSpectralSlab(scfg, v.mk, p, cfg.Steps, simnet.SchedSerial)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: spectral %s P=%d serial: %w", v.name, p, err)
			}
			hp, wallP, slabParS, err := runSpectralSlab(scfg, v.mk, p, cfg.Steps, simnet.SchedParallel)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: spectral %s P=%d parallel: %w", v.name, p, err)
			}
			for r := 0; r < p; r++ {
				if hs[r] != want[r] {
					return nil, nil, fmt.Errorf(
						"bench: spectral %s P=%d: slab trajectory diverged from the serial reference at rank %d", v.name, p, r)
				}
				if hs[r] != hp[r] {
					return nil, nil, fmt.Errorf(
						"bench: spectral %s P=%d: trajectories diverged between schedulers at rank %d", v.name, p, r)
				}
			}
			if math.Float64bits(wallS) != math.Float64bits(wallP) {
				return nil, nil, fmt.Errorf(
					"bench: spectral %s P=%d: virtual wall diverged between schedulers (%v vs %v)", v.name, p, wallS, wallP)
			}
			flops, bytes := stepCosts(v.name, cfg.N)
			res.Cells = append(res.Cells, SpectralCellResult{
				Workload:              v.name,
				Procs:                 p,
				SerialHostS:           serialS,
				SlabSerialHostS:       slabSerialS,
				SlabParallelHostS:     slabParS,
				Speedup:               slabSerialS / slabParS,
				VirtualWallS:          wallS,
				TransformFlopsPerStep: flops,
				TransposeBytesPerStep: bytes,
			})
		}
	}

	if cfg.ABReps > 0 {
		ab, err := runPadAB(cfg.N, cfg.ABReps)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: spectral pad A/B: %w", err)
		}
		res.PadAB = ab
	}

	tbl := report.NewTable(
		fmt.Sprintf("Spectral bench: serial vs slab-parallel pseudospectral solvers, bit-identity enforced (GOMAXPROCS=%d, host cores=%d, N=%d, M=%d, %d steps)",
			res.GoMaxProcs, res.NumCPU, res.N, res.PadM, res.Steps),
		"workload", "P", "1-rank host s", "slab serial s", "slab parallel s", "speedup", "virtual wall s", "Mflop/step", "xpose B/step")
	for _, c := range res.Cells {
		tbl.AddRow(c.Workload, fmt.Sprintf("%d", c.Procs),
			fmt.Sprintf("%.3f", c.SerialHostS), fmt.Sprintf("%.3f", c.SlabSerialHostS),
			fmt.Sprintf("%.3f", c.SlabParallelHostS), fmt.Sprintf("%.2fx", c.Speedup),
			fmt.Sprintf("%.4f", c.VirtualWallS),
			fmt.Sprintf("%.3f", float64(c.TransformFlopsPerStep)/1e6),
			fmt.Sprintf("%d", c.TransposeBytesPerStep))
	}
	return res, tbl, nil
}

// WriteSpectralBaseline records res as the committed BENCH_spectral.json
// baseline, under the same 1-core honesty rule as WriteSimnetBaseline:
// a single-core host cannot measure the parallel scheduler, so the
// write is refused without force, and a forced write still stamps
// GoMaxProcs/NumCPU so readers can discount it.
func WriteSpectralBaseline(path string, res *SpectralBenchResult, force bool) error {
	if runtime.NumCPU() == 1 && !force {
		return fmt.Errorf(
			"bench: refusing to overwrite %s from a 1-core host: the serial-vs-parallel speedups would be core-starved noise, not a baseline; re-run on a multi-core host, or pass -force to record anyway (the file stamps NumCPU=1 so readers can discount it)",
			path)
	}
	return writeBaselineJSON(path, res)
}
