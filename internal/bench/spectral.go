package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"time"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
	"nektar/internal/spectral"
)

// Spectral bench: the slab-decomposed pseudospectral solvers against
// their serial selves. Each cell runs one variant three ways — a plain
// one-rank host run (no simnet), the P-rank slab run under the serial
// scheduler, and the same slab run under the host-parallel scheduler —
// and requires the three trajectories to be bit-identical before any
// number is recorded: the serial host run is the physics reference,
// and the two scheduler runs are the clock contract. BENCH_spectral.json
// carries GOMAXPROCS and the host core count next to the speedups for
// the same reason BENCH_simnet.json does: a 1-core box's ~1x is a core
// budget, not a regression.

// SpectralBenchConfig parametrizes the sweep.
type SpectralBenchConfig struct {
	N     int   // grid size (power of two >= 8)
	Steps int   // steps per run
	Procs []int // slab rank counts (each must divide N)
}

// PaperSpectral is the committed-baseline configuration.
var PaperSpectral = SpectralBenchConfig{N: 32, Steps: 4, Procs: []int{4, 8}}

// QuickSpectral is the budget-limited variant.
var QuickSpectral = SpectralBenchConfig{N: 16, Steps: 2, Procs: []int{4}}

// SpectralCellResult is one variant x rank-count measurement.
type SpectralCellResult struct {
	Workload string
	Procs    int

	SerialHostS       float64 // one-rank reference run, real host seconds
	SlabSerialHostS   float64 // P-rank slab run, serial scheduler
	SlabParallelHostS float64 // P-rank slab run, parallel scheduler
	Speedup           float64 // SlabSerialHostS / SlabParallelHostS

	// VirtualWallS is the max per-rank virtual wall clock of the slab
	// run — identical between the two schedulers by construction.
	VirtualWallS float64
}

// SpectralBenchResult is the schema of BENCH_spectral.json.
type SpectralBenchResult struct {
	GoMaxProcs int
	NumCPU     int
	N          int
	Steps      int
	Cells      []SpectralCellResult
}

// spectralVariants names the two solver builds the bench sweeps.
var spectralVariants = []struct {
	name string
	mk   func(cfg spectral.Config, comm *mpi.Comm, cpu *machine.CPU) (*spectral.Turb2D, error)
}{
	{"turb2d", spectral.NewTurb2D},
	{"turbforce", spectral.NewForced},
}

// hashField canonicalizes a spectral state slab to its float bits.
func hashField(w []complex128) string {
	h := sha256.New()
	var b [16]byte
	for _, v := range w {
		putBits(b[0:8], real(v))
		putBits(b[8:16], imag(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func putBits(dst []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		dst[i] = byte(u >> (8 * i))
	}
}

// runSpectralSlab runs one variant at p ranks under one scheduler and
// returns per-rank slab hashes, the max virtual wall, and host seconds.
func runSpectralSlab(cfg spectral.Config, mk func(spectral.Config, *mpi.Comm, *machine.CPU) (*spectral.Turb2D, error),
	p, steps int, sched simnet.Scheduler) ([]string, float64, float64, error) {
	mach := machine.Muses()
	model := *mach.Net
	model.Scheduler = sched
	hashes := make([]string, p)
	t0 := time.Now()
	wall, _, err := simnet.Run(p, &model, func(n *simnet.Node) {
		s, err := mk(cfg, mpi.World(n), &mach.CPU)
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			s.Step()
		}
		hashes[n.Rank] = hashField(s.Field())
	})
	hostS := time.Since(t0).Seconds()
	if err != nil {
		return nil, 0, 0, err
	}
	var maxWall float64
	for _, w := range wall {
		maxWall = max(maxWall, w)
	}
	return hashes, maxWall, hostS, nil
}

// RunSpectralBench executes the sweep and renders the comparison table.
func RunSpectralBench(cfg SpectralBenchConfig) (*SpectralBenchResult, *report.Table, error) {
	res := &SpectralBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		N:          cfg.N,
		Steps:      cfg.Steps,
	}
	for _, v := range spectralVariants {
		scfg := spectral.Config{N: cfg.N, Re: 500, Dt: 2e-3, Seed: 33}

		// One-rank physics reference: per-slab hashes of the serial field,
		// so the slab runs compare slab-for-slab.
		ser, err := v.mk(scfg, nil, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: spectral %s: %w", v.name, err)
		}
		t0 := time.Now()
		for i := 0; i < cfg.Steps; i++ {
			ser.Step()
		}
		serialS := time.Since(t0).Seconds()
		field := ser.Field()

		for _, p := range cfg.Procs {
			if p < 1 || cfg.N%p != 0 {
				return nil, nil, fmt.Errorf("bench: spectral: P=%d does not divide N=%d", p, cfg.N)
			}
			nloc := cfg.N / p
			want := make([]string, p)
			for r := 0; r < p; r++ {
				want[r] = hashField(field[r*nloc*cfg.N : (r+1)*nloc*cfg.N])
			}
			hs, wallS, slabSerialS, err := runSpectralSlab(scfg, v.mk, p, cfg.Steps, simnet.SchedSerial)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: spectral %s P=%d serial: %w", v.name, p, err)
			}
			hp, wallP, slabParS, err := runSpectralSlab(scfg, v.mk, p, cfg.Steps, simnet.SchedParallel)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: spectral %s P=%d parallel: %w", v.name, p, err)
			}
			for r := 0; r < p; r++ {
				if hs[r] != want[r] {
					return nil, nil, fmt.Errorf(
						"bench: spectral %s P=%d: slab trajectory diverged from the serial reference at rank %d", v.name, p, r)
				}
				if hs[r] != hp[r] {
					return nil, nil, fmt.Errorf(
						"bench: spectral %s P=%d: trajectories diverged between schedulers at rank %d", v.name, p, r)
				}
			}
			if math.Float64bits(wallS) != math.Float64bits(wallP) {
				return nil, nil, fmt.Errorf(
					"bench: spectral %s P=%d: virtual wall diverged between schedulers (%v vs %v)", v.name, p, wallS, wallP)
			}
			res.Cells = append(res.Cells, SpectralCellResult{
				Workload:          v.name,
				Procs:             p,
				SerialHostS:       serialS,
				SlabSerialHostS:   slabSerialS,
				SlabParallelHostS: slabParS,
				Speedup:           slabSerialS / slabParS,
				VirtualWallS:      wallS,
			})
		}
	}

	tbl := report.NewTable(
		fmt.Sprintf("Spectral bench: serial vs slab-parallel pseudospectral solvers, bit-identity enforced (GOMAXPROCS=%d, host cores=%d, N=%d, %d steps)",
			res.GoMaxProcs, res.NumCPU, res.N, res.Steps),
		"workload", "P", "1-rank host s", "slab serial s", "slab parallel s", "speedup", "virtual wall s")
	for _, c := range res.Cells {
		tbl.AddRow(c.Workload, fmt.Sprintf("%d", c.Procs),
			fmt.Sprintf("%.3f", c.SerialHostS), fmt.Sprintf("%.3f", c.SlabSerialHostS),
			fmt.Sprintf("%.3f", c.SlabParallelHostS), fmt.Sprintf("%.2fx", c.Speedup),
			fmt.Sprintf("%.4f", c.VirtualWallS))
	}
	return res, tbl, nil
}

// WriteSpectralBaseline records res as the committed BENCH_spectral.json
// baseline, under the same 1-core honesty rule as WriteSimnetBaseline:
// a single-core host cannot measure the parallel scheduler, so the
// write is refused without force, and a forced write still stamps
// GoMaxProcs/NumCPU so readers can discount it.
func WriteSpectralBaseline(path string, res *SpectralBenchResult, force bool) error {
	if runtime.NumCPU() == 1 && !force {
		return fmt.Errorf(
			"bench: refusing to overwrite %s from a 1-core host: the serial-vs-parallel speedups would be core-starved noise, not a baseline; re-run on a multi-core host, or pass -force to record anyway (the file stamps NumCPU=1 so readers can discount it)",
			path)
	}
	return writeBaselineJSON(path, res)
}
