package bench

import (
	"encoding/json"
	"os"
	"testing"

	"nektar/internal/farm"
)

// TestMain lets this test binary serve as the farm-daemon image: when
// the chaos harness re-execs it with the daemon environment set,
// MaybeDaemon runs farmd and exits instead of running the tests.
func TestMain(m *testing.M) {
	farm.MaybeDaemon()
	os.Exit(m.Run())
}

func TestFarmbenchValidate(t *testing.T) {
	if err := ValidateFarmbench(QuickFarmbench); err != nil {
		t.Fatalf("quick config invalid: %v", err)
	}
	bad := QuickFarmbench
	bad.Jobs = 0
	if err := ValidateFarmbench(bad); err == nil {
		t.Fatal("zero jobs accepted")
	}
	bad = QuickFarmbench
	bad.KillEveryMS = 0
	if err := ValidateFarmbench(bad); err == nil {
		t.Fatal("zero kill cadence accepted")
	}
}

// TestFarmbenchChaos is the tier-1 crash-safety audit: a real daemon
// subprocess, real SIGKILLs, and the three zero-tolerance ledger
// checks.
func TestFarmbenchChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos campaign; skipped in -short")
	}
	cfg := QuickFarmbench
	cfg.Dir = t.TempDir()
	res, tbl, err := RunFarmbench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Write(os.Stderr)
	if res.LostAcked != 0 {
		t.Errorf("lost %d acknowledged jobs, want 0", res.LostAcked)
	}
	if res.DupResults != 0 {
		t.Errorf("%d duplicate results, want 0", res.DupResults)
	}
	if res.HashMismatches != 0 {
		t.Errorf("%d hash mismatches vs uninterrupted reference, want 0", res.HashMismatches)
	}
	if res.FailedJobs != 0 {
		t.Errorf("%d jobs failed outright, want 0", res.FailedJobs)
	}
	if res.DaemonKills < cfg.DaemonKills {
		t.Errorf("injected %d daemon kills, want %d", res.DaemonKills, cfg.DaemonKills)
	}
	if res.JobsPerSec <= 0 {
		t.Errorf("jobs/s = %g, want > 0", res.JobsPerSec)
	}
}

// TestWriteFarmBaseline regenerates BENCH_farm.json (the committed
// farmbench baseline) when BENCH_FARM=1 is set, and enforces the
// acceptance bars: >= 20 SIGKILL cycles with zero lost acked jobs,
// zero duplicate results, zero hash mismatches. `make bench-farm` runs
// it.
func TestWriteFarmBaseline(t *testing.T) {
	if os.Getenv("BENCH_FARM") == "" {
		t.Skip("set BENCH_FARM=1 to regenerate BENCH_farm.json")
	}
	res, tbl, err := RunFarmbench(PaperFarmbench)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Write(os.Stderr)
	if res.DaemonKills < 20 {
		t.Fatalf("baseline needs >= 20 SIGKILL cycles, got %d", res.DaemonKills)
	}
	if res.LostAcked != 0 || res.DupResults != 0 || res.HashMismatches != 0 || res.FailedJobs != 0 {
		t.Fatalf("crash-safety audit failed: lost=%d dup=%d mismatch=%d failed=%d",
			res.LostAcked, res.DupResults, res.HashMismatches, res.FailedJobs)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_farm.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_farm.json:\n%s", buf)
}
