package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// TestSimbenchQuick runs the budget-limited sweep: it both exercises
// RunSimbench end to end and re-checks the scheduler-equivalence
// contract it enforces (RunSimbench fails on any virtual-clock
// divergence between the serial and parallel runs).
func TestSimbenchQuick(t *testing.T) {
	res, tbl, err := RunSimbench(QuickSimbench)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(QuickSimbench.Cells) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(QuickSimbench.Cells))
	}
	for _, c := range res.Cells {
		if c.SerialHostS <= 0 || c.ParallelHostS <= 0 || c.VirtualWallS <= 0 {
			t.Errorf("%s P=%d: non-positive measurement: %+v", c.Workload, c.Procs, c)
		}
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
}

// TestWriteSimnetBaseline regenerates BENCH_simnet.json (the committed
// scheduler-speedup baseline) when BENCH_SIMNET=1 is set; `make
// bench-simnet` runs it. The file records GOMAXPROCS and the host core
// count next to the speedups — the numbers only mean something
// relative to the core budget they ran with.
func TestWriteSimnetBaseline(t *testing.T) {
	if os.Getenv("BENCH_SIMNET") == "" {
		t.Skip("set BENCH_SIMNET=1 to regenerate BENCH_simnet.json")
	}
	res, _, err := RunSimbench(PaperSimbench)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_simnet.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
