package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestSimbenchQuick runs the budget-limited sweep: it both exercises
// RunSimbench end to end and re-checks the scheduler-equivalence
// contract it enforces (RunSimbench fails on any virtual-clock
// divergence between the serial and parallel runs).
func TestSimbenchQuick(t *testing.T) {
	res, tbl, err := RunSimbench(QuickSimbench)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(QuickSimbench.Cells) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(QuickSimbench.Cells))
	}
	for _, c := range res.Cells {
		if c.SerialHostS <= 0 || c.ParallelHostS <= 0 || c.VirtualWallS <= 0 {
			t.Errorf("%s P=%d: non-positive measurement: %+v", c.Workload, c.Procs, c)
		}
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
}

// TestWriteSimnetBaseline regenerates BENCH_simnet.json (the committed
// scheduler-speedup baseline plus the relaxed capacity sweep) when
// BENCH_SIMNET=1 is set; `make bench-simnet` runs it. The write goes
// through WriteSimnetBaseline, so a 1-core host is refused unless
// BENCH_SIMNET_FORCE=1 deliberately overrides — the file records
// GOMAXPROCS and the host core count next to the speedups, and the
// numbers only mean something relative to the core budget they ran
// with.
func TestWriteSimnetBaseline(t *testing.T) {
	if os.Getenv("BENCH_SIMNET") == "" {
		t.Skip("set BENCH_SIMNET=1 to regenerate BENCH_simnet.json")
	}
	res, _, err := RunSimbench(PaperSimbench)
	if err != nil {
		t.Fatal(err)
	}
	scale, _, err := RunScalebench(PaperScalebench)
	if err != nil {
		t.Fatal(err)
	}
	res.Scale = scale
	force := os.Getenv("BENCH_SIMNET_FORCE") != ""
	if err := WriteSimnetBaseline("../../BENCH_simnet.json", res, force); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSimnetBaselineGuard: the writer must refuse a 1-core host
// without force and leave the target untouched; force must always
// write, and the file must round-trip through the JSON schema.
func TestWriteSimnetBaselineGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_simnet.json")
	res := &SimbenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Steps:      2,
		Cells:      []SimbenchCellResult{{Workload: "nsf", Procs: 8, Speedup: 1}},
	}
	err := WriteSimnetBaseline(path, res, false)
	if runtime.NumCPU() == 1 {
		if err == nil {
			t.Fatal("expected 1-core refusal without force")
		}
		if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
			t.Fatalf("refused write still touched %s", path)
		}
	} else if err != nil {
		t.Fatalf("multi-core write refused: %v", err)
	}
	if err := WriteSimnetBaseline(path, res, true); err != nil {
		t.Fatalf("forced write failed: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SimbenchResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCPU != res.NumCPU || len(back.Cells) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
