package bench

import (
	"encoding/json"
	"os"
	"testing"
)

func quickCkptbench(t *testing.T) CkptbenchConfig {
	t.Helper()
	return CkptbenchConfig{
		Nt: 12, Nr: 3, Order: 4,
		Steps: 6, Every: 2,
		Dir:      t.TempDir(),
		Machines: []string{"RoadRunner-eth"},
		Procs:    2,
		DiskMBs:  20,
	}
}

// The acceptance criterion of the async writer: at an equal cadence the
// double-buffered background writer exposes less write time to the step
// loop than the synchronous writer (the hidden remainder overlaps with
// stepping).
func TestCkptbenchAsyncHidesWriteTime(t *testing.T) {
	cfg := quickCkptbench(t)
	res, tables, err := RunCkptbench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables (host + striped), got %d", len(tables))
	}
	// The probe ramps 2 steps then measures cfg.Steps; the loop stages a
	// snapshot at each cadence step before the last plus the final state
	// (steps 4, 6 and the final step 8 here).
	if want := 3; res.Snapshots != want {
		t.Fatalf("snapshots = %d, want %d", res.Snapshots, want)
	}
	if res.Ratio <= 1 {
		t.Errorf("compression ratio %.3f, want > 1 for smooth solver state", res.Ratio)
	}
	// The exposed-time comparison is a wall-clock measurement with a
	// millisecond-scale margin at this probe size; when `go test ./...`
	// runs sibling packages' fsync-heavy suites in parallel, a scheduling
	// hiccup can swallow it. Retry on fresh state before declaring the
	// writer broken — a real regression fails every attempt.
	for attempt := 1; res.AsyncExposedS >= res.SyncExposedS || res.AsyncHiddenS <= 0; attempt++ {
		if attempt >= 3 {
			t.Errorf("async exposed %.6fs vs sync exposed %.6fs (hidden %.6fs) after %d attempts: the background writer hid nothing",
				res.AsyncExposedS, res.SyncExposedS, res.AsyncHiddenS, attempt)
			break
		}
		retry := cfg
		retry.Dir = t.TempDir()
		if res, _, err = RunCkptbench(retry); err != nil {
			t.Fatal(err)
		}
	}
	if len(res.Striped) != 1 {
		t.Fatalf("striped rows = %d, want 1", len(res.Striped))
	}
	sc := res.Striped[0]
	if sc.LocalS <= 0 || sc.StripedS <= 0 {
		t.Fatalf("non-positive virtual write costs: local %g, striped %g", sc.LocalS, sc.StripedS)
	}
	// On commodity Ethernet the shard exchange makes striping strictly
	// more expensive than node-local restart files — the paper's call.
	if sc.StripedS <= sc.LocalS {
		t.Errorf("RoadRunner-eth striped %.6gs <= local %.6gs, want a striping penalty",
			sc.StripedS, sc.LocalS)
	}
}

// TestWriteCkptBaseline regenerates BENCH_ckpt.json (the committed
// ckptbench baseline) when BENCH_CKPT=1 is set; `make bench-ckpt` runs
// it.
func TestWriteCkptBaseline(t *testing.T) {
	if os.Getenv("BENCH_CKPT") == "" {
		t.Skip("set BENCH_CKPT=1 to regenerate BENCH_ckpt.json")
	}
	res, _, err := RunCkptbench(PaperCkptbench)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_ckpt.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
