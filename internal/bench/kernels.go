// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation, producing report.Table /
// report.Figure values from the machine models, the simulated cluster
// and the real solvers.
//
// Absolute numbers come from calibrated models (see package machine);
// the reproduction targets the paper's shapes: who wins, where the
// cache cliffs fall, where Ethernet saturates, and how the stage
// breakdowns shift between architectures.
package bench

import (
	"fmt"

	"nektar/internal/blas"
	"nektar/internal/machine"
	"nektar/internal/netpipe"
	"nektar/internal/report"
)

// kernelMachines unions the paper's left plots (SP2-Thin2, SP2-Silver,
// Muses, AP3000, Onyx2) and right plots (T3E, P2SC, Muses).
var kernelMachines = []string{"SP2-Thin2", "SP2-Silver", "Muses", "AP3000", "Onyx2", "T3E", "P2SC"}

// kernelSizes sweeps 100 B .. 1 MB like the paper's x axes.
func kernelSizes() []int64 {
	var out []int64
	for s := int64(128); s <= 1<<20; s *= 2 {
		out = append(out, s, s+s/2)
	}
	return out
}

// Fig1Dcopy regenerates Figure 1: dcopy speed in MB/s against array
// size for every modeled machine.
func Fig1Dcopy() *report.Figure {
	fig := report.NewFigure("Figure 1: dcopy speed (MB/s) vs array size (bytes)", "bytes", "MB/s")
	for _, name := range kernelMachines {
		m, _ := machine.ByName(name)
		s := fig.Add(name)
		for _, sz := range kernelSizes() {
			s.Point(float64(sz), m.CPU.DcopyMBs(sz))
		}
	}
	return fig
}

// Fig2Daxpy regenerates Figure 2 (daxpy MFlop/s) and Fig3Ddot Figure 3
// (ddot MFlop/s).
func Fig2Daxpy() *report.Figure { return level1Figure("Figure 2: daxpy", blas.KernelDaxpy) }

// Fig3Ddot regenerates Figure 3.
func Fig3Ddot() *report.Figure { return level1Figure("Figure 3: ddot", blas.KernelDdot) }

func level1Figure(title string, k blas.Kernel) *report.Figure {
	fig := report.NewFigure(title+" speed (MFlop/s) vs array size (bytes)", "bytes", "MFlop/s")
	for _, name := range kernelMachines {
		m, _ := machine.ByName(name)
		s := fig.Add(name)
		for _, sz := range kernelSizes() {
			s.Point(float64(sz), m.CPU.Level1MFlops(k, sz))
		}
	}
	return fig
}

// Fig4Dgemv regenerates Figure 4: dgemv MFlop/s against matrix
// dimension (the paper labels the axis in bytes of one row).
func Fig4Dgemv() *report.Figure {
	fig := report.NewFigure("Figure 4: dgemv speed (MFlop/s) vs matrix dimension n", "n", "MFlop/s")
	for _, name := range kernelMachines {
		m, _ := machine.ByName(name)
		s := fig.Add(name)
		for n := 8; n <= 1200; n += 24 {
			s.Point(float64(n), m.CPU.DgemvMFlops(n))
		}
	}
	return fig
}

// Fig5Dgemm regenerates Figure 5: dgemm MFlop/s for n up to 600.
func Fig5Dgemm() *report.Figure {
	fig := report.NewFigure("Figure 5: dgemm speed (MFlop/s) vs matrix dimension n", "n", "MFlop/s")
	for _, name := range kernelMachines {
		m, _ := machine.ByName(name)
		s := fig.Add(name)
		for n := 4; n <= 600; n += 8 {
			s.Point(float64(n), m.CPU.DgemmMFlops(n))
		}
	}
	return fig
}

// Fig6DgemmSmall regenerates Figure 6: the small-matrix dgemm regime
// (n = 2..20) that dominates the spectral/hp elemental work.
func Fig6DgemmSmall() *report.Figure {
	fig := report.NewFigure("Figure 6: dgemm speed (MFlop/s), small matrices", "n", "MFlop/s")
	for _, name := range kernelMachines {
		m, _ := machine.ByName(name)
		s := fig.Add(name)
		for n := 2; n <= 20; n++ {
			s.Point(float64(n), m.CPU.DgemmMFlops(n))
		}
	}
	return fig
}

// netMachines are the network series of Figure 7/8.
var netMachines = []string{
	"AP3000", "SP2-Thin2", "SP2-Silver", "Muses", "Muses-LAM", "Muses-MVIA",
	"Onyx2", "RoadRunner-eth", "RoadRunner-myr", "T3E",
}

// Fig7PingPong regenerates Figure 7: NetPIPE one-way latency (left)
// and bandwidth (right) on every simulated network.
func Fig7PingPong() (lat, bw *report.Figure, err error) {
	lat = report.NewFigure("Figure 7 (left): ping-pong one-way latency", "bytes", "latency (us)")
	bw = report.NewFigure("Figure 7 (right): ping-pong one-way bandwidth", "bytes", "MB/s")
	for _, name := range netMachines {
		m, err := machine.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		series := []struct {
			label string
			run   func() ([]netpipe.Point, error)
		}{{name, func() ([]netpipe.Point, error) {
			return netpipe.Run(m.Net, netpipe.Sizes(8<<20), 3)
		}}}
		if m.Net.RanksPerNode > 1 {
			// The paper plots intra and internode separately for the
			// SMP-node machines (RoadRunner, SP2-Silver).
			series[0].label = name + "-internode"
			series = append(series, struct {
				label string
				run   func() ([]netpipe.Point, error)
			}{name + "-intranode", func() ([]netpipe.Point, error) {
				return netpipe.RunIntranode(m.Net, netpipe.Sizes(8<<20), 3)
			}})
		}
		for _, sr := range series {
			pts, err := sr.run()
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", sr.label, err)
			}
			ls := lat.Add(sr.label)
			bs := bw.Add(sr.label)
			for _, p := range pts {
				if p.Bytes <= 640 {
					ls.Point(float64(p.Bytes), p.LatencyUS)
				}
				bs.Point(float64(p.Bytes), p.MBs)
			}
		}
	}
	return lat, bw, nil
}

// Fig8Alltoall regenerates Figure 8: MPI_Alltoall average bandwidth
// for p processors (the paper shows p = 4 and p = 8).
func Fig8Alltoall(p int) (*report.Figure, error) {
	fig := report.NewFigure(
		fmt.Sprintf("Figure 8: MPI_Alltoall average bandwidth, %d processors", p),
		"message bytes", "MB/s")
	var sizes []int
	for s := 8; s <= 4<<20; s *= 4 {
		sizes = append(sizes, s)
	}
	for _, name := range netMachines {
		if name == "Muses-LAM" || name == "Onyx2" {
			continue // the paper's Figure 8 omits these
		}
		m, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		if p > 4 && (name == "Muses") {
			continue // Muses has 4 nodes
		}
		pts, err := netpipe.RunAlltoall(m.Net, p, sizes, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		s := fig.Add(name)
		for _, pt := range pts {
			s.Point(float64(pt.Bytes), pt.MBs)
		}
	}
	return fig, nil
}
