package bench

import (
	"fmt"
	"math"

	"nektar/internal/ckpt"
	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/fault"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
)

// Faultbench: checkpoint interval vs cluster MTBF. The paper's
// production DNS burned ~250 CPU-hours per processor on commodity
// hardware, survivable only with restart files — which raises the
// engineering question this experiment answers: how often should a
// run checkpoint? Too rarely and a crash throws away hours; too often
// and the checkpoint I/O dominates. Young's first-order model prices
// the expected overhead of a checkpoint interval tau against a
// cluster MTBF theta as
//
//	overhead(tau) ~= delta/tau + tau/(2*theta)
//
// (delta = time to write one checkpoint), minimized at the classic
// tau_opt = sqrt(2*delta*theta). delta is measured, not assumed: a
// probe Nektar-F run on the simulated machine serializes real solver
// state and writes it through the simulated parallel-write cost model
// (ckpt.SimWriter) — node-local restart files by default, striped
// 1/P-th shards with Stripe — so the Young table prices the framed,
// compressed record plus any network traffic the write mode incurs.
// A second, measured experiment injects a seeded node crash and
// recovers through core.RunFourierRecovery, reporting the actual
// virtual-wall overhead of the crash-recovery round trip.

// FaultbenchConfig parametrizes the sweep.
type FaultbenchConfig struct {
	Machine          string
	Procs            int
	ProbeNt, ProbeNr int
	Order            int
	Steps            int // probe steps for the per-step wall measurement

	// DiskMBs prices checkpoint writes (local disk per node, as the
	// paper's clusters did; the Beowulf literature reports ~10-30 MB/s
	// commodity IDE disks in this era).
	DiskMBs float64
	// Stripe writes each checkpoint as striped 1/P-th shards through
	// the network instead of node-local restart files.
	Stripe bool
	// IntervalSteps are the checkpoint intervals to tabulate.
	IntervalSteps []int
	// MTBFHours are the per-node MTBF columns.
	MTBFHours []float64
	// StepsPerRun scales the probe per-step wall to a production run
	// length (the paper's runs were O(10^5) steps).
	StepsPerRun int
}

// PaperFaultbench is the default sweep: the paper's dual-PII Ethernet
// cluster at 8 ranks, with commodity-era disk and MTBF assumptions.
var PaperFaultbench = FaultbenchConfig{
	Machine: "RoadRunner-eth",
	Procs:   8,
	ProbeNt: 8, ProbeNr: 2,
	Order:         6,
	Steps:         2,
	DiskMBs:       20,
	IntervalSteps: []int{10, 30, 100, 300, 1000, 3000},
	MTBFHours:     []float64{24, 72, 168, 720},
	StepsPerRun:   100000,
}

// FaultbenchResult carries the measured probe quantities and the
// derived sweep.
type FaultbenchResult struct {
	Machine        string
	Procs          int
	WriteMode      string  // "local" or "striped"
	StepWallS      float64 // measured max per-step virtual wall
	CheckpointMB   float64 // measured max per-rank checkpoint size (raw)
	DeltaS         float64 // measured virtual write cost (ckpt.SimWriter)
	ClusterMTBFS   []float64
	OptimalTauS    []float64
	OptimalTauStep []int
}

// ValidateFaultbench checks a sweep configuration and returns an
// actionable error for each way the experiment cannot run.
func ValidateFaultbench(cfg FaultbenchConfig) error {
	mach, err := machine.ByName(cfg.Machine)
	if err != nil {
		return fmt.Errorf("%w (see internal/machine for the catalogue)", err)
	}
	if cfg.Procs < 1 {
		return fmt.Errorf("bench: need at least one rank, got %d", cfg.Procs)
	}
	if cfg.Procs&(cfg.Procs-1) != 0 {
		return fmt.Errorf("bench: the Nektar-F probe needs a power-of-two rank count, got %d", cfg.Procs)
	}
	if cfg.Procs > mach.MaxProcs {
		return fmt.Errorf("bench: %s has at most %d procs, got %d", cfg.Machine, mach.MaxProcs, cfg.Procs)
	}
	if cfg.DiskMBs <= 0 || math.IsNaN(cfg.DiskMBs) {
		return fmt.Errorf("bench: disk bandwidth %g MB/s must be positive — it prices the checkpoint writes", cfg.DiskMBs)
	}
	if len(cfg.IntervalSteps) == 0 {
		return fmt.Errorf("bench: need at least one checkpoint interval to tabulate")
	}
	for _, s := range cfg.IntervalSteps {
		if s < 1 {
			return fmt.Errorf("bench: checkpoint interval %d must be at least one step", s)
		}
	}
	if len(cfg.MTBFHours) == 0 {
		return fmt.Errorf("bench: need at least one MTBF column")
	}
	for _, h := range cfg.MTBFHours {
		if h <= 0 || math.IsNaN(h) {
			return fmt.Errorf("bench: node MTBF %g hours must be positive", h)
		}
	}
	if cfg.Steps < 1 {
		return fmt.Errorf("bench: the probe needs at least one step, got %d", cfg.Steps)
	}
	return nil
}

// RunFaultbench measures the probe quantities on the simulated
// machine and derives the Young sweep.
func RunFaultbench(cfg FaultbenchConfig) (*FaultbenchResult, *report.Table, error) {
	if err := ValidateFaultbench(cfg); err != nil {
		return nil, nil, err
	}
	mach, err := machine.ByName(cfg.Machine)
	if err != nil {
		return nil, nil, err
	}
	mode := ckpt.WriteLocal
	if cfg.Stripe {
		mode = ckpt.WriteStriped
	}
	res := &FaultbenchResult{Machine: cfg.Machine, Procs: cfg.Procs, WriteMode: mode.String()}

	// Probe run: real solver state, priced machine, measured per-step
	// wall, checkpoint bytes, and write cost.
	var wallPerStep, ckptBytes, deltaS float64
	_, _, err = simnet.Run(cfg.Procs, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		m, merr := mesh.BluffBody(cfg.Order, cfg.ProbeNt, cfg.ProbeNr)
		if merr != nil {
			panic(merr)
		}
		ns, nerr := core.NewNSF(m, fourierBCs(), comm, &mach.CPU)
		if nerr != nil {
			panic(nerr)
		}
		ns.SetUniformInitial(1, 0)
		ns.Step() // warmup
		comm.Barrier()
		w0 := comm.Wtime()
		loop := engine.Loop{Solver: ns, Steps: ns.StepCount() + cfg.Steps,
			Rank: comm.Rank(), Watchdog: engine.Watchdog{Disabled: true}}
		lres, lerr := loop.Run()
		if lerr != nil {
			panic(lerr)
		}
		comm.Barrier()
		perStep := (comm.Wtime() - w0) / float64(cfg.Steps)
		// Measure delta by actually writing the final state through the
		// simulated parallel-write cost model: framing, compression, and
		// (striped) the all-to-all shard exchange are all priced.
		sw := &ckpt.SimWriter{Kind: "nsf", Comm: comm, DiskMBs: cfg.DiskMBs, Mode: mode}
		if werr := sw.Submit(ns.StepCount(), lres.Final, true); werr != nil {
			panic(werr)
		}
		mx := comm.Allreduce([]float64{perStep, float64(len(lres.Final)), sw.LastCostS()}, mpi.Max)
		if comm.Rank() == 0 {
			wallPerStep, ckptBytes, deltaS = mx[0], mx[1], mx[2]
		}
	})
	if err != nil {
		return nil, nil, err
	}
	res.StepWallS = wallPerStep
	res.CheckpointMB = ckptBytes / 1e6
	res.DeltaS = deltaS

	// Young sweep: rows = checkpoint interval, columns = node MTBF.
	cols := []string{"ckpt interval (steps / s)"}
	for _, h := range cfg.MTBFHours {
		theta := h * 3600 / float64(cfg.Procs) // cluster MTBF
		res.ClusterMTBFS = append(res.ClusterMTBFS, theta)
		cols = append(cols, fmt.Sprintf("node MTBF %gh", h))
	}
	title := fmt.Sprintf(
		"Faultbench: expected overhead (%% of run), Young's model — %s, P=%d, measured delta=%.3gs (%s write, %.2f MB raw @ %g MB/s disk), step=%.3gs",
		cfg.Machine, cfg.Procs, res.DeltaS, res.WriteMode, res.CheckpointMB, cfg.DiskMBs, res.StepWallS)
	tbl := report.NewTable(title, cols...)
	for _, steps := range cfg.IntervalSteps {
		tau := float64(steps) * res.StepWallS
		row := []string{fmt.Sprintf("%d / %.3g", steps, tau)}
		for _, theta := range res.ClusterMTBFS {
			row = append(row, fmt.Sprintf("%.3f%%", 100*youngOverhead(res.DeltaS, tau, theta)))
		}
		tbl.AddRow(row...)
	}
	// Final row: the analytic optimum per column.
	optRow := []string{"tau_opt = sqrt(2*delta*theta)"}
	for _, theta := range res.ClusterMTBFS {
		tauOpt := math.Sqrt(2 * res.DeltaS * theta)
		stepsOpt := int(tauOpt/res.StepWallS + 0.5)
		res.OptimalTauS = append(res.OptimalTauS, tauOpt)
		res.OptimalTauStep = append(res.OptimalTauStep, stepsOpt)
		optRow = append(optRow, fmt.Sprintf("%d steps (%.3f%%)",
			stepsOpt, 100*youngOverhead(res.DeltaS, tauOpt, theta)))
	}
	tbl.AddRow(optRow...)
	return res, tbl, nil
}

// youngOverhead is the expected fractional runtime overhead of
// checkpointing every tau seconds on a cluster with MTBF theta:
// delta/tau of pure I/O plus tau/(2 theta) of expected recomputation.
func youngOverhead(delta, tau, theta float64) float64 {
	return delta/tau + tau/(2*theta)
}

// RunFaultbenchRecovery runs the measured counterpart on a small
// cluster: a fault-free Nektar-F reference, then the same run with a
// seeded node crash recovered from checkpoints, reporting the actual
// virtual wall-clock overhead.
func RunFaultbenchRecovery(cfg FaultbenchConfig, seed int64) (*report.Table, error) {
	mach, err := machine.ByName(cfg.Machine)
	if err != nil {
		return nil, err
	}
	procs := cfg.Procs
	if procs > 4 {
		procs = 4 // the measured demo stays small
	}
	steps := 12
	every := 3
	rc := core.FourierRecovery{
		Procs: procs,
		Model: mach.Net,
		CPU:   &mach.CPU,
		Mesh: func() (*mesh.Mesh, error) {
			return mesh.BluffBody(cfg.Order, cfg.ProbeNt, cfg.ProbeNr)
		},
		Cfg:             fourierBCs(),
		InitU:           1,
		Steps:           steps,
		CheckpointEvery: every,
	}
	ref, err := core.RunFourierRecovery(rc)
	if err != nil {
		return nil, err
	}
	rc.CheckpointCostS = ref.VirtualWall / float64(steps) // order-of-step checkpoint cost
	ref2, err := core.RunFourierRecovery(rc)
	if err != nil {
		return nil, err
	}

	crashed := rc
	crashed.Plans = []simnet.Injector{
		fault.NewPlan(seed).Crash(procs-1, 0.45*ref2.VirtualWall),
	}
	got, err := core.RunFourierRecovery(crashed)
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable(
		fmt.Sprintf("Faultbench: measured crash recovery — %s, P=%d, %d steps, checkpoint every %d",
			cfg.Machine, procs, steps, every),
		"run", "attempts", "steps computed", "virtual wall (s)", "overhead")
	tbl.AddRow("fault-free (no ckpt cost)", fmt.Sprintf("%d", ref.Attempts),
		fmt.Sprintf("%d", ref.StepsComputed), fmt.Sprintf("%.4g", ref.VirtualWall), "—")
	tbl.AddRow("fault-free (ckpt cost)", fmt.Sprintf("%d", ref2.Attempts),
		fmt.Sprintf("%d", ref2.StepsComputed), fmt.Sprintf("%.4g", ref2.VirtualWall),
		fmt.Sprintf("%.1f%%", 100*(ref2.VirtualWall/ref.VirtualWall-1)))
	tbl.AddRow("node crash + recovery", fmt.Sprintf("%d", got.Attempts),
		fmt.Sprintf("%d", got.StepsComputed), fmt.Sprintf("%.4g", got.VirtualWall),
		fmt.Sprintf("%.1f%%", 100*(got.VirtualWall/ref.VirtualWall-1)))
	return tbl, nil
}
