package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"nektar/internal/farm"
	"nektar/internal/report"
)

// Farmbench: is the job farm's crash-safety real? The harness runs the
// farm daemon as a genuine subprocess (the test binary re-exec'd via
// farm.MaybeDaemon), floods it with short deterministic jobs from
// concurrent clients, and while everything is in flight repeatedly
// SIGKILLs the daemon — no drain, no warning — restarting it on the
// same state directory each time, with a second chaos stream killing
// workers mid-step inside the daemon. When the dust settles it audits
// the ledger:
//
//   - zero lost acknowledged jobs: every submission the daemon ever
//     acknowledged must still exist and reach "done";
//   - zero duplicate results: resubmitting every spec must hit the
//     result cache (same job ID), never schedule a second run;
//   - bit-identical trajectories: every result hash must equal an
//     uninterrupted in-process reference run of the same spec.
//
// Alongside the audit it measures what the durability costs: completed
// jobs/s under chaos, submit-to-done latency p50/p99, and the daemon's
// recovery time (SIGKILL to serving /v1/healthz again, journal replay
// included). The numbers land in BENCH_farm.json.

// FarmbenchConfig parametrizes the chaos campaign.
type FarmbenchConfig struct {
	// Jobs is the number of distinct jobs submitted; Clients submit them
	// concurrently, spread across three tenants.
	Jobs, Clients int
	// Workers is the daemon's execution pool size.
	Workers int
	// Steps/Work/CkptEvery shape the spin jobs.
	Steps, Work, CkptEvery int
	// DaemonKills is the number of SIGKILL-and-restart cycles; KillEveryMS
	// is the pause between a recovery and the next kill.
	DaemonKills, KillEveryMS int
	// WorkerKillEveryMS is the in-daemon worker-kill cadence (0 = off).
	WorkerKillEveryMS int
	// Seed offsets every job's seed, so reference hashes are stable.
	Seed int64
	// Dir is the daemon state directory ("" = a fresh temp dir).
	Dir string
	// Image is the daemon binary to exec ("" = this binary, which must
	// call farm.MaybeDaemon early in main/TestMain).
	Image string
}

// PaperFarmbench is the recorded campaign: thousands of jobs, at least
// 20 daemon SIGKILLs, continuous worker kills.
var PaperFarmbench = FarmbenchConfig{
	Jobs: 2000, Clients: 8, Workers: 8,
	Steps: 60, Work: 24, CkptEvery: 10,
	DaemonKills: 20, KillEveryMS: 150,
	WorkerKillEveryMS: 40,
	Seed:              1,
}

// QuickFarmbench is the tier-1 variant: the same audit, a few hundred
// jobs, a handful of kills.
var QuickFarmbench = FarmbenchConfig{
	Jobs: 150, Clients: 4, Workers: 4,
	Steps: 40, Work: 16, CkptEvery: 8,
	DaemonKills: 4, KillEveryMS: 120,
	WorkerKillEveryMS: 30,
	Seed:              1,
}

// FarmbenchResult is the audited outcome; it is the schema of
// BENCH_farm.json.
type FarmbenchResult struct {
	Jobs, Clients, Workers int
	Steps, Work, CkptEvery int

	DaemonKills int // SIGKILL cycles actually injected
	WorkerKills int // in-daemon worker kills acknowledged
	Resubmits   int // client retries needed to get every job acked

	// The audit. All three must be zero for the crash-safety claim.
	LostAcked      int
	DupResults     int
	HashMismatches int
	FailedJobs     int

	JobsPerSec     float64
	P50MS, P99MS   float64 // submit-ack to observed-done latency
	RecoveryP50MS  float64 // SIGKILL to healthz, journal replay included
	RecoveryMaxMS  float64
	ElapsedS       float64
	FinalQueuedWAL int // journal records after the final recovery
}

// ValidateFarmbench checks a configuration.
func ValidateFarmbench(cfg FarmbenchConfig) error {
	if cfg.Jobs < 1 || cfg.Clients < 1 || cfg.Workers < 1 {
		return fmt.Errorf("bench: farmbench needs positive jobs/clients/workers, got %d/%d/%d",
			cfg.Jobs, cfg.Clients, cfg.Workers)
	}
	if cfg.Steps < 1 {
		return fmt.Errorf("bench: farmbench jobs need positive steps, got %d", cfg.Steps)
	}
	if cfg.DaemonKills < 0 || cfg.KillEveryMS < 1 {
		return fmt.Errorf("bench: bad kill schedule %d every %dms", cfg.DaemonKills, cfg.KillEveryMS)
	}
	return nil
}

// farmDaemon manages the SIGKILLable subprocess.
type farmDaemon struct {
	image string
	args  []string
	url   string

	mu  sync.Mutex
	cmd *exec.Cmd
}

func (d *farmDaemon) start() error {
	cmd := exec.Command(d.image)
	cmd.Env = append(os.Environ(), farm.DaemonArgsEnv(d.args))
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("bench: starting farm daemon: %w", err)
	}
	d.mu.Lock()
	d.cmd = cmd
	d.mu.Unlock()
	return d.waitHealthy(10 * time.Second)
}

func (d *farmDaemon) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(d.url + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: farm daemon not healthy after %s", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon — no drain, no signal handler, the real
// thing — waits out the corpse, restarts on the same state directory,
// and returns the time from kill to healthy (replay included).
func (d *farmDaemon) kill() (time.Duration, error) {
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	t0 := time.Now()
	if err := cmd.Process.Kill(); err != nil {
		return 0, fmt.Errorf("bench: SIGKILL: %w", err)
	}
	cmd.Wait() // reap; the error (signal: killed) is the point
	if err := d.start(); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

func (d *farmDaemon) stop() {
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// farmbenchSpec is job i's spec: distinct seed per job (distinct
// trajectory), three tenants, a spread of priorities, a generous retry
// budget (worker kills consume attempts; daemon kills must not).
func farmbenchSpec(cfg FarmbenchConfig, i int) farm.JobSpec {
	return farm.JobSpec{
		Workload: "spin", Steps: cfg.Steps, Seed: cfg.Seed<<20 + int64(i),
		Work: cfg.Work, CkptEvery: cfg.CkptEvery,
		Tenant: fmt.Sprintf("tenant-%d", i%3), Priority: i % 2,
		TimeoutS: 120, Retries: 10000,
	}
}

// submitAcked retries one job's submission until the daemon
// acknowledges it (201 created, or 200 cached when an earlier attempt's
// ack was lost to a kill), riding out connection failures and 429
// backpressure. Returns the job ID and the retry count.
func submitAcked(url string, spec farm.JobSpec, deadline time.Time) (string, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", 0, err
	}
	retries := 0
	for {
		resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err == nil {
			var st farm.JobStatus
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && (resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK) {
				return st.ID, retries, nil
			}
		}
		if time.Now().After(deadline) {
			return "", retries, fmt.Errorf("bench: job never acknowledged (last err %v)", err)
		}
		retries++
		time.Sleep(5 * time.Millisecond)
	}
}

// RunFarmbench executes the campaign and the audit.
func RunFarmbench(cfg FarmbenchConfig) (*FarmbenchResult, *report.Table, error) {
	if err := ValidateFarmbench(cfg); err != nil {
		return nil, nil, err
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "farmbench")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	image := cfg.Image
	if image == "" {
		image = os.Args[0]
	}
	// One port for every daemon generation: reserve it by binding and
	// releasing, then hand the same address to each restart.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	addr := ln.Addr().String()
	ln.Close()

	d := &farmDaemon{
		image: image,
		args: []string{"-dir", dir, "-addr", addr, "-chaos",
			"-workers", fmt.Sprint(cfg.Workers), "-queue-cap", "0", "-seed", "7"},
		url: "http://" + addr,
	}
	if err := d.start(); err != nil {
		return nil, nil, err
	}
	defer d.stop()

	res := &FarmbenchResult{
		Jobs: cfg.Jobs, Clients: cfg.Clients, Workers: cfg.Workers,
		Steps: cfg.Steps, Work: cfg.Work, CkptEvery: cfg.CkptEvery,
	}
	t0 := time.Now()
	deadline := t0.Add(10 * time.Minute)

	// Chaos stream 1: SIGKILL-and-restart the daemon on a cadence until
	// the kill budget is spent.
	var recoveries []time.Duration
	killsDone := make(chan error, 1)
	go func() {
		for i := 0; i < cfg.DaemonKills; i++ {
			time.Sleep(time.Duration(cfg.KillEveryMS) * time.Millisecond)
			rec, err := d.kill()
			if err != nil {
				killsDone <- err
				return
			}
			recoveries = append(recoveries, rec)
		}
		killsDone <- nil
	}()

	// Chaos stream 2: kill workers mid-step inside whatever daemon
	// generation is alive. Connection errors during downtime are part of
	// the weather.
	stopWorkerKills := make(chan struct{})
	var workerKillWG sync.WaitGroup
	if cfg.WorkerKillEveryMS > 0 {
		workerKillWG.Add(1)
		go func() {
			defer workerKillWG.Done()
			tick := time.NewTicker(time.Duration(cfg.WorkerKillEveryMS) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopWorkerKills:
					return
				case <-tick.C:
					resp, err := http.Post(d.url+"/v1/chaos/killworker", "application/json", nil)
					if err != nil {
						continue
					}
					var out map[string]string
					json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if out["killed"] != "" {
						res.WorkerKills++
					}
				}
			}
		}()
	}

	// Submission phase: Clients goroutines push the job range through
	// whatever daemon generation answers, retrying until acked.
	ackedIDs := make([]string, cfg.Jobs)
	ackTimes := make([]time.Time, cfg.Jobs)
	resubmits := make([]int, cfg.Clients)
	errs := make(chan error, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < cfg.Jobs; i += cfg.Clients {
				id, retries, err := submitAcked(d.url, farmbenchSpec(cfg, i), deadline)
				if err != nil {
					errs <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				ackedIDs[i], ackTimes[i] = id, time.Now()
				resubmits[c] += retries
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for _, r := range resubmits {
		res.Resubmits += r
	}

	// Let the kill budget finish against the in-flight backlog, then
	// stop the chaos and poll every acknowledged job to its verdict.
	if err := <-killsDone; err != nil {
		return nil, nil, err
	}
	res.DaemonKills = cfg.DaemonKills
	close(stopWorkerKills)
	workerKillWG.Wait()

	doneTimes := make([]time.Time, cfg.Jobs)
	pending := map[int]bool{}
	for i := range ackedIDs {
		pending[i] = true
	}
	var failed []farm.JobStatus
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("bench: %d jobs still pending at deadline", len(pending))
		}
		for i := range pending {
			resp, err := http.Get(d.url + "/v1/jobs/" + ackedIDs[i])
			if err != nil {
				break // daemon between generations; try again
			}
			var st farm.JobStatus
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				// An acknowledged job the recovered daemon has never heard
				// of: the durability claim just failed.
				res.LostAcked++
				delete(pending, i)
				continue
			}
			if derr != nil {
				continue
			}
			switch st.State {
			case farm.StateDone:
				doneTimes[i] = time.Now()
				delete(pending, i)
			case farm.StateFailed, farm.StateCancelled:
				failed = append(failed, st)
				res.FailedJobs++
				delete(pending, i)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.ElapsedS = time.Since(t0).Seconds()
	if res.ElapsedS > 0 {
		res.JobsPerSec = float64(cfg.Jobs-res.FailedJobs-res.LostAcked) / res.ElapsedS
	}

	// Audit 1: duplicate detection. Resubmitting every spec must hit the
	// cache — same job ID, no second execution.
	for i := 0; i < cfg.Jobs; i++ {
		if ackedIDs[i] == "" {
			continue
		}
		body, _ := json.Marshal(farmbenchSpec(cfg, i))
		resp, err := http.Post(d.url+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, fmt.Errorf("bench: audit resubmit: %w", err)
		}
		var st farm.JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !st.Cached || st.ID != ackedIDs[i] {
			res.DupResults++
		}
	}

	// Audit 2: bit-identity. Every daemon-computed hash must equal an
	// uninterrupted in-process run of the same spec.
	for i := 0; i < cfg.Jobs; i++ {
		if ackedIDs[i] == "" {
			continue
		}
		resp, err := http.Get(d.url + "/v1/jobs/" + ackedIDs[i])
		if err != nil {
			return nil, nil, err
		}
		var st farm.JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State != farm.StateDone || st.Result == nil {
			continue // already counted lost/failed
		}
		ref, err := farm.RunSpec(farmbenchSpec(cfg, i))
		if err != nil {
			return nil, nil, err
		}
		if st.Result.Hash != ref.Hash {
			res.HashMismatches++
		}
	}

	// Final daemon stats (journal size after every replay/compaction).
	if resp, err := http.Get(d.url + "/v1/stats"); err == nil {
		var st farm.Stats
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		res.FinalQueuedWAL = st.WALRecords
	}

	res.P50MS, res.P99MS = latencyQuantiles(ackTimes, doneTimes)
	if len(recoveries) > 0 {
		sort.Slice(recoveries, func(a, b int) bool { return recoveries[a] < recoveries[b] })
		res.RecoveryP50MS = float64(recoveries[len(recoveries)/2].Milliseconds())
		res.RecoveryMaxMS = float64(recoveries[len(recoveries)-1].Milliseconds())
	}
	for _, f := range failed {
		fmt.Fprintf(os.Stderr, "farmbench: job %s ended %s (cause=%s err=%s)\n",
			f.ID, f.State, f.Cause, f.Err)
	}

	tbl := report.NewTable(
		fmt.Sprintf("Farmbench: %d jobs / %d clients / %d workers under chaos — %d daemon SIGKILLs, %d worker kills",
			cfg.Jobs, cfg.Clients, cfg.Workers, res.DaemonKills, res.WorkerKills),
		"metric", "value")
	tbl.AddRow("lost acknowledged jobs", fmt.Sprint(res.LostAcked))
	tbl.AddRow("duplicate results", fmt.Sprint(res.DupResults))
	tbl.AddRow("hash mismatches vs reference", fmt.Sprint(res.HashMismatches))
	tbl.AddRow("failed jobs", fmt.Sprint(res.FailedJobs))
	tbl.AddRow("completed jobs/s under chaos", fmt.Sprintf("%.1f", res.JobsPerSec))
	tbl.AddRow("submit-to-done p50 / p99 (ms)", fmt.Sprintf("%.0f / %.0f", res.P50MS, res.P99MS))
	tbl.AddRow("SIGKILL-to-healthy p50 / max (ms)", fmt.Sprintf("%.0f / %.0f", res.RecoveryP50MS, res.RecoveryMaxMS))
	tbl.AddRow("client resubmits to get acked", fmt.Sprint(res.Resubmits))
	tbl.AddRow("journal records at end", fmt.Sprint(res.FinalQueuedWAL))
	return res, tbl, nil
}

// latencyQuantiles computes p50/p99 of done-ack in milliseconds over
// jobs that have both timestamps.
func latencyQuantiles(acked, done []time.Time) (p50, p99 float64) {
	var lats []float64
	for i := range acked {
		if acked[i].IsZero() || done[i].IsZero() {
			continue
		}
		lats = append(lats, float64(done[i].Sub(acked[i]).Milliseconds()))
	}
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Float64s(lats)
	return lats[len(lats)/2], lats[(len(lats)*99)/100]
}
