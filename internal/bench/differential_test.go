package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"testing"

	"nektar/internal/engine"
	"nektar/internal/fault"
	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Scheduler equivalence over the real solvers: every registered
// workload, run under the serial and the parallel simnet scheduler,
// with and without a fault plan, must produce bit-identical per-rank
// virtual wall/cpu clocks and bit-identical solver trajectories
// (compared as hashes of the checkpoint stream — pure slices and ints,
// so equal state encodes to equal bytes within one process).

type diffRun struct {
	wall, cpu []float64
	hashes    []string
	errStr    string
}

func runWorkloadDiff(t *testing.T, wlName string, p, steps int, sched simnet.Scheduler, plan *fault.Plan) diffRun {
	t.Helper()
	wl, err := WorkloadByName(wlName)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.Muses()
	model := *mach.Net
	model.Scheduler = sched
	var inj simnet.Injector
	if plan != nil {
		inj = plan
	}
	hashes := make([]string, p)
	wall, cpu, runErr := simnet.RunWithFaults(p, &model, inj, func(n *simnet.Node) {
		comm := mpi.World(n)
		s, err := wl.New(comm, &mach.CPU)
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			s.Step()
		}
		b, err := engine.Marshal(s)
		if err != nil {
			panic(err)
		}
		sum := sha256.Sum256(b)
		hashes[n.Rank] = hex.EncodeToString(sum[:])
	})
	return diffRun{wall: wall, cpu: cpu, hashes: hashes, errStr: fmt.Sprint(runErr)}
}

// diffPlan builds the fault plan for the faulty half of the matrix:
// link degradation, a NIC stall window, and a rank stall — faults the
// raw-mode solver communicators survive (drops and crashes are covered
// differentially at the primitive level in internal/simnet).
func diffPlan(p int) *fault.Plan {
	plan := fault.NewPlan(11).
		DegradeLink(0, 1, 1e-3, 1e9, 2, 2.5).
		StallNIC(0, 2e-3, 6e-3).
		StallRank(p-1, 1e-3, 4e-3)
	if err := plan.Err(); err != nil {
		panic(err)
	}
	return plan
}

func TestSchedulerDifferentialWorkloads(t *testing.T) {
	ranks := map[string]int{"nsf": 4, "nsale": 3}
	for _, name := range WorkloadNames() {
		p, ok := ranks[name]
		if !ok {
			p = 4 // power-of-two default for workloads registered later
		}
		for _, faulty := range []bool{false, true} {
			label := fmt.Sprintf("%s/p=%d/faults=%v", name, p, faulty)
			var planS, planP *fault.Plan
			if faulty {
				planS, planP = diffPlan(p), diffPlan(p)
			}
			const steps = 2
			serial := runWorkloadDiff(t, name, p, steps, simnet.SchedSerial, planS)
			par := runWorkloadDiff(t, name, p, steps, simnet.SchedParallel, planP)
			if serial.errStr != par.errStr {
				t.Fatalf("%s: error diverged:\nserial:   %s\nparallel: %s", label, serial.errStr, par.errStr)
			}
			for r := 0; r < p; r++ {
				if math.Float64bits(serial.wall[r]) != math.Float64bits(par.wall[r]) {
					t.Errorf("%s: rank %d wall clock diverged: serial %v parallel %v",
						label, r, serial.wall[r], par.wall[r])
				}
				if math.Float64bits(serial.cpu[r]) != math.Float64bits(par.cpu[r]) {
					t.Errorf("%s: rank %d cpu clock diverged: serial %v parallel %v",
						label, r, serial.cpu[r], par.cpu[r])
				}
				if serial.hashes[r] != par.hashes[r] {
					t.Errorf("%s: rank %d trajectory hash diverged:\nserial:   %s\nparallel: %s",
						label, r, serial.hashes[r], par.hashes[r])
				}
			}
		}
	}
}
