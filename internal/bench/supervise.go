package bench

import (
	"bytes"
	"fmt"
	"strings"

	"nektar/internal/ckpt"
	"nektar/internal/core"
	"nektar/internal/fault"
	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/policy"
	"nektar/internal/report"
	"nektar/internal/supervisor"
)

// Supervise: the self-healing runtime demonstration. The paper's
// production runs survived commodity hardware because an operator
// noticed the dead PC, swapped it, and restarted from restart files;
// package supervisor closes that loop automatically. This experiment
// runs a supervised reference, then the same run through a two-fault
// campaign — one node crash and one process freeze — and reports the
// detection, the spare-node replacements, the recovery cost, and
// whether the recovered trajectory is bit-identical to the reference.

// SuperviseConfig parametrizes the demonstration.
type SuperviseConfig struct {
	Machine string
	Solver  string // "nsf" (Fourier) or "nsale" (moving mesh)
	Procs   int
	Spares  int

	Steps           int
	CheckpointEvery int

	// CrashFrac and StallFrac place the two faults as fractions of the
	// reference virtual wall: node 1 dies at CrashFrac, node 0 freezes
	// (silent but alive) at StallFrac. Either may be 0 to disable.
	CrashFrac float64
	StallFrac float64
	// StallDurS is the freeze duration (virtual seconds); long enough
	// that only the heartbeat detector can end the attempt.
	StallDurS float64
	Seed      int64

	// CkptDir, when set, backs the faulted campaign's checkpoints with
	// a durable on-disk store (framed, compressed, CRC-verified): the
	// rollback step then comes from records that verify on every rank
	// rather than from the in-memory staging area. The directory must
	// start empty — leftover records warm-start the campaign.
	CkptDir string

	// Policy selects the resilience policy for the faulted campaign:
	// "static" (the default, empty means static), "pinned", or
	// "adaptive" (see internal/policy). Under "adaptive" the campaign
	// retunes its checkpoint cadence from the observed failures and the
	// report gains a policy end-state row.
	Policy string
	// MTBFHours seeds the adaptive policy's per-node MTBF prior, in
	// hours of virtual time. Required (positive) when Policy is
	// "adaptive"; ignored otherwise.
	MTBFHours float64
}

// PaperSupervise is the default campaign: the paper's Ethernet Beowulf
// with two hot spares behind four ranks, hit by a crash and a freeze.
var PaperSupervise = SuperviseConfig{
	Machine: "RoadRunner-eth",
	Solver:  "nsf",
	Procs:   4,
	Spares:  2,
	Steps:   10, CheckpointEvery: 2,
	CrashFrac: 0.55, StallFrac: 0.25,
	StallDurS: 1e6,
	Seed:      1,
}

// ValidateSupervise checks a configuration and returns an actionable
// error for each way the demonstration cannot run.
func ValidateSupervise(cfg SuperviseConfig) error {
	mach, err := machine.ByName(cfg.Machine)
	if err != nil {
		return fmt.Errorf("%w (see internal/machine for the catalogue)", err)
	}
	wl, err := WorkloadByName(cfg.Solver)
	if err != nil {
		return err
	}
	if err := ValidateWorkloadRanks(wl, cfg.Procs); err != nil {
		return err
	}
	if cfg.Procs+cfg.Spares > mach.MaxProcs {
		return fmt.Errorf("bench: %d ranks + %d spares exceed the %d nodes of %s",
			cfg.Procs, cfg.Spares, mach.MaxProcs, cfg.Machine)
	}
	if cfg.Spares < 0 {
		return fmt.Errorf("bench: negative spare count %d", cfg.Spares)
	}
	if cfg.Steps < 1 {
		return fmt.Errorf("bench: need at least one step, got %d", cfg.Steps)
	}
	if cfg.CrashFrac < 0 || cfg.CrashFrac >= 1 || cfg.StallFrac < 0 || cfg.StallFrac >= 1 {
		return fmt.Errorf("bench: fault fractions must lie in [0, 1): crash %g, stall %g — they place faults inside the reference run",
			cfg.CrashFrac, cfg.StallFrac)
	}
	if cfg.StallFrac > 0 && cfg.StallDurS <= 0 {
		return fmt.Errorf("bench: a stall needs a positive duration, got %g", cfg.StallDurS)
	}
	if cfg.Policy != "" {
		mode, err := policy.ModeByName(cfg.Policy)
		if err != nil {
			return err
		}
		if mode == policy.Adaptive && cfg.MTBFHours <= 0 {
			return fmt.Errorf("bench: the adaptive policy needs a positive per-node MTBF prior in hours, got %g", cfg.MTBFHours)
		}
	}
	return nil
}

func aleBCs() core.ALEConfig {
	return core.ALEConfig{
		Nu: 0.05, Dt: 2e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
	}
}

// RunSupervise executes the demonstration and renders the report.
func RunSupervise(cfg SuperviseConfig) (*report.Table, error) {
	if err := ValidateSupervise(cfg); err != nil {
		return nil, err
	}
	mach, err := machine.ByName(cfg.Machine)
	if err != nil {
		return nil, err
	}
	wl, err := WorkloadByName(cfg.Solver)
	if err != nil {
		return nil, err
	}
	factory := func(comm *mpi.Comm) (supervisor.Solver, error) {
		return wl.New(comm, &mach.CPU)
	}
	// The supervised runtime owns rank placement: one rank per physical
	// node plus the hot spares and the monitor's head node, so the
	// machine's SMP packing is cleared.
	model := *mach.Net
	model.RanksPerNode = 0

	sup := supervisor.Config{
		Procs:  cfg.Procs,
		Spares: cfg.Spares,
		Model:  &model, NewSolver: factory,
		Steps:           cfg.Steps,
		CheckpointEvery: cfg.CheckpointEvery,
		CheckpointCostS: 1e-4,
	}
	ref, err := supervisor.Run(sup)
	if err != nil {
		return nil, fmt.Errorf("bench: supervised reference run: %w", err)
	}

	// Fault plan keyed by physical node: node 1 (rank 1's initial home)
	// dies, node 0 freezes. The supervisor must detect both, halt the
	// survivors, move the ranks onto spares, and resume from the last
	// committed checkpoint.
	plan := fault.NewPlan(cfg.Seed)
	var faults []string
	if cfg.CrashFrac > 0 && cfg.Procs > 1 {
		plan.Crash(1, cfg.CrashFrac*ref.VirtualWall)
		faults = append(faults, fmt.Sprintf("crash node 1 @ %.3gs", cfg.CrashFrac*ref.VirtualWall))
	}
	if cfg.StallFrac > 0 {
		plan.StallRank(0, cfg.StallFrac*ref.VirtualWall, cfg.StallDurS)
		faults = append(faults, fmt.Sprintf("freeze node 0 @ %.3gs", cfg.StallFrac*ref.VirtualWall))
	}
	faulted := sup
	faulted.Faults = plan
	faulted.Heartbeat.InitialInterval = ref.VirtualWall / float64(cfg.Steps)
	mode := policy.Static
	if cfg.Policy != "" {
		if mode, err = policy.ModeByName(cfg.Policy); err != nil {
			return nil, err
		}
	}
	if mode != policy.Static {
		faulted.Adapt = &policy.Config{Mode: mode}
		if mode == policy.Adaptive {
			// The flag gives a per-node MTBF; the controller's prior is
			// the cluster-level rate (any of the Procs workers failing).
			faulted.Adapt.PriorMTBFS = cfg.MTBFHours * 3600 / float64(cfg.Procs)
		}
	}
	if cfg.CkptDir != "" {
		store, serr := ckpt.NewDirStore(cfg.CkptDir)
		if serr != nil {
			return nil, serr
		}
		faulted.Store, faulted.Kind = store, cfg.Solver
	}
	got, err := supervisor.Run(faulted)
	if err != nil {
		return nil, fmt.Errorf("bench: supervised faulted run: %w", err)
	}

	identical := len(got.FinalStates) == len(ref.FinalStates)
	for r := range ref.FinalStates {
		if !identical || !bytes.Equal(ref.FinalStates[r], got.FinalStates[r]) {
			identical = false
			break
		}
	}

	tbl := report.NewTable(
		fmt.Sprintf("Supervise: self-healing runtime — %s, %s, P=%d +%d spares, %d steps, ckpt every %d [%s]",
			cfg.Machine, cfg.Solver, cfg.Procs, cfg.Spares, cfg.Steps, cfg.CheckpointEvery,
			strings.Join(faults, "; ")),
		"run", "attempts", "failures handled", "steps computed", "virtual wall (s)", "bit-identical")
	tbl.AddRow("supervised reference", fmt.Sprintf("%d", ref.Attempts), "0",
		fmt.Sprintf("%d", ref.StepsComputed), fmt.Sprintf("%.4g", ref.VirtualWall), "—")
	var handled []string
	for _, f := range got.Failures {
		entry := fmt.Sprintf("rank %d %s@%.3gs", f.Rank, f.Cause, f.DetectedAt)
		if f.NewNode >= 0 {
			entry += fmt.Sprintf("->node %d", f.NewNode)
		}
		handled = append(handled, entry)
	}
	verdictCol := "NO"
	if identical {
		verdictCol = "yes"
	}
	tbl.AddRow("crash+freeze campaign", fmt.Sprintf("%d", got.Attempts),
		fmt.Sprintf("%d (%s)", len(got.Failures), strings.Join(handled, "; ")),
		fmt.Sprintf("%d", got.StepsComputed), fmt.Sprintf("%.4g", got.VirtualWall), verdictCol)
	if mode != policy.Static {
		// The policy end state, in the campaign row's shape: what the
		// controllers converged to and how often the ladder fired.
		tbl.AddRow(fmt.Sprintf("policy end state (%s)", mode), "—",
			fmt.Sprintf("%d escalation(s)", len(got.Escalations)),
			fmt.Sprintf("ckpt every %d", got.FinalInterval),
			fmt.Sprintf("MTBF est %.3g", got.MTBFEstimateS),
			got.WriteMode+" writes")
	}
	if !identical {
		return tbl, fmt.Errorf("bench: recovered trajectory is NOT bit-identical to the reference")
	}
	return tbl, nil
}
