package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestSpectralBenchQuick runs the budget-limited sweep on every test
// pass: the bit-identity enforcement inside RunSpectralBench (serial
// reference vs slab, serial vs parallel scheduler) is the assertion;
// the numbers are incidental here.
func TestSpectralBenchQuick(t *testing.T) {
	res, tbl, err := RunSpectralBench(QuickSpectral)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("quick sweep produced %d cells, want 2 (turb2d + turbforce at P=4)", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.VirtualWallS <= 0 {
			t.Errorf("%s P=%d: non-positive virtual wall %g", c.Workload, c.Procs, c.VirtualWallS)
		}
	}
	var buf bytes.Buffer
	tbl.Write(&buf)
	if !strings.Contains(buf.String(), "turbforce") {
		t.Fatalf("bench table missing turbforce row:\n%s", buf.String())
	}
}

// TestSpectralPadAB: the exact-3/2 vs power-of-two A/B cell. The byte
// and flop reductions are analytic and exact (M shrinks 2N -> 3N/2, a
// 25% cut in transpose payload); the host-time reduction is measured,
// so the assertion is only that the exact grid is not slower — the
// >= 25% target is checked against the recorded baseline, not a
// CI-flaky wall-clock race.
func TestSpectralPadAB(t *testing.T) {
	ab, err := runPadAB(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ab.MExact != 24 || ab.MPow2 != 32 {
		t.Fatalf("A/B grids M=%d/%d, want 24/32", ab.MExact, ab.MPow2)
	}
	if ab.ExactBytesPerEval*4 != ab.Pow2BytesPerEval*3 {
		t.Fatalf("transpose payloads %d vs %d are not in the 3:4 ratio", ab.ExactBytesPerEval, ab.Pow2BytesPerEval)
	}
	if ab.ByteReduction != 0.25 {
		t.Fatalf("byte reduction %g, want exactly 0.25", ab.ByteReduction)
	}
	if ab.ExactFlopsPerEval >= ab.Pow2FlopsPerEval {
		t.Fatalf("exact grid models more transform flops (%d) than pow2 (%d)", ab.ExactFlopsPerEval, ab.Pow2FlopsPerEval)
	}
	if ab.HostReduction <= 0 {
		t.Errorf("exact-3/2 leg was not faster: reduction %.3f (exact %.4fs, pow2 %.4fs)",
			ab.HostReduction, ab.ExactHostS, ab.Pow2HostS)
	}
	var buf bytes.Buffer
	ab.Table().Write(&buf)
	for _, want := range []string{"exact 3N/2", "pow2 legacy", "reduction", "25.0%"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("A/B table missing %q:\n%s", want, buf.String())
		}
	}
}

// TestWriteSpectralBaseline regenerates BENCH_spectral.json (the
// committed serial-vs-slab baseline) when BENCH_SPECTRAL=1 is set;
// `make bench-spectral` runs it. The write goes through
// WriteSpectralBaseline, so a 1-core host is refused unless
// BENCH_SPECTRAL_FORCE=1 deliberately overrides — the file stamps
// GOMAXPROCS and the host core count next to the speedups.
func TestWriteSpectralBaseline(t *testing.T) {
	if os.Getenv("BENCH_SPECTRAL") == "" {
		t.Skip("set BENCH_SPECTRAL=1 to regenerate BENCH_spectral.json")
	}
	res, _, err := RunSpectralBench(PaperSpectral)
	if err != nil {
		t.Fatal(err)
	}
	force := os.Getenv("BENCH_SPECTRAL_FORCE") != ""
	if err := WriteSpectralBaseline("../../BENCH_spectral.json", res, force); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSpectralBaselineGuard: the writer must refuse a 1-core host
// without force and leave the target untouched; force must always
// write, and the file must round-trip through the JSON schema.
func TestWriteSpectralBaselineGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_spectral.json")
	res := &SpectralBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		N:          16, Steps: 2,
		Cells: []SpectralCellResult{{Workload: "turb2d", Procs: 4, Speedup: 1}},
	}
	err := WriteSpectralBaseline(path, res, false)
	if runtime.NumCPU() == 1 {
		if err == nil {
			t.Fatal("1-core write without force succeeded")
		}
		if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
			t.Fatal("refused write left a file behind")
		}
	} else if err != nil {
		t.Fatal(err)
	}
	if err := WriteSpectralBaseline(path, res, true); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SpectralBenchResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCPU != res.NumCPU || len(back.Cells) != 1 || back.Cells[0].Workload != "turb2d" {
		t.Fatalf("baseline did not round-trip: %+v", back)
	}
}
