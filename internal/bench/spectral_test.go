package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestSpectralBenchQuick runs the budget-limited sweep on every test
// pass: the bit-identity enforcement inside RunSpectralBench (serial
// reference vs slab, serial vs parallel scheduler) is the assertion;
// the numbers are incidental here.
func TestSpectralBenchQuick(t *testing.T) {
	res, tbl, err := RunSpectralBench(QuickSpectral)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("quick sweep produced %d cells, want 2 (turb2d + turbforce at P=4)", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.VirtualWallS <= 0 {
			t.Errorf("%s P=%d: non-positive virtual wall %g", c.Workload, c.Procs, c.VirtualWallS)
		}
	}
	var buf bytes.Buffer
	tbl.Write(&buf)
	if !strings.Contains(buf.String(), "turbforce") {
		t.Fatalf("bench table missing turbforce row:\n%s", buf.String())
	}
}

// TestWriteSpectralBaseline regenerates BENCH_spectral.json (the
// committed serial-vs-slab baseline) when BENCH_SPECTRAL=1 is set;
// `make bench-spectral` runs it. The write goes through
// WriteSpectralBaseline, so a 1-core host is refused unless
// BENCH_SPECTRAL_FORCE=1 deliberately overrides — the file stamps
// GOMAXPROCS and the host core count next to the speedups.
func TestWriteSpectralBaseline(t *testing.T) {
	if os.Getenv("BENCH_SPECTRAL") == "" {
		t.Skip("set BENCH_SPECTRAL=1 to regenerate BENCH_spectral.json")
	}
	res, _, err := RunSpectralBench(PaperSpectral)
	if err != nil {
		t.Fatal(err)
	}
	force := os.Getenv("BENCH_SPECTRAL_FORCE") != ""
	if err := WriteSpectralBaseline("../../BENCH_spectral.json", res, force); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSpectralBaselineGuard: the writer must refuse a 1-core host
// without force and leave the target untouched; force must always
// write, and the file must round-trip through the JSON schema.
func TestWriteSpectralBaselineGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_spectral.json")
	res := &SpectralBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		N:          16, Steps: 2,
		Cells: []SpectralCellResult{{Workload: "turb2d", Procs: 4, Speedup: 1}},
	}
	err := WriteSpectralBaseline(path, res, false)
	if runtime.NumCPU() == 1 {
		if err == nil {
			t.Fatal("1-core write without force succeeded")
		}
		if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
			t.Fatal("refused write left a file behind")
		}
	} else if err != nil {
		t.Fatal(err)
	}
	if err := WriteSpectralBaseline(path, res, true); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SpectralBenchResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCPU != res.NumCPU || len(back.Cells) != 1 || back.Cells[0].Workload != "turb2d" {
		t.Fatalf("baseline did not round-trip: %+v", back)
	}
}
