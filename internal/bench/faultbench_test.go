package bench

import (
	"strings"
	"testing"
)

func quickFaultbench() FaultbenchConfig {
	cfg := PaperFaultbench
	cfg.Procs = 2
	cfg.ProbeNt, cfg.ProbeNr = 6, 2
	cfg.Order = 3
	cfg.Steps = 1
	cfg.IntervalSteps = []int{10, 100, 1000}
	cfg.MTBFHours = []float64{24, 168}
	return cfg
}

func TestFaultbenchYoungSweep(t *testing.T) {
	cfg := quickFaultbench()
	res, tbl, err := RunFaultbench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepWallS <= 0 {
		t.Errorf("probe measured non-positive per-step wall %v", res.StepWallS)
	}
	if res.CheckpointMB <= 0 || res.DeltaS <= 0 {
		t.Errorf("probe measured empty checkpoint (%v MB, delta %v s)", res.CheckpointMB, res.DeltaS)
	}
	if len(res.OptimalTauS) != len(cfg.MTBFHours) {
		t.Fatalf("got %d optima, want %d", len(res.OptimalTauS), len(cfg.MTBFHours))
	}
	for i, theta := range res.ClusterMTBFS {
		opt := youngOverhead(res.DeltaS, res.OptimalTauS[i], theta)
		for _, steps := range cfg.IntervalSteps {
			tau := float64(steps) * res.StepWallS
			if got := youngOverhead(res.DeltaS, tau, theta); got < opt-1e-12 {
				t.Errorf("interval %d beats the analytic optimum at theta=%v: %v < %v", steps, theta, got, opt)
			}
		}
	}
	var sb strings.Builder
	tbl.Write(&sb)
	out := sb.String()
	for _, want := range []string{"node MTBF 24h", "node MTBF 168h", "tau_opt"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFaultbenchRecoveryTable(t *testing.T) {
	tbl, err := RunFaultbenchRecovery(quickFaultbench(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "node crash + recovery") {
		t.Errorf("rendered table missing recovery row:\n%s", out)
	}
}
