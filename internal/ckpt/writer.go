package ckpt

import (
	"fmt"
	"sync"
	"time"

	"nektar/internal/engine"
)

// WriterStats aggregates a writer's activity. ExposedS is the time the
// step loop itself spent inside Submit (for the async writer: only
// backpressure stalls; for the sync writer: the whole frame+write);
// HiddenS is the write time overlapped with stepping. The acceptance
// claim of this subsystem is ExposedS(async) << ExposedS(sync) at
// equal cadence.
type WriterStats struct {
	Snapshots   int
	RawBytes    int64
	StoredBytes int64
	ExposedS    float64
	HiddenS     float64
}

// Ratio is the aggregate compression ratio.
func (w WriterStats) Ratio() float64 {
	if w.StoredBytes == 0 {
		return 0
	}
	return float64(w.RawBytes) / float64(w.StoredBytes)
}

// WriterConfig parametrizes AsyncWriter and SyncWriter.
type WriterConfig struct {
	// Kind and Rank address the records (see Meta).
	Kind string
	Rank int
	// Retention, when non-zero, runs GC after every put.
	Retention Retention
	// Trace, when set, receives one ckpt_done event per durable record.
	Trace *engine.Tracer
}

// AsyncWriter is the host-time checkpoint sink: engine.Loop hands it
// the marshalled state and keeps stepping while a background goroutine
// frames, compresses, and persists the record. Buffering is double:
// one snapshot may be in flight and one pending, so Submit only blocks
// (backpressure, measured as exposed time) when the writer falls a
// full interval behind. Drain flushes — it waits for the queue to
// empty rather than shutting the writer down — so one writer can serve
// a whole campaign of Loop runs; Close stops the goroutine.
//
// Host wall-clock only: inside simnet rank bodies, real goroutines
// would break the cooperative virtual-time scheduler — use SimWriter
// there.
type AsyncWriter struct {
	store Store
	cfg   WriterConfig

	mu      sync.Mutex
	cond    *sync.Cond
	pending *asyncJob // the one buffered snapshot (double buffer slot)
	busy    bool      // worker holds a snapshot not yet durable
	closed  bool
	err     error // first write error, surfaced by Submit/Drain
	stats   WriterStats

	done chan struct{} // closed when the background goroutine exits
}

type asyncJob struct {
	step    int
	state   []byte
	final   bool
	exposed float64 // submit-side block time, reported in ckpt_done
}

// NewAsyncWriter starts the background writer over store.
func NewAsyncWriter(store Store, cfg WriterConfig) *AsyncWriter {
	w := &AsyncWriter{store: store, cfg: cfg, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

// Submit implements engine.CheckpointSink. The state slice is owned by
// the writer from this call on (engine.Marshal allocates fresh bytes,
// so the loop never mutates it).
func (w *AsyncWriter) Submit(step int, state []byte, final bool) error {
	t0 := time.Now()
	w.mu.Lock()
	for w.pending != nil && w.err == nil && !w.closed {
		w.cond.Wait() // backpressure: a snapshot is already queued
	}
	if w.err != nil || w.closed {
		err := w.err
		w.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("ckpt: submit on closed writer")
		}
		return err
	}
	exposed := time.Since(t0).Seconds()
	w.pending = &asyncJob{step: step, state: state, final: final, exposed: exposed}
	w.stats.Snapshots++
	w.stats.RawBytes += int64(len(state))
	w.stats.ExposedS += exposed
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}

// Drain implements engine.CheckpointSink: it blocks until every
// submitted snapshot is durable and returns the first write error. The
// writer stays usable afterwards.
func (w *AsyncWriter) Drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for (w.pending != nil || w.busy) && !w.closed {
		w.cond.Wait()
	}
	return w.err
}

// Close drains, stops the background goroutine, and waits for it to
// exit. It is idempotent and safe to defer around a solver step that
// may panic: the in-flight snapshot is made durable (or its error
// surfaced) before the goroutine is released, so a panicking run never
// leaks the writer goroutine or loses a submitted snapshot. The writer
// rejects further submissions.
func (w *AsyncWriter) Close() error {
	err := w.Drain()
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	<-w.done // goroutine exit, so Close-then-leak-check is race-free
	w.mu.Lock()
	if err == nil {
		err = w.err
	}
	w.mu.Unlock()
	return err
}

// Stats returns a snapshot of the writer's counters.
func (w *AsyncWriter) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// loop is the background writer goroutine.
func (w *AsyncWriter) loop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for w.pending == nil && !w.closed {
			w.cond.Wait()
		}
		if w.closed && w.pending == nil {
			w.mu.Unlock()
			return
		}
		job := w.pending
		w.pending = nil
		w.busy = true
		w.cond.Broadcast() // free the double-buffer slot for the loop
		w.mu.Unlock()

		t0 := time.Now()
		stats, err := persist(w.store, Meta{Kind: w.cfg.Kind, Rank: w.cfg.Rank, Step: job.step},
			job.state, w.cfg.Retention)
		hidden := time.Since(t0).Seconds()

		w.mu.Lock()
		w.busy = false
		w.stats.StoredBytes += int64(stats.Stored)
		w.stats.HiddenS += hidden
		if err != nil && w.err == nil {
			w.err = err
		}
		w.cond.Broadcast()
		w.mu.Unlock()
		if err == nil && w.cfg.Trace != nil {
			w.cfg.Trace.Emit(engine.Event{
				Ev: engine.EvCkptDone, Rank: w.cfg.Rank, Step: job.step,
				Bytes: stats.Raw, Stored: stats.Stored, Ratio: stats.Ratio(),
				HiddenS: hidden, ExposedS: job.exposed, Final: job.final,
			})
		}
	}
}

// SyncWriter persists every snapshot inline on the step loop — the
// pre-subsystem behavior, kept as the comparator ckptbench measures
// the async writer against (and as the trivially-correct sink for
// tests).
type SyncWriter struct {
	store Store
	cfg   WriterConfig

	mu    sync.Mutex
	stats WriterStats
}

// NewSyncWriter returns a synchronous sink over store.
func NewSyncWriter(store Store, cfg WriterConfig) *SyncWriter {
	return &SyncWriter{store: store, cfg: cfg}
}

// Submit implements engine.CheckpointSink.
func (w *SyncWriter) Submit(step int, state []byte, final bool) error {
	t0 := time.Now()
	stats, err := persist(w.store, Meta{Kind: w.cfg.Kind, Rank: w.cfg.Rank, Step: step},
		state, w.cfg.Retention)
	exposed := time.Since(t0).Seconds()
	w.mu.Lock()
	w.stats.Snapshots++
	w.stats.RawBytes += int64(stats.Raw)
	w.stats.StoredBytes += int64(stats.Stored)
	w.stats.ExposedS += exposed
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if w.cfg.Trace != nil {
		w.cfg.Trace.Emit(engine.Event{
			Ev: engine.EvCkptDone, Rank: w.cfg.Rank, Step: step,
			Bytes: stats.Raw, Stored: stats.Stored, Ratio: stats.Ratio(),
			ExposedS: exposed, Final: final,
		})
	}
	return nil
}

// Drain implements engine.CheckpointSink (everything is already
// durable).
func (w *SyncWriter) Drain() error { return nil }

// Stats returns a snapshot of the writer's counters.
func (w *SyncWriter) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// persist is the shared put+GC step.
func persist(store Store, m Meta, state []byte, ret Retention) (Stats, error) {
	stats, err := store.Put(m, state)
	if err != nil {
		return stats, err
	}
	if !ret.zero() {
		if _, err := GC(store, ret); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
