// Package ckpt is the durable checkpoint store: the restart files the
// paper's 250-CPU-hour production runs survived commodity hardware
// with, as a subsystem. PRs 1-3 staged checkpoints as ephemeral
// in-memory []byte handed to engine.Loop's OnCheckpoint hook, which a
// process loss defeats; this package makes them durable records —
// framed with a header (magic, solver kind, step, rank, raw length),
// flate-compressed, and closed by a CRC-32 trailer — behind a small
// Store interface with memory and on-disk backends.
//
// Recovery is corruption-aware: Open verifies the CRC and the header
// before returning a payload, and Latest walks the store newest-first
// for the youngest step at which EVERY rank's record still verifies,
// skipping torn, bit-flipped, or incomplete steps. A Retention policy
// (keep the last K steps plus every Nth) bounds the disk footprint of
// a long campaign without losing the widely-spaced history that makes
// deep rollback possible.
//
// The write path lives in writer.go (host-time asynchronous writer for
// real processes) and simwriter.go (virtual-time cost model for ranks
// on the simulated cluster).
package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Record framing, all integers big-endian:
//
//	offset  size  field
//	0       4     magic "NKCP"
//	4       1     version (currently 1)
//	5       1     len(kind)
//	6       k     kind (solver/workload tag, ASCII)
//	6+k     8     step
//	14+k    4     rank
//	18+k    8     raw payload length (pre-compression)
//	26+k    n     flate-compressed payload
//	26+k+n  4     CRC-32 (IEEE) over everything above
const (
	magic      = "NKCP"
	version    = 1
	trailerLen = 4
)

// Meta identifies one checkpoint record.
type Meta struct {
	// Kind tags the producing solver/workload (e.g. "ns2d", "nsf") so a
	// restart cannot load state into the wrong solver.
	Kind string
	Rank int
	Step int
}

// Stats reports one stored record's sizes.
type Stats struct {
	Raw    int // marshalled solver state bytes
	Stored int // framed bytes on the medium (header + flate + CRC)
}

// Ratio is the compression ratio raw/stored (1 = incompressible).
func (s Stats) Ratio() float64 {
	if s.Stored == 0 {
		return 0
	}
	return float64(s.Raw) / float64(s.Stored)
}

// CorruptError reports a record that failed verification. Latest and
// the recovery paths treat it as "this record does not exist" and fall
// back; Open surfaces it so callers can tell corruption from absence.
type CorruptError struct {
	Key    string // backend-specific record name
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckpt: record %s corrupt: %s", e.Key, e.Reason)
}

// NotFoundError reports a record absent from the store.
type NotFoundError struct {
	Step, Rank int
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("ckpt: no record for step %d rank %d", e.Step, e.Rank)
}

// Corrupter mutates a framed record on its way to the medium — the
// hook internal/fault's torn-write/bit-flip injectors implement
// (structurally; fault does not import this package). Production
// writes pass through untouched when no corrupter is installed.
type Corrupter interface {
	CorruptRecord(step, rank int, frame []byte) []byte
}

// Store is one checkpoint tier: a set of framed records addressed by
// (step, rank). Implementations are safe for concurrent use.
type Store interface {
	// Put frames, compresses, and persists one record, replacing any
	// existing (step, rank) record.
	Put(m Meta, state []byte) (Stats, error)
	// Open returns the verified payload for (step, rank): a CRC or
	// header mismatch yields a *CorruptError, an absent record a
	// *NotFoundError.
	Open(step, rank int) ([]byte, Meta, error)
	// Steps lists the steps with at least one record, ascending.
	Steps() ([]int, error)
	// Ranks lists the ranks recorded at step, ascending.
	Ranks(step int) ([]int, error)
	// Delete removes every record at step (absent steps are a no-op).
	Delete(step int) error
}

// EncodeRecord frames and compresses one checkpoint payload.
func EncodeRecord(m Meta, state []byte) ([]byte, error) {
	if len(m.Kind) > 255 {
		return nil, fmt.Errorf("ckpt: kind %q longer than 255 bytes", m.Kind)
	}
	if m.Step < 0 || m.Rank < 0 {
		return nil, fmt.Errorf("ckpt: negative step %d or rank %d", m.Step, m.Rank)
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(version)
	buf.WriteByte(byte(len(m.Kind)))
	buf.WriteString(m.Kind)
	var hdr [20]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(m.Step))
	binary.BigEndian.PutUint32(hdr[8:], uint32(m.Rank))
	binary.BigEndian.PutUint64(hdr[12:], uint64(len(state)))
	buf.Write(hdr[:])
	// flate.BestSpeed: checkpoints sit on the step loop's shadow; the
	// gob payloads are float-heavy and compress only modestly, so a
	// deeper search buys little and costs a lot.
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if _, err := zw.Write(state); err != nil {
		return nil, fmt.Errorf("ckpt: compressing record: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("ckpt: compressing record: %w", err)
	}
	var crc [trailerLen]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes(), nil
}

// DecodeRecord verifies and decodes one framed record. Any framing,
// CRC, or length inconsistency returns a *CorruptError (key left empty
// for the backend to fill in).
func DecodeRecord(frame []byte) (Meta, []byte, error) {
	corrupt := func(reason string, args ...any) (Meta, []byte, error) {
		return Meta{}, nil, &CorruptError{Reason: fmt.Sprintf(reason, args...)}
	}
	if len(frame) < len(magic)+2+20+trailerLen {
		return corrupt("truncated at %d bytes", len(frame))
	}
	body, trailer := frame[:len(frame)-trailerLen], frame[len(frame)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer); got != want {
		return corrupt("CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	if string(body[:len(magic)]) != magic {
		return corrupt("bad magic %q", body[:len(magic)])
	}
	if body[len(magic)] != version {
		return corrupt("unsupported version %d", body[len(magic)])
	}
	kindLen := int(body[len(magic)+1])
	rest := body[len(magic)+2:]
	if len(rest) < kindLen+20 {
		return corrupt("truncated header")
	}
	m := Meta{Kind: string(rest[:kindLen])}
	rest = rest[kindLen:]
	m.Step = int(binary.BigEndian.Uint64(rest[0:]))
	m.Rank = int(binary.BigEndian.Uint32(rest[8:]))
	rawLen := binary.BigEndian.Uint64(rest[12:])
	zr := flate.NewReader(bytes.NewReader(rest[20:]))
	state, err := io.ReadAll(zr)
	if err != nil {
		return corrupt("inflating payload: %v", err)
	}
	if uint64(len(state)) != rawLen {
		return corrupt("payload inflated to %d bytes, header says %d", len(state), rawLen)
	}
	return m, state, nil
}

// Latest returns the newest step at which every rank in [0, procs) has
// a record that verifies, with the per-rank payloads. Corrupt, torn,
// and incomplete steps are skipped — this is the recovery fallback —
// and (-1, nil, nil) means the store holds nothing usable. Only
// backend I/O failures (listing errors) are returned as errors.
func Latest(s Store, procs int) (int, [][]byte, error) {
	return LatestBelow(s, procs, -1)
}

// LatestBelow is Latest restricted to steps strictly below the given
// bound; below < 0 means unbounded. The adaptive escalation ladder
// uses it to roll back one commit deeper when resuming from the newest
// checkpoint keeps tripping the watchdog at the same step.
func LatestBelow(s Store, procs, below int) (int, [][]byte, error) {
	steps, err := s.Steps()
	if err != nil {
		return -1, nil, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if below >= 0 && steps[i] >= below {
			continue
		}
		states := make([][]byte, procs)
		ok := true
		for r := 0; r < procs; r++ {
			state, _, oerr := s.Open(steps[i], r)
			if oerr != nil {
				ok = false
				break
			}
			states[r] = state
		}
		if ok {
			return steps[i], states, nil
		}
	}
	return -1, nil, nil
}

// Retention is the GC policy: keep the newest KeepLast steps plus every
// step divisible by KeepEvery. The zero value keeps everything.
type Retention struct {
	KeepLast  int
	KeepEvery int
}

func (p Retention) zero() bool { return p.KeepLast == 0 && p.KeepEvery == 0 }

// keep decides whether step survives GC given the store's sorted step
// list.
func (p Retention) keep(step int, steps []int) bool {
	if p.zero() {
		return true
	}
	if p.KeepEvery > 0 && step%p.KeepEvery == 0 {
		return true
	}
	if p.KeepLast > 0 {
		idx := sort.SearchInts(steps, step)
		if len(steps)-idx <= p.KeepLast {
			return true
		}
	}
	return false
}

// GC applies the retention policy, returning the steps removed.
func GC(s Store, pol Retention) ([]int, error) {
	if pol.zero() {
		return nil, nil
	}
	steps, err := s.Steps()
	if err != nil {
		return nil, err
	}
	var removed []int
	for _, step := range steps {
		if pol.keep(step, steps) {
			continue
		}
		if err := s.Delete(step); err != nil {
			return removed, err
		}
		removed = append(removed, step)
	}
	return removed, nil
}
