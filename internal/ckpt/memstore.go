package ckpt

import (
	"fmt"
	"sort"
	"sync"
)

// MemStore keeps framed records in memory: the staging tier for tests
// and for simulated ranks that need durable-store semantics (validity
// checking, retention) without a filesystem. Records still round-trip
// through the full frame/CRC path, so a Corrupter damages them exactly
// as it would on disk.
type MemStore struct {
	mu        sync.Mutex
	frames    map[int]map[int][]byte // step -> rank -> frame
	corrupter Corrupter
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{frames: map[int]map[int][]byte{}}
}

// SetCorrupter installs a write-path fault injector (nil clears it).
func (s *MemStore) SetCorrupter(c Corrupter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corrupter = c
}

// Put implements Store.
func (s *MemStore) Put(m Meta, state []byte) (Stats, error) {
	frame, err := EncodeRecord(m, state)
	if err != nil {
		return Stats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.corrupter != nil {
		frame = s.corrupter.CorruptRecord(m.Step, m.Rank, frame)
	}
	if s.frames[m.Step] == nil {
		s.frames[m.Step] = map[int][]byte{}
	}
	s.frames[m.Step][m.Rank] = frame
	return Stats{Raw: len(state), Stored: len(frame)}, nil
}

// Open implements Store.
func (s *MemStore) Open(step, rank int) ([]byte, Meta, error) {
	s.mu.Lock()
	frame, ok := s.frames[step][rank]
	s.mu.Unlock()
	if !ok {
		return nil, Meta{}, &NotFoundError{Step: step, Rank: rank}
	}
	m, state, err := DecodeRecord(frame)
	if err != nil {
		if ce, isCorrupt := err.(*CorruptError); isCorrupt {
			ce.Key = fmt.Sprintf("mem:step-%d.rank-%d", step, rank)
		}
		return nil, Meta{}, err
	}
	if m.Step != step || m.Rank != rank {
		return nil, Meta{}, &CorruptError{
			Key:    fmt.Sprintf("mem:step-%d.rank-%d", step, rank),
			Reason: fmt.Sprintf("header says step %d rank %d", m.Step, m.Rank),
		}
	}
	return state, m, nil
}

// Steps implements Store.
func (s *MemStore) Steps() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	steps := make([]int, 0, len(s.frames))
	for step := range s.frames {
		steps = append(steps, step)
	}
	sort.Ints(steps)
	return steps, nil
}

// Ranks implements Store.
func (s *MemStore) Ranks(step int) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ranks := make([]int, 0, len(s.frames[step]))
	for r := range s.frames[step] {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks, nil
}

// Delete implements Store.
func (s *MemStore) Delete(step int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.frames, step)
	return nil
}
