package ckpt

import (
	"fmt"
	"math"

	"nektar/internal/engine"
	"nektar/internal/mpi"
)

// WriteMode selects how a simulated rank's record reaches disk.
type WriteMode int

const (
	// WriteLocal: each rank writes its own framed record to its
	// node-local disk — the paper's restart files.
	WriteLocal WriteMode = iota
	// WriteStriped: each rank cuts its framed record into P equal
	// stripes and exchanges them all-to-all through the calibrated
	// network, so every node-local disk holds a 1/P-th shard of every
	// rank's record (a poor man's parallel file system: any single
	// record is re-assemblable at full aggregate disk bandwidth, at
	// the price of moving P-1/P of every checkpoint over the wires).
	WriteStriped
)

func (m WriteMode) String() string {
	switch m {
	case WriteLocal:
		return "local"
	case WriteStriped:
		return "striped"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SimWriter is the checkpoint sink for ranks on the simulated cluster:
// it persists records synchronously (real background goroutines would
// break the cooperative virtual-time scheduler) and charges the write
// to the rank's virtual clock through the machine's disk and network
// model. This is where checkpoint cost stops being an assumed constant
// and becomes a measurement — faultbench feeds the measured per-write
// virtual seconds into Young's formula.
//
// All ranks of the communicator must submit at the same steps (the
// striped exchange is a collective); engine.Loop's checkpoint cadence
// guarantees that.
type SimWriter struct {
	// Store receives the records (nil prices the write without
	// persisting — pure cost model).
	Kind  string
	Store Store
	// Comm is the rank's communicator; Rank and the striping factor
	// derive from it.
	Comm *mpi.Comm
	// DiskMBs is the node-local disk bandwidth the write is priced at
	// (0 = free disk: network cost only).
	DiskMBs float64
	// Mode selects local restart files or striped shards.
	Mode WriteMode
	// Retention, when non-zero, runs GC after every put (rank 0 only,
	// so the collective delete happens once).
	Retention Retention
	// Trace, when set, receives one ckpt_done event per record.
	Trace *engine.Tracer

	stats WriterStats
	last  float64
}

// Submit implements engine.CheckpointSink.
func (w *SimWriter) Submit(step int, state []byte, final bool) error {
	m := Meta{Kind: w.Kind, Rank: w.Comm.Rank(), Step: step}
	var stats Stats
	if w.Store != nil {
		var err error
		stats, err = w.Store.Put(m, state)
		if err != nil {
			return err
		}
		if !w.Retention.zero() && w.Comm.Rank() == 0 {
			if _, err := GC(w.Store, w.Retention); err != nil {
				return err
			}
		}
	} else {
		frame, err := EncodeRecord(m, state)
		if err != nil {
			return err
		}
		stats = Stats{Raw: len(state), Stored: len(frame)}
	}

	t0 := w.Comm.Wtime()
	diskBytes := float64(stats.Stored)
	if w.Mode == WriteStriped && w.Comm.Size() > 1 {
		p := w.Comm.Size()
		// Everyone must stripe the same block size or the exchange
		// deadlocks on shape; take the collective max of the framed
		// sizes (records differ by a few bytes across ranks).
		maxStored := w.Comm.Allreduce([]float64{diskBytes}, mpi.Max)[0]
		stripeBytes := math.Ceil(maxStored / float64(p))
		elems := int(math.Ceil(stripeBytes / 8)) // 8-byte words on the wire
		send := make([][]float64, p)
		for i := range send {
			send[i] = make([]float64, elems)
		}
		w.Comm.Alltoall(send, mpi.AlgAuto)
		// Each disk now lands one stripe from every rank.
		diskBytes = stripeBytes * float64(p)
	}
	if w.DiskMBs > 0 {
		w.Comm.Sleep(diskBytes / (w.DiskMBs * 1e6))
	}
	cost := w.Comm.Wtime() - t0

	w.last = cost
	w.stats.Snapshots++
	w.stats.RawBytes += int64(stats.Raw)
	w.stats.StoredBytes += int64(stats.Stored)
	w.stats.ExposedS += cost
	if w.Trace != nil {
		w.Trace.Emit(engine.Event{
			Ev: engine.EvCkptDone, Rank: w.Comm.Rank(), Step: step,
			Bytes: stats.Raw, Stored: stats.Stored, Ratio: stats.Ratio(),
			ExposedS: cost, Final: final,
		})
	}
	return nil
}

// Drain implements engine.CheckpointSink (writes are synchronous).
func (w *SimWriter) Drain() error { return nil }

// Stats returns the writer's counters; seconds are virtual.
func (w *SimWriter) Stats() WriterStats { return w.stats }

// LastCostS is the virtual wall cost of the most recent write on this
// rank — the measured delta faultbench feeds into Young's formula.
func (w *SimWriter) LastCostS() float64 { return w.last }
