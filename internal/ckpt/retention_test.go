package ckpt

import (
	"fmt"
	"sync"
	"testing"
)

// putSteps stores one rank-0 record at each step.
func putSteps(t *testing.T, s Store, steps ...int) {
	t.Helper()
	for _, step := range steps {
		if _, err := s.Put(Meta{Kind: "t", Step: step}, []byte(fmt.Sprintf("state-%d", step))); err != nil {
			t.Fatal(err)
		}
	}
}

func stepsOf(t *testing.T, s Store) []int {
	t.Helper()
	steps, err := s.Steps()
	if err != nil {
		t.Fatal(err)
	}
	return steps
}

// KeepLast: 0 with a positive KeepEvery is a pure every-Nth policy: no
// recent window survives, only the spaced history (which includes step
// 0 — 0 is divisible by every N).
func TestRetentionKeepLastZero(t *testing.T) {
	s := NewMemStore()
	putSteps(t, s, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	removed, err := GC(s, Retention{KeepLast: 0, KeepEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(stepsOf(t, s)), "[0 4 8]"; got != want {
		t.Fatalf("kept %s, want %s (removed %v)", got, want, removed)
	}
	if len(removed) != 8 {
		t.Fatalf("removed %v, want 8 steps", removed)
	}
}

// KeepEvery larger than any step in the store degenerates to the
// KeepLast window alone (plus step 0 when present, the only multiple).
func TestRetentionEveryNthLargerThanStore(t *testing.T) {
	s := NewMemStore()
	putSteps(t, s, 0, 3, 6, 9, 12)
	if _, err := GC(s, Retention{KeepLast: 2, KeepEvery: 1000}); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(stepsOf(t, s)), "[0 9 12]"; got != want {
		t.Fatalf("kept %s, want %s", got, want)
	}

	// Without step 0 the giant modulus keeps nothing beyond the window.
	s2 := NewMemStore()
	putSteps(t, s2, 3, 6, 9, 12)
	if _, err := GC(s2, Retention{KeepLast: 2, KeepEvery: 1000}); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(stepsOf(t, s2)), "[9 12]"; got != want {
		t.Fatalf("kept %s, want %s", got, want)
	}
}

// GC racing a concurrent writer must be safe (run under -race) and
// must never disturb the newest records: the writer only appends newer
// steps, so the retention window slides forward and Latest always
// lands on a fully-written step.
func TestRetentionGCRacesWriter(t *testing.T) {
	for name, mk := range map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"dir": func() Store {
			s, err := NewDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const steps = 120
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < steps; i++ {
					if _, err := s.Put(Meta{Kind: "t", Step: i}, []byte(fmt.Sprintf("s%d", i))); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < steps/2; i++ {
					if _, err := GC(s, Retention{KeepLast: 3, KeepEvery: 50}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			wg.Wait()
			if t.Failed() {
				return
			}
			// A final GC settles the survivors; the newest step must have
			// survived every race and still verify.
			if _, err := GC(s, Retention{KeepLast: 3, KeepEvery: 50}); err != nil {
				t.Fatal(err)
			}
			step, states, err := Latest(s, 1)
			if err != nil {
				t.Fatal(err)
			}
			if step != steps-1 {
				t.Fatalf("Latest = %d, want %d", step, steps-1)
			}
			if got, want := string(states[0]), fmt.Sprintf("s%d", steps-1); got != want {
				t.Fatalf("payload %q, want %q", got, want)
			}
		})
	}
}
