package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func payload(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%31)
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	state := payload(3, 10_000)
	m := Meta{Kind: "nsf", Rank: 7, Step: 1200}
	frame, err := EncodeRecord(m, state)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) >= len(state) {
		t.Fatalf("repetitive payload did not compress: %d -> %d", len(state), len(frame))
	}
	got, back, err := DecodeRecord(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("meta %+v != %+v", got, m)
	}
	if !bytes.Equal(back, state) {
		t.Fatal("payload did not round-trip")
	}
}

// The corruption matrix of the acceptance criteria: a truncated
// record, a flipped payload bit, and a flipped CRC bit must each fail
// verification with a *CorruptError — never decode to wrong bytes.
func TestRecordCorruptionDetected(t *testing.T) {
	state := payload(9, 4096)
	frame, err := EncodeRecord(Meta{Kind: "ns2d", Rank: 0, Step: 4}, state)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":       frame[:len(frame)/2],
		"empty":           nil,
		"flipped payload": flipBit(frame, 8*(len(frame)/2)),
		"flipped CRC":     flipBit(frame, 8*(len(frame)-2)),
		"flipped magic":   flipBit(frame, 0),
		"flipped raw len": flipBit(frame, 8*(len(magic)+2+len("ns2d")+12)),
		"doubled trailer": append(append([]byte{}, frame...), frame[len(frame)-4:]...),
	}
	for name, bad := range cases {
		_, _, err := DecodeRecord(bad)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want *CorruptError, got %v", name, err)
		}
	}
}

func flipBit(b []byte, bit int) []byte {
	out := append([]byte(nil), b...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// stores under test share one behavior suite.
func stores(t *testing.T) map[string]Store {
	dir, err := NewDirStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMemStore(), "dir": dir}
}

func TestStorePutOpenListDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, step := range []int{4, 2, 6} {
				for rank := 0; rank < 3; rank++ {
					st, err := s.Put(Meta{Kind: "nsf", Rank: rank, Step: step}, payload(byte(step+rank), 2000))
					if err != nil {
						t.Fatal(err)
					}
					if st.Raw != 2000 || st.Stored <= 0 || st.Ratio() <= 1 {
						t.Fatalf("stats %+v", st)
					}
				}
			}
			steps, err := s.Steps()
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(steps) != "[2 4 6]" {
				t.Fatalf("steps %v", steps)
			}
			ranks, err := s.Ranks(4)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(ranks) != "[0 1 2]" {
				t.Fatalf("ranks %v", ranks)
			}
			state, m, err := s.Open(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			if m != (Meta{Kind: "nsf", Rank: 1, Step: 4}) || !bytes.Equal(state, payload(5, 2000)) {
				t.Fatalf("open got %+v", m)
			}
			if _, _, err := s.Open(4, 9); !errors.As(err, new(*NotFoundError)) {
				t.Fatalf("missing rank: %v", err)
			}
			if err := s.Delete(4); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Open(4, 1); !errors.As(err, new(*NotFoundError)) {
				t.Fatalf("deleted step still opens: %v", err)
			}
			if steps, _ = s.Steps(); fmt.Sprint(steps) != "[2 6]" {
				t.Fatalf("steps after delete %v", steps)
			}
		})
	}
}

// testCorrupter damages records matching (step, rank) via fn.
type testCorrupter struct {
	step, rank int
	fn         func([]byte) []byte
}

func (c *testCorrupter) CorruptRecord(step, rank int, frame []byte) []byte {
	if step == c.step && rank == c.rank {
		return c.fn(frame)
	}
	return frame
}

// Latest must fall back past corrupt and incomplete steps to the
// newest step where every rank verifies — and report emptiness, not an
// error, for a store with nothing usable.
func TestLatestFallsBackPastCorruption(t *testing.T) {
	damage := map[string]func([]byte) []byte{
		"truncated":       func(f []byte) []byte { return f[:len(f)*3/4] },
		"flipped payload": func(f []byte) []byte { return flipBit(f, 8*(len(f)/2)) },
		"flipped CRC":     func(f []byte) []byte { return flipBit(f, 8*(len(f)-1)) },
	}
	for name, fn := range damage {
		t.Run(name, func(t *testing.T) {
			s := NewMemStore()
			const procs = 3
			put := func(step int) {
				for r := 0; r < procs; r++ {
					if _, err := s.Put(Meta{Kind: "nsf", Rank: r, Step: step}, payload(byte(step), 500)); err != nil {
						t.Fatal(err)
					}
				}
			}
			put(10)
			put(20)
			s.SetCorrupter(&testCorrupter{step: 30, rank: 1, fn: fn})
			put(30) // newest, one rank damaged
			s.SetCorrupter(nil)
			for r := 0; r < procs-1; r++ { // step 40 incomplete: rank 2 missing
				if _, err := s.Put(Meta{Kind: "nsf", Rank: r, Step: 40}, payload(40, 500)); err != nil {
					t.Fatal(err)
				}
			}

			step, states, err := Latest(s, procs)
			if err != nil {
				t.Fatal(err)
			}
			if step != 20 {
				t.Fatalf("Latest fell back to step %d, want 20", step)
			}
			for r, st := range states {
				if !bytes.Equal(st, payload(20, 500)) {
					t.Fatalf("rank %d state wrong", r)
				}
			}
		})
	}
}

func TestLatestEmptyStore(t *testing.T) {
	step, states, err := Latest(NewMemStore(), 4)
	if err != nil || step != -1 || states != nil {
		t.Fatalf("empty store: step=%d states=%v err=%v", step, states, err)
	}
}

// LatestBelow restricts the commit scan for the escalation ladder's
// deeper-rollback rung: strictly below the bound, unbounded when the
// bound is negative, and empty when nothing older exists.
func TestLatestBelow(t *testing.T) {
	s := NewMemStore()
	const procs = 2
	for _, step := range []int{10, 20, 30} {
		for r := 0; r < procs; r++ {
			if _, err := s.Put(Meta{Kind: "nsf", Rank: r, Step: step}, payload(byte(step), 200)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, tc := range []struct{ below, want int }{
		{-1, 30}, {30, 20}, {25, 20}, {20, 10}, {10, -1},
	} {
		step, states, err := LatestBelow(s, procs, tc.below)
		if err != nil {
			t.Fatal(err)
		}
		if step != tc.want {
			t.Errorf("LatestBelow(%d) = %d, want %d", tc.below, step, tc.want)
		}
		if tc.want >= 0 && !bytes.Equal(states[0], payload(byte(tc.want), 200)) {
			t.Errorf("LatestBelow(%d) returned wrong states", tc.below)
		}
	}
}

// A DirStore must detect damage applied directly to the file on disk —
// the e2e recovery scenario.
func TestDirStoreOnDiskDamage(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Meta{Kind: "ale", Rank: 0, Step: 8}, payload(1, 3000)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.Path(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(8, 0), flipBit(raw, 8*(len(raw)/3)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Open(8, 0); !errors.As(err, new(*CorruptError)) {
		t.Fatalf("on-disk bit flip not detected: %v", err)
	}
	// A record renamed onto the wrong address must not be accepted.
	if _, err := s.Put(Meta{Kind: "ale", Rank: 0, Step: 9}, payload(2, 3000)); err != nil {
		t.Fatal(err)
	}
	good, _ := os.ReadFile(s.Path(9, 0))
	if err := os.WriteFile(s.Path(8, 0), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Open(8, 0); !errors.As(err, new(*CorruptError)) {
		t.Fatalf("renamed record accepted: %v", err)
	}
}

func TestRetentionGC(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for step := 10; step <= 100; step += 10 {
				if _, err := s.Put(Meta{Kind: "nsf", Rank: 0, Step: step}, payload(byte(step), 100)); err != nil {
					t.Fatal(err)
				}
			}
			removed, err := GC(s, Retention{KeepLast: 2, KeepEvery: 30})
			if err != nil {
				t.Fatal(err)
			}
			// Kept: 30/60/90 (every 30th) + 90/100 (last two).
			if fmt.Sprint(removed) != "[10 20 40 50 70 80]" {
				t.Fatalf("removed %v", removed)
			}
			steps, _ := s.Steps()
			if fmt.Sprint(steps) != "[30 60 90 100]" {
				t.Fatalf("kept %v", steps)
			}
			// The zero policy is keep-everything.
			if removed, err := GC(s, Retention{}); err != nil || removed != nil {
				t.Fatalf("zero policy removed %v err %v", removed, err)
			}
		})
	}
}
