package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"nektar/internal/engine"
)

func TestAsyncWriterDurableAfterDrain(t *testing.T) {
	s := NewMemStore()
	var trace bytes.Buffer
	w := NewAsyncWriter(s, WriterConfig{Kind: "nsf", Rank: 2, Trace: engine.NewTracer(&trace)})
	defer w.Close()
	const n = 20
	for i := 1; i <= n; i++ {
		if err := w.Submit(i, payload(byte(i), 1500), i == n); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		state, m, err := s.Open(i, 2)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if m.Kind != "nsf" || !bytes.Equal(state, payload(byte(i), 1500)) {
			t.Fatalf("step %d stored wrong record", i)
		}
	}
	st := w.Stats()
	if st.Snapshots != n || st.RawBytes != n*1500 || st.StoredBytes <= 0 {
		t.Fatalf("stats %+v", st)
	}
	evs, err := engine.ReadEvents(&trace)
	if err != nil {
		t.Fatal(err)
	}
	dones := 0
	for _, e := range evs {
		if e.Ev != engine.EvCkptDone {
			continue
		}
		dones++
		if e.Stored <= 0 || e.Ratio <= 1 || e.Bytes != 1500 {
			t.Fatalf("ckpt_done event %+v", e)
		}
		if e.Final != (e.Step == n) {
			t.Fatalf("final flag wrong on %+v", e)
		}
	}
	if dones != n {
		t.Fatalf("%d ckpt_done events, want %d", dones, n)
	}
}

// A drained writer must stay usable: one writer serves a campaign of
// Loop runs, each of which drains on exit.
func TestAsyncWriterReusableAfterDrain(t *testing.T) {
	s := NewMemStore()
	w := NewAsyncWriter(s, WriterConfig{Kind: "nsf"})
	defer w.Close()
	for round := 0; round < 3; round++ {
		if err := w.Submit(round+1, payload(1, 100), false); err != nil {
			t.Fatal(err)
		}
		if err := w.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	steps, _ := s.Steps()
	if len(steps) != 3 {
		t.Fatalf("steps %v", steps)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(9, payload(1, 10), false); err == nil {
		t.Fatal("closed writer accepted a submit")
	}
}

// errStore fails every put.
type errStore struct{ Store }

func (errStore) Put(Meta, []byte) (Stats, error) {
	return Stats{}, errors.New("disk full")
}

func TestAsyncWriterSurfacesWriteErrors(t *testing.T) {
	w := NewAsyncWriter(errStore{NewMemStore()}, WriterConfig{})
	defer w.Close()
	_ = w.Submit(1, payload(1, 10), false)
	if err := w.Drain(); err == nil {
		t.Fatal("write error lost")
	}
	// After a failed write, further submissions are refused with it.
	if err := w.Submit(2, payload(1, 10), false); err == nil {
		t.Fatal("writer kept accepting after a write error")
	}
}

// The writer applies retention after every put, so a long run's store
// stays bounded without the step loop ever doing GC work.
func TestAsyncWriterRetention(t *testing.T) {
	s := NewMemStore()
	w := NewAsyncWriter(s, WriterConfig{Kind: "nsf", Retention: Retention{KeepLast: 3}})
	defer w.Close()
	for i := 1; i <= 10; i++ {
		if err := w.Submit(i, payload(byte(i), 200), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	steps, _ := s.Steps()
	if fmt.Sprint(steps) != "[8 9 10]" {
		t.Fatalf("retained steps %v", steps)
	}
}

// Concurrent Submit/Drain/Stats from multiple goroutines must be
// race-clean (the CI race step runs this package).
func TestAsyncWriterConcurrency(t *testing.T) {
	s := NewMemStore()
	w := NewAsyncWriter(s, WriterConfig{Kind: "nsf"})
	defer w.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = w.Submit(g*100+i, payload(byte(i), 300), false)
				_ = w.Stats()
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	steps, _ := s.Steps()
	if len(steps) != 100 {
		t.Fatalf("%d records stored, want 100", len(steps))
	}
}

func TestSyncWriterStoresAndTraces(t *testing.T) {
	s := NewMemStore()
	var trace bytes.Buffer
	w := NewSyncWriter(s, WriterConfig{Kind: "ns2d", Trace: engine.NewTracer(&trace)})
	if err := w.Submit(5, payload(2, 800), true); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Open(5, 0); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Snapshots != 1 || st.ExposedS <= 0 || st.HiddenS != 0 {
		t.Fatalf("sync stats %+v", st)
	}
	evs, err := engine.ReadEvents(&trace)
	if err != nil || len(evs) != 1 || evs[0].Ev != engine.EvCkptDone || !evs[0].Final {
		t.Fatalf("trace %v err %v", evs, err)
	}
}

// A panic in the solver step must not leak the writer goroutine: the
// deferred Close waits for the background worker to exit and keeps the
// already-submitted snapshot durable. Close is also idempotent — the
// normal-exit path may have closed the writer already.
func TestAsyncWriterCloseOnPanicPath(t *testing.T) {
	s := NewMemStore()
	w := NewAsyncWriter(s, WriterConfig{Kind: "ns2d"})

	before := runtime.NumGoroutine()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the simulated solver panic")
			}
		}()
		defer func() {
			if err := w.Close(); err != nil {
				t.Errorf("deferred Close: %v", err)
			}
		}()
		if err := w.Submit(3, payload(1, 2048), false); err != nil {
			t.Fatal(err)
		}
		panic("solver step blew up")
	}()

	// Close returned, so the goroutine has exited (the done channel is
	// closed before Close returns)...
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines %d after Close, started with %d — writer goroutine leaked", got, before)
	}
	// ...and the in-flight snapshot is durable despite the panic.
	if _, _, err := s.Open(3, 0); err != nil {
		t.Errorf("snapshot not durable after panic-path Close: %v", err)
	}
	// Idempotent: a second Close is a no-op, not a deadlock or panic.
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// The closed writer rejects new snapshots with an error, not a hang.
	if err := w.Submit(9, payload(1, 16), false); err == nil {
		t.Error("Submit on a closed writer must fail")
	}
}
