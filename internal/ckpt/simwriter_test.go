package ckpt

import (
	"testing"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// writeCost measures one collective checkpoint write's max virtual
// cost over ranks on the named machine.
func writeCost(t *testing.T, machName string, procs, stateBytes int, mode WriteMode, diskMBs float64) float64 {
	t.Helper()
	mach, err := machine.ByName(machName)
	if err != nil {
		t.Fatal(err)
	}
	var cost float64
	_, _, err = simnet.Run(procs, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		w := &SimWriter{Kind: "nsf", Store: NewMemStore(), Comm: comm,
			DiskMBs: diskMBs, Mode: mode}
		if err := w.Submit(10, payload(byte(n.Rank), stateBytes), false); err != nil {
			panic(err)
		}
		mx := comm.Allreduce([]float64{w.LastCostS()}, mpi.Max)
		if comm.Rank() == 0 {
			cost = mx[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return cost
}

// The striped model must price the network: on the slow Ethernet
// cluster, striping a checkpoint across P node-local disks costs
// strictly more virtual time than each rank writing its own restart
// file — the measured version of the paper's choice of local restart
// files — while on Myrinet the penalty shrinks.
func TestStripedWriteCostsNetworkTime(t *testing.T) {
	const procs, state = 4, 200_000
	const disk = 20 // MB/s commodity IDE
	localEth := writeCost(t, "RoadRunner-eth", procs, state, WriteLocal, disk)
	stripedEth := writeCost(t, "RoadRunner-eth", procs, state, WriteStriped, disk)
	if localEth <= 0 {
		t.Fatalf("local write cost %g", localEth)
	}
	if stripedEth <= localEth {
		t.Fatalf("striping over Ethernet priced at %gs, local %gs — network not charged", stripedEth, localEth)
	}
	localMyr := writeCost(t, "RoadRunner-myr", procs, state, WriteLocal, disk)
	stripedMyr := writeCost(t, "RoadRunner-myr", procs, state, WriteStriped, disk)
	ethPenalty := stripedEth - localEth
	myrPenalty := stripedMyr - localMyr
	if myrPenalty >= ethPenalty {
		t.Fatalf("Myrinet striping penalty %gs not below Ethernet's %gs", myrPenalty, ethPenalty)
	}
}

// The cost model is deterministic: same machine, same bytes, same
// virtual price.
func TestSimWriterDeterministic(t *testing.T) {
	a := writeCost(t, "RoadRunner-eth", 4, 50_000, WriteStriped, 20)
	b := writeCost(t, "RoadRunner-eth", 4, 50_000, WriteStriped, 20)
	if a != b {
		t.Fatalf("striped write cost not deterministic: %g vs %g", a, b)
	}
}

// SimWriter with a store persists verifiable records for every rank.
func TestSimWriterPersists(t *testing.T) {
	mach, err := machine.ByName("RoadRunner-eth")
	if err != nil {
		t.Fatal(err)
	}
	s := NewMemStore()
	const procs = 4
	_, _, err = simnet.Run(procs, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		w := &SimWriter{Kind: "nsf", Store: s, Comm: comm, DiskMBs: 20, Mode: WriteStriped}
		if err := w.Submit(3, payload(byte(n.Rank), 10_000), false); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	step, states, err := Latest(s, procs)
	if err != nil || step != 3 || len(states) != procs {
		t.Fatalf("Latest: step=%d err=%v", step, err)
	}
}
