package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// DirStore keeps one framed record per file under a root directory —
// the restart files of the paper's production runs. File names encode
// the address (step-%08d.rank-%04d.nkc) so the store is listable
// without an index, and writes are durable against host crash: the
// frame goes to a temp file which is fsynced, atomically renamed into
// place, and sealed by an fsync of the directory itself, so a crash at
// any instant leaves either the old record, the new record, or a stray
// .tmp — never a half-visible newest snapshot whose name exists but
// whose bytes were lost with the page cache. (A torn write INSIDE the
// payload is still caught by the CRC trailer on read.)
type DirStore struct {
	dir string

	mu        sync.Mutex
	corrupter Corrupter
}

const fileExt = ".nkc"

// NewDirStore opens (creating if needed) the store rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

// Path returns the file holding (step, rank)'s record — for tests and
// operators that need to inspect (or damage) a record directly.
func (s *DirStore) Path(step, rank int) string {
	return filepath.Join(s.dir, fmt.Sprintf("step-%08d.rank-%04d%s", step, rank, fileExt))
}

// SetCorrupter installs a write-path fault injector (nil clears it).
func (s *DirStore) SetCorrupter(c Corrupter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corrupter = c
}

// Put implements Store.
func (s *DirStore) Put(m Meta, state []byte) (Stats, error) {
	frame, err := EncodeRecord(m, state)
	if err != nil {
		return Stats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.corrupter != nil {
		frame = s.corrupter.CorruptRecord(m.Step, m.Rank, frame)
	}
	path := s.Path(m.Step, m.Rank)
	if err := WriteFileAtomic(path, frame); err != nil {
		return Stats{}, err
	}
	return Stats{Raw: len(state), Stored: len(frame)}, nil
}

// WriteFileAtomic persists data at path with full crash durability:
// temp file, fsync, atomic rename, directory fsync. Without the final
// directory sync the rename itself can be lost on power failure,
// resurrecting the old record — acceptable — or, worse on some
// filesystems, leaving the new name pointing at unwritten blocks; the
// fsync ordering rules both out.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that cannot sync a directory handle (returning EINVAL or
// similar) get best-effort semantics rather than a spurious failure.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("ckpt: syncing %s: %w", dir, err)
	}
	return nil
}

// Open implements Store.
func (s *DirStore) Open(step, rank int) ([]byte, Meta, error) {
	path := s.Path(step, rank)
	frame, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, Meta{}, &NotFoundError{Step: step, Rank: rank}
		}
		return nil, Meta{}, fmt.Errorf("ckpt: %w", err)
	}
	m, state, derr := DecodeRecord(frame)
	if derr != nil {
		if ce, isCorrupt := derr.(*CorruptError); isCorrupt {
			ce.Key = path
		}
		return nil, Meta{}, derr
	}
	if m.Step != step || m.Rank != rank {
		return nil, Meta{}, &CorruptError{
			Key:    path,
			Reason: fmt.Sprintf("header says step %d rank %d (renamed file?)", m.Step, m.Rank),
		}
	}
	return state, m, nil
}

// list scans the directory for record files, returning step -> ranks.
func (s *DirStore) list() (map[int][]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	out := map[int][]int{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fileExt) {
			continue
		}
		var step, rank int
		if _, err := fmt.Sscanf(name, "step-%d.rank-%d", &step, &rank); err != nil {
			continue // foreign file; records only ever match the pattern
		}
		out[step] = append(out[step], rank)
	}
	return out, nil
}

// Steps implements Store.
func (s *DirStore) Steps() ([]int, error) {
	byStep, err := s.list()
	if err != nil {
		return nil, err
	}
	steps := make([]int, 0, len(byStep))
	for step := range byStep {
		steps = append(steps, step)
	}
	sort.Ints(steps)
	return steps, nil
}

// Ranks implements Store.
func (s *DirStore) Ranks(step int) ([]int, error) {
	byStep, err := s.list()
	if err != nil {
		return nil, err
	}
	ranks := byStep[step]
	sort.Ints(ranks)
	return ranks, nil
}

// Delete implements Store.
func (s *DirStore) Delete(step int) error {
	byStep, err := s.list()
	if err != nil {
		return err
	}
	for _, rank := range byStep[step] {
		if err := os.Remove(s.Path(step, rank)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	return nil
}
