// Package timing provides the per-stage instrumentation the paper uses
// to break a Navier-Stokes time step into its seven regions (section
// 4.1, Figure 12): each stage accumulates host wall time and the BLAS
// operation counts recorded by package blas, which the machine models
// later price per architecture.
package timing

import (
	"time"

	"nektar/internal/blas"
)

// Stages accumulates per-stage operation counts and host durations.
type Stages struct {
	Names []string

	Counts  []blas.Counts
	Seconds []float64 // host wall time, for native measurements
	Priced  []float64 // machine-priced seconds (cluster-simulated runs)
	Wall    []float64 // simulated wall seconds incl. comm/idle (cluster runs)

	master  blas.Counts
	prev    blas.Counts
	current int
	t0      time.Time
	active  bool
	started bool
}

// NewStages creates a stage set with the given names.
func NewStages(names ...string) *Stages {
	return &Stages{
		Names:   names,
		Counts:  make([]blas.Counts, len(names)),
		Seconds: make([]float64, len(names)),
		Priced:  make([]float64, len(names)),
		Wall:    make([]float64, len(names)),
	}
}

// Attach starts global BLAS recording; it must bracket the
// instrumented run (recording is process-global).
func (s *Stages) Attach() {
	blas.StartRecording(&s.master)
	s.started = true
}

// Detach stops BLAS recording.
func (s *Stages) Detach() {
	blas.StopRecording()
	s.started = false
}

// Begin enters stage i; any active stage is ended first.
func (s *Stages) Begin(i int) {
	if s.active {
		s.End()
	}
	s.current = i
	s.prev = s.master
	s.t0 = time.Now()
	s.active = true
}

// End closes the active stage, charging it the counts and wall time
// accumulated since Begin.
func (s *Stages) End() {
	if !s.active {
		return
	}
	delta := s.master
	delta.Sub(&s.prev)
	s.Counts[s.current].Add(&delta)
	s.Seconds[s.current] += time.Since(s.t0).Seconds()
	s.active = false
}

// AddPriced charges externally recorded counts and machine-priced
// seconds to the currently active stage. Cluster-simulated runs use
// this instead of Attach, because the global BLAS recorder cannot span
// the scheduler yields between simulated ranks.
func (s *Stages) AddPriced(c *blas.Counts, seconds float64) {
	if !s.active {
		return
	}
	s.Counts[s.current].Add(c)
	s.Priced[s.current] += seconds
}

// AddWall charges simulated wall-clock seconds (communication and idle
// time included) to stage i. Unlike AddPriced it does not require an
// active stage: the wall clock spans the stage transition itself.
func (s *Stages) AddWall(i int, seconds float64) {
	if i < 0 || i >= len(s.Wall) {
		return
	}
	s.Wall[i] += seconds
}

// Current returns the index of the active stage, or -1 if none.
func (s *Stages) Current() int {
	if !s.active {
		return -1
	}
	return s.current
}

// Total returns the sum of all per-stage counts.
func (s *Stages) Total() blas.Counts {
	var t blas.Counts
	for i := range s.Counts {
		t.Add(&s.Counts[i])
	}
	return t
}

// Reset zeroes the accumulated stage data (the master recording
// continues).
func (s *Stages) Reset() {
	for i := range s.Counts {
		s.Counts[i] = blas.Counts{}
		s.Seconds[i] = 0
		s.Priced[i] = 0
	}
	for i := range s.Wall {
		s.Wall[i] = 0
	}
}

// Snapshot is a copy of the per-stage second accumulators at an
// instant; subtracting two snapshots yields per-stage deltas (the
// engine's per-step trace events are built this way).
type Snapshot struct {
	Seconds []float64
	Priced  []float64
	Wall    []float64
}

// Snapshot copies the current per-stage second accumulators.
func (s *Stages) Snapshot() Snapshot {
	var snap Snapshot
	s.SnapshotInto(&snap)
	return snap
}

// SnapshotInto copies the current per-stage second accumulators into
// dst, reusing dst's slices. The engine's per-step tracing refreshes a
// scratch snapshot pair this way instead of allocating three slices
// every step.
func (s *Stages) SnapshotInto(dst *Snapshot) {
	dst.Seconds = append(dst.Seconds[:0], s.Seconds...)
	dst.Priced = append(dst.Priced[:0], s.Priced...)
	dst.Wall = append(dst.Wall[:0], s.Wall...)
}

// Percent returns each stage's share (0-100) of a per-stage metric
// given by eval (e.g. machine-priced seconds).
func Percent(vals []float64) []float64 {
	var total float64
	for _, v := range vals {
		total += v
	}
	out := make([]float64, len(vals))
	if total == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = 100 * v / total
	}
	return out
}
