package timing

import (
	"math"
	"testing"

	"nektar/internal/blas"
)

func TestStagesCaptureDeltas(t *testing.T) {
	s := NewStages("a", "b")
	s.Attach()
	defer s.Detach()
	x := make([]float64, 50)
	y := make([]float64, 50)

	s.Begin(0)
	blas.Dcopy(50, x, 1, y, 1)
	s.Begin(1) // implicitly ends stage 0
	blas.Ddot(50, x, 1, y, 1)
	blas.Ddot(50, x, 1, y, 1)
	s.End()

	if s.Counts[0].Ops[blas.KernelDcopy].Calls != 1 {
		t.Fatalf("stage a: %+v", s.Counts[0])
	}
	if s.Counts[0].Ops[blas.KernelDdot].Calls != 0 {
		t.Fatal("ddot leaked into stage a")
	}
	if s.Counts[1].Ops[blas.KernelDdot].Calls != 2 {
		t.Fatalf("stage b: %+v", s.Counts[1])
	}
	if s.Seconds[0] <= 0 || s.Seconds[1] <= 0 {
		t.Fatal("host seconds not recorded")
	}
	total := s.Total()
	if total.Ops[blas.KernelDdot].Calls != 2 || total.Ops[blas.KernelDcopy].Calls != 1 {
		t.Fatalf("total wrong: %+v", total)
	}
}

func TestStagesReset(t *testing.T) {
	s := NewStages("a")
	s.Attach()
	s.Begin(0)
	blas.Dcopy(10, make([]float64, 10), 1, make([]float64, 10), 1)
	s.End()
	s.Detach()
	s.Reset()
	if s.Counts[0].TotalBytes() != 0 || s.Seconds[0] != 0 || s.Priced[0] != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestAddPriced(t *testing.T) {
	s := NewStages("a", "b")
	var c blas.Counts
	c.Ops[blas.KernelDgemm] = blas.Op{Calls: 1, Flops: 100}
	s.AddPriced(&c, 0.5) // no active stage: ignored
	if s.Priced[0] != 0 {
		t.Fatal("AddPriced without active stage should be ignored")
	}
	s.Begin(1)
	s.AddPriced(&c, 0.5)
	s.AddPriced(&c, 0.25)
	s.End()
	if s.Priced[1] != 0.75 {
		t.Fatalf("Priced[1] = %v", s.Priced[1])
	}
	if s.Counts[1].Ops[blas.KernelDgemm].Calls != 2 {
		t.Fatalf("counts not accumulated: %+v", s.Counts[1])
	}
}

func TestPercent(t *testing.T) {
	p := Percent([]float64{1, 3})
	if math.Abs(p[0]-25) > 1e-12 || math.Abs(p[1]-75) > 1e-12 {
		t.Fatalf("percent = %v", p)
	}
	z := Percent([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero total should give zeros")
	}
}

func TestEndWithoutBeginIsSafe(t *testing.T) {
	s := NewStages("a")
	s.End() // must not panic
	if s.Current() != -1 {
		t.Fatal("no stage should be active")
	}
}

func TestBeginWithoutAttach(t *testing.T) {
	// Without Attach there is no BLAS recording, but stage bracketing
	// and host-wall accumulation must still work: the cluster-simulated
	// solvers never Attach (they price counts via AddPriced instead).
	s := NewStages("a")
	s.Begin(0)
	blas.Dcopy(10, make([]float64, 10), 1, make([]float64, 10), 1)
	s.End()
	if got := s.Counts[0].Ops[blas.KernelDcopy].Calls; got != 0 {
		t.Fatalf("unattached stage recorded %d dcopy calls", got)
	}
	if s.Seconds[0] <= 0 {
		t.Fatal("host seconds not recorded without Attach")
	}
	if s.Current() != -1 {
		t.Fatal("End should deactivate the stage")
	}
}

func TestReBeginActiveStage(t *testing.T) {
	// Re-entering the active stage closes the current interval and
	// opens a new one charged to the same index: no double counting,
	// no lost time, and exactly one End needed afterwards.
	s := NewStages("a", "b")
	s.Attach()
	defer s.Detach()
	buf := make([]float64, 20)
	s.Begin(0)
	blas.Dcopy(20, buf, 1, buf, 1)
	s.Begin(0) // re-Begin of the active stage
	blas.Dcopy(20, buf, 1, buf, 1)
	s.End()
	if got := s.Counts[0].Ops[blas.KernelDcopy].Calls; got != 2 {
		t.Fatalf("re-Begin lost counts: %d dcopy calls", got)
	}
	if s.Current() != -1 {
		t.Fatal("one End must close a re-Begun stage")
	}
	s.End() // extra End stays safe
}

func TestAddWallAndSnapshot(t *testing.T) {
	s := NewStages("a", "b")
	s.AddWall(0, 1.5)
	s.AddWall(1, 0.5)
	s.AddWall(-1, 99) // out of range: ignored
	s.AddWall(2, 99)
	if s.Wall[0] != 1.5 || s.Wall[1] != 0.5 {
		t.Fatalf("Wall = %v", s.Wall)
	}
	before := s.Snapshot()
	s.AddWall(0, 1.0)
	after := s.Snapshot()
	if d := after.Wall[0] - before.Wall[0]; d != 1.0 {
		t.Fatalf("snapshot delta = %v", d)
	}
	if before.Wall[0] != 1.5 {
		t.Fatal("Snapshot must copy, not alias")
	}
	s.Reset()
	if s.Wall[0] != 0 || s.Wall[1] != 0 {
		t.Fatal("Reset must zero Wall")
	}
}
