package timing

import (
	"math"
	"testing"

	"nektar/internal/blas"
)

func TestStagesCaptureDeltas(t *testing.T) {
	s := NewStages("a", "b")
	s.Attach()
	defer s.Detach()
	x := make([]float64, 50)
	y := make([]float64, 50)

	s.Begin(0)
	blas.Dcopy(50, x, 1, y, 1)
	s.Begin(1) // implicitly ends stage 0
	blas.Ddot(50, x, 1, y, 1)
	blas.Ddot(50, x, 1, y, 1)
	s.End()

	if s.Counts[0].Ops[blas.KernelDcopy].Calls != 1 {
		t.Fatalf("stage a: %+v", s.Counts[0])
	}
	if s.Counts[0].Ops[blas.KernelDdot].Calls != 0 {
		t.Fatal("ddot leaked into stage a")
	}
	if s.Counts[1].Ops[blas.KernelDdot].Calls != 2 {
		t.Fatalf("stage b: %+v", s.Counts[1])
	}
	if s.Seconds[0] <= 0 || s.Seconds[1] <= 0 {
		t.Fatal("host seconds not recorded")
	}
	total := s.Total()
	if total.Ops[blas.KernelDdot].Calls != 2 || total.Ops[blas.KernelDcopy].Calls != 1 {
		t.Fatalf("total wrong: %+v", total)
	}
}

func TestStagesReset(t *testing.T) {
	s := NewStages("a")
	s.Attach()
	s.Begin(0)
	blas.Dcopy(10, make([]float64, 10), 1, make([]float64, 10), 1)
	s.End()
	s.Detach()
	s.Reset()
	if s.Counts[0].TotalBytes() != 0 || s.Seconds[0] != 0 || s.Priced[0] != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestAddPriced(t *testing.T) {
	s := NewStages("a", "b")
	var c blas.Counts
	c.Ops[blas.KernelDgemm] = blas.Op{Calls: 1, Flops: 100}
	s.AddPriced(&c, 0.5) // no active stage: ignored
	if s.Priced[0] != 0 {
		t.Fatal("AddPriced without active stage should be ignored")
	}
	s.Begin(1)
	s.AddPriced(&c, 0.5)
	s.AddPriced(&c, 0.25)
	s.End()
	if s.Priced[1] != 0.75 {
		t.Fatalf("Priced[1] = %v", s.Priced[1])
	}
	if s.Counts[1].Ops[blas.KernelDgemm].Calls != 2 {
		t.Fatalf("counts not accumulated: %+v", s.Counts[1])
	}
}

func TestPercent(t *testing.T) {
	p := Percent([]float64{1, 3})
	if math.Abs(p[0]-25) > 1e-12 || math.Abs(p[1]-75) > 1e-12 {
		t.Fatalf("percent = %v", p)
	}
	z := Percent([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero total should give zeros")
	}
}

func TestEndWithoutBeginIsSafe(t *testing.T) {
	s := NewStages("a")
	s.End() // must not panic
}
