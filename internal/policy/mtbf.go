package policy

// MTBFEstimator tracks the cluster's mean time between failures online
// from the supervisor's verdict history, as an exponentially-weighted
// mean of inter-failure intervals. The estimator is seeded with a
// prior (from the fault plan's node MTBF divided by the rank count, or
// the operator's -mtbf hint) so the cadence controller has something
// to work with before the first failure; each observed failure then
// pulls the estimate toward the measured rate with weight alpha:
//
//	mean <- (1-alpha)*mean + alpha*dt
//
// where dt is the virtual time since the previous failure anywhere in
// the cluster. A per-rank breakdown rides along for diagnostics (a
// single flaky node shows up as one rank's estimate collapsing while
// the cluster mean barely moves).
//
// The estimator observes failures only between attempts — on the
// supervisor's serial control path — so it needs no locking, and the
// estimate a given attempt sees is frozen for that attempt (every rank
// reads the same value, which the collective cadence decision
// requires).
type MTBFEstimator struct {
	alpha float64
	mean  float64 // EW mean inter-failure interval, cluster level
	lastT float64 // virtual time of the newest failure
	n     int     // failures observed

	perRank map[int]*rankMTBF
	prior   float64
}

type rankMTBF struct {
	mean  float64
	lastT float64
	n     int
}

// minMTBFS floors the estimate: a burst of simultaneous failures must
// not collapse the MTBF (and with it Young's interval) to zero.
const minMTBFS = 1e-6

// NewMTBFEstimator seeds an estimator with the cluster-level prior (in
// virtual seconds).
func NewMTBFEstimator(priorS, alpha float64) *MTBFEstimator {
	if priorS < minMTBFS {
		priorS = minMTBFS
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &MTBFEstimator{
		alpha:   alpha,
		mean:    priorS,
		prior:   priorS,
		perRank: map[int]*rankMTBF{},
	}
}

// ObserveFailure records a hardware failure of rank at cumulative
// campaign virtual time t.
func (e *MTBFEstimator) ObserveFailure(rank int, t float64) {
	dt := t - e.lastT
	if dt < minMTBFS {
		dt = minMTBFS
	}
	e.mean = (1-e.alpha)*e.mean + e.alpha*dt
	e.lastT = t
	e.n++

	r := e.perRank[rank]
	if r == nil {
		// A rank's own failures are ~procs times rarer than the
		// cluster's; absent better information seed its mean with its
		// own first interval.
		r = &rankMTBF{mean: t}
		if r.mean < minMTBFS {
			r.mean = minMTBFS
		}
		e.perRank[rank] = r
	} else {
		rdt := t - r.lastT
		if rdt < minMTBFS {
			rdt = minMTBFS
		}
		r.mean = (1-e.alpha)*r.mean + e.alpha*rdt
	}
	r.lastT = t
	r.n++
}

// MTBFS returns the current cluster-level MTBF estimate in virtual
// seconds (never below minMTBFS).
func (e *MTBFEstimator) MTBFS() float64 {
	if e.mean < minMTBFS {
		return minMTBFS
	}
	return e.mean
}

// RankMTBFS returns rank's own MTBF estimate, or 0 if it has never
// failed.
func (e *MTBFEstimator) RankMTBFS(rank int) float64 {
	if r := e.perRank[rank]; r != nil {
		return r.mean
	}
	return 0
}

// Failures returns the number of failures observed.
func (e *MTBFEstimator) Failures() int { return e.n }
