package policy

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

func TestModeByName(t *testing.T) {
	for name, want := range map[string]Mode{"static": Static, "adaptive": Adaptive, "pinned": Pinned} {
		got, err := ModeByName(name)
		if err != nil || got != want {
			t.Errorf("ModeByName(%q) = %v, %v", name, got, err)
		}
	}
	_, err := ModeByName("clairvoyant")
	if err == nil || !strings.Contains(err.Error(), "registered policies are adaptive, pinned, static") {
		t.Errorf("unknown-name error = %v, must list registered policies", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Mode: Adaptive}).Validate(); err == nil {
		t.Error("adaptive mode without a prior must be rejected")
	}
	if err := (Config{Mode: Adaptive, PriorMTBFS: 100}).Validate(); err != nil {
		t.Errorf("valid adaptive config rejected: %v", err)
	}
	if err := (Config{PriorMTBFS: -1}).Validate(); err == nil {
		t.Error("negative prior must be rejected")
	}
}

func TestMTBFEstimator(t *testing.T) {
	e := NewMTBFEstimator(1000, 0.5)
	if got := e.MTBFS(); got != 1000 {
		t.Fatalf("prior MTBF = %v, want 1000", got)
	}
	// Failures every 100s pull the EW mean from the prior toward 100.
	e.ObserveFailure(0, 100)
	e.ObserveFailure(1, 200)
	e.ObserveFailure(0, 300)
	if got := e.MTBFS(); got >= 1000 || got <= 100 {
		t.Errorf("MTBF = %v after 100s-interval failures, want in (100, 1000)", got)
	}
	prev := e.MTBFS()
	for tt := 400.0; tt <= 1200; tt += 100 {
		e.ObserveFailure(2, tt)
	}
	if got := e.MTBFS(); got >= prev || math.Abs(got-100) > 50 {
		t.Errorf("MTBF = %v after many 100s intervals, want converging toward 100", got)
	}
	if e.Failures() != 12 {
		t.Errorf("Failures = %d, want 12", e.Failures())
	}
	if e.RankMTBFS(7) != 0 {
		t.Error("rank 7 never failed, want 0")
	}
	if e.RankMTBFS(0) <= 0 {
		t.Error("rank 0 failed twice, want a positive estimate")
	}
}

func TestMTBFEstimatorFloorsBursts(t *testing.T) {
	e := NewMTBFEstimator(10, 1) // alpha 1: newest observation wins
	e.ObserveFailure(0, 50)
	e.ObserveFailure(1, 50) // simultaneous: zero interval
	if got := e.MTBFS(); got < minMTBFS {
		t.Errorf("MTBF = %v below floor after burst", got)
	}
}

func TestYoungFormulas(t *testing.T) {
	const delta, theta = 2.0, 400.0
	opt := YoungInterval(delta, theta)
	if want := math.Sqrt(2 * delta * theta); math.Abs(opt-want) > 1e-12 {
		t.Fatalf("YoungInterval = %v, want %v", opt, want)
	}
	// The optimum minimizes the first-order overhead.
	at := YoungOverhead(delta, opt, theta)
	if YoungOverhead(delta, opt/2, theta) <= at || YoungOverhead(delta, opt*2, theta) <= at {
		t.Error("overhead not minimized at Young's interval")
	}
	if YoungInterval(0, theta) != 0 || YoungInterval(delta, 0) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestCadenceMatchesStaticGrid(t *testing.T) {
	c := NewCadence(Config{Mode: Pinned, InitialInterval: 7}, 0)
	for step := 1; step <= 50; step++ {
		if got, want := c.ShouldCheckpoint(step), step%7 == 0; got != want {
			t.Fatalf("step %d: ShouldCheckpoint = %v, want static %v", step, got, want)
		}
	}
}

func TestCadenceRetunesByYoung(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Mode: Adaptive, PriorMTBFS: 1, InitialInterval: 10,
		Alpha: 1, Trace: engine.NewTracer(&buf),
	}
	c := NewCadence(cfg, 0)
	// delta=2s, theta=400s, step=1s -> tau_opt = 40s -> 40 steps.
	c.Observe(10, 2, 1, 400)
	if got := c.Interval(); got != 40 {
		t.Fatalf("Interval = %d after observe, want Young's 40", got)
	}
	if c.Anchor() != 10 {
		t.Errorf("Anchor = %d, want the retune step 10", c.Anchor())
	}
	// Next fire is one new interval past the retune step.
	if c.ShouldCheckpoint(40) || !c.ShouldCheckpoint(50) {
		t.Error("firing grid not re-anchored at the retune step")
	}
	evs, err := engine.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Ev != engine.EvPolicySwitch || evs[0].Policy != "cadence" ||
		evs[0].From != "10" || evs[0].To != "40" || evs[0].MTBFS != 400 {
		t.Errorf("policy_switch event = %+v", evs)
	}
}

func TestCadenceClampsAndHysteresis(t *testing.T) {
	cfg := Config{Mode: Adaptive, PriorMTBFS: 1, InitialInterval: 10,
		MinInterval: 2, MaxInterval: 50, HysteresisFrac: 0.25, Alpha: 1}
	c := NewCadence(cfg, 0)
	// Absurdly cheap checkpoints + huge MTBF -> clamp at MaxInterval.
	c.Observe(10, 1e-6, 1, 1e12)
	if got := c.Interval(); got != 50 {
		t.Fatalf("Interval = %d, want MaxInterval clamp 50", got)
	}
	// Absurdly expensive failures -> clamp at MinInterval.
	c.Observe(50, 10, 1, 1e-6)
	if got := c.Interval(); got != 2 {
		t.Fatalf("Interval = %d, want MinInterval clamp 2", got)
	}
	// A retune within the hysteresis band is suppressed: current 2,
	// band = ceil(0.25*2) = 1, so a move to 3 might fire but a move to
	// 2 (no change) certainly cannot; check a genuinely small move.
	c2 := NewCadence(cfg, 0)
	// tau_opt = sqrt(2*2*25) = 10s -> 10 steps: |10-10| = 0 < band.
	c2.Observe(10, 2, 1, 25)
	if got := c2.Interval(); got != 10 {
		t.Fatalf("Interval = %d, hysteresis must hold 10", got)
	}
}

func TestCadencePinnedNeverRetunes(t *testing.T) {
	c := NewCadence(Config{Mode: Pinned, InitialInterval: 5, Alpha: 1}, 0)
	c.Observe(5, 100, 1, 1e9) // evidence screaming for a retune
	if got := c.Interval(); got != 5 {
		t.Fatalf("pinned Interval = %d, want held 5", got)
	}
}

func TestCadenceAdopt(t *testing.T) {
	c := NewCadence(Config{Mode: Adaptive, PriorMTBFS: 1, InitialInterval: 10}, 0)
	c.Adopt(8, 24)
	if c.Interval() != 8 || c.Anchor() != 24 {
		t.Fatalf("Adopt gave interval %d anchor %d", c.Interval(), c.Anchor())
	}
	if c.ShouldCheckpoint(24) || !c.ShouldCheckpoint(32) {
		t.Error("adopted grid must fire at anchor + k*interval only")
	}
}

func TestLadderEscalates(t *testing.T) {
	var buf bytes.Buffer
	l := NewLadder(Config{RetryBudget: 2, RollbackBudget: 1, DtFactor: 0.5,
		Trace: engine.NewTracer(&buf)})
	wantActions := []Action{ActionRetryDt, ActionRetryDt, ActionRollback, ActionConvict, ActionConvict}
	wantScales := []float64{0.5, 0.25, 0.25, 0.25, 0.25}
	for i, want := range wantActions {
		d := l.Decide(i, 3, 100+i)
		if d.Action != want || math.Abs(d.DtScale-wantScales[i]) > 1e-12 {
			t.Fatalf("trip %d: decision %v scale %v, want %v scale %v",
				i, d.Action, d.DtScale, want, wantScales[i])
		}
	}
	evs, err := engine.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(wantActions) {
		t.Fatalf("%d escalate events, want %d", len(evs), len(wantActions))
	}
	for i, e := range evs {
		if e.Ev != engine.EvEscalate || e.To != wantActions[i].String() || e.Rank != 3 {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}

// slowStore delays every Put so the sync writer's exposed time
// dominates the probe window.
type slowStore struct {
	ckpt.Store
	delay time.Duration
}

func (s *slowStore) Put(m ckpt.Meta, state []byte) (ckpt.Stats, error) {
	time.Sleep(s.delay)
	return s.Store.Put(m, state)
}

func TestAdaptiveSinkPromotesToAsync(t *testing.T) {
	var buf bytes.Buffer
	store := &slowStore{Store: ckpt.NewMemStore(), delay: 3 * time.Millisecond}
	s := NewAdaptiveSink(Config{Mode: Adaptive, ProbeAfter: 2, MaxExposedFrac: 0.02,
		Trace: engine.NewTracer(&buf)}, store, ckpt.WriterConfig{Kind: "t", Rank: 0})
	defer s.Close()
	state := bytes.Repeat([]byte{7}, 1024)
	for step := 1; step <= 4; step++ {
		if err := s.Submit(step*10, state, false); err != nil {
			t.Fatal(err)
		}
	}
	if s.Mode() != "async" {
		t.Fatalf("writer mode %q after slow-store probe, want async", s.Mode())
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Snapshots != 4 {
		t.Fatalf("snapshots %d, want 4", st.Snapshots)
	}
	evs, err := engine.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sw *engine.Event
	for i := range evs {
		if evs[i].Ev == engine.EvPolicySwitch {
			sw = &evs[i]
		}
	}
	if sw == nil || sw.Policy != "writer" || sw.From != "sync" || sw.To != "async" || sw.ExposedS <= 0 {
		t.Errorf("policy_switch = %+v", sw)
	}
}

func TestAdaptiveSinkHoldsWhenStatic(t *testing.T) {
	store := &slowStore{Store: ckpt.NewMemStore(), delay: 3 * time.Millisecond}
	s := NewAdaptiveSink(Config{Mode: Static, ProbeAfter: 2}, store, ckpt.WriterConfig{Kind: "t"})
	defer s.Close()
	for step := 1; step <= 4; step++ {
		if err := s.Submit(step, []byte("x"), false); err != nil {
			t.Fatal(err)
		}
	}
	if s.Mode() != "sync" {
		t.Fatalf("static-mode writer promoted to %q", s.Mode())
	}
}

// runSelector drives a SimSelector through submits checkpoints on the
// given fabric and returns rank 0's final write mode and probe
// penalty.
func runSelector(t *testing.T, model *simnet.Model, mode Mode, submits int) (string, float64) {
	t.Helper()
	var wmode string
	var penalty float64
	_, _, err := simnet.Run(4, model, func(n *simnet.Node) {
		comm := mpi.World(n)
		w := &ckpt.SimWriter{Kind: "t", Comm: comm, DiskMBs: 20}
		sel := NewSimSelector(Config{Mode: mode, ProbeAfter: 2, MaxStripePenalty: 2}, w)
		// Incompressible payload (LCG fill), so the framed record keeps
		// its size and disk time — not per-message latency — dominates
		// the write, as with real solver states.
		state := make([]byte, 100_000)
		x := uint32(n.Rank + 1)
		for i := range state {
			x = x*1664525 + 1013904223
			state[i] = byte(x >> 24)
		}
		for i := 1; i <= submits; i++ {
			if err := sel.Submit(i*5, state, false); err != nil {
				panic(err)
			}
		}
		if comm.Rank() == 0 {
			wmode, penalty = sel.Mode(), sel.Penalty()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return wmode, penalty
}

func TestSimSelectorRejectsStripingOnEthernet(t *testing.T) {
	mach, err := machine.ByName("RoadRunner-eth")
	if err != nil {
		t.Fatal(err)
	}
	mode, penalty := runSelector(t, mach.Net, Adaptive, 3)
	if mode != "local" {
		t.Fatalf("write mode %q on Ethernet, want local (penalty %.2f)", mode, penalty)
	}
	if penalty <= 2 {
		t.Errorf("measured striping penalty %.2f on Ethernet, expected > 2x", penalty)
	}
}

func TestSimSelectorPromotesOnFastFabric(t *testing.T) {
	// A kernel-bypass-class fabric: microsecond latency, memory-bus
	// bandwidth — striping costs barely more than the local write.
	fast := &simnet.Model{
		Name:  "fast-fabric",
		Inter: simnet.LinkModel{LatencyUS: 2, BandwidthMBs: 10_000},
	}
	mode, penalty := runSelector(t, fast, Adaptive, 3)
	if mode != "striped" {
		t.Fatalf("write mode %q on fast fabric (penalty %.2f), want striped", mode, penalty)
	}
	if penalty <= 0 || penalty > 2 {
		t.Errorf("penalty %.2f out of promotion range", penalty)
	}
}

func TestSimSelectorStaticNeverProbes(t *testing.T) {
	fast := &simnet.Model{Name: "fast", Inter: simnet.LinkModel{LatencyUS: 2, BandwidthMBs: 10_000}}
	mode, _ := runSelector(t, fast, Static, 4)
	if mode != "local" {
		t.Fatalf("static-mode selector switched to %q", mode)
	}
}
