package policy

import (
	"math"
	"strconv"

	"nektar/internal/engine"
)

// CadenceController is the live checkpoint-cadence policy
// (engine.CadencePolicy): it fires checkpoints on a step interval it
// retunes with Young's formula as the MTBF estimate and the measured
// per-checkpoint cost evolve.
//
// Young's first-order result: with checkpoint period tau (seconds),
// per-checkpoint cost delta, and mean time between failures theta, the
// fractional overhead is
//
//	overhead(tau) ~= delta/tau + tau/(2*theta)
//
// (amortized write cost plus expected recomputation loss), minimized
// at tau_opt = sqrt(2*delta*theta). The controller converts tau_opt to
// a step interval with the measured mean step duration, clamps it to
// [MinInterval, MaxInterval], and applies hysteresis: a retune smaller
// than HysteresisFrac of the current interval is noise and is ignored.
//
// Determinism contract: in a parallel run every rank holds its own
// controller instance, and checkpoint staging is collective, so every
// instance must make identical decisions. Observe must therefore be
// fed rank-identical inputs (the supervisor Allreduce-Maxes the
// measured cost and step duration before calling it) at identical
// steps (checkpoint boundaries — which all ranks share by
// construction). ShouldCheckpoint is then a pure function of shared
// state.
type CadenceController struct {
	cfg Config

	interval int
	anchor   int // step the current interval was adopted at; fires at anchor + k*interval

	deltaS float64 // EW per-checkpoint cost, seconds
	stepS  float64 // EW per-step duration, seconds
	nobs   int

	rank int // only the rank-0 controller carries a tracer
}

// YoungInterval is Young's optimal checkpoint period in seconds:
// sqrt(2 * delta * theta) for per-checkpoint cost delta and MTBF
// theta.
func YoungInterval(deltaS, thetaS float64) float64 {
	if deltaS <= 0 || thetaS <= 0 {
		return 0
	}
	return math.Sqrt(2 * deltaS * thetaS)
}

// YoungOverhead is the first-order fractional overhead of period tauS.
func YoungOverhead(deltaS, tauS, thetaS float64) float64 {
	if tauS <= 0 || thetaS <= 0 {
		return math.Inf(1)
	}
	return deltaS/tauS + tauS/(2*thetaS)
}

// NewCadence builds a controller at cfg.InitialInterval anchored at
// step 0, so the firing grid {k*interval} matches the static
// CheckpointEvery rule — a pinned controller reproduces a static run
// exactly, including across restarts. rank labels trace events; pass
// the Config's Trace only to rank 0's instance so a parallel run
// emits each switch once.
func NewCadence(cfg Config, rank int) *CadenceController {
	cfg = cfg.WithDefaults()
	return &CadenceController{cfg: cfg, interval: cfg.InitialInterval, rank: rank}
}

// Adopt restores persisted cadence state — a previous attempt's
// (interval, anchor) — so a retuned cadence survives rollback. Every
// rank's controller must adopt the same state.
func (c *CadenceController) Adopt(interval, anchor int) {
	if interval >= 1 {
		c.interval = interval
	}
	if anchor >= 0 {
		c.anchor = anchor
	}
}

// Interval returns the current cadence in steps; Anchor the step it
// was adopted at (fires at anchor + k*interval).
func (c *CadenceController) Interval() int { return c.interval }
func (c *CadenceController) Anchor() int   { return c.anchor }

// ShouldCheckpoint implements engine.CadencePolicy.
func (c *CadenceController) ShouldCheckpoint(step int) bool {
	d := step - c.anchor
	return d > 0 && d%c.interval == 0
}

// Observe feeds one checkpoint's measurements: the write's cost in
// seconds, the mean per-step duration since the previous checkpoint,
// and the current MTBF estimate. All three must be rank-identical
// (Allreduce them first). Called at the checkpoint step the
// measurements belong to. In Pinned mode (Hold) the supervisor never
// calls Observe, so a pinned run adds no measurement traffic.
func (c *CadenceController) Observe(step int, costS, stepWallS, mtbfS float64) {
	a := c.cfg.Alpha
	if c.nobs == 0 {
		c.deltaS, c.stepS = costS, stepWallS
	} else {
		c.deltaS = (1-a)*c.deltaS + a*costS
		c.stepS = (1-a)*c.stepS + a*stepWallS
	}
	c.nobs++
	if c.cfg.Mode != Adaptive || c.stepS <= 0 {
		return
	}

	tau := YoungInterval(c.deltaS, mtbfS)
	want := int(math.Round(tau / c.stepS))
	if want < c.cfg.MinInterval {
		want = c.cfg.MinInterval
	}
	if want > c.cfg.MaxInterval {
		want = c.cfg.MaxInterval
	}
	// Hysteresis: ignore retunes within the noise band.
	band := int(math.Ceil(c.cfg.HysteresisFrac * float64(c.interval)))
	if band < 1 {
		band = 1
	}
	diff := want - c.interval
	if diff < 0 {
		diff = -diff
	}
	if diff < band {
		return
	}
	if c.cfg.Trace != nil && c.rank == 0 {
		c.cfg.Trace.Emit(engine.Event{
			Ev: engine.EvPolicySwitch, Rank: c.rank, Step: step,
			Policy: "cadence",
			From:   strconv.Itoa(c.interval), To: strconv.Itoa(want),
			MTBFS: mtbfS, DeltaS: c.deltaS, Interval: want,
		})
	}
	c.interval = want
	// Re-anchor at the current checkpoint so the next fire is exactly
	// one new interval out (every rank re-anchors at the same step).
	c.anchor = step
}

// DeltaS returns the EW per-checkpoint cost estimate (seconds).
func (c *CadenceController) DeltaS() float64 { return c.deltaS }

// StepS returns the EW per-step duration estimate (seconds).
func (c *CadenceController) StepS() float64 { return c.stepS }
