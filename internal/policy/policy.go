// Package policy is the adaptive-resilience layer: the components that
// turn the static fault-tolerance knobs — checkpoint cadence, writer
// choice, recovery strategy — into live controllers driven by what the
// run actually observes. The paper's operators picked these by hand
// per machine; cmd/faultbench picks them offline from a swept table;
// this package closes the loop online, so a campaign tunes itself to
// the failure rate and I/O cost it measures instead of the ones the
// operator guessed.
//
// Four components, wired together by internal/supervisor:
//
//   - MTBFEstimator (mtbf.go): exponentially-weighted inter-failure
//     intervals from the supervisor's verdict history, seeded from the
//     fault plan or a -mtbf hint.
//   - CadenceController (cadence.go): Young's-formula optimal
//     checkpoint interval from the estimated MTBF and the measured
//     per-checkpoint cost, with clamping and hysteresis; implements
//     engine.CadencePolicy.
//   - AdaptiveSink / SimSelector (writer.go): runtime writer
//     selection — start conservative, measure, promote when the
//     evidence justifies it.
//   - Ladder (ladder.go): the watchdog escalation ladder — retry with
//     reduced dt, roll back deeper, convict and re-home — with
//     per-rung budgets.
//
// Every decision is emitted as a structured policy_switch or escalate
// trace event carrying its evidence, so a recorded run explains every
// deviation from the static configuration.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"nektar/internal/engine"
)

// Mode selects how much of the adaptive layer is live.
type Mode int

const (
	// Static: the adaptive layer is off; the run uses the operator's
	// fixed cadence and writer (the pre-policy behavior).
	Static Mode = iota
	// Adaptive: all controllers live — cadence retunes at every
	// checkpoint, writers promote on evidence, the escalation ladder
	// drives recovery.
	Adaptive
	// Pinned: the controllers are installed but held — cadence stays at
	// its initial interval and no measurement traffic is added, so the
	// trajectory and the virtual clock are bit-identical to a Static
	// run at the same interval. This is the determinism-audit mode.
	Pinned
)

func (m Mode) String() string {
	switch m {
	case Static:
		return "static"
	case Adaptive:
		return "adaptive"
	case Pinned:
		return "pinned"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

var modes = map[string]Mode{
	"static":   Static,
	"adaptive": Adaptive,
	"pinned":   Pinned,
}

// ModeNames lists the registered policy names, sorted.
func ModeNames() []string {
	names := make([]string, 0, len(modes))
	for n := range modes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModeByName resolves a policy name; the error for an unknown name
// lists what is registered (matching the workload-registry UX).
func ModeByName(name string) (Mode, error) {
	m, ok := modes[name]
	if !ok {
		return Static, fmt.Errorf("policy: unknown policy %q: registered policies are %s",
			name, strings.Join(ModeNames(), ", "))
	}
	return m, nil
}

// Config parametrizes the adaptive layer. The zero value of every
// field means "use the default"; Withdefaults() resolves them.
type Config struct {
	// Mode selects static/adaptive/pinned (see Mode).
	Mode Mode

	// PriorMTBFS seeds the MTBF estimator: the expected CLUSTER-level
	// mean time between failures in virtual seconds (a per-node MTBF
	// hint divided by the rank count), from the fault plan or the
	// operator's -mtbf flag. Required for Adaptive mode — with no
	// failures yet observed, the prior is all the cadence controller
	// has.
	PriorMTBFS float64
	// Alpha is the exponential weight given to each new inter-failure
	// or cost observation (default 0.3: the newest observation carries
	// 30%, history decays geometrically).
	Alpha float64

	// InitialInterval is the starting checkpoint cadence in steps
	// (default 10); Pinned mode holds it forever.
	InitialInterval int
	// MinInterval/MaxInterval clamp the controller (defaults 1 / 500):
	// Young's formula near theta -> 0 or delta -> 0 would otherwise ask
	// for absurd cadences.
	MinInterval int
	MaxInterval int
	// HysteresisFrac suppresses cadence changes smaller than this
	// fraction of the current interval (default 0.25), so measurement
	// noise cannot make the cadence thrash.
	HysteresisFrac float64

	// ProbeAfter is the checkpoint count at which the writer selector
	// runs its probe (default 3: enough submits to trust the local cost
	// measurement).
	ProbeAfter int
	// MaxStripePenalty bounds writer promotion to striped mode: the
	// measured striped cost must not exceed this multiple of the local
	// cost (default 2.0 — striping doubles the restart-read bandwidth,
	// so paying up to 2x on the write breaks even; BENCH_ckpt.json
	// measures 6.4x on Ethernet and 2.5x on Myrinet, so promotion only
	// fires on genuinely low-latency fabrics).
	MaxStripePenalty float64
	// MaxExposedFrac bounds the host-side sync writer: when measured
	// exposed checkpoint time exceeds this fraction of elapsed wall
	// time over the probe window, the sink promotes to async (default
	// 0.02).
	MaxExposedFrac float64

	// RetryBudget is the escalation ladder's first-rung budget: how
	// many watchdog trips are answered with a dt-reduced retry before
	// escalating (default 2). RollbackBudget is the second rung: how
	// many trips are answered by rolling back one commit deeper
	// (default 1). Past both budgets the ladder convicts the tripping
	// rank and re-homes it onto a spare.
	RetryBudget    int
	RollbackBudget int
	// DtFactor is the time-step reduction applied per first-rung retry
	// (default 0.5).
	DtFactor float64

	// Trace, when set, receives policy_switch and escalate events.
	Trace *engine.Tracer
}

// WithDefaults resolves zero fields to their defaults.
func (c Config) WithDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.InitialInterval < 1 {
		c.InitialInterval = 10
	}
	if c.MinInterval < 1 {
		c.MinInterval = 1
	}
	if c.MaxInterval < c.MinInterval {
		c.MaxInterval = 500
	}
	if c.HysteresisFrac <= 0 {
		c.HysteresisFrac = 0.25
	}
	if c.ProbeAfter < 1 {
		c.ProbeAfter = 3
	}
	if c.MaxStripePenalty <= 0 {
		c.MaxStripePenalty = 2.0
	}
	if c.MaxExposedFrac <= 0 {
		c.MaxExposedFrac = 0.02
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	} else if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.RollbackBudget == 0 {
		c.RollbackBudget = 1
	} else if c.RollbackBudget < 0 {
		c.RollbackBudget = 0
	}
	if c.DtFactor <= 0 || c.DtFactor >= 1 {
		c.DtFactor = 0.5
	}
	return c
}

// Validate rejects configurations the controllers cannot run under.
func (c Config) Validate() error {
	if c.Mode == Adaptive && c.PriorMTBFS <= 0 {
		return fmt.Errorf("policy: adaptive mode needs a positive PriorMTBFS (seed it from the fault plan or the -mtbf hint)")
	}
	if c.PriorMTBFS < 0 {
		return fmt.Errorf("policy: negative PriorMTBFS %g", c.PriorMTBFS)
	}
	return nil
}
