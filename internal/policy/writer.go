package policy

import (
	"time"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/mpi"
)

// AdaptiveSink is the host-side runtime writer selector
// (engine.CheckpointSink): it starts with the conservative synchronous
// writer, measures the exposed checkpoint time over a probe window,
// and promotes to the asynchronous writer when checkpoints are
// actually costing the step loop more than MaxExposedFrac of its wall
// time. The promotion is one-way (the async writer is strictly less
// exposed at equal cadence — BENCH_ckpt.json measures ~10x less) and
// is emitted as a policy_switch event carrying the measured evidence.
type AdaptiveSink struct {
	cfg   Config
	store ckpt.Store
	wcfg  ckpt.WriterConfig

	sync  *ckpt.SyncWriter
	async *ckpt.AsyncWriter

	submits int
	t0      time.Time
}

// NewAdaptiveSink starts a selector in sync mode over store.
func NewAdaptiveSink(cfg Config, store ckpt.Store, wcfg ckpt.WriterConfig) *AdaptiveSink {
	cfg = cfg.WithDefaults()
	return &AdaptiveSink{
		cfg: cfg, store: store, wcfg: wcfg,
		sync: ckpt.NewSyncWriter(store, wcfg),
	}
}

// Submit implements engine.CheckpointSink.
func (s *AdaptiveSink) Submit(step int, state []byte, final bool) error {
	if s.async != nil {
		return s.async.Submit(step, state, final)
	}
	if s.submits == 0 {
		s.t0 = time.Now()
	}
	err := s.sync.Submit(step, state, final)
	s.submits++
	if err != nil || s.cfg.Mode != Adaptive || s.submits < s.cfg.ProbeAfter {
		return err
	}
	// Probe verdict: exposed fraction of wall time since the first
	// submit. Below the bound, sync is fine and the probe re-arms one
	// window out (a workload whose states grow can still promote
	// later).
	elapsed := time.Since(s.t0).Seconds()
	exposed := s.sync.Stats().ExposedS
	if elapsed <= 0 {
		return nil
	}
	frac := exposed / elapsed
	if frac <= s.cfg.MaxExposedFrac {
		s.submits = 0
		return nil
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Emit(engine.Event{
			Ev: engine.EvPolicySwitch, Rank: s.wcfg.Rank, Step: step,
			Policy: "writer", From: "sync", To: "async",
			ExposedS: exposed, WallS: elapsed,
		})
	}
	s.async = ckpt.NewAsyncWriter(s.store, s.wcfg)
	return nil
}

// Drain implements engine.CheckpointSink.
func (s *AdaptiveSink) Drain() error {
	if s.async != nil {
		return s.async.Drain()
	}
	return s.sync.Drain()
}

// Close releases the async writer's goroutine, if one was promoted.
// Idempotent and defer-safe.
func (s *AdaptiveSink) Close() error {
	if s.async != nil {
		return s.async.Close()
	}
	return s.sync.Drain()
}

// Mode reports the writer currently in force ("sync" or "async").
func (s *AdaptiveSink) Mode() string {
	if s.async != nil {
		return "async"
	}
	return "sync"
}

// Stats merges the counters of whichever writers have run.
func (s *AdaptiveSink) Stats() ckpt.WriterStats {
	st := s.sync.Stats()
	if s.async != nil {
		ast := s.async.Stats()
		st.Snapshots += ast.Snapshots
		st.RawBytes += ast.RawBytes
		st.StoredBytes += ast.StoredBytes
		st.ExposedS += ast.ExposedS
		st.HiddenS += ast.HiddenS
	}
	return st
}

// SimSelector is the simulated-cluster writer selector
// (engine.CheckpointSink): it wraps a ckpt.SimWriter that starts in
// local mode and, at the ProbeAfter-th checkpoint, prices one striped
// write through the calibrated network to decide whether striping is
// affordable on this fabric. Striped restart shards read back at the
// aggregate disk bandwidth of the whole cluster, so promotion pays
// when the measured write penalty is below MaxStripePenalty; on the
// paper's Ethernet (penalty ~6.4x) it never fires, on a low-latency
// fabric it does.
//
// The probe is collective (all ranks submit at the same steps, so all
// probe at the same step) and the verdict is an Allreduce-Max of the
// measured costs, so every rank promotes — or doesn't — identically.
type SimSelector struct {
	cfg Config
	// W is the wrapped writer; the selector mutates W.Mode.
	W *ckpt.SimWriter

	submits int
	probed  bool
	// evidence from the probe, for reports
	localCostS   float64
	stripedCostS float64
}

// NewSimSelector wraps w (which must start in local mode).
func NewSimSelector(cfg Config, w *ckpt.SimWriter) *SimSelector {
	cfg = cfg.WithDefaults()
	w.Mode = ckpt.WriteLocal
	return &SimSelector{cfg: cfg, W: w}
}

// Submit implements engine.CheckpointSink.
func (s *SimSelector) Submit(step int, state []byte, final bool) error {
	if err := s.W.Submit(step, state, final); err != nil {
		return err
	}
	if final {
		return nil
	}
	s.submits++
	if s.cfg.Mode != Adaptive || s.probed || s.submits < s.cfg.ProbeAfter {
		return nil
	}
	s.probed = true
	local := s.W.LastCostS()
	// Price a striped write of the same state through the same comm
	// and disks, without persisting: a scratch writer with no store is
	// the pure cost model. The probe itself is charged to the virtual
	// clock — measurements aren't free — and is collective, so every
	// rank pays it at the same step.
	probe := &ckpt.SimWriter{
		Kind: s.W.Kind, Comm: s.W.Comm, DiskMBs: s.W.DiskMBs,
		Mode: ckpt.WriteStriped,
	}
	if err := probe.Submit(step, state, false); err != nil {
		return err
	}
	striped := probe.LastCostS()
	// The verdict must be identical on every rank: agree on the
	// worst-case costs.
	costs := s.W.Comm.Allreduce([]float64{local, striped}, mpi.Max)
	s.localCostS, s.stripedCostS = costs[0], costs[1]
	if s.localCostS <= 0 || s.stripedCostS > s.cfg.MaxStripePenalty*s.localCostS {
		return nil // striping too expensive on this fabric
	}
	if s.cfg.Trace != nil && s.W.Comm.Rank() == 0 {
		s.cfg.Trace.Emit(engine.Event{
			Ev: engine.EvPolicySwitch, Rank: 0, Step: step,
			Policy: "writer", From: "local", To: "striped",
			DeltaS: s.stripedCostS, HostS: s.localCostS,
		})
	}
	s.W.Mode = ckpt.WriteStriped
	return nil
}

// Adopt restores persisted selector state — a previous attempt's
// write mode and probe flag — so the probe runs once per campaign,
// not once per restart.
func (s *SimSelector) Adopt(mode ckpt.WriteMode, probed bool) {
	s.W.Mode = mode
	s.probed = probed
}

// Probed reports whether the striping probe has run.
func (s *SimSelector) Probed() bool { return s.probed }

// Drain implements engine.CheckpointSink.
func (s *SimSelector) Drain() error { return s.W.Drain() }

// Mode reports the write mode currently in force.
func (s *SimSelector) Mode() string { return s.W.Mode.String() }

// Penalty returns the probe's measured striped/local cost ratio, or 0
// before the probe has run.
func (s *SimSelector) Penalty() float64 {
	if !s.probed || s.localCostS <= 0 {
		return 0
	}
	return s.stripedCostS / s.localCostS
}
