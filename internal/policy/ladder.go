package policy

import "nektar/internal/engine"

// Action is one rung of the watchdog escalation ladder.
type Action int

const (
	// ActionRetryDt: relaunch from the last commit with the time step
	// reduced by DtFactor — the cheapest response to a numerical
	// excursion (a CFL violation often just needs a smaller dt).
	ActionRetryDt Action = iota
	// ActionRollback: the reduced dt didn't help, so the instability
	// was already latent in the restart state — roll back one commit
	// deeper and recompute through the bad region.
	ActionRollback
	// ActionConvict: repeated trips from the same state point at the
	// hardware (a flaky FPU, bad memory) — convict the tripping rank's
	// node, re-home the rank onto a spare, and retry.
	ActionConvict
)

func (a Action) String() string {
	switch a {
	case ActionRetryDt:
		return "retry-dt"
	case ActionRollback:
		return "rollback"
	case ActionConvict:
		return "convict"
	}
	return "action(?)"
}

// Decision is the ladder's verdict for one watchdog trip: the action
// to take and the dt scale in force for the next attempt.
type Decision struct {
	Action  Action
	DtScale float64
}

// Ladder is the adaptive watchdog recovery policy: each watchdog trip
// climbs one rung — retry with reduced dt while RetryBudget lasts,
// then roll back deeper while RollbackBudget lasts, then convict the
// tripping rank. Budgets are per campaign, not per trip, so a
// persistently sick run escalates monotonically instead of cycling.
// Every decision is emitted as an escalate trace event.
type Ladder struct {
	cfg Config

	retries   int
	rollbacks int
	dtScale   float64
}

// NewLadder builds a ladder with full budgets and dt scale 1.
func NewLadder(cfg Config) *Ladder {
	return &Ladder{cfg: cfg.WithDefaults(), dtScale: 1}
}

// Decide takes the next rung for a watchdog trip by rank at step
// (attempt labels the trace event).
func (l *Ladder) Decide(attempt, rank, step int) Decision {
	var d Decision
	switch {
	case l.retries < l.cfg.RetryBudget:
		l.retries++
		l.dtScale *= l.cfg.DtFactor
		d = Decision{Action: ActionRetryDt, DtScale: l.dtScale}
	case l.rollbacks < l.cfg.RollbackBudget:
		l.rollbacks++
		d = Decision{Action: ActionRollback, DtScale: l.dtScale}
	default:
		d = Decision{Action: ActionConvict, DtScale: l.dtScale}
	}
	if l.cfg.Trace != nil {
		l.cfg.Trace.Emit(engine.Event{
			Ev: engine.EvEscalate, Rank: rank, Step: step, Attempt: attempt,
			Policy: "watchdog", To: d.Action.String(), DtScale: d.DtScale,
		})
	}
	return d
}

// DtScale returns the time-step reduction currently in force.
func (l *Ladder) DtScale() float64 { return l.dtScale }
