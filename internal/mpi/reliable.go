package mpi

import (
	"errors"
	"fmt"
)

// Reliable-delivery mode: on a lossy simulated network (fault
// injection), a Comm can be switched to an acknowledged stop-and-wait
// protocol per (peer, tag) channel — every payload is framed with a
// sequence number, the receiver acknowledges it on a dedicated ack
// tag, and the sender retransmits after an exponentially backed-off
// timeout. Duplicates (from lost acks) are detected by sequence number
// and re-acknowledged. This mirrors what TCP provides under LAM/MPICH
// on the paper's commodity Ethernet — and makes its cost visible in
// virtual time: each resend charges the sender's CPU and wall clock
// (protocol overhead + wire time) and each timeout advances the wall
// clock only, like a blocked recv.
//
// Bypasses (documented, deliberate): self-sends cannot be lost and use
// the direct path; wildcard (AnySource) receives skip sequencing, so
// reliable-mode programs must not mix them with reliable traffic on
// the same tag; the nonblocking Isend/Wait pair — and therefore the
// AlgBasic alltoall built on it — stays raw, because stop-and-wait
// acknowledgment is inherently blocking.

// ErrDeliveryFailed reports that a reliable send exhausted its retry
// budget without an acknowledgment (the peer crashed, or the link is
// lossier than the retry budget tolerates).
var ErrDeliveryFailed = errors.New("mpi: delivery failed")

// ackTagBase maps a data tag to its acknowledgment tag, above both the
// user tag space [0, 1<<24) and the collective space [1<<24, 1<<27).
const ackTagBase = 1 << 28

// Reliability configures the acknowledged-delivery protocol.
type Reliability struct {
	// AckTimeout is the initial ack wait in virtual seconds.
	AckTimeout float64
	// MaxRetries bounds the number of retransmissions per message
	// before the send fails with ErrDeliveryFailed.
	MaxRetries int
	// Backoff multiplies the timeout after each retransmission.
	Backoff float64
	// MaxTimeout caps the backed-off timeout.
	MaxTimeout float64
}

// DefaultReliability returns the standard protocol parameters: 1 ms
// initial timeout, doubling per retry up to 100 ms, at most 10
// retransmissions (a total wait near one virtual second — far beyond
// any solver's per-step compute skew).
func DefaultReliability() *Reliability {
	return &Reliability{AckTimeout: 1e-3, MaxRetries: 10, Backoff: 2, MaxTimeout: 0.1}
}

// pairTag keys the per-channel sequence counters.
type pairTag struct {
	peer, tag int
}

// SetReliability switches the communicator to reliable delivery (nil
// restores the raw direct mode). Every rank of a program must make the
// same choice, or framed and unframed messages will be mixed.
func (c *Comm) SetReliability(r *Reliability) {
	c.rel = r
	if r != nil && c.sendSeq == nil {
		c.sendSeq = map[pairTag]int{}
		c.recvSeq = map[pairTag]int{}
	}
}

// Retransmits returns the number of payload retransmissions this rank
// has performed in reliable mode (a determinism-sensitive statistic:
// same seed, same count).
func (c *Comm) Retransmits() int { return c.retransmits }

// Sleep advances the rank's virtual wall clock by dt seconds without
// consuming CPU — blocking I/O such as writing a checkpoint.
func (c *Comm) Sleep(dt float64) { c.node.Sleep(dt) }

// frame prepends the sequence number to the payload.
func frame(seq int, data []float64) []float64 {
	f := make([]float64, len(data)+1)
	f[0] = float64(seq)
	copy(f[1:], data)
	return f
}

// sendReliable transmits one framed payload and blocks until it is
// acknowledged (retransmitting as needed).
func (c *Comm) sendReliable(dst, tag int, data []float64) error {
	key := pairTag{dst, tag}
	seq := c.sendSeq[key]
	c.sendSeq[key] = seq + 1
	f := frame(seq, data)
	c.node.SendLossy(dst, tag, f)
	return c.awaitAck(dst, tag, seq, f)
}

// awaitAck waits for the acknowledgment of (tag, seq) from dst,
// retransmitting the frame on timeout with exponential backoff.
func (c *Comm) awaitAck(dst, tag, seq int, f []float64) error {
	timeout := c.rel.AckTimeout
	for attempt := 0; ; {
		ack, ok := c.node.RecvDeadline(dst, tag+ackTagBase, c.node.Clock()+timeout)
		if ok {
			if len(ack) > 0 && int(ack[0]) >= seq {
				return nil
			}
			continue // stale ack from an earlier exchange on this tag
		}
		attempt++
		if attempt > c.rel.MaxRetries {
			return fmt.Errorf("mpi: rank %d: no ack from rank %d (tag %d, seq %d) after %d retransmissions: %w",
				c.Rank(), dst, tag, seq, c.rel.MaxRetries, ErrDeliveryFailed)
		}
		c.retransmits++
		c.node.SendLossy(dst, tag, f)
		timeout *= c.rel.Backoff
		if timeout > c.rel.MaxTimeout {
			timeout = c.rel.MaxTimeout
		}
	}
}

// recvReliable blocks for the next in-sequence framed payload from
// (src, tag), acknowledging everything it sees and discarding
// duplicates. It returns an error if src crashes with nothing pending.
func (c *Comm) recvReliable(src, tag int) ([]float64, error) {
	key := pairTag{src, tag}
	for {
		f, err := c.node.RecvErr(src, tag)
		if err != nil {
			return nil, err
		}
		if len(f) == 0 {
			return nil, fmt.Errorf("mpi: rank %d: unframed message from rank %d on tag %d in reliable mode", c.Rank(), src, tag)
		}
		seq := int(f[0])
		expect := c.recvSeq[key]
		if seq > expect {
			// A gap: the sender abandoned an earlier message (retry
			// budget exhausted). Unrecoverable for this channel; do not
			// acknowledge out-of-order data.
			continue
		}
		c.node.SendControl(src, tag+ackTagBase, f[:1])
		if seq == expect {
			c.recvSeq[key] = seq + 1
			return f[1:], nil
		}
		// seq < expect: duplicate of a delivered payload (its ack was
		// lost); the re-ack above is all it needed.
	}
}

// sendrecvReliable is the acknowledged symmetric exchange. Either
// direction may have been dropped, so while waiting for the partner's
// payload the sender retransmits its own on timeout; phase two then
// waits for its own acknowledgment.
func (c *Comm) sendrecvReliable(dst, sendTag int, data []float64, src, recvTag int) ([]float64, error) {
	skey := pairTag{dst, sendTag}
	seq := c.sendSeq[skey]
	c.sendSeq[skey] = seq + 1
	f := frame(seq, data)
	c.node.SendLossy(dst, sendTag, f)

	rkey := pairTag{src, recvTag}
	timeout := c.rel.AckTimeout
	var out []float64
	for attempt := 0; ; {
		got, ok := c.node.RecvDeadline(src, recvTag, c.node.Clock()+timeout)
		if !ok {
			attempt++
			if attempt > c.rel.MaxRetries {
				return nil, fmt.Errorf("mpi: rank %d: no payload from rank %d (tag %d) after %d retransmissions to rank %d: %w",
					c.Rank(), src, recvTag, c.rel.MaxRetries, dst, ErrDeliveryFailed)
			}
			c.retransmits++
			c.node.SendLossy(dst, sendTag, f)
			timeout *= c.rel.Backoff
			if timeout > c.rel.MaxTimeout {
				timeout = c.rel.MaxTimeout
			}
			continue
		}
		if len(got) == 0 {
			return nil, fmt.Errorf("mpi: rank %d: unframed message from rank %d on tag %d in reliable mode", c.Rank(), src, recvTag)
		}
		s := int(got[0])
		expect := c.recvSeq[rkey]
		if s > expect {
			continue
		}
		c.node.SendControl(src, recvTag+ackTagBase, got[:1])
		if s == expect {
			c.recvSeq[rkey] = s + 1
			out = got[1:]
			break
		}
	}
	if err := c.awaitAck(dst, sendTag, seq, f); err != nil {
		return nil, err
	}
	return out, nil
}

// SendErr is Send returning an error instead of failing the run when
// reliable delivery exhausts its retries. Without reliability it is
// identical to Send (the perfect network cannot fail).
func (c *Comm) SendErr(dst, tag int, data []float64) error {
	if c.rel == nil || dst == c.Rank() {
		c.node.Send(dst, tag, data)
		return nil
	}
	return c.sendReliable(dst, tag, data)
}

// RecvErr is Recv returning an error when the awaited peer has crashed
// (instead of blocking into a simulator deadlock). Works with or
// without reliable mode; src must be a concrete rank for crash
// detection (AnySource falls back to blocking semantics).
func (c *Comm) RecvErr(src, tag int) ([]float64, error) {
	if c.rel == nil || src == c.Rank() || src == AnySource {
		return c.node.RecvErr(src, tag)
	}
	return c.recvReliable(src, tag)
}
