package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nektar/internal/simnet"
)

func testModel() *simnet.Model {
	return &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 20, BandwidthMBs: 50, OverheadUS: 2, EagerLimit: 64 * 1024},
	}
}

// runWorld executes body on p simulated ranks and fails the test on
// simulator errors.
func runWorld(t *testing.T, p int, body func(c *Comm)) ([]float64, []float64) {
	t.Helper()
	wall, cpu, err := simnet.Run(p, testModel(), func(n *simnet.Node) {
		body(World(n))
	})
	if err != nil {
		t.Fatal(err)
	}
	return wall, cpu
}

func TestRankSize(t *testing.T) {
	seen := make([]bool, 5)
	runWorld(t, 5, func(c *Comm) {
		if c.Size() != 5 {
			t.Errorf("Size = %d", c.Size())
		}
		seen[c.Rank()] = true
	})
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d never ran", r)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// After a barrier every rank's clock must be at least the maximum
	// pre-barrier clock (rank r computed r ms).
	after := make([]float64, 6)
	runWorld(t, 6, func(c *Comm) {
		c.Compute(float64(c.Rank()) * 1e-3)
		c.Barrier()
		after[c.Rank()] = c.Wtime()
	})
	for r, w := range after {
		if w < 5e-3 {
			t.Fatalf("rank %d passed barrier at %v, before slowest rank", r, w)
		}
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		got := make([][]float64, p)
		runWorld(t, p, func(c *Comm) {
			var data []float64
			if c.Rank() == 0 {
				data = []float64{1, 2, 3}
			}
			got[c.Rank()] = c.Bcast(0, data)
		})
		for r := 0; r < p; r++ {
			if len(got[r]) != 3 || got[r][0] != 1 || got[r][2] != 3 {
				t.Fatalf("p=%d rank %d: bcast got %v", p, r, got[r])
			}
		}
	}
}

func TestBcastNonzeroRoot(t *testing.T) {
	p := 6
	got := make([][]float64, p)
	runWorld(t, p, func(c *Comm) {
		var data []float64
		if c.Rank() == 4 {
			data = []float64{9}
		}
		got[c.Rank()] = c.Bcast(4, data)
	})
	for r := 0; r < p; r++ {
		if len(got[r]) != 1 || got[r][0] != 9 {
			t.Fatalf("rank %d: %v", r, got[r])
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 3, 6} {
		results := make([][]float64, p)
		runWorld(t, p, func(c *Comm) {
			data := []float64{float64(c.Rank()), 1}
			results[c.Rank()] = c.Allreduce(data, Sum)
		})
		wantSum := float64(p*(p-1)) / 2
		for r := 0; r < p; r++ {
			if results[r][0] != wantSum || results[r][1] != float64(p) {
				t.Fatalf("p=%d rank %d: %v, want [%v %v]", p, r, results[r], wantSum, p)
			}
		}
	}
}

func TestAllreduceMinMax(t *testing.T) {
	p := 4
	mins := make([]float64, p)
	maxs := make([]float64, p)
	runWorld(t, p, func(c *Comm) {
		v := []float64{float64(c.Rank()*c.Rank()) - 2}
		mins[c.Rank()] = c.Allreduce(v, Min)[0]
		maxs[c.Rank()] = c.Allreduce(v, Max)[0]
	})
	for r := 0; r < p; r++ {
		if mins[r] != -2 || maxs[r] != 7 {
			t.Fatalf("rank %d: min=%v max=%v", r, mins[r], maxs[r])
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	p := 7
	var rootGot []float64
	runWorld(t, p, func(c *Comm) {
		out := c.Reduce(2, []float64{1}, Sum)
		if c.Rank() == 2 {
			rootGot = out
		} else if out != nil {
			t.Errorf("rank %d got non-nil reduce result", c.Rank())
		}
	})
	if rootGot[0] != 7 {
		t.Fatalf("reduce sum = %v, want 7", rootGot[0])
	}
}

func TestGather(t *testing.T) {
	p := 5
	var got [][]float64
	runWorld(t, p, func(c *Comm) {
		out := c.Gather(0, []float64{float64(10 * c.Rank())})
		if c.Rank() == 0 {
			got = out
		}
	})
	for r := 0; r < p; r++ {
		if got[r][0] != float64(10*r) {
			t.Fatalf("gather[%d] = %v", r, got[r])
		}
	}
}

func alltoallBody(t *testing.T, p int, alg AlltoallAlg) {
	results := make([][][]float64, p)
	runWorld(t, p, func(c *Comm) {
		send := make([][]float64, p)
		for i := range send {
			// rank r sends {r, i} to rank i.
			send[i] = []float64{float64(c.Rank()), float64(i)}
		}
		results[c.Rank()] = c.Alltoall(send, alg)
	})
	for r := 0; r < p; r++ {
		for src := 0; src < p; src++ {
			got := results[r][src]
			if len(got) != 2 || got[0] != float64(src) || got[1] != float64(r) {
				t.Fatalf("p=%d alg=%v: recv[%d][%d] = %v", p, alg, r, src, got)
			}
		}
	}
}

func TestAlltoallPairwisePow2(t *testing.T) { alltoallBody(t, 8, AlgPairwise) }
func TestAlltoallPairwiseOdd(t *testing.T)  { alltoallBody(t, 5, AlgPairwise) }
func TestAlltoallBasic(t *testing.T)        { alltoallBody(t, 6, AlgBasic) }
func TestAlltoallAuto(t *testing.T)         { alltoallBody(t, 4, AlgAuto) }
func TestAlltoallSingleRank(t *testing.T)   { alltoallBody(t, 1, AlgAuto) }
func TestAlltoallTwoRanksBig(t *testing.T)  { alltoallBody(t, 2, AlgPairwise) }

func TestAlltoallLargeRendezvousMessages(t *testing.T) {
	// 1 MB per pair exceeds the eager limit: exercises rendezvous in
	// both algorithms.
	for _, alg := range []AlltoallAlg{AlgPairwise, AlgBasic} {
		p := 4
		sums := make([]float64, p)
		runWorld(t, p, func(c *Comm) {
			send := make([][]float64, p)
			for i := range send {
				send[i] = make([]float64, 1<<17) // 1 MB
				send[i][0] = float64(c.Rank() + i)
			}
			recv := c.Alltoall(send, alg)
			var s float64
			for _, buf := range recv {
				s += buf[0]
			}
			sums[c.Rank()] = s
		})
		for r := 0; r < p; r++ {
			// sum over src of (src + r) = p*r + p(p-1)/2.
			want := float64(p*r) + float64(p*(p-1))/2
			if sums[r] != want {
				t.Fatalf("alg=%v rank %d: sum=%v want %v", alg, r, sums[r], want)
			}
		}
	}
}

func TestSendrecvSymmetricExchange(t *testing.T) {
	p := 2
	got := make([]float64, p)
	runWorld(t, p, func(c *Comm) {
		other := 1 - c.Rank()
		data := make([]float64, 1<<17) // rendezvous-sized
		data[0] = float64(c.Rank() + 1)
		out := c.Sendrecv(other, 9, data, other, 9)
		got[c.Rank()] = out[0]
	})
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("exchange results: %v", got)
	}
}

func TestWtimeAdvancesWithTraffic(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		t0 := c.Wtime()
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 1000))
		} else {
			c.Recv(0, 0)
			if c.Wtime() <= t0 {
				t.Errorf("Wtime did not advance across a receive")
			}
		}
	})
}

func TestCollectiveCPUvsWall(t *testing.T) {
	// In an imbalanced allreduce the fast ranks idle: wall exceeds cpu
	// markedly on rank 0.
	p := 4
	var wall0, cpu0 float64
	runWorld(t, p, func(c *Comm) {
		if c.Rank() != 0 {
			c.Compute(0.05)
		}
		c.Allreduce([]float64{1}, Sum)
		if c.Rank() == 0 {
			wall0, cpu0 = c.Wtime(), c.CPUTime()
		}
	})
	if wall0 < 0.05 {
		t.Fatalf("rank 0 wall = %v, should wait for slow ranks", wall0)
	}
	if cpu0 > 0.01 {
		t.Fatalf("rank 0 cpu = %v, should be mostly idle", cpu0)
	}
	if math.Abs(wall0-cpu0) < 0.04 {
		t.Fatalf("wall-cpu gap too small: %v vs %v", wall0, cpu0)
	}
}

func TestPowerOfTwo(t *testing.T) {
	for n, want := range map[int]bool{1: true, 2: true, 3: false, 8: true, 12: false, 0: false} {
		if PowerOfTwo(n) != want {
			t.Fatalf("PowerOfTwo(%d) = %v", n, !want)
		}
	}
}

func TestAlltoallBruck(t *testing.T) {
	for _, p := range []int{2, 4, 5, 8, 9} {
		alltoallBody(t, p, AlgBruck)
	}
}

func TestAlltoallBruckBeatsPairwiseLatency(t *testing.T) {
	// For tiny messages on a high-latency network, Bruck's log2(P)
	// rounds must finish sooner than pairwise's P-1 rounds.
	model := &simnet.Model{
		Name:  "high-latency",
		Inter: simnet.LinkModel{LatencyUS: 200, BandwidthMBs: 100, OverheadUS: 5},
	}
	run := func(alg AlltoallAlg) float64 {
		var worst float64
		_, _, err := simnet.Run(16, model, func(n *simnet.Node) {
			c := World(n)
			send := make([][]float64, 16)
			for i := range send {
				send[i] = []float64{float64(c.Rank())}
			}
			c.Alltoall(send, alg)
			if w := c.Wtime(); w > worst {
				worst = w
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	bruck := run(AlgBruck)
	pairwise := run(AlgPairwise)
	if bruck >= pairwise {
		t.Fatalf("Bruck %v not faster than pairwise %v for tiny messages", bruck, pairwise)
	}
}

func TestAlltoallAutoSelectsBruckForTinyMessages(t *testing.T) {
	// AlgAuto on 8+ ranks with tiny blocks must behave like Bruck
	// (correctness is covered by alltoallBody; here we just exercise
	// the dispatch path).
	alltoallBody(t, 8, AlgAuto)
}

func TestRandomizedCollectiveSoak(t *testing.T) {
	// Property: random sequences of collectives on random cluster
	// sizes and models complete without deadlock and produce correct
	// reductions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(7) + 2
		model := &simnet.Model{
			Name: "soak",
			Inter: simnet.LinkModel{
				LatencyUS:    float64(rng.Intn(200) + 1),
				BandwidthMBs: float64(rng.Intn(200) + 5),
				OverheadUS:   float64(rng.Intn(20)),
				EagerLimit:   1 << (8 + rng.Intn(8)),
			},
		}
		ops := make([]int, 6)
		for i := range ops {
			ops[i] = rng.Intn(4)
		}
		sizes := make([]int, len(ops))
		for i := range sizes {
			sizes[i] = rng.Intn(2000) + 1
		}
		ok := true
		_, _, err := simnet.Run(p, model, func(n *simnet.Node) {
			c := World(n)
			for i, op := range ops {
				data := make([]float64, sizes[i])
				for j := range data {
					data[j] = float64(c.Rank() + 1)
				}
				switch op {
				case 0:
					got := c.Allreduce(data, Sum)
					want := float64(p*(p+1)) / 2
					if got[0] != want {
						ok = false
					}
				case 1:
					got := c.Bcast(i%p, data)
					if got[0] != float64(i%p+1) && c.Rank() != i%p {
						ok = false
					}
				case 2:
					send := make([][]float64, p)
					for d := range send {
						send[d] = []float64{float64(c.Rank()*100 + d)}
					}
					recv := c.Alltoall(send, AlgAuto)
					for src := range recv {
						if recv[src][0] != float64(src*100+c.Rank()) {
							ok = false
						}
					}
				case 3:
					c.Barrier()
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSubWorldCollectivesSpanOnlyMembers(t *testing.T) {
	// 3 simulated ranks; ranks 0-1 form a sub-world while rank 2 plays
	// an out-of-band observer (a supervisor monitor). Collectives on
	// the sub-communicator must complete without rank 2 participating.
	sums := make([]float64, 2)
	_, _, err := simnet.Run(3, testModel(), func(n *simnet.Node) {
		if n.Rank == 2 {
			if _, serr := SubWorld(n, 2); serr == nil {
				t.Error("rank 2 joined a 2-rank sub-world")
			}
			n.Compute(1e-5)
			return
		}
		c, serr := SubWorld(n, 2)
		if serr != nil {
			panic(serr)
		}
		if c.Size() != 2 {
			t.Errorf("sub-world Size = %d, want 2", c.Size())
		}
		v := c.Allreduce([]float64{float64(n.Rank + 1)}, Sum)
		sums[n.Rank] = v[0]
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sums {
		if s != 3 {
			t.Errorf("rank %d: sub-world Allreduce sum = %v, want 3", r, s)
		}
	}
}

func TestSubWorldValidation(t *testing.T) {
	_, _, err := simnet.Run(2, testModel(), func(n *simnet.Node) {
		if _, serr := SubWorld(n, 0); serr == nil {
			t.Error("zero-size sub-world accepted")
		}
		if _, serr := SubWorld(n, 3); serr == nil {
			t.Error("oversized sub-world accepted")
		}
		if c, serr := SubWorld(n, 2); serr != nil || c.Size() != 2 {
			t.Errorf("full-size sub-world: %v (size %d)", serr, c.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
