// Package mpi provides the message-passing API the paper's solvers
// use, implemented on the simulated cluster of package simnet: blocking
// point-to-point operations plus the collectives MPICH/LAM implement on
// top of them — Alltoall (pairwise exchange), Allreduce (recursive
// doubling), Bcast (binomial tree), Reduce, Gather and Barrier
// (dissemination).
//
// The paper's kernel-level Figure 8 benchmarks MPI_Alltoall, and its
// Nektar-F application is dominated by it ("This type of algorithm
// relies heavily on Global Exchange MPI_Alltoall"); the Nektar-ALE code
// instead uses global reductions and pairwise exchanges via the
// gather-scatter library (package gs).
package mpi

import (
	"fmt"
	"math/bits"

	"nektar/internal/simnet"
)

// Comm is a communicator bound to one simulated rank.
type Comm struct {
	node *simnet.Node
	size int // sub-world size override; 0 = full world
	seq  int // collective sequence number for tag isolation

	// Reliable-delivery state (see reliable.go); nil rel = raw mode.
	rel         *Reliability
	sendSeq     map[pairTag]int
	recvSeq     map[pairTag]int
	retransmits int
}

// Tag spaces: user tags occupy [0, collTagBase), collective tags
// [collTagBase, collTagMax), and acknowledgment tags (reliable mode)
// live at tag+ackTagBase in [1<<28, 1<<28+collTagMax).
const (
	// collTagBase separates collective traffic from user tags.
	collTagBase = 1 << 24
	// collTagMax bounds the collective tag space; nextTag wraps before
	// reaching it.
	collTagMax = 1 << 27
)

// AnySource and AnyTag are the wildcard receive selectors.
const (
	AnySource = simnet.AnySource
	AnyTag    = simnet.AnyTag
)

// World wraps a simnet rank in a communicator spanning all ranks.
func World(n *simnet.Node) *Comm { return &Comm{node: n} }

// SubWorld wraps a simnet rank in a communicator spanning only ranks
// [0, size) of the simulation. The solvers are written against
// Size()/Rank(), so a sub-world is all the rank-replacement rewiring a
// supervised run needs: extra simulated ranks (a failure-detection
// monitor, future hot-spare processes) share the cluster without
// participating in the solver's collectives, and after a restart the
// replacement process simply adopts the failed rank's id inside the
// same sub-world. The caller's rank must lie inside the sub-world;
// traffic to ranks outside it uses the simnet.Node API directly.
func SubWorld(n *simnet.Node, size int) (*Comm, error) {
	if size < 1 || size > n.P {
		return nil, fmt.Errorf("mpi: sub-world size %d outside [1, %d]", size, n.P)
	}
	if n.Rank >= size {
		return nil, fmt.Errorf("mpi: rank %d cannot join a sub-world of size %d", n.Rank, size)
	}
	return &Comm{node: n, size: size}, nil
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.node.Rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int {
	if c.size > 0 {
		return c.size
	}
	return c.node.P
}

// Wtime returns the virtual wall-clock time in seconds (MPI_Wtime).
func (c *Comm) Wtime() float64 { return c.node.Clock() }

// CPUTime returns the virtual CPU time in seconds (the C library
// clock() the paper compares against MPI_Wtime).
func (c *Comm) CPUTime() float64 { return c.node.CPUTime() }

// Compute accounts dt seconds of local computation.
func (c *Comm) Compute(dt float64) { c.node.Compute(dt) }

// Send performs a blocking standard-mode send. In reliable mode the
// payload is acknowledged and retransmitted as needed; an exhausted
// retry budget fails the run (use SendErr to handle it instead).
func (c *Comm) Send(dst, tag int, data []float64) {
	if err := c.SendErr(dst, tag, data); err != nil {
		panic(err)
	}
}

// Recv performs a blocking receive. Use AnySource / AnyTag for
// wildcards. In reliable mode a crashed peer fails the run (use
// RecvErr to handle it instead).
func (c *Comm) Recv(src, tag int) []float64 {
	data, err := c.RecvErr(src, tag)
	if err != nil {
		panic(err)
	}
	return data
}

// Isend starts a nonblocking send; pass the request to Wait.
func (c *Comm) Isend(dst, tag int, data []float64) *simnet.Request {
	return c.node.Isend(dst, tag, data)
}

// Wait blocks until a nonblocking send completes.
func (c *Comm) Wait(r *simnet.Request) { c.node.Wait(r) }

// SetPhantomFactor scales the timed size of this rank's outgoing
// messages (paper-scale extrapolation; see simnet.Node).
func (c *Comm) SetPhantomFactor(f float64) { c.node.SetPhantomFactor(f) }

// Sendrecv exchanges messages with two (possibly different) partners.
// The send is posted nonblocking before the receive, so symmetric
// exchanges overlap both directions (as MPI_Sendrecv does) and
// rendezvous transfers cannot deadlock. In reliable mode both
// directions are acknowledged (see sendrecvReliable).
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	if c.rel != nil && dst != c.Rank() && src != c.Rank() && src != AnySource {
		out, err := c.sendrecvReliable(dst, sendTag, data, src, recvTag)
		if err != nil {
			panic(err)
		}
		return out
	}
	req := c.node.Isend(dst, sendTag, data)
	out := c.node.Recv(src, recvTag)
	c.node.Wait(req)
	return out
}

// nextTag returns a fresh collective tag in [collTagBase, collTagMax).
// The sequence wraps before spilling past collTagMax into the
// acknowledgment tag space. The wrap is safe: collectives are issued
// in the same order on every rank with at most one in flight per
// communicator, and each consumes all of its messages before
// returning, so a reused tag can never match live traffic. (Reliable
// mode can leave stale *duplicates* in flight, but their sequence
// numbers are per (peer, tag) and monotone, so a reused tag discards
// them as duplicates.) The Size()+1 margin keeps Bruck's tag+k round
// offsets inside the bound.
func (c *Comm) nextTag() int {
	if collTagBase+c.seq+c.Size()+1 >= collTagMax {
		c.seq = 0
	}
	c.seq++
	return collTagBase + c.seq
}

// Barrier blocks until all ranks reach it (dissemination algorithm).
// Each round is a Sendrecv, not Send-then-Recv: the dissemination
// pattern is a ring, and in reliable mode a blocking acknowledged send
// around a cycle would deadlock (every rank waiting for an ack only
// its successor's receive can generate). Sendrecv makes progress on
// both directions at once; tree-shaped collectives (Bcast, Reduce,
// Gather) have no cycles and keep their plain sends.
func (c *Comm) Barrier() {
	p, r := c.Size(), c.Rank()
	tag := c.nextTag()
	for k := 1; k < p; k <<= 1 {
		dst := (r + k) % p
		src := (r - k + p) % p
		c.Sendrecv(dst, tag, nil, src, tag)
	}
}

// Bcast distributes root's data to all ranks via a binomial tree and
// returns the received slice (root returns data unchanged).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	p, r := c.Size(), c.Rank()
	tag := c.nextTag()
	if p == 1 {
		return data
	}
	// Virtual rank with root at 0.
	vr := (r - root + p) % p
	if vr != 0 {
		mask := 1
		for mask < p {
			if vr&mask != 0 {
				src := ((vr - mask) + root) % p
				data = c.Recv(src, tag)
				break
			}
			mask <<= 1
		}
		// Forward to children below that bit.
		mask >>= 1
		for ; mask > 0; mask >>= 1 {
			if vr+mask < p {
				c.Send((vr+mask+root)%p, tag, data)
			}
		}
		return data
	}
	// Root: highest power of two below p downwards.
	mask := 1
	for mask < p {
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if mask < p {
			c.Send((mask+root)%p, tag, data)
		}
	}
	return data
}

// Op is a reduction operator applied element-wise.
type Op int

const (
	// Sum adds element-wise.
	Sum Op = iota
	// Min takes the element-wise minimum.
	Min
	// Max takes the element-wise maximum.
	Max
)

func (op Op) apply(dst, src []float64) {
	switch op {
	case Sum:
		for i := range dst {
			dst[i] += src[i]
		}
	case Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// Allreduce combines data across all ranks and returns the result on
// every rank. Power-of-two sizes use recursive doubling; others fall
// back to Reduce + Bcast, like MPICH.
func (c *Comm) Allreduce(data []float64, op Op) []float64 {
	p, r := c.Size(), c.Rank()
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	if p&(p-1) == 0 {
		tag := c.nextTag()
		for k := 1; k < p; k <<= 1 {
			partner := r ^ k
			got := c.Sendrecv(partner, tag, acc, partner, tag)
			op.apply(acc, got)
		}
		return acc
	}
	acc = c.Reduce(0, acc, op)
	return c.Bcast(0, acc)
}

// Reduce combines data onto root (binomial tree); non-root ranks
// receive nil.
func (c *Comm) Reduce(root int, data []float64, op Op) []float64 {
	p, r := c.Size(), c.Rank()
	tag := c.nextTag()
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	vr := (r - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			dst := ((vr &^ mask) + root) % p
			c.Send(dst, tag, acc)
			return nil
		}
		if vr|mask < p {
			src := ((vr | mask) + root) % p
			got := c.Recv(src, tag)
			op.apply(acc, got)
		}
		mask <<= 1
	}
	return acc
}

// Gather collects each rank's data at root; root receives a slice of
// per-rank payloads (indexed by rank), others receive nil. Linear
// algorithm, as in the paper's solution-field output path ("Sends (all
// but processor 0) and Receives (processor 0)").
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	p, r := c.Size(), c.Rank()
	tag := c.nextTag()
	if r != root {
		c.Send(root, tag, data)
		return nil
	}
	out := make([][]float64, p)
	out[root] = append([]float64(nil), data...)
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		out[i] = c.Recv(i, tag)
	}
	return out
}

// AlltoallAlg selects an MPI_Alltoall implementation.
type AlltoallAlg int

const (
	// AlgAuto picks Bruck for tiny messages on many ranks (latency
	// bound) and pairwise otherwise, MPICH's heuristic.
	AlgAuto AlltoallAlg = iota
	// AlgPairwise runs P-1 sendrecv steps with disjoint partners.
	AlgPairwise
	// AlgBasic posts all sends then all receives (LAM's basic
	// algorithm); fine on full crossbars, disastrous on shared media.
	AlgBasic
	// AlgBruck is the log2(P)-round store-and-forward algorithm:
	// fewer, larger messages, trading bandwidth for latency.
	AlgBruck
)

// Alltoall exchanges send[i] to rank i, returning the per-source
// payloads. len(send) must equal Size().
func (c *Comm) Alltoall(send [][]float64, alg AlltoallAlg) [][]float64 {
	p, r := c.Size(), c.Rank()
	if len(send) != p {
		panic(fmt.Sprintf("mpi: Alltoall needs %d buffers, got %d", p, len(send)))
	}
	tag := c.nextTag()
	recv := make([][]float64, p)
	recv[r] = append([]float64(nil), send[r]...)
	if p == 1 {
		return recv
	}
	if alg == AlgAuto {
		// Tiny per-pair messages on many ranks are latency bound:
		// Bruck's log2(P) rounds win; otherwise pairwise. Bruck needs
		// equal block sizes.
		alg = AlgPairwise
		if p >= 8 && len(send[(r+1)%p]) <= 128 {
			equal := true
			for i := 1; i < p; i++ {
				if len(send[i]) != len(send[0]) {
					equal = false
					break
				}
			}
			if equal {
				alg = AlgBruck
			}
		}
	}
	switch alg {
	case AlgBruck:
		return c.alltoallBruck(send, tag)
	case AlgBasic:
		// Raw nonblocking sends: the basic algorithm bypasses reliable
		// mode by construction (see the bypass notes in reliable.go).
		reqs := make([]*simnet.Request, 0, p-1)
		for i := 1; i < p; i++ {
			dst := (r + i) % p
			reqs = append(reqs, c.node.Isend(dst, tag, send[dst]))
		}
		for i := 1; i < p; i++ {
			src := (r - i + p) % p
			recv[src] = c.node.Recv(src, tag)
		}
		for _, rq := range reqs {
			c.node.Wait(rq)
		}
	default: // AlgPairwise
		pow2 := p&(p-1) == 0
		for step := 1; step < p; step++ {
			var dst, src int
			if pow2 {
				dst = r ^ step
				src = dst
			} else {
				dst = (r + step) % p
				src = (r - step + p) % p
			}
			recv[src] = c.Sendrecv(dst, tag, send[dst], src, tag)
		}
	}
	return recv
}

// alltoallBruck implements the Bruck (1997) store-and-forward
// alltoall: ceil(log2 P) rounds of combined messages. All blocks must
// have equal length (the solvers' transposes do).
func (c *Comm) alltoallBruck(send [][]float64, tag int) [][]float64 {
	p, r := c.Size(), c.Rank()
	blockLen := len(send[0])
	for i := 1; i < p; i++ {
		if len(send[i]) != blockLen {
			panic("mpi: Bruck alltoall requires equal block sizes")
		}
	}
	// Phase 1: local rotation so block i holds the payload for rank
	// (r + i) mod p.
	tmp := make([][]float64, p)
	for i := 0; i < p; i++ {
		tmp[i] = append([]float64(nil), send[(r+i)%p]...)
	}
	// Phase 2: log rounds; round k ships every block whose index has
	// bit k set, packed into one message.
	for k := 1; k < p; k <<= 1 {
		dst := (r + k) % p
		src := (r - k + p) % p
		var idx []int
		for i := 0; i < p; i++ {
			if i&k != 0 {
				idx = append(idx, i)
			}
		}
		buf := make([]float64, 0, len(idx)*blockLen)
		for _, i := range idx {
			buf = append(buf, tmp[i]...)
		}
		got := c.Sendrecv(dst, tag+k, buf, src, tag+k)
		for j, i := range idx {
			copy(tmp[i], got[j*blockLen:(j+1)*blockLen])
		}
	}
	// Phase 3: inverse rotation — block i arrived from rank
	// (r - i + p) mod p.
	recv := make([][]float64, p)
	for i := 0; i < p; i++ {
		recv[(r-i+p)%p] = tmp[i]
	}
	return recv
}

// PowerOfTwo reports whether n is a power of two (exported for the
// harnesses that choose Alltoall partnerings).
func PowerOfTwo(n int) bool { return n > 0 && bits.OnesCount(uint(n)) == 1 }
