package mpi

import (
	"errors"
	"math"
	"strings"
	"testing"

	"nektar/internal/fault"
	"nektar/internal/simnet"
)

// runFaulty executes body on p ranks under a fault plan; the caller
// inspects the returned error.
func runFaulty(t *testing.T, p int, inj simnet.Injector, body func(c *Comm)) ([]float64, error) {
	t.Helper()
	wall, _, err := simnet.RunWithFaults(p, testModel(), inj, func(n *simnet.Node) {
		body(World(n))
	})
	return wall, err
}

func TestReliableDeliveryOverLossyLink(t *testing.T) {
	plan := fault.NewPlan(11).WithDrops(0.3)
	var got [][]float64
	var resent int
	_, err := runFaulty(t, 2, plan, func(c *Comm) {
		c.SetReliability(DefaultReliability())
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				c.Send(1, 5, []float64{float64(i), float64(2 * i)})
			}
			resent = c.Retransmits()
		} else {
			for i := 0; i < 50; i++ {
				got = append(got, c.Recv(0, 5))
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if plan.Drops() == 0 {
		t.Fatal("plan dropped nothing at p=0.3; test is vacuous")
	}
	if resent == 0 {
		t.Fatal("no retransmissions despite drops")
	}
	if len(got) != 50 {
		t.Fatalf("receiver got %d messages, want 50", len(got))
	}
	for i, m := range got {
		if len(m) != 2 || m[0] != float64(i) || m[1] != float64(2*i) {
			t.Fatalf("message %d corrupted or out of order: %v", i, m)
		}
	}
}

func TestCollectivesSurviveLossyNetwork(t *testing.T) {
	plan := fault.NewPlan(3).WithDrops(0.15)
	const p = 4
	sums := make([]float64, p)
	var bcasted [p][]float64
	var exchanged [p][][]float64
	_, err := runFaulty(t, p, plan, func(c *Comm) {
		c.SetReliability(DefaultReliability())
		r := c.Rank()
		// Allreduce (recursive doubling -> reliable Sendrecv).
		acc := c.Allreduce([]float64{float64(r + 1)}, Sum)
		sums[r] = acc[0]
		// Bcast (binomial tree -> reliable Send/Recv).
		bcasted[r] = c.Bcast(2, []float64{7, 8, 9})
		// Pairwise alltoall (reliable Sendrecv).
		send := make([][]float64, p)
		for i := range send {
			send[i] = []float64{float64(100*r + i)}
		}
		exchanged[r] = c.Alltoall(send, AlgPairwise)
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if plan.Drops() == 0 {
		t.Fatal("plan dropped nothing; test is vacuous")
	}
	for r := 0; r < p; r++ {
		if sums[r] != 10 { // 1+2+3+4
			t.Errorf("rank %d Allreduce sum = %v, want 10", r, sums[r])
		}
		if len(bcasted[r]) != 3 || bcasted[r][0] != 7 || bcasted[r][2] != 9 {
			t.Errorf("rank %d Bcast got %v, want [7 8 9]", r, bcasted[r])
		}
		for src := 0; src < p; src++ {
			want := float64(100*src + r)
			if len(exchanged[r][src]) != 1 || exchanged[r][src][0] != want {
				t.Errorf("rank %d Alltoall from %d = %v, want [%v]", r, src, exchanged[r][src], want)
			}
		}
	}
}

// TestSeededFaultPlanDeterministic is the tentpole acceptance
// criterion: two same-seed runs of a lossy reliable-mode workload
// produce identical virtual-time traces and identical retransmission
// counts.
func TestSeededFaultPlanDeterministic(t *testing.T) {
	const p = 4
	run := func() ([]float64, []int, int) {
		plan := fault.NewPlan(2024).WithDrops(0.2).
			DegradeLink(-1, -1, 0.002, 0.004, 5, 5).
			StallNIC(1, 0.001, 0.003)
		resent := make([]int, p)
		wall, err := runFaulty(t, p, plan, func(c *Comm) {
			c.SetReliability(DefaultReliability())
			r := c.Rank()
			for i := 0; i < 10; i++ {
				c.Compute(1e-4)
				c.Allreduce([]float64{float64(r)}, Max)
				send := make([][]float64, p)
				for j := range send {
					send[j] = []float64{float64(r*p + j)}
				}
				c.Alltoall(send, AlgPairwise)
			}
			c.Barrier()
			resent[r] = c.Retransmits()
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return wall, resent, plan.Drops()
	}
	w1, r1, d1 := run()
	w2, r2, d2 := run()
	if d1 != d2 {
		t.Fatalf("drop counts differ across same-seed runs: %d vs %d", d1, d2)
	}
	if d1 == 0 {
		t.Fatal("no drops injected; determinism test is vacuous")
	}
	total := 0
	for i := 0; i < p; i++ {
		if w1[i] != w2[i] {
			t.Errorf("rank %d virtual wall differs: %v vs %v", i, w1[i], w2[i])
		}
		if r1[i] != r2[i] {
			t.Errorf("rank %d retransmit count differs: %d vs %d", i, r1[i], r2[i])
		}
		total += r1[i]
	}
	if total == 0 {
		t.Fatal("no retransmissions recorded; determinism test is vacuous")
	}
}

func TestSendErrExhaustsRetriesToDeadPeer(t *testing.T) {
	// Rank 1 dies immediately; rank 0's reliable send can never be
	// acknowledged and must fail with ErrDeliveryFailed.
	plan := fault.NewPlan(0).Crash(1, 0)
	var sendErr error
	_, err := runFaulty(t, 2, plan, func(c *Comm) {
		if c.Rank() == 0 {
			c.SetReliability(DefaultReliability())
			sendErr = c.SendErr(1, 3, []float64{1})
		} else {
			c.Compute(1) // first yield is past the crash time
		}
	})
	var ce *simnet.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError from run, got %v", err)
	}
	if !errors.Is(sendErr, ErrDeliveryFailed) {
		t.Fatalf("SendErr = %v, want ErrDeliveryFailed", sendErr)
	}
}

func TestRecvErrReportsCrashedPeer(t *testing.T) {
	plan := fault.NewPlan(0).Crash(1, 1e-5)
	var recvErr error
	_, err := runFaulty(t, 2, plan, func(c *Comm) {
		if c.Rank() == 0 {
			_, recvErr = c.RecvErr(1, 3)
		} else {
			c.Compute(1) // dies before sending anything
		}
	})
	var ce *simnet.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError from run, got %v", err)
	}
	if recvErr == nil || !strings.Contains(recvErr.Error(), "crashed") {
		t.Fatalf("RecvErr = %v, want crashed-peer error", recvErr)
	}
}

func TestNextTagWrapsBeforeAckSpace(t *testing.T) {
	var sawWrap bool
	_, _, err := simnet.Run(2, testModel(), func(n *simnet.Node) {
		c := World(n)
		c.seq = collTagMax - collTagBase - 12 // a few tags under the bound
		prev := 0
		for i := 0; i < 20; i++ {
			tag := c.nextTag()
			if tag+c.Size() >= collTagMax {
				panic("collective tag spilled past collTagMax")
			}
			if i > 0 && tag <= prev {
				sawWrap = true
			}
			prev = tag
			// The tag must stay usable: exchange a message on it.
			partner := 1 - c.Rank()
			c.Sendrecv(partner, tag, []float64{float64(i)}, partner, tag)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !sawWrap {
		t.Fatal("sequence never wrapped; bound guard untested")
	}
}

func TestReliabilityNoOverheadWhenLossFree(t *testing.T) {
	// On a loss-free network the reliable protocol must deliver without
	// retransmissions (acks flow, but nothing is resent).
	var resent = math.MaxInt
	_, err := runFaulty(t, 2, fault.NewPlan(5), func(c *Comm) {
		c.SetReliability(DefaultReliability())
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				c.Send(1, 9, []float64{float64(i)})
			}
			resent = c.Retransmits()
		} else {
			for i := 0; i < 20; i++ {
				got := c.Recv(0, 9)
				if got[0] != float64(i) {
					panic("out of order")
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if resent != 0 {
		t.Fatalf("retransmits = %d on a loss-free link, want 0", resent)
	}
}
