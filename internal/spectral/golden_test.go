package spectral

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"strings"
	"testing"

	"nektar/internal/engine"
	"nektar/internal/report"
)

// Golden determinism hashes: SHA-256 over the raw float bits of the
// complete time-stepping state (step counter, spectral vorticity, AB2
// history) after a fixed short run. Pinned at first implementation;
// any refactor of the transform pipeline, the nonlinear forms, or the
// update must reproduce every bit. Regenerate deliberately by setting
// a constant to "PRINT" and reading the t.Logf output.
// Re-pinned for PR 10 (mixed-radix FFT + exact-3/2 padding): the
// Stockham mixed-radix kernel changes floating-point summation order
// and the decaying pipeline moved from the 2N to the 3N/2 padded grid,
// so both trajectories shifted in rounding. The physics pins that
// justify the re-pin — Taylor-Green closed form at unchanged
// tolerance, Basdevant-vs-convective agreement, serial-vs-slab and
// scheduler bit-identity — all pass on the new pipeline.
const (
	goldenTurb2D    = "5b4756e7b46d2d5f22c60fd924b041f69502596cf25749d0b41ef3dafee54858"
	goldenTurbForce = "e5db2d806d9e2b21c6819489372a494b77303b8ed1ffec9cba0a82a1ee657398"
)

func hashInt(h hash.Hash, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hashFloats(h hash.Hash, xs ...[]float64) {
	var b [8]byte
	for _, s := range xs {
		hashInt(h, len(s))
		for _, v := range s {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
}

func turbStateHash(s *Turb2D) string {
	h := sha256.New()
	hashInt(h, s.step)
	hashFloats(h, flatten(s.w), flatten(s.prevN))
	return hex.EncodeToString(h.Sum(nil))
}

// goldenCfg is the pinned trajectory configuration: big enough to
// exercise every shell of the de-aliased band, small enough for tier-1.
func goldenCfg() Config {
	return Config{N: 16, Re: 400, Dt: 2e-3, Seed: 77}
}

func TestGoldenTrajectories(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		mk     func() (*Turb2D, error)
	}{
		{"turb2d", goldenTurb2D, func() (*Turb2D, error) { return NewTurb2D(goldenCfg(), nil, nil) }},
		{"turbforce", goldenTurbForce, func() (*Turb2D, error) { return NewForced(goldenCfg(), nil, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				s.Step()
			}
			h := turbStateHash(s)
			t.Logf("%s state hash: %s", tc.name, h)
			if tc.golden != "PRINT" && h != tc.golden {
				t.Fatalf("%s trajectory diverged from golden:\n got %s\nwant %s", tc.name, h, tc.golden)
			}
		})
	}
}

// TestCrashRecoverBitIdentical injects a crash at step k of an
// engine-driven run, restores the last checkpoint into a fresh solver,
// resumes to the end, and requires the final state hash to equal the
// uninterrupted run's — the property the farm and the supervisor both
// stand on.
func TestCrashRecoverBitIdentical(t *testing.T) {
	const steps, ckptEvery, crashAt = 8, 2, 5
	for _, forced := range []bool{false, true} {
		name := "turb2d"
		mk := NewTurb2D
		if forced {
			name, mk = "turbforce", NewForced
		}
		t.Run(name, func(t *testing.T) {
			ref, err := mk(goldenCfg(), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				ref.Step()
			}
			want := turbStateHash(ref)

			// Crashing run: engine loop checkpoints every 2 steps; the
			// "crash" is a Poll-ordered halt after step crashAt, dropping
			// all state except the staged checkpoints.
			crash, err := mk(goldenCfg(), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			var last []byte
			var lastStep int
			loop := engine.Loop{
				Solver: crash, Steps: steps,
				CheckpointEvery: ckptEvery,
				OnCheckpoint:    func(step int, state []byte) { last, lastStep = state, step },
				Poll:            func() bool { return crash.StepCount() >= crashAt },
				Watchdog:        engine.Watchdog{Disabled: true},
			}
			if res, err := loop.Run(); err != nil || res.Outcome != engine.Halted {
				t.Fatalf("crash leg: outcome=%v err=%v", res.Outcome, err)
			}
			if last == nil || lastStep != 4 {
				t.Fatalf("no checkpoint staged before the crash (lastStep=%d)", lastStep)
			}

			// Recovery: a fresh solver restores the checkpoint and resumes.
			rec, err := mk(goldenCfg(), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Restore(bytes.NewReader(last)); err != nil {
				t.Fatal(err)
			}
			if rec.StepCount() != lastStep {
				t.Fatalf("restore landed at step %d, want %d", rec.StepCount(), lastStep)
			}
			resume := engine.Loop{Solver: rec, Steps: steps, Watchdog: engine.Watchdog{Disabled: true}}
			if res, err := resume.Run(); err != nil || res.Outcome != engine.Completed {
				t.Fatalf("resume leg: outcome=%v err=%v", res.Outcome, err)
			}
			if got := turbStateHash(rec); got != want {
				t.Fatalf("recovered trajectory diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestRestoreRejectsWrongRun: the layout guards refuse a checkpoint
// from a different grid or variant instead of corrupting the slab.
func TestRestoreRejectsWrongRun(t *testing.T) {
	src, err := NewTurb2D(goldenCfg(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	wrongGrid, err := NewTurb2D(Config{N: 32, Re: 400, Dt: 2e-3, Seed: 77}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongGrid.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("32-grid solver accepted a 16-grid checkpoint")
	}
	wrongVariant, err := NewForced(goldenCfg(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongVariant.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("forced solver accepted a decaying checkpoint")
	}
}

// TestWatchdogTripsOnInjectedNaN: corrupting the slab mid-run must end
// the engine loop with Tripped before the poison reaches a checkpoint.
func TestWatchdogTripsOnInjectedNaN(t *testing.T) {
	s, err := NewForced(goldenCfg(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	staged := 0
	loop := engine.Loop{
		Solver: s, Steps: 20,
		CheckpointEvery: 1,
		OnCheckpoint:    func(int, []byte) { staged++ },
		OnStep: func(step int) {
			if step == 3 {
				s.w[1] = complex(math.NaN(), 0)
			}
		},
		Watchdog: engine.Watchdog{Every: 1},
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.Tripped {
		t.Fatalf("outcome = %v, want Tripped", res.Outcome)
	}
	if staged != 2 {
		t.Fatalf("staged %d checkpoints, want 2 (steps 1-2; the poisoned step must not stage)", staged)
	}
}

// TestDiagnosticsEvents: the online spectrum/dissipation stream is
// well-formed JSONL the offline tooling can aggregate — bins cover
// shells 0..N/2, parseval-consistent totals, and TraceBreakdown shows
// the [spectra] row.
func TestDiagnosticsEvents(t *testing.T) {
	const n, steps, every = 16, 6, 2
	var buf bytes.Buffer
	s, err := NewForced(Config{N: n, Re: 400, Dt: 2e-3, Seed: 9, DiagEvery: every}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Trace = engine.NewTracer(&buf)
	for i := 0; i < steps; i++ {
		s.Step()
	}
	evs, err := engine.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var spectra, diss int
	for _, ev := range evs {
		switch ev.Ev {
		case engine.EvSpectrum:
			spectra++
			if len(ev.Bins) != n/2+1 {
				t.Fatalf("spectrum at step %d has %d bins, want %d", ev.Step, len(ev.Bins), n/2+1)
			}
			var sum float64
			for _, b := range ev.Bins {
				if b < 0 {
					t.Fatalf("negative spectral density at step %d", ev.Step)
				}
				sum += b
			}
			if ev.Energy <= 0 || sum > ev.Energy*(1+1e-12) {
				t.Fatalf("step %d: binned energy %g exceeds total %g", ev.Step, sum, ev.Energy)
			}
			if ev.Step%every != 0 {
				t.Fatalf("spectrum emitted off-cadence at step %d", ev.Step)
			}
		case engine.EvDissipation:
			diss++
			if ev.Enstrophy <= 0 || ev.Dissipation <= 0 {
				t.Fatalf("step %d: non-positive enstrophy/dissipation %g/%g", ev.Step, ev.Enstrophy, ev.Dissipation)
			}
			want := 2 * (1 / 400.0) * ev.Enstrophy
			if math.Abs(ev.Dissipation-want) > 1e-15*want {
				t.Fatalf("step %d: dissipation %g is not 2*nu*Z = %g", ev.Step, ev.Dissipation, want)
			}
		}
	}
	if want := steps / every; spectra != want || diss != want {
		t.Fatalf("got %d spectrum + %d dissipation events, want %d each", spectra, diss, want)
	}
	var out bytes.Buffer
	report.TraceBreakdown(evs, "spectral diag test").Write(&out)
	if !strings.Contains(out.String(), "[spectra]") {
		t.Fatalf("TraceBreakdown output missing [spectra] row:\n%s", out.String())
	}
}
