package spectral

import (
	"math"

	"nektar/internal/engine"
	"nektar/internal/mpi"
)

// Online diagnostics: shell-summed energy spectrum, total energy,
// enstrophy, and dissipation, emitted as structured trace events so the
// farm and report.TraceBreakdown can serve spectra from a recorded run
// without touching solver state.
//
// With the unnormalized-DFT convention the physical Fourier coefficient
// is what/N^2, so per-mode kinetic energy is |what|^2 / (2 k^2 N^4) and
// enstrophy density is |what|^2 / (2 N^4). Bins cover integer shells
// round(|k|) = 0..N/2; corner modes beyond the largest isotropic shell
// still count toward the energy/enstrophy totals, just not the binned
// spectrum.

// diagnose runs at the DiagEvery cadence after the step counter has
// advanced. The shell reduction is a collective Allreduce entered by
// every rank at the same steps — tracer or not — so no rank can stall
// the others; only rank 0 emits events.
func (s *Turb2D) diagnose() {
	if s.Cfg.DiagEvery <= 0 || s.step%s.Cfg.DiagEvery != 0 {
		return
	}
	n := s.Cfg.N
	nb := n/2 + 1
	buf := s.diag
	for i := range buf {
		buf[i] = 0
	}
	norm := 1 / (float64(n) * float64(n) * float64(n) * float64(n))
	for i := 0; i < s.nloc; i++ {
		ky := kAt(s.rank*s.nloc+i, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			v := s.w[i*n+j]
			w2 := (real(v)*real(v) + imag(v)*imag(v)) * norm
			k2 := float64(kx*kx + ky*ky)
			if k2 == 0 {
				continue
			}
			e := w2 / (2 * k2)
			buf[nb] += e        // total energy
			buf[nb+1] += w2 / 2 // total enstrophy
			if shell := int(math.Sqrt(k2) + 0.5); shell < nb {
				buf[shell] += e
			}
		}
	}
	if s.Comm != nil {
		buf = s.Comm.Allreduce(buf, mpi.Sum)
	}
	if s.Trace == nil || s.rank != 0 {
		return
	}
	energy, enstrophy := buf[nb], buf[nb+1]
	s.Trace.Emit(engine.Event{
		Ev: engine.EvSpectrum, Rank: s.rank, Step: s.step,
		Bins: buf[:nb], Energy: energy,
	})
	s.Trace.Emit(engine.Event{
		Ev: engine.EvDissipation, Rank: s.rank, Step: s.step,
		Energy: energy, Enstrophy: enstrophy, Dissipation: 2 * s.nu * enstrophy,
	})
}
