package spectral

import (
	"math"
	"testing"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// TestTaylorGreenDecay: w = cos(x) + cos(y) is an exact eigenstate —
// the streamfunction is the vorticity itself (k^2 = 1), so u.grad(w)
// vanishes identically and Crank-Nicolson decays each mode by exactly
// ((1 - nu dt/2)/(1 + nu dt/2)) per step. The solver runs the full
// de-aliased pipeline, so this checks wavenumbers, velocity recovery,
// padding, and the CN update against a closed form.
func TestTaylorGreenDecay(t *testing.T) {
	const n, steps = 16, 20
	cfg := Config{N: n, Re: 50, Dt: 0.01, Seed: 1}
	s, err := NewTurb2D(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	amp := float64(n*n) / 2
	for i := range s.w {
		s.w[i] = 0
	}
	s.w[1] = complex(amp, 0)       // (ky=0, kx=1)
	s.w[n-1] = complex(amp, 0)     // (ky=0, kx=-1)
	s.w[1*n] = complex(amp, 0)     // (ky=1, kx=0)
	s.w[(n-1)*n] = complex(amp, 0) // (ky=-1, kx=0)
	for i := 0; i < steps; i++ {
		s.Step()
	}
	nu := 1 / cfg.Re
	g := (1 - 0.5*cfg.Dt*nu) / (1 + 0.5*cfg.Dt*nu)
	want := amp * math.Pow(g, steps)
	for _, idx := range []int{1, n - 1, 1 * n, (n - 1) * n} {
		got := real(s.w[idx])
		if math.Abs(got-want) > 1e-9*amp {
			t.Fatalf("mode %d: got %.15g want %.15g", idx, got, want)
		}
		if math.Abs(imag(s.w[idx])) > 1e-9*amp {
			t.Fatalf("mode %d grew an imaginary part %g", idx, imag(s.w[idx]))
		}
	}
	// Everything else stays at roundoff level.
	for i, v := range s.w {
		if i == 1 || i == n-1 || i == 1*n || i == (n-1)*n {
			continue
		}
		if math.Abs(real(v)) > 1e-9*amp || math.Abs(imag(v)) > 1e-9*amp {
			t.Fatalf("spurious mode %d = %g", i, v)
		}
	}
}

// TestBasdevantMatchesConvective: on a field band-limited to the 2/3
// band, the Basdevant 4-FFT form and the padded convective form are
// the same advection operator (both alias-free there), so the two
// solvers' nonlinear terms must agree to roundoff inside the band.
func TestBasdevantMatchesConvective(t *testing.T) {
	const n = 16
	forced, err := NewForced(Config{N: n, Re: 100, Dt: 1e-3, Seed: 3}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	decay, err := NewTurb2D(Config{N: n, Re: 100, Dt: 1e-3, Seed: 3}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	copy(decay.w, forced.w) // forced init is already 2/3-band-limited
	forced.stepBasdevant()
	decay.stepConvective()
	maxAmp := 0.0
	for _, v := range decay.specB {
		if a := math.Hypot(real(v), imag(v)); a > maxAmp {
			maxAmp = a
		}
	}
	kmax := n / 3
	for i := 0; i < n; i++ {
		ky := kAt(i, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			if kx > kmax || kx < -kmax || ky > kmax || ky < -kmax {
				continue
			}
			d := forced.specB[i*n+j] - decay.specB[i*n+j]
			if math.Abs(real(d)) > 1e-10*maxAmp || math.Abs(imag(d)) > 1e-10*maxAmp {
				t.Fatalf("advection mismatch at (ky=%d, kx=%d): %g (scale %g)", ky, kx, d, maxAmp)
			}
		}
	}
}

// TestInitDeterministicAcrossRanks: the PAO field a P-rank run
// assembles must be bit-identical to the serial one — initialization
// hashes global mode indices and normalizes over a fixed global walk.
func TestInitDeterministicAcrossRanks(t *testing.T) {
	const n, p = 16, 4
	cfg := Config{N: n, Re: 200, Dt: 1e-3, Seed: 42}
	ser, err := NewTurb2D(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ser.Field()
	got := make([][]complex128, p)
	_, _, err = simnet.Run(p, machine.Muses().Net, func(nd *simnet.Node) {
		s, err := NewTurb2D(cfg, mpi.World(nd), nil)
		if err != nil {
			panic(err)
		}
		got[nd.Rank] = s.Field()
	})
	if err != nil {
		t.Fatal(err)
	}
	nloc := n / p
	for r := 0; r < p; r++ {
		for i, v := range got[r] {
			if want[r*nloc*n+i] != v {
				t.Fatalf("rank %d init differs from serial at %d", r, i)
			}
		}
	}
}

// TestSerialVsSlabTrajectory: stepping the slab-parallel solver must
// reproduce the serial trajectory bit for bit, for both variants. This
// is the differential that justifies calling the distributed transpose
// a pure parallelization.
func TestSerialVsSlabTrajectory(t *testing.T) {
	const n, p, steps = 16, 4, 4
	cases := []struct {
		name string
		mk   func(comm *mpi.Comm) (*Turb2D, error)
	}{
		{"decay", func(comm *mpi.Comm) (*Turb2D, error) {
			return NewTurb2D(Config{N: n, Re: 300, Dt: 2e-3, Seed: 11}, comm, nil)
		}},
		{"forced", func(comm *mpi.Comm) (*Turb2D, error) {
			return NewForced(Config{N: n, Re: 300, Dt: 2e-3, Seed: 11}, comm, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ser, err := tc.mk(nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				ser.Step()
			}
			want := ser.Field()
			got := make([][]complex128, p)
			_, _, err = simnet.Run(p, machine.Muses().Net, func(nd *simnet.Node) {
				s, err := tc.mk(mpi.World(nd))
				if err != nil {
					panic(err)
				}
				for i := 0; i < steps; i++ {
					s.Step()
				}
				got[nd.Rank] = s.Field()
			})
			if err != nil {
				t.Fatal(err)
			}
			nloc := n / p
			for r := 0; r < p; r++ {
				for i, v := range got[r] {
					if want[r*nloc*n+i] != v {
						t.Fatalf("rank %d trajectory differs from serial at %d", r, i)
					}
				}
			}
		})
	}
}

// TestForcedEnergyBounded: the forced run reaches a statistically
// steady state instead of decaying to zero or blowing up — energy
// stays positive and finite over a few hundred steps, and forcing
// keeps it above the pure-decay trajectory.
func TestForcedEnergyBounded(t *testing.T) {
	const n, steps = 16, 200
	s, err := NewForced(Config{N: n, Re: 100, Dt: 5e-3, Seed: 5, E0: 0.01}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		s.Step()
	}
	maxAbs, finite := s.HealthSample()
	if !finite {
		t.Fatal("forced run went non-finite")
	}
	if maxAbs == 0 {
		t.Fatal("forced run decayed to zero despite injection")
	}
	if maxAbs > 1e6 {
		t.Fatalf("forced run blew up: maxAbs=%g", maxAbs)
	}
}
