package spectral

import "nektar/internal/timing"

// stageClock mirrors the stage-transition accounting the core solvers
// use: each mark charges the simulated wall clock elapsed since the
// previous mark (communication and idle time included) to the previous
// stage's Wall accumulator, and brackets the new stage for CPU pricing.
// Marking -1 closes the step. Serial runs pass a zero clock, so only
// the host/priced accumulators move.
type stageClock struct {
	st   *timing.Stages
	now  func() float64 // the rank's simulated wall clock (Comm.Wtime)
	last int
	t    float64
}

func newStageClock(st *timing.Stages, now func() float64) stageClock {
	return stageClock{st: st, now: now, last: -1}
}

func (c *stageClock) mark(i int) {
	now := c.now()
	if c.last >= 0 {
		c.st.AddWall(c.last, now-c.t)
	}
	c.last = i
	c.t = now
	if i >= 0 {
		c.st.Begin(i)
	} else {
		c.st.End()
	}
}
