package spectral

import (
	"fmt"

	"nektar/internal/fft"
	"nektar/internal/mpi"
)

// PadMode selects the de-aliasing grid of a Plan2D.
type PadMode int

const (
	// PadNone builds only the unpadded N x N pipeline.
	PadNone PadMode = iota
	// PadExact pads to M = 3N/2 — the exact 3/2-rule grid the
	// mixed-radix transforms make reachable (N divisible by 4 keeps M
	// even). This is what the solvers use.
	PadExact
	// PadPow2 pads to the next power of two >= 3N/2 (always 2N for
	// power-of-two N) — the grid the radix-2-only planner forced.
	// Kept so spectralbench can A/B the exact-3/2 pipeline against the
	// legacy one on the same plan code.
	PadPow2
)

// Plan2D is a slab-decomposed 2D FFT on an N x N periodic grid. The
// spectral representation holds unnormalized DFT coefficients
// what[ky][kx] distributed by contiguous bands of ky rows; the physical
// representation holds real samples w[x][y] distributed by bands of x
// rows. A round trip Forward(Inverse(spec)) reproduces spec because the
// inverse row transforms carry the 1/N normalization.
//
// The padded pipeline (InversePad/ForwardPad) implements 3/2-rule
// de-aliasing by zero-extension: spectra are padded to an M x M grid
// before going physical, so quadratic products formed there alias only
// into modes the truncation back to N discards. With the mixed-radix
// planner the default grid is the exact bound M = 3N/2 (PadExact): for
// retained modes |k| <= N/2 - 1 a product reaches |k| <= N - 2, and
// wrapping by M sends it to k - M <= -N/2 - 2, outside the retained
// band — no resolved mode is ever polluted, with a third less padded
// work than the legacy power-of-two grid (PadPow2). Both kx = N/2 and
// ky = N/2 Nyquist lines are dropped by the pad and zeroed by the
// truncation; solvers keep them identically zero, which removes the
// +-N/2 derivative ambiguity.
type Plan2D struct {
	N int // spectral grid size (even; slab constraints below)
	M int // de-aliasing grid size (0 when the padded pipeline is off)

	// Begin/End bracket the local-computation phases of each transform
	// for cost accounting (the solver wires its pricing hooks here).
	// The distributed transposes run outside the brackets, so
	// communication time is never charged as compute. Nil hooks are
	// skipped.
	Begin func()
	End   func()

	comm *mpi.Comm
	p    int
	nloc int // N/p: spectral ky rows and physical x rows per rank
	mloc int // M/p: padded physical rows per rank

	planN, planM *fft.Plan
	tNN          *Transposer // N x N, both directions of the unpadded path
	tNM          *Transposer // N ky-rows -> M padded-x rows
	tMN          *Transposer // M padded-x rows -> N ky-rows

	// Reused pipeline slabs (see Inverse/InversePad for the stations).
	sa []complex128 // nloc x N
	sb []complex128 // nloc x N / nloc x M (padded)
	sc []complex128 // mloc x N
	sd []complex128 // mloc x M
}

// NewPlan2D builds the plan for an n x n grid over comm (nil = serial).
// padded selects the exact-3/2 de-aliasing pipeline (PadExact); use
// NewPlan2DPad to pick another mode.
func NewPlan2D(n int, padded bool, comm *mpi.Comm) (*Plan2D, error) {
	mode := PadNone
	if padded {
		mode = PadExact
	}
	return NewPlan2DPad(n, mode, comm)
}

// NewPlan2DPad builds the plan with an explicit pad mode. n must be
// even (the Nyquist pinning needs N/2 integral) and, for PadExact,
// divisible by 4 so M = 3N/2 stays even. Both n and the padded grid M
// must slab-decompose over the rank count.
func NewPlan2DPad(n int, mode PadMode, comm *mpi.Comm) (*Plan2D, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("spectral: grid size %d must be even and >= 2", n)
	}
	pl := &Plan2D{N: n, comm: comm, p: 1}
	if comm != nil {
		pl.p = comm.Size()
	}
	if n%pl.p != 0 {
		return nil, fmt.Errorf("spectral: grid size %d does not slab-decompose over %d ranks", n, pl.p)
	}
	pl.nloc = n / pl.p
	var err error
	if pl.planN, err = fft.NewPlan(n); err != nil {
		return nil, err
	}
	if pl.tNN, err = NewTransposer(n, n, comm); err != nil {
		return nil, err
	}
	pl.sa = make([]complex128, pl.nloc*n)
	if mode == PadNone {
		pl.sb = make([]complex128, pl.nloc*n)
		return pl, nil
	}
	switch mode {
	case PadExact:
		if n%4 != 0 {
			return nil, fmt.Errorf("spectral: exact-3/2 padding needs a grid size divisible by 4, got %d", n)
		}
		pl.M = 3 * n / 2
	case PadPow2:
		pl.M = 1
		for pl.M < 3*n/2 {
			pl.M *= 2
		}
	default:
		return nil, fmt.Errorf("spectral: unknown pad mode %d", mode)
	}
	if pl.M%pl.p != 0 {
		return nil, fmt.Errorf("spectral: padded grid %d (from N=%d) does not slab-decompose over %d ranks (the rank count must divide both N and M)",
			pl.M, n, pl.p)
	}
	pl.mloc = pl.M / pl.p
	if pl.planM, err = fft.NewPlan(pl.M); err != nil {
		return nil, err
	}
	if pl.tNM, err = NewTransposer(n, pl.M, comm); err != nil {
		return nil, err
	}
	if pl.tMN, err = NewTransposer(pl.M, n, comm); err != nil {
		return nil, err
	}
	pl.sb = make([]complex128, pl.nloc*pl.M)
	pl.sc = make([]complex128, pl.mloc*n)
	pl.sd = make([]complex128, pl.mloc*pl.M)
	return pl, nil
}

// SlabRows returns the per-rank row count of the N-grid slabs (spectral
// ky rows and unpadded physical x rows).
func (pl *Plan2D) SlabRows() int { return pl.nloc }

// PadRows returns the per-rank row count of the padded physical slab.
func (pl *Plan2D) PadRows() int { return pl.mloc }

// TransposeBytes returns the global Alltoall payload, in bytes, moved
// by one unpadded transform (Inverse or Forward): the N x N complex
// matrix crosses the wire once.
func (pl *Plan2D) TransposeBytes() int64 { return 16 * int64(pl.N) * int64(pl.N) }

// PadTransposeBytes returns the global Alltoall payload, in bytes,
// moved by one padded half-transform (InversePad or ForwardPad): an
// N x M complex matrix. Shrinking M from 2N to 3N/2 cuts this — and
// the per-destination Transposer blocks behind it — by a quarter.
func (pl *Plan2D) PadTransposeBytes() int64 { return 16 * int64(pl.N) * int64(pl.M) }

func (pl *Plan2D) begin() {
	if pl.Begin != nil {
		pl.Begin()
	}
}

func (pl *Plan2D) end() {
	if pl.End != nil {
		pl.End()
	}
}

// padRow zero-extends a length-N spectral line to length M, preserving
// wavenumber identity: modes k in [0, N/2) keep their index, negative
// modes k in (-N/2, 0) move to the tail slots M+k, and the Nyquist
// line N/2 is dropped. The map needs only M >= N, so it covers the
// exact M = 3N/2 grid and the legacy power-of-two one alike: out[h]
// through out[M-h] (the fine grid's own high modes) stay zero.
func padRow(in, out []complex128, n, m int) {
	for j := range out {
		out[j] = 0
	}
	h := n / 2
	copy(out[:h], in[:h])
	copy(out[m-h+1:], in[h+1:])
}

// truncRow inverts padRow: it keeps the modes the N grid resolves —
// in[:h] and the tail in[m-h+1:], which hold k in [0, h) and (-h, 0)
// for any M >= N — and zeroes the Nyquist line.
func truncRow(in, out []complex128, n, m int) {
	h := n / 2
	copy(out[:h], in[:h])
	out[h] = 0
	copy(out[h+1:], in[m-h+1:])
}

// Inverse transforms a spectral slab (nloc x N, ky rows) to physical
// samples (nloc x N, x rows): inverse row FFTs along kx, a distributed
// transpose, inverse row FFTs along ky, then the real part. Solvers
// evolve Hermitian-symmetric spectra, so the imaginary residue is
// roundoff; discarding it is what keeps quadratic terms real.
func (pl *Plan2D) Inverse(spec []complex128, phys []float64) {
	n, nloc := pl.N, pl.nloc
	sb := pl.sb[:nloc*n]
	pl.begin()
	copy(pl.sa, spec)
	pl.planN.Many(pl.sa, nloc, true)
	pl.end()
	pl.tNN.Transpose(pl.sa, sb)
	pl.begin()
	pl.planN.Many(sb, nloc, true)
	for i, v := range sb {
		phys[i] = real(v)
	}
	pl.end()
}

// Forward transforms a physical slab (nloc x N, x rows) to spectral
// coefficients (nloc x N, ky rows): forward row FFTs along y, a
// distributed transpose, forward row FFTs along x.
func (pl *Plan2D) Forward(phys []float64, spec []complex128) {
	n, nloc := pl.N, pl.nloc
	sb := pl.sb[:nloc*n]
	pl.begin()
	for i, v := range phys {
		sb[i] = complex(v, 0)
	}
	pl.planN.Many(sb, nloc, false)
	pl.end()
	pl.tNN.Transpose(sb, pl.sa)
	pl.begin()
	pl.planN.Many(pl.sa, nloc, false)
	copy(spec, pl.sa)
	pl.end()
}

// InversePad is the de-aliasing half-transform: an nloc x N spectral
// slab comes out as mloc x M physical samples of the same field on the
// fine grid. The (M/N)^2 factor converts the N-grid DFT normalization
// to the M-grid one, so phys holds true field values.
func (pl *Plan2D) InversePad(spec []complex128, phys []float64) {
	n, m, nloc, mloc := pl.N, pl.M, pl.nloc, pl.mloc
	pl.begin()
	for i := 0; i < nloc; i++ {
		padRow(spec[i*n:(i+1)*n], pl.sb[i*m:(i+1)*m], n, m)
	}
	pl.planM.Many(pl.sb, nloc, true)
	pl.end()
	pl.tNM.Transpose(pl.sb, pl.sc)
	scale := float64(m*m) / float64(n*n)
	pl.begin()
	for i := 0; i < mloc; i++ {
		padRow(pl.sc[i*n:(i+1)*n], pl.sd[i*m:(i+1)*m], n, m)
	}
	pl.planM.Many(pl.sd, mloc, true)
	for i, v := range pl.sd {
		phys[i] = real(v) * scale
	}
	pl.end()
}

// ForwardPad closes the de-aliased product path: mloc x M physical
// samples (typically a pointwise product of InversePad outputs) come
// back as an nloc x N spectral slab, with everything beyond the N-grid
// band truncated away and the normalization converted back by (N/M)^2.
func (pl *Plan2D) ForwardPad(phys []float64, spec []complex128) {
	n, m, nloc, mloc := pl.N, pl.M, pl.nloc, pl.mloc
	pl.begin()
	for i, v := range phys {
		pl.sd[i] = complex(v, 0)
	}
	pl.planM.Many(pl.sd, mloc, false)
	for i := 0; i < mloc; i++ {
		truncRow(pl.sd[i*m:(i+1)*m], pl.sc[i*n:(i+1)*n], n, m)
	}
	pl.end()
	pl.tMN.Transpose(pl.sc, pl.sb)
	scale := complex(float64(n*n)/float64(m*m), 0)
	pl.begin()
	pl.planM.Many(pl.sb, nloc, false)
	for i := 0; i < nloc; i++ {
		row := pl.sb[i*m : (i+1)*m]
		out := spec[i*n : (i+1)*n]
		truncRow(row, out, n, m)
		for j := range out {
			out[j] *= scale
		}
	}
	pl.end()
}
