package spectral

import (
	"fmt"

	"nektar/internal/fft"
	"nektar/internal/mpi"
)

// Plan2D is a slab-decomposed 2D FFT on an N x N periodic grid. The
// spectral representation holds unnormalized DFT coefficients
// what[ky][kx] distributed by contiguous bands of ky rows; the physical
// representation holds real samples w[x][y] distributed by bands of x
// rows. A round trip Forward(Inverse(spec)) reproduces spec because the
// inverse row transforms carry the 1/N normalization.
//
// The padded pipeline (InversePad/ForwardPad) implements 3/2-rule
// de-aliasing by zero-extension: spectra are padded to an M x M grid
// before going physical, so quadratic products formed there alias only
// into modes the truncation back to N discards. The radix-2 transforms
// only do power-of-two lengths, so M is the next power of two >= 3N/2 —
// in practice M = 2N, which over-satisfies the 3/2 bound (on the 2N
// grid a product of two N-band fields is resolved exactly, with no
// aliasing at all). Both kx = N/2 and ky = N/2 Nyquist lines are
// dropped by the pad and zeroed by the truncation; solvers keep them
// identically zero, which removes the +-N/2 derivative ambiguity.
type Plan2D struct {
	N int // spectral grid size (power of two)
	M int // de-aliasing grid size (0 when the padded pipeline is off)

	// Begin/End bracket the local-computation phases of each transform
	// for cost accounting (the solver wires its pricing hooks here).
	// The distributed transposes run outside the brackets, so
	// communication time is never charged as compute. Nil hooks are
	// skipped.
	Begin func()
	End   func()

	comm *mpi.Comm
	p    int
	nloc int // N/p: spectral ky rows and physical x rows per rank
	mloc int // M/p: padded physical rows per rank

	planN, planM *fft.Plan
	tNN          *Transposer // N x N, both directions of the unpadded path
	tNM          *Transposer // N ky-rows -> M padded-x rows
	tMN          *Transposer // M padded-x rows -> N ky-rows

	// Reused pipeline slabs (see Inverse/InversePad for the stations).
	sa []complex128 // nloc x N
	sb []complex128 // nloc x N / nloc x M (padded)
	sc []complex128 // mloc x N
	sd []complex128 // mloc x M
}

// NewPlan2D builds the plan for an n x n grid over comm (nil = serial).
// padded additionally builds the de-aliasing pipeline on the M x M
// grid. The rank count must divide n (and is a power of two in every
// simnet configuration, so it divides M too).
func NewPlan2D(n int, padded bool, comm *mpi.Comm) (*Plan2D, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("spectral: grid size %d is not a power of two", n)
	}
	pl := &Plan2D{N: n, comm: comm, p: 1}
	if comm != nil {
		pl.p = comm.Size()
	}
	if n%pl.p != 0 {
		return nil, fmt.Errorf("spectral: grid size %d does not slab-decompose over %d ranks", n, pl.p)
	}
	pl.nloc = n / pl.p
	var err error
	if pl.planN, err = fft.NewPlan(n); err != nil {
		return nil, err
	}
	if pl.tNN, err = NewTransposer(n, n, comm); err != nil {
		return nil, err
	}
	pl.sa = make([]complex128, pl.nloc*n)
	if !padded {
		pl.sb = make([]complex128, pl.nloc*n)
		return pl, nil
	}
	// Next power of two >= 3N/2 is always 2N for power-of-two N.
	pl.M = 2 * n
	pl.mloc = pl.M / pl.p
	if pl.planM, err = fft.NewPlan(pl.M); err != nil {
		return nil, err
	}
	if pl.tNM, err = NewTransposer(n, pl.M, comm); err != nil {
		return nil, err
	}
	if pl.tMN, err = NewTransposer(pl.M, n, comm); err != nil {
		return nil, err
	}
	pl.sb = make([]complex128, pl.nloc*pl.M)
	pl.sc = make([]complex128, pl.mloc*n)
	pl.sd = make([]complex128, pl.mloc*pl.M)
	return pl, nil
}

// SlabRows returns the per-rank row count of the N-grid slabs (spectral
// ky rows and unpadded physical x rows).
func (pl *Plan2D) SlabRows() int { return pl.nloc }

// PadRows returns the per-rank row count of the padded physical slab.
func (pl *Plan2D) PadRows() int { return pl.mloc }

func (pl *Plan2D) begin() {
	if pl.Begin != nil {
		pl.Begin()
	}
}

func (pl *Plan2D) end() {
	if pl.End != nil {
		pl.End()
	}
}

// padRow zero-extends a length-N spectral line to length M, preserving
// wavenumber identity: modes k in [0, N/2) keep their index, negative
// modes move to the tail, and the Nyquist line N/2 is dropped.
func padRow(in, out []complex128, n, m int) {
	for j := range out {
		out[j] = 0
	}
	h := n / 2
	copy(out[:h], in[:h])
	copy(out[m-h+1:], in[h+1:])
}

// truncRow inverts padRow: it keeps the modes the N grid resolves and
// zeroes the Nyquist line.
func truncRow(in, out []complex128, n, m int) {
	h := n / 2
	copy(out[:h], in[:h])
	out[h] = 0
	copy(out[h+1:], in[m-h+1:])
}

// Inverse transforms a spectral slab (nloc x N, ky rows) to physical
// samples (nloc x N, x rows): inverse row FFTs along kx, a distributed
// transpose, inverse row FFTs along ky, then the real part. Solvers
// evolve Hermitian-symmetric spectra, so the imaginary residue is
// roundoff; discarding it is what keeps quadratic terms real.
func (pl *Plan2D) Inverse(spec []complex128, phys []float64) {
	n, nloc := pl.N, pl.nloc
	sb := pl.sb[:nloc*n]
	pl.begin()
	copy(pl.sa, spec)
	for i := 0; i < nloc; i++ {
		pl.planN.Transform(pl.sa[i*n:(i+1)*n], true)
	}
	pl.end()
	pl.tNN.Transpose(pl.sa, sb)
	pl.begin()
	for i := 0; i < nloc; i++ {
		row := sb[i*n : (i+1)*n]
		pl.planN.Transform(row, true)
		for j, v := range row {
			phys[i*n+j] = real(v)
		}
	}
	pl.end()
}

// Forward transforms a physical slab (nloc x N, x rows) to spectral
// coefficients (nloc x N, ky rows): forward row FFTs along y, a
// distributed transpose, forward row FFTs along x.
func (pl *Plan2D) Forward(phys []float64, spec []complex128) {
	n, nloc := pl.N, pl.nloc
	sb := pl.sb[:nloc*n]
	pl.begin()
	for i := 0; i < nloc; i++ {
		row := sb[i*n : (i+1)*n]
		for j := range row {
			row[j] = complex(phys[i*n+j], 0)
		}
		pl.planN.Transform(row, false)
	}
	pl.end()
	pl.tNN.Transpose(sb, pl.sa)
	pl.begin()
	for i := 0; i < nloc; i++ {
		pl.planN.Transform(pl.sa[i*n:(i+1)*n], false)
	}
	copy(spec, pl.sa)
	pl.end()
}

// InversePad is the de-aliasing half-transform: an nloc x N spectral
// slab comes out as mloc x M physical samples of the same field on the
// fine grid. The (M/N)^2 factor converts the N-grid DFT normalization
// to the M-grid one, so phys holds true field values.
func (pl *Plan2D) InversePad(spec []complex128, phys []float64) {
	n, m, nloc, mloc := pl.N, pl.M, pl.nloc, pl.mloc
	pl.begin()
	for i := 0; i < nloc; i++ {
		row := pl.sb[i*m : (i+1)*m]
		padRow(spec[i*n:(i+1)*n], row, n, m)
		pl.planM.Transform(row, true)
	}
	pl.end()
	pl.tNM.Transpose(pl.sb, pl.sc)
	scale := float64(m*m) / float64(n*n)
	pl.begin()
	for i := 0; i < mloc; i++ {
		row := pl.sd[i*m : (i+1)*m]
		padRow(pl.sc[i*n:(i+1)*n], row, n, m)
		pl.planM.Transform(row, true)
		for j, v := range row {
			phys[i*m+j] = real(v) * scale
		}
	}
	pl.end()
}

// ForwardPad closes the de-aliased product path: mloc x M physical
// samples (typically a pointwise product of InversePad outputs) come
// back as an nloc x N spectral slab, with everything beyond the N-grid
// band truncated away and the normalization converted back by (N/M)^2.
func (pl *Plan2D) ForwardPad(phys []float64, spec []complex128) {
	n, m, nloc, mloc := pl.N, pl.M, pl.nloc, pl.mloc
	pl.begin()
	for i := 0; i < mloc; i++ {
		row := pl.sd[i*m : (i+1)*m]
		for j := range row {
			row[j] = complex(phys[i*m+j], 0)
		}
		pl.planM.Transform(row, false)
		truncRow(row, pl.sc[i*n:(i+1)*n], n, m)
	}
	pl.end()
	pl.tMN.Transpose(pl.sc, pl.sb)
	scale := complex(float64(n*n)/float64(m*m), 0)
	pl.begin()
	for i := 0; i < nloc; i++ {
		row := pl.sb[i*m : (i+1)*m]
		pl.planM.Transform(row, false)
		out := spec[i*n : (i+1)*n]
		truncRow(row, out, n, m)
		for j := range out {
			out[j] *= scale
		}
	}
	pl.end()
}
