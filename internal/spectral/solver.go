package spectral

import (
	"fmt"
	"math"

	"nektar/internal/blas"
	"nektar/internal/engine"
	"nektar/internal/fft"
	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/timing"
)

// Config describes a 2D homogeneous-turbulence run on the [0,2pi)^2
// periodic box with integer wavenumbers and nu = 1/Re.
type Config struct {
	N    int     // grid size per direction (>= 8, divisible by 4, 5-smooth)
	Re   float64 // Reynolds number; viscosity is 1/Re
	Dt   float64 // time step
	K0   float64 // PAO initial-spectrum peak wavenumber (default 6)
	E0   float64 // initial kinetic energy (default 1)
	Seed uint64  // deterministic phase seed for init and forcing

	// Forced selects the white-noise-forced variant (NewForced sets it):
	// the Basdevant 4-FFT nonlinear term with 2/3-rule truncation and a
	// banded stochastic injection each step. The decaying variant uses
	// the convective form de-aliased by 3/2-rule padding instead, so the
	// two solvers exercise both classic de-aliasing strategies.
	Forced   bool
	ForceLo  int // forcing shell band, lo <= round(|k|) <= hi
	ForceHi  int
	ForceAmp float64 // injection amplitude (default 0.1)

	// DiagEvery emits energy-spectrum and dissipation trace events every
	// so many steps (0 disables). In a parallel run the shell sums are a
	// collective Allreduce, entered by every rank at the same cadence
	// whether or not a tracer is attached; only rank 0 emits.
	DiagEvery int
}

// StageNames are the per-step accounting stages both solvers charge:
// spectral-to-physical transforms (including the Alltoall transposes),
// the pointwise products, the return transforms, the Crank-Nicolson
// update with forcing, and the diagnostics collective.
var StageNames = []string{"to-phys", "convolve", "to-spec", "update", "diag"}

// Turb2D is one rank's slab of the pseudospectral vorticity solver
//
//	dw/dt + u.grad(w) = nu Lap(w) + f,  u = curl^-1(w),
//
// advanced by Crank-Nicolson on the viscous term and second-order
// Adams-Bashforth on the advection (forward Euler on the first step).
// The spectral state w holds unnormalized DFT coefficients of the
// vorticity over this rank's band of ky rows; both Nyquist lines are
// kept identically zero. Trajectories are bit-identical across rank
// counts: initialization and forcing derive every mode from a hash of
// its global index, and all arithmetic is either local to a mode or a
// pure data-movement transpose.
type Turb2D struct {
	Cfg      Config
	Comm     *mpi.Comm
	CPUModel *machine.CPU

	// Trace receives the spectrum/dissipation diagnostic events (rank 0
	// only); the step loop's own tracer is wired separately by the
	// engine. DiagEvery in the config gates the cadence.
	Trace *engine.Tracer

	nu   float64
	p    int
	rank int
	nloc int
	kmax int // 2/3-rule cutoff (forced variant; 0 means padded de-aliasing)

	w     []complex128 // spectral vorticity, nloc x N row-major
	prevN []complex128 // previous advection term for AB2
	step  int

	plan   *Plan2D
	stages *timing.Stages
	clk    stageClock
	rec    blas.Counts

	specA, specB               []complex128
	physU, physV, physA, physB []float64
	physC                      []float64
	diag                       []float64
}

var _ engine.Solver = (*Turb2D)(nil)

// NewTurb2D builds one rank of the decaying solver: PAO random-field
// initialization, convective-form nonlinear term de-aliased by 3/2-rule
// zero padding. comm may be nil (serial); cpu may be nil (unpriced).
func NewTurb2D(cfg Config, comm *mpi.Comm, cpu *machine.CPU) (*Turb2D, error) {
	cfg.Forced = false
	return newSolver(cfg, comm, cpu)
}

// NewForced builds one rank of the forced solver: white-noise banded
// injection and the Basdevant 4-FFT nonlinear term under 2/3-rule
// truncation. Zero band/amplitude fields take the defaults (shell 3..5
// at amplitude 0.1).
func NewForced(cfg Config, comm *mpi.Comm, cpu *machine.CPU) (*Turb2D, error) {
	cfg.Forced = true
	if cfg.ForceLo == 0 && cfg.ForceHi == 0 {
		cfg.ForceLo, cfg.ForceHi = 3, 5
	}
	if cfg.ForceAmp == 0 {
		cfg.ForceAmp = 0.1
	}
	return newSolver(cfg, comm, cpu)
}

func newSolver(cfg Config, comm *mpi.Comm, cpu *machine.CPU) (*Turb2D, error) {
	// The planner accepts any length, but the hot path should never hit
	// its generic-prime fallback, and the exact-3/2 padded grid M = 3N/2
	// must stay even — hence: divisible by 4 with only {2,3,5} factors.
	if cfg.N < 8 || cfg.N%4 != 0 || !fft.Smooth5(cfg.N) {
		return nil, fmt.Errorf("spectral: grid size %d must be >= 8, divisible by 4, and factor into powers of 2, 3, and 5 (e.g. 8, 12, 16, 20, 24, 32, 36, 40, 48, 60, 64)", cfg.N)
	}
	if cfg.Re <= 0 {
		return nil, fmt.Errorf("spectral: Reynolds number %g must be positive", cfg.Re)
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("spectral: time step %g must be positive", cfg.Dt)
	}
	if cfg.K0 == 0 {
		cfg.K0 = 6
	}
	if cfg.E0 == 0 {
		cfg.E0 = 1
	}
	s := &Turb2D{Cfg: cfg, Comm: comm, CPUModel: cpu, nu: 1 / cfg.Re, p: 1}
	if comm != nil {
		s.p, s.rank = comm.Size(), comm.Rank()
	}
	if cfg.N%s.p != 0 {
		return nil, fmt.Errorf("spectral: grid size %d does not slab-decompose over %d ranks", cfg.N, s.p)
	}
	s.nloc = cfg.N / s.p
	if cfg.Forced {
		s.kmax = cfg.N / 3
		if cfg.ForceLo < 1 || cfg.ForceLo >= cfg.ForceHi || cfg.ForceHi > s.kmax {
			return nil, fmt.Errorf("spectral: forcing band [%d, %d] must satisfy 1 <= lo < hi <= N/3 = %d",
				cfg.ForceLo, cfg.ForceHi, s.kmax)
		}
		if cfg.ForceAmp <= 0 {
			return nil, fmt.Errorf("spectral: forcing amplitude %g must be positive", cfg.ForceAmp)
		}
	}
	var err error
	if s.plan, err = NewPlan2D(cfg.N, !cfg.Forced, comm); err != nil {
		return nil, err
	}
	s.plan.Begin = s.beginCompute
	s.plan.End = s.endCompute
	n := cfg.N
	s.w = make([]complex128, s.nloc*n)
	s.prevN = make([]complex128, s.nloc*n)
	s.specA = make([]complex128, s.nloc*n)
	s.specB = make([]complex128, s.nloc*n)
	np := s.nloc * n
	if !cfg.Forced {
		np = s.plan.PadRows() * s.plan.M
	}
	s.physU = make([]float64, np)
	s.physV = make([]float64, np)
	s.physA = make([]float64, np)
	s.physB = make([]float64, np)
	s.physC = make([]float64, np)
	s.diag = make([]float64, n/2+3)
	s.stages = timing.NewStages(StageNames...)
	now := func() float64 { return 0 }
	if comm != nil {
		now = comm.Wtime
	}
	s.clk = newStageClock(s.stages, now)
	s.initPAO()
	return s, nil
}

// Stages implements engine.Solver.
func (s *Turb2D) Stages() *timing.Stages { return s.stages }

// StepCount implements engine.Solver.
func (s *Turb2D) StepCount() int { return s.step }

// Field returns a copy of this rank's spectral vorticity slab (the
// nloc x N band of ky rows), for tests and offline analysis.
func (s *Turb2D) Field() []complex128 {
	return append([]complex128(nil), s.w...)
}

// HealthSample implements engine.Solver: the largest coefficient
// magnitude component over the local slab, and whether all are finite.
func (s *Turb2D) HealthSample() (float64, bool) {
	maxAbs, finite := 0.0, true
	for _, v := range s.w {
		re, im := math.Abs(real(v)), math.Abs(imag(v))
		if re > maxAbs {
			maxAbs = re
		}
		if im > maxAbs {
			maxAbs = im
		}
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			finite = false
		}
	}
	return maxAbs, finite
}

// kAt maps a DFT index to its signed wavenumber on an n grid.
func kAt(j, n int) int {
	if j <= n/2 {
		return j
	}
	return j - n
}

// mix64 is splitmix64's finalizer: the deterministic hash behind every
// random phase, so initialization and forcing depend only on (seed,
// step, global mode index) — never on the rank count or iteration
// order.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// phase01 maps a hash to [0, 1).
func phase01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// inBand reports whether the mode survives this solver's de-aliasing
// band: Nyquist lines are always out; the forced variant additionally
// truncates by the 2/3 rule (|k| <= floor(N/3) per direction).
func (s *Turb2D) inBand(kx, ky int) bool {
	h := s.Cfg.N / 2
	if kx == h || ky == h || kx == -h || ky == -h {
		return false
	}
	if s.kmax > 0 && (kx > s.kmax || kx < -s.kmax || ky > s.kmax || ky < -s.kmax) {
		return false
	}
	return true
}

// paoAmp is the PAO-style initial amplitude shape |what(k)| ~ k^2
// exp(-(k/k0)^2), which peaks the energy spectrum near k0.
func paoAmp(k, k0 float64) float64 {
	return k * k * math.Exp(-(k/k0)*(k/k0))
}

// initPAO fills the slab with the random-phase PAO field. Every rank
// walks ALL global modes in row-major order to accumulate the energy
// normalization, so the resulting bits are independent of the
// decomposition; only the local band is stored. Hermitian symmetry
// (physical-real vorticity) is imposed by hashing the phase of each
// conjugate pair's canonical member — the one with the smaller global
// row-major index — and conjugating for the partner.
func (s *Turb2D) initPAO() {
	n, k0 := s.Cfg.N, s.Cfg.K0
	sumE := 0.0
	for g := 0; g < n; g++ {
		ky := kAt(g, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			if (kx == 0 && ky == 0) || !s.inBand(kx, ky) {
				continue
			}
			k2 := float64(kx*kx + ky*ky)
			a := paoAmp(math.Sqrt(k2), k0)
			sumE += a * a / (2 * k2)
		}
	}
	// Total kinetic energy is sum |what|^2 / (2 k^2 N^4); scale to E0.
	norm := float64(n) * float64(n) * math.Sqrt(s.Cfg.E0/sumE)
	for i := 0; i < s.nloc; i++ {
		g := s.rank*s.nloc + i
		ky := kAt(g, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			idx := i*n + j
			if (kx == 0 && ky == 0) || !s.inBand(kx, ky) {
				s.w[idx] = 0
				continue
			}
			gidx := uint64(g*n + j)
			pidx := uint64(((n-g)%n)*n + (n-j)%n)
			canon := gidx
			if pidx < canon {
				canon = pidx
			}
			theta := 2 * math.Pi * phase01(mix64(s.Cfg.Seed^mix64(canon+1)))
			k2 := float64(kx*kx + ky*ky)
			a := norm * paoAmp(math.Sqrt(k2), k0)
			val := complex(a*math.Cos(theta), a*math.Sin(theta))
			if gidx != canon {
				val = complex(real(val), -imag(val))
			}
			s.w[idx] = val
		}
	}
}

// beginCompute starts pricing a communication-free computation section;
// a no-op in validation mode (CPUModel nil).
func (s *Turb2D) beginCompute() {
	if s.CPUModel == nil {
		return
	}
	s.rec = blas.Counts{}
	blas.StartRecording(&s.rec)
}

// endCompute stops recording, advances the simulated clock by the
// priced duration of the section, and charges the active stage.
func (s *Turb2D) endCompute() {
	if s.CPUModel == nil {
		return
	}
	blas.StopRecording()
	dt := s.CPUModel.ApplicationSeconds(&s.rec)
	s.Comm.Compute(dt)
	s.stages.AddPriced(&s.rec, dt)
}

// recordPointwise accounts n complex-pointwise spectral operations
// (roughly 6 flops and 32 bytes each) as daxpy-class streaming work, so
// the mode loops the BLAS layer never sees still reach the cost model.
func recordPointwise(n int) {
	var c blas.Counts
	c.Ops[blas.KernelDaxpy] = blas.Op{Calls: 1, N: int64(n), Flops: int64(6 * n), Bytes: int64(32 * n)}
	blas.RecordExternal(&c)
}

// velocities fills specA/specB with uhat/vhat from the streamfunction
// relation u = curl^-1(w): uhat = i ky what / k^2, vhat = -i kx what /
// k^2 (zero mean mode, zero outside the band).
func (s *Turb2D) velocities() {
	n := s.Cfg.N
	for i := 0; i < s.nloc; i++ {
		ky := kAt(s.rank*s.nloc+i, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			idx := i*n + j
			if (kx == 0 && ky == 0) || !s.inBand(kx, ky) {
				s.specA[idx], s.specB[idx] = 0, 0
				continue
			}
			ik2 := 1 / float64(kx*kx+ky*ky)
			iw := complex(-imag(s.w[idx]), real(s.w[idx])) // i * what
			s.specA[idx] = complex(float64(ky)*ik2, 0) * iw
			s.specB[idx] = complex(-float64(kx)*ik2, 0) * iw
		}
	}
	recordPointwise(s.nloc * n)
}

// Step implements engine.Solver: one collective time step.
func (s *Turb2D) Step() {
	if s.Cfg.Forced {
		s.stepBasdevant()
	} else {
		s.stepConvective()
	}
	s.clk.mark(3)
	s.beginCompute()
	s.update()
	s.endCompute()
	s.step++
	s.clk.mark(4)
	s.diagnose()
	s.clk.mark(-1)
}

// stepConvective computes the advection term u.grad(w) in specB via the
// convective form on the 3/2-padded grid: four padded inverse
// transforms (u, v, dw/dx, dw/dy), one pointwise product, one padded
// forward transform. The padding makes the quadratic products exactly
// alias-free after truncation.
func (s *Turb2D) stepConvective() {
	n := s.Cfg.N
	s.clk.mark(0)
	s.beginCompute()
	s.velocities()
	s.endCompute()
	s.plan.InversePad(s.specA, s.physU)
	s.plan.InversePad(s.specB, s.physV)
	s.beginCompute()
	for i := 0; i < s.nloc; i++ {
		ky := kAt(s.rank*s.nloc+i, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			idx := i*n + j
			w := s.w[idx]
			iw := complex(-imag(w), real(w)) // i * what
			s.specA[idx] = complex(float64(kx), 0) * iw
			s.specB[idx] = complex(float64(ky), 0) * iw
		}
	}
	recordPointwise(s.nloc * n)
	s.endCompute()
	s.plan.InversePad(s.specA, s.physA)
	s.plan.InversePad(s.specB, s.physB)

	s.clk.mark(1)
	s.beginCompute()
	np := len(s.physU)
	blas.Dvmul(np, s.physU, 1, s.physA, 1, s.physC, 1)
	blas.Dvmul(np, s.physV, 1, s.physB, 1, s.physA, 1)
	blas.Daxpy(np, 1, s.physA, 1, s.physC, 1)
	s.endCompute()

	s.clk.mark(2)
	s.plan.ForwardPad(s.physC, s.specB)
}

// stepBasdevant computes the advection term in specB with Basdevant's
// 4-transform form under 2/3-rule truncation:
//
//	u.grad(w) = dxdy(v^2 - u^2) + (dxx - dyy)(u v)
//
// which needs only two inverse transforms (u, v) and two forward
// transforms (the two products) per step, at the cost of the sharper
// truncation band.
func (s *Turb2D) stepBasdevant() {
	n := s.Cfg.N
	s.clk.mark(0)
	s.beginCompute()
	s.velocities()
	s.endCompute()
	s.plan.Inverse(s.specA, s.physU)
	s.plan.Inverse(s.specB, s.physV)

	s.clk.mark(1)
	s.beginCompute()
	np := len(s.physU)
	blas.Dvmul(np, s.physV, 1, s.physV, 1, s.physA, 1)
	blas.Dvmul(np, s.physU, 1, s.physU, 1, s.physC, 1)
	blas.Daxpy(np, -1, s.physC, 1, s.physA, 1) // v^2 - u^2
	blas.Dvmul(np, s.physU, 1, s.physV, 1, s.physB, 1)
	s.endCompute()

	s.clk.mark(2)
	s.plan.Forward(s.physA, s.specA)
	s.plan.Forward(s.physB, s.specB)
	s.beginCompute()
	for i := 0; i < s.nloc; i++ {
		ky := kAt(s.rank*s.nloc+i, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			idx := i*n + j
			if !s.inBand(kx, ky) {
				s.specB[idx] = 0
				continue
			}
			fk := float64(kx * ky)
			gk := float64(ky*ky - kx*kx)
			s.specB[idx] = complex(-fk, 0)*s.specA[idx] + complex(gk, 0)*s.specB[idx]
		}
	}
	recordPointwise(s.nloc * n)
	s.endCompute()
}

// update applies the Crank-Nicolson / Adams-Bashforth step to the
// spectral vorticity, using the advection term left in specB, then the
// white-noise injection for the forced variant. The coefficients are
// forward Euler on the first step (no history yet), AB2 after.
func (s *Turb2D) update() {
	n, dt := s.Cfg.N, s.Cfg.Dt
	c1, c2 := 1.5, -0.5
	if s.step == 0 {
		c1, c2 = 1.0, 0.0
	}
	for i := 0; i < s.nloc; i++ {
		ky := kAt(s.rank*s.nloc+i, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			idx := i*n + j
			adv := s.specB[idx]
			visc := s.nu * float64(kx*kx+ky*ky)
			num := complex(1-0.5*dt*visc, 0)*s.w[idx] -
				complex(dt, 0)*(complex(c1, 0)*adv+complex(c2, 0)*s.prevN[idx])
			s.w[idx] = num / complex(1+0.5*dt*visc, 0)
			s.prevN[idx] = adv
		}
	}
	recordPointwise(s.nloc * n)
	if s.Cfg.Forced {
		s.force()
	}
}

// force adds the white-noise banded injection: every mode whose shell
// round(|k|) falls in [lo, hi] receives amp*sqrt(dt)*exp(i theta) with
// theta hashed from (seed, step, canonical mode index) — deterministic,
// Hermitian-symmetric, and restart-safe because the step number keys
// the hash.
func (s *Turb2D) force() {
	n := s.Cfg.N
	amp := s.Cfg.ForceAmp * math.Sqrt(s.Cfg.Dt)
	stepKey := mix64(s.Cfg.Seed ^ mix64(uint64(s.step)+0x9e3779b97f4a7c15))
	for i := 0; i < s.nloc; i++ {
		g := s.rank*s.nloc + i
		ky := kAt(g, n)
		for j := 0; j < n; j++ {
			kx := kAt(j, n)
			if (kx == 0 && ky == 0) || !s.inBand(kx, ky) {
				continue
			}
			shell := int(math.Sqrt(float64(kx*kx+ky*ky)) + 0.5)
			if shell < s.Cfg.ForceLo || shell > s.Cfg.ForceHi {
				continue
			}
			gidx := uint64(g*n + j)
			pidx := uint64(((n-g)%n)*n + (n-j)%n)
			canon := gidx
			if pidx < canon {
				canon = pidx
			}
			theta := 2 * math.Pi * phase01(mix64(stepKey^mix64(canon+1)))
			val := complex(amp*math.Cos(theta), amp*math.Sin(theta))
			if gidx != canon {
				val = complex(real(val), -imag(val))
			}
			s.w[i*n+j] += val
		}
	}
	recordPointwise(s.nloc * n)
}
