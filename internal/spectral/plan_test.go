package spectral

import (
	"math"
	"testing"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// randPhys is a deterministic real field on an n x n grid.
func randPhys(n int) []float64 {
	x := make([]float64, n*n)
	for i := range x {
		x[i] = 2*phase01(mix64(uint64(i)+99)) - 1
	}
	return x
}

func TestPlan2DRoundTrip(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		pl, err := NewPlan2D(n, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		phys := randPhys(n)
		spec := make([]complex128, n*n)
		back := make([]float64, n*n)
		pl.Forward(phys, spec)
		pl.Inverse(spec, back)
		for i := range phys {
			if math.Abs(back[i]-phys[i]) > 1e-12 {
				t.Fatalf("n=%d round trip error %g at %d", n, back[i]-phys[i], i)
			}
		}
	}
}

// bandLimitedSpec builds a Hermitian-symmetric spectrum with zero
// Nyquist lines (the invariant the solvers maintain), via the PAO
// initializer of a throwaway solver.
func bandLimitedSpec(t *testing.T, n int) []complex128 {
	t.Helper()
	s, err := NewTurb2D(Config{N: n, Re: 100, Dt: 1e-3, Seed: 7}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s.Field()
}

// TestPlan2DPadRoundTrip: padding to the fine grid and truncating back
// is the identity on band-limited spectra (the fine grid resolves every
// retained mode exactly).
func TestPlan2DPadRoundTrip(t *testing.T) {
	const n = 16
	pl, err := NewPlan2D(n, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := bandLimitedSpec(t, n)
	phys := make([]float64, pl.PadRows()*pl.M)
	back := make([]complex128, n*n)
	pl.InversePad(spec, phys)
	pl.ForwardPad(phys, back)
	maxAmp := 0.0
	for _, v := range spec {
		if a := real(v)*real(v) + imag(v)*imag(v); a > maxAmp {
			maxAmp = a
		}
	}
	tol := 1e-12 * math.Sqrt(maxAmp)
	for i := range spec {
		d := back[i] - spec[i]
		if math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
			t.Fatalf("pad round trip error %g at %d (tol %g)", d, i, tol)
		}
	}
}

// TestPlan2DExactPadGrid: the padded pipeline allocates the exact
// 3/2-rule grid, not the legacy power-of-two round-up, and the two pad
// modes agree on what de-aliasing means: padding a band-limited
// spectrum out and truncating back is the identity on both grids, and
// the de-aliased product of two band-limited fields matches between
// M = 3N/2 and M = 2N to roundoff (both grids resolve every product
// mode the truncation keeps).
func TestPlan2DExactPadGrid(t *testing.T) {
	const n = 16
	exact, err := NewPlan2DPad(n, PadExact, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact.M != 3*n/2 {
		t.Fatalf("PadExact M = %d, want %d", exact.M, 3*n/2)
	}
	pow2, err := NewPlan2DPad(n, PadPow2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pow2.M != 2*n {
		t.Fatalf("PadPow2 M = %d, want %d", pow2.M, 2*n)
	}
	if eb, pb := exact.PadTransposeBytes(), pow2.PadTransposeBytes(); eb*4 != pb*3 {
		t.Fatalf("transpose payloads %d vs %d are not in the 3:4 ratio", eb, pb)
	}

	specA := bandLimitedSpec(t, n)
	specB := make([]complex128, n*n)
	// A second independent band-limited field: conjugate-symmetric
	// scramble of the first via the solver with another seed.
	s2, err := NewTurb2D(Config{N: n, Re: 80, Dt: 1e-3, Seed: 123}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	copy(specB, s2.Field())

	product := func(pl *Plan2D) []complex128 {
		pa := make([]float64, pl.PadRows()*pl.M)
		pb := make([]float64, pl.PadRows()*pl.M)
		pl.InversePad(specA, pa)
		pl.InversePad(specB, pb)
		for i := range pa {
			pa[i] *= pb[i]
		}
		out := make([]complex128, n*n)
		pl.ForwardPad(pa, out)
		return out
	}
	got := product(exact)
	want := product(pow2)
	maxAmp := 0.0
	for _, v := range want {
		if a := math.Hypot(real(v), imag(v)); a > maxAmp {
			maxAmp = a
		}
	}
	for i := range want {
		d := got[i] - want[i]
		if math.Abs(real(d)) > 1e-10*maxAmp || math.Abs(imag(d)) > 1e-10*maxAmp {
			t.Fatalf("de-aliased product differs between exact-3/2 and pow2 grids at %d: %g (scale %g)", i, d, maxAmp)
		}
	}
}

// TestPlan2DMixedRadixGrids: the unpadded and padded pipelines work on
// the non-power-of-two grid sizes the mixed-radix planner unlocks.
func TestPlan2DMixedRadixGrids(t *testing.T) {
	for _, n := range []int{12, 20, 24, 36, 40, 48} {
		pl, err := NewPlan2D(n, true, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if pl.M != 3*n/2 {
			t.Fatalf("n=%d: M = %d, want %d", n, pl.M, 3*n/2)
		}
		phys := randPhys(n)
		spec := make([]complex128, n*n)
		back := make([]float64, n*n)
		pl.Forward(phys, spec)
		pl.Inverse(spec, back)
		for i := range phys {
			if math.Abs(back[i]-phys[i]) > 1e-11 {
				t.Fatalf("n=%d round trip error %g at %d", n, back[i]-phys[i], i)
			}
		}
	}
}

// TestPlan2DRejectsBadShapes: odd grids, exact-pad grids not divisible
// by 4, and rank counts that divide N but not M all fail loudly.
func TestPlan2DRejectsBadShapes(t *testing.T) {
	if _, err := NewPlan2D(15, false, nil); err == nil {
		t.Fatal("odd grid accepted")
	}
	if _, err := NewPlan2DPad(18, PadExact, nil); err == nil {
		t.Fatal("exact-3/2 pad of an N % 4 != 0 grid accepted (M would be odd)")
	}
	if _, err := NewPlan2DPad(16, PadMode(99), nil); err == nil {
		t.Fatal("unknown pad mode accepted")
	}
}

// TestPlan2DParallelMatchesSerial: the slab-parallel pipelines must be
// bit-identical to serial — same per-row transforms, transposes are
// pure data movement.
func TestPlan2DParallelMatchesSerial(t *testing.T) {
	const n, p = 16, 4
	spec := bandLimitedSpec(t, n)

	serU, err := NewPlan2D(n, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPad := make([]float64, serU.PadRows()*serU.M)
	serU.InversePad(spec, wantPad)
	wantSpec := make([]complex128, n*n)
	serU.ForwardPad(wantPad, wantSpec)
	wantPhys := make([]float64, n*n)
	serU.Inverse(spec, wantPhys)

	nloc := n / p
	gotPad := make([][]float64, p)
	gotSpec := make([][]complex128, p)
	gotPhys := make([][]float64, p)
	_, _, err = simnet.Run(p, machine.Muses().Net, func(nd *simnet.Node) {
		comm := mpi.World(nd)
		pl, err := NewPlan2D(n, true, comm)
		if err != nil {
			panic(err)
		}
		slab := spec[nd.Rank*nloc*n : (nd.Rank+1)*nloc*n]
		pad := make([]float64, pl.PadRows()*pl.M)
		pl.InversePad(slab, pad)
		sp := make([]complex128, nloc*n)
		pl.ForwardPad(pad, sp)
		phys := make([]float64, nloc*n)
		pl.Inverse(slab, phys)
		gotPad[nd.Rank], gotSpec[nd.Rank], gotPhys[nd.Rank] = pad, sp, phys
	})
	if err != nil {
		t.Fatal(err)
	}
	mloc := serU.M / p
	for r := 0; r < p; r++ {
		for i, v := range gotPad[r] {
			if want := wantPad[r*mloc*serU.M+i]; want != v {
				t.Fatalf("rank %d padded phys differs at %d: %g vs %g", r, i, v, want)
			}
		}
		for i, v := range gotSpec[r] {
			if want := wantSpec[r*nloc*n+i]; want != v {
				t.Fatalf("rank %d spec differs at %d", r, i)
			}
		}
		for i, v := range gotPhys[r] {
			if want := wantPhys[r*nloc*n+i]; want != v {
				t.Fatalf("rank %d phys differs at %d", r, i)
			}
		}
	}
}
