package spectral

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// fill gives a deterministic dense test matrix.
func fillMatrix(rows, cols int) []complex128 {
	m := make([]complex128, rows*cols)
	for i := range m {
		h := mix64(uint64(i) + 0x1234)
		m[i] = complex(phase01(h), phase01(mix64(h)))
	}
	return m
}

func TestTransposerSerial(t *testing.T) {
	const rows, cols = 8, 16
	tr, err := NewTransposer(rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := NewTransposer(cols, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := fillMatrix(rows, cols)
	out := make([]complex128, cols*rows)
	tr.Transpose(in, out)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if out[j*rows+i] != in[i*cols+j] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	rt := make([]complex128, rows*cols)
	back.Transpose(out, rt)
	for i := range in {
		if rt[i] != in[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestTransposerRejectsBadDecomposition(t *testing.T) {
	if _, err := NewTransposer(0, 4, nil); err == nil {
		t.Fatal("want error for zero rows")
	}
	_, _, err := simnet.Run(4, machine.Muses().Net, func(n *simnet.Node) {
		if _, err := NewTransposer(6, 8, mpi.World(n)); err == nil {
			panic("want error: 6 rows do not decompose over 4 ranks")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTransposerParallelMatchesSerial checks the distributed exchange
// assembles exactly the serial transpose, slab by slab.
func TestTransposerParallelMatchesSerial(t *testing.T) {
	const rows, cols, p = 8, 16, 4
	in := fillMatrix(rows, cols)
	ser, err := NewTransposer(rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, cols*rows)
	ser.Transpose(in, want)

	got := make([][]complex128, p)
	_, _, err = simnet.Run(p, machine.Muses().Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		tr, err := NewTransposer(rows, cols, comm)
		if err != nil {
			panic(err)
		}
		rloc, cloc := rows/p, cols/p
		slab := in[n.Rank*rloc*cols : (n.Rank+1)*rloc*cols]
		out := make([]complex128, cloc*rows)
		tr.Transpose(slab, out)
		got[n.Rank] = out
	})
	if err != nil {
		t.Fatal(err)
	}
	cloc := cols / p
	for r := 0; r < p; r++ {
		for i, v := range got[r] {
			if want[r*cloc*rows+i] != v {
				t.Fatalf("rank %d slab mismatch at %d", r, i)
			}
		}
	}
}

func hashSlab(s []complex128) string {
	h := sha256.New()
	var b [8]byte
	for _, v := range s {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(real(v)))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(imag(v)))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestTransposerP64Models drives the transposer at P=64 under the PMS
// and Tanaka interconnect models with both the serial and the
// host-parallel conservative scheduler: a few transpose round trips
// must leave bit-identical slabs either way. This is the capacity
// configuration the spectral solvers rely on for the paper-scale
// sweeps.
func TestTransposerP64Models(t *testing.T) {
	const n, p, trips = 64, 64, 3
	full := fillMatrix(n, n)
	models := []struct {
		name string
		mach *machine.Machine
	}{
		{"pms", machine.PMS()},
		{"tanaka", machine.Tanaka()},
	}
	for _, mc := range models {
		var ref []string
		for _, sched := range []simnet.Scheduler{simnet.SchedSerial, simnet.SchedParallel} {
			model := *mc.mach.Net
			model.Scheduler = sched
			hashes := make([]string, p)
			_, _, err := simnet.Run(p, &model, func(nd *simnet.Node) {
				comm := mpi.World(nd)
				fwd, err := NewTransposer(n, n, comm)
				if err != nil {
					panic(err)
				}
				rloc := n / p
				slab := append([]complex128(nil), full[nd.Rank*rloc*n:(nd.Rank+1)*rloc*n]...)
				tmp := make([]complex128, rloc*n)
				for k := 0; k < trips; k++ {
					fwd.Transpose(slab, tmp)
					slab, tmp = tmp, slab
				}
				hashes[nd.Rank] = hashSlab(slab)
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", mc.name, sched, err)
			}
			if ref == nil {
				ref = hashes
				continue
			}
			for r := range hashes {
				if hashes[r] != ref[r] {
					t.Fatalf("%s: rank %d slab hash differs between schedulers", mc.name, r)
				}
			}
		}
	}
}
