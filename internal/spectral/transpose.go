// Package spectral implements slab-parallel pseudospectral solvers for
// two-dimensional homogeneous turbulence on the simulated cluster: a
// decaying solver (PAO random-field initialization, 3/2-rule
// de-aliasing, Crank–Nicolson viscous step) and a white-noise-forced
// variant using the Basdevant 4-FFT-per-stage nonlinear term. Both
// implement engine.Solver, so checkpointing, corruption-aware recovery,
// the health watchdog, and supervision come for free.
//
// The parallel decomposition is the classic slab transpose: each rank
// owns a contiguous band of spectral rows, one-dimensional FFTs run
// locally along the in-rank direction, and a distributed matrix
// transpose over MPI_Alltoall rotates the decomposition so the other
// direction becomes local. This gives the repository a second genuine
// Alltoall-dominated application beyond Nektar-F — the communication
// pattern the source paper's weak-scaling argument lives or dies on.
package spectral

import (
	"fmt"

	"nektar/internal/mpi"
)

// Transposer redistributes a row-decomposed Rows x Cols complex matrix
// into the row decomposition of its transpose (Cols x Rows). Each of
// the P ranks owns Rows/P contiguous rows of the input and Cols/P
// contiguous rows of the output. A nil communicator gives the serial
// fallback (P = 1): a plain local transpose, bit-identical to what the
// distributed path assembles, which is what the serial-vs-slab
// differential tests compare against.
//
// The exchange is one MPI_Alltoall of equal blocks: rank r sends rank j
// the sub-block (r's rows) x (j's output rows), packed column-major so
// the receiver scatters incoming blocks straight into its output rows.
// Send buffers are retained across calls, so a steady-state transpose
// allocates only what the MPI layer itself allocates for receives.
type Transposer struct {
	Rows, Cols int // global matrix shape (input rows are distributed)

	comm       *mpi.Comm
	p, rank    int
	rloc, cloc int // Rows/p and Cols/p

	send [][]float64 // reused per-destination pack buffers
}

// NewTransposer validates the decomposition and builds a transposer.
// Both dimensions must divide evenly over the communicator size; with a
// nil communicator the transposer is serial.
func NewTransposer(rows, cols int, comm *mpi.Comm) (*Transposer, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("spectral: transposer needs positive dimensions, got %dx%d", rows, cols)
	}
	t := &Transposer{Rows: rows, Cols: cols, comm: comm, p: 1}
	if comm != nil {
		t.p, t.rank = comm.Size(), comm.Rank()
	}
	if rows%t.p != 0 || cols%t.p != 0 {
		return nil, fmt.Errorf("spectral: %dx%d matrix does not slab-decompose over %d ranks (both dimensions must divide evenly)",
			rows, cols, t.p)
	}
	t.rloc, t.cloc = rows/t.p, cols/t.p
	if t.p > 1 {
		t.send = make([][]float64, t.p)
		for j := range t.send {
			t.send[j] = make([]float64, 2*t.rloc*t.cloc)
		}
	}
	return t, nil
}

// Transpose redistributes in (this rank's rloc x Cols slab, row-major)
// into out (this rank's cloc x Rows slab of the transposed matrix).
// The two slices must not alias.
func (t *Transposer) Transpose(in, out []complex128) {
	if len(in) != t.rloc*t.Cols || len(out) != t.cloc*t.Rows {
		panic(fmt.Sprintf("spectral: transpose slab sizes %d/%d, want %d/%d",
			len(in), len(out), t.rloc*t.Cols, t.cloc*t.Rows))
	}
	if t.p == 1 {
		for i := 0; i < t.Rows; i++ {
			row := in[i*t.Cols : (i+1)*t.Cols]
			for j, v := range row {
				out[j*t.Rows+i] = v
			}
		}
		return
	}
	// Pack: block for rank j holds my rows restricted to j's output
	// rows (columns j*cloc..), column-major so the receive side scatters
	// rows contiguously.
	for j := 0; j < t.p; j++ {
		buf := t.send[j]
		for cl := 0; cl < t.cloc; cl++ {
			c := j*t.cloc + cl
			for i := 0; i < t.rloc; i++ {
				v := in[i*t.Cols+c]
				buf[2*(cl*t.rloc+i)] = real(v)
				buf[2*(cl*t.rloc+i)+1] = imag(v)
			}
		}
	}
	recv := t.comm.Alltoall(t.send, mpi.AlgAuto)
	// Scatter: the block from rank src covers output columns
	// src*rloc..(src+1)*rloc of every one of my cloc output rows.
	for src := 0; src < t.p; src++ {
		buf := recv[src]
		for cl := 0; cl < t.cloc; cl++ {
			dst := out[cl*t.Rows+src*t.rloc:]
			for i := 0; i < t.rloc; i++ {
				dst[i] = complex(buf[2*(cl*t.rloc+i)], buf[2*(cl*t.rloc+i)+1])
			}
		}
	}
}
