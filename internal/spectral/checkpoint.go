package spectral

import (
	"fmt"
	"io"

	"nektar/internal/engine"
)

// turbState is the serialized per-rank form of the solver state. The
// complex slabs travel as interleaved re/im float64 pairs because
// encoding/gob has no complex codec; the layout guards (rank, size,
// grid, variant) reject a stream restored into the wrong slab.
type turbState struct {
	Step   int
	Rank   int
	Size   int
	N      int
	Forced bool
	W      []float64
	PrevN  []float64
}

func flatten(src []complex128) []float64 {
	out := make([]float64, 2*len(src))
	for i, v := range src {
		out[2*i] = real(v)
		out[2*i+1] = imag(v)
	}
	return out
}

func unflatten(src []float64, dst []complex128) {
	for i := range dst {
		dst[i] = complex(src[2*i], src[2*i+1])
	}
}

// Checkpoint implements engine.Solver: the complete time-stepping state
// (step counter, spectral vorticity, AB2 history). Every rank must save
// at the same step for a parallel checkpoint to be consistent.
func (s *Turb2D) Checkpoint(w io.Writer) error {
	st := turbState{
		Step: s.step, Rank: s.rank, Size: s.p,
		N: s.Cfg.N, Forced: s.Cfg.Forced,
		W:     flatten(s.w),
		PrevN: flatten(s.prevN),
	}
	return engine.EncodeState(w, &st)
}

// Restore implements engine.Solver: loads a state written by Checkpoint
// into a solver built with the same configuration and rank layout,
// after which stepping resumes bit-identically (the AB2 history and the
// step-keyed forcing both come along).
func (s *Turb2D) Restore(r io.Reader) error {
	var st turbState
	if err := engine.DecodeState(r, &st); err != nil {
		return err
	}
	if st.Rank != s.rank || st.Size != s.p {
		return fmt.Errorf("spectral: checkpoint is for rank %d of %d, this solver is rank %d of %d",
			st.Rank, st.Size, s.rank, s.p)
	}
	if st.N != s.Cfg.N || st.Forced != s.Cfg.Forced {
		return fmt.Errorf("spectral: checkpoint is a %d-grid forced=%v run, this solver is %d-grid forced=%v",
			st.N, st.Forced, s.Cfg.N, s.Cfg.Forced)
	}
	if len(st.W) != 2*len(s.w) || len(st.PrevN) != 2*len(s.prevN) {
		return fmt.Errorf("spectral: checkpoint slab sizes (%d, %d) do not match solver (%d, %d)",
			len(st.W), len(st.PrevN), 2*len(s.w), 2*len(s.prevN))
	}
	s.step = st.Step
	unflatten(st.W, s.w)
	unflatten(st.PrevN, s.prevN)
	return nil
}
