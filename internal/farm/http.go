package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler mounts the farm's HTTP/JSON API:
//
//	POST   /v1/jobs            submit a JobSpec -> JobStatus (201; 200 on
//	                           cache/idempotency hit; 429 + Retry-After on
//	                           backpressure; 503 while draining)
//	GET    /v1/jobs/{id}       job status/result
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/stats           service statistics
//	GET    /v1/healthz         liveness
//	POST   /v1/chaos/killworker  abort a random running attempt (only
//	                           when Config.Chaos is set; 404 otherwise)
//
// Every response body is JSON; errors arrive as {"error": "..."}.
func Handler(f *Farm) http.Handler {
	// maxJobBody caps a submission body (413 beyond it), the first of
	// the bounds keeping client input out of the journal's record limit.
	const maxJobBody = 64 << 10
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// A JobSpec is a few hundred bytes; an unbounded body could
		// otherwise grow a journal entry toward the WAL's record limit.
		r.Body = http.MaxBytesReader(w, r.Body, maxJobBody)
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			code := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
			}
			writeErr(w, code, fmt.Errorf("farm: bad job spec: %w", err))
			return
		}
		st, cached, err := f.Submit(spec)
		var busy *BusyError
		switch {
		case errors.As(err, &busy):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(busy.RetryAfter/time.Second)))
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrEntryTooLarge):
			writeErr(w, http.StatusRequestEntityTooLarge, err)
		case err != nil:
			writeErr(w, http.StatusBadRequest, err)
		case cached:
			st.Cached = true
			writeJSON(w, http.StatusOK, st)
		default:
			writeJSON(w, http.StatusCreated, st)
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := f.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("farm: no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := f.Cancel(r.PathValue("id"))
		if st.ID == "" {
			writeErr(w, http.StatusNotFound, fmt.Errorf("farm: no job %q", r.PathValue("id")))
			return
		}
		if !ok {
			// Already terminal: cancellation is a no-op, report the state.
			writeJSON(w, http.StatusConflict, st)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Snapshot())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if f.cfg.Chaos {
		mux.HandleFunc("POST /v1/chaos/killworker", func(w http.ResponseWriter, r *http.Request) {
			victim := f.KillWorker()
			writeJSON(w, http.StatusOK, map[string]string{"killed": victim})
		})
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
