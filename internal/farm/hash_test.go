package farm

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"nektar/internal/engine"
)

// marshalSpin runs a spin trajectory and returns its encoded state.
func marshalSpin(t *testing.T) []byte {
	t.Helper()
	s := NewSpinSolver(7, 8)
	for i := 0; i < 25; i++ {
		s.Step()
	}
	b, err := engine.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// HashState must identify equal trajectories across processes.
// encoding/gob assigns wire type IDs from a process-global counter in
// first-encounter order, so the raw stream bytes depend on what else
// the process has encoded — exactly the situation when the farmbench
// audit compares daemon-computed results against reference runs from
// the test process, which has encoded other solvers' types first.
//
// gob caches one global ID per concrete type, so the shift cannot be
// reproduced by re-encoding spinState itself; instead encode the same
// value through two structurally identical types whose IDs are forced
// apart by burning IDs between them. The descriptors (and the value
// message's ID prefix) differ; the payload is identical; the hash
// must agree.
func TestHashStateIgnoresGobTypeIDs(t *testing.T) {
	type stateA struct {
		Step  int
		Lanes [16]uint64
	}
	type stateB struct {
		Step  int
		Lanes [16]uint64
	}
	v := stateA{Step: 40}
	for i := range v.Lanes {
		v.Lanes[i] = uint64(i) * 0x9e3779b97f4a7c15
	}

	var a bytes.Buffer
	if err := gob.NewEncoder(&a).Encode(v); err != nil {
		t.Fatal(err)
	}
	// Burn a range of global gob type IDs between the two encodes.
	type idBurner struct{ A, B, C int }
	type idBurner2 struct{ X []string }
	type idBurner3 struct{ M map[string]float64 }
	for _, burn := range []any{idBurner{}, idBurner2{}, idBurner3{}} {
		if err := gob.NewEncoder(io.Discard).Encode(burn); err != nil {
			t.Fatal(err)
		}
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(stateB(v)); err != nil {
		t.Fatal(err)
	}

	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("expected raw gob streams to differ (shifted type IDs); the scenario is not set up")
	}
	if ha, hb := HashState(a.Bytes()), HashState(b.Bytes()); ha != hb {
		t.Fatalf("canonical hash depends on gob type-ID history:\n  %s\n  %s", ha, hb)
	}
}

// The canonical payload must still pin the trajectory — dropping
// descriptors must not collapse distinct states — and unparseable
// input must fall back to raw hashing, not fail.
func TestHashStateCanonicalPinsTrajectory(t *testing.T) {
	b := marshalSpin(t)
	canon := canonicalGob(b)
	if len(canon) == 0 || len(canon) >= len(b) {
		t.Fatalf("canonical form %d bytes, want shorter than raw %d (descriptors dropped)", len(canon), len(b))
	}
	s := NewSpinSolver(7, 8)
	for i := 0; i < 26; i++ { // one extra step
		s.Step()
	}
	other, err := engine.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if HashState(b) == HashState(other) {
		t.Fatalf("different trajectories produced equal hashes")
	}
	// A truncated/garbage stream hashes raw (old behavior), no panic.
	for _, raw := range [][]byte{{0xff}, {0x05, 0x01}, b[:len(b)-3]} {
		if HashState(raw) == "" {
			t.Fatalf("fallback produced empty hash for %x", raw)
		}
	}
}
