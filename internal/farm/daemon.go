package farm

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DaemonMain is the farmd entry point: parse flags, recover the farm
// from its state directory, serve the HTTP API, and on SIGTERM/SIGINT
// run the drain protocol (stop admitting, checkpoint and park running
// jobs, close the journal) before exiting. It returns the process exit
// code so main() stays a one-liner and tests can drive it.
func DaemonMain(argv []string, logf func(format string, args ...any)) int {
	fs := flag.NewFlagSet("farmd", flag.ContinueOnError)
	dir := fs.String("dir", "", "farm state directory (journal + per-job checkpoints); required")
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	workers := fs.Int("workers", 4, "execution pool size")
	queueCap := fs.Int("queue-cap", 1024, "admission queue bound (0 = unbounded)")
	chaos := fs.Bool("chaos", false, "enable the /v1/chaos/killworker fault-injection endpoint")
	seed := fs.Int64("seed", 1, "retry-jitter RNG seed")
	drainS := fs.Float64("drain-timeout", 30, "graceful-drain deadline in seconds")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if logf == nil {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "farmd: "+format+"\n", args...)
		}
	}
	if *dir == "" {
		logf("a state directory is required: farmd -dir <path>")
		return 2
	}

	f, err := Open(Config{
		Dir: *dir, Workers: *workers, QueueCap: *queueCap,
		Chaos: *chaos, Seed: *seed, Logf: logf,
	})
	if err != nil {
		logf("%v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	srv := &http.Server{Handler: Handler(f)}
	logf("serving on %s (dir=%s workers=%d)", ln.Addr(), *dir, *workers)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logf("caught %s, draining", sig)
	case err := <-errc:
		logf("server failed: %v", err)
		f.Close()
		return 1
	}

	// Drain protocol: stop accepting connections' new work first (the
	// farm rejects submissions the moment draining is set), then park
	// the running jobs, then tear the listener down.
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(*drainS*float64(time.Second)))
	defer cancel()
	derr := f.Drain(ctx)
	srv.Shutdown(ctx)
	if derr != nil {
		logf("drain incomplete: %v (journal replay will recover)", derr)
		return 1
	}
	logf("drained cleanly")
	return 0
}

// daemonEnv carries a farmd argv through a re-exec: the chaos harness
// spawns the test binary itself as the daemon, which is how a Go test
// gets a genuinely SIGKILLable process without shipping a second
// binary.
const daemonEnv = "NEKTAR_FARMD_ARGS"

// MaybeDaemon checks whether this process was re-exec'd as a farm
// daemon (daemonEnv holds a JSON argv) and, if so, runs it and exits.
// Call it first thing in main()/TestMain of any binary the harness may
// use as its daemon image.
func MaybeDaemon() {
	v, ok := os.LookupEnv(daemonEnv)
	if !ok {
		return
	}
	var argv []string
	if err := json.Unmarshal([]byte(v), &argv); err != nil {
		fmt.Fprintf(os.Stderr, "farmd: bad %s: %v\n", daemonEnv, err)
		os.Exit(2)
	}
	os.Exit(DaemonMain(argv, nil))
}

// DaemonArgsEnv encodes argv for a MaybeDaemon re-exec (the harness's
// side of the trick).
func DaemonArgsEnv(argv []string) string {
	b, _ := json.Marshal(argv)
	return daemonEnv + "=" + string(b)
}
