package farm

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openTestJournal(t *testing.T, path string) (*Journal, []Entry) {
	t.Helper()
	j, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, entries
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.nkj")
	j, entries := openTestJournal(t, path)
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	spec := &JobSpec{Workload: "spin", Steps: 10, Seed: 7}
	if err := j.Append(
		&Entry{Job: "j1", Ev: EvSubmitted, Spec: spec},
		&Entry{Job: "j1", Ev: EvAdmitted},
		&Entry{Job: "j1", Ev: EvRunning, Attempt: 1, Worker: 2},
	); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Append(&Entry{Job: "j1", Ev: EvDone, Step: 10,
		Result: &Result{Hash: "abc", Steps: 10}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, replayed := openTestJournal(t, path)
	defer j2.Close()
	if len(replayed) != 4 {
		t.Fatalf("replayed %d entries, want 4", len(replayed))
	}
	for i, e := range replayed {
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
	if replayed[0].Spec == nil || replayed[0].Spec.Seed != 7 {
		t.Fatalf("submitted spec did not survive: %+v", replayed[0])
	}
	if replayed[3].Result == nil || replayed[3].Result.Hash != "abc" {
		t.Fatalf("done result did not survive: %+v", replayed[3])
	}
}

// TestJournalTornTail SIGKILLs on paper: a journal whose last append
// was cut mid-record must replay every verified entry, drop the torn
// tail, and accept new appends at the restored boundary.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.nkj")
	j, _ := openTestJournal(t, path)
	for i := 0; i < 5; i++ {
		if err := j.Append(&Entry{Job: "j1", Ev: EvCheckpointed, Step: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	// Tear the tail three ways: a truncated frame, garbage with a
	// plausible length prefix, and a lone partial length prefix.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tears := map[string]func([]byte) []byte{
		"truncated-frame": func(b []byte) []byte {
			extra := make([]byte, 4)
			binary.BigEndian.PutUint32(extra, 64)
			return append(append(b, extra...), []byte("only-ten-b")...)
		},
		"garbage": func(b []byte) []byte {
			extra := make([]byte, 4)
			binary.BigEndian.PutUint32(extra, 16)
			return append(append(b, extra...), make([]byte, 16)...)
		},
		"partial-prefix": func(b []byte) []byte { return append(b, 0x00, 0x00) },
	}
	for name, tear := range tears {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "wal.nkj")
			if err := os.WriteFile(p, tear(append([]byte{}, whole...)), 0o644); err != nil {
				t.Fatal(err)
			}
			j2, replayed := openTestJournal(t, p)
			defer j2.Close()
			if len(replayed) != 5 {
				t.Fatalf("replayed %d entries, want 5", len(replayed))
			}
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != int64(len(whole)) {
				t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), len(whole))
			}
			if err := j2.Append(&Entry{Job: "j1", Ev: EvDone, Step: 5}); err != nil {
				t.Fatalf("append after truncation: %v", err)
			}
			j2.Close()
			_, again := openTestJournal(t, p)
			if len(again) != 6 || again[5].Ev != EvDone {
				t.Fatalf("post-truncation append did not replay: %+v", again)
			}
		})
	}
}

func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.nkj")
	j, _ := openTestJournal(t, path)
	for i := 0; i < 50; i++ {
		if err := j.Append(&Entry{Job: "j1", Ev: EvCheckpointed, Step: i}); err != nil {
			t.Fatal(err)
		}
	}
	spec := &JobSpec{Workload: "spin", Steps: 50}
	if err := j.Compact([]Entry{
		{Job: "j1", Ev: EvSubmitted, Spec: spec},
		{Job: "j1", Ev: EvDone, Step: 50, Result: &Result{Hash: "h"}},
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if j.Count() != 2 {
		t.Fatalf("Count after compact = %d, want 2", j.Count())
	}
	// Appends continue on the compacted file with fresh sequence numbers.
	if err := j.Append(&Entry{Job: "j2", Ev: EvSubmitted, Spec: spec}); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j.Close()
	_, replayed := openTestJournal(t, path)
	if len(replayed) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(replayed))
	}
	if replayed[0].Ev != EvSubmitted || replayed[1].Ev != EvDone || replayed[2].Job != "j2" {
		t.Fatalf("wrong replay after compact: %+v", replayed)
	}
	if replayed[2].Seq != 3 {
		t.Fatalf("post-compact seq = %d, want 3", replayed[2].Seq)
	}
}

// TestJournalRejectsOversizedEntry: an entry whose frame would exceed
// the replay bound must be refused before it is written. Replay treats
// any on-disk frame past maxWALRecord as a torn tail, so an appended
// oversized entry would be fsynced and acknowledged, then silently
// truncated away — with every later acknowledged record — at the next
// open.
func TestJournalRejectsOversizedEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.nkj")
	j, _ := openTestJournal(t, path)
	if err := j.Append(&Entry{Job: "j1", Ev: EvSubmitted,
		Spec: &JobSpec{Workload: "spin", Steps: 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Incompressible payload well past the 1 MiB frame bound even after
	// the record codec's flate layer (random hex has 4 bits of entropy
	// per byte, so 4 MiB cannot compress below ~2 MiB).
	rng := rand.New(rand.NewSource(1))
	big := make([]byte, 4<<20)
	const hexdigits = "0123456789abcdef"
	for i := range big {
		big[i] = hexdigits[rng.Intn(16)]
	}
	err := j.Append(&Entry{Job: "j2", Ev: EvSubmitted,
		Spec: &JobSpec{Workload: "spin", Steps: 1, Tenant: string(big)}})
	if !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("oversized append returned %v, want ErrEntryTooLarge", err)
	}
	// The failed append must not have consumed a sequence number or
	// poisoned the file: the next entry lands at seq 2 and both survive
	// a replay.
	good := &Entry{Job: "j3", Ev: EvSubmitted, Spec: &JobSpec{Workload: "spin", Steps: 1}}
	if err := j.Append(good); err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
	if good.Seq != 2 {
		t.Fatalf("rejected append consumed a seq: next entry got %d, want 2", good.Seq)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, replayed := openTestJournal(t, path)
	defer j2.Close()
	if len(replayed) != 2 || replayed[0].Job != "j1" || replayed[1].Job != "j3" {
		t.Fatalf("replayed %+v, want j1 and j3", replayed)
	}
}
