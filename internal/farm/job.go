// Package farm is the crash-safe multi-tenant job service: the
// "simulation-as-a-service" front end that turns the repo's supervised
// solver runs into something a farm of commodity nodes can serve
// unattended. The paper's question — can cheap PC/Linux clusters carry
// real DNS workloads? — becomes, at service scale, whether the machine
// *around* the solver survives the same abuse the solver already
// does: the daemon itself being SIGKILLed mid-flight, workers dying
// mid-step, clients resubmitting blindly.
//
// The answer is a write-ahead journal (journal.go, reusing
// internal/ckpt's framed/CRC record format with fsync-and-atomic-
// rename semantics) that logs every job transition before it is
// acknowledged, so a restarted daemon replays the journal, re-admits
// queued jobs, and resumes in-flight runs from their per-job
// checkpoint namespace via the corruption-aware ckpt.Latest. Execution
// is at-least-once — a crash between a durable checkpoint and the
// journaled "done" re-runs the tail — but results are idempotent:
// checkpoints are step-keyed (re-execution overwrites identical
// records) and the trajectory is bit-deterministic, so every re-run
// converges to the same final state and the journal keeps exactly one
// result per job.
package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// JobState is the in-memory view of a job's position in the state
// machine (the journal's submitted/admitted pair both collapse to
// Queued here).
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateBackoff   JobState = "backoff" // waiting out a retry backoff
	StateParked    JobState = "parked"  // checkpointed and halted by a drain
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether a state can never transition again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// MaxTenantLen bounds the tenant name, the one client-controlled
// string that is stored verbatim in journal entries. The bound keeps
// every entry far under the journal's 1 MiB record limit (an entry at
// that limit could never be appended — see ErrEntryTooLarge).
const MaxTenantLen = 256

// JobSpec is a client's job description. Workload/Steps/Seed/Work and
// the mesh knobs define *what* is computed (the result-cache key);
// Priority/Tenant/TimeoutS/Retries define how the farm schedules it.
type JobSpec struct {
	// Workload names a registered farm workload ("spin", "ns2d").
	Workload string `json:"workload"`
	// Steps is the target step count.
	Steps int `json:"steps"`
	// Seed deterministically perturbs the initial state, so equal specs
	// give bit-identical trajectories and distinct seeds give distinct
	// jobs.
	Seed int64 `json:"seed"`
	// Work scales the spin workload's per-step arithmetic (0 = default).
	Work int `json:"work,omitempty"`
	// Nt, Nr, Order size the ns2d probe mesh (0 = defaults).
	Nt    int `json:"nt,omitempty"`
	Nr    int `json:"nr,omitempty"`
	Order int `json:"order,omitempty"`

	// CkptEvery is the durable-checkpoint cadence in steps (0 = a
	// default derived from Steps).
	CkptEvery int `json:"ckpt_every,omitempty"`
	// Priority orders the queue (higher first; 0 is normal).
	Priority int `json:"priority,omitempty"`
	// Tenant is the fair-share accounting bucket ("" = "default"; at
	// most MaxTenantLen bytes).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutS bounds one attempt's host wall time (0 = default).
	TimeoutS float64 `json:"timeout_s,omitempty"`
	// Retries is the retry budget beyond the first attempt (<0 = none,
	// 0 = default).
	Retries int `json:"retries,omitempty"`
}

// Key is the result-cache identity: a digest over the fields that
// determine the computed trajectory, and nothing else — two clients
// submitting the same computation at different priorities share one
// result.
func (s JobSpec) Key() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d",
		s.Workload, s.Steps, s.Seed, s.Work, s.Nt, s.Nr, s.Order)))
	return hex.EncodeToString(sum[:16])
}

// Result is one job's computed outcome: the step it finished at and
// the digest of its final marshalled solver state (canonicalized, so
// bit-identical trajectories give equal hashes in any process).
type Result struct {
	Hash  string `json:"hash"`
	Steps int    `json:"steps"`
	Bytes int    `json:"bytes"`
}

// HashState digests a marshalled solver state the way Result.Hash is
// produced, for callers comparing farm results against reference runs.
//
// The digest covers the canonical content of the gob stream, not its
// raw bytes: encoding/gob assigns wire type IDs from a process-global
// counter in first-encounter order, so two processes (or one process
// before/after encoding unrelated types) emit byte-different streams
// for the same value. The farm's bit-identity audit compares daemon
// results against reference runs computed in another process, so the
// hash must skip the type-descriptor messages and the value message's
// type-ID prefix — everything history-dependent — and digest only the
// payload. A state that does not parse as gob is hashed raw.
func HashState(state []byte) string {
	sum := sha256.Sum256(canonicalGob(state))
	return hex.EncodeToString(sum[:])
}

// canonicalGob extracts the type-ID-independent payload of a gob
// stream: the body of each value message with its leading type ID
// stripped, delimited by the message lengths. Descriptor messages
// (negative type ID) are dropped entirely. The wire format is
// documented and frozen ("may only be appended to"), so this parse is
// stable. On any framing it does not understand it returns the input
// unchanged — the hash is then raw-byte, exactly the old behavior.
func canonicalGob(stream []byte) []byte {
	out := make([]byte, 0, len(stream))
	rest := stream
	for len(rest) > 0 {
		// Message framing: unsigned byte count, then that many bytes.
		n, sz, ok := gobUint(rest)
		if !ok || n > uint64(len(rest)-sz) {
			return stream
		}
		body := rest[sz : sz+int(n)]
		rest = rest[sz+int(n):]
		// The body leads with the signed type ID: negative introduces a
		// type descriptor, positive a value of that type.
		id, idSz, ok := gobInt(body)
		if !ok {
			return stream
		}
		if id < 0 {
			continue // descriptor: pure type-table bookkeeping, drop
		}
		// Keep the payload and its length so message boundaries still
		// separate, but not the history-dependent ID.
		payload := body[idSz:]
		out = append(out, byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
		out = append(out, payload...)
	}
	return out
}

// gobUint decodes gob's unsigned-integer wire form: one byte if
// < 128, else 256-b big-endian bytes follow.
func gobUint(b []byte) (v uint64, size int, ok bool) {
	if len(b) == 0 {
		return 0, 0, false
	}
	if b[0] < 0x80 {
		return uint64(b[0]), 1, true
	}
	n := int(-int8(b[0]))
	if n < 1 || n > 8 || len(b) < 1+n {
		return 0, 0, false
	}
	for _, c := range b[1 : 1+n] {
		v = v<<8 | uint64(c)
	}
	return v, 1 + n, true
}

// gobInt decodes gob's signed-integer wire form: an unsigned value
// whose low bit says "complement the rest".
func gobInt(b []byte) (v int64, size int, ok bool) {
	u, size, ok := gobUint(b)
	if !ok {
		return 0, 0, false
	}
	if u&1 != 0 {
		return ^int64(u >> 1), size, true
	}
	return int64(u >> 1), size, true
}

// Job is the farm's record of one submission. All fields are guarded
// by the farm's mutex.
type Job struct {
	ID      string   `json:"id"`
	Spec    JobSpec  `json:"spec"`
	State   JobState `json:"state"`
	Attempt int      `json:"attempt"`
	// CkptStep is the newest durably checkpointed step (-1 = none).
	CkptStep int     `json:"ckpt_step"`
	Result   *Result `json:"result,omitempty"`
	// Cause classifies the most recent failure (crash, timeout,
	// watchdog, error); empty for jobs that never failed.
	Cause string `json:"cause,omitempty"`
	Err   string `json:"err,omitempty"`

	// scheduling state, never serialized. cancel and abort are atomic
	// because the attempt's step loop reads them every step without
	// taking the farm mutex.
	seq     int64       // submission order, fair-queue tiebreak
	pending bool        // reserved by Submit, journal entry not yet durable
	cancel  atomic.Bool // cancellation requested (Poll halts the attempt)
	abort   atomic.Bool // chaos worker-kill requested (OnStep panics)
}

// JobStatus is the externally visible snapshot of a job (the HTTP
// payload) — a copy, safe to hold after the farm's lock is released.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Attempt  int      `json:"attempt"`
	CkptStep int      `json:"ckpt_step"`
	Priority int      `json:"priority,omitempty"`
	Tenant   string   `json:"tenant,omitempty"`
	Result   *Result  `json:"result,omitempty"`
	Cause    string   `json:"cause,omitempty"`
	Err      string   `json:"err,omitempty"`
	// Cached marks a submission answered from the result cache / an
	// existing identical live job.
	Cached bool `json:"cached,omitempty"`
}

// EntryEv enumerates the journal's transition events.
type EntryEv string

const (
	EvSubmitted    EntryEv = "submitted"
	EvAdmitted     EntryEv = "admitted"
	EvRunning      EntryEv = "running"
	EvCheckpointed EntryEv = "checkpointed"
	EvRetrying     EntryEv = "retrying"
	EvParked       EntryEv = "parked"
	EvDone         EntryEv = "done"
	EvFailed       EntryEv = "failed"
	EvCancelled    EntryEv = "cancelled"
)

// Entry is one journaled transition. The journal is the farm's only
// durable state: everything in Farm.jobs is rebuilt by replaying these
// in order.
type Entry struct {
	Seq int64   `json:"seq"`
	Job string  `json:"job"`
	Ev  EntryEv `json:"ev"`

	Spec      *JobSpec `json:"spec,omitempty"`    // submitted
	Attempt   int      `json:"attempt,omitempty"` // running / retrying / failed
	Worker    int      `json:"worker,omitempty"`  // running
	Step      int      `json:"step,omitempty"`    // checkpointed / parked / done
	Cause     string   `json:"cause,omitempty"`   // retrying / failed
	BackoffMS int64    `json:"backoff_ms,omitempty"`
	Result    *Result  `json:"result,omitempty"` // done
	Err       string   `json:"err,omitempty"`
}
