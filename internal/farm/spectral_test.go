package farm

import "testing"

// TestFarmSpectralWorkloads runs each spectral workload through the
// daemon once, checks the result against an uninterrupted in-process
// reference, and asserts an identical resubmission is answered from
// the result cache instead of recomputed.
func TestFarmSpectralWorkloads(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, wl := range []string{"turb2d", "turbforce"} {
		spec := JobSpec{Workload: wl, Steps: 3, Seed: 17}
		ref, err := RunSpec(spec)
		if err != nil {
			t.Fatalf("%s: reference: %v", wl, err)
		}
		st, cached, err := f.Submit(spec)
		if err != nil || cached {
			t.Fatalf("%s: Submit: cached=%v err=%v", wl, cached, err)
		}
		st = waitState(t, f, st.ID, StateDone)
		if st.Result == nil || st.Result.Hash != ref.Hash {
			t.Fatalf("%s: farm result %+v, reference %+v", wl, st.Result, ref)
		}
		st2, cached, err := f.Submit(spec)
		if err != nil || !cached || st2.ID != st.ID {
			t.Fatalf("%s: resubmit id=%s cached=%v err=%v, want cache hit on %s",
				wl, st2.ID, cached, err, st.ID)
		}
		if st2.Result == nil || st2.Result.Hash != ref.Hash {
			t.Fatalf("%s: cached result diverged: %+v", wl, st2.Result)
		}
	}
}
