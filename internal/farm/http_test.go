package farm

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func httpFarm(t *testing.T, cfg Config) (*Farm, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(f))
	t.Cleanup(func() { srv.Close(); f.Close() })
	return f, srv
}

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) (*http.Response, JobStatus) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp, st
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	_, srv := httpFarm(t, Config{Workers: 1})
	spec := spinSpec(21, 25)
	ref, _ := RunSpec(spec)

	resp, st := postJob(t, srv, spec)
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		json.NewDecoder(r.Body).Decode(&cur)
		r.Body.Close()
		if cur.State == StateDone {
			if cur.Result == nil || cur.Result.Hash != ref.Hash {
				t.Fatalf("result %+v != reference %+v", cur.Result, ref)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Idempotent resubmission: 200 + cached, same ID.
	resp2, st2 := postJob(t, srv, spec)
	if resp2.StatusCode != http.StatusOK || !st2.Cached || st2.ID != st.ID {
		t.Fatalf("resubmit: %d %+v", resp2.StatusCode, st2)
	}

	r, _ := http.Get(srv.URL + "/v1/jobs/nosuch")
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", r.StatusCode)
	}
	r.Body.Close()
}

func TestHTTPBackpressure429(t *testing.T) {
	_, srv := httpFarm(t, Config{Workers: 0, QueueCap: 1})
	if resp, _ := postJob(t, srv, spinSpec(1, 10)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, _ := postJob(t, srv, spinSpec(2, 10))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHTTPBadSpecAndCancel(t *testing.T) {
	_, srv := httpFarm(t, Config{Workers: 0})
	resp, _ := postJob(t, srv, JobSpec{Workload: "nope", Steps: 5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workload: %d", resp.StatusCode)
	}

	_, st := postJob(t, srv, spinSpec(3, 10))
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	json.NewDecoder(r.Body).Decode(&got)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || got.State != StateCancelled {
		t.Fatalf("cancel: %d %+v", r.StatusCode, got)
	}
	// Cancelling again conflicts.
	r2, _ := http.DefaultClient.Do(req)
	if r2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", r2.StatusCode)
	}
	r2.Body.Close()
}

func TestHTTPStatsAndChaosGate(t *testing.T) {
	// Chaos off: the kill endpoint must not exist.
	_, srv := httpFarm(t, Config{Workers: 0})
	resp, err := http.Post(srv.URL+"/v1/chaos/killworker", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("chaos endpoint without -chaos: %d, want 404", resp.StatusCode)
	}

	_, srv2 := httpFarm(t, Config{Workers: 0, Chaos: true})
	for i := 0; i < 3; i++ {
		postJob(t, srv2, spinSpec(int64(i), 10))
	}
	r, err := http.Get(srv2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	json.NewDecoder(r.Body).Decode(&stats)
	r.Body.Close()
	if stats.Queued != 3 {
		t.Fatalf("stats queued = %d, want 3: %+v", stats.Queued, stats)
	}
	// Nothing running: chaos kill reports no victim instead of failing.
	kr, _ := http.Post(srv2.URL+"/v1/chaos/killworker", "application/json", nil)
	var kill map[string]string
	json.NewDecoder(kr.Body).Decode(&kill)
	kr.Body.Close()
	if kr.StatusCode != http.StatusOK || kill["killed"] != "" {
		t.Fatalf("idle kill: %d %v", kr.StatusCode, kill)
	}

	hr, _ := http.Get(srv2.URL + "/v1/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hr.StatusCode)
	}
	hr.Body.Close()
}

// TestHTTPDraining503 checks the service refuses work while draining.
func TestHTTPDraining503(t *testing.T) {
	f, srv := httpFarm(t, Config{Workers: 0})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJob(t, srv, spinSpec(9, 10))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPSubmitBodyTooLarge: submission bodies are capped far below
// the journal's record bound; an oversized one gets 413, not a journal
// entry that replay would treat as a torn tail.
func TestHTTPSubmitBodyTooLarge(t *testing.T) {
	_, srv := httpFarm(t, Config{Workers: 0})
	payload := `{"workload":"spin","steps":1,"tenant":"` + strings.Repeat("a", 80<<10)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body got %d, want 413", resp.StatusCode)
	}
	// A full-size but bounded spec still goes through.
	resp2, st := postJob(t, srv, JobSpec{Workload: "spin", Steps: 1,
		Tenant: strings.Repeat("t", MaxTenantLen)})
	if resp2.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("bounded spec rejected: %d %+v", resp2.StatusCode, st)
	}
}
