package farm

import "testing"

func qjob(id string, seq int64, tenant string, prio int) *Job {
	return &Job{ID: id, seq: seq, Spec: JobSpec{Tenant: tenant, Priority: prio}}
}

func popOrder(q *fairQueue) []string {
	var ids []string
	for {
		j := q.Pop()
		if j == nil {
			return ids
		}
		ids = append(ids, j.ID)
	}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := newFairQueue()
	q.Push(qjob("a", 1, "t", 0))
	q.Push(qjob("b", 2, "t", 5))
	q.Push(qjob("c", 3, "t", 0))
	q.Push(qjob("d", 4, "t", 5))
	got := popOrder(q)
	want := []string{"b", "d", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestQueueFairShare floods the queue from one tenant and checks a
// second tenant still gets every other slot.
func TestQueueFairShare(t *testing.T) {
	q := newFairQueue()
	for i := int64(0); i < 6; i++ {
		q.Push(qjob("hog", i+1, "hog", 0))
	}
	q.Push(qjob("x", 7, "polite", 0))
	q.Push(qjob("y", 8, "polite", 0))
	got := popOrder(q)
	// First pop goes to the earliest seq (served counts tied at 0); from
	// then on the polite tenant must never wait behind two hog jobs.
	politeSeen := 0
	for i, id := range got {
		if id == "x" || id == "y" {
			politeSeen++
		}
		if i == 3 && politeSeen == 0 {
			t.Fatalf("polite tenant starved: order %v", got)
		}
	}
	if politeSeen != 2 || len(got) != 8 {
		t.Fatalf("lost jobs: order %v", got)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newFairQueue()
	q.Push(qjob("a", 1, "t", 0))
	q.Push(qjob("b", 2, "t", 0))
	if !q.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if q.Remove("a") {
		t.Fatal("double Remove(a) = true")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if j := q.Pop(); j == nil || j.ID != "b" {
		t.Fatalf("Pop = %v, want b", j)
	}
}
