package farm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/policy"
)

// Config parametrizes a Farm.
type Config struct {
	// Dir roots the farm's durable state: the write-ahead journal plus
	// one checkpoint namespace per job under Dir/jobs/<id>.
	Dir string
	// Workers is the size of the execution pool (0 = admit but never
	// run, useful for queue tests).
	Workers int
	// QueueCap bounds the admission queue; submissions beyond it get
	// backpressure (ErrBusy / HTTP 429). 0 = unbounded.
	QueueCap int
	// Chaos enables the worker-kill injection endpoint.
	Chaos bool
	// Seed drives the retry-jitter RNG (0 = 1), so tests are
	// reproducible.
	Seed int64
	// BackoffBase/BackoffMax shape the exponential retry backoff
	// (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CompactMinRecords is the journal length below which compaction is
	// never considered (0 = 1024). Compaction additionally requires the
	// log to hold >3x its minimal replay size.
	CompactMinRecords int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// ErrDraining rejects submissions while the farm shuts down.
var ErrDraining = errors.New("farm: draining, not accepting jobs")

// BusyError is admission backpressure: the queue is full; retry after
// the hinted delay (HTTP maps it to 429 + Retry-After).
type BusyError struct{ RetryAfter time.Duration }

func (e *BusyError) Error() string {
	return fmt.Sprintf("farm: queue full, retry after %s", e.RetryAfter)
}

// attempt-ending signals, delivered by panic out of the step loop
// (matching the engine's crash-unwinding model) and classified by the
// worker.
var (
	errWorkerKilled   = errors.New("worker killed")
	errAttemptTimeout = errors.New("attempt timed out")
)

type abortAttempt struct{ err error }

// Farm is the crash-safe job service. Every state transition is
// journaled (fsynced) before it is acknowledged or acted on, so Open
// on a directory left by a SIGKILLed farm reconstructs the exact
// acknowledged state: queued jobs re-admitted, in-flight jobs resumed
// from their newest verified checkpoint, finished jobs still
// answering result queries.
type Farm struct {
	cfg Config
	jl  *Journal

	mu    sync.Mutex
	cond  *sync.Cond
	jobs  map[string]*Job
	byKey map[string]string // result-cache / idempotent-submit index
	q     *fairQueue

	nextID   int64
	draining atomic.Bool

	est      *policy.MTBFEstimator
	rng      *rand.Rand
	t0       time.Time
	ewmaJobS float64
	attempts int64
	failures map[string]int64
	kills    int64

	timers map[string]*time.Timer
	wg     sync.WaitGroup
}

// Stats is the observable service state (the /v1/stats payload).
type Stats struct {
	Queued, Running, Backoff, Parked int
	Done, Failed, Cancelled          int
	Workers, QueueCap                int
	Draining                         bool
	UptimeS                          float64
	Attempts                         int64
	Failures                         map[string]int64
	KillsInjected                    int64
	MTBFEstimateS                    float64
	WALRecords                       int
}

// Open recovers (or creates) the farm rooted at cfg.Dir and starts its
// worker pool. When Open returns, every job acknowledged before the
// previous process died is accounted for: terminal jobs answer result
// queries, live ones are queued for (re)execution.
func Open(cfg Config) (*Farm, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("farm: empty state directory")
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.CompactMinRecords <= 0 {
		cfg.CompactMinRecords = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	jl, entries, err := OpenJournal(filepath.Join(cfg.Dir, "wal.nkj"))
	if err != nil {
		return nil, err
	}
	f := &Farm{
		cfg: cfg, jl: jl,
		jobs:     map[string]*Job{},
		byKey:    map[string]string{},
		q:        newFairQueue(),
		est:      policy.NewMTBFEstimator(3600, 0.3),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		t0:       time.Now(),
		failures: map[string]int64{},
		timers:   map[string]*time.Timer{},
	}
	f.cond = sync.NewCond(&f.mu)
	f.mu.Lock()
	f.replay(entries)
	err = f.maybeCompactLocked()
	f.mu.Unlock()
	if err != nil {
		jl.Close()
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		f.wg.Add(1)
		go f.worker(w)
	}
	return f, nil
}

// replay rebuilds the in-memory state from journal entries and
// re-admits every non-terminal job: queued stay queued, running ones
// are resumed (their per-job store holds the newest verified
// checkpoint), backoff waits are cut short, parked jobs wake up.
func (f *Farm) replay(entries []Entry) {
	for i := range entries {
		e := &entries[i]
		j := f.jobs[e.Job]
		switch e.Ev {
		case EvSubmitted:
			if j != nil || e.Spec == nil {
				continue
			}
			f.jobs[e.Job] = &Job{ID: e.Job, Spec: *e.Spec, State: StateQueued,
				CkptStep: -1, seq: e.Seq}
			continue
		}
		if j == nil || j.State.Terminal() {
			continue
		}
		switch e.Ev {
		case EvAdmitted:
			j.State = StateQueued
		case EvRunning:
			j.State, j.Attempt = StateRunning, e.Attempt
		case EvCheckpointed:
			j.CkptStep = e.Step
		case EvRetrying:
			j.State, j.Attempt, j.Cause = StateBackoff, e.Attempt, e.Cause
		case EvParked:
			j.State, j.CkptStep = StateParked, e.Step
		case EvDone:
			j.State, j.Result = StateDone, e.Result
		case EvFailed:
			j.State, j.Cause, j.Err = StateFailed, e.Cause, e.Err
		case EvCancelled:
			j.State = StateCancelled
		}
	}
	ordered := make([]*Job, 0, len(f.jobs))
	for _, j := range f.jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].seq < ordered[b].seq })
	requeued, terminal := 0, 0
	for _, j := range ordered {
		if n := idNum(j.ID); n > f.nextID {
			f.nextID = n
		}
		key := j.Spec.Key()
		// The cache prefers a finished result, then any live job, over a
		// failed/cancelled ghost.
		if cur, ok := f.jobs[f.byKey[key]]; !ok || cur.State != StateDone &&
			(j.State == StateDone || !j.State.Terminal()) {
			f.byKey[key] = j.ID
		}
		if j.State.Terminal() {
			terminal++
			continue
		}
		j.State = StateQueued
		f.q.Push(j)
		requeued++
	}
	if len(f.jobs) > 0 {
		f.cfg.Logf("farm: recovered %d jobs (%d re-admitted, %d terminal) from %d journal records",
			len(f.jobs), requeued, terminal, f.jl.Count())
	}
}

// idNum extracts the numeric part of a job ID (0 for foreign IDs).
func idNum(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// maybeCompactLocked rewrites the journal as the minimal entry set
// reproducing the current state, once the log holds several times more
// records than that minimum. Terminal jobs keep their spec and result
// (the cache must survive); live jobs keep spec plus their replay
// position. Called with f.mu held — at startup and after terminal
// transitions, so a long-running daemon's log stays bounded instead of
// growing until the next restart. f.mu excludes every journal writer
// except a Submit append already past its reservation; that one
// serializes on the journal's own lock and lands after the rewritten
// file, where its (possibly duplicated) submitted entry replays
// harmlessly.
func (f *Farm) maybeCompactLocked() error {
	c := f.jl.Count()
	// Cheap gate first: replaying a job takes at least two entries
	// (submitted plus verdict/admitted), so a log within 3x that floor
	// cannot be worth the O(jobs) rewrite below.
	if c <= f.cfg.CompactMinRecords || c <= 6*len(f.jobs) {
		return nil
	}
	minimal := f.minimalEntries()
	if c <= 3*len(minimal) {
		return nil
	}
	if err := f.jl.Compact(minimal); err != nil {
		return err
	}
	// Compact renumbered the on-disk entries from 1; re-key the job
	// table's seqs to the compacted submitted-entry numbers so
	// post-compaction submissions sort after every existing job (the
	// fair queue breaks priority ties by seq). The mapping is monotone —
	// minimalEntries walks jobs in seq order — so the per-tenant sorted
	// queue invariant survives the rewrite in place.
	for i := range minimal {
		if minimal[i].Ev != EvSubmitted {
			continue
		}
		if j := f.jobs[minimal[i].Job]; j != nil {
			j.seq = minimal[i].Seq
		}
	}
	f.cfg.Logf("farm: compacted journal to %d records", len(minimal))
	return nil
}

// minimalEntries serializes the current job table as the smallest
// entry sequence whose replay reproduces it.
func (f *Farm) minimalEntries() []Entry {
	ordered := make([]*Job, 0, len(f.jobs))
	for _, j := range f.jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].seq < ordered[b].seq })
	var out []Entry
	for _, j := range ordered {
		spec := j.Spec
		out = append(out, Entry{Job: j.ID, Ev: EvSubmitted, Spec: &spec})
		// Terminal jobs compress to their verdict: the attempt history is
		// observability, not state, once nothing can transition again.
		switch j.State {
		case StateDone:
			out = append(out, Entry{Job: j.ID, Ev: EvDone, Step: j.Spec.Steps, Result: j.Result})
			continue
		case StateFailed:
			out = append(out, Entry{Job: j.ID, Ev: EvFailed, Attempt: j.Attempt,
				Cause: j.Cause, Err: j.Err})
			continue
		case StateCancelled:
			out = append(out, Entry{Job: j.ID, Ev: EvCancelled})
			continue
		}
		if j.Attempt > 0 {
			out = append(out, Entry{Job: j.ID, Ev: EvRunning, Attempt: j.Attempt})
		}
		if j.CkptStep >= 0 {
			out = append(out, Entry{Job: j.ID, Ev: EvCheckpointed, Step: j.CkptStep})
		}
		out = append(out, Entry{Job: j.ID, Ev: EvAdmitted})
	}
	return out
}

// appendDurable journals entries, taking only the journal's own lock —
// callers may hold f.mu for transition ordering but are not required
// to. A journal that can no longer persist transitions voids every
// durability promise the farm has made, so the failure is fatal by
// design: better a dead daemon than one acknowledging state it will
// forget. (Oversized entries cannot reach here: every string a client
// controls is bounded by JobSpec.Validate, and internal entries are a
// few hundred bytes.)
func (f *Farm) appendDurable(entries ...*Entry) {
	if err := f.jl.Append(entries...); err != nil {
		panic(fmt.Sprintf("farm: write-ahead journal failed, cannot guarantee durability: %v", err))
	}
}

// Submit validates, journals, and queues a job. The returned status is
// a snapshot; cached is true when the spec's result identity matched
// an existing live or finished job (idempotent resubmission — a client
// that crashed between its request and the response can safely send
// again).
//
// The journal fsync runs outside the farm lock: the job is reserved in
// the table (pending, invisible to the queue and the idempotency
// cache's answers), the entry batch is made durable against only the
// journal's own lock, and the job is published once durable. Read-only
// API calls therefore never queue behind disk sync latency.
func (f *Farm) Submit(spec JobSpec) (JobStatus, bool, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	key := spec.Key()

	f.mu.Lock()
	for {
		if f.draining.Load() {
			f.mu.Unlock()
			return JobStatus{}, false, ErrDraining
		}
		j, ok := f.jobs[f.byKey[key]]
		if !ok || j.State == StateFailed || j.State == StateCancelled {
			break
		}
		if !j.pending {
			st := f.statusLocked(j)
			f.mu.Unlock()
			return st, true, nil
		}
		// An identical submission is mid-fsync; wait until its entry is
		// durable so the cached ack is backed by the journal.
		f.cond.Wait()
	}
	if f.cfg.QueueCap > 0 && f.q.Len() >= f.cfg.QueueCap {
		ra := f.retryAfterLocked()
		f.mu.Unlock()
		return JobStatus{}, false, &BusyError{RetryAfter: ra}
	}
	f.nextID++
	id := fmt.Sprintf("j%08d", f.nextID)
	j := &Job{ID: id, Spec: spec, State: StateQueued, CkptStep: -1, pending: true}
	f.jobs[id] = j
	f.byKey[key] = id
	f.wg.Add(1) // Drain must wait out the in-flight append before closing the journal
	f.mu.Unlock()

	sub := Entry{Job: id, Ev: EvSubmitted, Spec: &spec}
	adm := Entry{Job: id, Ev: EvAdmitted}
	err := f.jl.Append(&sub, &adm) // one batch, one fsync: ack only after this

	f.mu.Lock()
	defer f.mu.Unlock()
	defer f.wg.Done()
	j.pending = false
	if err != nil {
		delete(f.jobs, id)
		if f.byKey[key] == id {
			delete(f.byKey, key)
		}
		f.cond.Broadcast()
		if errors.Is(err, ErrEntryTooLarge) {
			// Validate bounds every client-controlled field, so this is a
			// backstop; the job was never acknowledged or queued.
			return JobStatus{}, false, err
		}
		panic(fmt.Sprintf("farm: write-ahead journal failed, cannot guarantee durability: %v", err))
	}
	j.seq = sub.Seq
	f.q.Push(j)
	f.cond.Broadcast() // wake a worker and any identical-spec waiters
	return f.statusLocked(j), false, nil
}

// retryAfterLocked estimates when a queue slot will free up: the
// queue's drain time at the observed per-job rate, clamped to [1, 60]s.
func (f *Farm) retryAfterLocked() time.Duration {
	per := f.ewmaJobS
	if per <= 0 {
		per = 0.05
	}
	workers := f.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	d := time.Duration(per * float64(f.q.Len()) / float64(workers) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// Status returns a job's snapshot.
func (f *Farm) Status(id string) (JobStatus, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return f.statusLocked(j), true
}

func (f *Farm) statusLocked(j *Job) JobStatus {
	return JobStatus{
		ID: j.ID, State: j.State, Attempt: j.Attempt, CkptStep: j.CkptStep,
		Priority: j.Spec.Priority, Tenant: j.Spec.Tenant,
		Result: j.Result, Cause: j.Cause, Err: j.Err,
	}
}

// Cancel requests a job's cancellation: queued and backoff jobs die
// immediately, running ones halt at the next step boundary. Terminal
// jobs report false.
func (f *Farm) Cancel(id string) (JobStatus, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	switch {
	case j.State.Terminal():
		return f.statusLocked(j), false
	case j.State == StateBackoff || j.State == StateParked,
		j.State == StateQueued && f.q.Remove(id):
		if t := f.timers[id]; t != nil {
			t.Stop()
			delete(f.timers, id)
		}
		j.State = StateCancelled
		f.appendDurable(&Entry{Job: id, Ev: EvCancelled})
	default:
		// Running (or being handed to a worker this instant): the step
		// loop's Poll sees the flag and halts; the worker journals the
		// cancellation.
		j.cancel.Store(true)
	}
	return f.statusLocked(j), true
}

// KillWorker aborts a random in-flight attempt mid-step, simulating a
// worker process dying (chaos injection; no parting snapshot is
// written, so the retry resumes from the last durable checkpoint). It
// returns the victim's ID, or "" when nothing was running.
func (f *Farm) KillWorker() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var running []*Job
	for _, j := range f.jobs {
		if j.State == StateRunning {
			running = append(running, j)
		}
	}
	if len(running) == 0 {
		return ""
	}
	sort.Slice(running, func(a, b int) bool { return running[a].seq < running[b].seq })
	victim := running[f.rng.Intn(len(running))]
	victim.abort.Store(true)
	f.kills++
	return victim.ID
}

// Snapshot reports service statistics.
func (f *Farm) Snapshot() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{
		Workers: f.cfg.Workers, QueueCap: f.cfg.QueueCap,
		Draining: f.draining.Load(),
		UptimeS:  time.Since(f.t0).Seconds(),
		Attempts: f.attempts, KillsInjected: f.kills,
		MTBFEstimateS: f.est.MTBFS(),
		WALRecords:    f.jl.Count(),
		Failures:      map[string]int64{},
	}
	for c, n := range f.failures {
		st.Failures[c] = n
	}
	for _, j := range f.jobs {
		switch j.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateBackoff:
			st.Backoff++
		case StateParked:
			st.Parked++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Drain is the graceful-shutdown protocol: stop admitting, let running
// jobs checkpoint-and-park at their next step boundary, stop the
// workers, close the journal. Parked and queued jobs are re-admitted
// by the next Open. Returns ctx.Err() if workers failed to settle in
// time (the journal is then left open and the caller should exit
// anyway — the journal tolerates that like any crash).
func (f *Farm) Drain(ctx context.Context) error {
	f.mu.Lock()
	f.draining.Store(true)
	for id, t := range f.timers {
		t.Stop()
		delete(f.timers, id)
	}
	f.cond.Broadcast()
	f.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return f.jl.Close()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with a generous deadline (test/convenience path).
func (f *Farm) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return f.Drain(ctx)
}

// jobDir is a job's private checkpoint namespace.
func (f *Farm) jobDir(id string) string { return filepath.Join(f.cfg.Dir, "jobs", id) }

// worker is one execution slot: pop, run, repeat until stop/drain.
func (f *Farm) worker(w int) {
	defer f.wg.Done()
	for {
		j := f.next()
		if j == nil {
			return
		}
		f.runJob(w, j)
	}
}

// next blocks for the next runnable job; nil means the worker should
// exit.
func (f *Farm) next() *Job {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.draining.Load() {
			return nil
		}
		if j := f.q.Pop(); j != nil {
			return j
		}
		f.cond.Wait()
	}
}

// runJob executes one attempt of a job and journals its disposition.
func (f *Farm) runJob(w int, j *Job) {
	f.mu.Lock()
	if j.State.Terminal() {
		f.mu.Unlock()
		return
	}
	j.Attempt++
	j.State = StateRunning
	f.attempts++
	f.appendDurable(&Entry{Job: j.ID, Ev: EvRunning, Attempt: j.Attempt, Worker: w})
	f.mu.Unlock()

	t0 := time.Now()
	res, lastStep, runErr := f.attemptLoop(j)
	dur := time.Since(t0).Seconds()

	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case runErr != nil:
		cause := "error"
		switch {
		case errors.Is(runErr, errWorkerKilled):
			cause = "crash"
		case errors.Is(runErr, errAttemptTimeout):
			cause = "timeout"
		}
		f.failLocked(j, w, cause, runErr.Error())
	case res.Outcome == engine.Completed:
		r := &Result{Hash: HashState(res.Final), Steps: j.Spec.Steps, Bytes: len(res.Final)}
		j.State, j.Result = StateDone, r
		f.appendDurable(&Entry{Job: j.ID, Ev: EvDone, Step: j.Spec.Steps, Result: r})
		f.byKey[j.Spec.Key()] = j.ID
		if f.ewmaJobS == 0 {
			f.ewmaJobS = dur
		} else {
			f.ewmaJobS = 0.8*f.ewmaJobS + 0.2*dur
		}
	case res.Outcome == engine.Halted && j.cancel.Load():
		j.State = StateCancelled
		f.appendDurable(&Entry{Job: j.ID, Ev: EvCancelled})
	case res.Outcome == engine.Halted:
		// Draining: the state at the halt boundary is already durable in
		// the job's store (FinalOnHalt submitted it to the sink).
		j.State, j.CkptStep = StateParked, lastStep
		f.appendDurable(&Entry{Job: j.ID, Ev: EvParked, Step: lastStep})
	case res.Outcome == engine.Tripped:
		f.failLocked(j, w, "watchdog", "numerical-health watchdog tripped")
	}
	if j.State.Terminal() {
		// Terminal transitions shrink the minimal replay set's distance to
		// the log, so this is the moment a long-running daemon's journal
		// can stop growing. Failure is non-fatal: the old log is intact
		// and the next open retries.
		if err := f.maybeCompactLocked(); err != nil {
			f.cfg.Logf("farm: runtime journal compaction failed (next open retries): %v", err)
		}
	}
}

// attemptLoop builds (or resumes) the solver and drives one supervised
// attempt. Chaos kills and timeouts unwind by panic, matching the
// crash model, and surface as classified errors.
func (f *Farm) attemptLoop(j *Job) (res engine.Result, lastStep int, err error) {
	spec := j.Spec
	solver, err := NewSolver(spec)
	if err != nil {
		return res, 0, err
	}
	store, err := ckpt.NewDirStore(f.jobDir(j.ID))
	if err != nil {
		return res, 0, err
	}
	if step, states, lerr := ckpt.Latest(store, 1); lerr != nil {
		return res, 0, lerr
	} else if step >= 0 {
		if rerr := engine.Restore(solver, states[0]); rerr != nil {
			return res, 0, rerr
		}
	}
	lastStep = solver.StepCount()

	timeout := time.Duration(spec.TimeoutS * float64(time.Second))
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	deadline := time.Now().Add(timeout)
	cadence := spec.CkptEvery
	if cadence == 0 {
		cadence = spec.Steps / 5
		if cadence < 1 {
			cadence = 1
		}
	}
	sink := ckpt.NewSyncWriter(store, ckpt.WriterConfig{
		Kind: spec.Workload, Retention: ckpt.Retention{KeepLast: 2}})
	loop := engine.Loop{
		Solver: solver, Steps: spec.Steps,
		CheckpointEvery: cadence, Sink: sink, FinalOnHalt: true,
		OnCheckpoint: func(step int, state []byte) {
			// The sync sink made the record durable before this hook, so
			// the journal never claims a checkpoint the store lacks. The
			// append takes only the journal's own lock — per-job ordering
			// holds because this goroutine writes every entry of this
			// attempt — so status reads never wait out a checkpoint fsync.
			f.appendDurable(&Entry{Job: j.ID, Ev: EvCheckpointed, Step: step})
			f.mu.Lock()
			j.CkptStep = step
			f.mu.Unlock()
		},
		OnStep: func(step int) {
			lastStep = step
			if j.abort.Load() {
				panic(abortAttempt{errWorkerKilled})
			}
			if time.Now().After(deadline) {
				panic(abortAttempt{errAttemptTimeout})
			}
		},
		Poll:     func() bool { return f.draining.Load() || j.cancel.Load() },
		Watchdog: engine.Watchdog{MaxAbs: 1e12},
	}
	defer func() {
		if p := recover(); p != nil {
			a, ok := p.(abortAttempt)
			if !ok {
				panic(p)
			}
			err = a.err
		}
	}()
	res, err = loop.Run()
	return res, lastStep, err
}

// failLocked classifies a failed attempt, feeds the failure stream
// into the MTBF estimator (hardware-ish causes only, mirroring the
// supervisor's convention that watchdog trips don't consume hardware),
// and either schedules a jittered exponential-backoff retry or marks
// the job failed when its budget is spent.
func (f *Farm) failLocked(j *Job, w int, cause, msg string) {
	j.Cause, j.Err = cause, msg
	j.abort.Store(false)
	f.failures[cause]++
	if cause == "crash" || cause == "timeout" {
		f.est.ObserveFailure(w, time.Since(f.t0).Seconds())
	}
	budget := j.Spec.Retries
	if budget == 0 {
		budget = 3
	} else if budget < 0 {
		budget = 0
	}
	if j.Attempt > budget {
		j.State = StateFailed
		f.appendDurable(&Entry{Job: j.ID, Ev: EvFailed, Attempt: j.Attempt, Cause: cause, Err: msg})
		return
	}
	backoff := f.cfg.BackoffBase << (j.Attempt - 1)
	if backoff > f.cfg.BackoffMax || backoff <= 0 {
		backoff = f.cfg.BackoffMax
	}
	// Jitter in [0.5, 1.5): a farm-wide failure (say the daemon's node
	// rebooting) must not march every victim back in lockstep.
	backoff = time.Duration(float64(backoff) * (0.5 + f.rng.Float64()))
	j.State = StateBackoff
	f.appendDurable(&Entry{Job: j.ID, Ev: EvRetrying, Attempt: j.Attempt,
		Cause: cause, BackoffMS: backoff.Milliseconds()})
	if f.draining.Load() {
		return // replay re-admits it
	}
	id := j.ID
	f.timers[id] = time.AfterFunc(backoff, func() { f.requeue(id) })
}

// requeue moves a backoff job back into the run queue.
func (f *Farm) requeue(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.timers, id)
	j := f.jobs[id]
	if j == nil || j.State != StateBackoff || f.draining.Load() {
		return
	}
	j.State = StateQueued
	f.q.Push(j)
	f.cond.Signal()
}
