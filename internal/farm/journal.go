package farm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"nektar/internal/ckpt"
)

// Journal is the farm's write-ahead log: an append-only file of job
// transitions, each framed with internal/ckpt's record format (magic,
// version, kind tag, CRC-32 trailer) under a length prefix, and
// fsynced before the append returns. A transition is acknowledged to a
// client only after its entry is durable, so the journal is the
// farm's source of truth across any crash.
//
// Crash anatomy the format survives:
//   - SIGKILL between entries: the file ends at a record boundary and
//     replays cleanly.
//   - SIGKILL mid-append (torn tail): the final record fails its
//     length or CRC check; Open truncates the file back to the last
//     verified boundary. Nothing after a torn record is reachable —
//     appends are strictly sequential — so truncation loses only the
//     unacknowledged tail.
//   - Host crash during compaction: the rewritten journal goes to a
//     temp file, is fsynced, atomically renamed, and the directory
//     fsynced (ckpt.WriteFileAtomic), so either the old or the new
//     journal is visible, never a mix.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	seq   int64 // last assigned sequence number
	count int   // records currently in the file
}

const (
	walKind = "farmwal"
	// maxWALRecord bounds one entry's frame; anything larger on disk is
	// corruption, not data.
	maxWALRecord = 1 << 20
)

// ErrEntryTooLarge rejects an entry whose encoded record would exceed
// maxWALRecord. Replay treats any on-disk frame past that bound as a
// torn tail, so an oversized entry that *were* appended would be
// fsynced and acknowledged, then silently truncated away — along with
// every later acknowledged record — at the next open. The one lie the
// journal must never tell; the append fails instead.
var ErrEntryTooLarge = errors.New("farm: journal entry exceeds the 1 MiB record bound")

// OpenJournal opens (creating if needed) the journal at path, replays
// every verifiable entry, and truncates any torn tail so the file ends
// at a record boundary ready for appends.
func OpenJournal(path string) (*Journal, []Entry, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("farm: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("farm: %w", err)
	}
	entries, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("farm: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("farm: %w", err)
	}
	if err := ckpt.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, path: path, count: len(entries)}
	if n := len(entries); n > 0 {
		j.seq = entries[n-1].Seq
	}
	return j, entries, nil
}

// replay decodes entries from the start of f, returning them with the
// offset of the first byte past the last verifiable record. A torn or
// corrupt record ends the replay — never an error — because a tail
// that fails verification is exactly what a crash mid-append leaves.
func replay(f *os.File) ([]Entry, int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("farm: reading journal: %w", err)
	}
	var entries []Entry
	var off int64
	for int64(len(data))-off >= 4 {
		n := int64(binary.BigEndian.Uint32(data[off:]))
		if n == 0 || n > maxWALRecord || off+4+n > int64(len(data)) {
			break // torn or garbage length
		}
		m, payload, derr := ckpt.DecodeRecord(data[off+4 : off+4+n])
		if derr != nil || m.Kind != walKind {
			break // CRC/framing failure: torn tail
		}
		var e Entry
		if json.Unmarshal(payload, &e) != nil {
			break
		}
		entries = append(entries, e)
		off += 4 + n
	}
	return entries, off, nil
}

// Append assigns sequence numbers, frames, writes, and fsyncs the
// entries as one batch (one write, one sync). It returns only once
// the batch is durable; a caller may acknowledge the transition to a
// client the moment Append returns.
func (j *Journal) Append(entries ...*Entry) error {
	if len(entries) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("farm: append on closed journal")
	}
	startSeq := j.seq
	var batch []byte
	for _, e := range entries {
		j.seq++
		e.Seq = j.seq
		frame, err := encodeEntry(e)
		if err != nil {
			j.seq = startSeq
			return err
		}
		batch = append(batch, frame...)
	}
	if _, err := j.f.Write(batch); err != nil {
		return fmt.Errorf("farm: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("farm: journal fsync: %w", err)
	}
	j.count += len(entries)
	return nil
}

// encodeEntry frames one entry: length prefix + ckpt record whose
// virtual "step" is the sequence number.
func encodeEntry(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	rec, err := ckpt.EncodeRecord(ckpt.Meta{Kind: walKind, Step: int(e.Seq)}, payload)
	if err != nil {
		return nil, err
	}
	if len(rec) > maxWALRecord {
		return nil, fmt.Errorf("%w (%d bytes, %s for job %s)", ErrEntryTooLarge, len(rec), e.Ev, e.Job)
	}
	frame := make([]byte, 4+len(rec))
	binary.BigEndian.PutUint32(frame, uint32(len(rec)))
	copy(frame[4:], rec)
	return frame, nil
}

// Count reports the number of records in the file.
func (j *Journal) Count() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Compact atomically replaces the journal's contents with the given
// entries (reassigning sequence numbers from 1), using temp-file +
// fsync + rename + directory fsync so a crash mid-compaction leaves
// either journal, never a hybrid. The farm calls it at startup once
// the live state compresses to far fewer entries than the log holds.
func (j *Journal) Compact(entries []Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("farm: compact on closed journal")
	}
	var buf []byte
	seq := int64(0)
	for i := range entries {
		seq++
		entries[i].Seq = seq
		frame, err := encodeEntry(&entries[i])
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	if err := ckpt.WriteFileAtomic(j.path, buf); err != nil {
		return err
	}
	// Swap the handle to the new file and position for appends.
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("farm: reopening compacted journal: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("farm: %w", err)
	}
	j.f.Close()
	j.f, j.seq, j.count = nf, seq, len(entries)
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
