package farm

import (
	"strings"
	"testing"
	"time"
)

func waitState(t *testing.T, f *Farm, id string, want ...JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := f.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State.Terminal() {
			t.Fatalf("job %s ended %s (cause=%s err=%s), want %v", id, st.State, st.Cause, st.Err, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %v", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func spinSpec(seed int64, steps int) JobSpec {
	return JobSpec{Workload: "spin", Steps: steps, Seed: seed, Work: 8, CkptEvery: 5}
}

// TestFarmRunsJobToReference submits a job and checks the daemon-side
// result matches an uninterrupted in-process reference run.
func TestFarmRunsJobToReference(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := spinSpec(42, 30)
	ref, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, cached, err := f.Submit(spec)
	if err != nil || cached {
		t.Fatalf("Submit: cached=%v err=%v", cached, err)
	}
	st = waitState(t, f, st.ID, StateDone)
	if st.Result == nil || st.Result.Hash != ref.Hash {
		t.Fatalf("farm result %+v, reference %+v", st.Result, ref)
	}
}

// TestFarmResultCache checks idempotent resubmission: an identical spec
// maps onto the existing job, finished or in flight, and never runs
// twice.
func TestFarmResultCache(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := spinSpec(7, 20)
	st1, _, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, f, st1.ID, StateDone)
	st2, cached, err := f.Submit(spec)
	if err != nil || !cached || st2.ID != st1.ID {
		t.Fatalf("resubmit: id=%s cached=%v err=%v, want cache hit on %s", st2.ID, cached, err, st1.ID)
	}
	if st2.Result == nil {
		t.Fatal("cache hit without result")
	}
	// A different priority but same computation still hits the cache...
	spec.Priority = 9
	if _, cached, _ := f.Submit(spec); !cached {
		t.Fatal("priority change broke the result-cache key")
	}
	// ...while a different seed is a different computation.
	other := spinSpec(8, 20)
	st3, cached, err := f.Submit(other)
	if err != nil || cached {
		t.Fatalf("distinct seed cached: %v %v", cached, err)
	}
	waitState(t, f, st3.ID, StateDone)
}

// TestFarmBackpressure fills a capped queue and checks over-admission
// is rejected with a retry hint rather than queued or dropped.
func TestFarmBackpressure(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 0, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := f.Submit(spinSpec(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Submit(spinSpec(2, 10)); err != nil {
		t.Fatal(err)
	}
	_, _, err = f.Submit(spinSpec(3, 10))
	busy, ok := err.(*BusyError)
	if !ok {
		t.Fatalf("over-cap submit: %v, want BusyError", err)
	}
	if busy.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %s, want >= 1s", busy.RetryAfter)
	}
}

// TestFarmChaosKillRetriesToSameHash kills the running attempt and
// checks the retry resumes from the last durable checkpoint to the
// bit-identical result.
func TestFarmChaosKillRetriesToSameHash(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 1, Chaos: true,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := JobSpec{Workload: "spin", Steps: 4000, Seed: 99, Work: 64, CkptEvery: 50}
	ref, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, f, st.ID, StateRunning)
	if victim := f.KillWorker(); victim != st.ID {
		t.Fatalf("KillWorker = %q, want %q", victim, st.ID)
	}
	final := waitState(t, f, st.ID, StateDone)
	if final.Attempt < 2 {
		t.Fatalf("attempt = %d, want a retry", final.Attempt)
	}
	if final.Cause != "crash" {
		t.Fatalf("cause = %q, want crash", final.Cause)
	}
	if final.Result.Hash != ref.Hash {
		t.Fatalf("post-crash result %s != reference %s", final.Result.Hash, ref.Hash)
	}
	stats := f.Snapshot()
	if stats.Failures["crash"] == 0 || stats.KillsInjected == 0 {
		t.Fatalf("chaos not accounted: %+v", stats)
	}
	if stats.MTBFEstimateS <= 0 {
		t.Fatal("crash did not feed the MTBF estimator")
	}
}

// TestFarmTimeoutExhaustsRetries gives a job an impossible deadline and
// a small retry budget, and checks it fails with the timeout cause
// after the right number of attempts.
func TestFarmTimeoutExhaustsRetries(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := JobSpec{Workload: "spin", Steps: 1 << 30, Seed: 5, Work: 256,
		TimeoutS: 0.02, Retries: 2, CkptEvery: 1 << 20}
	st, _, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := f.Status(st.ID)
		if cur.State == StateFailed {
			if cur.Cause != "timeout" || cur.Attempt != 3 {
				t.Fatalf("failed with cause=%q attempt=%d, want timeout after 3 attempts", cur.Cause, cur.Attempt)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never failed: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFarmCancel covers cancellation in the queued and running states.
func TestFarmCancel(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := f.Submit(spinSpec(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := f.Cancel(st.ID); !ok || got.State != StateCancelled {
		t.Fatalf("cancel queued: ok=%v state=%s", ok, got.State)
	}
	if _, ok := f.Cancel(st.ID); ok {
		t.Fatal("cancelling a cancelled job reported ok")
	}
	f.Close()

	f2, err := Open(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	long := JobSpec{Workload: "spin", Steps: 1 << 30, Seed: 2, Work: 64, CkptEvery: 1 << 20}
	st2, _, err := f2.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, f2, st2.ID, StateRunning)
	if _, ok := f2.Cancel(st2.ID); !ok {
		t.Fatal("cancel running returned false")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := f2.Status(st2.ID)
		if cur.State == StateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job never cancelled: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFarmRecoveryRequeues abandons a farm mid-queue (the in-process
// stand-in for SIGKILL: the journal is simply never closed) and checks
// a fresh Open re-admits the queued work, dedups the submissions, and
// runs everything to the reference results.
func TestFarmRecoveryRequeues(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(Config{Dir: dir, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{spinSpec(1, 20), spinSpec(2, 20), spinSpec(3, 20)}
	var ids []string
	for _, s := range specs {
		st, _, err := f.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// No Close: the daemon "dies" here with three acknowledged jobs.

	f2, err := Open(Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for i, id := range ids {
		st, ok := f2.Status(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		ref, _ := RunSpec(specs[i])
		final := waitState(t, f2, st.ID, StateDone)
		if final.Result.Hash != ref.Hash {
			t.Fatalf("job %s: recovered result %s != reference %s", id, final.Result.Hash, ref.Hash)
		}
	}
	// Resubmitting an acknowledged spec after restart is a cache hit,
	// not a duplicate run.
	if _, cached, _ := f2.Submit(specs[0]); !cached {
		t.Fatal("recovered farm forgot the submission identity")
	}
}

// TestFarmDrainParksAndResumes drains a farm mid-run and checks the
// running job parks durably, then resumes on the next Open to the
// bit-identical reference result.
func TestFarmDrainParksAndResumes(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Workload: "spin", Steps: 300000, Seed: 11, Work: 16, CkptEvery: 5000}
	ref, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, f, st.ID, StateRunning)
	if err := f.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	parked, _ := f.Status(st.ID)
	if parked.State != StateParked && parked.State != StateDone {
		t.Fatalf("after drain: state %s, want parked (or done)", parked.State)
	}
	if parked.State == StateParked && parked.CkptStep < 0 {
		t.Fatal("parked without a durable checkpoint step")
	}
	// While draining, submissions are refused.
	if _, _, err := f.Submit(spinSpec(12, 10)); err != ErrDraining {
		t.Fatalf("submit while drained: %v, want ErrDraining", err)
	}

	f2, err := Open(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	final := waitState(t, f2, st.ID, StateDone)
	if final.Result.Hash != ref.Hash {
		t.Fatalf("parked/resumed result %s != reference %s", final.Result.Hash, ref.Hash)
	}
}

// TestFarmNS2DJob runs the real Navier-Stokes workload through the
// farm, including a chaos kill, proving the bit-identity argument on
// actual solver state.
func TestFarmNS2DJob(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 1, Chaos: true,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := JobSpec{Workload: "ns2d", Steps: 12, Seed: 3, CkptEvery: 3, TimeoutS: 120}
	ref, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, f, st.ID, StateRunning)
	f.KillWorker()
	final := waitState(t, f, st.ID, StateDone)
	if final.Result.Hash != ref.Hash {
		t.Fatalf("ns2d post-crash result %s != reference %s", final.Result.Hash, ref.Hash)
	}
}

// TestFarmJournalCompactsAtRuntime drives enough transitions through a
// live farm that the journal compacts without a restart (a long-running
// daemon's log must stay bounded), and checks nothing is lost — in the
// same process and across two reopen cycles.
func TestFarmJournalCompactsAtRuntime(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	var refs []Result
	for i := int64(0); i < 150; i++ {
		spec := JobSpec{Workload: "spin", Steps: 12, Seed: 1000 + i, Work: 4, CkptEvery: 2}
		st, _, err := f.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		if i < 5 {
			r, _ := RunSpec(spec)
			refs = append(refs, r)
		}
	}
	for _, id := range ids {
		waitState(t, f, id, StateDone)
	}
	// 150 jobs x (submitted/admitted/running/done + 6 checkpoints) is
	// ~1500 raw records; runtime compaction must have stepped in once the
	// log crossed the 1024-record floor at >3x its minimal replay set.
	before := f.jl.Count()
	if before > 1024 {
		t.Fatalf("journal never compacted at runtime: %d records at quiescence", before)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if after := f2.jl.Count(); after > before {
		t.Fatalf("journal grew across reopen: %d -> %d records", before, after)
	}
	for i, id := range ids[:5] {
		st, ok := f2.Status(id)
		if !ok || st.State != StateDone || st.Result.Hash != refs[i].Hash {
			t.Fatalf("job %s damaged by compaction: %+v", id, st)
		}
	}
	// The compacted journal still replays: one more cycle.
	f2.Close()
	f3, err := Open(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if st, ok := f3.Status(ids[0]); !ok || st.State != StateDone {
		t.Fatalf("second reopen lost job: %+v", st)
	}
}

// TestValidateBoundsTenant: the tenant name is the one client-
// controlled string stored verbatim in journal entries, so Validate
// must bound it before anything is journaled (an unbounded one could
// grow an entry toward the WAL's record limit).
func TestValidateBoundsTenant(t *testing.T) {
	spec := JobSpec{Workload: "spin", Steps: 1, Tenant: strings.Repeat("t", MaxTenantLen+1)}
	if err := spec.Validate(); err == nil {
		t.Fatal("oversized tenant name accepted")
	}
	spec.Tenant = strings.Repeat("t", MaxTenantLen)
	if err := spec.Validate(); err != nil {
		t.Fatalf("max-length tenant rejected: %v", err)
	}
}

// TestCompactionRewritesQueueSeqs: Compact renumbers the on-disk
// entries from 1, so the job table's in-memory seqs must be renumbered
// with it — otherwise a job submitted after a compaction would carry a
// *smaller* seq than the already-queued jobs and jump the fair queue's
// submission-order tiebreak (and seqs could collide).
func TestCompactionRewritesQueueSeqs(t *testing.T) {
	f, err := Open(Config{Dir: t.TempDir(), Workers: 0, CompactMinRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ids []string
	for i := 0; i < 8; i++ {
		st, _, err := f.Submit(JobSpec{Workload: "spin", Steps: 4, Seed: int64(9100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Bloat the log with transition noise so compaction is worthwhile,
	// then compact in place (Workers: 0 runs nothing, so the runtime
	// trigger never fires on its own).
	f.mu.Lock()
	for _, id := range ids {
		for s := 1; s <= 8; s++ {
			f.appendDurable(&Entry{Job: id, Ev: EvCheckpointed, Step: s})
		}
	}
	before := f.jl.Count()
	if err := f.maybeCompactLocked(); err != nil {
		f.mu.Unlock()
		t.Fatal(err)
	}
	if c := f.jl.Count(); c >= before {
		f.mu.Unlock()
		t.Fatalf("journal not compacted: %d -> %d records", before, c)
	}
	// Post-compaction seqs must stay in submission order and within the
	// compacted journal's range.
	var prev, maxSeq int64
	for _, id := range ids {
		s := f.jobs[id].seq
		if s <= prev {
			f.mu.Unlock()
			t.Fatalf("compaction broke submission order: job %s has seq %d after %d", id, s, prev)
		}
		prev = s
		maxSeq = s
	}
	if maxSeq > int64(f.jl.Count()) {
		f.mu.Unlock()
		t.Fatalf("stale in-memory seq %d survived compaction to %d records", maxSeq, f.jl.Count())
	}
	f.mu.Unlock()

	st, _, err := f.Submit(JobSpec{Workload: "spin", Steps: 4, Seed: 9200})
	if err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	newSeq := f.jobs[st.ID].seq
	f.mu.Unlock()
	if newSeq <= maxSeq {
		t.Fatalf("post-compaction submission got seq %d, not after queued max %d", newSeq, maxSeq)
	}
}
