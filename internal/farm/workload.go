package farm

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/mesh"
	"nektar/internal/spectral"
	"nektar/internal/timing"
)

// Farm workloads are serial, host-run engine.Solver factories — the
// unit of work a single farm worker executes. "spin" is a synthetic
// deterministic kernel cheap enough to submit by the thousand (the
// chaos harness's ammunition); "ns2d" is the real spectral/hp
// Navier-Stokes probe, so the farm's bit-identity claims are proven on
// actual solver state, not just a toy.

// farmWorkload is one registered factory.
type farmWorkload struct {
	Description string
	New         func(spec JobSpec) (engine.Solver, error)
}

var farmWorkloads = map[string]farmWorkload{
	"spin": {
		Description: "synthetic deterministic mixing kernel (fast, for load/chaos tests)",
		New: func(spec JobSpec) (engine.Solver, error) {
			work := spec.Work
			if work <= 0 {
				work = 256
			}
			return NewSpinSolver(spec.Seed, work), nil
		},
	},
	"ns2d": {
		Description: "serial 2D spectral/hp Navier-Stokes bluff-body probe",
		New: func(spec JobSpec) (engine.Solver, error) {
			nt, nr, order := spec.Nt, spec.Nr, spec.Order
			if nt == 0 {
				nt = 12
			}
			if nr == 0 {
				nr = 3
			}
			if order == 0 {
				order = 4
			}
			m, err := mesh.BluffBody(order, nt, nr)
			if err != nil {
				return nil, err
			}
			ns, err := core.NewNS2D(m, core.NS2DConfig{
				Nu: 1.0 / 500, Dt: 2e-3, Order: 2,
				VelDirichlet: map[string]core.VelBC{
					"wall":   core.ConstantVel(0, 0),
					"inflow": core.ConstantVel(1, 0),
				},
				PresDirichlet: map[string]bool{"outflow": true},
			})
			if err != nil {
				return nil, err
			}
			// The seed perturbs the uniform inflow deterministically, so
			// distinct seeds are distinct trajectories and equal seeds are
			// bit-identical ones.
			u := 1 + 1e-3*float64(mix64(uint64(spec.Seed))%1000)/1000
			v := 1e-4 * float64(mix64(uint64(spec.Seed)+1)%1000) / 1000
			ns.SetUniformInitial(u, v)
			return ns, nil
		},
	},
	"turb2d": {
		Description: "serial decaying 2D pseudospectral turbulence (Nt = grid size)",
		New: func(spec JobSpec) (engine.Solver, error) {
			return spectral.NewTurb2D(spectralCfg(spec), nil, nil)
		},
	},
	"turbforce": {
		Description: "serial forced 2D pseudospectral turbulence (Nt = grid size)",
		New: func(spec JobSpec) (engine.Solver, error) {
			return spectral.NewForced(spectralCfg(spec), nil, nil)
		},
	},
}

// spectralCfg maps a farm spec onto a spectral config: Nt doubles as
// the grid size (0 = a 16^2 demonstration grid) and the seed picks the
// PAO phases and the forcing noise, so equal specs are bit-identical
// trajectories — the property the result cache keys on.
func spectralCfg(spec JobSpec) spectral.Config {
	n := spec.Nt
	if n == 0 {
		n = 16
	}
	return spectral.Config{N: n, Re: 500, Dt: 2e-3, Seed: uint64(spec.Seed)}
}

// FarmWorkloadNames lists the registered workloads, sorted.
func FarmWorkloadNames() []string {
	names := make([]string, 0, len(farmWorkloads))
	for n := range farmWorkloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewSolver builds the solver a spec describes.
func NewSolver(spec JobSpec) (engine.Solver, error) {
	wl, ok := farmWorkloads[spec.Workload]
	if !ok {
		return nil, fmt.Errorf("farm: unknown workload %q: registered workloads are %s",
			spec.Workload, strings.Join(FarmWorkloadNames(), ", "))
	}
	return wl.New(spec)
}

// Validate rejects specs the farm cannot run, before anything is
// journaled or queued.
func (s JobSpec) Validate() error {
	if _, ok := farmWorkloads[s.Workload]; !ok {
		return fmt.Errorf("farm: unknown workload %q: registered workloads are %s",
			s.Workload, strings.Join(FarmWorkloadNames(), ", "))
	}
	if s.Steps < 1 {
		return fmt.Errorf("farm: job needs a positive step count, got %d", s.Steps)
	}
	if s.CkptEvery < 0 {
		return fmt.Errorf("farm: negative checkpoint cadence %d", s.CkptEvery)
	}
	if s.TimeoutS < 0 {
		return fmt.Errorf("farm: negative timeout %gs", s.TimeoutS)
	}
	if len(s.Tenant) > MaxTenantLen {
		return fmt.Errorf("farm: tenant name is %d bytes, max %d", len(s.Tenant), MaxTenantLen)
	}
	return nil
}

// RunSpec executes a spec uninterrupted in-process and returns its
// Result — the reference the chaos harness compares daemon-computed
// results against, and the cheapest way to answer "what should this
// job produce?"
func RunSpec(spec JobSpec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	s, err := NewSolver(spec)
	if err != nil {
		return Result{}, err
	}
	loop := engine.Loop{Solver: s, Steps: spec.Steps,
		Watchdog: engine.Watchdog{Disabled: true}}
	res, err := loop.Run()
	if err != nil {
		return Result{}, err
	}
	return Result{Hash: HashState(res.Final), Steps: spec.Steps, Bytes: len(res.Final)}, nil
}

// SpinSolver is the synthetic workload: a lattice of 64-bit lanes
// mixed by a xorshift-style permutation every step. It is a real
// engine.Solver — checkpointable, restorable, health-sampled — whose
// step cost is tunable and whose trajectory is exactly reproducible,
// which is all the chaos harness needs from physics.
type SpinSolver struct {
	st     spinState
	work   int
	stages *timing.Stages
}

type spinState struct {
	Step  int
	Lanes [16]uint64
}

// NewSpinSolver seeds a solver; work is the number of lattice mixes
// per step (cost knob).
func NewSpinSolver(seed int64, work int) *SpinSolver {
	s := &SpinSolver{work: work, stages: timing.NewStages("mix")}
	x := uint64(seed)
	for i := range s.st.Lanes {
		x = mix64(x + 0x9e3779b97f4a7c15)
		s.st.Lanes[i] = x
	}
	return s
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Step implements engine.Solver.
func (s *SpinSolver) Step() {
	l := &s.st.Lanes
	for w := 0; w < s.work; w++ {
		for i := range l {
			l[i] = mix64(l[i] + l[(i+1)%len(l)] + uint64(w))
		}
	}
	s.st.Step++
}

// StepCount implements engine.Solver.
func (s *SpinSolver) StepCount() int { return s.st.Step }

// Stages implements engine.Solver.
func (s *SpinSolver) Stages() *timing.Stages { return s.stages }

// Checkpoint implements engine.Solver.
func (s *SpinSolver) Checkpoint(w io.Writer) error { return engine.EncodeState(w, &s.st) }

// Restore implements engine.Solver.
func (s *SpinSolver) Restore(r io.Reader) error {
	var st spinState
	if err := engine.DecodeState(r, &st); err != nil {
		return err
	}
	s.st = st
	return nil
}

// HealthSample implements engine.Solver: the lattice is always finite
// and bounded, so the watchdog never trips on it.
func (s *SpinSolver) HealthSample() (float64, bool) {
	return float64(s.st.Lanes[0] >> 40), true
}
