package farm

import "sort"

// fairQueue orders runnable jobs by priority with fair-share across
// tenants: each Pop picks the highest-priority head-of-queue, breaking
// priority ties in favor of the tenant that has been served the least,
// then by submission order. A tenant flooding the farm with
// equal-priority work therefore cannot starve the others — it only
// raises its own served count and yields alternate slots — while a
// genuinely higher-priority job still jumps every line.
//
// Not safe for concurrent use; the farm guards it with its mutex.
type fairQueue struct {
	tenants map[string]*tenantQueue
	served  map[string]int64
	size    int
}

type tenantQueue struct {
	// jobs is kept sorted by (priority desc, seq asc); head is jobs[0].
	jobs []*Job
}

func newFairQueue() *fairQueue {
	return &fairQueue{tenants: map[string]*tenantQueue{}, served: map[string]int64{}}
}

func (q *fairQueue) Len() int { return q.size }

// Push inserts a job in its tenant's queue, keeping the order
// invariant.
func (q *fairQueue) Push(j *Job) {
	tenant := j.Spec.Tenant
	tq := q.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		q.tenants[tenant] = tq
	}
	i := sort.Search(len(tq.jobs), func(i int) bool {
		o := tq.jobs[i]
		if o.Spec.Priority != j.Spec.Priority {
			return o.Spec.Priority < j.Spec.Priority
		}
		return o.seq > j.seq
	})
	tq.jobs = append(tq.jobs, nil)
	copy(tq.jobs[i+1:], tq.jobs[i:])
	tq.jobs[i] = j
	q.size++
}

// Pop removes and returns the next job to run, or nil when empty.
func (q *fairQueue) Pop() *Job {
	var best *Job
	var bestTenant string
	for tenant, tq := range q.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		head := tq.jobs[0]
		if best == nil || headLess(q, head, tenant, best, bestTenant) {
			best, bestTenant = head, tenant
		}
	}
	if best == nil {
		return nil
	}
	tq := q.tenants[bestTenant]
	tq.jobs = tq.jobs[1:]
	if len(tq.jobs) == 0 {
		delete(q.tenants, bestTenant)
	}
	q.served[bestTenant]++
	q.size--
	return best
}

// headLess reports whether candidate a (from tenant ta) should be
// served before the current best b (from tenant tb).
func headLess(q *fairQueue, a *Job, ta string, b *Job, tb string) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	if q.served[ta] != q.served[tb] {
		return q.served[ta] < q.served[tb]
	}
	return a.seq < b.seq
}

// Remove deletes a job by ID (a queued-state cancellation), reporting
// whether it was present.
func (q *fairQueue) Remove(id string) bool {
	for tenant, tq := range q.tenants {
		for i, j := range tq.jobs {
			if j.ID == id {
				tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
				if len(tq.jobs) == 0 {
					delete(q.tenants, tenant)
				}
				q.size--
				return true
			}
		}
	}
	return false
}
