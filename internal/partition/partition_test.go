package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nektar/internal/mesh"
)

// gridGraph builds an nx-by-ny 2D grid graph with unit weights.
func gridGraph(nx, ny int) *Graph {
	b := NewBuilder(nx * ny)
	id := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				b.AddEdge(id(i, j), id(i+1, j), 1)
			}
			if j+1 < ny {
				b.AddEdge(id(i, j), id(i, j+1), 1)
			}
		}
	}
	return b.Graph()
}

func TestBuilderCSR(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(0, 1, 1) // accumulates
	g := b.Graph()
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if got := g.Xadj[1] - g.Xadj[0]; got != 1 {
		t.Fatalf("deg(0) = %d", got)
	}
	if got := g.Xadj[2] - g.Xadj[1]; got != 2 {
		t.Fatalf("deg(1) = %d", got)
	}
	if g.Adjwgt[g.Xadj[0]] != 3 {
		t.Fatalf("edge 0-1 weight = %d, want 3", g.Adjwgt[g.Xadj[0]])
	}
}

func TestPartitionTrivial(t *testing.T) {
	g := gridGraph(4, 4)
	part, err := Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
	if _, err := Partition(g, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func checkBalanceAndCut(t *testing.T, g *Graph, part []int, k int, maxImbalance float64, maxCut int) {
	t.Helper()
	w := PartWeights(g, part, k)
	total := 0
	for _, x := range w {
		total += x
	}
	ideal := float64(total) / float64(k)
	for p, x := range w {
		if float64(x) > ideal*(1+maxImbalance) || float64(x) < ideal*(1-maxImbalance) {
			t.Fatalf("part %d weight %d, ideal %.1f (weights %v)", p, x, ideal, w)
		}
	}
	if cut := g.EdgeCut(part); cut > maxCut {
		t.Fatalf("edge cut %d > %d", cut, maxCut)
	}
}

func TestBisectGrid(t *testing.T) {
	g := gridGraph(16, 16)
	part, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal bisection of a 16x16 grid cuts 16 edges; allow slack.
	checkBalanceAndCut(t, g, part, 2, 0.15, 40)
}

func TestKWayGrid(t *testing.T) {
	for _, k := range []int{3, 4, 8} {
		g := gridGraph(20, 20)
		part, err := Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		// All parts populated.
		seen := make([]bool, k)
		for _, p := range part {
			if p < 0 || p >= k {
				t.Fatalf("part id %d out of range", p)
			}
			seen[p] = true
		}
		for p, ok := range seen {
			if !ok {
				t.Fatalf("k=%d: part %d empty", k, p)
			}
		}
		checkBalanceAndCut(t, g, part, k, 0.30, 150)
	}
}

func TestPartitionBeatsNaiveStriping(t *testing.T) {
	// The multilevel partitioner should produce a much smaller cut
	// than slicing vertices by index on a grid whose natural index
	// order is row-major.
	g := gridGraph(24, 24)
	part, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	striped := make([]int, n)
	for v := range striped {
		striped[v] = v * 4 / n
	}
	if g.EdgeCut(part) > g.EdgeCut(striped)*2 {
		t.Fatalf("multilevel cut %d much worse than striping %d", g.EdgeCut(part), g.EdgeCut(striped))
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two disjoint cliques: the bisection must split them apart with
	// zero cut.
	b := NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j, 1)
			b.AddEdge(4+i, 4+j, 1)
		}
	}
	g := b.Graph()
	part, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cut := g.EdgeCut(part); cut != 0 {
		t.Fatalf("cut = %d, want 0", cut)
	}
}

func TestWeightedVertices(t *testing.T) {
	// One heavy vertex should sit alone against many light ones.
	b := NewBuilder(5)
	b.SetVertexWeight(0, 4)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i, 1)
	}
	g := b.Graph()
	part, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, part, 2)
	if w[0] < 3 || w[0] > 5 || w[1] < 3 || w[1] > 5 {
		t.Fatalf("weights %v not balanced", w)
	}
}

func TestFromMesh2D(t *testing.T) {
	m, err := mesh.RectQuad(3, 4, 4, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := FromMesh(m)
	if g.N() != 16 {
		t.Fatalf("N = %d", g.N())
	}
	// Interior element (1,1) = index 5 has 4 neighbors.
	if d := g.Xadj[6] - g.Xadj[5]; d != 4 {
		t.Fatalf("interior element degree %d, want 4", d)
	}
	part, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkBalanceAndCut(t, g, part, 4, 0.35, 200)
}

func TestFromMesh3D(t *testing.T) {
	m, err := mesh.BoxHex(2, 3, 3, 3, 0, 1, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := FromMesh(m)
	if g.N() != 27 {
		t.Fatalf("N = %d", g.N())
	}
	// Corner elements have 3 face neighbors.
	if d := g.Xadj[1] - g.Xadj[0]; d != 3 {
		t.Fatalf("corner degree %d, want 3", d)
	}
	part, err := Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range part {
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("parts used: %v", seen)
	}
}

func TestRandomWeightedGraphsBalanced(t *testing.T) {
	// Property: random connected weighted graphs partition into k
	// non-empty parts with bounded imbalance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 10
		b := NewBuilder(n)
		// Random spanning tree keeps it connected.
		for v := 1; v < n; v++ {
			b.AddEdge(v, rng.Intn(v), rng.Intn(3)+1)
		}
		extra := rng.Intn(2 * n)
		for e := 0; e < extra; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v, rng.Intn(3)+1)
			}
		}
		for v := 0; v < n; v++ {
			b.SetVertexWeight(v, rng.Intn(4)+1)
		}
		g := b.Graph()
		k := rng.Intn(4) + 2
		part, err := Partition(g, k)
		if err != nil {
			return false
		}
		w := PartWeights(g, part, k)
		total := 0
		empty := false
		for _, x := range w {
			total += x
			if x == 0 {
				empty = true
			}
		}
		if empty {
			return false
		}
		ideal := float64(total) / float64(k)
		for _, x := range w {
			// Generous bound: random small graphs with heavy vertices
			// cannot always balance tightly.
			if float64(x) > 2.2*ideal+4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
