// Package partition implements multilevel graph partitioning in the
// style of METIS (Karypis & Kumar 1995), which the paper uses for the
// element-based domain decomposition of Nektar-ALE: heavy-edge
// matching coarsening, greedy region-growing initial bisection, and
// Kernighan-Lin/Fiduccia-Mattheyses boundary refinement, applied
// recursively for k-way partitions.
package partition

import (
	"fmt"
	"sort"
)

// Graph is an undirected weighted graph in CSR form.
type Graph struct {
	Xadj   []int // length n+1
	Adjncy []int // concatenated adjacency lists
	Adjwgt []int // edge weights, parallel to Adjncy
	Vwgt   []int // vertex weights, length n
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Xadj) - 1 }

// Builder accumulates an adjacency structure for conversion to CSR.
type Builder struct {
	n     int
	vwgt  []int
	edges []map[int]int // neighbor -> weight
}

// NewBuilder creates a builder for n vertices with unit weights.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, vwgt: make([]int, n), edges: make([]map[int]int, n)}
	for i := range b.vwgt {
		b.vwgt[i] = 1
		b.edges[i] = map[int]int{}
	}
	return b
}

// SetVertexWeight assigns the computational weight of vertex v.
func (b *Builder) SetVertexWeight(v, w int) { b.vwgt[v] = w }

// AddEdge adds (or accumulates onto) the undirected edge u-v.
func (b *Builder) AddEdge(u, v, w int) {
	if u == v {
		return
	}
	b.edges[u][v] += w
	b.edges[v][u] += w
}

// Graph converts the builder to CSR form.
func (b *Builder) Graph() *Graph {
	g := &Graph{Xadj: make([]int, b.n+1), Vwgt: append([]int(nil), b.vwgt...)}
	for v := 0; v < b.n; v++ {
		g.Xadj[v+1] = g.Xadj[v] + len(b.edges[v])
	}
	g.Adjncy = make([]int, g.Xadj[b.n])
	g.Adjwgt = make([]int, g.Xadj[b.n])
	for v := 0; v < b.n; v++ {
		nbrs := make([]int, 0, len(b.edges[v]))
		for u := range b.edges[v] {
			nbrs = append(nbrs, u)
		}
		sort.Ints(nbrs)
		off := g.Xadj[v]
		for i, u := range nbrs {
			g.Adjncy[off+i] = u
			g.Adjwgt[off+i] = b.edges[v][u]
		}
	}
	return g
}

// EdgeCut returns the total weight of edges crossing parts.
func (g *Graph) EdgeCut(part []int) int {
	cut := 0
	for v := 0; v < g.N(); v++ {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if u > v && part[u] != part[v] {
				cut += g.Adjwgt[e]
			}
		}
	}
	return cut
}

// PartWeights returns the total vertex weight per part.
func PartWeights(g *Graph, part []int, k int) []int {
	w := make([]int, k)
	for v, p := range part {
		w[p] += g.Vwgt[v]
	}
	return w
}

// Partition splits the graph into k balanced parts, returning the part
// id of each vertex.
func Partition(g *Graph, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1")
	}
	n := g.N()
	if k > n {
		// Empty parts would leave ranks with no elements and break the
		// halo-exchange pattern downstream (observed as a deadlock, not
		// an error) — refuse up front.
		return nil, fmt.Errorf("partition: cannot split %d vertices into %d parts", n, k)
	}
	part := make([]int, n)
	if k == 1 {
		return part, nil
	}
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i
	}
	recurse(g, verts, 0, k, part)
	return part, nil
}

// recurse assigns parts [base, base+k) to the given vertex subset.
func recurse(g *Graph, verts []int, base, k int, part []int) {
	if k == 1 {
		for _, v := range verts {
			part[v] = base
		}
		return
	}
	kl := k / 2
	left, right := bisect(g, verts, float64(kl)/float64(k))
	recurse(g, left, base, kl, part)
	recurse(g, right, base+kl, k-kl, part)
}

// subgraph extracts the induced subgraph on verts, returning it plus
// the local-to-parent vertex mapping.
func subgraph(g *Graph, verts []int) (*Graph, []int) {
	loc := map[int]int{}
	for i, v := range verts {
		loc[v] = i
	}
	b := NewBuilder(len(verts))
	for i, v := range verts {
		b.SetVertexWeight(i, g.Vwgt[v])
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if j, ok := loc[u]; ok && j > i {
				b.AddEdge(i, j, g.Adjwgt[e])
			}
		}
	}
	return b.Graph(), verts
}

// bisect splits a vertex subset into two groups whose weight ratio
// approximates frac, via multilevel bisection of the induced subgraph.
func bisect(g *Graph, verts []int, frac float64) (left, right []int) {
	sg, back := subgraph(g, verts)
	side := multilevelBisect(sg, frac)
	for i, s := range side {
		if s == 0 {
			left = append(left, back[i])
		} else {
			right = append(right, back[i])
		}
	}
	// Guard against degenerate splits.
	if len(left) == 0 {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	} else if len(right) == 0 {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	return left, right
}

// coarse captures one coarsening level.
type coarse struct {
	g     *Graph
	cmap  []int // fine vertex -> coarse vertex
	finer *Graph
}

// multilevelBisect bisects a graph: coarsen by heavy-edge matching,
// split the coarsest graph by greedy region growing, then uncoarsen
// with FM refinement at each level.
func multilevelBisect(g *Graph, frac float64) []int {
	var levels []coarse
	cur := g
	for cur.N() > 64 {
		next, cmap := coarsen(cur)
		if next.N() >= cur.N()*9/10 {
			break // diminishing returns
		}
		levels = append(levels, coarse{g: next, cmap: cmap, finer: cur})
		cur = next
	}
	side := growBisect(cur, frac)
	refineFM(cur, side, frac, 4)
	// Project back up.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int, lv.finer.N())
		for v := range fine {
			fine[v] = side[lv.cmap[v]]
		}
		side = fine
		refineFM(lv.finer, side, frac, 2)
	}
	return side
}

// coarsen contracts a heavy-edge matching.
func coarsen(g *Graph) (*Graph, []int) {
	n := g.N()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in random-ish but deterministic order (by degree).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := g.Xadj[order[a]+1] - g.Xadj[order[a]]
		db := g.Xadj[order[b]+1] - g.Xadj[order[b]]
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	cmap := make([]int, n)
	nc := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		// Heaviest unmatched neighbor.
		best, bestW := -1, -1
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if match[u] < 0 && g.Adjwgt[e] > bestW {
				best, bestW = u, g.Adjwgt[e]
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			cmap[v], cmap[best] = nc, nc
		} else {
			match[v] = v
			cmap[v] = nc
		}
		nc++
	}
	b := NewBuilder(nc)
	cw := make([]int, nc)
	for v := 0; v < n; v++ {
		cw[cmap[v]] += g.Vwgt[v]
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if cmap[u] != cmap[v] {
				b.edges[cmap[v]][cmap[u]] += g.Adjwgt[e]
			}
		}
	}
	for c := 0; c < nc; c++ {
		b.SetVertexWeight(c, cw[c])
	}
	// Each undirected edge was accumulated from both endpoints; halve.
	for v := range b.edges {
		for u := range b.edges[v] {
			// Only adjust once per direction; weights stay symmetric.
			b.edges[v][u] = (b.edges[v][u] + 1) / 2
		}
	}
	return b.Graph(), cmap
}

// growBisect grows side 0 by BFS from a pseudo-peripheral vertex until
// it holds about frac of the total weight.
func growBisect(g *Graph, frac float64) []int {
	n := g.N()
	total := 0
	for _, w := range g.Vwgt {
		total += w
	}
	target := int(float64(total) * frac)
	side := make([]int, n)
	for i := range side {
		side[i] = 1
	}
	start := peripheral(g)
	visited := make([]bool, n)
	queue := []int{start}
	visited[start] = true
	grown := 0
	for len(queue) > 0 && grown < target {
		v := queue[0]
		queue = queue[1:]
		side[v] = 0
		grown += g.Vwgt[v]
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
		if len(queue) == 0 && grown < target {
			// Disconnected graph: seed the next component.
			for u := 0; u < n; u++ {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
					break
				}
			}
		}
	}
	return side
}

// peripheral finds an approximately peripheral vertex by double BFS.
func peripheral(g *Graph) int {
	far := bfsFarthest(g, 0)
	return bfsFarthest(g, far)
}

func bfsFarthest(g *Graph, start int) int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	last := start
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		last = v
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return last
}

// refineFM runs passes of Fiduccia-Mattheyses boundary refinement: it
// repeatedly moves the boundary vertex with the best gain subject to a
// balance constraint, keeping the best configuration seen.
func refineFM(g *Graph, side []int, frac float64, passes int) {
	n := g.N()
	total := 0
	for _, w := range g.Vwgt {
		total += w
	}
	target0 := float64(total) * frac
	tol := float64(total) * 0.05
	w0 := 0
	for v, s := range side {
		if s == 0 {
			w0 += g.Vwgt[v]
		}
	}

	gain := func(v int) int {
		ext, inn := 0, 0
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if side[g.Adjncy[e]] != side[v] {
				ext += g.Adjwgt[e]
			} else {
				inn += g.Adjwgt[e]
			}
		}
		return ext - inn
	}

	for pass := 0; pass < passes; pass++ {
		moved := make([]bool, n)
		improved := false
		for iter := 0; iter < n; iter++ {
			best, bestGain := -1, 0
			for v := 0; v < n; v++ {
				if moved[v] {
					continue
				}
				// Balance check for moving v to the other side.
				nw0 := w0
				if side[v] == 0 {
					nw0 -= g.Vwgt[v]
				} else {
					nw0 += g.Vwgt[v]
				}
				if float64(nw0) < target0-tol || float64(nw0) > target0+tol {
					continue
				}
				if gv := gain(v); gv > bestGain || (best < 0 && gv == bestGain && gv > 0) {
					best, bestGain = v, gv
				}
			}
			if best < 0 || bestGain <= 0 {
				break
			}
			if side[best] == 0 {
				w0 -= g.Vwgt[best]
			} else {
				w0 += g.Vwgt[best]
			}
			side[best] = 1 - side[best]
			moved[best] = true
			improved = true
		}
		if !improved {
			break
		}
	}
}
