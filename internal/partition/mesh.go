package partition

import (
	"nektar/internal/basis"
	"nektar/internal/mesh"
)

// FromMesh builds the element-connectivity graph of a spectral/hp mesh
// — the graph the paper partitions with METIS for Nektar-ALE's
// "intrinsic element based domain decomposition". Vertices are
// elements weighted by their mode count; edges connect elements
// sharing a mesh edge (2D) or face (3D), weighted by the number of
// shared degrees of freedom.
func FromMesh(m *mesh.Mesh) *Graph {
	b := NewBuilder(len(m.Elems))
	p := m.Order
	if m.Dim == 2 {
		byEdge := map[int][]int{}
		for ei, el := range m.Elems {
			b.SetVertexWeight(ei, el.Ref.NModes)
			for _, ed := range el.Edge {
				byEdge[ed] = append(byEdge[ed], ei)
			}
		}
		for _, els := range byEdge {
			if len(els) == 2 {
				b.AddEdge(els[0], els[1], p+1)
			}
		}
		return b.Graph()
	}
	byFace := map[int][]int{}
	for ei, el := range m.Elems {
		b.SetVertexWeight(ei, el.Ref.NModes)
		if el.Ref.Shape == basis.Hex {
			for _, f := range el.Face {
				byFace[f] = append(byFace[f], ei)
			}
		}
	}
	for _, els := range byFace {
		if len(els) == 2 {
			b.AddEdge(els[0], els[1], (p+1)*(p+1))
		}
	}
	return b.Graph()
}
