// Package lapack implements the dense and banded factorizations the
// spectral/hp element solvers rely on, in pure Go on top of package
// blas.
//
// The paper's serial DNS spends about 60% of its time in "matrix
// inversions" via LAPACK direct solvers that exploit the symmetric and
// banded structure of the assembled Laplacian (paper section 4.1,
// stages 5 and 7). Those are the symmetric positive definite banded
// Cholesky routines Dpbtrf/Dpbtrs here. The dense Cholesky and the LU
// factorization support elemental matrix setup and general utilities
// (e.g. quadrature-weight systems).
package lapack

import (
	"errors"
	"fmt"
	"math"

	"nektar/internal/blas"
)

// ErrNotPositiveDefinite is returned by the Cholesky factorizations
// when a non-positive pivot is encountered.
var ErrNotPositiveDefinite = errors.New("lapack: matrix is not positive definite")

// ErrSingular is returned by the LU factorization when an exactly zero
// pivot is encountered.
var ErrSingular = errors.New("lapack: matrix is singular")

// Dpotrf computes the Cholesky factorization A = L * L^T of a
// symmetric positive definite n-by-n row-major matrix in place. Only
// the lower triangle is referenced and overwritten with L.
func Dpotrf(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		d := a[j*lda+j] - blas.Ddot(j, a[j*lda:], 1, a[j*lda:], 1)
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		a[j*lda+j] = d
		if j+1 < n {
			// Column j below the diagonal: a[i][j] = (a[i][j] - L[i][:j].L[j][:j]) / d.
			for i := j + 1; i < n; i++ {
				a[i*lda+j] = (a[i*lda+j] - blas.Ddot(j, a[i*lda:], 1, a[j*lda:], 1)) / d
			}
		}
	}
	return nil
}

// Dpotrs solves A * x = b using the factorization computed by Dpotrf.
// b is overwritten with the solution; nrhs right-hand sides are stored
// as the columns of the row-major n-by-nrhs matrix b with leading
// dimension ldb.
func Dpotrs(n, nrhs int, a []float64, lda int, b []float64, ldb int) {
	blas.Dtrsm(blas.Left, blas.Lower, blas.NoTrans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
	blas.Dtrsm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
}

// BandStorage describes the packed symmetric band layout used by the
// Dpb routines: row i of the packed array holds the lower band of
// matrix row i, i.e. packed[i*(kd+1)+(j-i+kd)] = A(i,j) for
// max(0, i-kd) <= j <= i. Elements left of the band are unused.
//
// This mirrors LAPACK's 'L' band storage transposed to row-major.
type BandStorage struct {
	N  int       // matrix dimension
	Kd int       // number of sub-diagonals
	AB []float64 // packed band, length N*(Kd+1)
}

// NewBandStorage allocates a zeroed packed band matrix.
func NewBandStorage(n, kd int) *BandStorage {
	return &BandStorage{N: n, Kd: kd, AB: make([]float64, n*(kd+1))}
}

// At returns A(i, j), exploiting symmetry. Out-of-band elements are
// zero.
func (b *BandStorage) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	if i-j > b.Kd {
		return 0
	}
	return b.AB[i*(b.Kd+1)+(j-i+b.Kd)]
}

// Set assigns A(i, j) = v (and by symmetry A(j, i)). It panics if
// (i, j) lies outside the band.
func (b *BandStorage) Set(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	if i-j > b.Kd {
		panic(fmt.Sprintf("lapack: Set(%d,%d) outside band kd=%d", i, j, b.Kd))
	}
	b.AB[i*(b.Kd+1)+(j-i+b.Kd)] = v
}

// Add accumulates v into A(i, j). It panics outside the band.
func (b *BandStorage) Add(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	if i-j > b.Kd {
		panic(fmt.Sprintf("lapack: Add(%d,%d) outside band kd=%d", i, j, b.Kd))
	}
	b.AB[i*(b.Kd+1)+(j-i+b.Kd)] += v
}

// Dpbtrf computes the Cholesky factorization A = L*L^T of a symmetric
// positive definite band matrix in place. On return the packed storage
// holds the banded factor L in the same layout.
func Dpbtrf(m *BandStorage) error {
	n, kd, ab := m.N, m.Kd, m.AB
	w := kd + 1
	// Operation accounting: the banded factorization performs
	// ~n*kd*(kd+1) flops; record it as a gemm-class kernel since its
	// inner loops are dense dot products.
	recordFactor(n, kd)
	for i := 0; i < n; i++ {
		jmin := i - kd
		if jmin < 0 {
			jmin = 0
		}
		for j := jmin; j <= i; j++ {
			lmin := jmin
			if j-kd > lmin {
				lmin = j - kd
			}
			sum := ab[i*w+(j-i+kd)]
			// sum -= L[i][lmin:j] . L[j][lmin:j]
			li := i*w + (lmin - i + kd)
			lj := j*w + (lmin - j + kd)
			for l := lmin; l < j; l++ {
				sum -= ab[li] * ab[lj]
				li++
				lj++
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, i, sum)
				}
				ab[i*w+kd] = math.Sqrt(sum)
			} else {
				ab[i*w+(j-i+kd)] = sum / ab[j*w+kd]
			}
		}
	}
	return nil
}

// Dpbtrs solves A*x = b using a factorization computed by Dpbtrf,
// overwriting b with the solution.
func Dpbtrs(m *BandStorage, b []float64) {
	n, kd, ab := m.N, m.Kd, m.AB
	w := kd + 1
	recordSolve(n, kd)
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		jmin := i - kd
		if jmin < 0 {
			jmin = 0
		}
		sum := b[i]
		off := i*w + (jmin - i + kd)
		for j := jmin; j < i; j++ {
			sum -= ab[off] * b[j]
			off++
		}
		b[i] = sum / ab[i*w+kd]
	}
	// Backward: L^T x = y. Column i of L^T is row i of L, so traverse
	// rows j > i whose band reaches back to i.
	for i := n - 1; i >= 0; i-- {
		jmax := i + kd
		if jmax > n-1 {
			jmax = n - 1
		}
		sum := b[i]
		for j := i + 1; j <= jmax; j++ {
			sum -= ab[j*w+(i-j+kd)] * b[j]
		}
		b[i] = sum / ab[i*w+kd]
	}
}

// recordFactor accounts the banded Cholesky factorization as
// gemm-class work (dense inner products over the band).
func recordFactor(n, kd int) {
	var c blas.Counts
	flops := int64(n) * int64(kd) * int64(kd+1)
	c.Ops[blas.KernelDgemm] = blas.Op{Calls: 1, N: int64(n), Flops: flops, Bytes: 8 * int64(n) * int64(kd+1) * 2}
	addCounts(&c)
}

// SolveCounts returns the operation counts of one banded
// forward/backward substitution pair (Dpbtrs) for an n-dof system of
// half-bandwidth kd — gemv-class work. The paper-scale benchmark
// harness uses it to price the direct solves of meshes too large to
// factor in-process.
func SolveCounts(n, kd int) blas.Counts {
	var c blas.Counts
	flops := 4 * int64(n) * int64(kd+1)
	c.Ops[blas.KernelDgemv] = blas.Op{Calls: 1, N: int64(n), Flops: flops, Bytes: 8 * (2*int64(n)*int64(kd+1) + 2*int64(n))}
	return c
}

// recordSolve accounts a banded triangular solve pair as gemv-class
// work (band-matrix-vector products).
func recordSolve(n, kd int) {
	c := SolveCounts(n, kd)
	addCounts(&c)
}

// addCounts merges c into the active blas recording session, if any.
func addCounts(c *blas.Counts) {
	blas.RecordExternal(c)
}

// Dgetrf computes the LU factorization with partial pivoting of an
// n-by-n row-major matrix in place: A = P * L * U. The returned slice
// holds the pivot row swapped with row i at step i (LAPACK ipiv
// convention, 0-based).
func Dgetrf(n int, a []float64, lda int) ([]int, error) {
	ipiv := make([]int, n)
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p, pmax := k, math.Abs(a[k*lda+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*lda+k]); v > pmax {
				p, pmax = i, v
			}
		}
		ipiv[k] = p
		if pmax == 0 {
			return ipiv, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		if p != k {
			blas.Dswap(n, a[k*lda:k*lda+n], 1, a[p*lda:p*lda+n], 1)
		}
		inv := 1 / a[k*lda+k]
		for i := k + 1; i < n; i++ {
			a[i*lda+k] *= inv
		}
		// Trailing update A[k+1:, k+1:] -= l * u^T.
		if k+1 < n {
			blas.Dger(n-k-1, n-k-1, -1, a[(k+1)*lda+k:], lda, a[k*lda+k+1:k*lda+n], 1, a[(k+1)*lda+k+1:], lda)
		}
	}
	return ipiv, nil
}

// Dgetrs solves A*x = b for one right-hand side using a factorization
// from Dgetrf, overwriting b.
func Dgetrs(n int, a []float64, lda int, ipiv []int, b []float64) {
	for k := 0; k < n; k++ {
		if p := ipiv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	blas.Dtrsv(blas.Lower, blas.NoTrans, blas.Unit, n, a, lda, b, 1)
	blas.Dtrsv(blas.Upper, blas.NoTrans, blas.NonUnit, n, a, lda, b, 1)
}

// SolveDense is a convenience wrapper: it solves A*x = b for a general
// dense matrix, destroying a and b (b holds the solution).
func SolveDense(n int, a []float64, b []float64) error {
	ipiv, err := Dgetrf(n, a, n)
	if err != nil {
		return err
	}
	Dgetrs(n, a, n, ipiv, b)
	return nil
}

// Dpttrf factors a symmetric positive definite tridiagonal matrix
// given its diagonal d and sub-diagonal e (lengths n and n-1) into
// L*D*L^T, in place.
func Dpttrf(d, e []float64) error {
	n := len(d)
	for i := 0; i < n-1; i++ {
		if d[i] <= 0 {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, i, d[i])
		}
		ei := e[i]
		e[i] = ei / d[i]
		d[i+1] -= e[i] * ei
	}
	if n > 0 && d[n-1] <= 0 {
		return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, n-1, d[n-1])
	}
	return nil
}

// Dpttrs solves the tridiagonal system using factors from Dpttrf,
// overwriting b.
func Dpttrs(d, e, b []float64) {
	n := len(d)
	for i := 1; i < n; i++ {
		b[i] -= e[i-1] * b[i-1]
	}
	for i := range b {
		b[i] /= d[i]
	}
	for i := n - 2; i >= 0; i-- {
		b[i] -= e[i] * b[i+1]
	}
}

// Inverse computes the inverse of the n-by-n row-major matrix a,
// returning a freshly allocated matrix; a is destroyed.
func Inverse(n int, a []float64) ([]float64, error) {
	ipiv, err := Dgetrf(n, a, n)
	if err != nil {
		return nil, err
	}
	inv := make([]float64, n*n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		Dgetrs(n, a, n, ipiv, col)
		for i := 0; i < n; i++ {
			inv[i*n+j] = col[i]
		}
	}
	return inv, nil
}
