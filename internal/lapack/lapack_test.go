package lapack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nektar/internal/blas"
)

func randSPD(rng *rand.Rand, n int) []float64 {
	// A = M*M^T + n*I is symmetric positive definite.
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, m, n, m, n, 0, a, n)
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	return a
}

func matVec(n int, a, x []float64) []float64 {
	y := make([]float64, n)
	blas.Dgemv(blas.NoTrans, n, n, 1, a, n, x, 1, 0, y, 1)
	return y
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestDpotrfDpotrs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randSPD(rng, n)
		orig := make([]float64, len(a))
		copy(orig, a)
		if err := Dpotrf(n, a, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xWant := make([]float64, n)
		for i := range xWant {
			xWant[i] = rng.NormFloat64()
		}
		b := matVec(n, orig, xWant)
		// Solve with single RHS stored as an n-by-1 matrix.
		Dpotrs(n, 1, a, n, b, 1)
		if d := maxAbsDiff(b, xWant); d > 1e-8 {
			t.Fatalf("n=%d: solution error %g", n, d)
		}
	}
}

func TestDpotrfMultipleRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, nrhs := 8, 3
	a := randSPD(rng, n)
	orig := append([]float64(nil), a...)
	if err := Dpotrf(n, a, n); err != nil {
		t.Fatal(err)
	}
	xWant := make([]float64, n*nrhs)
	for i := range xWant {
		xWant[i] = rng.NormFloat64()
	}
	b := make([]float64, n*nrhs)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, orig, n, xWant, nrhs, 0, b, nrhs)
	Dpotrs(n, nrhs, a, n, b, nrhs)
	if d := maxAbsDiff(b, xWant); d > 1e-8 {
		t.Fatalf("multi-RHS error %g", d)
	}
}

func TestDpotrfRejectsIndefinite(t *testing.T) {
	a := []float64{1, 0, 0, -1} // eigenvalues 1, -1
	if err := Dpotrf(2, a, 2); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestBandStorageAccessors(t *testing.T) {
	b := NewBandStorage(5, 2)
	b.Set(3, 1, 7)
	if b.At(3, 1) != 7 || b.At(1, 3) != 7 {
		t.Fatal("symmetric access broken")
	}
	if b.At(0, 4) != 0 {
		t.Fatal("out-of-band read should be zero")
	}
	b.Add(3, 1, 1)
	if b.At(3, 1) != 8 {
		t.Fatal("Add failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set outside band should panic")
		}
	}()
	b.Set(0, 4, 1)
}

// buildBandSPD constructs a diagonally dominant symmetric band matrix
// and its dense equivalent.
func buildBandSPD(rng *rand.Rand, n, kd int) (*BandStorage, []float64) {
	band := NewBandStorage(n, kd)
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := max(0, i-kd); j < i; j++ {
			v := rng.NormFloat64() * 0.3
			band.Set(i, j, v)
			dense[i*n+j] = v
			dense[j*n+i] = v
		}
		d := float64(2*kd) + 2 + rng.Float64()
		band.Set(i, i, d)
		dense[i*n+i] = d
	}
	return band, dense
}

func TestDpbtrfDpbtrs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, kd int }{{1, 0}, {4, 1}, {10, 3}, {50, 7}, {100, 12}, {30, 29}} {
		band, dense := buildBandSPD(rng, tc.n, tc.kd)
		xWant := make([]float64, tc.n)
		for i := range xWant {
			xWant[i] = rng.NormFloat64()
		}
		b := matVec(tc.n, dense, xWant)
		if err := Dpbtrf(band); err != nil {
			t.Fatalf("n=%d kd=%d: %v", tc.n, tc.kd, err)
		}
		Dpbtrs(band, b)
		if d := maxAbsDiff(b, xWant); d > 1e-8 {
			t.Fatalf("n=%d kd=%d: error %g", tc.n, tc.kd, d)
		}
	}
}

func TestDpbtrfMatchesDenseCholesky(t *testing.T) {
	// Property: banded and dense Cholesky produce the same factor on
	// the band.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		kd := rng.Intn(n)
		band, dense := buildBandSPD(rng, n, kd)
		if err := Dpbtrf(band); err != nil {
			return false
		}
		if err := Dpotrf(n, dense, n); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := max(0, i-kd); j <= i; j++ {
				if math.Abs(band.At(i, j)-dense[i*n+j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDpbtrfRejectsIndefinite(t *testing.T) {
	band := NewBandStorage(3, 1)
	band.Set(0, 0, 1)
	band.Set(1, 1, -2)
	band.Set(2, 2, 1)
	if err := Dpbtrf(band); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestDgetrfDgetrs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 7, 25, 60} {
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		orig := append([]float64(nil), a...)
		xWant := make([]float64, n)
		for i := range xWant {
			xWant[i] = rng.NormFloat64()
		}
		b := matVec(n, orig, xWant)
		ipiv, err := Dgetrf(n, a, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		Dgetrs(n, a, n, ipiv, b)
		if d := maxAbsDiff(b, xWant); d > 1e-7 {
			t.Fatalf("n=%d: error %g", n, d)
		}
	}
}

func TestDgetrfNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position requires a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{2, 3}
	if err := SolveDense(2, a, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 3 || b[1] != 2 {
		t.Fatalf("b = %v, want [3 2]", b)
	}
}

func TestDgetrfSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	if _, err := Dgetrf(2, a, 2); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestDpttrfDpttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 4 + rng.Float64()
	}
	for i := range e {
		e[i] = rng.NormFloat64() * 0.5
	}
	// Dense equivalent.
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		dense[i*n+i] = d[i]
		if i+1 < n {
			dense[i*n+i+1] = e[i]
			dense[(i+1)*n+i] = e[i]
		}
	}
	xWant := make([]float64, n)
	for i := range xWant {
		xWant[i] = rng.NormFloat64()
	}
	b := matVec(n, dense, xWant)
	if err := Dpttrf(d, e); err != nil {
		t.Fatal(err)
	}
	Dpttrs(d, e, b)
	if diff := maxAbsDiff(b, xWant); diff > 1e-9 {
		t.Fatalf("error %g", diff)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 12
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a[i*n+i] += 5
	}
	orig := append([]float64(nil), a...)
	inv, err := Inverse(n, a)
	if err != nil {
		t.Fatal(err)
	}
	prod := make([]float64, n*n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, orig, n, inv, n, 0, prod, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod[i*n+j]-want) > 1e-9 {
				t.Fatalf("A*inv(A) deviates at (%d,%d): %g", i, j, prod[i*n+j])
			}
		}
	}
}

func TestBandedSolveRecordsWork(t *testing.T) {
	var c blas.Counts
	blas.StartRecording(&c)
	rng := rand.New(rand.NewSource(7))
	band, _ := buildBandSPD(rng, 30, 4)
	if err := Dpbtrf(band); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 30)
	Dpbtrs(band, b)
	blas.StopRecording()
	if c.Ops[blas.KernelDgemm].Flops == 0 {
		t.Fatal("factorization recorded no gemm-class flops")
	}
	if c.Ops[blas.KernelDgemv].Flops == 0 {
		t.Fatal("solve recorded no gemv-class flops")
	}
}
