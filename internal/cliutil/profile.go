package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles is the shared -cpuprofile/-memprofile flag pair. Every bench
// command registers the same two flags through ProfileFlags so a
// profiling session works identically across simbench, ckptbench and
// adaptbench instead of each command growing its own variant.
type Profiles struct {
	cpuPath *string
	memPath *string
	cpuFile *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile on fs and returns
// the handle the command starts and stops around its measured work.
func ProfileFlags(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	p.cpuPath = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.memPath = fs.String("memprofile", "", "write a heap profile to this file at exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag parsing and before the measured work; a failure to open or
// start the profile is an error up front, not a silently empty file
// discovered after a long run.
func (p *Profiles) Start() error {
	if *p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(*p.cpuPath)
	if err != nil {
		return fmt.Errorf("-cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("-cpuprofile %s: %w", *p.cpuPath, err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and, when -memprofile was given,
// writes a heap profile after a GC so the numbers reflect live data
// rather than collectible garbage. Safe to call when Start did
// nothing.
func (p *Profiles) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("-cpuprofile %s: %w", *p.cpuPath, err)
		}
		p.cpuFile = nil
	}
	if *p.memPath == "" {
		return nil
	}
	f, err := os.Create(*p.memPath)
	if err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("-memprofile %s: %w", *p.memPath, err)
	}
	return nil
}
