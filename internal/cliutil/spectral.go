package cliutil

import (
	"fmt"
	"math"
	"strings"

	"nektar/internal/fft"
)

// ValidSpectralN reports whether n is a grid size the solvers accept:
// at least 8, divisible by 4 (so the exact-3/2 de-aliasing grid
// M = 3N/2 stays even), and 5-smooth (so every transform in the padded
// pipeline hits the planner's fast radix-2/3/4/5 butterflies, never the
// generic-prime fallback).
func ValidSpectralN(n int) bool {
	return n >= 8 && n%4 == 0 && fft.Smooth5(n)
}

// nearestSpectralN returns the closest valid grid sizes below and above
// n (0 when no valid size exists below).
func nearestSpectralN(n int) (down, up int) {
	for d := n - 1; d >= 8; d-- {
		if ValidSpectralN(d) {
			down = d
			break
		}
	}
	for u := max(n+1, 8); ; u++ {
		if ValidSpectralN(u) {
			return down, u
		}
	}
}

// SpectralFlags validates the flag tuple the spectral front ends
// (cmd/spectral, the repro "spectral" experiment) share: grid size,
// Reynolds number, and — for the forced variant — the forcing shell
// band. Like CheckpointFlags, every problem with the tuple is reported
// in ONE error, and each message carries the menu of valid values
// rather than a bare rejection, so a typo is answered with what would
// have worked.
func SpectralFlags(n int, re float64, forced bool, lo, hi int) error {
	var problems []string
	if !ValidSpectralN(n) {
		down, up := nearestSpectralN(n)
		menu := fmt.Sprintf("8, 12, 16, 20, 24, 32, 36, ...; nearest to %d: %d", n, up)
		if down != 0 {
			menu = fmt.Sprintf("8, 12, 16, 20, 24, 32, 36, ...; nearest to %d: %d and %d", n, down, up)
		}
		problems = append(problems, fmt.Sprintf(
			"-n %d is not a valid grid size: need >= 8, divisible by 4, with no prime factors beyond 2, 3, 5 (valid: %s)", n, menu))
	}
	if !(re > 0) || math.IsInf(re, 0) || math.IsNaN(re) {
		problems = append(problems, fmt.Sprintf(
			"-re %g is not a Reynolds number (valid: any positive finite value, e.g. 100)", re))
	}
	if forced {
		// The de-aliased band keeps shells 1..n/3; forcing outside it
		// would inject energy straight into truncated modes.
		kmax := n / 3
		if lo < 1 || hi <= lo || (kmax >= 2 && hi > kmax) {
			menu := fmt.Sprintf("1 <= lo < hi <= %d for -n %d", kmax, n)
			if kmax < 2 {
				menu = fmt.Sprintf("no band fits -n %d; use -n >= 8", n)
			}
			problems = append(problems, fmt.Sprintf(
				"forcing band [%d, %d] is not a valid shell band (valid: %s)", lo, hi, menu))
		}
	}
	switch len(problems) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("%s", problems[0])
	default:
		return fmt.Errorf("spectral flags: %s", strings.Join(problems, "; "))
	}
}
