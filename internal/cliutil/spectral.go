package cliutil

import (
	"fmt"
	"math"
	"strings"
)

// SpectralFlags validates the flag tuple the spectral front ends
// (cmd/spectral, the repro "spectral" experiment) share: grid size,
// Reynolds number, and — for the forced variant — the forcing shell
// band. Like CheckpointFlags, every problem with the tuple is reported
// in ONE error, and each message carries the menu of valid values
// rather than a bare rejection, so a typo is answered with what would
// have worked.
func SpectralFlags(n int, re float64, forced bool, lo, hi int) error {
	var problems []string
	if n < 8 || n&(n-1) != 0 {
		problems = append(problems, fmt.Sprintf(
			"-n %d is not a power-of-two grid size >= 8 (valid: 8, 16, 32, 64, 128, ...)", n))
	}
	if !(re > 0) || math.IsInf(re, 0) || math.IsNaN(re) {
		problems = append(problems, fmt.Sprintf(
			"-re %g is not a Reynolds number (valid: any positive finite value, e.g. 100)", re))
	}
	if forced {
		// The de-aliased band keeps shells 1..n/3; forcing outside it
		// would inject energy straight into truncated modes.
		kmax := n / 3
		if lo < 1 || hi <= lo || (kmax >= 2 && hi > kmax) {
			menu := fmt.Sprintf("1 <= lo < hi <= %d for -n %d", kmax, n)
			if kmax < 2 {
				menu = fmt.Sprintf("no band fits -n %d; use -n >= 8", n)
			}
			problems = append(problems, fmt.Sprintf(
				"forcing band [%d, %d] is not a valid shell band (valid: %s)", lo, hi, menu))
		}
	}
	switch len(problems) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("%s", problems[0])
	default:
		return fmt.Errorf("spectral flags: %s", strings.Join(problems, "; "))
	}
}
