package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestProfilesWriteFiles: the shared flag pair must produce non-empty
// pprof files when both paths are set, and be a no-op when neither is.
func TestProfilesWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	p := ProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Some measured work so the CPU profile has something to sample.
	sink := 0.0
	for i := 0; i < 1_000_000; i++ {
		sink += float64(i % 7)
	}
	_ = sink
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
}

// TestProfilesNoFlags: Start/Stop with neither flag set must be inert.
func TestProfilesNoFlags(t *testing.T) {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	p := ProfileFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestProfilesBadPath: an unwritable -cpuprofile path must fail at
// Start, before any measured work runs.
func TestProfilesBadPath(t *testing.T) {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	p := ProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		p.Stop()
		t.Fatal("expected error for unwritable -cpuprofile path")
	}
}
