// Package cliutil holds the flag-handling helpers shared by the
// command-line front ends, so each command does not re-implement the
// same tracer-file and checkpoint-flag plumbing.
package cliutil

import (
	"fmt"
	"os"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
)

// Tracer opens the -trace file and wraps it in an engine tracer. An
// empty path means tracing is off: a nil tracer and a no-op closer, so
// callers can defer the close unconditionally.
func Tracer(path string) (*engine.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return engine.NewTracer(f), f.Close, nil
}

// CheckpointFlags validates the -ckptdir/-ckpt-every flag pair and
// creates the store directory, so an unwritable path or a missing
// interval fails before any solver work starts.
func CheckpointFlags(dir string, every int) error {
	if dir == "" {
		if every > 0 {
			return fmt.Errorf("-ckpt-every %d needs -ckptdir to write into", every)
		}
		return nil
	}
	if every < 1 {
		return fmt.Errorf("-ckptdir %q needs a positive -ckpt-every interval, got %d", dir, every)
	}
	_, err := ckpt.NewDirStore(dir)
	return err
}
