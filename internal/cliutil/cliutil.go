// Package cliutil holds the flag-handling helpers shared by the
// command-line front ends, so each command does not re-implement the
// same tracer-file and checkpoint-flag plumbing.
package cliutil

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/policy"
)

// Tracer opens the -trace file and wraps it in an engine tracer. An
// empty path means tracing is off: a nil tracer and a no-op closer, so
// callers can defer the close unconditionally.
func Tracer(path string) (*engine.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return engine.NewTracer(f), f.Close, nil
}

// CheckpointFlags validates the -ckptdir/-ckpt-every flag pair and
// creates the store directory, so an unwritable path or a missing
// interval fails before any solver work starts.
func CheckpointFlags(dir string, every int) error {
	if dir == "" {
		if every > 0 {
			return fmt.Errorf("-ckpt-every %d needs -ckptdir to write into", every)
		}
		return nil
	}
	if every < 1 {
		return fmt.Errorf("-ckptdir %q needs a positive -ckpt-every interval, got %d", dir, every)
	}
	_, err := ckpt.NewDirStore(dir)
	return err
}

// ParseMTBFHours parses a comma-separated -mtbf flag value into
// per-node MTBF values in hours. Every entry must be a positive finite
// number: an MTBF of zero or less has no meaning as a failure rate,
// and catching it here fails the command before any solver work
// starts.
func ParseMTBFHours(flagVal string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(flagVal, ",") {
		s = strings.TrimSpace(s)
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("-mtbf %q: %q is not a number of hours", flagVal, s)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("-mtbf %q: MTBF must be a positive number of hours, got %g", flagVal, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// PolicyMode resolves the -adapt flag value to a resilience policy
// mode. The error for an unknown name lists the registered policies,
// so a typo is answered with the menu rather than a bare failure.
func PolicyMode(name string) (policy.Mode, error) {
	m, err := policy.ModeByName(name)
	if err != nil {
		return m, fmt.Errorf("-adapt: %w", err)
	}
	return m, nil
}
