// Package cliutil holds the flag-handling helpers shared by the
// command-line front ends, so each command does not re-implement the
// same tracer-file and checkpoint-flag plumbing.
package cliutil

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/policy"
)

// Tracer opens the -trace file and wraps it in an engine tracer. An
// empty path means tracing is off: a nil tracer and a no-op closer, so
// callers can defer the close unconditionally.
func Tracer(path string) (*engine.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return engine.NewTracer(f), f.Close, nil
}

// CheckpointFlags validates the -ckptdir/-ckpt-every flag pair and
// creates the store directory, so an unwritable path, a missing
// interval, or a conflicting combination fails before any solver work
// starts. Every problem with the pair is reported in ONE actionable
// error — a negative cadence, a cadence without a directory, a
// directory with the cadence left at 0 — instead of the first one
// found, and no combination ever silently disables checkpointing.
func CheckpointFlags(dir string, every int) error {
	var problems []string
	switch {
	case every < 0:
		problems = append(problems,
			fmt.Sprintf("-ckpt-every %d is negative (use a positive step interval, or omit both flags to run without checkpointing)", every))
	case every > 0 && dir == "":
		problems = append(problems,
			fmt.Sprintf("-ckpt-every %d needs -ckptdir to write into", every))
	case every == 0 && dir != "":
		problems = append(problems,
			fmt.Sprintf("-ckptdir %q needs a positive -ckpt-every interval (got 0, which would silently write no checkpoints)", dir))
	}
	if dir != "" && every >= 0 {
		if _, err := ckpt.NewDirStore(dir); err != nil {
			problems = append(problems, err.Error())
		}
	}
	switch len(problems) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("%s", problems[0])
	default:
		return fmt.Errorf("checkpoint flags: %s", strings.Join(problems, "; "))
	}
}

// ParseMTBFHours parses a comma-separated -mtbf flag value into
// per-node MTBF values in hours. Every entry must be a positive finite
// number: an MTBF of zero or less has no meaning as a failure rate,
// and catching it here fails the command before any solver work
// starts.
func ParseMTBFHours(flagVal string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(flagVal, ",") {
		s = strings.TrimSpace(s)
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("-mtbf %q: %q is not a number of hours", flagVal, s)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("-mtbf %q: MTBF must be a positive number of hours, got %g", flagVal, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// PolicyMode resolves the -adapt flag value to a resilience policy
// mode. The error for an unknown name lists the registered policies,
// so a typo is answered with the menu rather than a bare failure.
func PolicyMode(name string) (policy.Mode, error) {
	m, err := policy.ModeByName(name)
	if err != nil {
		return m, fmt.Errorf("-adapt: %w", err)
	}
	return m, nil
}
