package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nektar/internal/engine"
)

func TestTracerOffIsNil(t *testing.T) {
	tr, closeFn, err := Tracer("")
	if err != nil || tr != nil {
		t.Fatalf("tr=%v err=%v", tr, err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, closeFn, err := Tracer(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(engine.Event{Ev: engine.EvStep, Step: 1})
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := engine.ReadEvents(f)
	if err != nil || len(evs) != 1 || evs[0].Ev != engine.EvStep {
		t.Fatalf("evs=%v err=%v", evs, err)
	}
}

func TestParseMTBFHours(t *testing.T) {
	got, err := ParseMTBFHours("24, 0.5,1e3")
	if err != nil || len(got) != 3 || got[0] != 24 || got[1] != 0.5 || got[2] != 1e3 {
		t.Fatalf("got %v err %v", got, err)
	}
	for _, bad := range []string{"", "abc", "24,xyz", "0", "-3", "24,0", "NaN", "+Inf"} {
		if _, err := ParseMTBFHours(bad); err == nil {
			t.Errorf("ParseMTBFHours(%q) accepted", bad)
		}
	}
}

func TestPolicyMode(t *testing.T) {
	for _, name := range []string{"static", "adaptive", "pinned"} {
		if m, err := PolicyMode(name); err != nil || m.String() != name {
			t.Errorf("PolicyMode(%q) = %v, %v", name, m, err)
		}
	}
	_, err := PolicyMode("turbo")
	if err == nil {
		t.Fatal("unknown policy name accepted")
	}
	// The rejection lists the registered policies — the menu UX.
	for _, want := range []string{"static", "adaptive", "pinned"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestCheckpointFlags(t *testing.T) {
	if err := CheckpointFlags("", 0); err != nil {
		t.Fatalf("off: %v", err)
	}
	if err := CheckpointFlags("", 5); err == nil {
		t.Fatal("interval without a directory accepted")
	}
	if err := CheckpointFlags(filepath.Join(t.TempDir(), "ck"), 0); err == nil {
		t.Fatal("directory without an interval accepted")
	}
	dir := filepath.Join(t.TempDir(), "ck")
	if err := CheckpointFlags(dir, 5); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		t.Fatalf("store directory not created: %v", err)
	}
}

func TestCheckpointFlagsRejectsConflicts(t *testing.T) {
	// -ckptdir with -ckpt-every 0 must be one actionable error naming
	// both flags, not a silent no-checkpoint run.
	err := CheckpointFlags(filepath.Join(t.TempDir(), "ck"), 0)
	if err == nil {
		t.Fatal("-ckptdir with -ckpt-every 0 accepted")
	}
	for _, want := range []string{"-ckptdir", "-ckpt-every"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
	// A negative cadence is rejected whether or not a directory rides
	// along (it used to pass silently with no -ckptdir).
	for _, dir := range []string{"", filepath.Join(t.TempDir(), "neg")} {
		err := CheckpointFlags(dir, -2)
		if err == nil {
			t.Fatalf("negative cadence accepted (dir=%q)", dir)
		}
		if !strings.Contains(err.Error(), "-ckpt-every -2") {
			t.Errorf("error %q does not show the offending value", err)
		}
	}
	// The negative-cadence path must not create the directory.
	dir := filepath.Join(t.TempDir(), "notcreated")
	_ = CheckpointFlags(dir, -1)
	if _, serr := os.Stat(dir); !os.IsNotExist(serr) {
		t.Fatalf("store directory created despite invalid flags: %v", serr)
	}
}
