package cliutil

import (
	"strings"
	"testing"
)

func TestSpectralFlagsAccepts(t *testing.T) {
	cases := []struct {
		n      int
		re     float64
		forced bool
		lo, hi int
	}{
		{8, 100, false, 0, 0},
		{16, 1, false, 0, 0},
		{12, 100, false, 0, 0},
		{20, 300, false, 0, 0},
		{24, 100, true, 2, 8},
		{36, 100, true, 3, 12},
		{48, 700, false, 0, 0},
		{60, 100, false, 0, 0},
		{64, 2500, true, 3, 5},
		{16, 100, true, 1, 5},
		{256, 1e4, true, 2, 80},
	}
	for _, c := range cases {
		if err := SpectralFlags(c.n, c.re, c.forced, c.lo, c.hi); err != nil {
			t.Errorf("SpectralFlags(%+v) = %v, want nil", c, err)
		}
	}
}

func TestSpectralFlagsRejectsWithMenu(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		re     float64
		forced bool
		lo, hi int
		want   string // substring the menu-style message must carry
	}{
		{"not divisible by 4", 14, 100, false, 0, 0, "nearest to 14: 12 and 16"},
		{"7-smooth grid", 28, 100, false, 0, 0, "no prime factors beyond 2, 3, 5"},
		{"odd grid", 15, 100, false, 0, 0, "divisible by 4"},
		{"tiny grid", 4, 100, false, 0, 0, "nearest to 4: 8"},
		{"zero Re", 16, 0, false, 0, 0, "positive finite"},
		{"negative Re", 16, -5, false, 0, 0, "positive finite"},
		{"inverted band", 16, 100, true, 5, 3, "1 <= lo < hi"},
		{"band too high", 16, 100, true, 2, 9, "<= 5 for -n 16"},
		{"zero lo", 16, 100, true, 0, 3, "1 <= lo"},
	}
	for _, c := range cases {
		err := SpectralFlags(c.n, c.re, c.forced, c.lo, c.hi)
		if err == nil {
			t.Errorf("%s: SpectralFlags accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not show the menu %q", c.name, err, c.want)
		}
	}
}

// A tuple with several problems reports all of them at once.
func TestSpectralFlagsReportsEveryProblem(t *testing.T) {
	err := SpectralFlags(14, -1, true, 9, 2)
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"valid grid size", "positive finite", "shell band"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("combined error %q missing %q", err, want)
		}
	}
}
