package supervisor

import (
	"math"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/mpi"
	"nektar/internal/policy"
	"nektar/internal/simnet"
)

// Control-plane tags live in the user tag space, above the solvers'
// own traffic (gs uses 1<<22) and below the collective space (1<<24).
const (
	ctlTag  = 1<<23 + 101 // solver rank -> monitor
	haltTag = 1<<23 + 102 // monitor -> solver rank
)

// Control message kinds (first element of the 3-float payload
// [kind, rank, step]).
const (
	ctlHeartbeat = iota
	ctlDone
	ctlTrip
)

// verdict is the monitor's reason for ending an attempt.
type verdict struct {
	kind  verdictKind
	ranks []int // suspects (silence) or the tripping rank
	at    float64
	step  int
}

type verdictKind int

const (
	verdictSuspect verdictKind = iota // heartbeat silence past phi threshold
	verdictTrip                       // watchdog trip reported by a rank
)

// attempt is the shared state of one launch: per-rank checkpoint
// staging, completion flags, watchdog trips, and the monitor's
// verdict. Rank goroutines write only their own slots and the
// simulator's scheduler serializes execution, so no locking is needed;
// the harness reads everything after the run ends.
type attempt struct {
	cfg   *Config
	index int

	model *simnet.Model
	inj   simnet.Injector

	committedStep int
	committed     [][]byte

	// Per-solver-rank stall schedule (rank-keyed; +Inf = never), used
	// to diagnose stall failures after the run.
	stallAt []float64

	staged   []map[int][]byte
	final    [][]byte
	done     []bool
	trips    []*Trip
	stepsRun []int
	verdict  *verdict

	// ad is the adaptive layer's per-attempt state (nil = static run).
	ad *attemptAdapt

	// Resolved knobs.
	hbEvery     int
	hbSeed      float64
	hbThreshold float64
	hbWindow    int
	wdEvery     int
}

func newAttempt(cfg *Config, pool *simnet.SparePool, index, committedStep int, committed [][]byte) *attempt {
	procs := cfg.Procs
	// Placement: each solver rank on its own physical node (per the
	// pool's current assignment), the monitor on a dedicated head node
	// behind the spares. The head node is outside the fault plan's
	// node range, so the monitor itself never fails — a single reliable
	// observer; detector redundancy is future work.
	headNode := procs + cfg.Spares
	nodeMap := append(pool.NodeMap(), headNode)
	model := *cfg.Model
	model.NodeMap = nodeMap

	a := &attempt{
		cfg:           cfg,
		index:         index,
		model:         &model,
		committedStep: committedStep,
		committed:     committed,
		stallAt:       make([]float64, procs),
		staged:        make([]map[int][]byte, procs),
		final:         make([][]byte, procs),
		done:          make([]bool, procs),
		trips:         make([]*Trip, procs),
		stepsRun:      make([]int, procs),
		hbEvery:       cfg.Heartbeat.Every,
		hbSeed:        cfg.Heartbeat.InitialInterval,
		hbThreshold:   cfg.Heartbeat.Threshold,
		hbWindow:      cfg.Heartbeat.Window,
		wdEvery:       cfg.Watchdog.Every,
	}
	if a.hbEvery < 1 {
		a.hbEvery = 1
	}
	if a.wdEvery < 1 {
		a.wdEvery = 1
	}
	for r := range a.stallAt {
		a.stallAt[r] = math.Inf(1)
	}
	if cfg.Faults != nil {
		adapter := &nodeKeyedInjector{base: cfg.Faults, nodeOf: nodeMap, nodes: procs + cfg.Spares}
		if rs, ok := cfg.Faults.(simnet.RankStaller); ok {
			adapter.staller = rs
			for r := 0; r < procs; r++ {
				a.stallAt[r], _ = adapter.RankStall(r)
			}
		}
		a.inj = adapter
	}
	return a
}

func (a *attempt) monitorRank() int { return a.cfg.Procs }

func (a *attempt) body(n *simnet.Node) {
	if n.Rank == a.monitorRank() {
		a.monitor(n)
		return
	}
	a.worker(n)
}

// completed reports whether every solver rank finished all steps.
func (a *attempt) completed() bool {
	for _, d := range a.done {
		if !d {
			return false
		}
	}
	return true
}

// stallFired reports whether rank r's scheduled process freeze
// actually happened before the rank's clock stopped.
func (a *attempt) stallFired(r int, wallR float64) bool {
	return !math.IsInf(a.stallAt[r], 1) && wallR >= a.stallAt[r]
}

func (a *attempt) verdictRanks() []int {
	if a.verdict == nil {
		return nil
	}
	return a.verdict.ranks
}

// attemptWall is the virtual wall time this attempt cost the campaign.
// After a silence verdict the simulation still unwinds the blocked
// survivors (and a frozen rank drains its stall before exiting); a
// real supervisor kills the job at the verdict, so the post-verdict
// tail is a simulation artifact and is excluded.
func (a *attempt) attemptWall(wall []float64) float64 {
	if a.verdict != nil && a.verdict.kind == verdictSuspect {
		return a.verdict.at
	}
	var m float64
	for _, w := range wall {
		if w > m {
			m = w
		}
	}
	return m
}

// commitNewest returns the newest checkpoint step staged on every
// rank, or -1.
func (a *attempt) commitNewest() int {
	best := -1
	for s := range a.staged[0] {
		onAll := true
		for r := 1; r < a.cfg.Procs; r++ {
			if _, ok := a.staged[r][s]; !ok {
				onAll = false
				break
			}
		}
		if onAll && s > best {
			best = s
		}
	}
	return best
}

// worker is one solver rank: the engine's driver loop with the
// supervisor's hooks plugged in — a collective halt poll before every
// step, a heartbeat to the monitor after the watchdog clears, and
// checkpoint staging with its I/O cost.
func (a *attempt) worker(n *simnet.Node) {
	comm, err := mpi.SubWorld(n, a.cfg.Procs)
	if err != nil {
		panic(err)
	}
	if a.cfg.Rel != nil {
		comm.SetReliability(a.cfg.Rel)
	}
	var s Solver
	if a.cfg.NewTunedSolver != nil {
		scale := 1.0
		if a.ad != nil {
			scale = a.ad.dtScale
		}
		s, err = a.cfg.NewTunedSolver(comm, scale)
	} else {
		s, err = a.cfg.NewSolver(comm)
	}
	if err != nil {
		panic(err)
	}
	a.staged[n.Rank] = map[int][]byte{}
	if a.committedStep >= 0 {
		if lerr := engine.Restore(s, a.committed[n.Rank]); lerr != nil {
			panic(lerr)
		}
	}

	// Adaptive wiring: every rank builds its own cadence controller
	// (decisions are collective, so all instances hold identical state)
	// and, when checkpoint writes are priced through the cluster model,
	// its own writer selector. Rank 0's instances are read back by the
	// supervisor after the attempt.
	var ctl *policy.CadenceController
	var sel *policy.SimSelector
	if a.ad != nil {
		ctl = policy.NewCadence(a.ad.cfg, n.Rank)
		ctl.Adopt(a.ad.interval, a.ad.anchor)
		if a.cfg.SimDiskMBs > 0 {
			w := &ckpt.SimWriter{Kind: a.cfg.Kind, Comm: comm,
				DiskMBs: a.cfg.SimDiskMBs, Mode: a.ad.writeMode}
			sel = policy.NewSimSelector(a.ad.cfg, w)
			sel.Adopt(a.ad.writeMode, a.ad.probed)
		}
		if n.Rank == 0 {
			a.ad.ctl, a.ad.sel = ctl, sel
		}
	}
	// Per-step duration measurement for the cadence controller: virtual
	// time since the last checkpoint divided by the steps in between.
	lastMark := n.Clock()
	stepsSince := 0

	wd := &a.cfg.Watchdog
	loop := engine.Loop{
		Solver: s, Steps: a.cfg.Steps, Rank: n.Rank,
		// A halt order parks in the inbox while we are inside a step;
		// the deadline Clock() makes this a non-blocking poll. The
		// decision to stop must be collective: a peer may already be
		// blocked inside the next step's collectives when the order
		// lands, so the ranks agree on the flag at every boundary and
		// exit at the same step.
		Poll: func() bool {
			halted := 0.0
			if _, ok := n.RecvDeadline(a.monitorRank(), haltTag, n.Clock()); ok {
				halted = 1
			}
			return comm.Allreduce([]float64{halted}, mpi.Max)[0] > 0
		},
		// Per-step accounting goes through the shared slot immediately
		// after each step, so it survives a crash unwinding this rank.
		OnStep: func(int) {
			a.stepsRun[n.Rank]++
			stepsSince++
		},
		Watchdog: engine.Watchdog{
			Disabled: wd.Disabled, Every: a.wdEvery,
			MaxAbs: wd.MaxAbs, MaxGrowth: wd.MaxGrowth,
			// The verdict must be collective: if any rank is sick, every
			// rank exits at this same boundary — a lone exit would leave
			// the others blocked in the next collective. The corrupt
			// state is abandoned before it can reach the staging area.
			Agree: func(bad bool) bool {
				flag := 0.0
				if bad {
					flag = 1
				}
				return comm.Allreduce([]float64{flag}, mpi.Max)[0] > 0
			},
			OnTrip: func(tr engine.Trip) {
				a.trips[n.Rank] = &Trip{Attempt: a.index, Rank: tr.Rank, Step: tr.Step, MaxAbs: tr.MaxAbs, Finite: tr.Finite}
				n.SendControl(a.monitorRank(), ctlTag, []float64{ctlTrip, float64(tr.Rank), float64(tr.Step)})
			},
		},
		PostStep: func(step int) {
			if step%a.hbEvery == 0 || step == a.cfg.Steps {
				n.SendControl(a.monitorRank(), ctlTag, []float64{ctlHeartbeat, float64(n.Rank), float64(step)})
			}
		},
		CheckpointEvery: a.cfg.CheckpointEvery,
		OnCheckpoint: func(step int, state []byte) {
			a.staged[n.Rank][step] = state
			if a.cfg.Store != nil {
				if _, perr := a.cfg.Store.Put(ckpt.Meta{Kind: a.cfg.Kind, Rank: n.Rank, Step: step}, state); perr != nil {
					panic(perr)
				}
			}
			t0 := n.Clock()
			if sel != nil {
				// Priced through the cluster's disk/network model, in
				// the write mode the runtime selector has chosen.
				if serr := sel.Submit(step, state, false); serr != nil {
					panic(serr)
				}
			} else if a.cfg.CheckpointCostS > 0 {
				n.Sleep(a.cfg.CheckpointCostS)
			}
			if a.ad != nil && a.ad.cfg.Mode == policy.Adaptive {
				// Live retune: agree on the worst-case measured cost and
				// step duration (the collective keeps every rank's
				// controller state identical), then apply Young's
				// formula. Pinned mode skips this entirely — no extra
				// traffic, so the virtual clock matches a static run.
				cost := n.Clock() - t0
				stepWall := 0.0
				if stepsSince > 0 {
					stepWall = (t0 - lastMark) / float64(stepsSince)
				}
				v := comm.Allreduce([]float64{stepWall, cost}, mpi.Max)
				ctl.Observe(step, v[1], v[0], a.ad.mtbfS)
			}
			lastMark = n.Clock()
			stepsSince = 0
		},
	}
	if a.ad != nil {
		// The live policy replaces the static rule (setting both is an
		// engine configuration error).
		loop.CheckpointEvery = 0
		loop.Cadence = ctl
	}
	res, err := loop.Run()
	if err != nil {
		panic(err)
	}
	if res.Outcome != engine.Completed {
		return
	}
	a.final[n.Rank] = res.Final
	a.done[n.Rank] = true
	n.SendControl(a.monitorRank(), ctlTag, []float64{ctlDone, float64(n.Rank), float64(s.StepCount())})
}

// monitor is the failure-detection rank: it feeds heartbeats into the
// per-rank phi detectors and sleeps until the earliest detector
// deadline. Every wait is deadline-bounded, so the monitor always
// terminates: with a verdict (silence or trip) or when every rank has
// reported done.
func (a *attempt) monitor(n *simnet.Node) {
	procs := a.cfg.Procs
	dets := make([]*PhiDetector, procs)
	for r := range dets {
		dets[r] = NewPhiDetector(a.hbThreshold, a.hbSeed, a.hbWindow)
	}
	live := make([]bool, procs)
	for r := range live {
		live[r] = true
	}
	nlive := procs
	for nlive > 0 {
		dl := math.Inf(1)
		for r, l := range live {
			if l && dets[r].Deadline() < dl {
				dl = dets[r].Deadline()
			}
		}
		msg, ok := n.RecvDeadline(simnet.AnySource, ctlTag, dl)
		now := n.Clock()
		if ok {
			if len(msg) != 3 {
				continue
			}
			kind, r, step := int(msg[0]), int(msg[1]), int(msg[2])
			if r < 0 || r >= procs {
				continue
			}
			switch kind {
			case ctlHeartbeat:
				dets[r].Observe(now)
			case ctlDone:
				if live[r] {
					live[r] = false
					nlive--
				}
			case ctlTrip:
				a.verdict = &verdict{kind: verdictTrip, ranks: []int{r}, at: now, step: step}
				a.halt(n, live)
				return
			}
			continue
		}
		// Detector deadline expired: every live rank past its deadline
		// is a suspect. (A blocked survivor waiting on the dead rank
		// also goes silent, so the suspect set can be a superset of the
		// true failures; the harness diagnoses the exact ranks
		// out-of-band, as an operator would inspect the nodes.)
		var suspects []int
		for r, l := range live {
			if l && dets[r].Deadline() <= now {
				suspects = append(suspects, r)
			}
		}
		if len(suspects) == 0 {
			continue
		}
		a.verdict = &verdict{kind: verdictSuspect, ranks: suspects, at: now}
		a.halt(n, live)
		return
	}
}

// halt orders every rank that has not reported done to stop at its
// next step boundary. Sends to already-dead ranks are harmless.
func (a *attempt) halt(n *simnet.Node, live []bool) {
	for r, l := range live {
		if l {
			n.SendControl(r, haltTag, nil)
		}
	}
}

// nodeKeyedInjector adapts a fault plan keyed by physical node to the
// simulator's rank-keyed Injector interface, through the spare pool's
// current placement. A rank moved onto a spare node stops seeing the
// retired node's faults; the replacement node brings its own (if the
// plan schedules any).
type nodeKeyedInjector struct {
	base    simnet.Injector
	staller simnet.RankStaller // nil when base has no rank stalls
	nodeOf  []int              // rank -> physical node, monitor included
	nodes   int                // physical nodes addressable by the plan
}

func (k *nodeKeyedInjector) DropMessage(src, dst, n int, t float64) bool {
	return k.base.DropMessage(k.nodeOf[src], k.nodeOf[dst], n, t)
}

func (k *nodeKeyedInjector) LinkFactors(src, dst int, t float64) (latMul, bwDiv float64) {
	return k.base.LinkFactors(k.nodeOf[src], k.nodeOf[dst], t)
}

// StallUntil already receives a physical node id (the simulator
// resolves ranks through Model.NodeMap before booking NIC time).
func (k *nodeKeyedInjector) StallUntil(node int, t float64) float64 {
	return k.base.StallUntil(node, t)
}

func (k *nodeKeyedInjector) CrashTime(rank int) float64 {
	return k.base.CrashTime(k.nodeOf[rank])
}

func (k *nodeKeyedInjector) RankStall(rank int) (start, dur float64) {
	if k.staller == nil {
		return math.Inf(1), 0
	}
	return k.staller.RankStall(k.nodeOf[rank])
}

// ValidatePlan checks the node-keyed plan against the physical node
// range (the head node is deliberately outside it: the monitor cannot
// be a fault target).
func (k *nodeKeyedInjector) ValidatePlan(ranks int) error {
	if v, ok := k.base.(simnet.PlanValidator); ok {
		return v.ValidatePlan(k.nodes)
	}
	return nil
}
