package supervisor_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"nektar/internal/core"
	"nektar/internal/engine"
	"nektar/internal/fault"
	"nektar/internal/mpi"
	"nektar/internal/policy"
	"nektar/internal/supervisor"
)

// TestPinnedBitIdenticalToStatic is the determinism audit the adaptive
// layer must pass: with faults disabled and the controller pinned at
// the static cadence, the supervised run matches the static-cadence
// run bit for bit — same final states AND the same virtual wall time
// (the pinned controller adds no measurement traffic).
func TestPinnedBitIdenticalToStatic(t *testing.T) {
	cfg := baseConfig(2, nsfFactory(t))
	ref := runReference(t, cfg)

	pinned := cfg
	pinned.Adapt = &policy.Config{Mode: policy.Pinned}
	got, err := supervisor.Run(pinned)
	if err != nil {
		t.Fatalf("pinned run: %v", err)
	}
	assertBitIdentical(t, ref, got)
	if got.VirtualWall != ref.VirtualWall {
		t.Fatalf("pinned VirtualWall %.9g != static %.9g — the held controller added traffic or cost",
			got.VirtualWall, ref.VirtualWall)
	}
	if got.FinalInterval != cfg.CheckpointEvery {
		t.Errorf("pinned FinalInterval %d, want the seeded static cadence %d", got.FinalInterval, cfg.CheckpointEvery)
	}
}

// An adaptive campaign under real crashes: the estimator feeds on the
// failures, the cadence retunes by Young's formula (visible as a
// policy_switch trace event), and the trajectory still matches the
// unfaulted static reference bit for bit.
func TestAdaptiveCrashCampaignRetunes(t *testing.T) {
	cfg := baseConfig(2, nsfFactory(t))
	cfg.Steps = 12
	ref := runReference(t, cfg)

	var trace bytes.Buffer
	adaptive := cfg
	adaptive.Faults = fault.NewPlan(3).Crash(1, 0.45*ref.VirtualWall)
	// Prior chosen so Young's interval differs clearly from the seeded
	// cadence of 2 steps: with delta = 1e-4 s and theta = 100 s,
	// tau_opt = sqrt(2*1e-4*100) ~= 0.14 s, far above the ~ms step
	// time, so the controller must retune upward.
	adaptive.Adapt = &policy.Config{
		Mode: policy.Adaptive, PriorMTBFS: 100,
		Trace: engine.NewTracer(&trace),
	}
	tuneDetector(&adaptive, ref)
	got, err := supervisor.Run(adaptive)
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	assertBitIdentical(t, ref, got)
	if len(got.Failures) == 0 || got.Failures[0].Cause != supervisor.CauseCrash {
		t.Fatalf("failures = %+v, want the injected crash handled", got.Failures)
	}
	// The estimator saw the crash: the estimate moved off the prior.
	if got.MTBFEstimateS <= 0 || got.MTBFEstimateS == 100 {
		t.Errorf("MTBFEstimateS = %v, want updated from the prior", got.MTBFEstimateS)
	}
	if got.FinalInterval <= cfg.CheckpointEvery {
		t.Errorf("FinalInterval = %d, want retuned above the seeded %d", got.FinalInterval, cfg.CheckpointEvery)
	}
	evs, err := engine.ReadEvents(&trace)
	if err != nil {
		t.Fatal(err)
	}
	var switches int
	for _, e := range evs {
		if e.Ev == engine.EvPolicySwitch && e.Policy == "cadence" {
			switches++
			if e.MTBFS <= 0 || e.DeltaS <= 0 || e.Interval <= 0 {
				t.Errorf("cadence switch without evidence: %+v", e)
			}
		}
	}
	if switches == 0 {
		t.Error("no cadence policy_switch event traced")
	}
}

// tunableCorruptingSolver trips the watchdog only while the ladder has
// not yet reduced dt — the instability a smaller time step cures.
type tunableCorruptingSolver struct {
	supervisor.Solver
	ns     *core.NSF
	atStep int
	sick   bool
}

func (c *tunableCorruptingSolver) Step() {
	c.Solver.Step()
	if c.sick && c.Solver.StepCount() == c.atStep {
		c.ns.U[0][0][0] = math.NaN()
	}
}

// The ladder's first rung: one watchdog trip answered by a dt-reduced
// retry that completes the run, recorded as an escalation and an
// escalate trace event.
func TestLadderRetryDtCuresInstability(t *testing.T) {
	clean := nsfFactory(t)
	cfg := baseConfig(2, clean)
	ref := runReference(t, cfg)

	var trace bytes.Buffer
	cfg.NewSolver = nil
	cfg.NewTunedSolver = func(comm *mpi.Comm, dtScale float64) (supervisor.Solver, error) {
		s, err := clean(comm)
		if err != nil {
			return nil, err
		}
		if comm.Rank() == 1 {
			// dtScale < 1 models the reduced time step taming the
			// blow-up; the solver itself is unchanged so the recovered
			// trajectory still matches the reference bit for bit.
			return &tunableCorruptingSolver{Solver: s, ns: s.(*core.NSF), atStep: 5, sick: dtScale >= 1}, nil
		}
		return s, nil
	}
	cfg.Adapt = &policy.Config{Mode: policy.Pinned, Trace: engine.NewTracer(&trace)}
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got.Attempts != 2 || len(got.Trips) != 1 {
		t.Fatalf("attempts=%d trips=%d, want one trip and one dt-reduced retry", got.Attempts, len(got.Trips))
	}
	if len(got.Escalations) != 1 {
		t.Fatalf("escalations = %+v, want exactly one", got.Escalations)
	}
	esc := got.Escalations[0]
	if esc.Action != "retry-dt" || esc.DtScale != 0.5 || esc.Rank != 1 || esc.Step != 5 {
		t.Fatalf("escalation = %+v, want retry-dt at half dt for rank 1 step 5", esc)
	}
	if len(got.Replacements) != 0 {
		t.Errorf("first-rung escalation consumed hardware: %+v", got.Replacements)
	}
	assertBitIdentical(t, ref, got)
	evs, err := engine.ReadEvents(&trace)
	if err != nil {
		t.Fatal(err)
	}
	var seen bool
	for _, e := range evs {
		if e.Ev == engine.EvEscalate && e.To == "retry-dt" && e.DtScale == 0.5 {
			seen = true
		}
	}
	if !seen {
		t.Error("no escalate trace event for the retry-dt rung")
	}
}

// A persistently sick rank climbs the whole ladder: dt retries, then a
// deeper rollback, then conviction (the node is replaced even though
// the hardware never crashed), and finally a structured give-up.
func TestLadderEscalatesToConviction(t *testing.T) {
	clean := nsfFactory(t)
	cfg := baseConfig(2, clean)
	ref := runReference(t, cfg)

	cfg.NewSolver = func(comm *mpi.Comm) (supervisor.Solver, error) {
		s, err := clean(comm)
		if err != nil {
			return nil, err
		}
		if comm.Rank() == 1 {
			return &tunableCorruptingSolver{Solver: s, ns: s.(*core.NSF), atStep: 5, sick: true}, nil
		}
		return s, nil
	}
	cfg.Adapt = &policy.Config{Mode: policy.Pinned, RetryBudget: 1, RollbackBudget: 1}
	cfg.MaxRestarts = 3
	tuneDetector(&cfg, ref)
	_, err := supervisor.Run(cfg)
	var re *supervisor.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError after the ladder runs out", err)
	}
	// The ladder's decisions are visible in the failure log: the
	// convicted attempts carry a replacement node where plain watchdog
	// rollbacks carry -1.
	var convicted int
	for _, f := range re.Failures {
		if f.Cause == supervisor.CauseWatchdog && f.NewNode >= 0 {
			convicted++
		}
	}
	if convicted == 0 {
		t.Fatalf("failures = %+v, want at least one convicted (re-homed) watchdog trip", re.Failures)
	}
}

func TestAdaptiveNeedsPrior(t *testing.T) {
	cfg := baseConfig(2, nsfFactory(t))
	cfg.Adapt = &policy.Config{Mode: policy.Adaptive} // no PriorMTBFS
	if _, err := supervisor.Run(cfg); err == nil {
		t.Fatal("adaptive run without an MTBF prior must be rejected")
	}
}
