package supervisor_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"nektar/internal/core"
	"nektar/internal/fault"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
	"nektar/internal/supervisor"
)

func testNet() *simnet.Model {
	return &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 10, BandwidthMBs: 100, OverheadUS: 1, EagerLimit: 32 << 10},
	}
}

func channelMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := mesh.RectQuad(4, 3, 2, 0, 3, -1, 1, func(x, y, z float64) string {
		switch {
		case y <= -0.999 || y >= 0.999:
			return "wall"
		case x <= 1e-9:
			return "inflow"
		default:
			return "outflow"
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func nsfFactory(t *testing.T) func(comm *mpi.Comm) (supervisor.Solver, error) {
	t.Helper()
	cfg := core.NSFConfig{
		Nu: 0.1, Dt: 2e-3, Order: 2, Lz: 2 * math.Pi,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": func(x, y float64) (float64, float64) { return 1 - y*y, 0 },
		},
		PresDirichlet: map[string]bool{"outflow": true},
	}
	return func(comm *mpi.Comm) (supervisor.Solver, error) {
		ns, err := core.NewNSF(channelMesh(t), cfg, comm, nil)
		if err != nil {
			return nil, err
		}
		ns.SetUniformInitial(1, 0)
		return ns, nil
	}
}

func aleFactory(t *testing.T) func(comm *mpi.Comm) (supervisor.Solver, error) {
	t.Helper()
	cfg := core.ALEConfig{
		Nu: 0.05, Dt: 2e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
		WallVelocity: func(tm float64) [3]float64 {
			return [3]float64{0, 0.3 * math.Cos(2*math.Pi*tm), 0}
		},
		MoveMesh: true,
	}
	return func(comm *mpi.Comm) (supervisor.Solver, error) {
		m2, err := mesh.WingSection(2, 12, 2)
		if err != nil {
			return nil, err
		}
		m3, err := mesh.ExtrudeQuads(m2, 2, 2, 0, 1)
		if err != nil {
			return nil, err
		}
		ns, err := core.NewNSALE(m3, cfg, comm, nil)
		if err != nil {
			return nil, err
		}
		ns.SetUniformInitial(1, 0, 0)
		return ns, nil
	}
}

func baseConfig(procs int, factory func(comm *mpi.Comm) (supervisor.Solver, error)) supervisor.Config {
	return supervisor.Config{
		Procs:           procs,
		Spares:          2,
		Model:           testNet(),
		NewSolver:       factory,
		Steps:           8,
		CheckpointEvery: 2,
		CheckpointCostS: 1e-4,
		MaxRestarts:     3,
	}
}

// runReference executes the fault-free supervised run the faulted
// campaigns must match bit-for-bit.
func runReference(t *testing.T, cfg supervisor.Config) *supervisor.Result {
	t.Helper()
	ref, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Attempts != 1 || len(ref.Failures) != 0 {
		t.Fatalf("reference run not clean: %d attempts, %d failures", ref.Attempts, len(ref.Failures))
	}
	return ref
}

func assertBitIdentical(t *testing.T, ref, got *supervisor.Result) {
	t.Helper()
	if len(got.FinalStates) != len(ref.FinalStates) {
		t.Fatalf("final state count %d, want %d", len(got.FinalStates), len(ref.FinalStates))
	}
	for r := range ref.FinalStates {
		if !bytes.Equal(ref.FinalStates[r], got.FinalStates[r]) {
			t.Fatalf("rank %d: final state differs from the unfaulted reference (not bit-identical)", r)
		}
	}
}

// tuneDetector scales the detector seed to the workload's actual step
// cadence, measured from the reference run.
func tuneDetector(cfg *supervisor.Config, ref *supervisor.Result) {
	cfg.Heartbeat.InitialInterval = ref.VirtualWall / float64(cfg.Steps)
}

func testCrashRecovery(t *testing.T, factory func(comm *mpi.Comm) (supervisor.Solver, error), steps int) {
	cfg := baseConfig(2, factory)
	cfg.Steps = steps
	ref := runReference(t, cfg)

	// Kill rank 1's node (physical node 1) mid-way through an
	// odd-numbered step: the newest committed checkpoint (even steps,
	// CheckpointEvery=2) is then a step behind, so the rollback has to
	// recompute work.
	target := steps/2 | 1
	crashT := (float64(target) + 0.5) / float64(steps) * ref.VirtualWall
	cfg.Faults = fault.NewPlan(1).Crash(1, crashT)
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got.Attempts != 2 {
		t.Fatalf("supervised run took %d attempts, want 2", got.Attempts)
	}
	if len(got.Failures) != 1 {
		t.Fatalf("recorded %d failures, want 1: %+v", len(got.Failures), got.Failures)
	}
	f := got.Failures[0]
	if f.Rank != 1 || f.Cause != supervisor.CauseCrash {
		t.Fatalf("failure = %+v, want rank 1 crash", f)
	}
	if f.DetectedAt < crashT {
		t.Errorf("detected at t=%.6g, before the crash at t=%.6g", f.DetectedAt, crashT)
	}
	if f.NewNode != 2 {
		t.Errorf("rank 1 moved to node %d, want the first spare (2)", f.NewNode)
	}
	if len(got.Replacements) != 1 || got.Replacements[0] != (simnet.Replacement{Rank: 1, OldNode: 1, NewNode: 2}) {
		t.Errorf("replacement log = %+v", got.Replacements)
	}
	if got.StepsComputed <= steps {
		t.Errorf("no recomputation recorded (%d steps total); crash too late to matter", got.StepsComputed)
	}
	assertBitIdentical(t, ref, got)
}

func testStallRecovery(t *testing.T, factory func(comm *mpi.Comm) (supervisor.Solver, error), steps int) {
	cfg := baseConfig(2, factory)
	cfg.Steps = steps
	ref := runReference(t, cfg)

	// Freeze rank 1's process for a virtual megasecond: it goes silent
	// but never dies, so only the heartbeat detector can catch it.
	stallT := 0.4 * ref.VirtualWall
	cfg.Faults = fault.NewPlan(1).StallRank(1, stallT, 1e6)
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got.Attempts != 2 {
		t.Fatalf("supervised run took %d attempts, want 2", got.Attempts)
	}
	if len(got.Failures) != 1 {
		t.Fatalf("recorded %d failures, want 1: %+v", len(got.Failures), got.Failures)
	}
	f := got.Failures[0]
	if f.Rank != 1 || f.Cause != supervisor.CauseStall {
		t.Fatalf("failure = %+v, want rank 1 stall", f)
	}
	if f.DetectedAt < stallT {
		t.Errorf("detected at t=%.6g, before the stall at t=%.6g", f.DetectedAt, stallT)
	}
	// The campaign wall charges the attempt up to the detection verdict,
	// not the simulation's post-verdict drain of the frozen rank.
	if got.VirtualWall > 1e5 {
		t.Errorf("campaign wall %.4g includes the stall drain; want the verdict-time cutoff", got.VirtualWall)
	}
	assertBitIdentical(t, ref, got)
}

func TestSupervisedNSFCrashBitIdentical(t *testing.T) {
	testCrashRecovery(t, nsfFactory(t), 8)
}

func TestSupervisedNSFStallBitIdentical(t *testing.T) {
	testStallRecovery(t, nsfFactory(t), 8)
}

func TestSupervisedNSALECrashBitIdentical(t *testing.T) {
	testCrashRecovery(t, aleFactory(t), 6)
}

func TestSupervisedNSALEStallBitIdentical(t *testing.T) {
	testStallRecovery(t, aleFactory(t), 6)
}

func TestSupervisedNS2DCrashRecovery(t *testing.T) {
	// The serial solver under the same runner: one solver rank plus the
	// monitor; the crash consumes the single spare.
	cfg2d := core.NS2DConfig{
		Nu: 0.1, Dt: 2e-3, Order: 2,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": func(x, y float64) (float64, float64) { return 1 - y*y, 0 },
		},
		PresDirichlet: map[string]bool{"outflow": true},
	}
	factory := func(comm *mpi.Comm) (supervisor.Solver, error) {
		ns, err := core.NewNS2D(channelMesh(t), cfg2d)
		if err != nil {
			return nil, err
		}
		ns.SetUniformInitial(1, 0)
		return ns, nil
	}
	cfg := baseConfig(1, factory)
	cfg.Spares = 1
	ref := runReference(t, cfg)

	cfg.Faults = fault.NewPlan(1).Crash(0, 0.5*ref.VirtualWall)
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got.Attempts != 2 || len(got.Failures) != 1 || got.Failures[0].Cause != supervisor.CauseCrash {
		t.Fatalf("attempts=%d failures=%+v, want one crash and one retry", got.Attempts, got.Failures)
	}
	assertBitIdentical(t, ref, got)
}

// corruptingSolver injects a NaN into the NSF fields right after a
// chosen step, while *active is set — the numerical blow-up the
// watchdog must catch before it reaches a checkpoint.
type corruptingSolver struct {
	supervisor.Solver
	ns     *core.NSF
	atStep int
	active *bool
}

func (c *corruptingSolver) Step() {
	c.Solver.Step()
	if *c.active && c.Solver.StepCount() == c.atStep {
		c.ns.U[0][0][0] = math.NaN()
	}
}

func TestWatchdogNaNRollbackBitIdentical(t *testing.T) {
	clean := nsfFactory(t)
	cfg := baseConfig(2, clean)
	ref := runReference(t, cfg)

	// Corrupt rank 1 at step 5 (checkpoints land at 2 and 4). The
	// OnTrip policy hook "fixes" the instability so the retry is clean
	// — the reduced-dt pattern at test scale.
	active := true
	var hookTrips []supervisor.Trip
	corrupting := func(comm *mpi.Comm) (supervisor.Solver, error) {
		s, err := clean(comm)
		if err != nil {
			return nil, err
		}
		if comm.Rank() == 1 {
			return &corruptingSolver{Solver: s, ns: s.(*core.NSF), atStep: 5, active: &active}, nil
		}
		return s, nil
	}
	cfg.NewSolver = corrupting
	cfg.Watchdog.OnTrip = func(tr supervisor.Trip) {
		hookTrips = append(hookTrips, tr)
		active = false
	}
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got.Attempts != 2 {
		t.Fatalf("took %d attempts, want 2", got.Attempts)
	}
	if len(got.Trips) != 1 {
		t.Fatalf("recorded %d trips, want 1: %+v", len(got.Trips), got.Trips)
	}
	tr := got.Trips[0]
	// Detected within one step of the injection: the corrupt step
	// itself, before any further stepping.
	if tr.Rank != 1 || tr.Step != 5 || tr.Finite {
		t.Fatalf("trip = %+v, want rank 1, step 5, non-finite", tr)
	}
	if len(hookTrips) != 1 || hookTrips[0] != tr {
		t.Fatalf("OnTrip hook saw %+v, want the recorded trip", hookTrips)
	}
	if len(got.Failures) != 1 || got.Failures[0].Cause != supervisor.CauseWatchdog {
		t.Fatalf("failures = %+v, want one watchdog failure", got.Failures)
	}
	if got.Failures[0].RestartStep != 4 {
		t.Errorf("restarted from step %d, want the last pre-corruption checkpoint (4)", got.Failures[0].RestartStep)
	}
	if got.Failures[0].NewNode != -1 || len(got.Replacements) != 0 {
		t.Errorf("watchdog trip consumed hardware: %+v, %+v", got.Failures[0], got.Replacements)
	}
	assertBitIdentical(t, ref, got)
}

func TestWatchdogRetryBudgetExhausted(t *testing.T) {
	clean := nsfFactory(t)
	cfg := baseConfig(2, clean)
	ref := runReference(t, cfg)

	// The corruption never goes away: every attempt trips at step 5,
	// and the budget must produce a structured error — no panic, no
	// hang.
	active := true
	corrupting := func(comm *mpi.Comm) (supervisor.Solver, error) {
		s, err := clean(comm)
		if err != nil {
			return nil, err
		}
		if comm.Rank() == 1 {
			return &corruptingSolver{Solver: s, ns: s.(*core.NSF), atStep: 5, active: &active}, nil
		}
		return s, nil
	}
	cfg.NewSolver = corrupting
	cfg.MaxRestarts = 2
	tuneDetector(&cfg, ref)
	_, err := supervisor.Run(cfg)
	var re *supervisor.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Reason != "retry budget exhausted" || re.Attempts != 3 {
		t.Fatalf("RetryError = %+v, want retry budget exhausted after 3 attempts", re)
	}
	if len(re.Failures) != 3 {
		t.Fatalf("recorded %d failures, want one watchdog trip per attempt", len(re.Failures))
	}
	for _, f := range re.Failures {
		if f.Cause != supervisor.CauseWatchdog {
			t.Fatalf("failure %+v, want watchdog", f)
		}
	}
}

func TestSparePoolExhausted(t *testing.T) {
	cfg := baseConfig(2, nsfFactory(t))
	ref := runReference(t, cfg)

	cfg.Spares = 0
	cfg.Faults = fault.NewPlan(1).Crash(1, 0.4*ref.VirtualWall)
	tuneDetector(&cfg, ref)
	_, err := supervisor.Run(cfg)
	var re *supervisor.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Reason != "spare pool exhausted" {
		t.Fatalf("reason = %q, want spare pool exhausted", re.Reason)
	}
}

func TestSupervisedCrashAndStallCampaign(t *testing.T) {
	// One campaign, two independent hardware failures: node 0 freezes
	// early, node 1 dies later. Both ranks end up on spares and the
	// trajectory still matches the unfaulted reference bit-for-bit.
	cfg := baseConfig(2, nsfFactory(t))
	ref := runReference(t, cfg)

	cfg.Faults = fault.NewPlan(7).
		StallRank(0, 0.25*ref.VirtualWall, 1e6).
		Crash(1, 0.6*ref.VirtualWall)
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if len(got.Failures) < 2 {
		t.Fatalf("failures = %+v, want both the stall and the crash handled", got.Failures)
	}
	causes := map[supervisor.Cause]bool{}
	for _, f := range got.Failures {
		causes[f.Cause] = true
	}
	if !causes[supervisor.CauseStall] || !causes[supervisor.CauseCrash] {
		t.Fatalf("causes = %+v, want both stall and crash", got.Failures)
	}
	if len(got.Replacements) != 2 {
		t.Fatalf("replacements = %+v, want both ranks moved to spares", got.Replacements)
	}
	assertBitIdentical(t, ref, got)
}

func TestRunRejectsBadConfig(t *testing.T) {
	factory := nsfFactory(t)
	for name, cfg := range map[string]supervisor.Config{
		"no ranks":     {Procs: 0, Steps: 1, Model: testNet(), NewSolver: factory},
		"no steps":     {Procs: 2, Steps: 0, Model: testNet(), NewSolver: factory},
		"no solver":    {Procs: 2, Steps: 1, Model: testNet()},
		"no model":     {Procs: 2, Steps: 1, NewSolver: factory},
		"neg spares":   {Procs: 2, Steps: 1, Model: testNet(), NewSolver: factory, Spares: -1},
		"placed model": {Procs: 2, Steps: 1, Model: &simnet.Model{RanksPerNode: 2}, NewSolver: factory},
	} {
		if _, err := supervisor.Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", name)
		}
	}
}
