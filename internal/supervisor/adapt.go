package supervisor

import (
	"nektar/internal/ckpt"
	"nektar/internal/policy"
)

// adaptRuntime is the adaptive layer's campaign-level state: the
// pieces that must survive across attempts (the controllers inside an
// attempt die with its rank goroutines). The supervisor's control
// path is serial, so no locking.
type adaptRuntime struct {
	cfg    policy.Config
	est    *policy.MTBFEstimator
	ladder *policy.Ladder

	// dtScale is the escalation ladder's current time-step reduction,
	// applied through NewTunedSolver on every subsequent attempt.
	dtScale float64
	// interval/anchor persist the cadence controller's state: a retune
	// survives the rollback that follows a failure.
	interval int
	anchor   int
	// writeMode/probed persist the writer selector's verdict: the
	// striping probe runs once per campaign.
	writeMode ckpt.WriteMode
	probed    bool
	penalty   float64
}

// newAdaptRuntime resolves cfg (CheckpointEvery seeds the initial
// interval when the policy config leaves it default) and builds the
// campaign state.
func newAdaptRuntime(ac policy.Config, checkpointEvery int) (*adaptRuntime, error) {
	if ac.InitialInterval == 0 && checkpointEvery > 0 {
		ac.InitialInterval = checkpointEvery
	}
	ac = ac.WithDefaults()
	if err := ac.Validate(); err != nil {
		return nil, err
	}
	return &adaptRuntime{
		cfg:       ac,
		est:       policy.NewMTBFEstimator(ac.PriorMTBFS, ac.Alpha),
		ladder:    policy.NewLadder(ac),
		dtScale:   1,
		interval:  ac.InitialInterval,
		writeMode: ckpt.WriteLocal,
	}, nil
}

// attemptState freezes the runtime for one attempt: every rank of the
// attempt must see identical policy inputs (the cadence decision is
// collective), so the MTBF estimate is sampled once here and held.
func (rt *adaptRuntime) attemptState() *attemptAdapt {
	return &attemptAdapt{
		cfg:       rt.cfg,
		mtbfS:     rt.est.MTBFS(),
		interval:  rt.interval,
		anchor:    rt.anchor,
		writeMode: rt.writeMode,
		probed:    rt.probed,
		dtScale:   rt.dtScale,
	}
}

// absorb reads back the state rank 0's controllers reached, so the
// next attempt resumes the tuning instead of restarting it. On a
// crashed attempt the controllers still hold their last consistent
// pre-crash state (policy decisions are collective, so every rank
// agreed on it).
func (rt *adaptRuntime) absorb(ad *attemptAdapt) {
	if ad.ctl != nil {
		rt.interval = ad.ctl.Interval()
		rt.anchor = ad.ctl.Anchor()
	}
	if ad.sel != nil {
		rt.writeMode = ad.sel.W.Mode
		rt.probed = ad.sel.Probed()
		if p := ad.sel.Penalty(); p > 0 {
			rt.penalty = p
		}
	}
}

// attemptAdapt is the adaptive layer's per-attempt state handed to the
// rank bodies: frozen campaign inputs plus rank 0's live controllers
// for post-run read-back. Rank goroutines are serialized by the
// simulator and only rank 0 writes the read-back slots.
type attemptAdapt struct {
	cfg       policy.Config
	mtbfS     float64
	interval  int
	anchor    int
	writeMode ckpt.WriteMode
	probed    bool
	dtScale   float64

	ctl *policy.CadenceController
	sel *policy.SimSelector
}
